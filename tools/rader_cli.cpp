// rader — command-line front end for the race detectors.
//
// Runs one of the bundled benchmark programs (or the Figure 1 demo) under a
// chosen detection algorithm and steal specification, and prints the race
// report — the prototype-tool workflow of Section 8: "Rader takes as an
// input either three values specifying the continuations to be stolen, or a
// random seed and the maximum sync block size ...  If a race is detected,
// Rader reports the labels corresponding to the stolen continuations that
// triggered the race, making it easy to repeat the run for regression
// tests."
//
// Usage:
//   rader --program=NAME [--scale=S] --check=ALGO [--spec=SPEC] [--k-cap=N]
//         [--engine=serial|parallel] [--jobs=J] [--budget=B]
//         [--stop-first=0|1] [--replay=HANDLE] [--format=text|json]
//
//   NAME: collision | dedup | ferret | fib | knapsack | pbfs | fig1
//   ALGO: peerset     view-read races (Peer-Set, Section 3)
//         sp+         determinacy races under --spec (SP+, Section 5)
//         spbags      reducer-oblivious SP-bags baseline [Feng–Leiserson]
//         sporder     reducer-oblivious SP-order baseline [Bender et al.]
//         exhaustive  Peer-Set + SP+ over the O(KD + K^3) family (Section 7)
//   SPEC: none | all | triple:A,B,C | depth:D | random:SEED,K | bern:SEED,P
//
// --engine=parallel runs Peer-Set on-the-fly inside the work-stealing
// engine (Rader::check_parallel): the program executes for real on --jobs
// workers (0 = all hardware threads) while the engine's spliced event
// shards feed the detector, producing a report identical to the serial
// --engine=serial run.  Only --check=peerset supports it (the other
// algorithms need simulated steal specifications, which require the serial
// engine).
//
// The exhaustive family sweep is parallel: --jobs=J shards the family over J
// worker threads (0 = all hardware threads), --budget=B caps the number of
// SP+ runs, --stop-first=1 stops handing out specs once a race is found.
// Each worker checks its own instance of the program; merged reports are
// deduplicated (one per race, listing every spec that elicited it).
// --sweep-strategy=prefix turns on prefix sharing: each spec fast-forwards
// from a checkpoint of its longest shared decision prefix with the previous
// one (core/sweep.hpp) — identical reports, several times fewer detector
// events.
//
// --replay=HANDLE re-runs exactly one eliciting specification from a prior
// report: HANDLE is a spec handle as printed in `found_under` /
// `replay_handles` (e.g. "steal-triple(0,1,2)"), and the run must reproduce
// the identical deduplicated race set.  --format=json emits the versioned
// machine-readable report (core/report_json.hpp) on stdout; informational
// progress lines then go to stderr so stdout stays pure JSON.
//
// --repro=FILE replays a `.rprog` fuzz reproducer (docs/FUZZING.md) through
// the full report/provenance pipeline: the serialized program runs under its
// recorded steal specification with SP+ AND Peer-Set attached, provenance is
// annotated, and the observed canonical race keys are verified against the
// file's `expect` lines (byte-identical reproduction; mismatch exits 3).
// Reports carry races[].repro_file (schema v3).  --program is not required.
//
// Observability:
//   --trace=FILE         record the execution (support/trace.hpp) and write
//                        it to FILE; --trace-format=chrome (default; Chrome
//                        trace-event JSON, loadable in Perfetto) or text
//                        (compact timeline)
//   --explain            replay each reported race under its found_under
//                        spec and attach a provenance record (fork frame,
//                        eliciting steal, involved Reduce/CreateIdentity
//                        strand, DAG-oracle cross-check); rendered in the
//                        text report and under races[].provenance in JSON
//                        (schema v2)
//   --progress           live sweep heartbeat lines on stderr (specs done,
//                        rolling-window specs/s and ETA, per-worker counts)
//   --profile=FILE       hierarchical phase profile (support/profile.hpp):
//                        collapsed-stack lines (flamegraph.pl / speedscope
//                        input) written to FILE, human-readable table to the
//                        info stream
//   --metrics-out=FILE   JSONL metrics time series: the sweep monitor
//                        appends one timestamped snapshot line every
//                        --metrics-interval-ms (default 500) plus a final
//                        quiesced sample (core/metrics_export.hpp)
//   --metrics-prom=FILE  final metrics snapshot in the Prometheus text
//                        exposition format
//   --list-metrics       print the metric catalog (name, type, help) and
//                        exit
//   --watchdog-ms=N      sweep hang watchdog: if no spec completes for N ms
//                        a post-mortem report lands on stderr (diagnosis
//                        only; the sweep is not interrupted)
//   --postmortem=FILE    install a fatal-signal handler that writes a
//                        post-mortem report (live metrics, in-flight specs,
//                        trace-ring tails) to FILE on SIGSEGV and friends
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "apps/mylist.hpp"
#include "apps/workloads.hpp"
#include "core/driver.hpp"
#include "core/metrics_export.hpp"
#include "core/provenance.hpp"
#include "core/report_json.hpp"
#include "core/sporder.hpp"
#include "core/trace_export.hpp"
#include "dag/program_serial.hpp"
#include "fuzz/differ.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "spec/steal_spec.hpp"
#include "support/crash.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/trace.hpp"

namespace {

using namespace rader;

std::string arg_value(int argc, char** argv, const std::string& key,
                      const std::string& fallback) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

/// Bare boolean flag: `--key` or `--key=1` is true, `--key=0` false.
bool arg_flag(int argc, char** argv, const std::string& key) {
  const std::string bare = "--" + key;
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == bare) return true;
  }
  return arg_value(argc, argv, key, "0") != "0";
}

/// Every numeric CLI value goes through these instead of bare std::sto*:
/// a typo ("--jobs=abc", "--scale=xyz") must be a one-line diagnostic and
/// exit 2, never an uncaught std::invalid_argument.
unsigned long long parse_number(const std::string& flag,
                                const std::string& text, int base = 10) {
  try {
    std::size_t pos = 0;
    const unsigned long long v = std::stoull(text, &pos, base);
    if (pos != text.size() || text.empty()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    std::fprintf(stderr, "rader: invalid value for --%s: '%s'\n",
                 flag.c_str(), text.c_str());
    std::exit(2);
  }
}

double parse_real(const std::string& flag, const std::string& text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(text, &pos);
    if (pos != text.size() || text.empty()) throw std::invalid_argument(text);
    return v;
  } catch (const std::exception&) {
    std::fprintf(stderr, "rader: invalid value for --%s: '%s'\n",
                 flag.c_str(), text.c_str());
    std::exit(2);
  }
}

[[noreturn]] void usage_and_exit() {
  std::fprintf(
      stderr,
      "usage: rader --program=NAME [--scale=S] --check=ALGO [--spec=SPEC]\n"
      "             [--k-cap=N] [--engine=serial|parallel] [--jobs=J]\n"
      "             [--budget=B] [--stop-first=0|1]\n"
      "             [--sweep-strategy=rerun|prefix]\n"
      "             [--sample-rate=P] [--sample-seed=S]\n"
      "             [--replay=HANDLE] [--format=text|json]\n"
      "             [--trace=FILE] [--trace-format=chrome|text]\n"
      "             [--explain] [--progress] [--profile=FILE]\n"
      "             [--metrics-out=FILE] [--metrics-interval-ms=N]\n"
      "             [--metrics-prom=FILE] [--watchdog-ms=N]\n"
      "             [--postmortem=FILE]\n"
      "             [--isolate=none|procs] [--spec-timeout-ms=N]\n"
      "             [--max-retries=K] [--child-mem-mb=M]\n"
      "             [--watchdog-kill] [--postmortem-dir=DIR]\n"
      "       rader --repro=FILE [--format=text|json]\n"
      "       rader --list-metrics\n"
      "  NAME: collision|dedup|ferret|fib|knapsack|pbfs|fig1\n"
      "  ALGO: peerset|sp+|spbags|sporder|exhaustive\n"
      "  SPEC: none|all|triple:A,B,C|depth:D|random:SEED,K|bern:SEED,P\n"
      "  ENGINE: serial (default) or parallel — peerset only; runs the\n"
      "          program on --jobs work-stealing workers with on-the-fly\n"
      "          detection (identical report, parallel wall-clock)\n"
      "  JOBS: exhaustive-sweep / parallel-engine worker threads\n"
      "        (0 = hardware threads)\n"
      "  STRATEGY: rerun = every spec is a fresh run (default); prefix =\n"
      "          checkpoint/fork prefix sharing (same result, faster)\n"
      "  SAMPLE-RATE: P in [0,1] — sample each memory granule with\n"
      "          probability P (deterministic per-spec seed; serial\n"
      "          engine only).  P=1 reproduces the unsampled report;\n"
      "          P<1 keeps control-flow exact but may MISS races whose\n"
      "          granules were not sampled (never false positives)\n"
      "  HANDLE: a spec handle from a report's replay_handles, e.g.\n"
      "          'steal-triple(0,1,2)' (the SPEC grammar is also accepted)\n"
      "  ISOLATE: procs = sandbox each sweep shard in a child process\n"
      "          (docs/ROBUSTNESS.md); a crashing/hanging/OOMing spec is\n"
      "          retried then quarantined into the report's\n"
      "          sweep.failures[] instead of taking the run down.\n"
      "          --spec-timeout-ms bounds one spec, --child-mem-mb caps\n"
      "          child address space, --watchdog-kill lets the stall\n"
      "          watchdog terminate (and quarantine) a wedged child,\n"
      "          --postmortem-dir collects per-child crash postmortems\n");
  std::exit(2);
}

std::unique_ptr<spec::StealSpec> parse_spec(const std::string& text) {
  if (text == "none") return std::make_unique<spec::NoSteal>();
  if (text == "all") return std::make_unique<spec::StealAll>();
  const auto colon = text.find(':');
  if (colon == std::string::npos) usage_and_exit();
  const std::string kind = text.substr(0, colon);
  const std::string args = text.substr(colon + 1);
  if (kind == "triple") {
    unsigned a = 0, b = 0, c = 0;
    if (std::sscanf(args.c_str(), "%u,%u,%u", &a, &b, &c) != 3) {
      usage_and_exit();
    }
    return std::make_unique<spec::TripleSteal>(a, b, c);
  }
  if (kind == "depth") {
    // Not parse_number: a malformed spec/replay argument is a usage error
    // ("depth:abc" has no flag of its own), but still a clean exit 2.
    std::size_t pos = 0;
    unsigned long long depth = 0;
    try {
      depth = std::stoull(args, &pos);
    } catch (const std::exception&) {
      usage_and_exit();
    }
    if (pos != args.size() || args.empty()) usage_and_exit();
    return std::make_unique<spec::DepthSteal>(depth);
  }
  if (kind == "random") {
    unsigned long long seed = 0;
    unsigned k = 0;
    if (std::sscanf(args.c_str(), "%llu,%u", &seed, &k) != 2) usage_and_exit();
    return std::make_unique<spec::RandomTripleSteal>(seed, k);
  }
  if (kind == "bern") {
    unsigned long long seed = 0;
    double p = 0;
    if (std::sscanf(args.c_str(), "%llu,%lf", &seed, &p) != 2) usage_and_exit();
    return std::make_unique<spec::BernoulliSteal>(seed, p);
  }
  usage_and_exit();
}

/// `rader --repro=FILE`: replay a serialized fuzz reproducer through the
/// full report/provenance pipeline and verify its recorded race keys.
int run_repro(const std::string& path, bool json) {
  FILE* const info = json ? stderr : stdout;
  std::string error;
  const auto repro = dag::load_reproducer(path, &error);
  if (!repro) {
    std::fprintf(stderr, "rader: cannot load reproducer '%s': %s\n",
                 path.c_str(), error.c_str());
    return 2;
  }
  std::fprintf(info, "repro: %s (spec %s, %zu action(s))\n", path.c_str(),
               repro->spec_handle.c_str(), repro->tree.action_count());
  if (!repro->note.empty()) {
    std::fprintf(info, "note: %s\n", repro->note.c_str());
  }

  metrics::Stopwatch timer;
  const auto replayed = fuzz::replay_reproducer(*repro, &error);
  if (!replayed) {
    std::fprintf(stderr, "rader: cannot replay '%s': %s\n", path.c_str(),
                 error.c_str());
    return 2;
  }
  RaceLog log = replayed->log;
  log.stamp_repro_file(path);

  // Verify byte-identical reproduction of the recorded race set.
  bool matches = true;
  if (!repro->expect.empty() || !replayed->keys.empty()) {
    matches = replayed->keys == repro->expect;
    if (matches) {
      std::fprintf(info, "repro: race set matches (%zu key(s))\n",
                   replayed->keys.size());
    } else {
      std::fprintf(stderr,
                   "rader: reproducer race set MISMATCH (%zu expected, %zu "
                   "observed)\n",
                   repro->expect.size(), replayed->keys.size());
      for (const auto& k : repro->expect) {
        std::fprintf(stderr, "  expected: %s\n", k.c_str());
      }
      for (const auto& k : replayed->keys) {
        std::fprintf(stderr, "  observed: %s\n", k.c_str());
      }
    }
  }

  ReportMeta meta;
  meta.program = path;
  meta.check = "repro";
  meta.spec = repro->spec_handle;
  if (json) {
    std::printf("%s\n", report_json(meta, log).c_str());
  } else {
    std::printf("checked in %.3fs\n%s", timer.seconds(),
                log.to_string().c_str());
  }
  if (!matches) return 3;
  return log.any() ? 1 : 0;
}

// The Figure 1 program, packaged for the CLI (known-racy demo target).
struct Fig1Program {
  apps::MyList owned;
  apps::ListNode* owned_tail = nullptr;
  Fig1Program() {
    for (int i = 0; i < 12; ++i) owned.insert(100 + i);
    auto* n = const_cast<apps::ListNode*>(owned.head());
    while (n->next != nullptr) n = n->next;
    owned_tail = n;
  }
  ~Fig1Program() { owned.destroy(); }
  void operator()() {
    apps::MyList working = owned;
    apps::MyList copy(working);
    int len = 0;
    spawn([&] { len = working.scan(SrcTag{"scan_list"}); });
    call([&] {
      reducer<apps::list_monoid> red(SrcTag{"list_reducer"});
      red.set_value(copy, SrcTag{"set_value(list)"});
      parallel_for_flat<int>(
          0, 8,
          [&](int i) {
            red.update([&](apps::MyList& v) { v.insert(i); },
                       SrcTag{"list insert"});
          },
          /*chunks=*/8);
      rader::sync();
      copy = red.take_value(SrcTag{"get_value()"});
    });
    rader::sync();
    (void)len;
    // The Reduce-side concat — the Figure 1 bug — appends onto `owned`'s
    // tail node, because the shallow copies share its chain.  Detach the
    // appendage (raw, serial, after the sync) so every execution observes
    // the identical 12-node list: sweep programs must be re-runnable, and
    // the prefix-sharing sweep verifies it.
    owned_tail->next = nullptr;
  }
};

}  // namespace

int main(int argc, char** argv) {
  if (arg_flag(argc, argv, "list-metrics")) {
    // Catalog mode: every metric this build can emit, in exposition order.
    // The names are the stable dotted identifiers used by report schema v4,
    // the JSONL sampler, and (underscore-joined) the Prometheus exposition.
    for (const auto& m : metrics::list_metrics()) {
      std::printf("%-28s %-9s %s\n", m.name, m.type, m.help);
    }
    return 0;
  }
  const std::string name = arg_value(argc, argv, "program", "");
  const std::string algo = arg_value(argc, argv, "check", "exhaustive");
  const std::string spec_text = arg_value(argc, argv, "spec", "random:1,16");
  const std::string replay = arg_value(argc, argv, "replay", "");
  const std::string format = arg_value(argc, argv, "format", "text");
  const bool json = format == "json";
  const double scale = parse_real("scale", arg_value(argc, argv, "scale", "0.02"));
  const auto k_cap = static_cast<std::uint32_t>(
      parse_number("k-cap", arg_value(argc, argv, "k-cap", "8")));
  SweepOptions sweep;
  sweep.threads = static_cast<unsigned>(
      parse_number("jobs", arg_value(argc, argv, "jobs", "1")));
  sweep.budget = parse_number("budget", arg_value(argc, argv, "budget", "0"));
  sweep.stop_after_first_race =
      arg_value(argc, argv, "stop-first", "0") != "0";
  const std::string strategy =
      arg_value(argc, argv, "sweep-strategy", "rerun");
  if (strategy == "prefix") {
    sweep.strategy = SweepStrategy::kPrefix;
  } else if (strategy != "rerun") {
    usage_and_exit();
  }
  const std::string sample_rate_text =
      arg_value(argc, argv, "sample-rate", "");
  if (!sample_rate_text.empty()) {
    sweep.sampling.enabled = true;
    sweep.sampling.rate = parse_real("sample-rate", sample_rate_text);
    if (!(sweep.sampling.rate >= 0.0 && sweep.sampling.rate <= 1.0)) {
      std::fprintf(stderr, "rader: --sample-rate must be in [0,1]\n");
      usage_and_exit();
    }
    sweep.sampling.seed = parse_number(
        "sample-seed", arg_value(argc, argv, "sample-seed", "0x5eed"), 0);
  }
  const std::string engine = arg_value(argc, argv, "engine", "serial");
  if (engine != "serial" && engine != "parallel") usage_and_exit();
  if (engine == "parallel" && sweep.sampling.enabled) {
    std::fprintf(stderr,
                 "rader: --sample-rate requires the serial engine (the "
                 "parallel engine's shard replay pre-dedups accesses)\n");
    usage_and_exit();
  }
  if (engine == "parallel" && algo != "peerset") {
    std::fprintf(stderr,
                 "rader: --engine=parallel supports --check=peerset only "
                 "(the other algorithms simulate steal specifications on "
                 "the serial engine)\n");
    usage_and_exit();
  }
  sweep.progress = arg_flag(argc, argv, "progress");
  sweep.metrics_interval_ms = static_cast<unsigned>(parse_number(
      "metrics-interval-ms",
      arg_value(argc, argv, "metrics-interval-ms", "500")));
  sweep.watchdog_ms = static_cast<unsigned>(
      parse_number("watchdog-ms", arg_value(argc, argv, "watchdog-ms", "0")));
  // Crash isolation (docs/ROBUSTNESS.md): sandbox sweep specs in child
  // processes with per-spec deadlines, retry/quarantine, and memory caps.
  const std::string isolate = arg_value(argc, argv, "isolate", "none");
  if (isolate == "procs") {
    sweep.isolation = SweepIsolation::kProcs;
  } else if (isolate != "none") {
    usage_and_exit();
  }
  sweep.spec_timeout_ms = static_cast<unsigned>(parse_number(
      "spec-timeout-ms", arg_value(argc, argv, "spec-timeout-ms", "0")));
  sweep.max_retries = static_cast<unsigned>(parse_number(
      "max-retries", arg_value(argc, argv, "max-retries", "1")));
  sweep.child_mem_mb = static_cast<unsigned>(parse_number(
      "child-mem-mb", arg_value(argc, argv, "child-mem-mb", "0")));
  sweep.watchdog_kill = arg_flag(argc, argv, "watchdog-kill");
  sweep.postmortem_dir = arg_value(argc, argv, "postmortem-dir", "");
  if (sweep.isolation == SweepIsolation::kNone &&
      (sweep.spec_timeout_ms != 0 || sweep.watchdog_kill ||
       sweep.child_mem_mb != 0 || !sweep.postmortem_dir.empty())) {
    std::fprintf(stderr,
                 "rader: --spec-timeout-ms/--watchdog-kill/--child-mem-mb/"
                 "--postmortem-dir require --isolate=procs\n");
    usage_and_exit();
  }
  const std::string metrics_out_path =
      arg_value(argc, argv, "metrics-out", "");
  const std::string metrics_prom_path =
      arg_value(argc, argv, "metrics-prom", "");
  const std::string profile_path = arg_value(argc, argv, "profile", "");
  const std::string postmortem_path = arg_value(argc, argv, "postmortem", "");
  if (!postmortem_path.empty()) {
    crash::install_signal_handler(postmortem_path.c_str());
  }
  const std::string trace_path = arg_value(argc, argv, "trace", "");
  const std::string trace_format =
      arg_value(argc, argv, "trace-format", "chrome");
  if (trace_format != "chrome" && trace_format != "text") usage_and_exit();
  const bool explain = arg_flag(argc, argv, "explain");
  const std::string repro_path = arg_value(argc, argv, "repro", "");
  if (!repro_path.empty()) return run_repro(repro_path, json);
  if (name.empty()) usage_and_exit();

  // Under --format=json, stdout stays pure JSON: progress goes to stderr.
  FILE* const info = json ? stderr : stdout;

  if (sweep.sampling.enabled) {
    std::fprintf(info, "sampling: rate=%g seed=%llu (O(1)-samples mode)\n",
                 sweep.sampling.rate,
                 static_cast<unsigned long long>(sweep.sampling.seed));
  }

  // Assemble the program under test.
  std::function<void()> program;
  Fig1Program fig1;
  apps::Workload workload;
  if (name == "fig1") {
    program = [&fig1] { fig1(); };
  } else {
    bool known = false;
    for (const std::string& k : apps::benchmark_names()) known |= (name == k);
    if (!known) {
      std::fprintf(stderr, "rader: unknown program '%s'\n", name.c_str());
      usage_and_exit();
    }
    workload = apps::make_benchmark(name, scale);
    program = workload.run;
    std::fprintf(info, "program: %s (%s)\n", workload.name.c_str(),
                 workload.input_desc.c_str());
  }

  // Collect run metrics for the whole check (probe + sweep workers + merge).
  metrics::Registry reg;
  metrics::Scope metrics_scope(&reg);

  // Phase profiler for the whole check; sweep workers fold their trees in
  // at join, so the CLI's profiler sees probe + sweep + merge.
  prof::Profiler profiler;
  std::unique_ptr<prof::Scope> prof_scope;
  if (!profile_path.empty()) {
    prof_scope = std::make_unique<prof::Scope>(&profiler);
  }

  // JSONL metrics time series (sweep checks only — the sampler rides the
  // sweep's monitor thread).
  std::ofstream metrics_out_stream;
  if (!metrics_out_path.empty()) {
    metrics_out_stream.open(metrics_out_path, std::ios::binary);
    if (!metrics_out_stream) {
      std::fprintf(stderr, "rader: cannot open --metrics-out file '%s'\n",
                   metrics_out_path.c_str());
      return 2;
    }
    sweep.metrics_out = &metrics_out_stream;
  }

  // Activate tracing for the whole check when --trace=FILE was given; the
  // main thread records into the "main" buffer, sweep workers attach their
  // own "sweep-wN" buffers.
  trace::Session trace_session;
  std::unique_ptr<TraceScope> trace_scope;
  if (!trace_path.empty()) {
    trace_scope = std::make_unique<TraceScope>(&trace_session, "main");
  }

  ReportMeta meta;
  meta.program = name;
  meta.check = algo;

  metrics::Stopwatch timer;
  RaceLog log;
  if (!replay.empty()) {
    // Replay one eliciting specification from a prior report.  Handles use
    // the describe() rendering; the CLI SPEC grammar is accepted as well.
    std::unique_ptr<spec::StealSpec> steal_spec =
        spec::from_description(replay);
    if (!steal_spec) steal_spec = parse_spec(replay);
    meta.check = "replay";
    meta.spec = steal_spec->describe();
    std::fprintf(info, "replay: %s\n", steal_spec->describe().c_str());
    log = Rader::check_determinacy([&] { program(); }, *steal_spec,
                                   sweep.sampling);
  } else if (algo == "peerset") {
    if (engine == "parallel") {
      std::fprintf(info, "engine: parallel (%u job(s))\n", sweep.threads);
      meta.check = "peerset-parallel";
      log = Rader::check_parallel([&] { program(); }, sweep.threads);
    } else {
      log = Rader::check_view_read([&] { program(); }, sweep.sampling);
    }
  } else if (algo == "sp+") {
    const auto steal_spec = parse_spec(spec_text);
    meta.spec = steal_spec->describe();
    std::fprintf(info, "spec: %s\n", steal_spec->describe().c_str());
    log = Rader::check_determinacy([&] { program(); }, *steal_spec,
                                   sweep.sampling);
  } else if (algo == "spbags") {
    log = Rader::check_spbags([&] { program(); }, sweep.sampling);
  } else if (algo == "sporder") {
    SpOrderDetector detector(&log);
    spec::NoSteal none;
    Tool* tool = &detector;
    std::unique_ptr<SamplingTool> sampler;
    if (sweep.sampling.enabled) {
      SamplingConfig cfg = sweep.sampling;
      cfg.seed = sampling_seed_for_spec(cfg.seed, none.describe());
      sampler = std::make_unique<SamplingTool>(&detector, cfg);
      tool = sampler.get();
    }
    run_serial([&] { program(); }, tool, &none);
  } else if (algo == "exhaustive") {
    // The sweep shards specs across workers, and each worker must check its
    // own instance of the program — hand the driver a factory, not the
    // shared `program` closure.
    ProgramFactory factory;
    if (name == "fig1") {
      factory = [] {
        auto p = std::make_shared<Fig1Program>();
        return std::function<void()>([p] { (*p)(); });
      };
    } else {
      factory = [name, scale] {
        auto w = std::make_shared<apps::Workload>(
            apps::make_benchmark(name, scale));
        return std::function<void()>([w] { w->run(); });
      };
    }
    const auto result = Rader::check_exhaustive(factory, sweep, k_cap);
    std::fprintf(info, "probe: K=%u D=%llu; %llu SP+ runs over the O(KD+K^3) "
                 "family (%u job(s), %llu spec(s) skipped)\n",
                 result.k, static_cast<unsigned long long>(result.depth),
                 static_cast<unsigned long long>(result.spec_runs),
                 sweep.threads,
                 static_cast<unsigned long long>(result.specs_skipped));
    for (const auto& failure : result.failures) {
      std::fprintf(info,
                   "quarantined: spec[%zu] %s (%s%s%s, %u retr%s)%s%s\n",
                   failure.index, failure.spec.c_str(), failure.cause.c_str(),
                   failure.signal != 0 ? " " : "",
                   failure.signal != 0
                       ? std::to_string(failure.signal).c_str()
                       : "",
                   failure.retries, failure.retries == 1 ? "y" : "ies",
                   failure.postmortem.empty() ? "" : " postmortem: ",
                   failure.postmortem.c_str());
    }
    log = result.log;
    meta.has_sweep = true;
    meta.jobs = sweep.threads;
    meta.budget = sweep.budget;
    meta.stop_first = sweep.stop_after_first_race;
    meta.k = result.k;
    meta.depth = result.depth;
    meta.spec_runs = result.spec_runs;
    meta.specs_skipped = result.specs_skipped;
    meta.failures = result.failures;
  } else {
    usage_and_exit();
  }

  if (explain) {
    // Replay the reported races under their found_under specs and attach
    // provenance records (core/provenance.hpp).  The replays run the same
    // deterministic program, so this is safe after any check mode.
    const std::size_t annotated =
        annotate_provenance(log, [&] { program(); });
    std::fprintf(info, "explain: annotated %zu of %zu race report(s)\n",
                 annotated,
                 log.view_read_races().size() + log.determinacy_races().size());
  }

  if (!trace_path.empty()) {
    trace_scope.reset();  // detach before exporting
    bool ok = false;
    if (trace_format == "chrome") {
      ok = write_chrome_trace(trace_session, trace_path);
    } else {
      std::ofstream out(trace_path, std::ios::binary);
      out << text_timeline(trace_session);
      ok = out.good();
    }
    if (ok) {
      std::fprintf(info, "trace: wrote %s (%llu event(s), %llu dropped)\n",
                   trace_path.c_str(),
                   static_cast<unsigned long long>(
                       trace_session.total_recorded()),
                   static_cast<unsigned long long>(
                       trace_session.total_dropped()));
    } else {
      std::fprintf(stderr, "rader: failed to write trace to %s\n",
                   trace_path.c_str());
    }
  }

  if (!metrics_out_path.empty()) {
    metrics_out_stream.close();
    std::fprintf(info, "metrics: wrote JSONL time series to %s\n",
                 metrics_out_path.c_str());
  }

  if (!metrics_prom_path.empty()) {
    std::ofstream prom(metrics_prom_path, std::ios::binary);
    prom << prometheus_text(reg.snapshot());
    if (prom.good()) {
      std::fprintf(info, "metrics: wrote Prometheus snapshot to %s\n",
                   metrics_prom_path.c_str());
    } else {
      std::fprintf(stderr, "rader: failed to write %s\n",
                   metrics_prom_path.c_str());
    }
  }

  if (!profile_path.empty()) {
    prof_scope.reset();  // close the scope before rendering
    std::ofstream pf(profile_path, std::ios::binary);
    pf << prof::collapsed(profiler.root());
    if (pf.good()) {
      std::fprintf(info, "profile: wrote collapsed stacks to %s\n%s",
                   profile_path.c_str(), prof::table(profiler.root()).c_str());
    } else {
      std::fprintf(stderr, "rader: failed to write %s\n",
                   profile_path.c_str());
    }
  }

  if (json) {
    const metrics::Snapshot snap = reg.snapshot();
    std::printf("%s\n", report_json(meta, log, &snap).c_str());
  } else {
    std::printf("checked in %.3fs\n%s", timer.seconds(),
                log.to_string().c_str());
  }
  return log.any() ? 1 : 0;
}
