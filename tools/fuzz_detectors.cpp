// fuzz_detectors — differential fuzzing of the detectors against the
// brute-force oracle.
//
// Thin CLI over fuzz::run_fuzz (src/fuzz/fuzzer.hpp): generates random
// programs and steal specifications, compares detector verdicts with the
// ground-truth oracle until the time budget expires, and prints a line per
// divergence (there should be none).  With --out-dir every divergence is
// persisted as a replayable `.rprog` reproducer (see docs/FUZZING.md); with
// --shrink each one is additionally delta-debugged to a minimal
// `.min.rprog` plus a ready-to-paste `.litmus.cc` test.
//
// Usage: fuzz_detectors [--seconds=N] [--start-seed=S] [--max-seeds=N]
//                       [--out-dir=DIR] [--shrink] [--inject-bug]
//
// --inject-bug seeds a fake detector bug (every SP+ pool report treated as
// a false positive) so the artifact/shrink pipeline can be exercised and
// tested end to end on a healthy build.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "fuzz/fuzzer.hpp"
#include "support/metrics.hpp"

int main(int argc, char** argv) {
  rader::fuzz::FuzzOptions options;
  options.seconds = 10.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seconds=", 0) == 0) {
      options.seconds = std::stod(arg.substr(10));
    } else if (arg.rfind("--start-seed=", 0) == 0) {
      options.start_seed = std::stoull(arg.substr(13));
    } else if (arg.rfind("--max-seeds=", 0) == 0) {
      options.max_seeds = std::stoull(arg.substr(12));
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      options.out_dir = arg.substr(10);
    } else if (arg == "--shrink") {
      options.shrink = true;
    } else if (arg == "--inject-bug") {
      options.differ.inject_bug = true;
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\n"
                   "usage: fuzz_detectors [--seconds=N] [--start-seed=S] "
                   "[--max-seeds=N] [--out-dir=DIR] [--shrink] "
                   "[--inject-bug]\n",
                   arg.c_str());
      return 2;
    }
  }
  options.on_progress = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
  };

  rader::metrics::Stopwatch timer;
  const rader::fuzz::FuzzStats stats = rader::fuzz::run_fuzz(options);
  std::printf(
      "fuzzed %llu programs / %llu executions in %.1fs: %llu racing "
      "artifacts confirmed, %llu single-execution misses (known Figure-6 "
      "corner, all closed by the Section-7 family), %llu divergences",
      static_cast<unsigned long long>(stats.seeds),
      static_cast<unsigned long long>(stats.executions), timer.seconds(),
      static_cast<unsigned long long>(stats.races_confirmed),
      static_cast<unsigned long long>(stats.single_exec_misses),
      static_cast<unsigned long long>(stats.divergences));
  if (stats.artifacts_written > 0) {
    std::printf(", %llu reproducer(s) written",
                static_cast<unsigned long long>(stats.artifacts_written));
  }
  std::printf("\n");
  // When the run was seeded with --inject-bug, divergences are EXPECTED;
  // exit 0 so the pipeline smoke tests can assert on artifacts instead.
  if (options.differ.inject_bug) return 0;
  return stats.divergences == 0 ? 0 : 1;
}
