// fuzz_detectors — differential fuzzing of the detectors against the
// brute-force oracle.
//
// Generates random programs and random steal specifications, runs each
// execution with the detectors AND the DAG recorder attached, and compares
// verdicts with the ground-truth oracle, exactly like the property tests
// but open-ended: it keeps going until the time budget expires, printing a
// line per divergence (there should be none).
//
// Usage: fuzz_detectors [--seconds=N] [--start-seed=S]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/peerset.hpp"
#include "core/spplus.hpp"
#include "dag/oracle.hpp"
#include "dag/random_program.hpp"
#include "dag/recorder.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/spec_family.hpp"
#include "spec/steal_spec.hpp"
#include "support/timer.hpp"

namespace {

using namespace rader;

struct Stats {
  std::uint64_t programs = 0;
  std::uint64_t executions = 0;
  std::uint64_t races_confirmed = 0;
  std::uint64_t divergences = 0;
  // Known Figure-6 corner: a single-execution SP+ miss (the one-slot
  // shadow vs multi-view writers — see tests/core/shadow_slot_corner_test).
  // Counted, and escalated to a divergence only if the Section-7 family
  // ALSO fails to report the location.
  std::uint64_t single_exec_misses = 0;
};

/// Family-level completeness: must SOME spec in the Section-7 family make
/// SP+ report address `addr`?
bool family_reports(dag::RandomProgram& program, std::uintptr_t addr) {
  SerialEngine::Stats probe;
  {
    spec::NoSteal none;
    SerialEngine engine(nullptr, &none);
    engine.run([&] { program(); });
    probe = engine.stats();
  }
  const auto k = std::min<std::uint32_t>(probe.max_sync_block, 10);
  const auto d = std::min<std::uint64_t>(probe.max_spawn_depth, 24);
  auto family = spec::full_coverage_family(k, d);
  family.push_back(std::make_unique<spec::NoSteal>());
  family.push_back(std::make_unique<spec::StealAll>());
  for (const auto& steal_spec : family) {
    RaceLog log;
    SpPlusDetector detector(&log);
    SerialEngine engine(&detector, steal_spec.get());
    engine.run([&] { program(); });
    for (const auto& race : log.determinacy_races()) {
      if (race.addr == addr) return true;
    }
  }
  return false;
}

void fuzz_one(std::uint64_t seed, Stats& stats) {
  dag::RandomProgramParams params;
  params.seed = seed;
  params.max_depth = 2 + seed % 3;
  params.max_actions = 5 + seed % 7;
  params.num_reducers = 1 + seed % 3;
  params.num_locations = 3 + seed % 6;
  params.p_access = 0.25;
  params.p_update = 0.10;
  params.p_update_shared = 0.08;
  params.p_raw_view = 0.05;
  params.p_reducer_read = 0.07;
  dag::RandomProgram program(params);
  ++stats.programs;

  const spec::NoSteal none;
  const spec::StealAll all;
  const spec::BernoulliSteal b1(seed * 3 + 1, 0.3);
  const spec::BernoulliSteal b2(seed * 3 + 2, 0.7);
  const spec::RandomTripleSteal t(seed, 12);
  const spec::StealSpec* specs[] = {&none, &all, &b1, &b2, &t};

  for (const auto* steal_spec : specs) {
    RaceLog sp_log, ps_log;
    SpPlusDetector spplus(&sp_log);
    PeerSetDetector peerset(&ps_log);
    dag::Recorder recorder;
    ToolChain chain;
    chain.add(&spplus);
    chain.add(&peerset);
    chain.add(&recorder);
    SerialEngine engine(&chain, steal_spec);
    engine.run([&] { program(); });
    ++stats.executions;

    const dag::OracleResult oracle = dag::run_oracle(recorder.dag());

    // SP+ soundness per address + completeness per execution.
    for (const auto& race : sp_log.determinacy_races()) {
      if (oracle.racing_addrs.count(race.addr) == 0) {
        ++stats.divergences;
        std::printf("DIVERGENCE seed=%llu spec=%s: SP+ false positive at "
                    "%#zx ('%s')\n",
                    static_cast<unsigned long long>(seed),
                    steal_spec->describe().c_str(),
                    static_cast<std::size_t>(race.addr),
                    race.current_label.c_str());
      }
    }
    if (sp_log.determinacy_count() > 0 && !oracle.any_determinacy) {
      ++stats.divergences;
      std::printf("DIVERGENCE seed=%llu spec=%s: SP+ reports, oracle does "
                  "not\n",
                  static_cast<unsigned long long>(seed),
                  steal_spec->describe().c_str());
    } else if (sp_log.determinacy_count() == 0 && oracle.any_determinacy) {
      // Single-execution miss: allowed ONLY as the known Figure-6 corner,
      // and only if the Section-7 family closes it per location.  The
      // family guarantee is stated for races involving a view-OBLIVIOUS
      // instruction; and only the pool's addresses are stable across the
      // family's re-executions (view objects are reallocated per run), so
      // escalation is checked on oblivious-involved pool locations.
      ++stats.single_exec_misses;
      const auto [pool_lo, pool_hi] = program.pool_range();
      for (const std::uintptr_t addr : oracle.racing_addrs_oblivious) {
        if (addr < pool_lo || addr >= pool_hi) continue;
        if (!family_reports(program, addr)) {
          ++stats.divergences;
          std::printf("DIVERGENCE seed=%llu spec=%s: race at %#zx missed "
                      "by SP+ AND by the whole Section-7 family\n",
                      static_cast<unsigned long long>(seed),
                      steal_spec->describe().c_str(),
                      static_cast<std::size_t>(addr));
        }
      }
    }
    // Peer-Set vs the oracle's peer-set relation.
    for (const auto& race : ps_log.view_read_races()) {
      if (oracle.racing_reducers.count(race.reducer) == 0) {
        ++stats.divergences;
        std::printf(
            "DIVERGENCE seed=%llu spec=%s: Peer-Set false positive on "
            "reducer %u\n",
            static_cast<unsigned long long>(seed),
            steal_spec->describe().c_str(), race.reducer);
      }
    }
    if ((ps_log.view_read_count() > 0) != oracle.any_view_read) {
      ++stats.divergences;
      std::printf("DIVERGENCE seed=%llu spec=%s: Peer-Set verdict %d vs "
                  "oracle %d\n",
                  static_cast<unsigned long long>(seed),
                  steal_spec->describe().c_str(), ps_log.view_read_count() > 0,
                  oracle.any_view_read);
    }
    stats.races_confirmed +=
        oracle.racing_addrs.size() + oracle.racing_reducers.size();
  }
}

}  // namespace

int main(int argc, char** argv) {
  double seconds = 10.0;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seconds=", 0) == 0) seconds = std::stod(arg.substr(10));
    if (arg.rfind("--start-seed=", 0) == 0) {
      seed = std::stoull(arg.substr(13));
    }
  }

  Stats stats;
  Timer timer;
  while (timer.seconds() < seconds) {
    fuzz_one(seed++, stats);
  }
  std::printf(
      "fuzzed %llu programs / %llu executions in %.1fs: %llu racing "
      "artifacts confirmed, %llu single-execution misses (known Figure-6 "
      "corner, all closed by the Section-7 family), %llu divergences\n",
      static_cast<unsigned long long>(stats.programs),
      static_cast<unsigned long long>(stats.executions), timer.seconds(),
      static_cast<unsigned long long>(stats.races_confirmed),
      static_cast<unsigned long long>(stats.single_exec_misses),
      static_cast<unsigned long long>(stats.divergences));
  return stats.divergences == 0 ? 0 : 1;
}
