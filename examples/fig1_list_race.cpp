// Figure 1 of the paper, end to end: a determinacy race hidden inside a
// reducer's Reduce operation.
//
// `race` spawns scan_list(list) in parallel with update_list(n, copy), where
// `copy` is a SHALLOW copy — both lists point at the same nodes.
// update_list coordinates its parallel inserts with a list reducer, so the
// write that actually races with the scan is the O(1) concatenation inside
// the monoid's Reduce, appending to the original view's shared tail node.
//
// Consequences demonstrated here:
//   * SP-bags (Cilk Screen's algorithm) reports NOTHING — in the no-steal
//     serial execution no Reduce ever runs, so the racing instruction never
//     executes;
//   * SP+ under a steal specification that forces steals (and therefore
//     reduces) catches the race;
//   * the Section-7 exhaustive driver finds it without hand-picking a spec.
#include <cstdio>

#include "apps/mylist.hpp"
#include "core/driver.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"

namespace {

using rader::apps::list_monoid;
using rader::apps::MyList;

// Figure 1, update_list: insert n elements through a list reducer.  A Cilk
// function, so its body runs in its own frame (rader::call).
void update_list(int n, MyList& list) {
  rader::call([&] {
    rader::reducer<list_monoid> list_reducer(rader::SrcTag{"list_reducer"});
    list_reducer.set_value(list, rader::SrcTag{"set_value(list)"});
    rader::parallel_for_flat<int>(
        0, n,
        [&](int i) {
          list_reducer.update([&](MyList& view) { view.insert(i); },
                              rader::SrcTag{"list insert"});
        },
        /*chunks=*/8);
    rader::sync();
    list = list_reducer.take_value(rader::SrcTag{"get_value()"});
  });
}

// Figure 1, race: scan a snapshot while updating it — but the "snapshot" is
// a shallow copy sharing every node.
int race_fig1(int n, MyList& list) {
  int length = 0;
  MyList copy(list);  // BUG: shallow copy
  rader::spawn([&] { length = list.scan(rader::SrcTag{"scan_list"}); });
  update_list(n, copy);
  rader::sync();
  list = copy;  // adopt the updated list (same nodes)
  return length;
}

}  // namespace

int main() {
  MyList owned;
  for (int i = 0; i < 16; ++i) owned.insert(1000 + i);

  MyList list = owned;  // working handle (shares nodes by design of MyList)
  rader::apps::ListNode* owned_tail =
      const_cast<rader::apps::ListNode*>(owned.head());
  while (owned_tail->next != nullptr) owned_tail = owned_tail->next;
  const auto program = [&] {
    MyList working = owned;  // fresh shallow handle each run
    race_fig1(12, working);
    // The Reduce-side concat — the Figure 1 bug — appended onto `owned`'s
    // tail through the shallow copies.  Detach the appendage (raw, serial,
    // after the sync) so every run observes the identical 16-node list:
    // checker programs must be re-runnable.
    owned_tail->next = nullptr;
  };

  std::printf("checking Figure 1's race() with n=12...\n\n");

  // The racing location: the shared last node's next pointer, written only
  // by the list concatenation inside Reduce.
  const rader::apps::ListNode* last_node = owned.head();
  while (last_node->next != nullptr) last_node = last_node->next;
  const auto racy_addr = reinterpret_cast<std::uintptr_t>(&last_node->next);
  const auto hits_racy_addr = [&](const rader::RaceLog& log) {
    for (const auto& r : log.determinacy_races()) {
      if (r.addr >= racy_addr && r.addr < racy_addr + sizeof(void*)) {
        return true;
      }
    }
    return false;
  };

  // Reducer-aware serial checking (what Cilk Screen effectively does):
  // SP+ with no steals — the Reduce never executes, so nothing is found.
  rader::spec::NoSteal none;
  const rader::RaceLog serial_check =
      rader::Rader::check_determinacy(program, none);
  std::printf("serial check (no steals, Cilk Screen's view): %llu race(s)  "
              "%s\n",
              static_cast<unsigned long long>(
                  serial_check.determinacy_count()),
              serial_check.any() ? "" : "<- the Reduce never runs serially");

  rader::spec::TripleSteal steal_spec(0, 1, 2);
  const rader::RaceLog spplus =
      rader::Rader::check_determinacy(program, steal_spec);
  std::printf("SP+ under %s: %llu race(s)\n", steal_spec.describe().c_str(),
              static_cast<unsigned long long>(spplus.determinacy_count()));
  std::printf("%s", spplus.to_string().c_str());

  const auto exhaustive = rader::Rader::check_exhaustive(program);
  std::printf(
      "\nexhaustive (Section 7): %llu SP+ runs over K=%u, D=%llu -> "
      "%llu distinct racing location(s)\n",
      static_cast<unsigned long long>(exhaustive.spec_runs), exhaustive.k,
      static_cast<unsigned long long>(exhaustive.depth),
      static_cast<unsigned long long>(
          exhaustive.log.determinacy_races().size()));

  (void)list;
  const bool reproduced = !serial_check.any() && hits_racy_addr(spplus);
  std::printf("\nFigure 1 reproduction: %s\n",
              reproduced
                  ? "OK (serial checking misses it, SP+ under steals "
                    "catches the Reduce write)"
                  : "UNEXPECTED");
  return reproduced ? 0 : 1;
}
