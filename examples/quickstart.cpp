// Quickstart: spawn/sync parallelism, an op_add reducer, parallel execution,
// and a race check with Rader.
//
//   $ ./quickstart
//
// Walks through:
//   1. writing a Cilk-style computation against the rader API;
//   2. running it in parallel with deterministic reducer semantics;
//   3. checking it for view-read and determinacy races.
#include <cstdio>

#include "core/driver.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "sched/parallel_engine.hpp"

namespace {

// Sum 1..n with a reducer: every iteration may run in parallel, yet the
// reducer guarantees the serial-order (here: numerically identical) result.
long parallel_sum(long n) {
  rader::reducer<rader::monoid::op_add<long>> total(
      rader::SrcTag{"quickstart sum"});
  rader::parallel_for<long>(1, n + 1, [&](long i) { total += i; });
  rader::sync();
  return total.get_value(rader::SrcTag{"quickstart result"});
}

}  // namespace

int main() {
  constexpr long kN = 100000;
  constexpr long kExpected = kN * (kN + 1) / 2;

  // 1. Serial projection: no engine installed, reducers are plain values.
  const long serial = parallel_sum(kN);
  std::printf("serial projection:  sum(1..%ld) = %ld (expected %ld)\n", kN,
              serial, kExpected);

  // 2. Real parallel execution on the work-stealing engine.
  {
    rader::ParallelEngine engine(4);
    long parallel = 0;
    engine.run([&] { parallel = parallel_sum(kN); });
    std::printf("parallel (4 workers): sum = %ld, steals = %llu\n", parallel,
                static_cast<unsigned long long>(engine.steal_count()));
  }

  // 3. Race detection: Peer-Set (view-read races) + SP+ (determinacy races).
  long result = 0;
  const auto program = [&result] { result = parallel_sum(kN / 100); };

  const rader::RaceLog view_read = rader::Rader::check_view_read(program);
  std::printf("Peer-Set: %llu view-read race(s)\n",
              static_cast<unsigned long long>(view_read.view_read_count()));

  rader::spec::RandomTripleSteal spec(/*seed=*/42, /*max_sync_block=*/16);
  const rader::RaceLog determinacy =
      rader::Rader::check_determinacy(program, spec);
  std::printf("SP+ (%s): %llu determinacy race(s)\n", spec.describe().c_str(),
              static_cast<unsigned long long>(
                  determinacy.determinacy_count()));

  const bool clean = !view_read.any() && !determinacy.any();
  std::printf("%s\n", clean ? "no races: program is ostensibly deterministic"
                            : "races detected!");
  return clean ? 0 : 1;
}
