// A bug that only exists on stolen schedules — why Section 7's exhaustive
// coverage matters.
//
// "Different runs of a Cilk program that uses a reducer can cause different
// view-aware instructions to be executed, depending how the scheduling
// plays out.  Providing complete coverage could potentially require
// executing exponentially many different schedules..."
//
// The reducer below lazily "initializes a header" the first time a view is
// updated — a common pattern (allocate-a-buffer-on-first-use).  The bug:
// the initialization touches a SHARED header that another strand reads.
//
//   * In the serial schedule, only the very first update initializes (the
//     leftmost view is non-empty afterwards), and that happens before the
//     reader is spawned: NO race exists in the serial execution, and no
//     amount of serial-schedule checking (SP-bags, Cilk Screen, SP+ with no
//     steals) can find one.
//   * On any schedule that steals one of the later continuations, the
//     update lands on a fresh identity view and re-runs the initialization
//     IN PARALLEL with the reader: a real determinacy race.
//
// SP+ needs a steal specification that elicits that update strand; the
// Theorem 6 depth family (inside Rader::check_exhaustive) is guaranteed to
// contain one.
#include <cstdio>
#include <vector>

#include "core/driver.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"

namespace {

long g_header = 0;  // shared "header" the lazy initialization writes

struct EventLog {
  std::vector<int> items;
};

struct log_monoid {
  using value_type = EventLog;
  static EventLog identity() { return {}; }
  static void reduce(EventLog& left, EventLog& right) {
    left.items.insert(left.items.end(), right.items.begin(),
                      right.items.end());
  }
};

void append_event(rader::reducer<log_monoid>& log, int i) {
  log.update(
      [&](EventLog& view) {
        if (view.items.empty()) {
          // Lazy per-view initialization — touches SHARED state.  Executes
          // once in the serial schedule, but once per STOLEN view in
          // parallel schedules.
          rader::shadow_write(&g_header, sizeof(g_header),
                              rader::SrcTag{"header init (view-aware)"});
          g_header += 1;
        }
        view.items.push_back(i);
      },
      rader::SrcTag{"append_event"});
}

void program() {
  g_header = 0;
  rader::reducer<log_monoid> log(rader::SrcTag{"event log"});
  append_event(log, -1);  // serial-schedule initialization, before any spawn
  rader::spawn([&] {
    // Reader strand, logically parallel with everything below.
    rader::shadow_read(&g_header, sizeof(g_header),
                       rader::SrcTag{"header read"});
    volatile long sink = g_header;
    (void)sink;
  });
  for (int i = 0; i < 6; ++i) {
    rader::spawn([] { /* some parallel work */ });
    append_event(log, i);  // on a stolen schedule: fresh view -> re-init!
  }
  rader::sync();
  volatile std::size_t n = log.get_value().items.size();
  (void)n;
}

}  // namespace

int main() {
  std::printf("checking the lazily-initializing reducer program...\n\n");

  rader::spec::NoSteal none;
  const rader::RaceLog serial =
      rader::Rader::check_determinacy([] { program(); }, none);
  std::printf("SP+ on the serial schedule: %llu race(s)  %s\n",
              static_cast<unsigned long long>(serial.determinacy_count()),
              serial.any() ? "" : "<- the racy instruction never executed");

  const auto exhaustive = rader::Rader::check_exhaustive([] { program(); });
  std::printf("exhaustive (Section 7, %llu SP+ runs): %llu race(s)\n",
              static_cast<unsigned long long>(exhaustive.spec_runs),
              static_cast<unsigned long long>(
                  exhaustive.log.determinacy_count()));
  std::printf("%s", exhaustive.log.to_string().c_str());

  const bool demonstrated = !serial.any() && exhaustive.log.any();
  std::printf("\nschedule-dependent bug: %s\n",
              demonstrated ? "found only by exhaustive steal coverage, "
                             "as Theorem 6 promises"
                           : "UNEXPECTED");
  return demonstrated ? 0 : 1;
}
