// View-read races and the Peer-Set algorithm.
//
// Reading a reducer's value is only deterministic at program points whose
// peer set matches the other reads' — e.g. after the cilk_sync that joins
// every spawned subcomputation that updates it.  This example shows:
//   1. a correct pattern (set before any spawn, get after the sync): clean;
//   2. the classic bug (get_value BEFORE cilk_sync): Peer-Set flags it;
//   3. the subtler Section-3 variant: set_value moved AFTER a spawn is a
//      view-read race even when the program happens to behave
//      deterministically — the read violates peer-set semantics.
#include <cstdio>

#include "core/driver.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"

namespace {

using SumReducer = rader::reducer<rader::monoid::op_add<long>>;

void add_range(SumReducer& sum, long lo, long hi) {
  for (long i = lo; i < hi; ++i) sum += i;
}

long correct_usage() {
  SumReducer sum(rader::SrcTag{"sum (correct)"});
  sum.set_value(100, rader::SrcTag{"set before spawn"});
  rader::spawn([&] { add_range(sum, 0, 50); });
  add_range(sum, 50, 100);
  rader::sync();
  return sum.get_value(rader::SrcTag{"get after sync"});
}

long get_before_sync() {
  SumReducer sum(rader::SrcTag{"sum (get-before-sync)"});
  rader::spawn([&] { add_range(sum, 0, 50); });
  // BUG: the spawned updater may still be running; depending on scheduling
  // this read sees the original view, a partial value, or a fresh identity.
  const long premature = sum.get_value(rader::SrcTag{"get BEFORE sync"});
  rader::sync();
  return premature + sum.get_value(rader::SrcTag{"get after sync"});
}

long set_after_spawn() {
  SumReducer sum(rader::SrcTag{"sum (set-after-spawn)"});
  rader::spawn([&] { /* does not touch the reducer */ });
  // Still a view-read race: this set_value does not share peers with the
  // construction-time read — "we nevertheless declare this to be a race
  // because the reducer-reads violate their peer-set semantics" (§3).
  sum.set_value(7, rader::SrcTag{"set AFTER spawn"});
  rader::sync();
  return sum.get_value(rader::SrcTag{"get after sync"});
}

void report(const char* name, const rader::RaceLog& log) {
  std::printf("%-18s -> %llu view-read race(s)\n", name,
              static_cast<unsigned long long>(log.view_read_count()));
  if (log.any()) std::printf("%s", log.to_string().c_str());
}

}  // namespace

int main() {
  const rader::RaceLog ok = rader::Rader::check_view_read([] {
    volatile long v = correct_usage();
    (void)v;
  });
  const rader::RaceLog bug1 = rader::Rader::check_view_read([] {
    volatile long v = get_before_sync();
    (void)v;
  });
  const rader::RaceLog bug2 = rader::Rader::check_view_read([] {
    volatile long v = set_after_spawn();
    (void)v;
  });

  report("correct usage", ok);
  report("get before sync", bug1);
  report("set after spawn", bug2);

  const bool expected = !ok.any() && bug1.any() && bug2.any();
  std::printf("\nPeer-Set verdicts: %s\n", expected ? "as the paper predicts"
                                                    : "UNEXPECTED");
  return expected ? 0 : 1;
}
