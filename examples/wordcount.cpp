// wordcount: a user-defined map-merge reducer over arbitrary Cilk code.
//
// Demonstrates the property the paper highlights: reducers "can operate on
// any abstract data type ... so long as the user supplies an appropriate
// reduce operator", and associativity alone suffices for determinism.  The
// view is a hash map word -> count; Reduce merges maps.
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "sched/parallel_engine.hpp"
#include "support/rng.hpp"

namespace {

using Counts = std::map<std::string, long>;

struct map_merge_monoid {
  using value_type = Counts;
  static Counts identity() { return {}; }
  static void reduce(Counts& left, Counts& right) {
    for (auto& [word, count] : right) left[word] += count;
  }
};

std::vector<std::string> make_corpus(std::size_t lines, std::uint64_t seed) {
  static constexpr const char* kWords[] = {"spawn", "sync",   "steal",
                                           "view",  "reduce", "monoid"};
  rader::Rng rng(seed);
  std::vector<std::string> corpus;
  corpus.reserve(lines);
  for (std::size_t i = 0; i < lines; ++i) {
    std::string line;
    const std::size_t words = 3 + rng.below(10);
    for (std::size_t w = 0; w < words; ++w) {
      line += kWords[rng.below(std::size(kWords))];
      line += ' ';
    }
    corpus.push_back(std::move(line));
  }
  return corpus;
}

Counts count_words(const std::vector<std::string>& corpus) {
  rader::reducer<map_merge_monoid> counts(rader::SrcTag{"wordcount map"});
  rader::parallel_for<std::size_t>(0, corpus.size(), [&](std::size_t i) {
    const std::string& line = corpus[i];
    std::size_t pos = 0;
    while (pos < line.size()) {
      const std::size_t end = line.find(' ', pos);
      const std::string word = line.substr(pos, end - pos);
      if (!word.empty()) {
        counts.update([&](Counts& view) { view[word] += 1; });
      }
      if (end == std::string::npos) break;
      pos = end + 1;
    }
  });
  rader::sync();
  return counts.get_value(rader::SrcTag{"wordcount result"});
}

}  // namespace

int main() {
  const auto corpus = make_corpus(20000, /*seed=*/99);

  // Serial projection (no engine).
  const Counts expected = count_words(corpus);

  // Parallel runs must produce the identical map, for any worker count.
  for (const unsigned workers : {2u, 4u, 8u}) {
    rader::ParallelEngine engine(workers);
    Counts got;
    engine.run([&] { got = count_words(corpus); });
    if (got != expected) {
      std::printf("nondeterministic result with %u workers!\n", workers);
      return 1;
    }
    std::printf("%u workers: deterministic (%llu steals)\n", workers,
                static_cast<unsigned long long>(engine.steal_count()));
  }

  long total = 0;
  for (const auto& [word, count] : expected) {
    std::printf("%-8s %ld\n", word.c_str(), count);
    total += count;
  }
  std::printf("total words: %ld\n", total);
  return 0;
}
