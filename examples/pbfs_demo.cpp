// pbfs demo: work-efficient parallel BFS with a Bag reducer, run on the
// parallel work-stealing engine and cross-checked against serial BFS, then
// screened for view-read races with Peer-Set.
//
//   $ ./pbfs_demo [vertices] [edges]
#include <cstdio>
#include <cstdlib>

#include "apps/graph.hpp"
#include "apps/pbfs.hpp"
#include "core/driver.hpp"
#include "sched/parallel_engine.hpp"
#include "support/metrics.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? std::atoi(argv[1]) : 100000;
  const std::uint64_t m = argc > 2 ? std::atoll(argv[2]) : 600000;

  std::printf("building RMAT graph: |V|=%u, ~%llu edges...\n", n,
              static_cast<unsigned long long>(m));
  const auto g = rader::apps::Graph::rmat(n, m, /*seed=*/7);

  rader::metrics::Stopwatch t;
  const auto serial = rader::apps::serial_bfs(g, 0);
  const double t_serial = t.seconds();

  std::vector<std::uint32_t> parallel;
  rader::ParallelEngine engine;
  t.reset();
  engine.run([&] { parallel = rader::apps::pbfs(g, 0); });
  const double t_parallel = t.seconds();

  std::uint32_t reached = 0, max_depth = 0;
  for (const auto d : serial) {
    if (d == rader::apps::kUnreached) continue;
    ++reached;
    max_depth = std::max(max_depth, d);
  }
  std::printf("reached %u vertices, eccentricity %u\n", reached, max_depth);
  std::printf("serial BFS: %.3fs | pbfs on %u workers: %.3fs (%llu steals)\n",
              t_serial, engine.worker_count(), t_parallel,
              static_cast<unsigned long long>(engine.steal_count()));

  if (parallel != serial) {
    std::printf("MISMATCH between pbfs and serial BFS!\n");
    return 1;
  }
  std::printf("distances match serial BFS\n");

  // Screen a scaled-down instance for view-read races (Peer-Set).
  const auto small = rader::apps::Graph::rmat(2000, 12000, /*seed=*/7);
  const rader::RaceLog log = rader::Rader::check_view_read([&] {
    volatile std::uint32_t sink = rader::apps::pbfs(small, 0)[1];
    (void)sink;
  });
  std::printf("Peer-Set on pbfs: %llu view-read race(s)\n",
              static_cast<unsigned long long>(log.view_read_count()));
  return log.any() ? 1 : 0;
}
