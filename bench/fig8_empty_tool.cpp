// Figure 8: "Rader's overhead over running 6 benchmarks with an empty tool,
// i.e., instrumentation leads to empty calls."  Separates the cost of the
// instrumentation itself from the cost of the detection algorithms.
//
// Usage: fig8_empty_tool [--scale=S] [--reps=N]
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  const double scale = rader::bench::parse_scale(argc, argv, 0.05);
  const int reps = rader::bench::parse_reps(argc, argv, 2);
  std::printf("fig8_empty_tool: scale=%.3g reps=%d\n", scale, reps);

  std::vector<rader::bench::Row> rows;
  for (auto& w : rader::apps::make_paper_benchmarks(scale)) {
    std::printf("  measuring %-10s (%s)...\n", w.name.c_str(),
                w.input_desc.c_str());
    std::fflush(stdout);
    rows.push_back(rader::bench::measure_workload(w, reps));
  }
  rader::bench::print_table(
      "Figure 8 — overhead over an EMPTY TOOL", "the empty tool", rows,
      [](const rader::bench::Row& r) { return r.t_empty; });

  std::printf("\ninstrumentation cost alone (empty tool / uninstrumented):\n");
  for (const auto& r : rows) {
    std::printf("  %-10s %6.2fx\n", r.name.c_str(), r.t_empty / r.t_none);
  }
  return 0;
}
