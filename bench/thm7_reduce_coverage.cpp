// Theorem 7 experiment: eliciting every possible REDUCE strand needs Ω(K³)
// steal specifications, and the O(K³) triple family suffices.
//
// A reduce strand over a sync block of K updates is identified by its two
// operand subsequences ⟨k_a..k_{b-1}⟩ ⊗ ⟨k_b..k_{c-1}⟩.  We count distinct
// reduce strands elicited by (a) brute force over all steal subsets and
// (b) the cubic triple family, and report the family-size growth.
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/spec_family.hpp"
#include "support/metrics.hpp"

namespace {

using rader::spawn;
using rader::sync;

struct Sig {
  std::vector<int> items;
};

using ReduceSig = std::pair<std::vector<int>, std::vector<int>>;
std::set<ReduceSig>* g_reduces = nullptr;

struct sig_monoid {
  using value_type = Sig;
  static Sig identity() { return {}; }
  static void reduce(Sig& l, Sig& r) {
    if (g_reduces != nullptr) g_reduces->insert({l.items, r.items});
    l.items.insert(l.items.end(), r.items.begin(), r.items.end());
  }
};

void block_program(int k) {
  rader::reducer<sig_monoid> red;
  for (int i = 0; i < k; ++i) {
    spawn([] {});
    red.update([&](Sig& s) { s.items.push_back(i); });
  }
  sync();
}

class SubsetSpec final : public rader::spec::StealSpec {
 public:
  explicit SubsetSpec(std::uint32_t mask) : mask_(mask) {}
  bool steal(const rader::spec::PointCtx& c) const override {
    return c.cont_index < 32 && ((mask_ >> c.cont_index) & 1u) != 0;
  }
  std::string describe() const override { return "subset"; }

 private:
  std::uint32_t mask_;
};

}  // namespace

int main() {
  std::printf(
      "thm7_reduce_coverage: reduce strands elicited vs. family size\n");
  std::printf("%4s %14s %12s %12s %12s %10s\n", "K", "2^K subsets",
              "family size", "by subsets", "by family", "time(s)");
  std::size_t prev_family = 0;
  for (const int k : {4, 6, 8, 10, 12}) {
    std::set<ReduceSig> by_subsets;
    g_reduces = &by_subsets;
    for (std::uint32_t mask = 0; mask < (1u << k); ++mask) {
      SubsetSpec steal_spec(mask);
      rader::SerialEngine engine(nullptr, &steal_spec);
      engine.run([&] { block_program(k); });
    }

    std::set<ReduceSig> by_family;
    g_reduces = &by_family;
    rader::metrics::Stopwatch t;
    const auto family =
        rader::spec::reduce_coverage_family(static_cast<std::uint32_t>(k));
    for (const auto& steal_spec : family) {
      rader::SerialEngine engine(nullptr, steal_spec.get());
      engine.run([&] { block_program(k); });
    }
    const double secs = t.seconds();
    g_reduces = nullptr;

    bool covered = true;
    for (const auto& sig : by_subsets) covered &= by_family.count(sig) > 0;

    std::printf("%4d %14u %12zu %12zu %12zu %10.3f  %s", k, 1u << k,
                family.size(), by_subsets.size(), by_family.size(), secs,
                covered ? "COVERED" : "MISSING");
    if (prev_family != 0) {
      std::printf("  (family growth x%.2f)",
                  static_cast<double>(family.size()) /
                      static_cast<double>(prev_family));
    }
    std::printf("\n");
    prev_family = family.size();
  }
  std::printf("\n(the triple family grows as Θ(K³) and covers every reduce\n"
              " strand the exponential subset space can elicit.)\n");
  return 0;
}
