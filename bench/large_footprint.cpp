// Production-footprint benchmark: multi-MB shadow workloads and the
// O(1)-samples mode, with the exit-code gates scripts/check.sh --full and
// the nightly-bench job enforce.
//
// Three experiments:
//
//  1. CHECKPOINTED SWEEP (--check-ratio=R gates legacy/packed >= R).
//     The production shape of the prefix-sharing sweep: a checkpoint
//     shadowing a multi-MB footprint is forked once per steal spec, the
//     spec replays a short suffix (one page of detector-shaped accesses:
//     read writer, read reader, record one), and the fork is dropped.
//     The legacy encoding pays an unordered_map node copy per page on
//     every fork and another map teardown on every drop — O(footprint)
//     per spec; the packed encoding's two-level CoW forks copy only the
//     shard tables and bump chunk refcounts — O(#chunks) per spec.  This
//     is exactly the cost the ISSUE's >= 3x claim is about: the per-spec
//     overhead of carrying a production-sized shadow through a sweep.
//
//     A steady-state page-hopping sweep over the same footprint is also
//     reported (ungated): single-pass random access is bounded by the
//     slot cache line itself, so both encodings sit within ~2x there —
//     the directory wins show up in fork/clear churn, not steady state.
//
//  2. APP FOOTPRINTS (reported, not gated — annotation-dominated apps
//     like pbfs measure instrumentation cost, not shadow cost): pbfs and
//     collision at multi-MB footprints under no instrumentation, full
//     SP+, and sampled SP+ at --sample-rate.
//
//  3. SAMPLING OVERHEAD (--check-sampling-overhead=X gates geomean <= X).
//     Sampled SP+ at P (default 0.01) versus UNINSTRUMENTED, geomean over
//     collision and a bench-local multi-MB compute kernel (real work per
//     annotated access, the workload class the O(1)-samples theory
//     targets).  pbfs is reported above but excluded from the gate: its
//     runtime is annotation calls, so even a perfect sampler cannot reach
//     1.10x there.
//
// usage: large_footprint [--reps=N] [--mb=M] [--sample-rate=P]
//                        [--json=FILE] [--check-ratio=R]
//                        [--check-sampling-overhead=X]
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "core/race_report.hpp"
#include "core/spplus.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "shadow/access_shadow.hpp"
#include "spec/steal_spec.hpp"
#include "support/hash.hpp"
#include "support/metrics.hpp"
#include "tool/sampling.hpp"

namespace {

using rader::SamplingConfig;
using rader::SamplingTool;
using rader::SerialEngine;
using rader::SpPlusDetector;
using rader::Tool;
using rader::shadow::AccessShadow;
using rader::shadow::SlotEncoding;

// ---- 1. Checkpointed sweep + steady-state sweep ----------------------------

// The detectors' access shape: check both fields, record one — alternating
// reads and writes so BOTH logical spaces populate (one packed slot; two
// separate legacy pages).
inline void detector_shaped_op(AccessShadow& s, std::uintptr_t g,
                               std::uint32_t id) {
  const bool writer_empty = s.writer(g) == AccessShadow::kEmpty;
  const bool reader_empty = s.reader(g) == AccessShadow::kEmpty;
  if (id & 1) {
    if (reader_empty || !writer_empty) s.set_reader(g, id & 0xFFFF);
  } else {
    if (writer_empty || !reader_empty) s.set_writer(g, id & 0xFFFF);
  }
}

constexpr std::uintptr_t kBase = std::uintptr_t{1} << 30;

// Per-spec cost of the prefix sweep's checkpoint cycle: fork the
// footprint-sized base shadow, replay a one-page suffix, drop the fork.
double time_checkpoint_sweep(SlotEncoding enc, std::size_t granules,
                             int specs, std::size_t window, int reps) {
  AccessShadow base(enc);
  for (std::size_t i = 0; i < granules; ++i) {
    detector_shaped_op(base, kBase + i, static_cast<std::uint32_t>(i));
  }
  return rader::metrics::time_best_of(reps, [&] {
    std::uint32_t id = 1;
    for (int s = 0; s < specs; ++s) {
      AccessShadow fork = base.fork();
      // A different suffix page per spec, hopping around the footprint.
      const std::uintptr_t w0 =
          kBase + (static_cast<std::uintptr_t>(s) * 7919 * 4096) %
                      (granules - window);
      for (std::size_t i = 0; i < window; ++i) {
        detector_shaped_op(fork, w0 + i, id++);
      }
    }
  }) / specs;
}

// Odd stride just past a page (4096 granules): consecutive iterations land
// on different pages (lookaside miss) but stay within a chunk for ~512
// accesses (chunk-cache hit) — the regime the two-level directory targets.
constexpr std::uintptr_t kStride = 4099;

double time_shadow_sweep(SlotEncoding enc, std::size_t granules, int passes,
                         int reps) {
  return rader::metrics::time_best_of(reps, [&] {
    AccessShadow s(enc);
    const std::uintptr_t mask = granules - 1;  // granules is a power of two
    std::uint32_t id = 1;
    for (int p = 0; p < passes; ++p) {
      for (std::size_t i = 0; i < granules; ++i) {
        const std::uintptr_t g = kBase + ((i * kStride) & mask);
        detector_shaped_op(s, g, id++);
      }
      s.clear();  // the per-spec reset
    }
  });
}

// ---- 3. Bench-local compute kernel -----------------------------------------

// Multi-MB buffer transformed in 256-byte annotated blocks with real work
// per block (several mix rounds per word): the footprint is large, but
// accesses carry computation — the workload class where sampling's
// near-zero overhead claim must hold.
struct ComputeKernel {
  explicit ComputeKernel(std::size_t words) : buf(words, 0x9e3779b9u) {}

  void run() {
    constexpr std::size_t kBlockWords = 32;  // 256 bytes per annotation
    constexpr int kRounds = 16;
    const std::size_t blocks = buf.size() / kBlockWords;
    rader::parallel_for(std::size_t{0}, blocks, [&](std::size_t b) {
      std::uint64_t* block = &buf[b * kBlockWords];
      rader::shadow_write(block, kBlockWords * sizeof(std::uint64_t));
      for (std::size_t i = 0; i < kBlockWords; ++i) {
        std::uint64_t v = block[i] + i;
        for (int r = 0; r < kRounds; ++r) v = rader::mix64(v);
        block[i] = v;
      }
    }, /*grain=*/blocks / 64);
  }

  std::vector<std::uint64_t> buf;
};

template <typename Fn>
double time_tool(Fn&& body, Tool* tool, int reps) {
  rader::spec::NoSteal none;
  return rader::metrics::time_best_of(reps, [&] {
    SerialEngine engine(tool, &none);
    engine.run([&] { body(); });
  });
}

struct AppRow {
  std::string name;
  std::string input;
  double t_none = 0;
  double t_empty = 0;
  double t_full = 0;
  double t_sampled = 0;
  bool gated = false;  // participates in the sampling-overhead geomean
};

template <typename Fn>
AppRow measure_app(const std::string& name, const std::string& input,
                   Fn&& body, const SamplingConfig& sampling, int reps,
                   bool gated) {
  AppRow row;
  row.name = name;
  row.input = input;
  row.gated = gated;
  row.t_none = time_tool(body, nullptr, reps);
  {
    rader::EmptyTool empty;
    row.t_empty = time_tool(body, &empty, reps);
  }
  {
    rader::RaceLog log;
    SpPlusDetector detector(&log);
    row.t_full = time_tool(body, &detector, reps);
  }
  {
    rader::RaceLog log;
    SpPlusDetector detector(&log);
    SamplingTool sampler(&detector, sampling);
    row.t_sampled = time_tool(body, &sampler, reps);
  }
  return row;
}

std::string arg_value(int argc, char** argv, const std::string& key) {
  return rader::bench::parse_arg(argc, argv, key);
}

void write_json(const std::string& path, std::size_t granules,
                double ckpt_legacy, double ckpt_packed, double legacy_s,
                double packed_s, double rate, const std::vector<AppRow>& rows,
                double sampling_geomean) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  const double mops = 1e-6 * static_cast<double>(granules);
  std::fprintf(out,
               "{\n  \"bench\": \"large_footprint\",\n"
               "  \"granules\": %zu,\n"
               "  \"checkpoint\": {\"legacy_us_per_spec\": %.1f, "
               "\"packed_us_per_spec\": %.1f, \"packed_speedup\": %.2f},\n"
               "  \"shadow\": {\"legacy_mops\": %.2f, \"packed_mops\": %.2f, "
               "\"packed_speedup\": %.2f},\n"
               "  \"sample_rate\": %g,\n"
               "  \"sampling_overhead_geomean\": %.4f,\n"
               "  \"apps\": [\n",
               granules, ckpt_legacy * 1e6, ckpt_packed * 1e6,
               ckpt_legacy / ckpt_packed, mops / legacy_s, mops / packed_s,
               legacy_s / packed_s, rate, sampling_geomean);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const AppRow& r = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"input\": \"%s\", "
                 "\"gated\": %s, \"overhead_full\": %.3f, "
                 "\"overhead_sampled\": %.3f}%s\n",
                 r.name.c_str(), r.input.c_str(), r.gated ? "true" : "false",
                 r.t_full / r.t_none, r.t_sampled / r.t_none,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  const int reps = rader::bench::parse_reps(argc, argv, 3);
  const std::size_t mb =
      arg_value(argc, argv, "mb").empty()
          ? 8
          : std::stoul(arg_value(argc, argv, "mb"));
  // Round the footprint to a power of two of granules (1 granule = 1 byte
  // of tracked address space at granule_bits=0).
  std::size_t granules = 1;
  while (granules * 2 <= mb * (std::size_t{1} << 20)) granules *= 2;

  SamplingConfig sampling;
  sampling.enabled = true;
  sampling.rate = arg_value(argc, argv, "sample-rate").empty()
                      ? 0.01
                      : std::stod(arg_value(argc, argv, "sample-rate"));

  // -- 1. Checkpointed sweep (gated) + steady-state sweep (reported).
  const int specs = 40;
  const std::size_t window = 4096;  // one page of suffix accesses per spec
  const double ckpt_legacy = time_checkpoint_sweep(
      SlotEncoding::kLegacy, granules, specs, window, reps);
  const double ckpt_packed = time_checkpoint_sweep(
      SlotEncoding::kPacked, granules, specs, window, reps);
  std::printf("checkpointed sweep: %zu-granule (%zu MB) checkpoint, %d "
              "specs x %zu-granule suffix\n",
              granules, granules >> 20, specs, window);
  std::printf("  %-22s %8.1f us/spec\n", "legacy (2x ShadowSpace)",
              ckpt_legacy * 1e6);
  std::printf("  %-22s %8.1f us/spec\n", "packed (PackedShadow)",
              ckpt_packed * 1e6);
  std::printf("  packed speedup: %.2fx\n\n", ckpt_legacy / ckpt_packed);

  const int passes = 2;
  const double legacy_s =
      time_shadow_sweep(SlotEncoding::kLegacy, granules, passes, reps) /
      passes;
  const double packed_s =
      time_shadow_sweep(SlotEncoding::kPacked, granules, passes, reps) /
      passes;
  const double mops = 1e-6 * static_cast<double>(granules);
  std::printf("steady-state sweep: page-hopping stride %zu (ungated)\n",
              static_cast<std::size_t>(kStride));
  std::printf("  %-22s %8.2f Mops/s\n", "legacy (2x ShadowSpace)",
              mops / legacy_s);
  std::printf("  %-22s %8.2f Mops/s\n", "packed (PackedShadow)",
              mops / packed_s);
  std::printf("  packed speedup: %.2fx\n\n", legacy_s / packed_s);

  // -- 2/3. App footprints + sampled overhead.
  std::vector<AppRow> rows;
  {
    auto w = rader::apps::make_benchmark("collision", 1.0);
    rows.push_back(measure_app(w.name, w.input_desc, w.run, sampling, reps,
                               /*gated=*/true));
  }
  {
    ComputeKernel kernel((std::size_t{1} << 20));  // 8 MB buffer
    rows.push_back(measure_app(
        "kernel", "8 MB / 256 B x 16 rounds", [&] { kernel.run(); }, sampling,
        reps, /*gated=*/true));
  }
  {
    auto w = rader::apps::make_benchmark("pbfs", 0.2);
    rows.push_back(measure_app(w.name, w.input_desc, w.run, sampling, reps,
                               /*gated=*/false));
  }

  std::printf("%-10s %-26s %11s %14s %18s\n", "Benchmark", "Input",
              "empty tool", "SP+ overhead", "sampled overhead");
  std::vector<double> gated_overheads;
  for (const AppRow& r : rows) {
    std::printf("%-10s %-26s %10.2fx %13.2fx %17.2fx%s\n", r.name.c_str(),
                r.input.c_str(), r.t_empty / r.t_none, r.t_full / r.t_none,
                r.t_sampled / r.t_none, r.gated ? "" : "  (ungated)");
    if (r.gated) gated_overheads.push_back(r.t_sampled / r.t_none);
  }
  const double sampling_geomean = rader::bench::geomean(gated_overheads);
  std::printf("sampled overhead geomean (gated rows, P=%g): %.3fx\n",
              sampling.rate, sampling_geomean);

  const std::string json_path = arg_value(argc, argv, "json");
  if (!json_path.empty()) {
    write_json(json_path, granules, ckpt_legacy, ckpt_packed, legacy_s,
               packed_s, sampling.rate, rows, sampling_geomean);
    std::printf("wrote %s\n", json_path.c_str());
  }

  int rc = 0;
  const std::string ratio_text = arg_value(argc, argv, "check-ratio");
  if (!ratio_text.empty()) {
    const double floor = std::stod(ratio_text);
    const double ratio = ckpt_legacy / ckpt_packed;
    if (ratio < floor) {
      std::fprintf(stderr,
                   "FAIL: packed checkpoint-sweep speedup %.2fx below the "
                   "%.2fx floor\n",
                   ratio, floor);
      rc = 1;
    } else {
      std::printf("OK: packed checkpoint-sweep speedup %.2fx >= %.2fx\n",
                  ratio, floor);
    }
  }
  const std::string overhead_text =
      arg_value(argc, argv, "check-sampling-overhead");
  if (!overhead_text.empty()) {
    const double ceiling = std::stod(overhead_text);
    if (sampling_geomean > ceiling) {
      std::fprintf(stderr,
                   "FAIL: sampled overhead geomean %.3fx above the %.2fx "
                   "ceiling\n",
                   sampling_geomean, ceiling);
      rc = 1;
    } else {
      std::printf("OK: sampled overhead geomean %.3fx <= %.2fx\n",
                  sampling_geomean, ceiling);
    }
  }
  return rc;
}
