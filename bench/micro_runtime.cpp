// Microbenchmarks for the runtime substrate: spawn/sync cost with and
// without instrumentation, reducer update cost, steal-simulation cost.
#include <benchmark/benchmark.h>

#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"
#include "tool/tool.hpp"

namespace {

void spawn_tree(int depth) {
  if (depth == 0) return;
  rader::spawn([depth] { spawn_tree(depth - 1); });
  spawn_tree(depth - 1);
  rader::sync();
}

void BM_SpawnSyncUninstrumented(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  rader::SerialEngine engine;
  for (auto _ : state) {
    engine.run([depth] { spawn_tree(depth); });
  }
  state.SetItemsProcessed(state.iterations() * ((1 << depth) - 1));
}
BENCHMARK(BM_SpawnSyncUninstrumented)->Arg(10);

void BM_SpawnSyncEmptyTool(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  rader::EmptyTool tool;
  rader::SerialEngine engine(&tool);
  for (auto _ : state) {
    engine.run([depth] { spawn_tree(depth); });
  }
  state.SetItemsProcessed(state.iterations() * ((1 << depth) - 1));
}
BENCHMARK(BM_SpawnSyncEmptyTool)->Arg(10);

void BM_ReducerUpdate(benchmark::State& state) {
  rader::SerialEngine engine;
  for (auto _ : state) {
    engine.run([&state] {
      rader::reducer<rader::monoid::op_add<long>> sum;
      for (int i = 0; i < state.range(0); ++i) sum += 1;
      benchmark::DoNotOptimize(sum.get_value());
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReducerUpdate)->Arg(10000);

void BM_StealSimulation(benchmark::State& state) {
  // Cost of minting views + folding them: steal every continuation.
  rader::spec::StealAll all;
  rader::SerialEngine engine(nullptr, &all);
  const int spawns = static_cast<int>(state.range(0));
  for (auto _ : state) {
    engine.run([spawns] {
      rader::reducer<rader::monoid::op_add<long>> sum;
      for (int i = 0; i < spawns; ++i) {
        rader::spawn([&sum] { sum += 1; });
        sum += 1;
      }
      rader::sync();
      benchmark::DoNotOptimize(sum.get_value());
    });
  }
  state.SetItemsProcessed(state.iterations() * spawns);
}
BENCHMARK(BM_StealSimulation)->Arg(1000);

void BM_ShadowAnnotation(benchmark::State& state) {
  // shadow_write through the engine with a null tool: the uninstrumented
  // fast path the "no instrumentation" baseline pays.
  rader::SerialEngine engine;
  static long x = 0;
  for (auto _ : state) {
    engine.run([&state] {
      for (int i = 0; i < state.range(0); ++i) {
        rader::shadow_write(&x, sizeof(x));
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShadowAnnotation)->Arg(100000);

}  // namespace
