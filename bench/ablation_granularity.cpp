// Ablation: shadow-memory granularity.
//
// The paper's Rader piggybacks on ThreadSanitizer instrumentation, whose
// shadow tracks word-sized cells; this repository defaults to byte-exact
// cells (preserving the detectors' iff guarantees at byte precision).  This
// harness quantifies the cost of that choice: SP+ overhead per benchmark at
// granule_bits = 0 (byte), 2 (dword) and 3 (qword).  Coarse cells can
// conflate adjacent objects that share a word (see granularity_test), which
// is why exact mode is the default.
#include <cstdio>

#include "apps/workloads.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace rader;
  const double scale = bench::parse_scale(argc, argv, 0.05);
  const int reps = bench::parse_reps(argc, argv, 2);
  std::printf("ablation_granularity: scale=%.3g reps=%d\n", scale, reps);
  std::printf("%-10s %12s %16s %16s %16s\n", "benchmark", "none(s)",
              "sp+ byte (x)", "sp+ dword (x)", "sp+ qword (x)");

  spec::NoSteal none;
  for (auto& w : apps::make_paper_benchmarks(scale)) {
    const double t_none = bench::time_config(w, nullptr, &none, reps);
    double t[3];
    const unsigned bits[3] = {0, 2, 3};
    for (int i = 0; i < 3; ++i) {
      RaceLog log;
      SpPlusDetector detector(&log, bits[i]);
      t[i] = bench::time_config(w, &detector, &none, reps);
    }
    std::printf("%-10s %12.4f %13.2fx %13.2fx %13.2fx\n", w.name.c_str(),
                t_none, t[0] / t_none, t[1] / t_none, t[2] / t_none);
  }
  std::printf("\n(qword cells approximate the paper's TSan-based shadow; "
              "byte cells are exact.)\n");
  return 0;
}
