// Shared harness code for the table benchmarks (Figures 7 and 8).
//
// Each benchmark runs under the serial engine in the paper's five
// configurations:
//   none         — no instrumentation (tool = nullptr): Figure 7's baseline;
//   empty        — identical instrumentation, no-op tool: Figure 8's baseline;
//   peerset      — "Check view-read race";
//   sp+ nosteal  — "No steals";
//   sp+ updates  — "Check updates" (steals at half the max continuation
//                  depth, per Section 8);
//   sp+ reduce   — "Check reductions" (randomly chosen triple per sync
//                  block, per Section 8).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/workloads.hpp"
#include "core/peerset.hpp"
#include "core/spplus.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"
#include "support/metrics.hpp"
#include "tool/tool.hpp"

namespace rader::bench {

struct Row {
  std::string name;
  std::string input;
  std::string description;
  double t_none = 0;      // no instrumentation
  double t_empty = 0;     // empty tool
  double t_peerset = 0;   // Peer-Set
  double t_nosteal = 0;   // SP+ / no steals
  double t_updates = 0;   // SP+ / check updates
  double t_reduce = 0;    // SP+ / check reductions
  SerialEngine::Stats probe;
  SerialEngine::Stats reduce_probe;  // stats under the check-reductions spec
};

inline double time_config(apps::Workload& w, Tool* tool,
                          const spec::StealSpec* steal_spec, int reps) {
  return metrics::time_best_of(reps, [&] {
    SerialEngine engine(tool, steal_spec);
    engine.run([&] { w.run(); });
  });
}

inline Row measure_workload(apps::Workload& w, int reps) {
  Row row;
  row.name = w.name;
  row.input = w.input_desc;
  row.description = w.description;

  spec::NoSteal none;

  // Probe: learn K and D for the update/reduction specs.
  {
    SerialEngine engine(nullptr, &none);
    engine.run([&] { w.run(); });
    row.probe = engine.stats();
    if (!w.verify()) {
      std::fprintf(stderr, "!! %s failed verification\n", w.name.c_str());
    }
  }
  const std::uint32_t k = std::max<std::uint32_t>(2, row.probe.max_sync_block);
  spec::DepthSteal depth_spec(std::max<std::uint64_t>(1, k / 2));
  spec::RandomTripleSteal reduce_spec(/*seed=*/0x5eed, k);

  row.t_none = time_config(w, nullptr, &none, reps);
  {
    EmptyTool empty;
    row.t_empty = time_config(w, &empty, &none, reps);
  }
  {
    RaceLog log;
    PeerSetDetector peerset(&log);
    row.t_peerset = time_config(w, &peerset, &none, reps);
  }
  {
    RaceLog log;
    SpPlusDetector spplus(&log);
    row.t_nosteal = time_config(w, &spplus, &none, reps);
  }
  {
    RaceLog log;
    SpPlusDetector spplus(&log);
    row.t_updates = time_config(w, &spplus, &depth_spec, reps);
  }
  {
    RaceLog log;
    SpPlusDetector spplus(&log);
    row.t_reduce = time_config(w, &spplus, &reduce_spec, reps);
  }
  {
    // View-churn telemetry under the check-reductions schedule.
    SerialEngine engine(nullptr, &reduce_spec);
    engine.run([&] { w.run(); });
    row.reduce_probe = engine.stats();
  }
  return row;
}

inline double geomean(const std::vector<double>& xs) {
  double log_sum = 0;
  for (const double x : xs) log_sum += std::log(x);
  return xs.empty() ? 0.0 : std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Print a Figure 7/8-style table: overheads of the four detector
/// configurations over `baseline(row)`.
template <typename BaselineFn>
void print_table(const char* title, const char* baseline_name,
                 const std::vector<Row>& rows, BaselineFn baseline) {
  std::printf("\n%s\n", title);
  std::printf("%-10s %-26s %-28s %10s %9s %8s %10s\n", "Benchmark",
              "Input size", "Description", "Check v-r", "No steals",
              "Updates", "Reductions");
  std::vector<double> g_peerset, g_nosteal, g_updates, g_reduce;
  for (const Row& r : rows) {
    const double base = baseline(r);
    const double o_peerset = r.t_peerset / base;
    const double o_nosteal = r.t_nosteal / base;
    const double o_updates = r.t_updates / base;
    const double o_reduce = r.t_reduce / base;
    std::printf("%-10s %-26s %-28s %10.2f %9.2f %8.2f %10.2f\n",
                r.name.c_str(), r.input.c_str(), r.description.c_str(),
                o_peerset, o_nosteal, o_updates, o_reduce);
    g_peerset.push_back(o_peerset);
    g_nosteal.push_back(o_nosteal);
    g_updates.push_back(o_updates);
    g_reduce.push_back(o_reduce);
  }
  std::printf("%-10s %-26s %-28s %10.2f %9.2f %8.2f %10.2f\n", "geomean", "",
              "", geomean(g_peerset), geomean(g_nosteal), geomean(g_updates),
              geomean(g_reduce));
  std::printf("(overheads relative to %s; paper: Peer-Set geomean 2.32, SP+ "
              "16.76 over no instrumentation;\n 1.84 and 7.27 over an empty "
              "tool)\n",
              baseline_name);
}

inline double parse_scale(int argc, char** argv, double fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) return std::stod(arg.substr(8));
  }
  return fallback;
}

inline int parse_reps(int argc, char** argv, int fallback) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--reps=", 0) == 0) return std::stoi(arg.substr(7));
  }
  return fallback;
}

/// Value of `--key=VALUE`, or "" when absent.
inline std::string parse_arg(int argc, char** argv, const std::string& key) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

}  // namespace rader::bench
