// Parallel-engine speedup: the substrate sanity check.  The paper's
// benchmarks presume a working work-stealing runtime with reducers; this
// bench reports wall-clock and speedup of each benchmark on 1..P workers,
// verifying results stay deterministic.
#include <cstdio>
#include <thread>

#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "sched/parallel_engine.hpp"
#include "support/metrics.hpp"

int main(int argc, char** argv) {
  const double scale = rader::bench::parse_scale(argc, argv, 0.1);
  const int reps = rader::bench::parse_reps(argc, argv, 2);
  const unsigned max_workers =
      std::min(8u, std::max(2u, std::thread::hardware_concurrency()));
  std::printf("parallel_speedup: scale=%.3g reps=%d\n", scale, reps);
  std::printf("%-10s %10s", "benchmark", "serial(s)");
  for (unsigned w = 2; w <= max_workers; w *= 2) std::printf("   %2ux", w);
  std::printf("   verified\n");

  for (auto& w : rader::apps::make_paper_benchmarks(scale)) {
    const double t_serial = rader::metrics::time_best_of(reps, [&] { w.run(); });
    std::printf("%-10s %10.3f", w.name.c_str(), t_serial);
    bool ok = w.verify();
    for (unsigned workers = 2; workers <= max_workers; workers *= 2) {
      rader::ParallelEngine engine(workers);
      const double t = rader::metrics::time_best_of(reps, [&] {
        engine.run([&] { w.run(); });
      });
      ok = ok && w.verify();
      std::printf(" %6.2f", t_serial / t);
    }
    std::printf("   %s\n", ok ? "yes" : "NO!");
    std::fflush(stdout);
  }
  return 0;
}
