// Complexity-claim experiments (Theorems 1 and 5):
//   * Peer-Set runs in O(T α(x,x)): detector time per strand stays flat as
//     T grows;
//   * SP+ runs in O((T + Mτ) α(v,v)): time grows linearly in T, plus a term
//     linear in the number of simulated steals M times the reduce cost τ.
#include <cstdio>
#include <string>

#include "core/peerset.hpp"
#include "core/spplus.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"
#include "support/metrics.hpp"

namespace {

// A tunable workload: `blocks` sync blocks of `width` spawned updaters,
// each doing `work` annotated accesses; reduce cost scales with `tau`.
struct PaddedView {
  std::vector<long> cells;
};

int g_tau = 1;

struct padded_monoid {
  using value_type = PaddedView;
  static PaddedView identity() {
    return PaddedView{std::vector<long>(static_cast<std::size_t>(g_tau), 0)};
  }
  static void reduce(PaddedView& l, PaddedView& r) {
    if (l.cells.size() < r.cells.size()) l.cells.resize(r.cells.size());
    for (std::size_t i = 0; i < r.cells.size(); ++i) l.cells[i] += r.cells[i];
  }
};

void workload(int blocks, int width, int work) {
  static long pool[64];
  rader::reducer<padded_monoid> red;
  for (int b = 0; b < blocks; ++b) {
    for (int s = 0; s < width; ++s) {
      rader::spawn([&red, work] {
        for (int i = 0; i < work; ++i) {
          rader::shadow_write(&pool[i & 63], sizeof(long));
          pool[i & 63] += 1;
        }
        red.update([](PaddedView& v) {
          rader::shadow_write(v.cells.data(), sizeof(long));
          v.cells[0] += 1;
        });
      });
    }
    rader::sync();
  }
}

double run_with(rader::Tool* tool, const rader::spec::StealSpec* steal_spec,
                int blocks, int width, int work) {
  return rader::metrics::time_best_of(3, [&] {
    rader::SerialEngine engine(tool, steal_spec);
    engine.run([&] { workload(blocks, width, work); });
  });
}

}  // namespace

int main() {
  std::printf("detector_scaling\n");

  // Part 1: time vs. T (strand count), fixed steal count 0.
  std::printf("\n[1] linear scaling in T (Peer-Set and SP+, no steals)\n");
  std::printf("%8s %12s %12s %14s %14s\n", "blocks", "peerset(s)", "sp+(s)",
              "peerset ns/op", "sp+ ns/op");
  rader::spec::NoSteal none;
  for (const int blocks : {50, 100, 200, 400, 800}) {
    rader::RaceLog log1, log2;
    rader::PeerSetDetector peerset(&log1);
    rader::SpPlusDetector spplus(&log2);
    const double tp = run_with(&peerset, &none, blocks, 8, 20);
    const double ts = run_with(&spplus, &none, blocks, 8, 20);
    const double ops = static_cast<double>(blocks) * 8 * 21;
    std::printf("%8d %12.4f %12.4f %14.1f %14.1f\n", blocks, tp, ts,
                tp / ops * 1e9, ts / ops * 1e9);
  }

  // Part 2: time vs. M (steal count) at fixed T.
  std::printf("\n[2] SP+ cost of simulated steals (fixed T, growing M)\n");
  std::printf("%10s %10s %12s\n", "steal p", "steals", "sp+(s)");
  for (const double p : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    rader::spec::BernoulliSteal spec(1, p);
    rader::RaceLog log;
    rader::SpPlusDetector spplus(&log);
    rader::SerialEngine probe(nullptr, &spec);
    probe.run([] { workload(200, 8, 20); });
    const double t = run_with(&spplus, &spec, 200, 8, 20);
    std::printf("%10.2f %10llu %12.4f\n", p,
                static_cast<unsigned long long>(probe.stats().steals), t);
  }

  // Part 3: time vs. τ (reduce cost) at fixed T and M.
  std::printf("\n[3] SP+ cost of reduce operations (fixed T and M, growing "
              "tau)\n");
  std::printf("%8s %12s\n", "tau", "sp+(s)");
  rader::spec::StealAll all;
  for (const int tau : {1, 64, 512, 4096}) {
    g_tau = tau;
    rader::RaceLog log;
    rader::SpPlusDetector spplus(&log);
    const double t = run_with(&spplus, &all, 100, 8, 5);
    std::printf("%8d %12.4f\n", tau, t);
  }
  g_tau = 1;

  std::printf("\n(expected shapes: [1] flat ns/op — the α factor; [2] time\n"
              " grows with M; [3] time grows with tau — the +Mτ term of\n"
              " Theorem 5.)\n");
  return 0;
}
