// Sweep-scaling experiment: throughput of the parallel steal-specification
// sweep (core/sweep.hpp) under both execution strategies.
//
//   rerun   — every family member pays one full SP+ execution.
//   prefix  — members are ordered as a trie on steal decisions; each run
//             resumes from the deepest checkpoint on the shared prefix with
//             a forked detector, paying only the divergent suffix.
//
// The Theorem-7 reduce-coverage family is emitted in lexicographic triple
// order, so neighbouring members share deep decision prefixes: the prefix
// strategy's advantage grows with K (members C(K,3), shared prefix ~K).
// The harness reports runs/s per (family, strategy, jobs) and the
// prefix/rerun speedup at equal job counts.
//
// Flags:
//   --json=FILE       write the result table as JSON (BENCH_sweep.json)
//   --check-ratio=N   exit 1 unless prefix beats rerun by >= N at jobs=1
//                     on every tracked family (the scripts/check.sh gate)
//   --check-metrics-overhead=N
//                     measure the ENABLED live-sampling cost — the same
//                     sweep with --metrics-out JSONL sampling at a 1 ms
//                     interval versus without — and exit 1 if the geomean
//                     ratio exceeds N (the ISSUE budget is 1.05).  The
//                     samples land in a discarded stream; what is measured
//                     is the workers' publish() stores plus the monitor's
//                     wait-free reads.
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/sweep.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "spec/spec_family.hpp"
#include "support/metrics.hpp"

namespace {

// A sync block of K reducer updates (the Theorem-7 shape) with `work`
// annotated writes of synthetic per-strand data per update, so each SP+ run
// exercises the shadow space, not just the spawn bookkeeping.  Disjoint
// slots per strand: race-free by construction.  The instance owns its data
// for the lifetime of a sweep worker, so the access stream is
// address-stable across runs — the property the prefix strategy's resume
// verification (EngineCheckpoint::access_hash) demands.
struct SweepProgram {
  int k;
  int work;
  std::vector<long> data;

  SweepProgram(int k_in, int work_in)
      : k(k_in), work(work_in), data(static_cast<std::size_t>(k) * work, 0) {}

  void operator()() {
    rader::reducer<rader::monoid::op_add<long>> red;
    for (int i = 0; i < k; ++i) {
      rader::spawn([this, i] {
        for (int j = 0; j < work; ++j) {
          long& slot = data[static_cast<std::size_t>(i) * work + j];
          rader::shadow_write(&slot, sizeof(slot),
                             rader::SrcTag{"bench strand write"});
          slot += j;
        }
      });
      red.update([](long& v) { v += 1; });
    }
    rader::sync();
  }
};

// The prefix strategy's sweet spot: detector-heavy work concentrated at the
// START of the sync block.  The first spawn scans a wide slab — one
// annotated access the detector expands into slab_bytes/granule shadow
// updates, while the resume replay hashes it in O(1) — and the remaining
// K-1 spawns are cheap.  The Theorem-7 triples are emitted in trie DFS
// order (a slowest, c fastest), so consecutive members nearly always agree
// on the first decision and resume from a checkpoint PAST the slab; only
// the handful of runs where `a` itself changes pay for it again.  This is
// the shape of real detector workloads (big shared-structure scan up
// front, small per-strand updates after), not an adversarial construction.
struct FrontLoadProgram {
  int k;
  std::vector<char> slab;
  std::vector<long> tail;

  FrontLoadProgram(int k_in, int slab_bytes)
      : k(k_in), slab(static_cast<std::size_t>(slab_bytes), 0),
        tail(static_cast<std::size_t>(k), 0) {}

  void operator()() {
    rader::reducer<rader::monoid::op_add<long>> red;
    rader::spawn([this] {
      rader::shadow_write(slab.data(), slab.size(),
                          rader::SrcTag{"bench slab scan"});
      slab[0] = 1;
    });
    red.update([](long& v) { v += 1; });
    for (int i = 1; i < k; ++i) {
      rader::spawn([this, i] {
        long& slot = tail[static_cast<std::size_t>(i)];
        rader::shadow_write(&slot, sizeof(slot),
                            rader::SrcTag{"bench tail write"});
        slot += 1;
      });
      red.update([](long& v) { v += 1; });
    }
    rader::sync();
  }
};

struct Row {
  const char* strategy;
  unsigned jobs;
  std::uint64_t spec_runs;
  double seconds;
  double runs_per_s;
  std::uint64_t checkpoints;
  std::uint64_t forks;
  std::uint64_t fallbacks;
};

struct FamilyResult {
  std::string name;
  int k;
  int work;
  std::size_t family_size;
  bool tracked = false;  // subject to the --check-ratio floor
  std::vector<Row> rows;
  double prefix_speedup_jobs1 = 0.0;  // prefix runs/s over rerun runs/s
};

double run_once(const rader::ProgramFactory& factory,
                const std::vector<std::unique_ptr<rader::spec::StealSpec>>&
                    family,
                rader::SweepStrategy strategy, unsigned jobs, Row* row) {
  rader::SweepOptions options;
  options.threads = jobs;
  options.strategy = strategy;
  rader::metrics::Stopwatch t;
  const auto result = rader::sweep_family(factory, family, options);
  const double secs = t.seconds();
  if (result.log.any()) {
    std::fprintf(stderr, "BUG: race-free bench program reported races\n");
    std::exit(1);
  }
  if (result.spec_runs != family.size()) {
    std::fprintf(stderr, "BUG: spec_runs %llu != family size %zu\n",
                 static_cast<unsigned long long>(result.spec_runs),
                 family.size());
    std::exit(1);
  }
  row->spec_runs = result.spec_runs;
  row->seconds = secs;
  row->runs_per_s =
      secs > 0 ? static_cast<double>(result.spec_runs) / secs : 0.0;
  row->checkpoints =
      result.metrics.counter(rader::metrics::Counter::kSweepCheckpoints);
  row->forks = result.metrics.counter(rader::metrics::Counter::kSweepForks);
  row->fallbacks =
      result.metrics.counter(rader::metrics::Counter::kSweepResumeFallbacks);
  return row->runs_per_s;
}

FamilyResult bench_family(const std::string& name, int k, int work,
                          bool tracked,
                          const rader::ProgramFactory& factory) {
  FamilyResult out;
  out.name = name;
  out.k = k;
  out.work = work;
  out.tracked = tracked;
  const auto family =
      rader::spec::reduce_coverage_family(static_cast<std::uint32_t>(k));
  out.family_size = family.size();

  double rerun_jobs1 = 0.0, prefix_jobs1 = 0.0;
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    Row rerun{"rerun", jobs, 0, 0, 0, 0, 0, 0};
    const double rr = run_once(factory, family, rader::SweepStrategy::kRerun,
                               jobs, &rerun);
    out.rows.push_back(rerun);
    Row prefix{"prefix", jobs, 0, 0, 0, 0, 0, 0};
    const double pr = run_once(factory, family, rader::SweepStrategy::kPrefix,
                               jobs, &prefix);
    out.rows.push_back(prefix);
    if (jobs == 1) {
      rerun_jobs1 = rr;
      prefix_jobs1 = pr;
    }
    std::printf("%-12s %8zu %8u  %10.1f %10.1f  %7.2fx   ck=%llu fk=%llu "
                "fb=%llu\n",
                name.c_str(), out.family_size, jobs, rr, pr,
                rr > 0 ? pr / rr : 0.0,
                static_cast<unsigned long long>(prefix.checkpoints),
                static_cast<unsigned long long>(prefix.forks),
                static_cast<unsigned long long>(prefix.fallbacks));
  }
  out.prefix_speedup_jobs1 =
      rerun_jobs1 > 0 ? prefix_jobs1 / rerun_jobs1 : 0.0;
  return out;
}

/// Best-of-`reps` seconds for one sweep configuration, optionally with the
/// live JSONL metrics sampler enabled at a 1 ms interval (the worst
/// reasonable cadence: CI sweeps finish in milliseconds, so any slower
/// interval would measure nothing).
double time_sweep(const rader::ProgramFactory& factory,
                  const std::vector<std::unique_ptr<rader::spec::StealSpec>>&
                      family,
                  unsigned jobs, bool with_metrics, int reps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    std::ostringstream sink;
    rader::SweepOptions options;
    options.threads = jobs;
    if (with_metrics) {
      options.metrics_out = &sink;
      options.metrics_interval_ms = 1;
    }
    rader::metrics::Stopwatch t;
    const auto result = rader::sweep_family(factory, family, options);
    const double secs = t.seconds();
    if (result.spec_runs != family.size()) {
      std::fprintf(stderr, "BUG: metrics-overhead run lost specs\n");
      std::exit(1);
    }
    if (r == 0 || secs < best) best = secs;
  }
  return best;
}

std::string arg_value(int argc, char** argv, const std::string& key) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

void write_json(const std::string& path, unsigned cores,
                const std::vector<FamilyResult>& results) {
  FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(out, "{\n  \"bench\": \"sweep_scaling\",\n"
                    "  \"cores\": %u,\n  \"families\": [\n",
               cores);
  for (std::size_t f = 0; f < results.size(); ++f) {
    const FamilyResult& r = results[f];
    std::fprintf(out,
                 "    {\n      \"name\": \"%s\",\n      \"k\": %d,\n"
                 "      \"work\": %d,\n      \"family_size\": %zu,\n"
                 "      \"tracked\": %s,\n"
                 "      \"prefix_speedup_jobs1\": %.2f,\n"
                 "      \"rows\": [\n",
                 r.name.c_str(), r.k, r.work, r.family_size,
                 r.tracked ? "true" : "false", r.prefix_speedup_jobs1);
    for (std::size_t i = 0; i < r.rows.size(); ++i) {
      const Row& row = r.rows[i];
      std::fprintf(
          out,
          "        {\"strategy\": \"%s\", \"jobs\": %u, \"spec_runs\": %llu, "
          "\"seconds\": %.4f, \"runs_per_s\": %.1f, \"checkpoints\": %llu, "
          "\"forks\": %llu, \"resume_fallbacks\": %llu}%s\n",
          row.strategy, row.jobs,
          static_cast<unsigned long long>(row.spec_runs), row.seconds,
          row.runs_per_s, static_cast<unsigned long long>(row.checkpoints),
          static_cast<unsigned long long>(row.forks),
          static_cast<unsigned long long>(row.fallbacks),
          i + 1 < r.rows.size() ? "," : "");
    }
    std::fprintf(out, "      ]\n    }%s\n",
                 f + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned cores = std::thread::hardware_concurrency();
  const std::string json_path = arg_value(argc, argv, "json");
  const std::string ratio_text = arg_value(argc, argv, "check-ratio");
  const double check_ratio =
      ratio_text.empty() ? 0.0 : std::strtod(ratio_text.c_str(), nullptr);

  std::printf("sweep_scaling: rerun vs prefix strategy throughput "
              "(%u hardware thread(s))\n",
              cores);
  std::printf("%-12s %8s %8s  %10s %10s  %8s   %s\n", "family", "specs",
              "jobs", "rerun r/s", "prefix r/s", "speedup",
              "prefix telemetry");

  // Uniform families show the baseline advantage (the suffix SP+ work each
  // resume skips); the front-loaded families are the tracked gate — the
  // shape the prefix strategy exists for.  C(K,3)+C(K,2) members per
  // family; larger K means deeper shared prefixes.
  const auto uniform = [](int k, int work) -> rader::ProgramFactory {
    return [k, work] {
      auto p = std::make_shared<SweepProgram>(k, work);
      return std::function<void()>([p] { (*p)(); });
    };
  };
  const auto frontload = [](int k, int slab) -> rader::ProgramFactory {
    return [k, slab] {
      auto p = std::make_shared<FrontLoadProgram>(k, slab);
      return std::function<void()>([p] { (*p)(); });
    };
  };
  std::vector<FamilyResult> results;
  results.push_back(
      bench_family("reduce-k12", 12, 64, false, uniform(12, 64)));
  results.push_back(
      bench_family("frontload-k12", 12, 1 << 16, true, frontload(12, 1 << 16)));
  results.push_back(
      bench_family("frontload-k16", 16, 1 << 16, true, frontload(16, 1 << 16)));

  std::printf("\n");
  bool ratio_ok = true;
  for (const FamilyResult& r : results) {
    std::printf("%-14s prefix/rerun at jobs=1: %.2fx%s\n", r.name.c_str(),
                r.prefix_speedup_jobs1, r.tracked ? "  (tracked)" : "");
    if (check_ratio > 0 && r.tracked &&
        r.prefix_speedup_jobs1 < check_ratio) {
      ratio_ok = false;
    }
  }
  // Enabled-sampling overhead gate: the same rerun sweep with the JSONL
  // sampler on (1 ms interval, discarded stream) vs off, geomean over the
  // uniform family at several job counts.
  const std::string mo_text =
      arg_value(argc, argv, "check-metrics-overhead");
  const double mo_budget =
      mo_text.empty() ? 0.0 : std::strtod(mo_text.c_str(), nullptr);
  if (mo_budget > 0) {
    const auto family = rader::spec::reduce_coverage_family(12);
    const auto factory = uniform(12, 64);
    std::printf("\nmetrics-out sampling overhead (1 ms interval, rerun):\n");
    std::vector<double> mo_ratios;
    for (const unsigned jobs : {1u, 2u, 4u}) {
      const double off = time_sweep(factory, family, jobs, false, 3);
      const double on = time_sweep(factory, family, jobs, true, 3);
      const double ratio = off > 0 ? on / off : 1.0;
      mo_ratios.push_back(ratio);
      std::printf("  jobs=%u  off %.4fs  on %.4fs  %.3fx\n", jobs, off, on,
                  ratio);
    }
    const double mo_geomean = rader::bench::geomean(mo_ratios);
    std::printf("  geomean %.3fx  (budget: <= %.2f)\n", mo_geomean,
                mo_budget);
    if (mo_geomean > mo_budget) {
      std::fprintf(stderr,
                   "FAIL: enabled metrics sampling overhead %.3fx exceeds "
                   "the %.2fx budget\n",
                   mo_geomean, mo_budget);
      return 1;
    }
  }

  if (!json_path.empty()) {
    write_json(json_path, cores, results);
    std::printf("wrote %s\n", json_path.c_str());
  }
  if (check_ratio > 0 && !ratio_ok) {
    std::fprintf(stderr,
                 "FAIL: prefix strategy below the %.1fx floor on a tracked "
                 "family\n",
                 check_ratio);
    return 1;
  }
  return 0;
}
