// Sweep-scaling experiment: throughput of the parallel steal-specification
// sweep (core/sweep.hpp) versus worker count, over the Theorem-7 reduce
// coverage family.
//
// Each family member costs one full SP+ execution of the program, so the
// sweep is embarrassingly parallel; with W workers on a machine with at
// least W cores the throughput (SP+ runs/s) should scale close to linearly.
// The harness reports runs/s and speedup relative to one worker for
// W ∈ {1, 2, 4, 8}.  On a machine with fewer hardware threads than W the
// speedup physically cannot appear; the table prints the detected core count
// so such rows can be read for what they are.
#include <cstdio>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/sweep.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "spec/spec_family.hpp"
#include "support/metrics.hpp"

namespace {

// A sync block of K reducer updates (the Theorem-7 shape) with `work`
// annotated writes of synthetic per-strand data per update, so each SP+ run
// exercises the shadow space, not just the spawn bookkeeping.  Disjoint
// slots per strand: race-free by construction.
struct SweepProgram {
  int k;
  int work;
  std::vector<long> data;

  SweepProgram(int k_in, int work_in)
      : k(k_in), work(work_in), data(static_cast<std::size_t>(k) * work, 0) {}

  void operator()() {
    rader::reducer<rader::monoid::op_add<long>> red;
    for (int i = 0; i < k; ++i) {
      rader::spawn([this, i] {
        for (int j = 0; j < work; ++j) {
          long& slot = data[static_cast<std::size_t>(i) * work + j];
          rader::shadow_write(&slot, sizeof(slot),
                             rader::SrcTag{"bench strand write"});
          slot += j;
        }
      });
      red.update([](long& v) { v += 1; });
    }
    rader::sync();
  }
};

}  // namespace

int main() {
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("sweep_scaling: parallel family sweep throughput "
              "(%u hardware thread(s))\n",
              cores);
  std::printf("%4s %8s %12s %8s %12s %10s %9s\n", "K", "work", "family",
              "jobs", "runs", "runs/s", "speedup");

  for (const int k : {8, 12}) {
    const int work = 64;
    const auto family =
        rader::spec::reduce_coverage_family(static_cast<std::uint32_t>(k));
    const rader::ProgramFactory factory = [k, work] {
      auto p = std::make_shared<SweepProgram>(k, work);
      return std::function<void()>([p] { (*p)(); });
    };
    double base_rate = 0.0;
    for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
      rader::SweepOptions options;
      options.threads = jobs;
      rader::metrics::Stopwatch t;
      const auto result = rader::sweep_family(factory, family, options);
      const double secs = t.seconds();
      if (result.log.any()) {
        std::printf("BUG: race-free bench program reported races\n");
        return 1;
      }
      const double rate =
          secs > 0 ? static_cast<double>(result.spec_runs) / secs : 0.0;
      if (jobs == 1) base_rate = rate;
      std::printf("%4d %8d %12zu %8u %12llu %10.1f %8.2fx\n", k, work,
                  family.size(), jobs,
                  static_cast<unsigned long long>(result.spec_runs), rate,
                  base_rate > 0 ? rate / base_rate : 0.0);
    }
  }
  std::printf("\n(each run is an independent serial SP+ execution; speedup\n"
              " tracks min(jobs, hardware threads) on an idle machine.)\n");
  return 0;
}
