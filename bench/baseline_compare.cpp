// Baseline ablation: SP-bags (disjoint-set bags, the paper's foundation) vs
// SP-order (order-maintenance labels, Bender et al.) vs SP+ (SP-bags +
// view tracking) on the six benchmarks.
//
// The related-work comparison the paper makes analytically: SP-bags pays
// α(v,v) per check; SP-order pays O(1) per check but O(log n) amortized per
// strand insertion; SP+ adds view bookkeeping on top of SP-bags.  This
// harness measures the constant factors on real access streams.
#include <cstdio>

#include "apps/workloads.hpp"
#include "bench_util.hpp"
#include "core/spbags.hpp"
#include "core/sporder.hpp"

int main(int argc, char** argv) {
  using namespace rader;
  const double scale = bench::parse_scale(argc, argv, 0.05);
  const int reps = bench::parse_reps(argc, argv, 2);
  std::printf("baseline_compare: scale=%.3g reps=%d\n", scale, reps);
  std::printf("%-10s %12s %12s %12s %12s %14s\n", "benchmark", "none(s)",
              "spbags", "sporder", "sp+ (x over none)", "OM relabels");

  spec::NoSteal none;
  for (auto& w : apps::make_paper_benchmarks(scale)) {
    const double t_none = bench::time_config(w, nullptr, &none, reps);

    RaceLog bags_log;
    SpBagsDetector bags(&bags_log);
    const double t_bags = bench::time_config(w, &bags, &none, reps);

    RaceLog order_log;
    SpOrderDetector order(&order_log);
    const double t_order = bench::time_config(w, &order, &none, reps);
    const std::uint64_t relabels = order.relabel_count();

    RaceLog plus_log;
    SpPlusDetector plus(&plus_log);
    const double t_plus = bench::time_config(w, &plus, &none, reps);

    std::printf("%-10s %12.4f %9.2fx %9.2fx %9.2fx %17llu\n", w.name.c_str(),
                t_none, t_bags / t_none, t_order / t_none, t_plus / t_none,
                static_cast<unsigned long long>(relabels));
  }
  std::printf(
      "\n(all three run the no-steal serial schedule; SP-bags and SP-order\n"
      " are reducer-oblivious baselines, SP+ is the paper's detector.)\n");
  return 0;
}
