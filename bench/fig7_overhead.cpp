// Figure 7: "Rader's overhead over running 6 benchmarks without
// instrumentation."  One row per benchmark, four detector configurations,
// overheads relative to the uninstrumented serial run.
//
// Also measures the observability layer's emission overhead: the same SP+ /
// no-steals detection run with and without an installed metrics::Registry
// (support/metrics.hpp).  The budget is <= 5% (geomean): bump() must stay a
// thread-local load plus one branch.
//
// Usage: fig7_overhead [--scale=S] [--reps=N]
//   S scales input sizes toward the paper's (default keeps CI fast).
#include <cstdio>

#include "bench_util.hpp"
#include "support/metrics.hpp"

namespace {

/// SP+ / no-steals with a metrics registry installed for the whole run.
double time_spplus_with_metrics(rader::apps::Workload& w, int reps) {
  rader::spec::NoSteal none;
  rader::RaceLog log;
  rader::SpPlusDetector spplus(&log);
  rader::metrics::Registry reg;
  rader::metrics::Scope scope(&reg);
  return rader::bench::time_config(w, &spplus, &none, reps);
}

double time_spplus_without_metrics(rader::apps::Workload& w, int reps) {
  rader::spec::NoSteal none;
  rader::RaceLog log;
  rader::SpPlusDetector spplus(&log);
  return rader::bench::time_config(w, &spplus, &none, reps);
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = rader::bench::parse_scale(argc, argv, 0.05);
  const int reps = rader::bench::parse_reps(argc, argv, 2);
  std::printf("fig7_overhead: scale=%.3g reps=%d\n", scale, reps);

  std::vector<rader::bench::Row> rows;
  std::vector<double> metrics_ratios;
  std::vector<std::string> metrics_names;
  for (auto& w : rader::apps::make_paper_benchmarks(scale)) {
    std::printf("  measuring %-10s (%s)...\n", w.name.c_str(),
                w.input_desc.c_str());
    std::fflush(stdout);
    rows.push_back(rader::bench::measure_workload(w, reps));
    const double off = time_spplus_without_metrics(w, reps);
    const double on = time_spplus_with_metrics(w, reps);
    metrics_ratios.push_back(on / off);
    metrics_names.push_back(w.name);
  }
  rader::bench::print_table(
      "Figure 7 — overhead over NO INSTRUMENTATION", "no instrumentation",
      rows, [](const rader::bench::Row& r) { return r.t_none; });

  std::printf("\nmetrics-emission overhead (SP+ no-steals, registry "
              "installed vs not):\n");
  for (std::size_t i = 0; i < metrics_ratios.size(); ++i) {
    std::printf("  %-10s %.3fx\n", metrics_names[i].c_str(),
                metrics_ratios[i]);
  }
  const double metrics_geomean = rader::bench::geomean(metrics_ratios);
  std::printf("  %-10s %.3fx  (budget: <= 1.05)\n", "geomean",
              metrics_geomean);

  std::printf("\nabsolute uninstrumented times:\n");
  for (const auto& r : rows) {
    std::printf("  %-10s %8.3fs  (K=%u, D=%llu, %llu spawns)\n",
                r.name.c_str(), r.t_none, r.probe.max_sync_block,
                static_cast<unsigned long long>(r.probe.max_spawn_depth),
                static_cast<unsigned long long>(r.probe.spawns));
    std::printf("             view churn under check-reductions: %llu "
                "steals, %llu identities, %llu user reduces\n",
                static_cast<unsigned long long>(r.reduce_probe.steals),
                static_cast<unsigned long long>(r.reduce_probe.identities),
                static_cast<unsigned long long>(r.reduce_probe.user_reduces));
  }
  return 0;
}
