// Figure 7: "Rader's overhead over running 6 benchmarks without
// instrumentation."  One row per benchmark, four detector configurations,
// overheads relative to the uninstrumented serial run.
//
// Usage: fig7_overhead [--scale=S] [--reps=N]
//   S scales input sizes toward the paper's (default keeps CI fast).
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  const double scale = rader::bench::parse_scale(argc, argv, 0.05);
  const int reps = rader::bench::parse_reps(argc, argv, 2);
  std::printf("fig7_overhead: scale=%.3g reps=%d\n", scale, reps);

  std::vector<rader::bench::Row> rows;
  for (auto& w : rader::apps::make_paper_benchmarks(scale)) {
    std::printf("  measuring %-10s (%s)...\n", w.name.c_str(),
                w.input_desc.c_str());
    std::fflush(stdout);
    rows.push_back(rader::bench::measure_workload(w, reps));
  }
  rader::bench::print_table(
      "Figure 7 — overhead over NO INSTRUMENTATION", "no instrumentation",
      rows, [](const rader::bench::Row& r) { return r.t_none; });

  std::printf("\nabsolute uninstrumented times:\n");
  for (const auto& r : rows) {
    std::printf("  %-10s %8.3fs  (K=%u, D=%llu, %llu spawns)\n",
                r.name.c_str(), r.t_none, r.probe.max_sync_block,
                static_cast<unsigned long long>(r.probe.max_spawn_depth),
                static_cast<unsigned long long>(r.probe.spawns));
    std::printf("             view churn under check-reductions: %llu "
                "steals, %llu identities, %llu user reduces\n",
                static_cast<unsigned long long>(r.reduce_probe.steals),
                static_cast<unsigned long long>(r.reduce_probe.identities),
                static_cast<unsigned long long>(r.reduce_probe.user_reduces));
  }
  return 0;
}
