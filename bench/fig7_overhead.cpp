// Figure 7: "Rader's overhead over running 6 benchmarks without
// instrumentation."  One row per benchmark, four detector configurations,
// overheads relative to the uninstrumented serial run.
//
// Also measures the observability layer's emission overhead: the same SP+ /
// no-steals detection run with and without an installed metrics::Registry
// (support/metrics.hpp).  The budget is <= 5% (geomean): bump() must stay a
// thread-local load plus one branch.
//
// Finally guards the dormant tracing hooks (support/trace.hpp): with tracing
// off (the default), every emit() in the engines and detectors is a
// thread-local load plus a branch.  The guard measures that dormant cost
// directly, counts the events each workload would emit, and bounds the
// implied slowdown versus a build with no hooks at all.  Budget: <= 1.02x
// geomean.
//
// Usage: fig7_overhead [--scale=S] [--reps=N]
//   S scales input sizes toward the paper's (default keeps CI fast).
#include <cstdio>

#include "bench_util.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace {

/// SP+ / no-steals with a metrics registry installed for the whole run.
double time_spplus_with_metrics(rader::apps::Workload& w, int reps) {
  rader::spec::NoSteal none;
  rader::RaceLog log;
  rader::SpPlusDetector spplus(&log);
  rader::metrics::Registry reg;
  rader::metrics::Scope scope(&reg);
  return rader::bench::time_config(w, &spplus, &none, reps);
}

double time_spplus_without_metrics(rader::apps::Workload& w, int reps) {
  rader::spec::NoSteal none;
  rader::RaceLog log;
  rader::SpPlusDetector spplus(&log);
  return rader::bench::time_config(w, &spplus, &none, reps);
}

/// Per-call cost of a dormant trace::emit() (tracing off): a thread-local
/// load and a not-taken branch.  The barrier keeps the compiler from
/// hoisting the TL load out of the loop or deleting the calls outright.
double dormant_emit_ns() {
  constexpr std::uint64_t kIters = 1 << 24;
  rader::metrics::Stopwatch sw;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    rader::trace::emit(rader::trace::EventKind::kFrameEnter,
                       rader::FrameId{0}, i);
    asm volatile("" ::: "memory");
  }
  return static_cast<double>(sw.nanos()) / static_cast<double>(kIters);
}

/// Events the SP+ / no-steals run of `w` would emit with tracing on
/// (recorded + dropped: the ring may wrap, the hooks still fired).
std::uint64_t traced_event_count(rader::apps::Workload& w) {
  rader::trace::Session session;
  rader::trace::Scope scope(&session, w.name);
  rader::spec::NoSteal none;
  rader::RaceLog log;
  rader::SpPlusDetector spplus(&log);
  rader::SerialEngine engine(&spplus, &none);
  engine.run([&] { w.run(); });
  return session.total_recorded();
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = rader::bench::parse_scale(argc, argv, 0.05);
  const int reps = rader::bench::parse_reps(argc, argv, 2);
  std::printf("fig7_overhead: scale=%.3g reps=%d\n", scale, reps);

  std::vector<rader::bench::Row> rows;
  std::vector<double> metrics_ratios;
  std::vector<std::string> metrics_names;
  for (auto& w : rader::apps::make_paper_benchmarks(scale)) {
    std::printf("  measuring %-10s (%s)...\n", w.name.c_str(),
                w.input_desc.c_str());
    std::fflush(stdout);
    rows.push_back(rader::bench::measure_workload(w, reps));
    const double off = time_spplus_without_metrics(w, reps);
    const double on = time_spplus_with_metrics(w, reps);
    metrics_ratios.push_back(on / off);
    metrics_names.push_back(w.name);
  }
  rader::bench::print_table(
      "Figure 7 — overhead over NO INSTRUMENTATION", "no instrumentation",
      rows, [](const rader::bench::Row& r) { return r.t_none; });

  std::printf("\nmetrics-emission overhead (SP+ no-steals, registry "
              "installed vs not):\n");
  for (std::size_t i = 0; i < metrics_ratios.size(); ++i) {
    std::printf("  %-10s %.3fx\n", metrics_names[i].c_str(),
                metrics_ratios[i]);
  }
  const double metrics_geomean = rader::bench::geomean(metrics_ratios);
  std::printf("  %-10s %.3fx  (budget: <= 1.05)\n", "geomean",
              metrics_geomean);

  // Tracing-disabled guard: dormant emit() cost times the events each
  // workload would emit, as a fraction of the SP+ / no-steals runtime.
  const double emit_ns = dormant_emit_ns();
  std::printf("\ntracing-disabled overhead (dormant emit: %.2f ns/event):\n",
              emit_ns);
  std::vector<double> trace_ratios;
  auto fresh = rader::apps::make_paper_benchmarks(scale);
  for (std::size_t i = 0; i < rows.size() && i < fresh.size(); ++i) {
    const std::uint64_t events = traced_event_count(fresh[i]);
    const double hook_seconds = static_cast<double>(events) * emit_ns * 1e-9;
    const double ratio = 1.0 + hook_seconds / rows[i].t_nosteal;
    trace_ratios.push_back(ratio);
    std::printf("  %-10s %12llu events  %.4fx\n", rows[i].name.c_str(),
                static_cast<unsigned long long>(events), ratio);
  }
  const double trace_geomean = rader::bench::geomean(trace_ratios);
  std::printf("  %-10s %.4fx  (budget: <= 1.02)\n", "geomean", trace_geomean);
  if (trace_geomean > 1.02) {
    std::fprintf(stderr, "!! tracing-disabled overhead %.4fx exceeds the "
                 "1.02x geomean budget\n", trace_geomean);
    return 1;
  }

  std::printf("\nabsolute uninstrumented times:\n");
  for (const auto& r : rows) {
    std::printf("  %-10s %8.3fs  (K=%u, D=%llu, %llu spawns)\n",
                r.name.c_str(), r.t_none, r.probe.max_sync_block,
                static_cast<unsigned long long>(r.probe.max_spawn_depth),
                static_cast<unsigned long long>(r.probe.spawns));
    std::printf("             view churn under check-reductions: %llu "
                "steals, %llu identities, %llu user reduces\n",
                static_cast<unsigned long long>(r.reduce_probe.steals),
                static_cast<unsigned long long>(r.reduce_probe.identities),
                static_cast<unsigned long long>(r.reduce_probe.user_reduces));
  }
  return 0;
}
