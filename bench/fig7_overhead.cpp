// Figure 7: "Rader's overhead over running 6 benchmarks without
// instrumentation."  One row per benchmark, four detector configurations,
// overheads relative to the uninstrumented serial run.
//
// Also measures the observability layer's emission overhead: the same SP+ /
// no-steals detection run with and without an installed metrics::Registry
// (support/metrics.hpp).  The budget is <= 5% (geomean): bump() must stay a
// thread-local load plus one branch.
//
// Finally guards the dormant tracing hooks (support/trace.hpp): with tracing
// off (the default), every emit() in the engines and detectors is a
// thread-local load plus a branch.  The guard measures that dormant cost
// directly, counts the events each workload would emit, and bounds the
// implied slowdown versus a build with no hooks at all.  Budget: <= 1.02x
// geomean.
//
// The same guard covers the rest of the observability hub's dormant hooks:
// histogram record() and gauge_add() with no registry installed, and
// prof::Phase with no profiler installed — each must be a thread-local load
// plus a not-taken branch.  Their per-call costs are measured directly and,
// charged per instrumented event (a deliberate overestimate: gauges and
// phases fire orders of magnitude less often than accesses), bounded by the
// same <= 1.02x geomean budget.
//
// Usage: fig7_overhead [--scale=S] [--reps=N] [--json=FILE]
//   S scales input sizes toward the paper's (default keeps CI fast).
//   --json=FILE appends machine-readable results for trend tracking
//   (scripts/nightly_bench.sh).
#include <cstdio>

#include "bench_util.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/trace.hpp"

namespace {

/// SP+ / no-steals with a metrics registry installed for the whole run.
double time_spplus_with_metrics(rader::apps::Workload& w, int reps) {
  rader::spec::NoSteal none;
  rader::RaceLog log;
  rader::SpPlusDetector spplus(&log);
  rader::metrics::Registry reg;
  rader::metrics::Scope scope(&reg);
  return rader::bench::time_config(w, &spplus, &none, reps);
}

double time_spplus_without_metrics(rader::apps::Workload& w, int reps) {
  rader::spec::NoSteal none;
  rader::RaceLog log;
  rader::SpPlusDetector spplus(&log);
  return rader::bench::time_config(w, &spplus, &none, reps);
}

/// Per-call cost of a dormant trace::emit() (tracing off): a thread-local
/// load and a not-taken branch.  The barrier keeps the compiler from
/// hoisting the TL load out of the loop or deleting the calls outright.
double dormant_emit_ns() {
  constexpr std::uint64_t kIters = 1 << 24;
  rader::metrics::Stopwatch sw;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    rader::trace::emit(rader::trace::EventKind::kFrameEnter,
                       rader::FrameId{0}, i);
    asm volatile("" ::: "memory");
  }
  return static_cast<double>(sw.nanos()) / static_cast<double>(kIters);
}

/// Per-call cost of a dormant metrics::record() (no registry installed).
double dormant_record_ns() {
  constexpr std::uint64_t kIters = 1 << 24;
  rader::metrics::Stopwatch sw;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    rader::metrics::record(rader::metrics::Histogram::kAccessBytes, i);
    asm volatile("" ::: "memory");
  }
  return static_cast<double>(sw.nanos()) / static_cast<double>(kIters);
}

/// Per-call cost of a dormant metrics::gauge_add() (no registry installed).
double dormant_gauge_ns() {
  constexpr std::uint64_t kIters = 1 << 24;
  rader::metrics::Stopwatch sw;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    rader::metrics::gauge_add(rader::metrics::Gauge::kDequeSize,
                              static_cast<std::int64_t>(i & 1));
    asm volatile("" ::: "memory");
  }
  return static_cast<double>(sw.nanos()) / static_cast<double>(kIters);
}

/// Per-call cost of a dormant prof::Phase (no profiler installed): the
/// constructor's thread-local load and the destructor's not-taken branch.
double dormant_phase_ns() {
  constexpr std::uint64_t kIters = 1 << 24;
  rader::metrics::Stopwatch sw;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    rader::prof::Phase phase("bench-dormant");
    asm volatile("" ::: "memory");
  }
  return static_cast<double>(sw.nanos()) / static_cast<double>(kIters);
}

/// Events the SP+ / no-steals run of `w` would emit with tracing on
/// (recorded + dropped: the ring may wrap, the hooks still fired).
std::uint64_t traced_event_count(rader::apps::Workload& w) {
  rader::trace::Session session;
  rader::trace::Scope scope(&session, w.name);
  rader::spec::NoSteal none;
  rader::RaceLog log;
  rader::SpPlusDetector spplus(&log);
  rader::SerialEngine engine(&spplus, &none);
  engine.run([&] { w.run(); });
  return session.total_recorded();
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = rader::bench::parse_scale(argc, argv, 0.05);
  const int reps = rader::bench::parse_reps(argc, argv, 2);
  std::printf("fig7_overhead: scale=%.3g reps=%d\n", scale, reps);

  std::vector<rader::bench::Row> rows;
  std::vector<double> metrics_ratios;
  std::vector<std::string> metrics_names;
  for (auto& w : rader::apps::make_paper_benchmarks(scale)) {
    std::printf("  measuring %-10s (%s)...\n", w.name.c_str(),
                w.input_desc.c_str());
    std::fflush(stdout);
    rows.push_back(rader::bench::measure_workload(w, reps));
    const double off = time_spplus_without_metrics(w, reps);
    const double on = time_spplus_with_metrics(w, reps);
    metrics_ratios.push_back(on / off);
    metrics_names.push_back(w.name);
  }
  rader::bench::print_table(
      "Figure 7 — overhead over NO INSTRUMENTATION", "no instrumentation",
      rows, [](const rader::bench::Row& r) { return r.t_none; });

  std::printf("\nmetrics-emission overhead (SP+ no-steals, registry "
              "installed vs not):\n");
  for (std::size_t i = 0; i < metrics_ratios.size(); ++i) {
    std::printf("  %-10s %.3fx\n", metrics_names[i].c_str(),
                metrics_ratios[i]);
  }
  const double metrics_geomean = rader::bench::geomean(metrics_ratios);
  std::printf("  %-10s %.3fx  (budget: <= 1.05)\n", "geomean",
              metrics_geomean);

  // Tracing-disabled guard: dormant emit() cost times the events each
  // workload would emit, as a fraction of the SP+ / no-steals runtime.
  const double emit_ns = dormant_emit_ns();
  std::printf("\ntracing-disabled overhead (dormant emit: %.2f ns/event):\n",
              emit_ns);
  std::vector<double> trace_ratios;
  std::vector<std::uint64_t> event_counts;
  auto fresh = rader::apps::make_paper_benchmarks(scale);
  for (std::size_t i = 0; i < rows.size() && i < fresh.size(); ++i) {
    const std::uint64_t events = traced_event_count(fresh[i]);
    event_counts.push_back(events);
    const double hook_seconds = static_cast<double>(events) * emit_ns * 1e-9;
    const double ratio = 1.0 + hook_seconds / rows[i].t_nosteal;
    trace_ratios.push_back(ratio);
    std::printf("  %-10s %12llu events  %.4fx\n", rows[i].name.c_str(),
                static_cast<unsigned long long>(events), ratio);
  }
  const double trace_geomean = rader::bench::geomean(trace_ratios);
  std::printf("  %-10s %.4fx  (budget: <= 1.02)\n", "geomean", trace_geomean);
  if (trace_geomean > 1.02) {
    std::fprintf(stderr, "!! tracing-disabled overhead %.4fx exceeds the "
                 "1.02x geomean budget\n", trace_geomean);
    return 1;
  }

  // Observability-dormant guard: histogram record, gauge add, and prof phase
  // hooks with no consumer installed, each charged once per instrumented
  // event (a deliberate overestimate — gauge and phase sites fire far less
  // often than access sites) against the SP+ / no-steals runtime.
  const double record_ns = dormant_record_ns();
  const double gauge_ns = dormant_gauge_ns();
  const double phase_ns = dormant_phase_ns();
  const double obs_ns = record_ns + gauge_ns + phase_ns;
  std::printf("\nobservability-dormant overhead (record %.2f + gauge %.2f + "
              "phase %.2f = %.2f ns/event):\n",
              record_ns, gauge_ns, phase_ns, obs_ns);
  std::vector<double> obs_ratios;
  for (std::size_t i = 0; i < rows.size() && i < event_counts.size(); ++i) {
    const double hook_seconds =
        static_cast<double>(event_counts[i]) * obs_ns * 1e-9;
    const double ratio = 1.0 + hook_seconds / rows[i].t_nosteal;
    obs_ratios.push_back(ratio);
    std::printf("  %-10s %12llu events  %.4fx\n", rows[i].name.c_str(),
                static_cast<unsigned long long>(event_counts[i]), ratio);
  }
  const double obs_geomean = rader::bench::geomean(obs_ratios);
  std::printf("  %-10s %.4fx  (budget: <= 1.02)\n", "geomean", obs_geomean);
  if (obs_geomean > 1.02) {
    std::fprintf(stderr, "!! observability-dormant overhead %.4fx exceeds "
                 "the 1.02x geomean budget\n", obs_geomean);
    return 1;
  }

  std::printf("\nabsolute uninstrumented times:\n");
  for (const auto& r : rows) {
    std::printf("  %-10s %8.3fs  (K=%u, D=%llu, %llu spawns)\n",
                r.name.c_str(), r.t_none, r.probe.max_sync_block,
                static_cast<unsigned long long>(r.probe.max_spawn_depth),
                static_cast<unsigned long long>(r.probe.spawns));
    std::printf("             view churn under check-reductions: %llu "
                "steals, %llu identities, %llu user reduces\n",
                static_cast<unsigned long long>(r.reduce_probe.steals),
                static_cast<unsigned long long>(r.reduce_probe.identities),
                static_cast<unsigned long long>(r.reduce_probe.user_reduces));
  }

  const std::string json_path = rader::bench::parse_arg(argc, argv, "json");
  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"fig7_overhead\",\n"
                      "  \"scale\": %g,\n  \"reps\": %d,\n"
                      "  \"metrics_geomean\": %.4f,\n"
                      "  \"trace_dormant_geomean\": %.4f,\n"
                      "  \"observability_dormant_geomean\": %.4f,\n"
                      "  \"rows\": [\n",
                 scale, reps, metrics_geomean, trace_geomean, obs_geomean);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"t_none\": %.6f, "
                   "\"t_peerset\": %.6f, \"t_nosteal\": %.6f, "
                   "\"t_updates\": %.6f, \"t_reduce\": %.6f, "
                   "\"overhead_nosteal\": %.4f}%s\n",
                   r.name.c_str(), r.t_none, r.t_peerset, r.t_nosteal,
                   r.t_updates, r.t_reduce,
                   r.t_none > 0 ? r.t_nosteal / r.t_none : 0.0,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
