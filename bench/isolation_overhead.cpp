// Crash-isolation overhead experiment: the same specification-family sweep
// run in-process versus under --isolate=procs (core/sweep.hpp,
// docs/ROBUSTNESS.md).
//
// The isolated supervisor pays fork-per-shard, per-spec pipe traffic
// (race-log JSON + metrics snapshots), and the final cross-process merge on
// top of the detector work itself.  The gate keeps that tax honest: on a
// clean sweep the geomean isolated/in-process wall-time ratio across the
// measured job counts must stay within the ISSUE budget of 1.25x.
//
// A second, informational section measures the recovery machinery itself:
// one injected SIGSEGV (support/faultpoint.hpp) forces a retry and a
// quarantine, and the harness reports the sweep.child_restart_nanos
// latency the supervisor spent relaunching shards.
//
// Flags:
//   --json=FILE       write the result table as JSON (BENCH_isolation.json)
//   --check-ratio=N   exit 1 when the clean-sweep overhead geomean
//                     exceeds N (the scripts/check.sh --full gate: 1.25)
//   --reps=N          best-of reps per configuration (default 3)
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/sweep.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "spec/spec_family.hpp"
#include "support/faultpoint.hpp"
#include "support/metrics.hpp"

namespace {

// The sweep_scaling uniform shape: a sync block of K reducer updates with
// `work` annotated disjoint-slot writes per update — race-free, detector-
// heavy, address-stable across runs.  Heavy enough per spec that the
// isolated run's fork-per-shard cost is measured against real work, not
// against an empty loop.
struct SweepProgram {
  int k;
  int work;
  std::vector<long> data;

  SweepProgram(int k_in, int work_in)
      : k(k_in), work(work_in), data(static_cast<std::size_t>(k) * work, 0) {}

  void operator()() {
    rader::reducer<rader::monoid::op_add<long>> red;
    for (int i = 0; i < k; ++i) {
      rader::spawn([this, i] {
        for (int j = 0; j < work; ++j) {
          long& slot = data[static_cast<std::size_t>(i) * work + j];
          rader::shadow_write(&slot, sizeof(slot),
                             rader::SrcTag{"bench strand write"});
          slot += j;
        }
      });
      red.update([](long& v) { v += 1; });
    }
    rader::sync();
  }
};

struct Row {
  unsigned jobs;
  double inproc_seconds;
  double isolated_seconds;
  double ratio;
};

double time_sweep(const rader::ProgramFactory& factory,
                  const std::vector<std::unique_ptr<rader::spec::StealSpec>>&
                      family,
                  unsigned jobs, bool isolated, int reps,
                  rader::SweepResult* last = nullptr) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    rader::SweepOptions options;
    options.threads = jobs;
    if (isolated) {
      options.isolation = rader::SweepIsolation::kProcs;
    }
    rader::metrics::Stopwatch t;
    auto result = rader::sweep_family(factory, family, options);
    const double secs = t.seconds();
    if (result.log.any() || !result.failures.empty() ||
        result.spec_runs != family.size()) {
      std::fprintf(stderr, "BUG: clean bench sweep lost specs or raced\n");
      std::exit(1);
    }
    if (r == 0 || secs < best) best = secs;
    if (last != nullptr) *last = std::move(result);
  }
  return best;
}

constexpr int kK = 12;
constexpr int kWork = 512;

std::string arg_value(int argc, char** argv, const std::string& key) {
  const std::string prefix = "--" + key + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned cores = std::thread::hardware_concurrency();
  const std::string json_path = arg_value(argc, argv, "json");
  const std::string ratio_text = arg_value(argc, argv, "check-ratio");
  const double check_ratio =
      ratio_text.empty() ? 0.0 : std::strtod(ratio_text.c_str(), nullptr);
  const std::string reps_text = arg_value(argc, argv, "reps");
  const int reps =
      reps_text.empty() ? 3 : static_cast<int>(std::strtol(
                                  reps_text.c_str(), nullptr, 10));

  const auto family = rader::spec::reduce_coverage_family(kK);
  const rader::ProgramFactory factory = [] {
    auto p = std::make_shared<SweepProgram>(kK, kWork);
    return std::function<void()>([p] { (*p)(); });
  };

  std::printf("isolation_overhead: --isolate=procs vs in-process sweep "
              "(%zu spec(s), %u hardware thread(s))\n",
              family.size(), cores);
  std::printf("%6s  %12s %12s  %8s\n", "jobs", "inproc s", "isolated s",
              "ratio");

  std::vector<Row> rows;
  std::vector<double> ratios;
  for (const unsigned jobs : {1u, 2u, 4u}) {
    const double inproc = time_sweep(factory, family, jobs, false, reps);
    const double isolated = time_sweep(factory, family, jobs, true, reps);
    const double ratio = inproc > 0 ? isolated / inproc : 1.0;
    rows.push_back({jobs, inproc, isolated, ratio});
    ratios.push_back(ratio);
    std::printf("%6u  %12.4f %12.4f  %7.3fx\n", jobs, inproc, isolated,
                ratio);
  }
  const double geomean = rader::bench::geomean(ratios);
  if (check_ratio > 0) {
    std::printf("geomean %.3fx  (budget: <= %.2f)\n", geomean, check_ratio);
  } else {
    std::printf("geomean %.3fx\n", geomean);
  }

  // Recovery cost, informational: one injected SIGSEGV at family index 5
  // drives first-hit -> retry -> quarantine; sweep.child_restart_nanos
  // holds the relaunch latencies the supervisor paid.
  std::string fault_error;
  if (!rader::faultpoint::arm("sweep.spec:crash:5", &fault_error)) {
    std::fprintf(stderr, "cannot arm fault: %s\n", fault_error.c_str());
    return 1;
  }
  rader::SweepOptions options;
  options.threads = 2;
  options.isolation = rader::SweepIsolation::kProcs;
  options.max_retries = 1;
  rader::metrics::Stopwatch t;
  const auto injected = rader::sweep_family(factory, family, options);
  const double injected_secs = t.seconds();
  rader::faultpoint::disarm_all();
  if (injected.failures.size() != 1 ||
      injected.spec_runs != family.size() - 1) {
    std::fprintf(stderr, "BUG: injected crash was not quarantined\n");
    return 1;
  }
  const auto& restarts = injected.metrics.hist(
      rader::metrics::Histogram::kChildRestartNanos);
  const double restart_p50_ms = restarts.quantile(0.5) / 1e6;
  std::printf("recovery: 1 injected crash, %llu restart(s), "
              "p50 relaunch %.2f ms, sweep %.4fs\n",
              static_cast<unsigned long long>(restarts.count),
              restart_p50_ms, injected_secs);

  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"bench\": \"isolation_overhead\",\n"
                 "  \"cores\": %u,\n  \"specs\": %zu,\n  \"rows\": [\n",
                 cores, family.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(out,
                   "    {\"jobs\": %u, \"inproc_seconds\": %.4f, "
                   "\"isolated_seconds\": %.4f, \"ratio\": %.3f}%s\n",
                   r.jobs, r.inproc_seconds, r.isolated_seconds, r.ratio,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out,
                 "  ],\n  \"overhead_geomean\": %.3f,\n"
                 "  \"restart_p50_ms\": %.2f\n}\n",
                 geomean, restart_p50_ms);
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (check_ratio > 0 && geomean > check_ratio) {
    std::fprintf(stderr,
                 "FAIL: isolation overhead %.3fx exceeds the %.2fx budget\n",
                 geomean, check_ratio);
    return 1;
  }
  return 0;
}
