// Microbenchmarks for the disjoint-set substrate: the per-check α(v,v)
// factor in both detectors' bounds.
#include <benchmark/benchmark.h>

#include "dsu/disjoint_set.hpp"
#include "support/rng.hpp"

namespace {

using rader::Rng;
using namespace rader::dsu;

void BM_MakeNode(benchmark::State& state) {
  for (auto _ : state) {
    DisjointSets ds;
    for (int i = 0; i < state.range(0); ++i) {
      benchmark::DoNotOptimize(ds.make_node());
    }
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MakeNode)->Arg(1024)->Arg(65536);

void BM_FindAfterChainUnion(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DisjointSets ds;
  std::vector<Node> nodes;
  for (int i = 0; i < n; ++i) nodes.push_back(ds.make_node());
  Node root = nodes[0];
  for (int i = 1; i < n; ++i) root = ds.link(root, nodes[i]);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.find(nodes[rng.below(n)]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FindAfterChainUnion)->Arg(1024)->Arg(1048576);

void BM_SpBagsStylePattern(benchmark::State& state) {
  // The detector's hot pattern: create a frame node into an S bag, merge
  // child bags on return, query meta_of per access.
  const int frames = static_cast<int>(state.range(0));
  for (auto _ : state) {
    DisjointSets ds;
    Bag root_s(&ds, ds.make_node(), BagKind::kS, 0);
    Bag root_p(&ds, BagKind::kP, 0);
    for (int i = 0; i < frames; ++i) {
      const Node child = ds.make_node();
      Bag child_s(&ds, child, BagKind::kS, 0);
      root_p.merge_from(child_s);
      benchmark::DoNotOptimize(ds.meta_of(child).kind);
    }
    root_s.merge_from(root_p);
  }
  state.SetItemsProcessed(state.iterations() * frames);
}
BENCHMARK(BM_SpBagsStylePattern)->Arg(4096);

void BM_RandomUnionsWithMeta(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    DisjointSets ds;
    std::vector<Node> roots;
    for (int i = 0; i < n; ++i) {
      const Node node = ds.make_node();
      ds.meta(node) = {BagKind::kP, static_cast<ViewId>(i)};
      roots.push_back(node);
    }
    for (int i = 0; i < n - 1; ++i) {
      const Node a = ds.find(roots[rng.below(n)]);
      const Node b = ds.find(roots[rng.below(n)]);
      if (a != b) ds.link(a, b);
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandomUnionsWithMeta)->Arg(16384);

}  // namespace
