// Theorem 6 experiment: "all possible update strands can be elicited in
// Θ(M) steal specifications."
//
// For a flat sync block of K updates, an update strand is identified by the
// view state it observes (the set of updates already folded into its view).
// We enumerate the ground-truth set by brute force over all 2^K steal
// subsets, then measure how many distinct update strands the depth-class
// family elicits as a function of the family size — the curve saturates at
// the ground truth with Θ(M) specifications.
#include <cstdio>
#include <set>
#include <vector>

#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/spec_family.hpp"
#include "support/metrics.hpp"

namespace {

using rader::spawn;
using rader::sync;

struct Sig {
  std::vector<int> items;
};

std::set<std::vector<int>>* g_sigs = nullptr;

struct sig_monoid {
  using value_type = Sig;
  static Sig identity() { return {}; }
  static void reduce(Sig& l, Sig& r) {
    l.items.insert(l.items.end(), r.items.begin(), r.items.end());
  }
};

void block_program(int k) {
  rader::reducer<sig_monoid> red;
  for (int i = 0; i < k; ++i) {
    spawn([] {});
    red.update([&](Sig& s) {
      s.items.push_back(i);
      if (g_sigs != nullptr) g_sigs->insert(s.items);
    });
  }
  sync();
}

class SubsetSpec final : public rader::spec::StealSpec {
 public:
  explicit SubsetSpec(std::uint32_t mask) : mask_(mask) {}
  bool steal(const rader::spec::PointCtx& c) const override {
    return c.cont_index < 32 && ((mask_ >> c.cont_index) & 1u) != 0;
  }
  std::string describe() const override { return "subset"; }

 private:
  std::uint32_t mask_;
};

}  // namespace

int main() {
  std::printf("thm6_update_coverage: update strands elicited vs. #specs\n");
  std::printf("%4s %12s %12s %12s %10s\n", "K", "ground truth",
              "family size", "elicited", "time(s)");
  for (const int k : {4, 6, 8, 10, 12}) {
    // Ground truth over all subsets.
    std::set<std::vector<int>> truth;
    g_sigs = &truth;
    for (std::uint32_t mask = 0; mask < (1u << k); ++mask) {
      SubsetSpec steal_spec(mask);
      rader::SerialEngine engine(nullptr, &steal_spec);
      engine.run([&] { block_program(k); });
    }

    // The Theorem 6 + pair family (depth classes elicit each fresh-view
    // start; pair specs bound each view's extent).
    std::set<std::vector<int>> elicited;
    g_sigs = &elicited;
    rader::metrics::Stopwatch t;
    const auto family =
        rader::spec::full_coverage_family(static_cast<std::uint32_t>(k),
                                          static_cast<std::uint64_t>(k) + 1);
    for (const auto& steal_spec : family) {
      rader::SerialEngine engine(nullptr, steal_spec.get());
      engine.run([&] { block_program(k); });
    }
    const double secs = t.seconds();
    g_sigs = nullptr;

    std::printf("%4d %12zu %12zu %12zu %10.3f  %s\n", k, truth.size(),
                family.size(), elicited.size(), secs,
                elicited.size() >= truth.size() ? "COVERED" : "MISSING");
  }
  std::printf("\n(2^K brute-force subsets define the ground truth; the\n"
              " polynomial family saturates it, as Theorem 6 predicts.)\n");
  return 0;
}
