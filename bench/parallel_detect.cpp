// Parallel detection speedup: wall-clock of Rader::check_parallel (Peer-Set
// running ON the work-stealing engine via shard replay) on a fan-out-heavy
// program at 1..8 workers.  The point of the tentpole: detection no longer
// serializes the computation — the replayer consumes a tiny event stream on
// worker 0 while the leaves' compute spreads across all cores, so detection
// wall-clock scales nearly like the uninstrumented run.
//
// Usage: parallel_detect [--scale=S] [--reps=N] [--check-ratio=R]
//                        [--json=FILE]
//   --check-ratio=R  exit nonzero unless the 4-worker speedup over 1 worker
//                    is >= R (only enforced when >= 4 hardware threads are
//                    available); CI uses --check-ratio=2.0.
//   --json=FILE      machine-readable results for trend tracking
//                    (scripts/nightly_bench.sh).
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/driver.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "support/metrics.hpp"

namespace {

constexpr int kLeaves = 64;

std::uint64_t burn(std::uint64_t iters, std::uint64_t seed) {
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ull + 1;
  for (std::uint64_t i = 0; i < iters; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  return x;
}

/// 64 spawned leaves, each a pure compute burn folded into one reducer;
/// disciplined (clean) so the detector's verdict is a fixed point and the
/// measured time is pure detection overhead plus compute.
void fanout_program(std::uint64_t leaf_iters) {
  rader::reducer<rader::monoid::op_add<long>> sum(rader::SrcTag{"sum"});
  for (int i = 0; i < kLeaves; ++i) {
    rader::spawn([&sum, i, leaf_iters] {
      sum += static_cast<long>(
          burn(leaf_iters, static_cast<std::uint64_t>(i)) & 0xff);
    });
  }
  rader::sync();
  volatile long v = sum.get_value(rader::SrcTag{"total"});
  (void)v;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = rader::bench::parse_scale(argc, argv, 1.0);
  const int reps = rader::bench::parse_reps(argc, argv, 3);
  double check_ratio = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--check-ratio=", 0) == 0) {
      check_ratio = std::stod(arg.substr(14));
    }
  }
  const auto leaf_iters = static_cast<std::uint64_t>(2.0e6 * scale);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("parallel_detect: scale=%.3g reps=%d leaves=%d hw=%u\n", scale,
              reps, kLeaves, hw);
  std::printf("%8s %12s %9s\n", "workers", "detect(s)", "speedup");

  double t1 = 0.0;
  double speedup4 = 0.0;
  struct JsonRow {
    unsigned workers;
    double seconds, speedup;
  };
  std::vector<JsonRow> jrows;
  for (const unsigned workers : {1u, 2u, 4u, 8u}) {
    if (workers > 1 && workers > hw) {
      std::printf("%8u %12s %9s (skipped: > hardware threads)\n", workers,
                  "-", "-");
      continue;
    }
    const double t = rader::metrics::time_best_of(reps, [&] {
      const rader::RaceLog log = rader::Rader::check_parallel(
          [&] { fanout_program(leaf_iters); }, workers);
      if (log.view_read_count() != 0) {
        std::fprintf(stderr, "!! unexpected view-read race reported\n");
        std::exit(2);
      }
    });
    if (workers == 1) t1 = t;
    const double speedup = t1 / t;
    if (workers == 4) speedup4 = speedup;
    jrows.push_back({workers, t, speedup});
    std::printf("%8u %12.4f %8.2fx\n", workers, t, speedup);
    std::fflush(stdout);
  }

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) json_path = arg.substr(7);
  }
  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"parallel_detect\",\n"
                      "  \"scale\": %g,\n  \"reps\": %d,\n  \"hw\": %u,\n"
                      "  \"speedup4\": %.4f,\n  \"rows\": [\n",
                 scale, reps, hw, speedup4);
    for (std::size_t i = 0; i < jrows.size(); ++i) {
      std::fprintf(out,
                   "    {\"workers\": %u, \"seconds\": %.6f, "
                   "\"speedup\": %.4f}%s\n",
                   jrows[i].workers, jrows[i].seconds, jrows[i].speedup,
                   i + 1 < jrows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (check_ratio > 0.0) {
    if (hw < 4) {
      std::printf("check-ratio: skipped (%u hardware threads < 4)\n", hw);
    } else if (speedup4 < check_ratio) {
      std::fprintf(stderr,
                   "FAIL: 4-worker detection speedup %.2fx < required %.2fx\n",
                   speedup4, check_ratio);
      return 1;
    } else {
      std::printf("check-ratio: ok (%.2fx >= %.2fx)\n", speedup4, check_ratio);
    }
  }
  return 0;
}
