// Tracing-enabled cost (support/trace.hpp): the same SP+ / no-steals
// detection runs as Figure 7, with a trace session attached versus not.
// Complements the fig7_overhead dormant-hook guard: this is the price the
// user opts into with `rader --trace=FILE`, so there is no hard budget —
// the table documents the slope (a ring-buffer store per event) and the
// ring's drop behaviour at the default capacity.
//
// Usage: trace_overhead [--scale=S] [--reps=N] [--json=FILE]
//   --json=FILE appends machine-readable results for trend tracking
//   (scripts/nightly_bench.sh).
#include <cstdio>

#include "bench_util.hpp"
#include "support/trace.hpp"

namespace {

double time_spplus(rader::apps::Workload& w, int reps) {
  rader::spec::NoSteal none;
  rader::RaceLog log;
  rader::SpPlusDetector spplus(&log);
  return rader::bench::time_config(w, &spplus, &none, reps);
}

struct TracedRun {
  double seconds = 0;
  std::uint64_t recorded = 0;
  std::uint64_t dropped = 0;
};

TracedRun time_spplus_traced(rader::apps::Workload& w, int reps) {
  TracedRun r;
  rader::trace::Session session;
  rader::trace::Scope scope(&session, w.name);
  rader::spec::NoSteal none;
  rader::RaceLog log;
  rader::SpPlusDetector spplus(&log);
  r.seconds = rader::bench::time_config(w, &spplus, &none, reps);
  r.recorded = session.total_recorded();
  r.dropped = session.total_dropped();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = rader::bench::parse_scale(argc, argv, 0.05);
  const int reps = rader::bench::parse_reps(argc, argv, 2);
  std::printf("trace_overhead: scale=%.3g reps=%d (SP+ / no-steals, session "
              "attached vs not)\n", scale, reps);
  std::printf("%-10s %9s %9s %8s %14s %12s\n", "Benchmark", "off (s)",
              "on (s)", "ratio", "events", "dropped");

  struct JsonRow {
    std::string name;
    double off, on, ratio;
    std::uint64_t recorded, dropped;
  };
  std::vector<JsonRow> jrows;
  std::vector<double> ratios;
  for (auto& w : rader::apps::make_paper_benchmarks(scale)) {
    const double off = time_spplus(w, reps);
    const TracedRun on = time_spplus_traced(w, reps);
    const double ratio = on.seconds / off;
    ratios.push_back(ratio);
    jrows.push_back({w.name, off, on.seconds, ratio, on.recorded, on.dropped});
    std::printf("%-10s %9.4f %9.4f %7.2fx %14llu %12llu\n", w.name.c_str(),
                off, on.seconds, ratio,
                static_cast<unsigned long long>(on.recorded),
                static_cast<unsigned long long>(on.dropped));
  }
  const double gm = rader::bench::geomean(ratios);
  std::printf("%-10s %29.2fx\n", "geomean", gm);
  std::printf("(informational: tracing is opt-in; the dormant-hook budget "
              "lives in fig7_overhead)\n");

  const std::string json_path = rader::bench::parse_arg(argc, argv, "json");
  if (!json_path.empty()) {
    FILE* out = std::fopen(json_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"trace_overhead\",\n"
                      "  \"scale\": %g,\n  \"reps\": %d,\n"
                      "  \"geomean\": %.4f,\n  \"rows\": [\n",
                 scale, reps, gm);
    for (std::size_t i = 0; i < jrows.size(); ++i) {
      const JsonRow& r = jrows[i];
      std::fprintf(out,
                   "    {\"name\": \"%s\", \"off_s\": %.6f, \"on_s\": %.6f, "
                   "\"ratio\": %.4f, \"events\": %llu, \"dropped\": %llu}%s\n",
                   r.name.c_str(), r.off, r.on, r.ratio,
                   static_cast<unsigned long long>(r.recorded),
                   static_cast<unsigned long long>(r.dropped),
                   i + 1 < jrows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
