// Microbenchmarks for the shadow spaces: the per-access cost that dominates
// SP+ on access-dense benchmarks (the paper's fib/knapsack discussion).
#include <benchmark/benchmark.h>

#include "shadow/packed_shadow.hpp"
#include "shadow/shadow_space.hpp"
#include "support/rng.hpp"

namespace {

using rader::Rng;
using rader::shadow::PackedShadow;
using rader::shadow::ShadowSpace;

void BM_SequentialSet(benchmark::State& state) {
  ShadowSpace s;
  std::uintptr_t addr = 0x100000;
  for (auto _ : state) {
    s.set(addr, 1);
    addr = 0x100000 + ((addr + 1) & 0xFFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialSet);

void BM_SequentialGetHit(benchmark::State& state) {
  ShadowSpace s;
  for (std::uintptr_t a = 0; a < 0x10000; ++a) s.set(0x100000 + a, 7);
  std::uintptr_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.get(0x100000 + (addr & 0xFFFF)));
    ++addr;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialGetHit);

void BM_RandomPageAccess(benchmark::State& state) {
  // Defeats the one-page lookaside cache: every access hops pages.
  ShadowSpace s;
  Rng rng(3);
  const int pages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const std::uintptr_t addr = (rng.below(pages) << 12) | rng.below(4096);
    s.set(addr, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomPageAccess)->Arg(16)->Arg(1024);

void BM_WordAccessEightBytes(benchmark::State& state) {
  // The detectors iterate per byte: an 8-byte access costs 8 cell ops.
  ShadowSpace s;
  std::uintptr_t addr = 0x200000;
  for (auto _ : state) {
    for (std::uintptr_t b = addr; b != addr + 8; ++b) s.set(b, 1);
    addr = 0x200000 + ((addr + 8) & 0xFFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WordAccessEightBytes);

// ---- Packed backend counterparts (shadow/packed_shadow.hpp) ----------------
// Same shapes as above so a side-by-side run shows the encoding's effect.
// Note one packed op covers BOTH logical spaces: the detectors previously
// paid a reader op + a writer op per granule.

void BM_PackedSequentialSet(benchmark::State& state) {
  PackedShadow s;
  std::uintptr_t addr = 0x100000;
  for (auto _ : state) {
    s.set_writer(addr, 1);
    addr = 0x100000 + ((addr + 1) & 0xFFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackedSequentialSet);

void BM_PackedSequentialGetHit(benchmark::State& state) {
  PackedShadow s;
  for (std::uintptr_t a = 0; a < 0x10000; ++a) s.set_writer(0x100000 + a, 7);
  std::uintptr_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.writer(0x100000 + (addr & 0xFFFF)));
    ++addr;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackedSequentialGetHit);

void BM_PackedRandomPageAccess(benchmark::State& state) {
  // Page hops hit the chunk's array index instead of the hash map.
  PackedShadow s;
  Rng rng(3);
  const int pages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const std::uintptr_t addr = (rng.below(pages) << 12) | rng.below(4096);
    s.set_writer(addr, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackedRandomPageAccess)->Arg(16)->Arg(1024);

void BM_PackedWordAccessEightBytes(benchmark::State& state) {
  PackedShadow s;
  std::uintptr_t addr = 0x200000;
  for (auto _ : state) {
    for (std::uintptr_t b = addr; b != addr + 8; ++b) s.set_writer(b, 1);
    addr = 0x200000 + ((addr + 8) & 0xFFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackedWordAccessEightBytes);

void BM_PackedEpochClear(benchmark::State& state) {
  // The O(1) bulk clear: footprint size (range arg = pages touched) must
  // not change the per-clear cost.  Re-touch one granule per iteration so
  // successive clears are not no-ops.
  PackedShadow s;
  const int pages = static_cast<int>(state.range(0));
  for (int p = 0; p < pages; ++p) {
    s.set_writer(static_cast<std::uintptr_t>(p) << 12, 1);
  }
  for (auto _ : state) {
    s.set_writer(0, 1);
    s.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PackedEpochClear)->Arg(16)->Arg(1024);

}  // namespace
