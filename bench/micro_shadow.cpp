// Microbenchmarks for the shadow spaces: the per-access cost that dominates
// SP+ on access-dense benchmarks (the paper's fib/knapsack discussion).
#include <benchmark/benchmark.h>

#include "shadow/shadow_space.hpp"
#include "support/rng.hpp"

namespace {

using rader::Rng;
using rader::shadow::ShadowSpace;

void BM_SequentialSet(benchmark::State& state) {
  ShadowSpace s;
  std::uintptr_t addr = 0x100000;
  for (auto _ : state) {
    s.set(addr, 1);
    addr = 0x100000 + ((addr + 1) & 0xFFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialSet);

void BM_SequentialGetHit(benchmark::State& state) {
  ShadowSpace s;
  for (std::uintptr_t a = 0; a < 0x10000; ++a) s.set(0x100000 + a, 7);
  std::uintptr_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.get(0x100000 + (addr & 0xFFFF)));
    ++addr;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SequentialGetHit);

void BM_RandomPageAccess(benchmark::State& state) {
  // Defeats the one-page lookaside cache: every access hops pages.
  ShadowSpace s;
  Rng rng(3);
  const int pages = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const std::uintptr_t addr = (rng.below(pages) << 12) | rng.below(4096);
    s.set(addr, 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RandomPageAccess)->Arg(16)->Arg(1024);

void BM_WordAccessEightBytes(benchmark::State& state) {
  // The detectors iterate per byte: an 8-byte access costs 8 cell ops.
  ShadowSpace s;
  std::uintptr_t addr = 0x200000;
  for (auto _ : state) {
    for (std::uintptr_t b = addr; b != addr + 8; ++b) s.set(b, 1);
    addr = 0x200000 + ((addr + 8) & 0xFFFF);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WordAccessEightBytes);

}  // namespace
