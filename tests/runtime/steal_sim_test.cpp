// Steal simulation: the serial engine must mint views at specified
// continuations, run Reduce operations as instrumented kReduce frames, and
// preserve reducer semantics (the serial-projection value) under EVERY
// steal specification.
#include <gtest/gtest.h>

#include <string>

#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/run.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"
#include "../test_util.hpp"

namespace rader {
namespace {

using testing::EventLogTool;

TEST(StealSim, NoStealSpecSimulatesNothing) {
  EventLogTool log;
  spec::NoSteal none;
  SerialEngine engine(&log, &none);
  engine.run([&] {
    spawn([] {});
    spawn([] {});
    sync();
  });
  EXPECT_EQ(log.count_prefix("steal"), 0);
  EXPECT_EQ(log.count_prefix("reduce"), 0);
  EXPECT_EQ(engine.stats().steals, 0u);
}

TEST(StealSim, StealAllMintsOneViewPerContinuation) {
  EventLogTool log;
  spec::StealAll all;
  SerialEngine engine(&log, &all);
  engine.run([&] {
    spawn([] {});
    spawn([] {});
    spawn([] {});
    sync();
  });
  EXPECT_EQ(engine.stats().steals, 3u);
  EXPECT_EQ(log.count_prefix("steal(0,c0,v1)"), 1);
  EXPECT_EQ(log.count_prefix("steal(0,c1,v2)"), 1);
  EXPECT_EQ(log.count_prefix("steal(0,c2,v3)"), 1);
  // All three epochs fold at the sync (right-to-left), before sync(0).
  EXPECT_EQ(log.count_prefix("reduce(0,v2<-v3)"), 1);
  EXPECT_EQ(log.count_prefix("reduce(0,v1<-v2)"), 1);
  EXPECT_EQ(log.count_prefix("reduce(0,v0<-v1)"), 1);
}

TEST(StealSim, EpochsFoldAtImplicitSync) {
  spec::StealAll all;
  SerialEngine engine(nullptr, &all);
  engine.run([&] {
    spawn([&] {
      spawn([] {});
      // Implicit sync in this spawned frame folds its stolen epoch.
    });
    sync();
  });
  EXPECT_EQ(engine.stats().steals, 2u);
  EXPECT_EQ(engine.stats().reduces, 2u);
}

TEST(StealSim, TripleStealStealsRequestedContinuationsOnly) {
  EventLogTool log;
  spec::TripleSteal triple(0, 2, 4);
  SerialEngine engine(&log, &triple);
  engine.run([&] {
    for (int i = 0; i < 6; ++i) spawn([] {});
    sync();
  });
  EXPECT_EQ(engine.stats().steals, 3u);
  EXPECT_EQ(log.count_prefix("steal(0,c0"), 1);
  EXPECT_EQ(log.count_prefix("steal(0,c2"), 1);
  EXPECT_EQ(log.count_prefix("steal(0,c4"), 1);
  // TripleSteal(a,b,c) merges the two newest epochs at the pre-steal point
  // of c, eliciting reduce([a,b), [b,c)) — here reduce(v1 <- v2) before c4.
  const std::string joined = log.joined();
  const auto merge_pos = joined.find("reduce(0,v1<-v2)");
  const auto steal_c4 = joined.find("steal(0,c4");
  ASSERT_NE(merge_pos, std::string::npos);
  ASSERT_NE(steal_c4, std::string::npos);
  EXPECT_LT(merge_pos, steal_c4);
}

TEST(StealSim, ReducerValueDeterministicUnderManySpecs) {
  // The same computation must produce its serial-projection value under
  // every steal specification (this is the whole point of reducers).
  const auto program = [](long& out) {
    reducer<monoid::op_add<long>> sum;
    for (int i = 1; i <= 20; ++i) {
      spawn([&sum, i] { sum += i; });
      if (i % 5 == 0) sync();
    }
    sync();
    out = sum.get_value();
  };

  long expected = -1;
  {
    spec::NoSteal none;
    SerialEngine engine(nullptr, &none);
    engine.run([&] { program(expected); });
    EXPECT_EQ(expected, 210);
  }
  const spec::StealAll all;
  const spec::TripleSteal t1(0, 1, 2), t2(1, 2, 4), t3(0, 0, 0);
  const spec::DepthSteal d1(1), d2(2);
  const spec::StealSpec* specs[] = {&all, &t1, &t2, &t3, &d1, &d2};
  for (const auto* s : specs) {
    long got = -1;
    SerialEngine engine(nullptr, s);
    engine.run([&] { program(got); });
    EXPECT_EQ(got, expected) << s->describe();
  }
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    spec::BernoulliSteal b(seed, 0.4);
    long got = -1;
    SerialEngine engine(nullptr, &b);
    engine.run([&] { program(got); });
    EXPECT_EQ(got, expected) << b.describe();
  }
}

TEST(StealSim, NonCommutativeMonoidKeepsSerialOrderUnderSteals) {
  // String append is associative but NOT commutative: any wrong reduce
  // order or operand swap would scramble the output.
  const auto program = [](std::string& out) {
    reducer<monoid::string_append> s;
    for (int i = 0; i < 8; ++i) {
      spawn([&s, i] {
        s.update([&](std::string& v) { v += static_cast<char>('a' + i); });
      });
    }
    sync();
    out = s.get_value();
  };
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    spec::BernoulliSteal b(seed, 0.5);
    std::string got;
    SerialEngine engine(nullptr, &b);
    engine.run([&] { program(got); });
    EXPECT_EQ(got, "abcdefgh") << b.describe();
  }
}

TEST(StealSim, ReduceRunsAsViewAwareReduceFrame) {
  EventLogTool log;
  spec::StealAll all;
  SerialEngine engine(&log, &all);
  engine.run([&] {
    reducer<monoid::op_add<long>> sum;
    spawn([&] { sum += 1; });
    sum += 2;  // continuation update goes to the stolen view
    sync();
    volatile long v = sum.get_value();
    (void)v;
  });
  // One steal, one epoch merge, one user Reduce frame.
  EXPECT_EQ(log.count_prefix("steal"), 1);
  EXPECT_EQ(log.count_prefix("reduce(0,v0<-v1)"), 1);
  EXPECT_EQ(log.count_prefix("enter(2,from=0,reduce,v0)"), 1);
  EXPECT_EQ(log.count_prefix("redop(reduce,h0)"), 1);
  EXPECT_EQ(log.count_prefix("redop(identity,h0)"), 1);  // lazy view creation
}

TEST(StealSim, UpdateAccessesAreViewAware) {
  EventLogTool log;
  spec::NoSteal none;
  SerialEngine engine(&log, &none);
  engine.run([&] {
    reducer<monoid::op_add<long>> sum;
    sum += 3;  // operator+= annotates the view scalar inside the bracket
  });
  EXPECT_EQ(log.count_prefix("write(8,va,v0"), 1);
}

TEST(StealSim, LazyIdentityOnlyWhenUpdatedAfterSteal) {
  spec::StealAll all;
  SerialEngine engine(nullptr, &all);
  long result = -1;
  engine.run([&] {
    reducer<monoid::op_add<long>> sum;
    sum += 5;
    spawn([] { /* no reducer use */ });
    // Continuation stolen, but no update here: no identity view created,
    // the epoch merge finds nothing to reduce.
    sync();
    result = sum.get_value();
  });
  EXPECT_EQ(result, 5);
  EXPECT_EQ(engine.stats().user_reduces, 0u);
}

TEST(StealSim, ReducerCreatedBeforeRunBindsLazily) {
  reducer<monoid::op_add<long>> sum;  // constructed with no engine
  sum.set_value(100);
  spec::StealAll all;
  SerialEngine engine(nullptr, &all);
  long result = -1;
  engine.run([&] {
    spawn([&] { sum += 1; });
    sum += 2;
    sync();
    result = sum.get_value();
  });
  EXPECT_EQ(result, 103);
  EXPECT_EQ(sum.get_value(), 103);  // value persists after the run
}

TEST(StealSim, MultipleReducersReduceInRegistrationOrder) {
  EventLogTool log;
  spec::StealAll all;
  SerialEngine engine(&log, &all);
  engine.run([&] {
    reducer<monoid::op_add<long>> a, b;
    spawn([&] {
      a += 1;
      b += 2;
    });
    a += 3;  // stolen continuation: identity views for both reducers
    b += 4;
    sync();
    volatile long va = a.get_value(), vb = b.get_value();
    (void)va;
    (void)vb;
  });
  // One epoch merge producing two user reduces, reducer 0 before reducer 1.
  EXPECT_EQ(engine.stats().user_reduces, 2u);
  const std::string joined = log.joined();
  EXPECT_LT(joined.find("redop(reduce,h0)"), joined.find("redop(reduce,h1)"));
}

TEST(StealSim, NestedFramesGetIndependentSyncBlocks) {
  spec::TripleSteal triple(0, 1, 2);
  SerialEngine engine(nullptr, &triple);
  long result = -1;
  engine.run([&] {
    reducer<monoid::op_add<long>> sum;
    for (int rep = 0; rep < 3; ++rep) {
      call([&] {
        for (int i = 0; i < 4; ++i) {
          spawn([&sum] { sum += 1; });
        }
        sync();
      });
    }
    result = sum.get_value();
  });
  EXPECT_EQ(result, 12);
  EXPECT_EQ(engine.stats().steals, 9u);  // 3 per called frame's sync block
}

}  // namespace
}  // namespace rader
