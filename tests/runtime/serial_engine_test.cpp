#include "runtime/serial_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "runtime/api.hpp"
#include "runtime/run.hpp"
#include "spec/steal_spec.hpp"
#include "../test_util.hpp"

namespace rader {
namespace {

using testing::EventLogTool;

TEST(SerialEngine, RunsRootToCompletion) {
  int x = 0;
  run_serial([&] { x = 42; });
  EXPECT_EQ(x, 42);
}

TEST(SerialEngine, SerialProjectionWithoutEngine) {
  // Without run(), the API degrades to plain serial C++.
  int order = 0;
  int child_at = 0, cont_at = 0;
  spawn([&] { child_at = ++order; });
  cont_at = ++order;
  sync();
  EXPECT_EQ(child_at, 1);  // child before continuation: serial order
  EXPECT_EQ(cont_at, 2);
}

TEST(SerialEngine, SpawnExecutesChildDepthFirst) {
  std::vector<int> trace;
  run_serial([&] {
    trace.push_back(0);
    spawn([&] { trace.push_back(1); });
    trace.push_back(2);
    sync();
    trace.push_back(3);
  });
  EXPECT_EQ(trace, (std::vector<int>{0, 1, 2, 3}));
}

TEST(SerialEngine, FrameEventsAreWellNested) {
  EventLogTool log;
  SerialEngine engine(&log);
  engine.run([&] {
    spawn([&] { call([] {}); });
    sync();
  });
  const auto& ev = log.events();
  ASSERT_EQ(ev.size(), 7u);
  EXPECT_EQ(ev[0], "enter(0,from=-1,root,v0)");
  EXPECT_EQ(ev[1], "enter(1,from=0,spawned,v0)");
  EXPECT_EQ(ev[2], "enter(2,from=1,called,v0)");
  EXPECT_EQ(ev[3], "return(2,called)");
  EXPECT_EQ(ev[4], "return(1,spawned)");
  EXPECT_EQ(ev[5], "sync(0)");
  // The implicit pre-return sync is a no-op after the explicit one.
  EXPECT_EQ(ev[6], "return(0,root)");
}

TEST(SerialEngine, ImplicitSyncBeforeReturnWhenSpawned) {
  EventLogTool log;
  SerialEngine engine(&log);
  engine.run([&] {
    spawn([] {});
    // No explicit sync: Cilk functions sync implicitly before returning.
  });
  EXPECT_EQ(log.count_prefix("sync(0)"), 1);
}

TEST(SerialEngine, NoOpSyncEmitsNoEvent) {
  EventLogTool log;
  SerialEngine engine(&log);
  engine.run([&] {
    sync();  // nothing outstanding
    sync();
  });
  EXPECT_EQ(log.count_prefix("sync"), 0);
}

TEST(SerialEngine, StatsCountControlEvents) {
  SerialEngine engine;
  engine.run([&] {
    for (int i = 0; i < 3; ++i) spawn([] {});
    sync();
    spawn([] {});
    sync();
    call([] {});
  });
  const auto& st = engine.stats();
  EXPECT_EQ(st.spawns, 4u);
  EXPECT_EQ(st.syncs, 2u);
  EXPECT_EQ(st.frames, 6u);  // root + 4 spawned + 1 called
  EXPECT_EQ(st.max_sync_block, 3u);
  // Three unsynced spawns in one block: the third continuation sits under
  // three P nodes, so the maximum spawn depth is 3.
  EXPECT_EQ(st.max_spawn_depth, 3u);
  EXPECT_EQ(st.steals, 0u);
}

TEST(SerialEngine, SpawnDepthTracksNesting) {
  SerialEngine engine;
  engine.run([&] {
    spawn([&] {
      spawn([&] { spawn([] {}); });
    });
  });
  EXPECT_EQ(engine.stats().max_spawn_depth, 3u);
}

TEST(SerialEngine, AccessEventsCarryTagAndView) {
  EventLogTool log;
  SerialEngine engine(&log);
  int x = 0;
  engine.run([&] {
    shadow_write(&x, sizeof(x), SrcTag{"tagged write"});
    shadow_read(&x, sizeof(x), SrcTag{"tagged read"});
  });
  EXPECT_EQ(log.count_prefix("write(4,vo,v0,tagged write)"), 1);
  EXPECT_EQ(log.count_prefix("read(4,vo,v0,tagged read)"), 1);
}

TEST(SerialEngine, UninstrumentedRunSkipsAccessBookkeeping) {
  SerialEngine engine(nullptr);
  int x = 0;
  engine.run([&] { shadow_write(&x, 4); });
  EXPECT_EQ(engine.stats().accesses, 0u);
}

TEST(SerialEngine, ParallelForCoversRange) {
  std::vector<int> hits(100, 0);
  run_serial([&] {
    parallel_for<int>(0, 100, [&](int i) { hits[i] += 1; }, /*grain=*/3);
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
}

TEST(SerialEngine, ParallelForFlatCoversRangeInOneSyncBlock) {
  std::vector<int> hits(50, 0);
  SerialEngine engine;
  engine.run([&] {
    parallel_for_flat<int>(0, 50, [&](int i) { hits[i] += 1; }, /*chunks=*/10);
  });
  for (const int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(engine.stats().max_sync_block, 10u);
}

TEST(SerialEngine, ParallelForEmptyRange) {
  int count = 0;
  run_serial([&] {
    parallel_for<int>(5, 5, [&](int) { ++count; });
    parallel_for_flat<int>(9, 3, [&](int) { ++count; }, 4);
  });
  EXPECT_EQ(count, 0);
}

TEST(SerialEngine, RunIsRepeatable) {
  SerialEngine engine;
  for (int rep = 0; rep < 3; ++rep) {
    int sum = 0;
    engine.run([&] {
      spawn([&] { sum += 1; });
      sync();
    });
    EXPECT_EQ(sum, 1);
    EXPECT_EQ(engine.stats().spawns, 1u);  // stats reset per run
  }
}

}  // namespace
}  // namespace rader
