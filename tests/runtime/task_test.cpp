#include "runtime/task.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace rader {
namespace {

TEST(FnView, InvokesReferencedCallable) {
  int x = 0;
  auto fn = [&] { x = 5; };
  FnView view(fn);
  view();
  EXPECT_EQ(x, 5);
  view();
  EXPECT_EQ(x, 5);
}

TEST(FnView, WorksWithMutableLambdas) {
  int calls = 0;
  auto fn = [&calls, n = 0]() mutable { calls = ++n; };
  FnView view(fn);
  view();
  view();
  EXPECT_EQ(calls, 2);  // state lives in the referenced lambda
}

TEST(Task, DefaultIsInvalid) {
  Task t;
  EXPECT_FALSE(t.valid());
}

TEST(Task, SmallCaptureStaysInline) {
  int x = 0;
  Task t([&x] { x = 7; });
  ASSERT_TRUE(t.valid());
  t();
  EXPECT_EQ(x, 7);
}

TEST(Task, LargeCaptureGoesToHeap) {
  std::vector<int> big(1000, 3);
  int sum = 0;
  Task t([big, &sum] {
    for (const int v : big) sum += v;
  });
  t();
  EXPECT_EQ(sum, 3000);
}

TEST(Task, MoveTransfersOwnership) {
  int x = 0;
  Task a([&x] { ++x; });
  Task b(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): intentional
  ASSERT_TRUE(b.valid());
  b();
  EXPECT_EQ(x, 1);
}

TEST(Task, MoveAssignReplacesAndDestroysOld) {
  auto counter = std::make_shared<int>(0);
  Task a([counter] { ++*counter; });
  EXPECT_EQ(counter.use_count(), 2);
  Task b([] {});
  a = std::move(b);
  EXPECT_EQ(counter.use_count(), 1);  // old callable destroyed
}

TEST(Task, DestructorReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  {
    Task t([counter] {});
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(Task, MoveOnlyCapture) {
  auto p = std::make_unique<int>(11);
  int got = 0;
  Task t([p = std::move(p), &got] { got = *p; });
  t();
  EXPECT_EQ(got, 11);
}

TEST(Task, SelfMoveAssignIsSafe) {
  int x = 0;
  Task t([&x] { ++x; });
  Task& ref = t;
  t = std::move(ref);
  ASSERT_TRUE(t.valid());
  t();
  EXPECT_EQ(x, 1);
}

TEST(Task, ManyTasksStress) {
  std::vector<Task> tasks;
  long sum = 0;
  for (int i = 0; i < 1000; ++i) {
    tasks.emplace_back(Task([&sum, i] { sum += i; }));
  }
  for (auto& t : tasks) t();
  EXPECT_EQ(sum, 999L * 1000 / 2);
}

}  // namespace
}  // namespace rader
