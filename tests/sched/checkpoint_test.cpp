// EngineCheckpoint round-trips and detector fork independence.
//
// The prefix-sharing sweep (core/sweep.hpp) is built on two promises:
//
//   1. SerialEngine::resume_from() on a recorded decision trail, starting
//      live delivery at a checkpointed point with a Tool::fork of the
//      detector, produces a run byte-identical to the straight-line
//      execution — same race log, same stats, same reducer-view identity
//      minting, same simulated-worker stamping under tracing.
//   2. fork() gives every detector (SP-bags, SP-order, SP+, Peer-Set) and
//      the copy-on-write ShadowSpace an INDEPENDENT clone: events fed to
//      one side never leak into the other.
//
// These tests check both promises directly, without the sweep in between.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/peerset.hpp"
#include "core/spbags.hpp"
#include "core/spplus.hpp"
#include "core/sporder.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "shadow/shadow_space.hpp"
#include "spec/steal_spec.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rader {
namespace {

// Global arena so raced-on addresses are identical between the straight and
// the resumed execution (race-log JSON is compared byte-for-byte).
int g_slots[8];

/// A program with determinacy races on g_slots, reducer updates (identity
/// minting + merging under steals), and a view-read race (get_value in
/// parallel with updates) — every event class a resumed run must replay.
void checkpoint_program() {
  reducer<monoid::op_add<long>> sum(SrcTag{"ck sum"});
  for (int round = 0; round < 3; ++round) {
    spawn([&] {
      shadow_write(&g_slots[round], sizeof(int), SrcTag{"spawned write"});
      g_slots[round] = round;
      sum += round;
    });
    spawn([&] {
      shadow_write(&g_slots[round], sizeof(int), SrcTag{"sibling write"});
      g_slots[round] = -round;
      sum += 1;
    });
    shadow_read(&g_slots[round], sizeof(int), SrcTag{"continuation read"});
    (void)g_slots[round];
    // The mid-computation read races with the updates when a steal
    // separates them (view-read race for Peer-Set).
    (void)sum.get_value(SrcTag{"mid read"});
    sync();
  }
}

using ToolFactory = std::function<std::unique_ptr<Tool>(RaceLog*)>;

struct NamedFactory {
  const char* name;
  ToolFactory make;
};

std::vector<NamedFactory> detector_factories() {
  return {
      {"sp+",
       [](RaceLog* log) -> std::unique_ptr<Tool> {
         return std::make_unique<SpPlusDetector>(log);
       }},
      {"spbags",
       [](RaceLog* log) -> std::unique_ptr<Tool> {
         return std::make_unique<SpBagsDetector>(log);
       }},
      {"sporder",
       [](RaceLog* log) -> std::unique_ptr<Tool> {
         return std::make_unique<SpOrderDetector>(log);
       }},
      {"peerset",
       [](RaceLog* log) -> std::unique_ptr<Tool> {
         return std::make_unique<PeerSetDetector>(log);
       }},
  };
}

struct StraightRun {
  RaceLog log;
  DecisionTrail trail;
  SerialEngine::Stats stats;
  // One checkpoint taken at `depth`, with the log and a frozen detector
  // fork captured exactly as the sweep's PrefixCheckpoint does.
  EngineCheckpoint ck;
  std::unique_ptr<Tool> ck_tool;
  RaceLog ck_log;
  bool captured = false;
};

/// Run checkpoint_program straight through under `spec`, recording the
/// decision trail and capturing a checkpoint at continuation point `depth`.
void run_straight(const ToolFactory& make, const spec::StealSpec& spec,
                  std::size_t depth, StraightRun* out) {
  std::unique_ptr<Tool> tool = make(&out->log);
  SerialEngine engine(tool.get(), &spec);
  engine.set_decision_trail(&out->trail);
  engine.set_point_hook([&](std::size_t idx) {
    if (idx != depth || out->captured) return;
    engine.capture(&out->ck);
    out->ck_tool = tool->fork(nullptr);
    out->ck_log = out->log;
    out->captured = true;
  });
  engine.run([] { checkpoint_program(); });
  out->stats = engine.stats();
}

/// Fast-forward from the captured checkpoint and return the resumed log.
RaceLog run_resumed(const StraightRun& straight, const spec::StealSpec& spec,
                    SerialEngine::Stats* stats_out) {
  RaceLog log = straight.ck_log;
  std::unique_ptr<Tool> tool = straight.ck_tool->fork(&log);
  SerialEngine engine(tool.get(), &spec);
  SerialEngine::ResumePlan plan;
  plan.replay = &straight.trail;
  plan.replay_count = straight.trail.size();
  plan.live_from = straight.ck.point;
  plan.expect = &straight.ck;
  engine.resume_from([] { checkpoint_program(); }, plan);
  *stats_out = engine.stats();
  return log;
}

void expect_stats_equal(const SerialEngine::Stats& a,
                        const SerialEngine::Stats& b, const char* what) {
  EXPECT_EQ(a.frames, b.frames) << what;
  EXPECT_EQ(a.spawns, b.spawns) << what;
  EXPECT_EQ(a.syncs, b.syncs) << what;
  EXPECT_EQ(a.steals, b.steals) << what;
  EXPECT_EQ(a.reduces, b.reduces) << what;
  EXPECT_EQ(a.user_reduces, b.user_reduces) << what;
  EXPECT_EQ(a.identities, b.identities) << what;
  EXPECT_EQ(a.accesses, b.accesses) << what;
  EXPECT_EQ(a.reducer_ops, b.reducer_ops) << what;
}

TEST(EngineCheckpoint, ResumeEqualsStraightLineForEveryDetector) {
  spec::StealAll all;
  for (const auto& factory : detector_factories()) {
    // Probe once for the trail length so checkpoint depths span the run.
    StraightRun probe;
    run_straight(factory.make, all, 1, &probe);
    ASSERT_TRUE(probe.captured) << factory.name;
    ASSERT_GE(probe.trail.size(), 6u) << factory.name;
    ASSERT_TRUE(probe.log.any()) << factory.name
                                 << ": corpus program must elicit races";

    for (const std::size_t depth :
         {std::size_t{1}, std::size_t{2}, probe.trail.size() / 2,
          probe.trail.size() - 1}) {
      StraightRun straight;
      run_straight(factory.make, all, depth, &straight);
      ASSERT_TRUE(straight.captured)
          << factory.name << " at depth " << depth;
      ASSERT_EQ(straight.ck.point, depth);

      SerialEngine::Stats resumed_stats;
      const RaceLog resumed = run_resumed(straight, all, &resumed_stats);
      EXPECT_EQ(resumed.to_json(), straight.log.to_json())
          << factory.name << " at depth " << depth;
      expect_stats_equal(resumed_stats, straight.stats, factory.name);
    }
  }
}

TEST(EngineCheckpoint, ResumeRegeneratesViewIdentitiesAndTraceWorkers) {
  // Under tracing, steals advance the simulated-worker allocator; the
  // checkpoint records it and resume must regenerate the same stamping.
  trace::Session session;
  trace::Scope scope(&session, "checkpoint-test");
  spec::StealAll all;
  const auto factory = detector_factories().front();

  StraightRun straight;
  run_straight(factory.make, all, 3, &straight);
  ASSERT_TRUE(straight.captured);
  ASSERT_GT(straight.stats.identities, 0u)
      << "corpus program must mint identity views";
  ASSERT_GT(straight.ck.next_sim_worker, 1u)
      << "checkpoint must land after at least one traced steal";

  SerialEngine::Stats resumed_stats;
  const RaceLog resumed = run_resumed(straight, all, &resumed_stats);
  EXPECT_EQ(resumed.to_json(), straight.log.to_json());
  expect_stats_equal(resumed_stats, straight.stats, "traced resume");
}

TEST(EngineCheckpoint, CheckpointCapturesReducerViewMap) {
  spec::StealAll all;
  StraightRun straight;
  run_straight(detector_factories().front().make, all, 4, &straight);
  ASSERT_TRUE(straight.captured);
  // The checkpoint's epoch stack mirrors the live engine's at that point:
  // base epoch plus one per un-merged steal, reducers recorded per epoch.
  ASSERT_EQ(straight.ck.epoch_vids.size(), straight.ck.epoch_reducers.size());
  ASSERT_GE(straight.ck.epoch_vids.size(), 1u);
  EXPECT_EQ(straight.ck.epoch_vids.front(), 0u) << "base epoch is view 0";
  EXPECT_FALSE(straight.ck.frames.empty());
  EXPECT_GT(straight.ck.stats.frames, 0u);
  EXPECT_EQ(straight.ck.point, 4u);
}

TEST(DetectorFork, ForkedDetectorIsIndependentOfTheOriginal) {
  // Fork a frozen checkpoint twice and resume through each fork in turn.
  // Each resumed run must report exactly what the straight run reports —
  // the first resume must not contaminate the frozen parent that the
  // second resume forks from.
  for (const auto& factory : detector_factories()) {
    spec::StealAll all;

    // Straight baseline.
    RaceLog base_all;
    {
      std::unique_ptr<Tool> tool = factory.make(&base_all);
      SerialEngine engine(tool.get(), &all);
      engine.run([] { checkpoint_program(); });
    }

    // Trail + checkpoint under StealAll.
    StraightRun straight;
    run_straight(factory.make, all, 2, &straight);
    ASSERT_TRUE(straight.captured) << factory.name;

    // Resume the fork twice; runs must not contaminate each other.
    SerialEngine::Stats s1, s2;
    const RaceLog first = run_resumed(straight, all, &s1);
    const RaceLog second = run_resumed(straight, all, &s2);
    EXPECT_EQ(first.to_json(), straight.log.to_json()) << factory.name;
    EXPECT_EQ(second.to_json(), straight.log.to_json()) << factory.name;
    EXPECT_EQ(base_all.to_json(), straight.log.to_json()) << factory.name;
  }
}

TEST(ShadowSpaceFork, CopyOnWriteForksAreIndependent) {
  metrics::Registry reg;
  metrics::Scope scope(&reg);

  shadow::ShadowSpace space;
  space.set(0x1000, 7);
  space.set(0x2000, 9);

  shadow::ShadowSpace forked = space.fork();
  ASSERT_EQ(forked.get(0x1000), 7u);
  ASSERT_EQ(forked.get(0x2000), 9u);

  // Writes on either side un-share the touched page only.
  const std::uint64_t cow_before =
      reg.snapshot().counter(metrics::Counter::kShadowPagesCoW);
  forked.set(0x1000, 42);
  space.set(0x2000, 13);
  EXPECT_EQ(space.get(0x1000), 7u);
  EXPECT_EQ(forked.get(0x1000), 42u);
  EXPECT_EQ(forked.get(0x2000), 9u);
  EXPECT_EQ(space.get(0x2000), 13u);
  const std::uint64_t cow_after =
      reg.snapshot().counter(metrics::Counter::kShadowPagesCoW);
  EXPECT_GE(cow_after, cow_before + 2) << "both writes must copy a page";

  // A second fork of the (now partially un-shared) space still snapshots.
  shadow::ShadowSpace again = space.fork();
  EXPECT_EQ(again.get(0x1000), 7u);
  EXPECT_EQ(again.get(0x2000), 13u);
}

}  // namespace
}  // namespace rader
