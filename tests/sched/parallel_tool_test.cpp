// On-the-fly detection inside the work-stealing engine: a ParallelTool
// attached via ParallelEngine::set_tool receives the serial no-steal event
// stream on worker 0 while the program runs on all cores, per-worker
// metrics fold into the caller's registry after every run (nothing is
// dropped at teardown), and trace buffers outlive the engine because the
// Session owns them.  Everything here is race-free by construction — this
// file runs under the TSan CI slice (ctest -L sched).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/driver.hpp"
#include "core/peerset.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "sched/parallel_engine.hpp"
#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rader {
namespace {

constexpr int kBlocks = 8;
constexpr int kSpawnsPerBlock = 8;
constexpr int kSpawns = kBlocks * kSpawnsPerBlock;

// Disciplined reducer use (set before spawns, read after the sync): clean
// under Peer-Set, and every shared mutation goes through the reducer, so
// the program is also TSan-clean at any worker count.
void clean_program() {
  reducer<monoid::op_add<long>> sum(SrcTag{"sum"});
  for (int b = 0; b < kBlocks; ++b) {
    call([&] {
      for (int i = 0; i < kSpawnsPerBlock; ++i) {
        spawn([&sum] {
          for (int spin = 0; spin < 2000; ++spin) {
            asm volatile("" ::: "memory");
          }
          sum += 1;
        });
      }
      sync();
    });
  }
  sync();
  volatile long v = sum.get_value(SrcTag{"total"});
  (void)v;
}

// The canonical §2 misuse: get_value with a spawned updater outstanding.
// A view-read race semantically, yet TSan-clean on this engine — the
// updater writes its own segment view, never the leftmost the read sees.
void racy_program() {
  reducer<monoid::op_add<long>> sum(SrcTag{"sum"});
  spawn([&sum] { sum += 1; });
  volatile long v = sum.get_value(SrcTag{"get before sync"});
  (void)v;
  sync();
}

TEST(ParallelTool, CleanProgramStaysCleanAtEveryWorkerCount) {
  const RaceLog serial = Rader::check_view_read([] { clean_program(); });
  ASSERT_EQ(serial.view_read_count(), 0u);
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    const RaceLog par = Rader::check_parallel([] { clean_program(); }, jobs);
    EXPECT_EQ(par.view_read_count(), 0u) << "jobs=" << jobs;
  }
}

// Stored reports in stored order: the streams are byte-identical, so even
// report ORDER must match the serial run, not just the set.
using RaceTuple = std::tuple<ReducerId, FrameId, FrameId, std::string,
                             std::string, std::uint64_t>;

std::vector<RaceTuple> race_tuples(const RaceLog& log) {
  std::vector<RaceTuple> out;
  for (const ViewReadRace& r : log.view_read_races()) {
    out.emplace_back(r.reducer, r.prior_frame, r.current_frame, r.prior_label,
                     r.current_label, r.occurrences);
  }
  return out;
}

TEST(ParallelTool, RacyProgramMatchesSerialVerdict) {
  const RaceLog serial = Rader::check_view_read([] { racy_program(); });
  ASSERT_GT(serial.view_read_count(), 0u);
  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    const RaceLog par = Rader::check_parallel([] { racy_program(); }, jobs);
    EXPECT_EQ(par.view_read_count(), serial.view_read_count())
        << "jobs=" << jobs;
    EXPECT_EQ(race_tuples(par), race_tuples(serial)) << "jobs=" << jobs;
  }
}

// Counter conservation: every worker's private registry folds into the
// caller's sink at the end of run() — no bump is lost when helpers idle
// through the join or when the engine is torn down afterwards.
TEST(ParallelTool, WorkerMetricsFoldIntoTheCallersRegistry) {
  // Serial baseline for the schedule-independent counters.
  metrics::Registry baseline;
  {
    metrics::Scope scope(&baseline);
    const RaceLog log = Rader::check_view_read([] { clean_program(); });
    ASSERT_EQ(log.view_read_count(), 0u);
  }
  const std::uint64_t serial_frames =
      baseline.snapshot().counter(metrics::Counter::kFramesEntered);
  // Root + every spawned child + every called block.
  ASSERT_EQ(serial_frames, 1u + kSpawns + kBlocks);

  for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
    metrics::Registry outer;
    RaceLog log;
    ParallelPeerSet tool(&log);
    {
      metrics::Scope scope(&outer);
      ParallelEngine engine(jobs);
      engine.set_tool(&tool);
      engine.run([] { clean_program(); });
      engine.run([] { clean_program(); });  // folds must accumulate, not leak
    }
    const metrics::Snapshot snap = outer.snapshot();
    // Exactly one execution per spawned task, regardless of who stole what.
    EXPECT_EQ(snap.counter(metrics::Counter::kEngineTasks), 2u * kSpawns)
        << "jobs=" << jobs;
    // The replayed detector saw the serial frame stream — twice.
    EXPECT_EQ(snap.counter(metrics::Counter::kFramesEntered),
              2u * serial_frames)
        << "jobs=" << jobs;
    EXPECT_GT(snap.counter(metrics::Counter::kShardEvents), 0u)
        << "jobs=" << jobs;
    EXPECT_GE(snap.counter(metrics::Counter::kShardDrains), 2u)
        << "jobs=" << jobs;
    EXPECT_EQ(log.view_read_count(), 0u) << "jobs=" << jobs;
  }
}

// Without an installed outer registry the engine must still quiesce the
// per-worker registries (a later run with a registry sees only its own).
TEST(ParallelTool, UntrackedRunDoesNotLeakIntoTheNextOne) {
  ParallelEngine engine(2);
  engine.run([] { clean_program(); });  // no outer registry: discarded
  metrics::Registry outer;
  {
    metrics::Scope scope(&outer);
    engine.run([] { clean_program(); });
  }
  EXPECT_EQ(outer.snapshot().counter(metrics::Counter::kEngineTasks),
            static_cast<std::uint64_t>(kSpawns));
}

// Trace buffers are owned by the Session, not the engine: events recorded
// by pool workers must survive the engine's teardown.
TEST(ParallelTool, TraceBuffersSurviveEngineTeardown) {
  trace::Session session;
  {
    TraceScope ts(&session, "main");
    ParallelEngine engine(4);
    engine.run([] { clean_program(); });
    // Give every helper at least one idle-loop iteration inside the scope
    // so it attaches its buffer (helpers re-check the session each loop).
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }  // engine destroyed before the scope closes
  EXPECT_GT(session.total_recorded(), 0u);
  bool saw_worker_buffer = false;
  for (const trace::Buffer* b : session.buffers()) {
    if (b->name().rfind("pe-worker-", 0) == 0) saw_worker_buffer = true;
  }
  EXPECT_TRUE(saw_worker_buffer)
      << "helper threads never attached to the session";
}

}  // namespace
}  // namespace rader
