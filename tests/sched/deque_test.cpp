#include "sched/worksteal_deque.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

namespace rader::sched {
namespace {

TEST(WorkStealDeque, EmptyPopAndSteal) {
  WorkStealDeque d;
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_EQ(d.steal(), nullptr);
  EXPECT_EQ(d.size_estimate(), 0u);
}

TEST(WorkStealDeque, PushPopIsLifo) {
  WorkStealDeque d;
  int items[3];
  for (int i = 0; i < 3; ++i) d.push(&items[i]);
  EXPECT_EQ(d.pop(), &items[2]);
  EXPECT_EQ(d.pop(), &items[1]);
  EXPECT_EQ(d.pop(), &items[0]);
  EXPECT_EQ(d.pop(), nullptr);
}

TEST(WorkStealDeque, StealIsFifo) {
  WorkStealDeque d;
  int items[3];
  for (int i = 0; i < 3; ++i) d.push(&items[i]);
  EXPECT_EQ(d.steal(), &items[0]);
  EXPECT_EQ(d.steal(), &items[1]);
  EXPECT_EQ(d.steal(), &items[2]);
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(WorkStealDeque, GrowsPastInitialCapacity) {
  WorkStealDeque d(8);
  std::vector<std::uintptr_t> items(1000);
  for (auto& it : items) d.push(&it);
  EXPECT_EQ(d.size_estimate(), 1000u);
  for (std::size_t i = items.size(); i-- > 0;) {
    EXPECT_EQ(d.pop(), &items[i]);
  }
}

TEST(WorkStealDeque, MixedOwnerOps) {
  WorkStealDeque d;
  int a, b, c;
  d.push(&a);
  d.push(&b);
  EXPECT_EQ(d.pop(), &b);
  d.push(&c);
  EXPECT_EQ(d.steal(), &a);
  EXPECT_EQ(d.pop(), &c);
  EXPECT_EQ(d.pop(), nullptr);
}

// Concurrency: one owner pushing/popping, several thieves stealing; every
// item must be consumed exactly once.
TEST(WorkStealDeque, ConcurrentStealStress) {
  constexpr int kItems = 200000;
  constexpr int kThieves = 3;
  WorkStealDeque d;
  std::vector<std::uint32_t> items(kItems);
  std::atomic<std::uint64_t> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::atomic<bool> done{false};

  for (std::uint32_t i = 0; i < kItems; ++i) items[i] = i;

  std::vector<std::thread> thieves;
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        if (void* p = d.steal()) {
          consumed_sum.fetch_add(*static_cast<std::uint32_t*>(p));
          consumed_count.fetch_add(1);
        }
      }
      // Final drain.
      while (void* p = d.steal()) {
        consumed_sum.fetch_add(*static_cast<std::uint32_t*>(p));
        consumed_count.fetch_add(1);
      }
    });
  }

  // Owner: interleave pushes with occasional pops.
  std::uint64_t owner_sum = 0;
  int owner_count = 0;
  for (int i = 0; i < kItems; ++i) {
    d.push(&items[i]);
    if (i % 3 == 0) {
      if (void* p = d.pop()) {
        owner_sum += *static_cast<std::uint32_t*>(p);
        ++owner_count;
      }
    }
  }
  while (void* p = d.pop()) {
    owner_sum += *static_cast<std::uint32_t*>(p);
    ++owner_count;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(owner_count + consumed_count.load(), kItems);
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kItems - 1) * kItems / 2;
  EXPECT_EQ(owner_sum + consumed_sum.load(), expected);
}

}  // namespace
}  // namespace rader::sched
