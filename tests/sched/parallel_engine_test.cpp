#include "sched/parallel_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <string>
#include <vector>

#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"

namespace rader {
namespace {

TEST(ParallelEngine, RunsRootOnCallerThread) {
  ParallelEngine engine(2);
  int x = 0;
  engine.run([&] { x = 1; });
  EXPECT_EQ(x, 1);
}

TEST(ParallelEngine, SpawnSyncComputesFibonacci) {
  ParallelEngine engine(4);
  std::function<std::uint64_t(int)> fib = [&](int n) -> std::uint64_t {
    if (n < 2) return n;
    std::uint64_t a = 0, b = 0;
    spawn([&a, &fib, n] { a = fib(n - 1); });
    b = fib(n - 2);
    sync();
    return a + b;
  };
  std::uint64_t result = 0;
  engine.run([&] { result = fib(20); });
  EXPECT_EQ(result, 6765u);
}

TEST(ParallelEngine, ActuallyRunsInParallel) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "needs >= 2 hardware threads to observe overlap";
  }
  ParallelEngine engine(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  engine.run([&] {
    for (int i = 0; i < 16; ++i) {
      spawn([&] {
        const int now = concurrent.fetch_add(1) + 1;
        int seen = peak.load();
        while (seen < now && !peak.compare_exchange_weak(seen, now)) {
        }
        // Hold the slot briefly so siblings can overlap.
        for (int spin = 0; spin < 200000; ++spin) {
          asm volatile("" ::: "memory");
        }
        concurrent.fetch_sub(1);
      });
    }
    sync();
  });
  EXPECT_GT(peak.load(), 1) << "no overlap observed with 4 workers";
}

TEST(ParallelEngine, ReducerSumMatchesSerial) {
  ParallelEngine engine(8);
  long total = 0;
  engine.run([&] {
    reducer<monoid::op_add<long>> sum;
    parallel_for<long>(1, 10001, [&](long i) { sum += i; }, /*grain=*/7);
    sync();
    total = sum.get_value();
  });
  EXPECT_EQ(total, 50005000L);
}

TEST(ParallelEngine, NonCommutativeOrderPreserved) {
  ParallelEngine engine(8);
  for (int rep = 0; rep < 10; ++rep) {
    std::string result;
    engine.run([&] {
      reducer<monoid::string_append> s;
      for (int i = 0; i < 16; ++i) {
        spawn([&s, i] {
          s.update([&](std::string& v) { v += static_cast<char>('a' + i); });
        });
      }
      sync();
      result = s.get_value();
    });
    EXPECT_EQ(result, "abcdefghijklmnop") << "rep " << rep;
  }
}

TEST(ParallelEngine, NestedSyncScopesAreLocal) {
  ParallelEngine engine(4);
  std::string result;
  engine.run([&] {
    reducer<monoid::string_append> s;
    for (int block = 0; block < 4; ++block) {
      call([&] {
        for (int i = 0; i < 4; ++i) {
          spawn([&s, block, i] {
            s.update([&](std::string& v) {
              v += static_cast<char>('a' + block * 4 + i);
            });
          });
        }
        sync();
      });
    }
    result = s.get_value();
  });
  EXPECT_EQ(result, "abcdefghijklmnop");
}

TEST(ParallelEngine, ReducerCreatedOutsideRunFoldsIntoLeftmost) {
  reducer<monoid::op_add<long>> sum(100L);
  ParallelEngine engine(4);
  engine.run([&] {
    parallel_for<int>(0, 100, [&](int) { sum += 1; }, /*grain=*/3);
    sync();
  });
  EXPECT_EQ(sum.get_value(), 200);
}

TEST(ParallelEngine, SequentialRunsReuseWorkers) {
  ParallelEngine engine(4);
  for (int rep = 0; rep < 5; ++rep) {
    long total = 0;
    engine.run([&] {
      reducer<monoid::op_add<long>> sum;
      parallel_for<int>(0, 1000, [&](int) { sum += 1; });
      sync();
      total = sum.get_value();
    });
    EXPECT_EQ(total, 1000);
  }
}

TEST(ParallelEngine, SingleWorkerDegeneratesToSerial) {
  ParallelEngine engine(1);
  std::vector<int> trace;
  engine.run([&] {
    trace.push_back(0);
    spawn([&] { trace.push_back(1); });
    trace.push_back(2);
    sync();
    trace.push_back(3);
  });
  // Child stealing on one worker: continuation first, child at the sync.
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0], 0);
  EXPECT_EQ(trace[3], 3);
}

TEST(ParallelEngine, StealCountReported) {
  if (std::thread::hardware_concurrency() < 2) {
    GTEST_SKIP() << "steals are not guaranteed on a single hardware thread";
  }
  ParallelEngine engine(4);
  engine.run([&] {
    parallel_for<int>(0, 4096, [](int) {
      for (int spin = 0; spin < 50; ++spin) {
        asm volatile("" ::: "memory");
      }
    });
    sync();
  });
  // With 4 workers and plenty of tasks, some steals should happen.
  EXPECT_GT(engine.steal_count(), 0u);
}

}  // namespace
}  // namespace rader
