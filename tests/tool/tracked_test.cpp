#include "tool/tracked.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "runtime/run.hpp"
#include "runtime/serial_engine.hpp"
#include "../test_util.hpp"

namespace rader {
namespace {

using testing::EventLogTool;

TEST(Tracked, ActsAsPlainValueWithoutEngine) {
  tracked<int> x;
  EXPECT_EQ(static_cast<int>(x), 0);
  x = 5;
  x += 2;
  x -= 1;
  x *= 3;
  EXPECT_EQ(x.raw(), 18);
  ++x;
  --x;
  EXPECT_EQ(static_cast<int>(x), 18);
}

TEST(Tracked, EmitsAccessEvents) {
  EventLogTool log;
  SerialEngine engine(&log);
  tracked<long> x(3);
  engine.run([&] {
    const long v = x;  // read
    x = v + 1;         // write
    x += 1;            // read + write
  });
  EXPECT_EQ(log.count_prefix("read(8,vo"), 2);   // conversion + compound
  EXPECT_EQ(log.count_prefix("write(8,vo"), 2);  // assignment + compound
  EXPECT_EQ(x.raw(), 5);
}

TEST(Tracked, LoadStoreCarryTags) {
  EventLogTool log;
  SerialEngine engine(&log);
  tracked<int> x;
  engine.run([&] {
    x.store(7, SrcTag{"tagged store"});
    volatile int v = x.load(SrcTag{"tagged load"});
    (void)v;
  });
  EXPECT_EQ(log.count_prefix("write(4,vo,v0,tagged store)"), 1);
  EXPECT_EQ(log.count_prefix("read(4,vo,v0,tagged load)"), 1);
}

TEST(Tracked, RacesAreDetectedThroughTheWrapper) {
  const RaceLog log = Rader::check_spbags([] {
    tracked<int> x;
    spawn([&] { x = 1; });
    volatile int v = x;
    (void)v;
    sync();
  });
  EXPECT_TRUE(log.any());
}

TEST(Tracked, CleanUsageThroughTheWrapper) {
  const RaceLog log = Rader::check_spbags([] {
    tracked<int> x;
    x = 1;
    spawn([] {});
    sync();
    x += 1;
  });
  EXPECT_FALSE(log.any());
}

TEST(Tracked, CopySemanticsAnnotateBothSides) {
  EventLogTool log;
  SerialEngine engine(&log);
  engine.run([&] {
    tracked<int> a(1);
    tracked<int> b(a);  // read a, (construction of b is unannotated)
    b = a;              // read a, write b
    (void)b;
  });
  EXPECT_EQ(log.count_prefix("read(4"), 2);
  EXPECT_EQ(log.count_prefix("write(4"), 1);
}

TEST(ToolChain, FansOutToAllTools) {
  EventLogTool a, b;
  ToolChain chain;
  chain.add(&a);
  chain.add(&b);
  SerialEngine engine(&chain);
  int x = 0;
  engine.run([&] {
    spawn([&] { shadow_write(&x, 4); });
    sync();
  });
  EXPECT_EQ(a.events(), b.events());
  EXPECT_GT(a.events().size(), 3u);
}

TEST(ToolChain, ClearEventsPropagate) {
  // The shadow-clear path must reach every chained tool (a detector missing
  // a clear would produce heap-reuse false positives).
  RaceLog log1, log2;
  SpBagsDetector d1(&log1);
  SpPlusDetector d2(&log2);
  ToolChain chain;
  chain.add(&d1);
  chain.add(&d2);
  spec::NoSteal none;
  SerialEngine engine(&chain, &none);
  engine.run([&] {
    auto* p = new int(0);
    spawn([p] { shadow_write(p, 4); });
    sync();
    shadow_clear(p, 4);
    delete p;
    auto* q = new int(0);  // may reuse p's address
    spawn([q] { shadow_write(q, 4); });
    shadow_read(q, 4);  // races with the NEW allocation's writer only
    sync();
    shadow_clear(q, 4);
    delete q;
  });
  // Both detectors report exactly the q-generation race, nothing stale.
  EXPECT_EQ(log1.determinacy_count(), 4u);
  EXPECT_EQ(log2.determinacy_count(), 4u);
}

}  // namespace
}  // namespace rader
