// SamplingTool statistical battery (tool/sampling.hpp).
//
// The sampling mode's whole contract is statistical, so the tests are too:
//   * determinism      — the sampled set is a pure function of (seed, rate);
//                        two runs with the same config produce byte-identical
//                        reports, and a run never consults an RNG stream.
//   * nested sets      — sampled(P1) ⊆ sampled(P2) whenever P1 <= P2 (the
//                        threshold only rises), which is what makes recall
//                        provably monotone in P.
//   * monotone recall  — on the litmus corpus the reported race-identity set
//                        only grows as P → 1.
//   * P=1 byte-identity— with rate >= 1 the wrapper forwards VERBATIM, so a
//                        sampled run reproduces the unsampled report byte for
//                        byte on the entire litmus corpus AND on every fuzz
//                        corpus reproducer, through every driver entry point.
#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "dag/program_serial.hpp"
#include "dag/random_program.hpp"
#include "fuzz/differ.hpp"
#include "spec/spec_family.hpp"
#include "spec/steal_spec.hpp"
#include "support/metrics.hpp"
#include "tool/sampling.hpp"
#include "tool/tool.hpp"

#include "../litmus/litmus_cases.hpp"

#ifndef RADER_FUZZ_CORPUS_DIR
#error "RADER_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus"
#endif

namespace rader {
namespace {

SamplingConfig config_for(double rate, std::uint64_t seed = 0x5eed,
                          unsigned block_bits = 12) {
  SamplingConfig config;
  config.enabled = true;
  config.rate = rate;
  config.seed = seed;
  config.block_bits = block_bits;
  return config;
}

// A no-op inner detector: lets the filter itself be probed in isolation.
struct NullTool final : Tool {};

// ---- The filter as a pure function -----------------------------------------

TEST(Sampling, SampledSetIsAPureFunctionOfSeedAndRate) {
  NullTool inner;
  const SamplingTool a(&inner, config_for(0.25, 42));
  const SamplingTool b(&inner, config_for(0.25, 42));
  const SamplingTool other_seed(&inner, config_for(0.25, 43));
  int kept = 0, seed_diffs = 0;
  for (std::uintptr_t block = 0; block < 4096; ++block) {
    ASSERT_EQ(a.sampled(block), b.sampled(block)) << "block " << block;
    kept += a.sampled(block);
    seed_diffs += a.sampled(block) != other_seed.sampled(block);
  }
  // P=0.25 over 4096 blocks: binomial mean 1024, sd ~28 — a ±25% band is
  // ~9 sigma, so a pass is evidence the hash is unbiased, not luck.
  EXPECT_GT(kept, 768);
  EXPECT_LT(kept, 1280);
  EXPECT_GT(seed_diffs, 0) << "the seed must matter";
}

TEST(Sampling, SampledSetsAreNestedAsRateGrows) {
  NullTool inner;
  const double rates[] = {0.01, 0.1, 0.5, 0.9, 1.0};
  std::vector<std::unique_ptr<SamplingTool>> tools;
  for (const double rate : rates) {
    tools.push_back(
        std::make_unique<SamplingTool>(&inner, config_for(rate, 7)));
  }
  for (std::uintptr_t block = 0; block < 1 << 16; ++block) {
    for (std::size_t i = 0; i + 1 < tools.size(); ++i) {
      if (tools[i]->sampled(block)) {
        ASSERT_TRUE(tools[i + 1]->sampled(block))
            << "block " << block << " sampled at P=" << rates[i]
            << " but not at P=" << rates[i + 1];
      }
      if (tools[i]->sampled_reducer(static_cast<ReducerId>(block))) {
        ASSERT_TRUE(tools[i + 1]->sampled_reducer(static_cast<ReducerId>(block)))
            << "reducer " << block;
      }
    }
  }
}

TEST(Sampling, PerSpecSeedIsDeterministicAndSpecDependent) {
  const auto s1 = sampling_seed_for_spec(0x5eed, "no-steals");
  EXPECT_EQ(s1, sampling_seed_for_spec(0x5eed, "no-steals"));
  EXPECT_NE(s1, sampling_seed_for_spec(0x5eed, "steal-all"));
  EXPECT_NE(s1, sampling_seed_for_spec(0x5eee, "no-steals"));
}

TEST(Sampling, FilterCountsForwardedAndDroppedBlocks) {
  NullTool inner;
  SamplingTool tool(&inner, config_for(0.5, 9, /*block_bits=*/4));
  metrics::Registry registry;
  {
    metrics::Scope scope(&registry);
    // 64 single-block accesses at 16-byte blocks: every one is counted as
    // either forwarded or dropped — never silently swallowed.
    for (std::uintptr_t block = 0; block < 64; ++block) {
      tool.on_access(AccessKind::kWrite, block << 4, 4, false, kInvalidView,
                     SrcTag{"counted"});
    }
    // A multi-block access walks its covered blocks the same way.
    tool.on_access(AccessKind::kRead, 0, 64 << 4, false, kInvalidView,
                   SrcTag{"straddling"});
  }
  const auto forwarded =
      registry.snapshot().counter(metrics::Counter::kSampledAccesses);
  const auto dropped =
      registry.snapshot().counter(metrics::Counter::kSampledDropped);
  EXPECT_GT(forwarded, 0u);
  EXPECT_GT(dropped, 0u);
  EXPECT_GE(forwarded + dropped, 64u);
}

// ---- Litmus corpus: P=1 identity and monotone recall ------------------------

TEST(Sampling, RateOneIsByteIdenticalToUnsampledOnTheWholeLitmusCorpus) {
  const SamplingConfig p1 = config_for(1.0, /*seed=*/0xDEADBEEF);
  for (const auto& c : litmus::all_cases()) {
    EXPECT_EQ(Rader::check_view_read(c.program, p1).to_json(),
              Rader::check_view_read(c.program).to_json())
        << c.name << " (peerset)";
    EXPECT_EQ(Rader::check_spbags(c.program, p1).to_json(),
              Rader::check_spbags(c.program).to_json())
        << c.name << " (sp-bags)";
    spec::NoSteal none;
    spec::StealAll all;
    for (const spec::StealSpec* s :
         {static_cast<const spec::StealSpec*>(&none),
          static_cast<const spec::StealSpec*>(&all)}) {
      EXPECT_EQ(Rader::check_determinacy(c.program, *s, p1).to_json(),
                Rader::check_determinacy(c.program, *s).to_json())
          << c.name << " (sp+ under " << s->describe() << ")";
    }
    const auto sampled = Rader::check_exhaustive(c.program, 16, 64, p1);
    const auto full = Rader::check_exhaustive(c.program);
    EXPECT_EQ(sampled.log.to_json(), full.log.to_json())
        << c.name << " (exhaustive)";
    EXPECT_EQ(sampled.spec_runs, full.spec_runs) << c.name;
  }
}

TEST(Sampling, SampledRunsAreDeterministicPerSeed) {
  // Sub-unit rate, byte-sized blocks so the litmus statics scatter across
  // blocks: two runs with one config must agree byte for byte; a different
  // seed must change SOMETHING across the corpus (it samples other blocks).
  const SamplingConfig cfg = config_for(0.5, 0xA5A5, /*block_bits=*/0);
  const SamplingConfig other = config_for(0.5, 0x5A5A, /*block_bits=*/0);
  bool seed_changed_something = false;
  for (const auto& c : litmus::all_cases()) {
    const std::string first =
        Rader::check_exhaustive(c.program, 16, 64, cfg).log.to_json();
    const std::string second =
        Rader::check_exhaustive(c.program, 16, 64, cfg).log.to_json();
    EXPECT_EQ(first, second) << c.name;
    seed_changed_something |=
        first != Rader::check_exhaustive(c.program, 16, 64, other).log.to_json();
  }
  EXPECT_TRUE(seed_changed_something)
      << "P=0.5 with byte blocks should drop different races per seed";
}

/// Frame-free race identities from a log, for subset comparisons.
std::set<std::string> race_identities(const RaceLog& log) {
  std::set<std::string> ids;
  for (const auto& r : log.determinacy_races()) {
    std::ostringstream key;
    key << "det " << r.addr << ' ' << static_cast<int>(r.current_kind) << ' '
        << r.prior_was_write << ' ' << r.current_label;
    ids.insert(key.str());
  }
  for (const auto& r : log.view_read_races()) {
    ids.insert("vr " + std::to_string(r.reducer) + ' ' + r.prior_label + ' ' +
               r.current_label);
  }
  return ids;
}

TEST(Sampling, RecallOnTheLitmusCorpusIsMonotoneInP) {
  // Nested sampled sets + deterministic everything-else ⇒ the race set at a
  // lower P is a subset of the race set at any higher P, case by case, and
  // P=1 recovers full precision exactly.
  const double rates[] = {0.05, 0.25, 0.5, 1.0};
  for (const auto& c : litmus::all_cases()) {
    std::set<std::string> prev;
    for (std::size_t i = 0; i < std::size(rates); ++i) {
      const auto cfg = config_for(rates[i], 0xF00D, /*block_bits=*/0);
      const auto got = race_identities(
          Rader::check_exhaustive(c.program, 16, 64, cfg).log);
      for (const auto& id : prev) {
        EXPECT_TRUE(got.count(id))
            << c.name << ": race found at P=" << rates[i - 1]
            << " lost at P=" << rates[i] << ": " << id;
      }
      prev = got;
    }
    const auto full = race_identities(Rader::check_exhaustive(c.program).log);
    EXPECT_EQ(prev, full) << c.name << ": P=1 must recover full precision";
  }
}

// ---- Fuzz corpus: the distilled adversarial programs through the wrapper ----

const char* kCorpusFiles[] = {
    "fig6_shadow_slot.rprog",
    "view_read_race.rprog",
    "reduce_vs_oblivious.rprog",
};

TEST(Sampling, RateOneReproducesFullPrecisionOnTheFuzzCorpus) {
  const SamplingConfig p1 = config_for(1.0, /*seed=*/31337);
  for (const char* name : kCorpusFiles) {
    std::string error;
    auto repro = dag::load_reproducer(
        std::string(RADER_FUZZ_CORPUS_DIR) + "/" + name, &error);
    ASSERT_TRUE(repro.has_value()) << name << ": " << error;
    auto steal_spec = spec::from_description(repro->spec_handle);
    ASSERT_NE(steal_spec, nullptr) << repro->spec_handle;
    dag::RandomProgram program(repro->tree, repro->params);
    const auto [pool_lo, pool_hi] = program.pool_range();

    const RaceLog full =
        Rader::check_determinacy([&] { program(); }, *steal_spec);
    const RaceLog sampled =
        Rader::check_determinacy([&] { program(); }, *steal_spec, p1);
    EXPECT_EQ(sampled.to_json(), full.to_json()) << name;
    EXPECT_EQ(fuzz::canonical_race_keys(sampled, pool_lo, pool_hi),
              fuzz::canonical_race_keys(full, pool_lo, pool_hi))
        << name;

    EXPECT_EQ(Rader::check_view_read([&] { program(); }, p1).to_json(),
              Rader::check_view_read([&] { program(); }).to_json())
        << name << " (peerset)";
  }
}

}  // namespace
}  // namespace rader
