// Canonical SP parse trees, including a computation shaped like the paper's
// Figure 2 / Figure 4 example and the strand relations stated in Section 3:
//   * some strands in series (4 ≺ 9 analog), some parallel (9 ‖ 10 analog);
//   * a continuation whose peer set matches an earlier strand's (5 vs 9);
//   * a later strand whose peers differ because an intervening sync block
//     spawned more children (10 vs 14).
#include "dag/parse_tree.hpp"

#include <gtest/gtest.h>

#include "dag/recorder.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader::dag {
namespace {

PerfDag record(FnView program) {
  Recorder rec;
  spec::NoSteal none;
  SerialEngine engine(&rec, &none);
  engine.run(program);
  return rec.take();
}

TEST(ParseTree, SingleStrandProgram) {
  const PerfDag dag = record([] {});
  const ParseTree tree = ParseTree::build(dag);
  ASSERT_EQ(tree.nodes().size(), 1u);
  EXPECT_EQ(tree.nodes()[0].kind, ParseTree::NodeKind::kLeaf);
  EXPECT_TRUE(tree.all_s_path(0, 0));
}

TEST(ParseTree, SpawnMakesAPNode) {
  const PerfDag dag = record([] {
    spawn([] {});
    sync();
  });
  const ParseTree tree = ParseTree::build(dag);
  // Strands: 0 spawn strand, 1 child, 2 continuation, 3 sync strand.
  EXPECT_FALSE(tree.parallel(0, 1));  // spawn strand precedes child
  EXPECT_TRUE(tree.parallel(1, 2));   // LCA(child, continuation) is a P node
  EXPECT_FALSE(tree.parallel(1, 3));
  EXPECT_EQ(tree.p_depth(1), 1u);  // child sits under one P node
  EXPECT_EQ(tree.p_depth(3), 0u);  // sync strand is all-S from the root
}

TEST(ParseTree, CallMakesAnSNode) {
  const PerfDag dag = record([] { call([] {}); });
  const ParseTree tree = ParseTree::build(dag);
  for (StrandId u = 0; u < dag.size(); ++u) {
    for (StrandId v = 0; v < dag.size(); ++v) {
      EXPECT_FALSE(tree.parallel(u, v) && u == v);
      EXPECT_TRUE(tree.all_s_path(u, v));  // whole program is one series
    }
  }
}

TEST(ParseTree, MatchesReachabilityOnFig2StyleProgram) {
  // A computation in the shape of the paper's Figure 2: a root function
  // that spawns, calls, and syncs across two sync blocks, with nested
  // spawned/called children.
  const PerfDag dag = record([] {
    // sync block 1
    spawn([] { call([] {}); });     // b with a called child
    call([] {
      spawn([] {});                 // d spawned inside c
      sync();
    });
    sync();
    // sync block 2
    spawn([] {});                   // e
    spawn([] {});                   // f
    sync();
  });
  const ParseTree tree = ParseTree::build(dag);
  const Reachability reach(dag);
  for (StrandId u = 0; u < dag.size(); ++u) {
    for (StrandId v = 0; v < dag.size(); ++v) {
      if (u == v) continue;
      // Feng–Leiserson Lemma 4: u ‖ v iff LCA(u, v) is a P node.
      EXPECT_EQ(tree.parallel(u, v), reach.parallel(u, v))
          << "strands " << u << ", " << v;
      // Lemma 2: equal peer sets iff the connecting path is all S nodes.
      EXPECT_EQ(tree.all_s_path(u, v), reach.same_peers(u, v))
          << "strands " << u << ", " << v;
    }
  }
}

TEST(ParseTree, SectionThreeRelations) {
  // Strand bookkeeping for:
  //   s0: first strand; spawn A(s1); s2: continuation;
  //   sync -> s3; spawn B(s4); s5: continuation; sync -> s6.
  const PerfDag dag = record([] {
    spawn([] {});
    sync();
    spawn([] {});
    sync();
  });
  ASSERT_EQ(dag.size(), 7u);
  const ParseTree tree = ParseTree::build(dag);
  const Reachability reach(dag);

  // Series within the spine, parallelism only across spawn/continuation.
  EXPECT_TRUE(reach.precedes(1, 4));   // first child precedes second child
  EXPECT_TRUE(reach.parallel(1, 2));
  EXPECT_TRUE(reach.parallel(4, 5));
  EXPECT_FALSE(reach.parallel(2, 5));

  // "the view of a reducer at strand 9 is guaranteed to reflect the updates
  // since strand 5, because strands 5 and 9 have the same peers" — the
  // analog here: the two sync strands (s3, s6) and s0 share peer sets...
  EXPECT_TRUE(reach.same_peers(0, 3));
  EXPECT_TRUE(reach.same_peers(3, 6));
  EXPECT_TRUE(tree.all_s_path(0, 6));
  // ...but a continuation inside a spawn block does not share peers with
  // them (its peer set contains the spawned child).
  EXPECT_FALSE(reach.same_peers(0, 2));
  EXPECT_FALSE(tree.all_s_path(0, 2));
  // Two continuation strands of DIFFERENT sync blocks differ in peers
  // (each is parallel with its own block's child only).
  EXPECT_FALSE(reach.same_peers(2, 5));
  // The same continuation's peers match the strand right after its spawn
  // completes... i.e. nothing else intervenes: s2 and the pre-sync point
  // share peers trivially (same strand), checked via the child instead:
  EXPECT_FALSE(reach.same_peers(1, 4));
}

TEST(ParseTree, PDepthMatchesEngineSpawnDepth) {
  // Theorem 6's depth classes: the engine's spawn-depth (as+ls) for an
  // update strand equals the number of P nodes on its root-to-leaf path.
  const PerfDag dag = record([] {
    spawn([] {
      spawn([] {});
      sync();
    });
    spawn([] {});
    sync();
  });
  const ParseTree tree = ParseTree::build(dag);
  // Strand 0 = root first strand: depth 0.
  EXPECT_EQ(tree.p_depth(0), 0u);
  // First spawned child's first strand: one P ancestor.
  EXPECT_EQ(tree.p_depth(1), 1u);
  // Grandchild (spawned inside spawned): two P ancestors.
  EXPECT_EQ(tree.p_depth(2), 2u);
}

TEST(ParseTree, RejectsNonSeriesParallelLogs) {
  Recorder rec;
  spec::StealAll all;
  SerialEngine engine(&rec, &all);
  engine.run([] {
    spawn([] {});
    sync();
  });
  const PerfDag dag = rec.take();
  ASSERT_GT(dag.steal_count, 0u);
  EXPECT_DEATH((void)ParseTree::build(dag), "no-steal");
}

}  // namespace
}  // namespace rader::dag
