// The parallel offline analysis must agree exactly with the serial oracle —
// on both race kinds, for recorded executions of random programs under
// random steal specifications, at several worker counts.
#include "dag/parallel_oracle.hpp"

#include <gtest/gtest.h>

#include "dag/random_program.hpp"
#include "dag/recorder.hpp"
#include "runtime/serial_engine.hpp"
#include "sched/parallel_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader::dag {
namespace {

PerfDag record_random(std::uint64_t seed, const spec::StealSpec& steal_spec) {
  RandomProgramParams params;
  params.seed = seed;
  params.max_depth = 4;
  params.max_actions = 8;
  params.num_reducers = 2;
  params.num_locations = 6;
  params.p_access = 0.25;
  params.p_update = 0.15;
  params.p_raw_view = 0.05;
  params.p_reducer_read = 0.10;
  RandomProgram program(params);
  Recorder recorder;
  SerialEngine engine(&recorder, &steal_spec);
  engine.run([&] { program(); });
  return recorder.take();
}

TEST(ParallelOracle, ParallelReachabilityMatchesSerial) {
  spec::BernoulliSteal steal_spec(5, 0.4);
  const PerfDag dag = record_random(77, steal_spec);
  const Reachability serial(dag);
  ParallelEngine engine(4);
  const Reachability parallel(dag, engine);
  for (StrandId u = 0; u < dag.size(); ++u) {
    for (StrandId v = 0; v < dag.size(); ++v) {
      ASSERT_EQ(serial.parallel(u, v), parallel.parallel(u, v))
          << u << "," << v;
      ASSERT_EQ(serial.same_peers(u, v), parallel.same_peers(u, v))
          << u << "," << v;
    }
  }
}

class ParallelOracleProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ParallelOracleProperty, AgreesWithSerialOracle) {
  const std::uint64_t seed = GetParam();
  const spec::NoSteal none;
  const spec::BernoulliSteal random(seed, 0.5);
  const spec::StealSpec* specs[] = {&none, &random};
  ParallelEngine engine(3);
  for (const auto* steal_spec : specs) {
    const PerfDag dag = record_random(seed, *steal_spec);
    const OracleResult serial = run_oracle(dag);
    const OracleResult parallel = run_oracle_parallel(dag, engine);
    EXPECT_EQ(parallel.any_view_read, serial.any_view_read) << seed;
    EXPECT_EQ(parallel.any_determinacy, serial.any_determinacy) << seed;
    EXPECT_EQ(parallel.racing_reducers, serial.racing_reducers) << seed;
    EXPECT_EQ(parallel.racing_addrs, serial.racing_addrs) << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelOracleProperty,
                         ::testing::Range<std::uint64_t>(5000, 5040));

TEST(ParallelOracle, EmptyDagIsClean) {
  Recorder recorder;
  spec::NoSteal none;
  SerialEngine engine(&recorder, &none);
  engine.run([] {});
  ParallelEngine pool(2);
  const OracleResult result = run_oracle_parallel(recorder.dag(), pool);
  EXPECT_FALSE(result.any_view_read);
  EXPECT_FALSE(result.any_determinacy);
}

}  // namespace
}  // namespace rader::dag
