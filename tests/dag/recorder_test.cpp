#include "dag/recorder.hpp"

#include <gtest/gtest.h>

#include "dag/graph.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader::dag {
namespace {

PerfDag record(FnView program, const spec::StealSpec& s) {
  Recorder rec;
  SerialEngine engine(&rec, &s);
  engine.run(program);
  return rec.take();
}

TEST(Recorder, TrivialProgramIsOneStrand) {
  spec::NoSteal none;
  const PerfDag dag = record([] {}, none);
  EXPECT_EQ(dag.size(), 1u);
  EXPECT_TRUE(dag.edges.empty());
}

TEST(Recorder, SpawnSyncShapesTheDiamond) {
  spec::NoSteal none;
  const PerfDag dag = record(
      [] {
        spawn([] {});
        sync();
      },
      none);
  // Strands: root-first (spawn strand), child, continuation, sync strand.
  ASSERT_EQ(dag.size(), 4u);
  const Reachability r(dag);
  EXPECT_TRUE(r.precedes(0, 1));   // spawn -> child
  EXPECT_TRUE(r.precedes(0, 2));   // spawn -> continuation
  EXPECT_TRUE(r.parallel(1, 2));   // child || continuation
  EXPECT_TRUE(r.precedes(1, 3));   // child -> sync
  EXPECT_TRUE(r.precedes(2, 3));   // continuation -> sync
}

TEST(Recorder, CalledChildIsInSeries) {
  spec::NoSteal none;
  const PerfDag dag = record([] { call([] {}); }, none);
  // root-first, child, continuation: a pure chain.
  ASSERT_EQ(dag.size(), 3u);
  const Reachability r(dag);
  EXPECT_TRUE(r.precedes(0, 1));
  EXPECT_TRUE(r.precedes(1, 2));
  EXPECT_FALSE(r.parallel(0, 2));
}

TEST(Recorder, TwoSpawnsAreMutuallyParallel) {
  spec::NoSteal none;
  const PerfDag dag = record(
      [] {
        spawn([] {});
        spawn([] {});
        sync();
      },
      none);
  const Reachability r(dag);
  // Strands: 0 spawn1, 1 child1, 2 cont (spawn2), 3 child2, 4 cont, 5 sync.
  ASSERT_EQ(dag.size(), 6u);
  EXPECT_TRUE(r.parallel(1, 3));
  EXPECT_TRUE(r.parallel(1, 4));
  EXPECT_TRUE(r.precedes(1, 5));
  EXPECT_TRUE(r.precedes(3, 5));
}

TEST(Recorder, AccessesAttachToTheRightStrand) {
  spec::NoSteal none;
  int x = 0;
  const PerfDag dag = record(
      [&] {
        shadow_write(&x, sizeof(x), SrcTag{"before"});
        spawn([&] { shadow_read(&x, sizeof(x), SrcTag{"in child"}); });
        sync();
      },
      none);
  ASSERT_EQ(dag.accesses.size(), 2u);
  EXPECT_EQ(dag.accesses[0].strand, 0u);
  EXPECT_EQ(dag.accesses[0].kind, AccessKind::kWrite);
  EXPECT_EQ(dag.accesses[1].strand, 1u);
  EXPECT_EQ(dag.accesses[1].kind, AccessKind::kRead);
  EXPECT_EQ(dag.accesses[1].addr, reinterpret_cast<std::uintptr_t>(&x));
}

TEST(Recorder, ReducerReadsAreRecorded) {
  spec::NoSteal none;
  const PerfDag dag = record(
      [] {
        reducer<monoid::op_add<long>> sum;   // kCreate
        sum += 1;                            // update: NOT a reducer-read
        volatile long v = sum.get_value();   // kGetValue
        (void)v;
      },
      none);
  // create + get + destroy = 3 reads, all on strand 0.
  ASSERT_EQ(dag.reducer_reads.size(), 3u);
  EXPECT_EQ(dag.reducer_reads[0].op, ReducerOp::kCreate);
  EXPECT_EQ(dag.reducer_reads[1].op, ReducerOp::kGetValue);
  EXPECT_EQ(dag.reducer_reads[2].op, ReducerOp::kDestroy);
}

TEST(Recorder, StolenContinuationDependsOnlyOnSpawnStrand) {
  spec::StealAll all;
  int x = 0;
  const PerfDag dag = record(
      [&] {
        spawn([&] { shadow_write(&x, 4, SrcTag{"child write"}); });
        shadow_read(&x, 4, SrcTag{"stolen continuation read"});
        sync();
      },
      all);
  // Find the two access strands.
  ASSERT_EQ(dag.accesses.size(), 2u);
  const StrandId child = dag.accesses[0].strand;
  const StrandId cont = dag.accesses[1].strand;
  const Reachability r(dag);
  EXPECT_TRUE(r.parallel(child, cont));
  EXPECT_NE(dag.strands[child].vid, dag.strands[cont].vid);  // fresh view
}

TEST(Recorder, ReduceStrandJoinsBothSegments) {
  spec::StealAll all;
  const PerfDag dag = record(
      [] {
        reducer<monoid::op_add<long>> sum;
        sum += 1;
        spawn([&] { sum += 10; });
        sum += 100;  // stolen continuation: new view
        sync();
        volatile long v = sum.get_value();
        (void)v;
      },
      all);
  EXPECT_EQ(dag.steal_count, 1u);
  EXPECT_EQ(dag.reduce_count, 1u);
  // Exactly one strand is marked as reduce-invocation code.
  StrandId reduce_strand = kInvalidStrand;
  for (const auto& s : dag.strands) {
    if (s.in_reduce) {
      reduce_strand = s.id;
      break;
    }
  }
  ASSERT_NE(reduce_strand, kInvalidStrand);
  const Reachability r(dag);
  // Every update access precedes the reduce strand.
  for (const auto& a : dag.accesses) {
    if (a.view_aware && a.strand != reduce_strand &&
        !dag.strands[a.strand].in_reduce) {
      EXPECT_TRUE(r.precedes(a.strand, reduce_strand))
          << "update strand " << a.strand;
    }
  }
}

TEST(Recorder, PeerCountsMatchDefinition) {
  spec::NoSteal none;
  const PerfDag dag = record(
      [] {
        spawn([] {});
        spawn([] {});
        sync();
      },
      none);
  const Reachability r(dag);
  // Strands: 0 spawn1, 1 child1, 2 cont(spawn2), 3 child2, 4 cont, 5 sync.
  for (StrandId u = 0; u < dag.size(); ++u) {
    std::size_t expected = 0;
    for (StrandId v = 0; v < dag.size(); ++v) {
      expected += (u != v && r.parallel(u, v));
    }
    EXPECT_EQ(r.peer_count(u), expected) << "strand " << u;
  }
  EXPECT_EQ(r.peer_count(1), 3u);  // child1 || {cont1, child2, cont2}
  EXPECT_EQ(r.peer_count(5), 0u);  // the sync strand has no peers
}

TEST(Recorder, EdgesRespectSerialOrder) {
  spec::BernoulliSteal b(3, 0.5);
  const PerfDag dag = record(
      [] {
        reducer<monoid::op_add<long>> sum;
        for (int i = 0; i < 6; ++i) {
          spawn([&sum] { sum += 1; });
          if (i == 3) sync();
        }
        sync();
        volatile long v = sum.get_value();
        (void)v;
      },
      b);
  for (const auto& [from, to] : dag.edges) {
    EXPECT_LT(from, to);
  }
  // Reachability construction itself re-checks this invariant.
  const Reachability r(dag);
  EXPECT_TRUE(r.precedes(0, dag.size() - 1));
}

}  // namespace
}  // namespace rader::dag
