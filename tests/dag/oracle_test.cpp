#include "dag/oracle.hpp"

#include <gtest/gtest.h>

#include "dag/recorder.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader::dag {
namespace {

PerfDag record(FnView program, const spec::StealSpec& s) {
  Recorder rec;
  SerialEngine engine(&rec, &s);
  engine.run(program);
  return rec.take();
}

TEST(Oracle, CleanProgramHasNoRaces) {
  spec::NoSteal none;
  int x = 0;
  const PerfDag dag = record(
      [&] {
        shadow_write(&x, 4);
        spawn([&] { /* no shared access */ });
        sync();
        shadow_read(&x, 4);
      },
      none);
  const OracleResult result = run_oracle(dag);
  EXPECT_FALSE(result.any_determinacy);
  EXPECT_FALSE(result.any_view_read);
}

TEST(Oracle, ParallelWriteReadRaces) {
  spec::NoSteal none;
  int x = 0;
  const PerfDag dag = record(
      [&] {
        spawn([&] { shadow_write(&x, 4); });
        shadow_read(&x, 4);
        sync();
      },
      none);
  const OracleResult result = run_oracle(dag);
  EXPECT_TRUE(result.any_determinacy);
  EXPECT_EQ(result.racing_addrs.size(), 4u);  // all four bytes
}

TEST(Oracle, ParallelReadsDoNotRace) {
  spec::NoSteal none;
  int x = 0;
  const PerfDag dag = record(
      [&] {
        spawn([&] { shadow_read(&x, 4); });
        shadow_read(&x, 4);
        sync();
      },
      none);
  EXPECT_FALSE(run_oracle(dag).any_determinacy);
}

TEST(Oracle, SyncSerializesAccesses) {
  spec::NoSteal none;
  int x = 0;
  const PerfDag dag = record(
      [&] {
        spawn([&] { shadow_write(&x, 4); });
        sync();
        shadow_write(&x, 4);
      },
      none);
  EXPECT_FALSE(run_oracle(dag).any_determinacy);
}

TEST(Oracle, OverlapDetectedAtByteGranularity) {
  spec::NoSteal none;
  char buf[8] = {};
  const PerfDag dag = record(
      [&] {
        spawn([&] { shadow_write(buf, 4); });      // bytes 0..3
        shadow_write(buf + 2, 4);                  // bytes 2..5 overlap
        sync();
      },
      none);
  const OracleResult result = run_oracle(dag);
  EXPECT_TRUE(result.any_determinacy);
  EXPECT_EQ(result.racing_addrs.size(), 2u);  // bytes 2 and 3 only
}

TEST(Oracle, DisjointRangesDoNotRace) {
  spec::NoSteal none;
  char buf[8] = {};
  const PerfDag dag = record(
      [&] {
        spawn([&] { shadow_write(buf, 4); });
        shadow_write(buf + 4, 4);
        sync();
      },
      none);
  EXPECT_FALSE(run_oracle(dag).any_determinacy);
}

TEST(Oracle, ViewAwareSameViewDoesNotRace) {
  // Two parallel updates through the same reducer view cannot race: with a
  // different schedule they would target different views (Section 5).
  spec::NoSteal none;
  const PerfDag dag = record(
      [] {
        reducer<monoid::op_add<long>> sum;
        spawn([&] { sum += 1; });  // annotated view-aware write
        sum += 2;                  // same view (no steal): same address!
        sync();
        volatile long v = sum.get_value();
        (void)v;
      },
      none);
  EXPECT_FALSE(run_oracle(dag).any_determinacy);
}

TEST(Oracle, ViewObliviousReadOfViewMemoryRaces) {
  // A raw (view-oblivious) read of the view's memory DOES race with the
  // parallel view-aware update: the read happens regardless of schedule.
  spec::NoSteal none;
  const PerfDag dag = record(
      [] {
        reducer<monoid::op_add<long>> sum;
        spawn([&] { sum += 1; });
        // Stale-pointer read of the leftmost view (Figure-1 bug class).
        shadow_read(sum.hyper_leftmost(), sizeof(long));
        sync();
        volatile long v = sum.get_value();
        (void)v;
      },
      none);
  EXPECT_TRUE(run_oracle(dag).any_determinacy);
}

TEST(Oracle, ViewReadRaceWhenPeersDiffer) {
  spec::NoSteal none;
  const PerfDag dag = record(
      [] {
        reducer<monoid::op_add<long>> sum;  // kCreate read, spawn count 0
        spawn([&] { sum += 1; });
        volatile long v = sum.get_value();  // read with outstanding child
        (void)v;
        sync();
      },
      none);
  const OracleResult result = run_oracle(dag);
  EXPECT_TRUE(result.any_view_read);
  EXPECT_EQ(result.racing_reducers.size(), 1u);
}

TEST(Oracle, NoViewReadRaceAfterSync) {
  spec::NoSteal none;
  const PerfDag dag = record(
      [] {
        reducer<monoid::op_add<long>> sum;
        spawn([&] { sum += 1; });
        sync();
        volatile long v = sum.get_value();
        (void)v;
      },
      none);
  EXPECT_FALSE(run_oracle(dag).any_view_read);
}

TEST(Oracle, ReduceStrandRacesAcrossViews) {
  // Under steals, a Reduce writing memory also touched by a strand on a
  // DIFFERENT view races with it (the Section 6 walkthrough).
  struct Leaky {
    long v = 0;
  };
  struct leaky_monoid {
    using value_type = Leaky;
    static Leaky identity() { return {}; }
    static void reduce(Leaky& l, Leaky& r) {
      static long shared_scratch = 0;
      shadow_write(&shared_scratch, sizeof(long), SrcTag{"reduce scratch"});
      shared_scratch += r.v;
      l.v += r.v;
      (void)shared_scratch;
    }
  };
  // Steal every continuation, and merge the two newest epochs just before
  // continuation 2's steal: the reduce tree then contains the SIBLING
  // reduces (v1⊗v2) and (v3⊗v4), which are logically parallel — the shape
  // of Figure 5's r0 ‖ r1.
  struct SiblingMergeSpec final : spec::StealSpec {
    bool steal(const spec::PointCtx&) const override { return true; }
    std::uint32_t merges_now(const spec::PointCtx& c) const override {
      return (c.cont_index == 2 && c.live_epochs >= 2) ? 1u : 0u;
    }
    std::string describe() const override { return "sibling-merge"; }
  } sibling_spec;
  const PerfDag dag = record(
      [] {
        reducer<leaky_monoid> red;
        for (int i = 0; i < 4; ++i) {
          spawn([&red] {
            red.update([](Leaky& view) { view.v += 1; });
          });
          red.update([](Leaky& view) { view.v += 1; });
        }
        sync();
      },
      sibling_spec);
  // All reduces write the same static scratch: the sibling reduce strands
  // are logically parallel -> determinacy race on the scratch location.
  ASSERT_GE(dag.reduce_count, 2u);
  EXPECT_TRUE(run_oracle(dag).any_determinacy);
}

}  // namespace
}  // namespace rader::dag
