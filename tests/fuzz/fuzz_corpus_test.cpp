// Regression corpus replay: every checked-in `.rprog` under
// tests/fuzz/corpus must parse, round-trip byte-identically, and reproduce
// exactly the race keys recorded in its `expect` lines.  This is the same
// pipeline `rader --repro=FILE` runs, so the corpus doubles as an
// end-to-end test of the reproducer replay path.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/sweep.hpp"
#include "dag/program_serial.hpp"
#include "dag/random_program.hpp"
#include "fuzz/differ.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/spec_family.hpp"
#include "spec/steal_spec.hpp"

#ifndef RADER_FUZZ_CORPUS_DIR
#error "RADER_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus"
#endif

namespace rader {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(RADER_FUZZ_CORPUS_DIR) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

const char* kCorpusFiles[] = {
    "fig6_shadow_slot.rprog",
    "view_read_race.rprog",
    "reduce_vs_oblivious.rprog",
};

TEST(FuzzCorpus, FilesRoundTripByteIdentically) {
  for (const char* name : kCorpusFiles) {
    const std::string path = corpus_path(name);
    const std::string text = read_file(path);
    std::string error;
    auto repro = dag::parse_reproducer(text, &error);
    ASSERT_TRUE(repro.has_value()) << name << ": " << error;
    EXPECT_EQ(dag::describe_reproducer(*repro), text)
        << name << " is not in canonical form";
  }
}

TEST(FuzzCorpus, ReplayReproducesRecordedRaceKeys) {
  for (const char* name : kCorpusFiles) {
    std::string error;
    auto repro = dag::load_reproducer(corpus_path(name), &error);
    ASSERT_TRUE(repro.has_value()) << name << ": " << error;
    auto result = fuzz::replay_reproducer(*repro, &error);
    ASSERT_TRUE(result.has_value()) << name << ": " << error;
    EXPECT_EQ(result->keys, repro->expect) << name;
  }
}

TEST(FuzzCorpus, ReplayIsDeterministic) {
  for (const char* name : kCorpusFiles) {
    std::string error;
    auto repro = dag::load_reproducer(corpus_path(name), &error);
    ASSERT_TRUE(repro.has_value()) << name << ": " << error;
    auto first = fuzz::replay_reproducer(*repro, &error);
    auto second = fuzz::replay_reproducer(*repro, &error);
    ASSERT_TRUE(first.has_value() && second.has_value()) << name;
    EXPECT_EQ(first->keys, second->keys) << name;
    EXPECT_EQ(first->reducer_total, second->reducer_total) << name;
  }
}

// The Figure-6 corner: SP+ misses the shadow-slot race in this single
// execution, and the Section-7 family closes the location — so the
// differential check is clean, the single-execution miss is flagged, and
// the recorded race set is empty.
TEST(FuzzCorpus, Fig6ShadowSlotIsTheDocumentedSingleExecMiss) {
  std::string error;
  auto repro = dag::load_reproducer(corpus_path("fig6_shadow_slot.rprog"),
                                    &error);
  ASSERT_TRUE(repro.has_value()) << error;
  EXPECT_TRUE(repro->expect.empty())
      << "the corner is an SP+ miss; no keys should be recorded";

  auto divergences = fuzz::check_reproducer(*repro);
  EXPECT_TRUE(divergences.empty())
      << "family escalation should close the miss: "
      << (divergences.empty() ? "" : divergences.front().detail);

  auto steal_spec = spec::from_description(repro->spec_handle);
  ASSERT_NE(steal_spec, nullptr) << repro->spec_handle;
  dag::RandomProgram program(repro->tree, repro->params);
  auto check = fuzz::check_execution(program, *steal_spec);
  EXPECT_TRUE(check.single_exec_miss)
      << "the corpus file exists to pin the Figure-6 corner";
  EXPECT_TRUE(check.divergences.empty());
}

// Every corpus program, swept under its Section-7 family with BOTH sweep
// strategies: the prefix (checkpoint/fork) scheduler must reproduce the
// rerun baseline's canonical race keys and spec accounting exactly.  This
// pins the strategy on the adversarial programs the fuzzer distilled —
// including the Figure-6 shadow-slot corner, where the family-level sweep is
// precisely the escalation path that closes SP+'s single-execution miss
// (fuzz::family_reports runs this shape with SweepStrategy::kPrefix).
TEST(FuzzCorpus, PrefixSweepMatchesRerunOnEveryCorpusProgram) {
  for (const char* name : kCorpusFiles) {
    std::string error;
    auto repro = dag::load_reproducer(corpus_path(name), &error);
    ASSERT_TRUE(repro.has_value()) << name << ": " << error;
    dag::RandomProgram program(repro->tree, repro->params);
    const auto [pool_lo, pool_hi] = program.pool_range();

    SerialEngine::Stats probe;
    {
      spec::NoSteal none;
      SerialEngine engine(nullptr, &none);
      engine.run([&] { program(); });
      probe = engine.stats();
    }
    auto family = spec::full_coverage_family(
        std::min<std::uint32_t>(probe.max_sync_block, 10),
        std::min<std::uint64_t>(probe.max_spawn_depth, 24));
    family.push_back(std::make_unique<spec::NoSteal>());
    family.push_back(std::make_unique<spec::StealAll>());

    const auto sweep = [&](SweepStrategy strategy) {
      SweepOptions options;
      options.threads = 1;
      options.strategy = strategy;
      return sweep_family(shared_program([&program] { program(); }), family,
                          options);
    };
    const SweepResult rerun = sweep(SweepStrategy::kRerun);
    const SweepResult prefix = sweep(SweepStrategy::kPrefix);

    EXPECT_EQ(fuzz::canonical_race_keys(prefix.log, pool_lo, pool_hi),
              fuzz::canonical_race_keys(rerun.log, pool_lo, pool_hi))
        << name;
    EXPECT_EQ(prefix.spec_runs, rerun.spec_runs) << name;
    EXPECT_EQ(prefix.specs_skipped, rerun.specs_skipped) << name;

    if (std::string(name) == "fig6_shadow_slot.rprog") {
      // The family must elicit the determinacy race SP+ misses in the
      // recorded single execution — under the prefix strategy too.
      EXPECT_FALSE(prefix.log.determinacy_races().empty()) << name;
    }
  }
}

TEST(FuzzCorpus, ViewReadRaceCarriesConfirmedVerdicts) {
  std::string error;
  auto repro = dag::load_reproducer(corpus_path("view_read_race.rprog"),
                                    &error);
  ASSERT_TRUE(repro.has_value()) << error;
  ASSERT_FALSE(repro->expect.empty());
  for (const std::string& key : repro->expect) {
    EXPECT_EQ(key.rfind("vr ", 0), 0u) << key;
    EXPECT_NE(key.find("oracle=confirmed"), std::string::npos) << key;
  }
}

TEST(FuzzCorpus, ReduceVsObliviousRacesOnPoolAddresses) {
  std::string error;
  auto repro = dag::load_reproducer(corpus_path("reduce_vs_oblivious.rprog"),
                                    &error);
  ASSERT_TRUE(repro.has_value()) << error;
  ASSERT_FALSE(repro->expect.empty());
  for (const std::string& key : repro->expect) {
    EXPECT_EQ(key.rfind("det pool+", 0), 0u) << key;
    EXPECT_NE(key.find("oracle=confirmed"), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace rader
