// Corrupt-reproducer regression tests (docs/ROBUSTNESS.md): every way a
// `.rprog` file can be damaged — truncation, garbage, structural lies —
// must come back as a clean load failure with a diagnostic, never an
// uncaught exception.  `rader --repro=FILE` turns that failure into exit 2.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>

#include "dag/program_serial.hpp"
#include "fuzz/differ.hpp"

namespace rader {
namespace {

std::string corpus_path(const std::string& name) {
  return std::string(RADER_FUZZ_CORPUS_DIR) + "/" + name;
}

/// Write `text` to a temp file and return its path.
class TempFile {
 public:
  explicit TempFile(const std::string& text) {
    char tmpl[] = "/tmp/rader_rprog_XXXXXX";
    const int fd = ::mkstemp(tmpl);
    EXPECT_GE(fd, 0);
    path_ = tmpl;
    {
      std::ofstream out(path_, std::ios::binary);
      out << text;
    }
    if (fd >= 0) ::close(fd);
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_FALSE(text.empty()) << path;
  return text;
}

/// Loading must fail with a diagnostic — and must NOT throw.
void expect_clean_failure(const std::string& text, const char* what) {
  TempFile file(text);
  std::string error;
  std::optional<dag::Reproducer> repro;
  ASSERT_NO_THROW(repro = dag::load_reproducer(file.path(), &error)) << what;
  EXPECT_FALSE(repro.has_value()) << what;
  EXPECT_FALSE(error.empty()) << what;
}

TEST(RprogCorrupt, MissingFileFailsCleanly) {
  std::string error;
  const auto repro =
      dag::load_reproducer("/nonexistent/nowhere.rprog", &error);
  EXPECT_FALSE(repro.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(RprogCorrupt, EmptyAndGarbageFilesFailCleanly) {
  expect_clean_failure("", "empty file");
  expect_clean_failure("\n\n\n", "blank lines only");
  expect_clean_failure("this is not an rprog file\n", "plain garbage");
  expect_clean_failure("rprog v999\n", "unknown version");
  std::string binary(256, '\0');
  for (std::size_t i = 0; i < binary.size(); ++i) {
    binary[i] = static_cast<char>(i * 7 + 1);
  }
  expect_clean_failure(binary, "binary noise");
}

TEST(RprogCorrupt, EveryTruncationOfACorpusFileFailsOrLoads) {
  // Chop a valid reproducer at every line boundary: each prefix must either
  // load (a complete file happens to end there) or fail with a diagnostic —
  // never throw, never crash.  This is the torn-write / partial-download
  // case for --repro.
  const std::string good = read_file(corpus_path("view_read_race.rprog"));
  std::size_t pos = 0;
  int failures = 0;
  while (pos < good.size()) {
    const std::size_t nl = good.find('\n', pos);
    const std::size_t cut = nl == std::string::npos ? good.size() : nl + 1;
    TempFile file(good.substr(0, cut));
    std::string error;
    std::optional<dag::Reproducer> repro;
    ASSERT_NO_THROW(repro = dag::load_reproducer(file.path(), &error))
        << "truncated at byte " << cut;
    if (!repro.has_value()) {
      EXPECT_FALSE(error.empty()) << "truncated at byte " << cut;
      ++failures;
    }
    pos = cut;
  }
  EXPECT_GT(failures, 0);  // at least the mid-program prefixes must fail
}

TEST(RprogCorrupt, MidLineTruncationFailsCleanly) {
  const std::string good = read_file(corpus_path("view_read_race.rprog"));
  for (const double frac : {0.25, 0.5, 0.75}) {
    const auto cut = static_cast<std::size_t>(good.size() * frac);
    expect_clean_failure(good.substr(0, cut), "mid-line truncation");
  }
}

TEST(RprogCorrupt, StructuralDamageFailsCleanly) {
  const std::string good = read_file(corpus_path("view_read_race.rprog"));

  // Unbalanced braces: drop the final closer.
  const auto last_brace = good.rfind('}');
  ASSERT_NE(last_brace, std::string::npos);
  expect_clean_failure(good.substr(0, last_brace), "missing closing brace");

  // Garbage action inside the program body.
  std::string bad_action = good;
  const auto body = bad_action.find("program {");
  ASSERT_NE(body, std::string::npos);
  bad_action.insert(bad_action.find('\n', body) + 1,
                    "    frobnicate loc=0\n");
  expect_clean_failure(bad_action, "unknown action");

  // Malformed numeric field.
  std::string bad_number = good;
  const auto red = bad_number.find("red=0");
  ASSERT_NE(red, std::string::npos);
  bad_number.replace(red, 5, "red=zz");
  expect_clean_failure(bad_number, "malformed operand");

  // A spec handle from_description rejects.
  std::string bad_spec = good;
  const auto spec_at = bad_spec.find("spec ");
  ASSERT_NE(spec_at, std::string::npos);
  const auto spec_end = bad_spec.find('\n', spec_at);
  bad_spec.replace(spec_at, spec_end - spec_at, "spec steal-bogus(1,2)");
  TempFile file(bad_spec);
  std::string error;
  std::optional<dag::Reproducer> repro;
  ASSERT_NO_THROW(repro = dag::load_reproducer(file.path(), &error));
  // Either the loader rejects the handle up front or the replay layer does;
  // both are fine as long as nothing throws and a diagnostic lands.
  if (repro.has_value()) {
    std::string replay_error;
    std::optional<fuzz::ReplayResult> replayed;
    ASSERT_NO_THROW(replayed =
                        fuzz::replay_reproducer(*repro, &replay_error));
    EXPECT_FALSE(replayed.has_value());
    EXPECT_FALSE(replay_error.empty());
  } else {
    EXPECT_FALSE(error.empty());
  }
}

TEST(RprogCorrupt, IntactCorpusStillLoadsAndReplays) {
  // Guard the guard: the corpus file the damage cases start from must
  // itself load and replay, or the tests above pass vacuously.
  std::string error;
  const auto repro =
      dag::load_reproducer(corpus_path("view_read_race.rprog"), &error);
  ASSERT_TRUE(repro.has_value()) << error;
  const auto replayed = fuzz::replay_reproducer(*repro, &error);
  ASSERT_TRUE(replayed.has_value()) << error;
}

}  // namespace
}  // namespace rader
