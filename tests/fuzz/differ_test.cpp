// Unit tests for the differential checker (fuzz/differ.hpp): clean seeds
// stay clean across the spec battery, the injected-bug hook seeds a
// guaranteed divergence, and broken reproducers fail loudly.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dag/program_serial.hpp"
#include "dag/random_program.hpp"
#include "fuzz/differ.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

// spawn { write loc=0 } read loc=0 sync — the smallest program with a
// genuine pool determinacy race under any stealing spec.
dag::Reproducer pool_race_reproducer(const std::string& spec_handle) {
  dag::ProgramTree child;
  child.actions.push_back({.type = dag::ActionType::kWrite, .loc = 0});

  dag::ProgramTree root;
  root.actions.push_back({.type = dag::ActionType::kSpawn, .child = 0});
  root.actions.push_back({.type = dag::ActionType::kRead, .loc = 0});
  root.actions.push_back({.type = dag::ActionType::kSync});
  root.children.push_back(child);

  dag::Reproducer repro;
  repro.params.seed = 0;
  repro.params.num_reducers = 0;
  repro.params.num_locations = 1;
  repro.tree = root;
  repro.spec_handle = spec_handle;
  return repro;
}

TEST(Differ, CleanSeedsProduceNoDivergences) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto params = fuzz::fuzz_params(seed);
    for (const auto& steal_spec : fuzz::spec_battery(seed)) {
      dag::RandomProgram program(params);
      auto check = fuzz::check_execution(program, *steal_spec);
      EXPECT_TRUE(check.divergences.empty())
          << "seed " << seed << " spec " << steal_spec->describe() << ": "
          << (check.divergences.empty() ? ""
                                        : check.divergences.front().detail);
    }
  }
}

TEST(Differ, InjectBugSeedsAnInjectedBugDivergence) {
  const auto repro = pool_race_reproducer("steal-all");

  // Without the hook the race is real and the check is clean.
  EXPECT_TRUE(fuzz::check_reproducer(repro).empty());

  fuzz::DifferOptions options;
  options.inject_bug = true;
  auto divergences = fuzz::check_reproducer(repro, options);
  ASSERT_FALSE(divergences.empty());
  EXPECT_EQ(divergences.front().kind, "injected-bug");
  EXPECT_EQ(divergences.front().spec_handle, "steal-all");
}

TEST(Differ, InvalidSpecHandleIsReportedNotCrashed) {
  auto repro = pool_race_reproducer("steal-sideways(9)");
  auto divergences = fuzz::check_reproducer(repro);
  ASSERT_EQ(divergences.size(), 1u);
  EXPECT_EQ(divergences.front().kind, "invalid-spec");

  std::string error;
  EXPECT_FALSE(fuzz::replay_reproducer(repro, &error).has_value());
  EXPECT_FALSE(error.empty());
}

// Determinacy races come from *logical* parallelism, so the same race set
// must surface whether or not the continuation is actually stolen.
TEST(Differ, ReplayReportsTheRaceRegardlessOfStealSchedule) {
  std::string error;
  auto parallel = fuzz::replay_reproducer(pool_race_reproducer("steal-all"),
                                          &error);
  ASSERT_TRUE(parallel.has_value()) << error;
  EXPECT_FALSE(parallel->keys.empty());
  EXPECT_EQ(parallel->action_count, 4u);

  auto serial = fuzz::replay_reproducer(pool_race_reproducer("no-steals"),
                                        &error);
  ASSERT_TRUE(serial.has_value()) << error;
  EXPECT_EQ(serial->keys, parallel->keys)
      << "canonical keys must not depend on the steal schedule";
}

TEST(Differ, CanonicalKeysAreSortedAndStable) {
  std::string error;
  auto result = fuzz::replay_reproducer(pool_race_reproducer("steal-all"),
                                        &error);
  ASSERT_TRUE(result.has_value()) << error;
  ASSERT_FALSE(result->keys.empty());
  for (std::size_t i = 0; i + 1 < result->keys.size(); ++i) {
    EXPECT_LT(result->keys[i], result->keys[i + 1])
        << "keys must be sorted and deduplicated";
  }
  for (const std::string& key : result->keys) {
    EXPECT_EQ(key.rfind("det pool+0x", 0), 0u)
        << "pool addresses must render as stable offsets: " << key;
  }
}

}  // namespace
}  // namespace rader
