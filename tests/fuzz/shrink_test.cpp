// Shrinker properties (fuzz/shrink.hpp):
//  * every accepted step still satisfies the divergence predicate and never
//    increases the action count (the two invariants the header promises);
//  * a seeded injected-bug divergence on a large generated program shrinks
//    by >= 90% down to a handful of actions (the acceptance bar for the
//    overnight-fuzz triage workflow);
//  * the emitted litmus snippet mentions the minimized program's spec.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "dag/program_serial.hpp"
#include "dag/random_program.hpp"
#include "fuzz/differ.hpp"
#include "fuzz/shrink.hpp"

namespace rader {
namespace {

// Big, access-heavy generated programs: nearly every seed has a pool
// conflict for --inject-bug to turn into a seeded divergence.
dag::RandomProgramParams big_params(std::uint64_t seed) {
  dag::RandomProgramParams params;
  params.seed = seed;
  params.max_depth = 5;
  params.max_actions = 14;
  params.num_reducers = 2;
  params.num_locations = 4;
  params.p_spawn = 0.30;
  params.p_call = 0.10;
  params.p_sync = 0.10;
  params.p_access = 0.40;
  params.p_update = 0.05;
  params.p_reducer_read = 0.03;
  params.p_raw_view = 0.02;
  return params;
}

fuzz::DifferOptions injected() {
  fuzz::DifferOptions options;
  options.inject_bug = true;
  options.check_family_closure = false;  // irrelevant to the seeded bug
  return options;
}

// First seed whose program is big enough and diverges under --inject-bug.
dag::Reproducer find_divergent_seed(std::size_t min_actions) {
  const auto pred = fuzz::divergence_predicate("injected-bug", injected());
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const auto params = big_params(seed);
    dag::RandomProgram program(params);
    if (program.action_count() < min_actions) continue;
    dag::Reproducer repro;
    repro.params = params;
    repro.tree = program.tree();
    repro.spec_handle = "steal-all";
    if (pred(repro)) return repro;
  }
  ADD_FAILURE() << "no divergent seed found in 64 tries";
  return {};
}

TEST(Shrink, EveryAcceptedStepPreservesPredicateAndNeverGrows) {
  const auto repro = find_divergent_seed(/*min_actions=*/20);
  const auto pred = fuzz::divergence_predicate("injected-bug", injected());
  ASSERT_TRUE(pred(repro));

  std::size_t prev_count = repro.tree.action_count();
  std::size_t steps = 0;
  fuzz::ShrinkOptions options;
  options.on_accept = [&](const dag::Reproducer& r, const std::string& rule) {
    ++steps;
    const std::size_t count = r.tree.action_count();
    EXPECT_LE(count, prev_count)
        << "rule " << rule << " grew the program at step " << steps;
    EXPECT_TRUE(pred(r))
        << "rule " << rule << " lost the divergence at step " << steps;
    prev_count = count;
  };

  auto result = fuzz::shrink(repro, pred, options);
  EXPECT_EQ(result.accepted_steps, steps);
  EXPECT_EQ(result.final_actions, result.repro.tree.action_count());
  EXPECT_LE(result.final_actions, result.initial_actions);
  EXPECT_TRUE(pred(result.repro));
}

TEST(Shrink, InjectedBugShrinksByNinetyPercentToAHandfulOfActions) {
  const auto repro = find_divergent_seed(/*min_actions=*/50);
  const auto pred = fuzz::divergence_predicate("injected-bug", injected());

  auto result = fuzz::shrink(repro, pred);
  EXPECT_TRUE(result.reached_fixpoint);
  EXPECT_GE(result.initial_actions, 50u);
  EXPECT_LE(result.final_actions, 10u);
  EXPECT_LE(result.final_actions * 10, result.initial_actions)
      << "expected >= 90% reduction: " << result.initial_actions << " -> "
      << result.final_actions;
  EXPECT_TRUE(pred(result.repro)) << "divergence must persist after shrink";

  // The minimized reproducer still round-trips and renders as a litmus test.
  std::string error;
  auto parsed =
      dag::parse_reproducer(dag::describe_reproducer(result.repro), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const std::string snippet = fuzz::litmus_snippet(result.repro);
  EXPECT_NE(snippet.find(result.repro.spec_handle), std::string::npos);
  EXPECT_NE(snippet.find("TEST("), std::string::npos);
}

TEST(Shrink, NonDivergingSeedIsReturnedUnchanged) {
  dag::ProgramTree root;
  root.actions.push_back({.type = dag::ActionType::kWrite, .loc = 0});
  dag::Reproducer repro;
  repro.params.num_reducers = 0;
  repro.params.num_locations = 1;
  repro.tree = root;
  repro.spec_handle = "steal-all";

  const auto pred = fuzz::divergence_predicate("", injected());
  ASSERT_FALSE(pred(repro)) << "a serial write has nothing to diverge on";
  auto result = fuzz::shrink(repro, pred);
  EXPECT_EQ(result.accepted_steps, 0u);
  EXPECT_EQ(result.final_actions, result.initial_actions);
  EXPECT_EQ(dag::describe_reproducer(result.repro),
            dag::describe_reproducer(repro));
}

}  // namespace
}  // namespace rader
