// Property: the `.rprog` text format is lossless.  For 500 generator seeds,
// describe(parse(describe(p))) is byte-identical, and the parsed program
// re-executes to the identical race-key set and reducer total — the
// serialization layer can be trusted to carry fuzz findings across
// processes without perturbing them.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "dag/program_serial.hpp"
#include "dag/random_program.hpp"
#include "fuzz/differ.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

constexpr std::uint64_t kSeeds = 500;

TEST(RprogRoundTrip, DescribeParseDescribeIsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto params = fuzz::fuzz_params(seed);
    dag::RandomProgram program(params);
    auto specs = fuzz::spec_battery(seed);
    ASSERT_FALSE(specs.empty());

    dag::Reproducer repro;
    repro.params = params;
    repro.tree = program.tree();
    repro.spec_handle = specs[seed % specs.size()]->describe();
    repro.note = "round-trip seed " + std::to_string(seed);
    repro.expect = {"det pool+0x0 write label=\"w\" prior=write aware=0"};

    const std::string text = dag::describe_reproducer(repro);
    std::string error;
    auto parsed = dag::parse_reproducer(text, &error);
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed << ": " << error;
    EXPECT_EQ(dag::describe_reproducer(*parsed), text) << "seed " << seed;
    EXPECT_EQ(parsed->spec_handle, repro.spec_handle) << "seed " << seed;
    EXPECT_EQ(parsed->expect, repro.expect) << "seed " << seed;
    EXPECT_EQ(parsed->tree.action_count(), repro.tree.action_count())
        << "seed " << seed;
  }
}

TEST(RprogRoundTrip, ParsedProgramReExecutesIdentically) {
  fuzz::ReplayOptions fast;
  fast.annotate = false;  // provenance doesn't affect key identity here

  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto params = fuzz::fuzz_params(seed);
    dag::RandomProgram program(params);
    auto specs = fuzz::spec_battery(seed);

    dag::Reproducer repro;
    repro.params = params;
    repro.tree = program.tree();
    repro.spec_handle = specs[seed % specs.size()]->describe();

    std::string error;
    auto parsed = dag::parse_reproducer(dag::describe_reproducer(repro),
                                        &error);
    ASSERT_TRUE(parsed.has_value()) << "seed " << seed << ": " << error;

    auto original = fuzz::replay_reproducer(repro, &error, fast);
    ASSERT_TRUE(original.has_value()) << "seed " << seed << ": " << error;
    auto roundtripped = fuzz::replay_reproducer(*parsed, &error, fast);
    ASSERT_TRUE(roundtripped.has_value()) << "seed " << seed << ": " << error;

    EXPECT_EQ(roundtripped->keys, original->keys) << "seed " << seed;
    EXPECT_EQ(roundtripped->reducer_total, original->reducer_total)
        << "seed " << seed;
    EXPECT_EQ(roundtripped->action_count, original->action_count)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace rader
