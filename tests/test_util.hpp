// Shared test helpers: an event-logging Tool and small program builders.
#pragma once

#include <sstream>
#include <string>
#include <vector>

#include "tool/tool.hpp"

namespace rader::testing {

/// Records every instrumentation event as a compact string, e.g.
/// "enter(1,spawned,v0)", "steal(0,c1,v3)", "reduce(0,v0<-v3)".
class EventLogTool final : public Tool {
 public:
  const std::vector<std::string>& events() const { return events_; }

  std::string joined() const {
    std::string all;
    for (const auto& e : events_) {
      all += e;
      all += '\n';
    }
    return all;
  }

  /// Count of events whose string starts with `prefix`.
  int count_prefix(const std::string& prefix) const {
    int n = 0;
    for (const auto& e : events_) {
      if (e.rfind(prefix, 0) == 0) ++n;
    }
    return n;
  }

  void on_run_begin() override { events_.clear(); }

  void on_frame_enter(FrameId f, FrameId p, FrameKind kind,
                      ViewId vid) override {
    std::ostringstream os;
    os << "enter(" << f << ",from=" << static_cast<std::int64_t>(
        p == kInvalidFrame ? -1 : static_cast<std::int64_t>(p))
       << "," << kind_name(kind) << ",v" << vid << ")";
    events_.push_back(os.str());
  }
  void on_frame_return(FrameId f, FrameId, FrameKind kind) override {
    std::ostringstream os;
    os << "return(" << f << "," << kind_name(kind) << ")";
    events_.push_back(os.str());
  }
  void on_sync(FrameId f) override {
    events_.push_back("sync(" + std::to_string(f) + ")");
  }
  void on_steal(FrameId f, std::uint32_t c, ViewId vid) override {
    std::ostringstream os;
    os << "steal(" << f << ",c" << c << ",v" << vid << ")";
    events_.push_back(os.str());
  }
  void on_reduce(FrameId f, ViewId l, ViewId r) override {
    std::ostringstream os;
    os << "reduce(" << f << ",v" << l << "<-v" << r << ")";
    events_.push_back(os.str());
  }
  void on_access(AccessKind kind, std::uintptr_t, std::size_t size,
                 bool view_aware, ViewId vid, SrcTag tag) override {
    std::ostringstream os;
    os << (kind == AccessKind::kWrite ? "write(" : "read(") << size
       << (view_aware ? ",va" : ",vo") << ",v" << vid << "," << tag.label
       << ")";
    events_.push_back(os.str());
  }
  void on_reducer_op(ReducerOp op, ReducerId h, SrcTag) override {
    std::ostringstream os;
    os << "redop(" << op_name(op) << ",h" << h << ")";
    events_.push_back(os.str());
  }

 private:
  static const char* kind_name(FrameKind k) {
    switch (k) {
      case FrameKind::kRoot: return "root";
      case FrameKind::kSpawned: return "spawned";
      case FrameKind::kCalled: return "called";
      case FrameKind::kReduce: return "reduce";
    }
    return "?";
  }
  static const char* op_name(ReducerOp op) {
    switch (op) {
      case ReducerOp::kCreate: return "create";
      case ReducerOp::kSetValue: return "set";
      case ReducerOp::kGetValue: return "get";
      case ReducerOp::kDestroy: return "destroy";
      case ReducerOp::kUpdate: return "update";
      case ReducerOp::kCreateIdentity: return "identity";
      case ReducerOp::kReduce: return "reduce";
    }
    return "?";
  }

  std::vector<std::string> events_;
};

}  // namespace rader::testing
