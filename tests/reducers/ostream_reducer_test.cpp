#include "reducers/ostream_monoid.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "runtime/api.hpp"
#include "runtime/run.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

TEST(OstreamReducer, SerialWritesPassThroughOnFlush) {
  std::ostringstream sink;
  {
    ostream_reducer out(sink);
    out << "hello" << ' ' << "world";
    out << 42;
  }  // destructor flushes
  EXPECT_EQ(sink.str(), "hello world42");
}

TEST(OstreamReducer, ParallelWritersKeepSerialOrder) {
  std::ostringstream sink;
  run_serial([&] {
    ostream_reducer out(sink);
    for (int i = 0; i < 10; ++i) {
      spawn([&out, i] { out << i << ","; });
    }
    sync();
    out.flush();
  });
  EXPECT_EQ(sink.str(), "0,1,2,3,4,5,6,7,8,9,");
}

TEST(OstreamReducer, OrderPreservedUnderEverySteal) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    spec::BernoulliSteal b(seed, 0.5);
    SerialEngine engine(nullptr, &b);
    std::ostringstream sink;
    engine.run([&] {
      ostream_reducer out(sink);
      for (int i = 0; i < 12; ++i) {
        spawn([&out, i] { out << static_cast<char>('a' + i); });
        if (i % 4 == 3) sync();
      }
      sync();
      out.flush();
    });
    EXPECT_EQ(sink.str(), "abcdefghijkl") << b.describe();
  }
}

TEST(OstreamReducer, BytesWrittenCountsFlushedOutput) {
  std::ostringstream sink;
  ostream_reducer out(sink);
  out << "abcd";
  EXPECT_EQ(out.bytes_written(), 0u);  // still buffered
  out.flush();
  EXPECT_EQ(out.bytes_written(), 4u);
  out << "ef";
  out.flush();
  EXPECT_EQ(out.bytes_written(), 6u);
}

TEST(OstreamReducer, FlushTwiceEmitsOnce) {
  std::ostringstream sink;
  ostream_reducer out(sink);
  out << "x";
  out.flush();
  out.flush();
  EXPECT_EQ(sink.str(), "x");
}

TEST(OstreamReducer, NumericInsertion) {
  std::ostringstream sink;
  {
    ostream_reducer out(sink);
    out << 3 << ' ' << 2.5 << ' ' << static_cast<std::size_t>(7);
  }
  EXPECT_EQ(sink.str(), "3 2.500000 7");
}

}  // namespace
}  // namespace rader
