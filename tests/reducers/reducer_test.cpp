#include "reducers/reducer.hpp"

#include <gtest/gtest.h>

#include <string>

#include "runtime/api.hpp"
#include "runtime/run.hpp"
#include "spec/steal_spec.hpp"
#include "../test_util.hpp"

namespace rader {
namespace {

using testing::EventLogTool;

TEST(Reducer, SerialFallbackActsAsPlainValue) {
  reducer<monoid::op_add<long>> sum;
  EXPECT_EQ(sum.get_value(), 0);
  sum += 5;
  sum.update([](long& v) { v *= 2; });
  EXPECT_EQ(sum.get_value(), 10);
  sum.set_value(3);
  EXPECT_EQ(sum.get_value(), 3);
}

TEST(Reducer, InitialValueConstructor) {
  reducer<monoid::op_add<long>> sum(100L);
  EXPECT_EQ(sum.get_value(), 100);
}

TEST(Reducer, ParallelUpdatesFoldToSerialValue) {
  long result = -1;
  run_serial([&] {
    reducer<monoid::op_add<long>> sum;
    for (int i = 1; i <= 10; ++i) {
      spawn([&sum, i] { sum += i; });
    }
    sync();
    result = sum.get_value();
  });
  EXPECT_EQ(result, 55);
}

TEST(Reducer, ViewAccessorReturnsCurrentView) {
  run_serial([&] {
    reducer<monoid::op_add<long>> sum;
    sum += 4;
    EXPECT_EQ(sum.view(), 4);
  });
}

TEST(Reducer, IncludeFoldsCandidatesForMinMax) {
  long best = 0;
  run_serial([&] {
    reducer<monoid::op_max<long>> m;
    for (const long v : {3L, 9L, 1L, 7L}) {
      spawn([&m, v] { m.include(v); });
    }
    sync();
    best = m.get_value();
  });
  EXPECT_EQ(best, 9);
}

TEST(Reducer, LifecycleEventsReachTool) {
  EventLogTool log;
  SerialEngine engine(&log);
  engine.run([&] {
    reducer<monoid::op_add<long>> sum;
    sum.set_value(1);
    volatile long v = sum.get_value();
    (void)v;
  });
  EXPECT_EQ(log.count_prefix("redop(create,h0)"), 1);
  EXPECT_EQ(log.count_prefix("redop(set,h0)"), 1);
  EXPECT_EQ(log.count_prefix("redop(get,h0)"), 1);
  EXPECT_EQ(log.count_prefix("redop(destroy,h0)"), 1);
}

TEST(Reducer, UpdateIsNotAReducerRead) {
  EventLogTool log;
  SerialEngine engine(&log);
  engine.run([&] {
    reducer<monoid::op_add<long>> sum;
    sum += 1;
  });
  EXPECT_EQ(log.count_prefix("redop(update,h0)"), 1);
  EXPECT_EQ(log.count_prefix("redop(get"), 0);
  EXPECT_EQ(log.count_prefix("redop(set"), 0);
}

TEST(Reducer, TakeValueMovesOutMoveOnlyFriendlyViews) {
  std::string got;
  run_serial([&] {
    reducer<monoid::string_append> s;
    s.update([](std::string& v) { v = "payload"; });
    got = s.take_value();
    EXPECT_TRUE(s.view().empty());  // moved-from view
  });
  EXPECT_EQ(got, "payload");
}

TEST(Reducer, TwoReducersAreIndependent) {
  long a_val = 0, b_val = 0;
  run_serial([&] {
    reducer<monoid::op_add<long>> a, b;
    spawn([&] { a += 1; });
    spawn([&] { b += 10; });
    sync();
    a_val = a.get_value();
    b_val = b.get_value();
  });
  EXPECT_EQ(a_val, 1);
  EXPECT_EQ(b_val, 10);
}

TEST(Reducer, ReusedAcrossRunsAccumulates) {
  reducer<monoid::op_add<long>> sum;
  SerialEngine engine;
  for (int rep = 0; rep < 3; ++rep) {
    engine.run([&] {
      spawn([&] { sum += 1; });
      sync();
    });
  }
  EXPECT_EQ(sum.get_value(), 3);
}

TEST(Reducer, NestedSyncBlocksFoldCorrectlyUnderSteals) {
  spec::StealAll all;
  SerialEngine engine(nullptr, &all);
  std::string result;
  engine.run([&] {
    reducer<monoid::string_append> s;
    spawn([&] {
      s.update([](std::string& v) { v += "a"; });
      spawn([&] { s.update([](std::string& v) { v += "b"; }); });
      s.update([](std::string& v) { v += "c"; });
      sync();
    });
    s.update([](std::string& v) { v += "d"; });
    sync();
    spawn([&] { s.update([](std::string& v) { v += "e"; }); });
    s.update([](std::string& v) { v += "f"; });
    sync();
    result = s.get_value();
  });
  EXPECT_EQ(result, "abcdef");
}

TEST(Reducer, DestroyAfterSyncLeavesCleanState) {
  SerialEngine engine;
  long observed = 0;
  engine.run([&] {
    auto* sum = new reducer<monoid::op_add<long>>();
    spawn([sum] { *sum += 7; });
    sync();
    observed = sum->get_value();
    delete sum;  // destroyed inside the run, after the sync
  });
  EXPECT_EQ(observed, 7);
}

TEST(Reducer, MoveInMoveOutAliases) {
  long got = 0;
  run_serial([&] {
    reducer<monoid::op_add<long>> sum;
    sum.move_in(40);
    sum += 2;
    got = sum.move_out();
  });
  EXPECT_EQ(got, 42);
}

TEST(Reducer, OperatorSugarRequiresMatchingMonoid) {
  // Compile-time contract: op_add supports +=, string_append does not
  // support *=.  (Presence checked via requires-expressions.)
  static_assert(requires(reducer<monoid::op_add<long>>& r) { r += 1L; });
  static_assert(requires(reducer<monoid::op_mul<long>>& r) { r *= 2L; });
  // (The negative case — string_append has no *= — is enforced by the
  // operator's requires-clause; GCC 12 hard-errors on the probe in a
  // non-template context, so it is not asserted here.)
}

}  // namespace
}  // namespace rader
