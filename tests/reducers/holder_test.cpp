#include "reducers/holder.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/api.hpp"
#include "runtime/run.hpp"
#include "sched/parallel_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

TEST(Holder, MonoidLawsHold) {
  using M = monoid::holder_keep_left<int>;
  int a = 7, e = M::identity();
  M::reduce(a, e);
  EXPECT_EQ(a, 7);  // a ⊗ e == a
  int x = 1, y = 2, z = 3;
  int x2 = 1, y2 = 2, z2 = 3;
  M::reduce(x, y);
  M::reduce(x, z);  // (x⊗y)⊗z
  M::reduce(y2, z2);
  M::reduce(x2, y2);  // x⊗(y⊗z)
  EXPECT_EQ(x, x2);
}

TEST(Holder, ScratchIsConsistentWithinAStrand) {
  // The classic holder pattern: fill the scratch buffer, use it, all within
  // one strand — correct under any schedule.
  run_serial([&] {
    holder<std::vector<int>> scratch;
    long total = 0;
    reducer<monoid::op_add<long>> sum;
    parallel_for<int>(0, 64, [&](int i) {
      scratch.update([&](std::vector<int>& buf) {
        buf.assign(4, i);  // fill
        long local = 0;
        for (const int v : buf) local += v;  // consume in-strand
        (void)local;
      });
      sum += i;
    });
    sync();
    total = sum.get_value();
    EXPECT_EQ(total, 64 * 63 / 2);
  });
}

TEST(Holder, DiscardsRightViewsUnderSteals) {
  spec::StealAll all;
  SerialEngine engine(nullptr, &all);
  std::string final_value;
  engine.run([&] {
    holder<std::string> h;
    h.update([](std::string& v) { v = "leftmost"; });
    spawn([&] { h.update([](std::string& v) { v = "child"; }); });
    h.update([](std::string& v) { v += "+cont"; });  // stolen: fresh view
    sync();
    final_value = h.get_value();
  });
  // After the sync the surviving view is the leftmost ("leftmost", as the
  // child shared it in serial order... the child wrote the leftmost view,
  // the stolen continuation wrote a discarded identity view).
  EXPECT_EQ(final_value, "child");
}

TEST(Holder, SerialProjectionKeepsLastWrite) {
  spec::NoSteal none;
  SerialEngine engine(nullptr, &none);
  std::string final_value;
  engine.run([&] {
    holder<std::string> h;
    h.update([](std::string& v) { v = "a"; });
    spawn([&] { h.update([](std::string& v) { v = "b"; }); });
    h.update([](std::string& v) { v = "c"; });
    sync();
    final_value = h.get_value();
  });
  EXPECT_EQ(final_value, "c");  // no steals: one view, last write wins
}

TEST(Holder, WorksOnParallelEngine) {
  ParallelEngine engine(4);
  long total = 0;
  engine.run([&] {
    holder<std::vector<long>> scratch;
    reducer<monoid::op_add<long>> sum;
    parallel_for<int>(0, 1000, [&](int i) {
      scratch.update([&](std::vector<long>& buf) {
        buf.assign(8, i);
        long local = 0;
        for (const long v : buf) local += v;
        sum += local / 8;
      });
    });
    sync();
    total = sum.get_value();
  });
  EXPECT_EQ(total, 999L * 1000 / 2);
}

}  // namespace
}  // namespace rader
