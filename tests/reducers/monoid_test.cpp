// Monoid laws: identity and associativity for every built-in monoid.
#include "reducers/monoid.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "support/rng.hpp"

namespace rader::monoid {
namespace {

// Generic law checks: e ⊗ x == x, x ⊗ e == x, (a⊗b)⊗c == a⊗(b⊗c).
// reduce() may pillage its right operand, so operands are copied per call.
template <typename M>
typename M::value_type combine(typename M::value_type a,
                               typename M::value_type b) {
  M::reduce(a, b);
  return a;
}

template <typename M>
void check_laws(std::vector<typename M::value_type> samples) {
  using T = typename M::value_type;
  for (const T& x : samples) {
    EXPECT_EQ(combine<M>(M::identity(), x), x);
    EXPECT_EQ(combine<M>(x, M::identity()), x);
  }
  for (const T& a : samples) {
    for (const T& b : samples) {
      for (const T& c : samples) {
        EXPECT_EQ(combine<M>(combine<M>(a, b), c),
                  combine<M>(a, combine<M>(b, c)));
      }
    }
  }
}

TEST(Monoid, OpAddLaws) { check_laws<op_add<long>>({-5, 0, 3, 1000000}); }
TEST(Monoid, OpMulLaws) { check_laws<op_mul<long>>({-2, 0, 1, 7}); }
TEST(Monoid, OpMinLaws) { check_laws<op_min<int>>({-10, 0, 42, 1 << 30}); }
TEST(Monoid, OpMaxLaws) { check_laws<op_max<int>>({-10, 0, 42, -(1 << 30)}); }
TEST(Monoid, OpAndLaws) {
  check_laws<op_and<unsigned>>({0u, 0xffu, 0xf0f0u, ~0u});
}
TEST(Monoid, OpOrLaws) { check_laws<op_or<unsigned>>({0u, 1u, 0xff00u}); }
TEST(Monoid, OpXorLaws) { check_laws<op_xor<unsigned>>({0u, 5u, 0xabcdu}); }
TEST(Monoid, StringAppendLaws) {
  check_laws<string_append>({"", "a", "bc", "xyz"});
}
TEST(Monoid, VectorAppendLaws) {
  check_laws<vector_append<int>>({{}, {1}, {2, 3}, {4, 5, 6}});
}
TEST(Monoid, MinIndexLaws) {
  check_laws<op_min_index<int, int>>(
      {{5, 1}, {3, 2}, {3, 2}, {1 << 30, 0}});
}
TEST(Monoid, MaxIndexLaws) {
  check_laws<op_max_index<int, int>>(
      {{5, 1}, {9, 2}, {-(1 << 30), 0}});
}

TEST(Monoid, StringAppendIsNotCommutative) {
  // Reducers require only associativity; this asserts the test monoid is a
  // real witness for serial-order preservation.
  EXPECT_NE(combine<string_append>("a", "b"), combine<string_append>("b", "a"));
}

TEST(Monoid, VectorAppendMovesElements) {
  std::vector<int> a{1, 2};
  std::vector<int> b{3};
  vector_append<int>::reduce(a, b);
  EXPECT_EQ(a, (std::vector<int>{1, 2, 3}));
}

TEST(Monoid, VectorAppendIntoEmptyStealsBuffer) {
  std::vector<int> a;
  std::vector<int> b{7, 8};
  const int* data = b.data();
  vector_append<int>::reduce(a, b);
  EXPECT_EQ(a.data(), data);  // O(1) move, no copy
}

TEST(Monoid, RandomizedFoldEqualsSerialFold) {
  // Fold a sequence with random association: result must match left fold.
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::string> parts;
    for (int i = 0; i < 10; ++i) parts.push_back(std::string(1, 'a' + i));
    std::string expected;
    for (const auto& p : parts) expected += p;
    // Randomly merge adjacent pairs until one remains.
    while (parts.size() > 1) {
      const std::size_t i = rng.below(parts.size() - 1);
      string_append::reduce(parts[i], parts[i + 1]);
      parts.erase(parts.begin() + static_cast<std::ptrdiff_t>(i) + 1);
    }
    EXPECT_EQ(parts[0], expected);
  }
}

}  // namespace
}  // namespace rader::monoid
