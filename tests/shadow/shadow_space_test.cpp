#include "shadow/shadow_space.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "shadow/reducer_shadow.hpp"
#include "support/rng.hpp"

namespace rader::shadow {
namespace {

TEST(ShadowSpace, UnsetAddressesAreEmpty) {
  ShadowSpace s;
  EXPECT_EQ(s.get(0), ShadowSpace::kEmpty);
  EXPECT_EQ(s.get(0xdeadbeef), ShadowSpace::kEmpty);
  EXPECT_EQ(s.page_count(), 0u);  // get never allocates
}

TEST(ShadowSpace, SetThenGet) {
  ShadowSpace s;
  s.set(0x1000, 7);
  EXPECT_EQ(s.get(0x1000), 7u);
  EXPECT_EQ(s.get(0x1001), ShadowSpace::kEmpty);
}

TEST(ShadowSpace, AdjacentBytesAreIndependent) {
  ShadowSpace s;
  for (std::uintptr_t a = 0x2000; a < 0x2010; ++a) {
    s.set(a, static_cast<std::uint32_t>(a & 0xff));
  }
  for (std::uintptr_t a = 0x2000; a < 0x2010; ++a) {
    EXPECT_EQ(s.get(a), (a & 0xff));
  }
}

TEST(ShadowSpace, CrossesPageBoundaries) {
  ShadowSpace s;
  const std::uintptr_t boundary = 4096 * 10;
  s.set(boundary - 1, 1);
  s.set(boundary, 2);
  EXPECT_EQ(s.get(boundary - 1), 1u);
  EXPECT_EQ(s.get(boundary), 2u);
  EXPECT_EQ(s.page_count(), 2u);
}

TEST(ShadowSpace, OverwriteWins) {
  ShadowSpace s;
  s.set(5, 1);
  s.set(5, 2);
  EXPECT_EQ(s.get(5), 2u);
}

TEST(ShadowSpace, ClearForgets) {
  ShadowSpace s;
  s.set(123, 9);
  s.clear();
  EXPECT_EQ(s.get(123), ShadowSpace::kEmpty);
  EXPECT_EQ(s.page_count(), 0u);
}

TEST(ShadowSpace, ClearInvalidatesTheLookasideCache) {
  // Regression guard for the one-entry page cache: prime the cache, clear(),
  // then read the same address — a stale cached_page_ would serve freed
  // memory (or resurrect old payloads) instead of reporting kEmpty.
  ShadowSpace s;
  s.set(0x3000, 5);
  ASSERT_EQ(s.get(0x3000), 5u);  // primes the lookaside cache
  s.clear();
  EXPECT_EQ(s.get(0x3000), ShadowSpace::kEmpty);
  EXPECT_EQ(s.page_count(), 0u);
  // The space stays fully usable after the wipe.
  s.set(0x3000, 6);
  EXPECT_EQ(s.get(0x3000), 6u);
  EXPECT_EQ(s.page_count(), 1u);
}

TEST(ShadowSpace, ClearThenSetRebuildsCacheCleanly) {
  // set() also goes through the cache (touch_page): interleave clears with
  // sets on two pages and check nothing leaks across the wipes.
  ShadowSpace s;
  for (int round = 0; round < 3; ++round) {
    s.set(0x5000, 1 + round);
    s.set(0x5000 + 4096, 10 + round);
    EXPECT_EQ(s.get(0x5000), static_cast<std::uint32_t>(1 + round));
    EXPECT_EQ(s.get(0x5000 + 4096), static_cast<std::uint32_t>(10 + round));
    s.clear();
    EXPECT_EQ(s.get(0x5000), ShadowSpace::kEmpty);
    EXPECT_EQ(s.get(0x5000 + 4096), ShadowSpace::kEmpty);
  }
}

TEST(ShadowSpace, TopOfAddressSpaceIsAddressable) {
  // The clamp in access_last_byte makes detectors probe UINTPTR_MAX itself;
  // the page map must handle the last page without aliasing the cache's
  // empty sentinel.
  ShadowSpace s;
  const std::uintptr_t top = ~std::uintptr_t{0};
  s.set(top, 4);
  EXPECT_EQ(s.get(top), 4u);
  EXPECT_EQ(s.get(top - 1), ShadowSpace::kEmpty);
  s.set(top - 1, 9);
  EXPECT_EQ(s.get(top - 1), 9u);
  EXPECT_EQ(s.page_count(), 1u);  // both bytes live on the final page
}

TEST(ShadowSpace, MatchesReferenceMapUnderRandomOps) {
  Rng rng(77);
  ShadowSpace s;
  std::unordered_map<std::uintptr_t, std::uint32_t> ref;
  for (int i = 0; i < 20000; ++i) {
    // Cluster addresses so the page cache is exercised.
    const std::uintptr_t addr = 0x10000 + rng.below(3 * 4096);
    if (rng.chance(0.6)) {
      const auto v = static_cast<std::uint32_t>(rng.below(1000));
      s.set(addr, v);
      ref[addr] = v;
    } else {
      const auto it = ref.find(addr);
      EXPECT_EQ(s.get(addr),
                it == ref.end() ? ShadowSpace::kEmpty : it->second);
    }
  }
}

TEST(ShadowSpace, BytesAccountsPages) {
  ShadowSpace s;
  EXPECT_EQ(s.bytes(), 0u);
  s.set(0, 1);
  EXPECT_GT(s.bytes(), 4096u * sizeof(std::uint32_t) - 1);
}

TEST(ReducerShadow, DefaultEntriesAreAbsent) {
  ReducerShadow rs;
  EXPECT_FALSE(rs.has(0));
  EXPECT_FALSE(rs.has(100));
}

TEST(ReducerShadow, StoresReaderAndSpawnCount) {
  ReducerShadow rs;
  rs[3].reader = 17;
  rs[3].spawn_count = 5;
  rs[3].label = "somewhere";
  EXPECT_TRUE(rs.has(3));
  EXPECT_FALSE(rs.has(2));
  EXPECT_EQ(rs[3].reader, 17u);
  EXPECT_EQ(rs[3].spawn_count, 5u);
}

TEST(ReducerShadow, ClearResets) {
  ReducerShadow rs;
  rs[1].reader = 2;
  rs.clear();
  EXPECT_FALSE(rs.has(1));
}

}  // namespace
}  // namespace rader::shadow
