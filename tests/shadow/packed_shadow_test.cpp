// PackedShadow unit coverage: the compressed slot encoding, the epoch-
// tagged bulk clear (including rollover), lookaside-cache staleness, and
// the two-level CoW fork economics — the corners the shadow-equivalence
// battery exercises only statistically.
#include "shadow/packed_shadow.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "shadow/access_shadow.hpp"

namespace rader::shadow {
namespace {

constexpr std::uintptr_t kTop = ~std::uintptr_t{0};

TEST(PackedShadow, UnsetGranulesAreEmpty) {
  PackedShadow s;
  EXPECT_EQ(s.reader(0), PackedShadow::kEmpty);
  EXPECT_EQ(s.writer(0xdeadbeef), PackedShadow::kEmpty);
  EXPECT_EQ(s.page_count(), 0u);  // reads never allocate
}

TEST(PackedShadow, ReaderAndWriterShareOneSlotIndependently) {
  PackedShadow s;
  s.set_reader(0x1000, 7, 3);
  EXPECT_EQ(s.reader(0x1000), 7u);
  EXPECT_EQ(s.writer(0x1000), PackedShadow::kEmpty);
  s.set_writer(0x1000, 9, 5);
  EXPECT_EQ(s.reader(0x1000), 7u);
  EXPECT_EQ(s.writer(0x1000), 9u);
  EXPECT_EQ(s.reader_offset(0x1000), 3u);
  EXPECT_EQ(s.writer_offset(0x1000), 5u);
  // Overwriting one field must not disturb the other field or offset.
  s.set_reader(0x1000, 11, 1);
  EXPECT_EQ(s.writer(0x1000), 9u);
  EXPECT_EQ(s.writer_offset(0x1000), 5u);
  EXPECT_EQ(s.reader_offset(0x1000), 1u);
}

TEST(PackedShadow, OffsetsClampToTheFourBitExtentField) {
  PackedShadow s;
  s.set_writer(0x2000, 1, 200);
  EXPECT_EQ(s.writer_offset(0x2000), PackedShadow::kMaxOffset);
}

TEST(PackedShadow, MaxPayloadRoundTripsAndKEmptyClearsAField) {
  PackedShadow s;
  s.set_writer(0x3000, PackedShadow::kMaxPayload);
  EXPECT_EQ(s.writer(0x3000), PackedShadow::kMaxPayload);
  s.set_writer(0x3000, PackedShadow::kEmpty);
  EXPECT_EQ(s.writer(0x3000), PackedShadow::kEmpty);
}

TEST(PackedShadow, ClearGranuleEmptiesBothFieldsWithoutMaterializing) {
  PackedShadow s;
  s.clear_granule(0x4000);  // absent: must not allocate a page
  EXPECT_EQ(s.page_count(), 0u);
  s.set_reader(0x4000, 1);
  s.set_writer(0x4000, 2);
  s.clear_granule(0x4000);
  EXPECT_EQ(s.reader(0x4000), PackedShadow::kEmpty);
  EXPECT_EQ(s.writer(0x4000), PackedShadow::kEmpty);
}

// ---- Epoch clear -----------------------------------------------------------

TEST(PackedShadow, EpochClearEmptiesEverythingWithoutTouchingPages) {
  PackedShadow s;
  for (std::uintptr_t g = 0; g < 3 * PackedShadow::kPageSlots; g += 97) {
    s.set_writer(g, 5);
  }
  const std::size_t pages = s.page_count();
  const std::uint64_t epoch = s.epoch();
  s.clear();
  EXPECT_EQ(s.epoch(), epoch + 1);
  EXPECT_EQ(s.page_count(), pages);  // stale pages stay mapped (lazy reset)
  for (std::uintptr_t g = 0; g < 3 * PackedShadow::kPageSlots; g += 97) {
    EXPECT_EQ(s.writer(g), PackedShadow::kEmpty) << "granule " << g;
  }
}

TEST(PackedShadow, WritesAfterClearReStampWithoutResurrectingOldData) {
  PackedShadow s;
  s.set_writer(0x5000, 1);
  s.set_writer(0x5001, 2);
  s.clear();
  s.set_writer(0x5000, 3);  // same page: lazy reset + re-stamp
  EXPECT_EQ(s.writer(0x5000), 3u);
  EXPECT_EQ(s.writer(0x5001), PackedShadow::kEmpty)
      << "the lazy page reset must wipe the whole page, not just the "
         "written granule";
}

TEST(PackedShadow, ClearAfterWritesAdjacentToUintptrMax) {
  // Regression: granules at the very top of the address space exercise the
  // highest page/chunk keys; clear() (epoch bump) and the subsequent lazy
  // resets must behave identically there.
  PackedShadow s;
  s.set_writer(kTop, 1, 15);
  s.set_writer(kTop - 1, 2);
  s.set_reader(kTop - PackedShadow::kPageSlots, 3);  // previous page
  EXPECT_EQ(s.writer(kTop), 1u);
  s.clear();
  EXPECT_EQ(s.writer(kTop), PackedShadow::kEmpty);
  EXPECT_EQ(s.writer(kTop - 1), PackedShadow::kEmpty);
  EXPECT_EQ(s.reader(kTop - PackedShadow::kPageSlots), PackedShadow::kEmpty);
  s.set_writer(kTop, 9);
  EXPECT_EQ(s.writer(kTop), 9u);
  EXPECT_EQ(s.writer(kTop - 1), PackedShadow::kEmpty);
}

TEST(PackedShadow, LookasideCachesGoStaleAcrossEpochRollover) {
  // Regression: the read lookaside may hold a page pointer across clear();
  // every hit must revalidate the page's epoch stamp — including across
  // the rollover path, where the directory is rebuilt and the epoch
  // RESTARTS at 1 (a stale cache entry stamped with a LOWER epoch must not
  // revalidate against the restarted counter).
  PackedShadow s;
  s.set_writer(0x6000, 1);
  EXPECT_EQ(s.writer(0x6000), 1u);  // warm the read cache
  s.set_epoch_for_testing(kTop);
  EXPECT_EQ(s.writer(0x6000), PackedShadow::kEmpty);  // stale via jump
  s.set_writer(0x6000, 2);  // re-stamp at the jumped epoch, re-warm caches
  EXPECT_EQ(s.writer(0x6000), 2u);
  s.clear();  // epoch == ~0: rollover — full release, epoch restarts at 1
  EXPECT_EQ(s.epoch(), 1u);
  EXPECT_EQ(s.page_count(), 0u);
  EXPECT_EQ(s.writer(0x6000), PackedShadow::kEmpty)
      << "a cached pre-rollover page must not satisfy post-rollover reads";
  s.set_writer(0x6000, 3);
  EXPECT_EQ(s.writer(0x6000), 3u);
  s.clear();  // ordinary epoch bump after the restart
  EXPECT_EQ(s.writer(0x6000), PackedShadow::kEmpty);
}

TEST(PackedShadow, WriteLookasideIsDroppedByClear) {
  PackedShadow s;
  s.set_writer(0x7000, 1);  // warms the write cache for this page
  s.clear();
  // A write-cache hit after clear() would scribble into the stale page
  // without re-stamping it, making the value invisible to reads.
  s.set_writer(0x7000, 2);
  EXPECT_EQ(s.writer(0x7000), 2u);
}

// ---- Forks (two-level CoW) -------------------------------------------------

TEST(PackedShadow, ForkSeesParentStateAndDivergesOnWrite) {
  PackedShadow parent;
  parent.set_writer(0x8000, 1);
  parent.set_reader(0x9000, 2);
  PackedShadow child = parent.fork();
  EXPECT_EQ(child.writer(0x8000), 1u);
  EXPECT_EQ(child.reader(0x9000), 2u);
  child.set_writer(0x8000, 7);
  parent.set_reader(0x9000, 8);
  EXPECT_EQ(parent.writer(0x8000), 1u);
  EXPECT_EQ(child.writer(0x8000), 7u);
  EXPECT_EQ(child.reader(0x9000), 2u);
  EXPECT_EQ(parent.reader(0x9000), 8u);
}

TEST(PackedShadow, ForkThenParentClearLeavesForkIntact) {
  // Regression: the epoch is PER SPACE.  A clear() in one holder must not
  // leak through shared pages into the other — in either direction.
  PackedShadow parent;
  parent.set_writer(0xA000, 1);
  PackedShadow child = parent.fork();
  parent.clear();
  EXPECT_EQ(parent.writer(0xA000), PackedShadow::kEmpty);
  EXPECT_EQ(child.writer(0xA000), 1u)
      << "the parent's epoch bump must not clear the fork";
  parent.set_writer(0xA000, 5);  // must CoW, not reset the shared page
  EXPECT_EQ(child.writer(0xA000), 1u);
  child.clear();
  EXPECT_EQ(child.writer(0xA000), PackedShadow::kEmpty);
  EXPECT_EQ(parent.writer(0xA000), 5u);
  child.set_writer(0xA000, 9);
  EXPECT_EQ(parent.writer(0xA000), 5u);
}

TEST(PackedShadow, SiblingForksDivergeIndependently) {
  PackedShadow base;
  base.set_writer(0xB000, 1);
  PackedShadow a = base.fork();
  PackedShadow b = base.fork();
  a.set_writer(0xB000, 2);
  b.set_writer(0xB000, 3);
  EXPECT_EQ(base.writer(0xB000), 1u);
  EXPECT_EQ(a.writer(0xB000), 2u);
  EXPECT_EQ(b.writer(0xB000), 3u);
}

TEST(PackedShadow, WritesInOneChunkStayInvisibleAcrossTheForkBoundary) {
  // Chunk-level CoW: the first write through a shared chunk clones the
  // chunk.  Writes to DIFFERENT pages of the same chunk from both holders
  // must still be isolated.
  PackedShadow parent;
  const std::uintptr_t page0 = 0;
  const std::uintptr_t page1 = PackedShadow::kPageSlots;
  parent.set_writer(page0, 1);
  parent.set_writer(page1, 2);
  PackedShadow child = parent.fork();
  parent.set_writer(page0, 10);  // parent clones the chunk, CoWs page 0
  child.set_writer(page1, 20);   // child writes page 1 through its copy
  EXPECT_EQ(parent.writer(page0), 10u);
  EXPECT_EQ(parent.writer(page1), 2u);
  EXPECT_EQ(child.writer(page0), 1u);
  EXPECT_EQ(child.writer(page1), 20u);
}

TEST(PackedShadow, ForkAfterForkChains) {
  PackedShadow base;
  base.set_writer(0xC000, 1);
  PackedShadow child = base.fork();
  child.set_writer(0xC000, 2);
  PackedShadow grand = child.fork();
  grand.set_writer(0xC000, 3);
  EXPECT_EQ(base.writer(0xC000), 1u);
  EXPECT_EQ(child.writer(0xC000), 2u);
  EXPECT_EQ(grand.writer(0xC000), 3u);
}

TEST(PackedShadow, MoveTransfersStateAndLeavesSourceEmpty) {
  PackedShadow a;
  a.set_writer(0xD000, 4);
  PackedShadow b = std::move(a);
  EXPECT_EQ(b.writer(0xD000), 4u);
  PackedShadow c;
  c.set_writer(0xE000, 5);
  c = std::move(b);
  EXPECT_EQ(c.writer(0xD000), 4u);
  EXPECT_EQ(c.writer(0xE000), PackedShadow::kEmpty);
}

// ---- Facade ----------------------------------------------------------------

TEST(AccessShadow, BothEncodingsAgreeOnTheLogicalInterface) {
  for (const SlotEncoding enc : {SlotEncoding::kPacked,
                                 SlotEncoding::kLegacy}) {
    AccessShadow s(enc);
    EXPECT_EQ(s.reader(0x100), AccessShadow::kEmpty);
    s.set_reader(0x100, 1, 2);
    s.set_writer(0x100, 2, 3);
    EXPECT_EQ(s.reader(0x100), 1u);
    EXPECT_EQ(s.writer(0x100), 2u);
    s.clear_granule(0x100);
    EXPECT_EQ(s.reader(0x100), AccessShadow::kEmpty);
    EXPECT_EQ(s.writer(0x100), AccessShadow::kEmpty);
    s.set_writer(0x200, 7);
    AccessShadow f = s.fork();
    f.set_writer(0x200, 8);
    s.clear();
    EXPECT_EQ(s.writer(0x200), AccessShadow::kEmpty);
    EXPECT_EQ(f.writer(0x200), 8u);
  }
}

TEST(AccessShadow, DefaultEncodingIsPackedAndOverridable) {
  EXPECT_EQ(default_encoding(), SlotEncoding::kPacked);
  AccessShadow s;
  EXPECT_EQ(s.encoding(), SlotEncoding::kPacked);
  set_default_encoding(SlotEncoding::kLegacy);
  AccessShadow t;
  EXPECT_EQ(t.encoding(), SlotEncoding::kLegacy);
  set_default_encoding(SlotEncoding::kPacked);
}

}  // namespace
}  // namespace rader::shadow
