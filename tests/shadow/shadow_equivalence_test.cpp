// Packed-vs-legacy slot-encoding equivalence battery.
//
// shadow::AccessShadow (shadow/access_shadow.hpp) promises that the slot
// encoding changes only the storage cost, never the answer: for
// address-stable programs the merged sweep report is BYTE-IDENTICAL
// between SlotEncoding::kPacked (the production 8-byte combined slots)
// and SlotEncoding::kLegacy (the original paired ShadowSpaces) at every
// thread count — same race identity sets, same occurrence totals, same
// eliciting-spec sets, same spec accounting.
//
// The battery drives RADER_SHADOW_EQ_PROGRAMS seeded programs (default:
// the compile-time RADER_SHADOW_EQ_DEFAULT; the fast gate builds this
// file with 50, the stress target with 300) through the full Section-7
// sweep under both encodings at jobs 1 and 4 and literally compares
// RaceLog::to_json().  The corpus rules are the ones byte-identity
// requires — see tests/core/sweep_equivalence_test.cpp, whose seeded
// program shape this reuses: global-pool addresses, annotate-only
// accesses, seed-pure control flow.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/sweep.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "shadow/access_shadow.hpp"
#include "spec/spec_family.hpp"
#include "spec/steal_spec.hpp"

#ifndef RADER_SHADOW_EQ_DEFAULT
#define RADER_SHADOW_EQ_DEFAULT 300
#endif

namespace rader {
namespace {

using shadow::SlotEncoding;

int program_count() {
  if (const char* env = std::getenv("RADER_SHADOW_EQ_PROGRAMS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return RADER_SHADOW_EQ_DEFAULT;
}

/// RAII encoding override: the detectors consult the process default when
/// constructed, so flipping it around a sweep exercises every detector the
/// sweep builds (including per-spec and per-worker instances).
struct EncodingScope {
  explicit EncodingScope(SlotEncoding enc)
      : saved(shadow::default_encoding()) {
    shadow::set_default_encoding(enc);
  }
  ~EncodingScope() { shadow::set_default_encoding(saved); }
  SlotEncoding saved;
};

// ---- The seeded corpus (sweep_equivalence_test's shape) --------------------

struct Rng {
  std::uint64_t state;
  std::uint64_t next() {  // splitmix64
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ull;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
};

// Named racing locations; programs only annotate, never store.
int g_pool[16];

void node(Rng& rng, reducer<monoid::op_add<long>>& sum, int depth) {
  const int actions = 2 + static_cast<int>(rng.next() % 3);
  for (int a = 0; a < actions; ++a) {
    const std::uint64_t roll = rng.next();
    const int slot = static_cast<int>((roll >> 8) % 16);
    switch (roll % 5) {
      case 0:
      case 1: {
        const bool deeper = depth < 3 && (roll & (1u << 20)) != 0;
        spawn([&rng, &sum, slot, deeper, depth] {
          shadow_write(&g_pool[slot], sizeof(int), SrcTag{"eq spawned write"});
          sum += 1;
          if (deeper) node(rng, sum, depth + 1);
        });
        break;
      }
      case 2:
        shadow_read(&g_pool[slot], sizeof(int), SrcTag{"eq continuation read"});
        break;
      case 3:
        shadow_write(&g_pool[slot], sizeof(int),
                     SrcTag{"eq continuation write"});
        break;
      case 4:
        sync();
        break;
    }
  }
  (void)sum.get_value(SrcTag{"eq tail read"});
  sync();
}

struct SeededProgram {
  std::uint64_t seed;

  void operator()() const {
    Rng rng{(seed + 1) * 0x9E3779B97F4A7C15ull};
    reducer<monoid::op_add<long>> sum(SrcTag{"eq sum"});
    const int slot = static_cast<int>(rng.next() % 16);
    spawn([&sum, slot] {
      shadow_write(&g_pool[slot], sizeof(int), SrcTag{"eq spawned write"});
      sum += 1;
    });
    shadow_read(&g_pool[slot], sizeof(int), SrcTag{"eq continuation read"});
    node(rng, sum, 0);
    sync();
  }
};

std::vector<std::unique_ptr<spec::StealSpec>> family_for(
    const SeededProgram& program) {
  SerialEngine::Stats probe;
  {
    spec::NoSteal none;
    SerialEngine engine(nullptr, &none);
    engine.run([&] { program(); });
    probe = engine.stats();
  }
  const auto k = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(probe.max_sync_block, 6));
  const auto d = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(probe.max_spawn_depth, 10));
  auto family = spec::full_coverage_family(k, d);
  family.push_back(std::make_unique<spec::NoSteal>());
  family.push_back(std::make_unique<spec::StealAll>());
  return family;
}

struct SweepDigest {
  std::string log_json;
  std::uint64_t spec_runs = 0;
  std::uint64_t specs_skipped = 0;
  bool any_race = false;
};

SweepDigest run_sweep(const SeededProgram& program,
                      const std::vector<std::unique_ptr<spec::StealSpec>>& fam,
                      SlotEncoding encoding, unsigned threads) {
  EncodingScope scope(encoding);
  SweepOptions options;
  options.threads = threads;
  const SweepResult result =
      sweep_family(shared_program([program] { program(); }), fam, options);
  return SweepDigest{result.log.to_json(), result.spec_runs,
                     result.specs_skipped, result.log.any()};
}

// ---- Byte-identity battery -------------------------------------------------

TEST(ShadowEncodingEquivalence, PackedByteIdenticalToLegacyAtEveryJobCount) {
  const int kPrograms = program_count();
  int racy = 0;
  for (int seed = 1; seed <= kPrograms; ++seed) {
    const SeededProgram program{static_cast<std::uint64_t>(seed)};
    const auto family = family_for(program);
    const SweepDigest base =
        run_sweep(program, family, SlotEncoding::kLegacy, 1);
    racy += base.any_race;

    for (const unsigned threads : {1u, 4u}) {
      const SweepDigest packed =
          run_sweep(program, family, SlotEncoding::kPacked, threads);
      ASSERT_EQ(packed.log_json, base.log_json)
          << "seed " << seed << ", packed, " << threads << " thread(s)";
      ASSERT_EQ(packed.spec_runs, base.spec_runs) << "seed " << seed;
      ASSERT_EQ(packed.specs_skipped, base.specs_skipped) << "seed " << seed;
      if (threads == 1) continue;  // threads=1 legacy IS the baseline
      const SweepDigest legacy =
          run_sweep(program, family, SlotEncoding::kLegacy, threads);
      ASSERT_EQ(legacy.log_json, base.log_json)
          << "seed " << seed << ", legacy, " << threads << " thread(s)";
    }
    if (::testing::Test::HasFailure()) return;  // first seed is enough
  }
  // Byte-comparing empty logs proves nothing: the corpus must elicit races.
  EXPECT_GE(racy, kPrograms / 2);
}

TEST(ShadowEncodingEquivalence, ExhaustiveCheckAgreesUnderBothEncodings) {
  // The single-program Section-7 driver path (Peer-Set probe + SP+ family,
  // serial): detector construction happens inside the driver, so this
  // covers the facade's default-encoding plumbing end to end.
  const int kPrograms = std::max(5, program_count() / 10);
  for (int seed = 1; seed <= kPrograms; ++seed) {
    const SeededProgram program{static_cast<std::uint64_t>(seed)};
    std::string base_json;
    std::uint64_t base_runs = 0;
    {
      EncodingScope scope(SlotEncoding::kLegacy);
      const auto r = Rader::check_exhaustive([&] { program(); });
      base_json = r.log.to_json();
      base_runs = r.spec_runs;
    }
    {
      EncodingScope scope(SlotEncoding::kPacked);
      const auto r = Rader::check_exhaustive([&] { program(); });
      ASSERT_EQ(r.log.to_json(), base_json) << "seed " << seed;
      ASSERT_EQ(r.spec_runs, base_runs) << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace rader
