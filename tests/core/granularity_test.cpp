// Shadow-granularity ablation semantics: granule_bits = 0 is byte-exact;
// granule_bits = 3 (word cells) keeps true races, costs ~8x fewer shadow
// operations, and may conflate adjacent objects sharing a word (the
// ThreadSanitizer-style tradeoff).
#include <gtest/gtest.h>

#include "core/spbags.hpp"
#include "core/spplus.hpp"
#include "runtime/api.hpp"
#include "runtime/run.hpp"
#include "shadow/access_shadow.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

RaceLog check_spplus(FnView program, unsigned granule_bits) {
  RaceLog log;
  SpPlusDetector detector(&log, granule_bits);
  spec::NoSteal none;
  run_serial(program, &detector, &none);
  return log;
}

TEST(Granularity, WordCellsStillCatchTrueRaces) {
  alignas(8) long x = 0;
  for (const unsigned bits : {0u, 3u}) {
    const RaceLog log = check_spplus(
        [&] {
          spawn([&] { shadow_write(&x, 8); });
          shadow_read(&x, 8);
          sync();
        },
        bits);
    EXPECT_TRUE(log.any()) << "granule_bits=" << bits;
  }
}

TEST(Granularity, WordCellsCoalesceAnEightByteAccess) {
  alignas(8) long x = 0;
  const RaceLog exact = check_spplus(
      [&] {
        spawn([&] { shadow_write(&x, 8); });
        shadow_write(&x, 8);
        sync();
      },
      0);
  const RaceLog coarse = check_spplus(
      [&] {
        spawn([&] { shadow_write(&x, 8); });
        shadow_write(&x, 8);
        sync();
      },
      3);
  EXPECT_EQ(exact.determinacy_count(), 8u);   // one occurrence per byte
  EXPECT_EQ(coarse.determinacy_count(), 1u);  // one occurrence per word
  EXPECT_TRUE(exact.any() && coarse.any());
}

TEST(Granularity, ByteExactSeparatesAdjacentBytes) {
  alignas(8) char buf[8] = {};
  const RaceLog log = check_spplus(
      [&] {
        spawn([&] { shadow_write(&buf[0], 1); });
        shadow_write(&buf[1], 1);  // disjoint byte, same word
        sync();
      },
      0);
  EXPECT_FALSE(log.any());
}

TEST(Granularity, WordCellsConflateAdjacentBytes) {
  // The documented imprecision of coarse mode: two disjoint bytes in one
  // word share a shadow cell and are reported as racing.
  alignas(8) char buf[8] = {};
  const RaceLog log = check_spplus(
      [&] {
        spawn([&] { shadow_write(&buf[0], 1); });
        shadow_write(&buf[1], 1);
        sync();
      },
      3);
  EXPECT_TRUE(log.any());
}

TEST(Granularity, UnalignedAccessCoversBothWords) {
  alignas(8) char buf[16] = {};
  // A 4-byte access straddling a word boundary must conflict with accesses
  // to either word under coarse granularity.
  const RaceLog log = check_spplus(
      [&] {
        spawn([&] { shadow_write(&buf[6], 4); });  // words 0 and 1
        shadow_read(&buf[8], 1);                   // word 1
        sync();
      },
      3);
  EXPECT_TRUE(log.any());
}

TEST(Granularity, ClearRespectsGranules) {
  const RaceLog log = check_spplus(
      [&] {
        auto* p = new long(0);
        spawn([p] { shadow_write(p, 8); });
        sync();
        shadow_clear(p, 8);
        delete p;
        auto* q = new long(0);  // may reuse p's address
        shadow_read(q, 8);      // must not see p's stale writer
        sync();
        delete q;
      },
      3);
  EXPECT_FALSE(log.any());
}

TEST(Granularity, DistinctRacesInOneGranuleKeepDistinctReports) {
  // Two different bytes of one word each race with a word-wide writer,
  // under the SAME label.  Coarse mode must report each at its true byte
  // address (clamped to the access extent), not at the granule base —
  // otherwise the two collapse into one frame-free dedup identity.
  alignas(8) char buf[8] = {};
  const RaceLog log = check_spplus(
      [&] {
        spawn([&] { shadow_write(&buf[0], 8, SrcTag{"word writer"}); });
        shadow_read(&buf[1], 1, SrcTag{"byte read"});
        shadow_read(&buf[5], 1, SrcTag{"byte read"});
        sync();
      },
      3);
  EXPECT_EQ(log.determinacy_count(), 2u);
  ASSERT_EQ(log.determinacy_races().size(), 2u);
  EXPECT_EQ(log.determinacy_races()[0].addr,
            reinterpret_cast<std::uintptr_t>(&buf[1]));
  EXPECT_EQ(log.determinacy_races()[1].addr,
            reinterpret_cast<std::uintptr_t>(&buf[5]));
}

TEST(Granularity, DistinctReportsSurviveBothSlotEncodings) {
  // The packed slot stores the access extent in a 4-bit field; the report
  // address must come from the CURRENT access, never from that (possibly
  // clamped) stored extent — so the byte addresses are identical under both
  // encodings.
  alignas(8) char buf[8] = {};
  const shadow::SlotEncoding saved = shadow::default_encoding();
  for (const auto enc :
       {shadow::SlotEncoding::kPacked, shadow::SlotEncoding::kLegacy}) {
    shadow::set_default_encoding(enc);
    const RaceLog log = check_spplus(
        [&] {
          spawn([&] { shadow_write(&buf[0], 8, SrcTag{"word writer"}); });
          shadow_read(&buf[1], 1, SrcTag{"byte read"});
          shadow_read(&buf[5], 1, SrcTag{"byte read"});
          sync();
        },
        3);
    const int which = static_cast<int>(enc);
    ASSERT_EQ(log.determinacy_races().size(), 2u) << "encoding " << which;
    EXPECT_EQ(log.determinacy_races()[0].addr,
              reinterpret_cast<std::uintptr_t>(&buf[1]))
        << "encoding " << which;
    EXPECT_EQ(log.determinacy_races()[1].addr,
              reinterpret_cast<std::uintptr_t>(&buf[5]))
        << "encoding " << which;
  }
  shadow::set_default_encoding(saved);
}

TEST(Granularity, OffsetsBeyondThePackedExtentFieldKeepTrueAddresses) {
  // granule_bits = 5: a 32-byte granule, so byte offsets run to 31 — past
  // the packed slot's 4-bit extent field, which saturates at 15.  The
  // saturation must stay diagnostic: a race at offset 29 still reports the
  // true byte address, not an address clamped to the extent field's reach.
  alignas(32) char buf[32] = {};
  const shadow::SlotEncoding saved = shadow::default_encoding();
  for (const auto enc :
       {shadow::SlotEncoding::kPacked, shadow::SlotEncoding::kLegacy}) {
    shadow::set_default_encoding(enc);
    const RaceLog log = check_spplus(
        [&] {
          spawn([&] { shadow_write(&buf[0], 32, SrcTag{"granule writer"}); });
          shadow_read(&buf[1], 1, SrcTag{"byte read"});
          shadow_read(&buf[29], 1, SrcTag{"byte read"});
          sync();
        },
        5);
    const int which = static_cast<int>(enc);
    ASSERT_EQ(log.determinacy_races().size(), 2u) << "encoding " << which;
    EXPECT_EQ(log.determinacy_races()[0].addr,
              reinterpret_cast<std::uintptr_t>(&buf[1]))
        << "encoding " << which;
    EXPECT_EQ(log.determinacy_races()[1].addr,
              reinterpret_cast<std::uintptr_t>(&buf[29]))
        << "encoding " << which;
  }
  shadow::set_default_encoding(saved);
}

TEST(Granularity, AccessAtTopOfAddressSpaceDoesNotWrap) {
  // An 8-byte access whose extent would overflow uintptr_t (regression: the
  // pre-clamp range loop computed last < first and silently tracked
  // nothing, so the race vanished).  Annotation-only accesses, so the bogus
  // address is never dereferenced.
  void* const top = reinterpret_cast<void*>(~std::uintptr_t{0} - 2);
  const auto program = [&] {
    spawn([&] { shadow_write(top, 8); });
    shadow_read(top, 8);
    sync();
  };
  for (const unsigned bits : {0u, 3u}) {
    const RaceLog log = check_spplus(program, bits);
    EXPECT_TRUE(log.any()) << "sp+ granule_bits=" << bits;
  }
  {
    RaceLog log;
    SpBagsDetector detector(&log);
    spec::NoSteal none;
    run_serial(program, &detector, &none);
    EXPECT_TRUE(log.any()) << "spbags";
  }
}

TEST(Granularity, SpBagsSupportsCoarseModeToo) {
  int x = 0;
  RaceLog log;
  SpBagsDetector detector(&log, 3);
  spec::NoSteal none;
  run_serial(
      [&] {
        spawn([&] { shadow_write(&x, 4); });
        shadow_read(&x, 4);
        sync();
      },
      &detector, &none);
  EXPECT_EQ(log.determinacy_count(), 1u);
}

}  // namespace
}  // namespace rader
