// Shadow-granularity ablation semantics: granule_bits = 0 is byte-exact;
// granule_bits = 3 (word cells) keeps true races, costs ~8x fewer shadow
// operations, and may conflate adjacent objects sharing a word (the
// ThreadSanitizer-style tradeoff).
#include <gtest/gtest.h>

#include "core/spbags.hpp"
#include "core/spplus.hpp"
#include "runtime/api.hpp"
#include "runtime/run.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

RaceLog check_spplus(FnView program, unsigned granule_bits) {
  RaceLog log;
  SpPlusDetector detector(&log, granule_bits);
  spec::NoSteal none;
  run_serial(program, &detector, &none);
  return log;
}

TEST(Granularity, WordCellsStillCatchTrueRaces) {
  alignas(8) long x = 0;
  for (const unsigned bits : {0u, 3u}) {
    const RaceLog log = check_spplus(
        [&] {
          spawn([&] { shadow_write(&x, 8); });
          shadow_read(&x, 8);
          sync();
        },
        bits);
    EXPECT_TRUE(log.any()) << "granule_bits=" << bits;
  }
}

TEST(Granularity, WordCellsCoalesceAnEightByteAccess) {
  alignas(8) long x = 0;
  const RaceLog exact = check_spplus(
      [&] {
        spawn([&] { shadow_write(&x, 8); });
        shadow_write(&x, 8);
        sync();
      },
      0);
  const RaceLog coarse = check_spplus(
      [&] {
        spawn([&] { shadow_write(&x, 8); });
        shadow_write(&x, 8);
        sync();
      },
      3);
  EXPECT_EQ(exact.determinacy_count(), 8u);   // one occurrence per byte
  EXPECT_EQ(coarse.determinacy_count(), 1u);  // one occurrence per word
  EXPECT_TRUE(exact.any() && coarse.any());
}

TEST(Granularity, ByteExactSeparatesAdjacentBytes) {
  alignas(8) char buf[8] = {};
  const RaceLog log = check_spplus(
      [&] {
        spawn([&] { shadow_write(&buf[0], 1); });
        shadow_write(&buf[1], 1);  // disjoint byte, same word
        sync();
      },
      0);
  EXPECT_FALSE(log.any());
}

TEST(Granularity, WordCellsConflateAdjacentBytes) {
  // The documented imprecision of coarse mode: two disjoint bytes in one
  // word share a shadow cell and are reported as racing.
  alignas(8) char buf[8] = {};
  const RaceLog log = check_spplus(
      [&] {
        spawn([&] { shadow_write(&buf[0], 1); });
        shadow_write(&buf[1], 1);
        sync();
      },
      3);
  EXPECT_TRUE(log.any());
}

TEST(Granularity, UnalignedAccessCoversBothWords) {
  alignas(8) char buf[16] = {};
  // A 4-byte access straddling a word boundary must conflict with accesses
  // to either word under coarse granularity.
  const RaceLog log = check_spplus(
      [&] {
        spawn([&] { shadow_write(&buf[6], 4); });  // words 0 and 1
        shadow_read(&buf[8], 1);                   // word 1
        sync();
      },
      3);
  EXPECT_TRUE(log.any());
}

TEST(Granularity, ClearRespectsGranules) {
  const RaceLog log = check_spplus(
      [&] {
        auto* p = new long(0);
        spawn([p] { shadow_write(p, 8); });
        sync();
        shadow_clear(p, 8);
        delete p;
        auto* q = new long(0);  // may reuse p's address
        shadow_read(q, 8);      // must not see p's stale writer
        sync();
        delete q;
      },
      3);
  EXPECT_FALSE(log.any());
}

TEST(Granularity, SpBagsSupportsCoarseModeToo) {
  int x = 0;
  RaceLog log;
  SpBagsDetector detector(&log, 3);
  spec::NoSteal none;
  run_serial(
      [&] {
        spawn([&] { shadow_write(&x, 4); });
        shadow_read(&x, 4);
        sync();
      },
      &detector, &none);
  EXPECT_EQ(log.determinacy_count(), 1u);
}

}  // namespace
}  // namespace rader
