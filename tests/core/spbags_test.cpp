#include "core/spbags.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "runtime/api.hpp"

namespace rader {
namespace {

TEST(SpBags, CleanSpawnSyncProgram) {
  int x = 0;
  const RaceLog log = Rader::check_spbags([&] {
    shadow_write(&x, 4);
    spawn([] {});
    sync();
    shadow_read(&x, 4);
  });
  EXPECT_FALSE(log.any());
}

TEST(SpBags, DetectsWriteReadRace) {
  int x = 0;
  const RaceLog log = Rader::check_spbags([&] {
    spawn([&] { shadow_write(&x, 4, SrcTag{"child write"}); });
    shadow_read(&x, 4, SrcTag{"parent read"});
    sync();
  });
  EXPECT_EQ(log.determinacy_count(), 4u);  // one per byte
  ASSERT_FALSE(log.determinacy_races().empty());
  EXPECT_EQ(log.determinacy_races()[0].current_label, "parent read");
  EXPECT_TRUE(log.determinacy_races()[0].prior_was_write);
}

TEST(SpBags, DetectsWriteWriteRace) {
  int x = 0;
  const RaceLog log = Rader::check_spbags([&] {
    spawn([&] { shadow_write(&x, 4); });
    shadow_write(&x, 4);
    sync();
  });
  EXPECT_TRUE(log.any());
}

TEST(SpBags, DetectsReadThenWriteRace) {
  int x = 0;
  const RaceLog log = Rader::check_spbags([&] {
    spawn([&] { shadow_read(&x, 4); });
    shadow_write(&x, 4);
    sync();
  });
  EXPECT_TRUE(log.any());
}

TEST(SpBags, ParallelReadsAreFine) {
  int x = 0;
  const RaceLog log = Rader::check_spbags([&] {
    spawn([&] { shadow_read(&x, 4); });
    spawn([&] { shadow_read(&x, 4); });
    shadow_read(&x, 4);
    sync();
  });
  EXPECT_FALSE(log.any());
}

TEST(SpBags, SyncRestoresSeries) {
  int x = 0;
  const RaceLog log = Rader::check_spbags([&] {
    spawn([&] { shadow_write(&x, 4); });
    sync();
    spawn([&] { shadow_write(&x, 4); });
    sync();
    shadow_write(&x, 4);
  });
  EXPECT_FALSE(log.any());
}

TEST(SpBags, SiblingSpawnsRace) {
  int x = 0;
  const RaceLog log = Rader::check_spbags([&] {
    spawn([&] { shadow_write(&x, 4); });
    spawn([&] { shadow_write(&x, 4); });
    sync();
  });
  EXPECT_TRUE(log.any());
}

TEST(SpBags, CalledChildrenAreSerial) {
  int x = 0;
  const RaceLog log = Rader::check_spbags([&] {
    call([&] { shadow_write(&x, 4); });
    call([&] { shadow_write(&x, 4); });
  });
  EXPECT_FALSE(log.any());
}

TEST(SpBags, SpawnInsideCalledChildStillRaces) {
  int x = 0;
  const RaceLog log = Rader::check_spbags([&] {
    call([&] {
      spawn([&] { shadow_write(&x, 4); });
      shadow_read(&x, 4);
      sync();
    });
  });
  EXPECT_TRUE(log.any());
}

TEST(SpBags, RaceAcrossDeepNesting) {
  int x = 0;
  const RaceLog log = Rader::check_spbags([&] {
    spawn([&] {
      spawn([&] {
        spawn([&] { shadow_write(&x, 4); });
        sync();
      });
      sync();
    });
    shadow_read(&x, 4);
    sync();
  });
  EXPECT_TRUE(log.any());
}

TEST(SpBags, DisjointAddressesNoRace) {
  int x = 0, y = 0;
  const RaceLog log = Rader::check_spbags([&] {
    spawn([&] { shadow_write(&x, 4); });
    shadow_write(&y, 4);
    sync();
  });
  EXPECT_FALSE(log.any());
}

TEST(SpBags, GrandchildJoinedByInnerSyncStillParallelToUncle) {
  // The inner sync joins the grandchild to ITS parent, not to the root:
  // the continuation in root is still parallel to the grandchild's write.
  int x = 0;
  const RaceLog log = Rader::check_spbags([&] {
    spawn([&] {
      spawn([&] { shadow_write(&x, 4); });
      sync();  // joins grandchild to child only
    });
    shadow_read(&x, 4);
    sync();
  });
  EXPECT_TRUE(log.any());
}

}  // namespace
}  // namespace rader
