#include "core/spplus.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"

namespace rader {
namespace {

using SumReducer = reducer<monoid::op_add<long>>;

TEST(SpPlus, EqualsSpBagsUnderNoSteals) {
  // "SP+ under this spec degenerates to the SP-bags algorithm."
  int x = 0;
  const auto racy = [&] {
    spawn([&] { shadow_write(&x, 4); });
    shadow_read(&x, 4);
    sync();
  };
  spec::NoSteal none;
  EXPECT_TRUE(Rader::check_determinacy(racy, none).any());
  EXPECT_TRUE(Rader::check_spbags(racy).any());

  const auto clean = [&] {
    spawn([&] { shadow_write(&x, 4); });
    sync();
    shadow_read(&x, 4);
  };
  EXPECT_FALSE(Rader::check_determinacy(clean, none).any());
}

TEST(SpPlus, ViewObliviousRacesDetectedUnderAnySpec) {
  int x = 0;
  const auto racy = [&] {
    spawn([&] { shadow_write(&x, 4, SrcTag{"w"}); });
    shadow_read(&x, 4, SrcTag{"r"});
    sync();
  };
  const spec::NoSteal none;
  const spec::StealAll all;
  const spec::TripleSteal triple(0, 1, 2);
  const spec::StealSpec* specs[] = {&none, &all, &triple};
  for (const spec::StealSpec* s : specs) {
    EXPECT_TRUE(Rader::check_determinacy(racy, *s).any()) << s->describe();
  }
}

TEST(SpPlus, SameViewUpdatesNeverRace) {
  // Parallel updates through the reducer are exactly what reducers permit:
  // same view ID -> no race, regardless of the spec.
  const auto program = [] {
    SumReducer sum;
    for (int i = 0; i < 4; ++i) {
      spawn([&sum] { sum += 1; });
      sum += 2;
    }
    sync();
    volatile long v = sum.get_value();
    (void)v;
  };
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    spec::BernoulliSteal b(seed, 0.5);
    EXPECT_FALSE(Rader::check_determinacy(program, b).any()) << seed;
  }
  spec::NoSteal none;
  EXPECT_FALSE(Rader::check_determinacy(program, none).any());
}

TEST(SpPlus, ObliviousReadOfViewMemoryRaces) {
  // The Figure-1 bug class in miniature: a stale raw pointer into the
  // leftmost view races with the parallel view-aware update.
  const auto program = [] {
    SumReducer sum;
    spawn([&sum] { sum += 1; });
    shadow_read(sum.hyper_leftmost(), sizeof(long), SrcTag{"stale read"});
    sync();
  };
  spec::NoSteal none;
  EXPECT_TRUE(Rader::check_determinacy(program, none).any());
}

TEST(SpPlus, ReduceWriteCaughtOnlyWhenStealsElicitIt) {
  // A monoid whose Reduce writes a shared global: the racing instruction
  // exists only in executions with at least one steal.
  struct G {
    long v = 0;
  };
  struct g_monoid {
    using value_type = G;
    static G identity() { return {}; }
    static void reduce(G& l, G& r) {
      static long scratch = 0;
      shadow_write(&scratch, sizeof(long), SrcTag{"reduce write"});
      scratch += r.v;
      l.v += r.v;
    }
  };
  static long observer = 0;
  const auto program = [] {
    reducer<g_monoid> red;
    spawn([&red] {
      red.update([](G& g) { g.v += 1; });
    });
    red.update([](G& g) { g.v += 1; });
    sync();
  };
  (void)observer;
  spec::NoSteal none;
  spec::StealAll all;
  // No steals: Reduce never runs, nothing to catch (this is Cilk Screen's
  // blind spot).  With a steal: the reduce runs... but races only against
  // parallel strands touching the same scratch — a single reduce alone is
  // clean.
  EXPECT_FALSE(Rader::check_determinacy(program, none).any());
  EXPECT_FALSE(Rader::check_determinacy(program, all).any());

  // Two sibling reduces (a reduce TREE) write the same scratch: race.
  struct SiblingMergeSpec final : spec::StealSpec {
    bool steal(const spec::PointCtx&) const override { return true; }
    std::uint32_t merges_now(const spec::PointCtx& c) const override {
      return (c.cont_index == 2 && c.live_epochs >= 2) ? 1u : 0u;
    }
    std::string describe() const override { return "sibling-merge"; }
  } sibling_spec;
  const auto wide = [] {
    reducer<g_monoid> red;
    for (int i = 0; i < 4; ++i) {
      spawn([&red] {
        red.update([](G& g) { g.v += 1; });
      });
      red.update([](G& g) { g.v += 1; });
    }
    sync();
  };
  EXPECT_TRUE(Rader::check_determinacy(wide, sibling_spec).any());
}

TEST(SpPlus, StolenContinuationParallelWithChildAcrossViews) {
  // An update in a STOLEN continuation and an oblivious access in the child
  // race exactly as plain accesses do.
  int x = 0;
  const auto program = [&] {
    SumReducer sum;
    spawn([&] { shadow_write(&x, 4, SrcTag{"child write x"}); });
    shadow_read(&x, 4, SrcTag{"continuation read x"});
    sync();
  };
  spec::StealAll all;
  EXPECT_TRUE(Rader::check_determinacy(program, all).any());
}

TEST(SpPlus, UpdateStrandsOnDifferentViewsOfSameAddressRace) {
  // Two view-aware strands with DIFFERENT view IDs that touch the same
  // address race (they are not serialized by any view).  Construct via a
  // monoid whose update writes a shared static (pathological on purpose).
  struct S {
    long v = 0;
  };
  static long shared_loc = 0;
  struct s_monoid {
    using value_type = S;
    static S identity() { return {}; }
    static void reduce(S& l, S& r) { l.v += r.v; }
  };
  const auto program = [] {
    reducer<s_monoid> red;
    spawn([&red] {
      red.update([](S& s) {
        shadow_write(&shared_loc, sizeof(long), SrcTag{"child update"});
        s.v += 1;
      });
    });
    red.update([](S& s) {
      shadow_write(&shared_loc, sizeof(long), SrcTag{"continuation update"});
      s.v += 1;
    });
    sync();
  };
  // No steal: both updates share the view -> same vid -> NOT a race.
  spec::NoSteal none;
  EXPECT_FALSE(Rader::check_determinacy(program, none).any());
  // Stolen continuation: different views -> race.
  spec::StealAll all;
  EXPECT_TRUE(Rader::check_determinacy(program, all).any());
}

TEST(SpPlus, AccessAfterSyncSerialWithEverything) {
  const auto program = [] {
    static int x = 0;
    SumReducer sum;
    spawn([&sum] {
      shadow_write(&x, 4);
      sum += 1;
    });
    sum += 2;
    sync();
    shadow_write(&x, 4);  // after sync: in series with the child's write
    volatile long v = sum.get_value();
    (void)v;
  };
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    spec::BernoulliSteal b(seed, 0.6);
    EXPECT_FALSE(Rader::check_determinacy(program, b).any()) << seed;
  }
}

TEST(SpPlus, ReduceStrandSerializesWithMergedViewsDescendants) {
  // Section 6 walkthrough: a reduce strand writing a location last written
  // by a strand whose view it merges is NOT a race (same view after the
  // union); against a strand in a different P bag it IS.
  struct V {
    long v = 0;
    long* touch = nullptr;  // address the update writes, captured per view
  };
  static long loc_child = 0;
  struct v_monoid {
    using value_type = V;
    static V identity() { return {}; }
    static void reduce(V& l, V& r) {
      // The reduce re-writes whatever location the right view touched:
      // serialized with r's updaters via the view union.
      if (r.touch != nullptr) {
        shadow_write(r.touch, sizeof(long), SrcTag{"reduce rewrite"});
        *r.touch += 1;
      }
      l.v += r.v;
    }
  };
  const auto program = [] {
    reducer<v_monoid> red;
    spawn([&red] {
      red.update([](V& view) {
        shadow_write(&loc_child, sizeof(long), SrcTag{"child update"});
        loc_child += 1;
        view.touch = &loc_child;
        view.v += 1;
      });
    });
    red.update([](V& view) {
      shadow_write(&loc_child, sizeof(long), SrcTag{"cont update"});
      loc_child += 1;
      view.touch = &loc_child;
      view.v += 1;
    });
    sync();
  };
  // Stolen continuation: child updates the leftmost view (vid 0), the
  // continuation updates a new view (vid 1); the reduce merges them and
  // re-writes loc_child.  The reduce strand runs with the surviving vid 0;
  // the last writer (cont update, vid 1)... is in the P bag being merged —
  // after the union it shares the reduce's view, so no race is reported;
  // and the child's earlier write shares vid 0.  Everything serializes.
  //
  // But the two UPDATES themselves (vid 0 vs vid 1) race on loc_child —
  // which is the real bug this pathological monoid has.
  spec::StealAll all;
  const RaceLog log = Rader::check_determinacy(program, all);
  EXPECT_TRUE(log.any());
  // The reported race is between the updates, not the reduce: the reduce's
  // write must not be reported against the merged views.  (The dedup keeps
  // one report per address; check the current label is an update.)
  ASSERT_FALSE(log.determinacy_races().empty());
  EXPECT_EQ(log.determinacy_races()[0].current_label, std::string("cont update"));
}

}  // namespace
}  // namespace rader
