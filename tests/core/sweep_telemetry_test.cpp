// Sweep accounting and telemetry: the --stop-first invariants the JSON
// report relies on (spec_runs + specs_skipped == family size; replay
// handles only from the executed prefix's racy specs), invariance across
// thread counts, and the --progress heartbeat stream.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/mylist.hpp"
#include "core/driver.hpp"
#include "core/report_json.hpp"
#include "core/sweep.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

using apps::list_monoid;
using apps::MyList;

// The Figure 1 program again (fig_examples_test.cpp): clean serially, racy
// only under steal specs — which makes the stop-first prefix nontrivial.
void update_list(int n, MyList& list) {
  call([&] {
    reducer<list_monoid> list_reducer(SrcTag{"list_reducer"});
    list_reducer.set_value(list, SrcTag{"set_value(list)"});
    parallel_for_flat<int>(
        0, n,
        [&](int i) {
          list_reducer.update([&](MyList& view) { view.insert(i); },
                              SrcTag{"list insert"});
        },
        /*chunks=*/6);
    sync();
    list = list_reducer.take_value(SrcTag{"get_value()"});
  });
}

void race_fig1(int n, MyList& list) {
  int length = 0;
  MyList copy(list);  // BUG: shallow copy
  spawn([&] { length = list.scan(SrcTag{"scan_list"}); });
  update_list(n, copy);
  sync();
  (void)length;
}

struct Fig1Instance {
  MyList owned;
  apps::ListNode* owned_tail = nullptr;
  Fig1Instance() {
    for (int i = 0; i < 8; ++i) owned.insert(100 + i);
    auto* n = const_cast<apps::ListNode*>(owned.head());
    while (n->next != nullptr) n = n->next;
    owned_tail = n;
  }
  ~Fig1Instance() { owned.destroy(); }
  void operator()() {
    MyList working = owned;
    race_fig1(6, working);
    // The Reduce-side concat appends onto `owned`'s tail through the shallow
    // copies.  Detach the appendage so every run observes the identical
    // 8-node list: sweep workers reuse one instance across family members,
    // so sweep programs must be re-runnable (tools/rader_cli.cpp does the
    // same for the CLI's fig1 target).
    owned_tail->next = nullptr;
  }
};

ProgramFactory fig1_factory() {
  return [] {
    auto p = std::make_shared<Fig1Instance>();
    return std::function<void()>([p] { (*p)(); });
  };
}

/// Family whose first racy member sits at index 2: two spec that cannot
/// steal anything, then the Figure 1 eliciting triple, then two more
/// racy specs that a stop-first sweep must skip.
std::vector<std::unique_ptr<spec::StealSpec>> mixed_family() {
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());
  family.push_back(std::make_unique<spec::DepthSteal>(99));  // never fires
  family.push_back(std::make_unique<spec::TripleSteal>(0, 1, 2));
  family.push_back(std::make_unique<spec::StealAll>());
  family.push_back(std::make_unique<spec::TripleSteal>(1, 2, 3));
  return family;
}

TEST(SweepStopFirst, AccountingPartitionsTheFamily) {
  const auto family = mixed_family();
  for (const unsigned threads : {1u, 2u, 4u}) {
    SweepOptions opt;
    opt.threads = threads;
    opt.stop_after_first_race = true;
    const SweepResult result = sweep_family(fig1_factory(), family, opt);
    // The executed prefix is [0, 2]: both clean specs plus the first racy
    // member; everything after it is skipped.  The partition invariant the
    // JSON "sweep" block exposes must hold exactly.
    EXPECT_EQ(result.spec_runs, 3u) << "threads=" << threads;
    EXPECT_EQ(result.specs_skipped, 2u) << "threads=" << threads;
    EXPECT_EQ(result.spec_runs + result.specs_skipped, family.size());
    EXPECT_TRUE(result.log.any());
    // Replay handles name only the prefix's racy specs — never a skipped
    // spec, never a clean one.
    for (const std::string& h : replay_handles(result.log)) {
      EXPECT_EQ(h, "steal-triple(0,1,2)") << "threads=" << threads;
    }
  }
}

TEST(SweepStopFirst, BudgetCapsBeforeTheRacySpec) {
  const auto family = mixed_family();
  SweepOptions opt;
  opt.threads = 2;
  opt.stop_after_first_race = true;
  opt.budget = 2;  // only the two clean members run
  const SweepResult result = sweep_family(fig1_factory(), family, opt);
  EXPECT_EQ(result.spec_runs, 2u);
  EXPECT_EQ(result.specs_skipped, 3u);
  EXPECT_EQ(result.spec_runs + result.specs_skipped, family.size());
  EXPECT_FALSE(result.log.any());
  EXPECT_TRUE(replay_handles(result.log).empty());
}

TEST(SweepStopFirst, FullSweepStillPartitions) {
  const auto family = mixed_family();
  SweepOptions opt;
  opt.threads = 2;
  const SweepResult result = sweep_family(fig1_factory(), family, opt);
  EXPECT_EQ(result.spec_runs, family.size());
  EXPECT_EQ(result.specs_skipped, 0u);
  // All three racy specs appear as replay handles now.
  const auto handles = replay_handles(result.log);
  EXPECT_FALSE(handles.empty());
  for (const std::string& h : handles) {
    EXPECT_TRUE(h == "steal-triple(0,1,2)" || h == "steal-all" ||
                h == "steal-triple(1,2,3)")
        << h;
  }
}

TEST(SweepProgress, HeartbeatAndSummaryLinesAreEmitted) {
  const auto family = mixed_family();
  std::ostringstream captured;
  SweepOptions opt;
  opt.threads = 2;
  opt.progress = true;
  opt.progress_interval_ms = 1;  // fast sweep: force at least the summary
  opt.progress_out = &captured;
  const SweepResult result = sweep_family(fig1_factory(), family, opt);
  EXPECT_EQ(result.spec_runs, family.size());
  const std::string out = captured.str();
  // The final summary line is always printed, with totals, throughput and
  // the per-worker breakdown.
  EXPECT_NE(out.find("sweep done: 5/5 specs ("), std::string::npos) << out;
  EXPECT_NE(out.find("specs/s"), std::string::npos);
  // The racy-spec count matches what checking each member serially finds.
  std::size_t expected_racy = 0;
  for (const auto& s : family) {
    if (Rader::check_determinacy(fig1_factory()(), *s).any()) ++expected_racy;
  }
  EXPECT_GE(expected_racy, 1u);
  EXPECT_NE(out.find("racy " + std::to_string(expected_racy)),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("[w0:"), std::string::npos);
  EXPECT_NE(out.find("w1:"), std::string::npos);
}

// Degenerate families used to hit zero denominators in the heartbeat math
// (size-0/size-1 families and sub-interval completions divided by a zero
// elapsed time / zero remaining count): the stream must stay finite.
TEST(SweepProgress, SingleSpecFamilyEmitsFiniteNumbersOnly) {
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());
  std::ostringstream captured;
  SweepOptions opt;
  opt.threads = 1;
  opt.progress = true;
  opt.progress_interval_ms = 1;
  opt.progress_out = &captured;
  const SweepResult result = sweep_family(fig1_factory(), family, opt);
  EXPECT_EQ(result.spec_runs, 1u);
  const std::string out = captured.str();
  EXPECT_NE(out.find("1/1 specs"), std::string::npos) << out;
  EXPECT_EQ(out.find("nan"), std::string::npos) << out;
  EXPECT_EQ(out.find("inf"), std::string::npos) << out;
}

TEST(SweepProgress, DisabledByDefault) {
  const auto family = mixed_family();
  std::ostringstream captured;
  SweepOptions opt;
  opt.threads = 1;
  opt.progress_out = &captured;  // progress stays false
  (void)sweep_family(fig1_factory(), family, opt);
  EXPECT_TRUE(captured.str().empty());
}

// Metric conservation: however the family is sharded (jobs) and executed
// (strategy), the folded counters must account for exactly the work the
// sweep reports, and every flow gauge must return to zero once the workers
// quiesce.
TEST(SweepMetrics, ConservationAcrossJobsAndStrategies) {
  const auto family = mixed_family();
  for (const SweepStrategy strategy :
       {SweepStrategy::kRerun, SweepStrategy::kPrefix}) {
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      SweepOptions opt;
      opt.threads = threads;
      opt.strategy = strategy;
      const SweepResult result = sweep_family(fig1_factory(), family, opt);
      const char* tag =
          strategy == SweepStrategy::kRerun ? "rerun" : "prefix";
      EXPECT_EQ(result.spec_runs, family.size())
          << tag << " threads=" << threads;
      // Counter conservation: every accounted member was either executed
      // (kSpecRuns) or satisfied by the prefix dedup shortcut
      // (kSweepDedupReuses) — nothing double-counted, nothing lost.
      EXPECT_EQ(result.metrics.counter(metrics::Counter::kSpecRuns) +
                    result.metrics.counter(
                        metrics::Counter::kSweepDedupReuses),
                result.spec_runs)
          << tag << " threads=" << threads;
      if (strategy == SweepStrategy::kRerun) {
        EXPECT_EQ(
            result.metrics.counter(metrics::Counter::kSweepDedupReuses), 0u)
            << "threads=" << threads;
      }
      // Flow gauges fold to zero after quiesce: every prefix checkpoint
      // retained during the run was dropped again.
      const metrics::GaugeCell& live =
          result.metrics.gauge(metrics::Gauge::kSweepCheckpointsLive);
      EXPECT_EQ(live.value, 0) << tag << " threads=" << threads;
      if (strategy == SweepStrategy::kPrefix) {
        EXPECT_GT(live.max, 0) << "prefix threads=" << threads;
      }
      // Histogram conservation (rerun only: the prefix strategy times its
      // resumed tails differently): one kSpecRunNanos observation per run.
      if (strategy == SweepStrategy::kRerun) {
        EXPECT_EQ(result.metrics.hist(metrics::Histogram::kSpecRunNanos)
                      .count,
                  result.spec_runs)
            << "threads=" << threads;
      }
    }
  }
}

TEST(SweepMetrics, JsonlSamplerWritesAQuiescedFinalSample) {
  const auto family = mixed_family();
  std::ostringstream samples;
  SweepOptions opt;
  opt.threads = 2;
  opt.metrics_out = &samples;
  opt.metrics_interval_ms = 1;
  const SweepResult result = sweep_family(fig1_factory(), family, opt);
  EXPECT_EQ(result.spec_runs, family.size());
  // At least the final quiesced sample was appended; the last line reports
  // the complete sweep and the exact folded spec_runs counter.
  std::istringstream in(samples.str());
  std::string line;
  std::string last;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"t_ms\":"), std::string::npos);
    last = line;
  }
  ASSERT_GE(lines, 1u);
  EXPECT_NE(last.find("\"done\":5"), std::string::npos) << last;
  EXPECT_NE(last.find("\"total\":5"), std::string::npos) << last;
  EXPECT_NE(last.find("\"sweep.spec_runs\":5"), std::string::npos) << last;
}

TEST(SweepWatchdog, FiresAPostmortemWhenNoSpecCompletes) {
  // One spec whose execution stalls well past the watchdog deadline.
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());

  char path[] = "/tmp/rader_watchdog_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);

  SweepOptions opt;
  opt.threads = 1;
  opt.watchdog_ms = 20;
  opt.watchdog_fd = fd;
  const SweepResult result = sweep_family(
      shared_program([] {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
      }),
      family, opt);
  EXPECT_EQ(result.spec_runs, 1u);
  // The monitor observed the stall, dumped once, and accounted for it.
  EXPECT_GE(result.metrics.counter(metrics::Counter::kPostmortemDumps), 1u);

  std::string report;
  char buf[4096];
  ::lseek(fd, 0, SEEK_SET);
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) report.append(buf, n);
  ::close(fd);
  ::unlink(path);
  EXPECT_NE(report.find("watchdog"), std::string::npos) << report;
  EXPECT_NE(report.find("sweep"), std::string::npos) << report;
  // The in-flight table names the stalled spec.
  EXPECT_NE(report.find("spec[0] no-steals"), std::string::npos) << report;
}

TEST(SweepWatchdog, QuietWhenSpecsCompleteInTime) {
  const auto family = mixed_family();
  char path[] = "/tmp/rader_watchdog_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  SweepOptions opt;
  opt.threads = 2;
  opt.watchdog_ms = 60'000;  // far beyond the sweep's wall time
  opt.watchdog_fd = fd;
  const SweepResult result = sweep_family(fig1_factory(), family, opt);
  EXPECT_EQ(result.spec_runs, family.size());
  EXPECT_EQ(result.metrics.counter(metrics::Counter::kPostmortemDumps), 0u);
  ::lseek(fd, 0, SEEK_SET);
  char buf[8];
  EXPECT_EQ(::read(fd, buf, sizeof buf), 0);  // nothing written
  ::close(fd);
  ::unlink(path);
}

}  // namespace
}  // namespace rader
