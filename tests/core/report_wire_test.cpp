// The cross-process wire codecs (core/report_wire.hpp): the fidelity
// contract that makes the crash-isolated sweep's surviving-spec merge
// byte-identical to the in-process sweep's.
#include "core/report_wire.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/driver.hpp"
#include "core/race_report.hpp"
#include "runtime/api.hpp"
#include "spec/steal_spec.hpp"
#include "support/metrics.hpp"

namespace rader {
namespace {

int g_a = 0;

void racy_program() {
  spawn([] { shadow_write(&g_a, 4, SrcTag{"writer"}); });
  shadow_read(&g_a, 4, SrcTag{"reader"});
  sync();
}

RaceLog detect_under(const spec::StealSpec& s) {
  return Rader::check_determinacy([] { racy_program(); }, s);
}

TEST(ReportWire, RaceLogRoundTripsByteIdentical) {
  spec::TripleSteal triple(0, 1, 2);
  const RaceLog log = detect_under(triple);
  ASSERT_TRUE(log.any());

  RaceLog restored;
  std::string error;
  ASSERT_TRUE(race_log_from_json(log.to_json(), &restored, &error)) << error;
  EXPECT_EQ(restored.to_json(), log.to_json());
  EXPECT_EQ(restored.determinacy_count(), log.determinacy_count());
  EXPECT_EQ(restored.view_read_count(), log.view_read_count());
}

TEST(ReportWire, RestoredLogMergesLikeTheOriginal) {
  // The supervisor merges restored per-spec logs in family order; the result
  // must match merging the originals — dedup keys, eliciting-spec unions,
  // and occurrence arithmetic all have to survive the wire.
  spec::TripleSteal triple(0, 1, 2);
  spec::StealAll all;
  const RaceLog log_a = detect_under(triple);
  const RaceLog log_b = detect_under(all);
  ASSERT_TRUE(log_a.any());
  ASSERT_TRUE(log_b.any());

  RaceLog direct;
  direct.merge(log_a);
  direct.merge(log_b);

  RaceLog wire_a, wire_b;
  ASSERT_TRUE(race_log_from_json(log_a.to_json(), &wire_a));
  ASSERT_TRUE(race_log_from_json(log_b.to_json(), &wire_b));
  RaceLog via_wire;
  via_wire.merge(wire_a);
  via_wire.merge(wire_b);

  EXPECT_EQ(via_wire.to_json(), direct.to_json());
}

TEST(ReportWire, CapDroppedOccurrenceTotalsSurvive) {
  // A log whose stored-report cap dropped identities still tallies their
  // occurrences in the global counters; the reconstruction must preserve
  // the totals or cross-process merge arithmetic drifts.
  RaceLog tiny(1);  // store at most one report
  for (int i = 0; i < 3; ++i) {
    auto r = make_determinacy_race(0x1000 + static_cast<std::uintptr_t>(i),
                                   AccessKind::kRead, false, true, 1, 2,
                                   "label-" + std::to_string(i));
    tiny.report_determinacy(r);
  }
  tiny.stamp_found_under("no-steals");
  ASSERT_EQ(tiny.determinacy_races().size(), 1u);
  ASSERT_EQ(tiny.determinacy_count(), 3u);

  RaceLog restored;
  ASSERT_TRUE(race_log_from_json(tiny.to_json(), &restored));
  EXPECT_EQ(restored.determinacy_count(), 3u);
  EXPECT_EQ(restored.to_json(), tiny.to_json());
}

TEST(ReportWire, EmptyLogRoundTrips) {
  RaceLog empty;
  RaceLog restored;
  ASSERT_TRUE(race_log_from_json(empty.to_json(), &restored));
  EXPECT_FALSE(restored.any());
  EXPECT_EQ(restored.to_json(), empty.to_json());
}

TEST(ReportWire, MalformedJsonIsRejectedNotThrown) {
  RaceLog out;
  std::string error;
  EXPECT_FALSE(race_log_from_json("", &out, &error));
  EXPECT_FALSE(race_log_from_json("not json at all", &out, &error));
  EXPECT_FALSE(race_log_from_json("{\"view_read_occurrences\":", &out,
                                  &error));
  EXPECT_FALSE(error.empty());
  // Truncated mid-array: a crashing child can tear its last line.
  spec::StealAll all;
  const std::string good = detect_under(all).to_json();
  EXPECT_FALSE(
      race_log_from_json(good.substr(0, good.size() / 2), &out, &error));
}

TEST(ReportWire, SnapshotRoundTripsEveryBlock) {
  metrics::Snapshot snap;
  for (unsigned i = 0; i < metrics::kCounterCount; ++i) {
    snap.counters[i] = 100 + i;
  }
  for (unsigned i = 0; i < metrics::kPhaseCount; ++i) {
    snap.phase_nanos[i] = 7'000'000ull * (i + 1);
  }
  for (unsigned i = 0; i < metrics::kGaugeCount; ++i) {
    snap.gauges[i].value = 3 + i;
    snap.gauges[i].max = 9 + i;
  }
  for (unsigned i = 0; i < metrics::kHistogramCount; ++i) {
    snap.hists[i].count = 2;
    snap.hists[i].sum = 3000ull * (i + 1);
    snap.hists[i].buckets[i % metrics::kHistogramBuckets] = 2;
  }
  const std::string wire = snapshot_to_wire(snap);
  metrics::Snapshot restored;
  ASSERT_TRUE(snapshot_from_wire(wire, &restored));
  EXPECT_EQ(snapshot_to_wire(restored), wire);
  EXPECT_EQ(restored.counters[0], snap.counters[0]);
  EXPECT_EQ(restored.gauges[0].max, snap.gauges[0].max);
}

TEST(ReportWire, SnapshotWireRejectsWordCountMismatch) {
  metrics::Snapshot snap;
  const std::string wire = snapshot_to_wire(snap);
  metrics::Snapshot out;
  EXPECT_FALSE(snapshot_from_wire("", &out));
  EXPECT_FALSE(snapshot_from_wire("3 1 2", &out));
  EXPECT_FALSE(snapshot_from_wire(wire + " 42", &out));
  EXPECT_FALSE(snapshot_from_wire(wire.substr(0, wire.size() / 2), &out));
}

}  // namespace
}  // namespace rader
