// The Section-7 motivation, as a regression test: a view-aware instruction
// that executes only on stolen schedules (lazy per-view initialization of
// shared state) is invisible to every serial-schedule checker but is found
// by the exhaustive steal-specification family.
#include <gtest/gtest.h>

#include <vector>

#include "core/driver.hpp"
#include "core/sporder.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"

namespace rader {
namespace {

long g_header = 0;

struct EventLog {
  std::vector<int> items;
};

struct log_monoid {
  using value_type = EventLog;
  static EventLog identity() { return {}; }
  static void reduce(EventLog& left, EventLog& right) {
    left.items.insert(left.items.end(), right.items.begin(),
                      right.items.end());
  }
};

void lazy_init_program() {
  g_header = 0;
  reducer<log_monoid> log(SrcTag{"event log"});
  const auto append = [&](int i) {
    log.update([&](EventLog& view) {
      if (view.items.empty()) {
        shadow_write(&g_header, sizeof(g_header), SrcTag{"header init"});
        g_header += 1;
      }
      view.items.push_back(i);
    });
  };
  append(-1);  // serial-schedule initialization, before any spawn
  spawn([&] {
    shadow_read(&g_header, sizeof(g_header), SrcTag{"header read"});
  });
  for (int i = 0; i < 5; ++i) {
    spawn([] {});
    append(i);
  }
  sync();
  volatile std::size_t n = log.get_value().items.size();
  (void)n;
}

TEST(ScheduleDependentBug, InvisibleToEverySerialScheduleChecker) {
  const auto prog = [] { lazy_init_program(); };
  spec::NoSteal none;
  EXPECT_FALSE(Rader::check_determinacy(prog, none).any());
  EXPECT_FALSE(Rader::check_spbags(prog).any());
  {
    RaceLog log;
    SpOrderDetector detector(&log);
    run_serial(prog, &detector, &none);
    EXPECT_FALSE(log.any());
  }
  EXPECT_FALSE(Rader::check_view_read(prog).any());
}

TEST(ScheduleDependentBug, ElicitedByASingleDepthSteal) {
  // Any steal of a later continuation re-runs the lazy initialization on a
  // fresh view, in parallel with the reader.
  const auto prog = [] { lazy_init_program(); };
  spec::DepthSteal depth(3);
  const RaceLog log = Rader::check_determinacy(prog, depth);
  EXPECT_TRUE(log.any());
  ASSERT_FALSE(log.determinacy_races().empty());
  EXPECT_EQ(log.determinacy_races()[0].addr,
            reinterpret_cast<std::uintptr_t>(&g_header));
  EXPECT_TRUE(log.determinacy_races()[0].current_view_aware);
}

TEST(ScheduleDependentBug, FoundByTheExhaustiveFamily) {
  const auto result = Rader::check_exhaustive([] { lazy_init_program(); });
  EXPECT_TRUE(result.log.determinacy_count() > 0);
  EXPECT_EQ(result.log.view_read_count(), 0u);
}

}  // namespace
}  // namespace rader
