// The machine-readable report emitter (core/report_json.hpp) and the spec
// handle round trip (spec::from_description) that powers `rader --replay`.
#include "core/report_json.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/driver.hpp"
#include "runtime/api.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

int g_slot = 0;

void racy_program() {
  spawn([] { shadow_write(&g_slot, 4, SrcTag{"writer"}); });
  shadow_read(&g_slot, 4, SrcTag{"reader"});
  sync();
}

TEST(ReportJson, SchemaEnvelopePresent) {
  spec::TripleSteal triple(0, 1, 2);
  const RaceLog log =
      Rader::check_determinacy([] { racy_program(); }, triple);
  ASSERT_TRUE(log.any());

  ReportMeta meta;
  meta.program = "unit";
  meta.check = "sp+";
  meta.spec = triple.describe();
  const std::string json = report_json(meta, log);

  EXPECT_NE(json.find("\"schema\":\"rader.report\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\":5"), std::string::npos);
  EXPECT_NE(json.find("\"program\":\"unit\""), std::string::npos);
  EXPECT_NE(json.find("\"check\":\"sp+\""), std::string::npos);
  EXPECT_NE(json.find("\"spec\":\"steal-triple(0,1,2)\""), std::string::npos);
  // The races block embeds RaceLog::to_json() verbatim.
  EXPECT_NE(json.find("\"races\":{\"view_read_occurrences\":"),
            std::string::npos);
  EXPECT_NE(json.find("\"replay_handles\":[\"steal-triple(0,1,2)\"]"),
            std::string::npos);
  // No metrics snapshot was supplied.
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
  // No sweep block for a single-spec run.
  EXPECT_EQ(json.find("\"sweep\""), std::string::npos);
}

TEST(ReportJson, SweepBlockAndMetricsWhenProvided) {
  ReportMeta meta;
  meta.program = "p";
  meta.check = "exhaustive";
  meta.has_sweep = true;
  meta.jobs = 4;
  meta.budget = 10;
  meta.stop_first = true;
  meta.k = 3;
  meta.depth = 2;
  meta.spec_runs = 7;
  meta.specs_skipped = 3;
  RaceLog empty;
  metrics::Snapshot snap;
  snap.counters[0] = 42;
  const std::string json = report_json(meta, empty, &snap);
  EXPECT_NE(json.find("\"sweep\":{\"jobs\":4,\"budget\":10,"
                      "\"stop_first\":true,\"k\":3,\"depth\":2,"
                      "\"spec_runs\":7,\"specs_skipped\":3,"
                      "\"failures\":[]}"),
            std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"replay_handles\":[]"), std::string::npos);
}

TEST(ReportJson, SweepFailuresSerializeQuarantinedSpecs) {
  ReportMeta meta;
  meta.program = "p";
  meta.check = "exhaustive";
  meta.has_sweep = true;
  meta.jobs = 2;
  SweepFailure f;
  f.index = 7;
  f.spec = "steal-triple(0,1,2)";
  f.cause = "signal";
  f.signal = 11;
  f.retries = 1;
  f.postmortem = "/tmp/child-7-0.postmortem";
  meta.failures.push_back(f);
  f.index = 9;
  f.spec = "steal-depth(3)";
  f.cause = "timeout";
  f.signal = 0;
  f.retries = 2;
  f.postmortem.clear();
  meta.failures.push_back(f);
  RaceLog empty;
  const std::string json = report_json(meta, empty);
  EXPECT_NE(
      json.find("\"failures\":[{\"spec\":\"steal-triple(0,1,2)\",\"index\":7,"
                "\"cause\":\"signal\",\"signal\":11,\"retries\":1,"
                "\"postmortem\":\"/tmp/child-7-0.postmortem\"},"
                "{\"spec\":\"steal-depth(3)\",\"index\":9,"
                "\"cause\":\"timeout\",\"signal\":0,\"retries\":2,"
                "\"postmortem\":\"\"}]"),
      std::string::npos);
}

TEST(ReportJson, ReproFileStampAppearsInV3Races) {
  spec::StealAll all;
  RaceLog log = Rader::check_determinacy([] { racy_program(); }, all);
  ASSERT_TRUE(log.any());
  // Absent until stamped (the member is optional in the v3 schema).
  EXPECT_EQ(log.to_json().find("\"repro_file\""), std::string::npos);

  log.stamp_repro_file("corpus/min.rprog");
  const std::string json = log.to_json();
  EXPECT_NE(json.find("\"repro_file\":\"corpus/min.rprog\""),
            std::string::npos);

  // stamp fills only empty fields: a second stamp must not overwrite.
  log.stamp_repro_file("other.rprog");
  EXPECT_EQ(log.to_json().find("other.rprog"), std::string::npos);
}

TEST(ReportJson, ReplayHandlesAreDedupedFoundUnders) {
  spec::StealAll all;
  const RaceLog log = Rader::check_determinacy([] { racy_program(); }, all);
  ASSERT_TRUE(log.any());
  const auto handles = replay_handles(log);
  ASSERT_EQ(handles.size(), 1u);  // every race found under the same spec
  EXPECT_EQ(handles[0], "steal-all");
}

TEST(SpecFromDescription, RoundTripsEveryHandleForm) {
  std::vector<std::unique_ptr<spec::StealSpec>> specs;
  specs.push_back(std::make_unique<spec::NoSteal>());
  specs.push_back(std::make_unique<spec::StealAll>());
  specs.push_back(std::make_unique<spec::TripleSteal>(0, 3, 7));
  specs.push_back(std::make_unique<spec::DepthSteal>(12));
  specs.push_back(std::make_unique<spec::RandomTripleSteal>(99, 16));
  specs.push_back(std::make_unique<spec::BernoulliSteal>(7, 0.25));
  for (const auto& s : specs) {
    const std::string handle = s->describe();
    const auto parsed = spec::from_description(handle);
    ASSERT_NE(parsed, nullptr) << handle;
    EXPECT_EQ(parsed->describe(), handle);
  }
}

TEST(SpecFromDescription, ParsedSpecBehavesLikeTheOriginal) {
  // Behavioral equality, not just textual: the replayed spec must make the
  // same steal decisions at every point.
  spec::RandomTripleSteal original(1234, 8);
  const auto parsed = spec::from_description(original.describe());
  ASSERT_NE(parsed, nullptr);
  for (std::uint32_t frame = 0; frame < 4; ++frame) {
    for (std::uint32_t cont = 0; cont < 8; ++cont) {
      spec::PointCtx ctx;
      ctx.frame = frame;
      ctx.sync_block = frame;
      ctx.cont_index = cont;
      ctx.live_epochs = 2;
      EXPECT_EQ(parsed->steal(ctx), original.steal(ctx));
      EXPECT_EQ(parsed->merges_now(ctx), original.merges_now(ctx));
    }
  }
}

TEST(SpecFromDescription, RejectsMalformedHandles) {
  EXPECT_EQ(spec::from_description(""), nullptr);
  EXPECT_EQ(spec::from_description("bogus"), nullptr);
  EXPECT_EQ(spec::from_description("steal-triple(0,1)"), nullptr);
  EXPECT_EQ(spec::from_description("steal-triple(0,1,2)junk"), nullptr);
  EXPECT_EQ(spec::from_description("steal-depth()"), nullptr);
  EXPECT_EQ(spec::from_description("no-steals "), nullptr);
}

}  // namespace
}  // namespace rader
