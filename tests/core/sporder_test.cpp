#include "core/sporder.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "core/spbags.hpp"
#include "runtime/api.hpp"
#include "runtime/run.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

RaceLog check(FnView program) {
  RaceLog log;
  SpOrderDetector detector(&log);
  spec::NoSteal none;
  run_serial(program, &detector, &none);
  return log;
}

TEST(SpOrder, CleanSpawnSyncProgram) {
  int x = 0;
  EXPECT_FALSE(check([&] {
    shadow_write(&x, 4);
    spawn([] {});
    sync();
    shadow_read(&x, 4);
  }).any());
}

TEST(SpOrder, DetectsWriteReadRace) {
  int x = 0;
  const RaceLog log = check([&] {
    spawn([&] { shadow_write(&x, 4, SrcTag{"w"}); });
    shadow_read(&x, 4, SrcTag{"r"});
    sync();
  });
  EXPECT_EQ(log.determinacy_count(), 4u);
}

TEST(SpOrder, SiblingSpawnsRace) {
  int x = 0;
  EXPECT_TRUE(check([&] {
    spawn([&] { shadow_write(&x, 4); });
    spawn([&] { shadow_write(&x, 4); });
    sync();
  }).any());
}

TEST(SpOrder, SyncSerializes) {
  int x = 0;
  EXPECT_FALSE(check([&] {
    spawn([&] { shadow_write(&x, 4); });
    sync();
    spawn([&] { shadow_write(&x, 4); });
    sync();
    shadow_write(&x, 4);
  }).any());
}

TEST(SpOrder, CalledChildrenAreSerial) {
  int x = 0;
  EXPECT_FALSE(check([&] {
    call([&] { shadow_write(&x, 4); });
    call([&] { shadow_write(&x, 4); });
    shadow_write(&x, 4);
  }).any());
}

TEST(SpOrder, SpawnInsideCalledChildRaces) {
  int x = 0;
  EXPECT_TRUE(check([&] {
    call([&] {
      spawn([&] { shadow_write(&x, 4); });
      shadow_read(&x, 4);
      sync();
    });
  }).any());
}

TEST(SpOrder, InnerSyncDoesNotJoinToUncle) {
  int x = 0;
  EXPECT_TRUE(check([&] {
    spawn([&] {
      spawn([&] { shadow_write(&x, 4); });
      sync();  // joins grandchild to the child only
    });
    shadow_read(&x, 4);
    sync();
  }).any());
}

TEST(SpOrder, AccessAfterChildReturnButBeforeSyncStillRaces) {
  // The continuation resumes the SAME logical strand interval created at
  // the spawn: still parallel with the child.
  int x = 0;
  EXPECT_TRUE(check([&] {
    spawn([&] { shadow_write(&x, 4); });
    // (child has returned in serial execution order, but no sync yet)
    shadow_read(&x, 4);
    sync();
  }).any());
}

TEST(SpOrder, SameStrandRepeatedAccessesAreFine) {
  int x = 0;
  EXPECT_FALSE(check([&] {
    shadow_write(&x, 4);
    shadow_write(&x, 4);
    shadow_read(&x, 4);
    spawn([] {});
    sync();
    shadow_write(&x, 4);
    shadow_write(&x, 4);
  }).any());
}

TEST(SpOrder, SeparatedSiblingSubtreesDeepRace) {
  int x = 0;
  EXPECT_TRUE(check([&] {
    spawn([&] {
      call([&] {
        spawn([&] { shadow_write(&x, 4); });
        sync();
      });
    });
    spawn([&] {
      call([&] { shadow_read(&x, 4); });
    });
    sync();
  }).any());
}

TEST(SpOrder, AgreesWithSpBagsVerdictOnMixedPrograms) {
  int x = 0, y = 0;
  const auto programs = {
      std::function<void()>([&] {
        spawn([&] { shadow_write(&x, 4); });
        shadow_write(&y, 4);
        sync();
        shadow_read(&x, 4);
      }),
      std::function<void()>([&] {
        for (int i = 0; i < 4; ++i) {
          spawn([&] { shadow_read(&x, 4); });
        }
        shadow_write(&x, 4);
        sync();
      }),
      std::function<void()>([&] {
        call([&] {
          spawn([&] { shadow_write(&y, 4); });
          sync();
        });
        shadow_write(&y, 4);
      }),
  };
  for (const auto& p : programs) {
    RaceLog bags_log, order_log;
    {
      SpBagsDetector d(&bags_log);
      spec::NoSteal none;
      run_serial([&] { p(); }, &d, &none);
    }
    {
      SpOrderDetector d(&order_log);
      spec::NoSteal none;
      run_serial([&] { p(); }, &d, &none);
    }
    EXPECT_EQ(bags_log.any(), order_log.any());
    EXPECT_EQ(bags_log.determinacy_count(), order_log.determinacy_count());
  }
}

}  // namespace
}  // namespace rader
