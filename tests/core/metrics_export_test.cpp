// Metrics exposition (core/metrics_export.hpp): the Prometheus text
// rendering, the JSONL time-series sample line, and the MetricsSampler's
// throttling contract.  Structural/parser validation of real CLI output
// lives in scripts/check.sh; these tests pin the format rules.
#include "core/metrics_export.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "support/metrics.hpp"

namespace rader {
namespace {

metrics::Snapshot sample_snapshot() {
  metrics::Registry reg;
  metrics::Scope scope(&reg);
  metrics::bump(metrics::Counter::kSpecRuns, 7);
  metrics::bump(metrics::Counter::kDsuFinds, 3);
  metrics::gauge_add(metrics::Gauge::kShadowPagesLive, 5);
  metrics::gauge_add(metrics::Gauge::kShadowPagesLive, -2);
  for (std::uint64_t v : {1, 2, 4, 100}) {
    metrics::record(metrics::Histogram::kAccessBytes, v);
  }
  metrics::Registry* r = metrics::current();
  r->add_phase_nanos(metrics::Phase::kExecute, 1'500'000'000ull);
  return reg.snapshot();
}

TEST(MetricsExport, PrometheusFamilyMapsDottedNames) {
  EXPECT_EQ(prometheus_family("sweep.spec_runs"), "rader_sweep_spec_runs");
  EXPECT_EQ(prometheus_family("shadow.pages_live"),
            "rader_shadow_pages_live");
  EXPECT_EQ(prometheus_family("engine.deque_size"),
            "rader_engine_deque_size");
}

TEST(MetricsExport, PrometheusTextStructure) {
  const std::string text = prometheus_text(sample_snapshot());

  // Counters: HELP/TYPE pair plus the conventional _total suffix.
  EXPECT_NE(text.find("# HELP rader_sweep_spec_runs"), std::string::npos);
  EXPECT_NE(text.find("# TYPE rader_sweep_spec_runs_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("rader_sweep_spec_runs_total 7\n"), std::string::npos);

  // Gauges: the level and a _max companion.
  EXPECT_NE(text.find("# TYPE rader_shadow_pages_live gauge"),
            std::string::npos);
  EXPECT_NE(text.find("rader_shadow_pages_live 3\n"), std::string::npos);
  EXPECT_NE(text.find("rader_shadow_pages_live_max 5\n"), std::string::npos);

  // Histograms: cumulative le-buckets ending at +Inf == _count, plus _sum.
  EXPECT_NE(text.find("# TYPE rader_detector_access_bytes histogram"),
            std::string::npos);
  // Values 1,2,4 land in buckets le=1,3,7; 100 in le=127.  Cumulative:
  EXPECT_NE(text.find("rader_detector_access_bytes_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("rader_detector_access_bytes_bucket{le=\"3\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("rader_detector_access_bytes_bucket{le=\"7\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("rader_detector_access_bytes_bucket{le=\"127\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("rader_detector_access_bytes_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("rader_detector_access_bytes_sum 107\n"),
            std::string::npos);
  EXPECT_NE(text.find("rader_detector_access_bytes_count 4\n"),
            std::string::npos);

  // Phases: one labeled seconds family.
  EXPECT_NE(text.find("# TYPE rader_phase_seconds counter"),
            std::string::npos);
  EXPECT_NE(text.find("rader_phase_seconds{phase=\"execute\"} 1.5"),
            std::string::npos);

  // Ends with a newline (exposition format requirement).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(MetricsExport, JsonlSampleCarriesProgressAndSchemaV4Metrics) {
  const std::string line = jsonl_sample(1234, 5, 9, sample_snapshot());
  // One line, no trailing newline.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"t_ms\":1234"), std::string::npos);
  EXPECT_NE(line.find("\"done\":5"), std::string::npos);
  EXPECT_NE(line.find("\"total\":9"), std::string::npos);
  EXPECT_NE(line.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(line.find("\"sweep.spec_runs\":7"), std::string::npos);
  EXPECT_NE(line.find("\"gauges\""), std::string::npos);
  EXPECT_NE(line.find("\"histograms\""), std::string::npos);
}

TEST(MetricsExport, SamplerThrottlesToTheIntervalAndAlwaysWritesFinal) {
  std::ostringstream out;
  MetricsSampler sampler(&out, /*interval_ms=*/1'000'000);  // effectively off
  const metrics::Snapshot snap = sample_snapshot();

  // The first maybe_sample writes the baseline line; the rest fall inside
  // the (huge) interval and are suppressed.
  sampler.maybe_sample(1, 10, snap);
  sampler.maybe_sample(2, 10, snap);
  sampler.maybe_sample(3, 10, snap);
  EXPECT_EQ(sampler.samples_written(), 1u);
  EXPECT_NE(out.str().find("\"done\":1"), std::string::npos);
  EXPECT_EQ(out.str().find("\"done\":2"), std::string::npos);

  // final_sample is unconditional: the quiesced totals always land.
  sampler.final_sample(10, 10, snap);
  EXPECT_EQ(sampler.samples_written(), 2u);
  EXPECT_NE(out.str().find("\"done\":10"), std::string::npos);
  EXPECT_EQ(out.str().back(), '\n');
}

TEST(MetricsExport, SamplerEmitsAtItsCadence) {
  std::ostringstream out;
  MetricsSampler sampler(&out, /*interval_ms=*/1);
  const metrics::Snapshot snap = sample_snapshot();
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    sampler.maybe_sample(i + 1, 10, snap);
  }
  EXPECT_GE(sampler.samples_written(), 3u);
  // Every emitted line is a complete sample.
  std::istringstream in(out.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_NE(line.find("\"t_ms\":"), std::string::npos);
    EXPECT_NE(line.find("\"metrics\":{"), std::string::npos);
  }
  EXPECT_EQ(lines, sampler.samples_written());
}

}  // namespace
}  // namespace rader
