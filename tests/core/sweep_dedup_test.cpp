// Regression tests for the specification-sweep engine (core/sweep.hpp) and
// its deduplication layer (core/race_report.hpp).
//
// A family sweep re-elicits the same race under many steal specifications;
// the merged log must collapse each (location, access-pair, kind) identity
// into ONE stored report that carries every eliciting spec and the total
// occurrence count — while the parallel sweep must produce a log identical
// to the serial sweep's at every thread count.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "core/driver.hpp"
#include "core/sweep.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

// Shared across program instances on purpose: the racing address is stable,
// so parallel-sweep logs can be compared byte-for-byte with serial ones.
// The program only ANNOTATES accesses (shadow_read/shadow_write record, they
// do not touch memory), so concurrent sweep workers are safe.
int g_x = 0;
int g_y = 0;

void racy_two_reads() {
  spawn([] { shadow_write(&g_x, 4, SrcTag{"writer"}); });
  shadow_read(&g_x, 4, SrcTag{"first read"});
  shadow_read(&g_x, 4, SrcTag{"second read"});
  sync();
}

void clean_disjoint() {
  spawn([] { shadow_write(&g_x, 4, SrcTag{"writer"}); });
  shadow_read(&g_y, 4, SrcTag{"reader"});
  sync();
}

std::vector<std::unique_ptr<spec::StealSpec>> three_specs() {
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());
  family.push_back(std::make_unique<spec::DepthSteal>(1));
  family.push_back(std::make_unique<spec::StealAll>());
  return family;
}

// --- A program racy only under SOME specs (the schedule-dependent bug of
// core/schedule_bug_test.cpp, mutation-free so sweep workers can run it
// concurrently): lazy per-view initialization annotates a write that only
// executes on stolen schedules.
long g_header = 0;  // address anchor only; never actually written

struct EventLog {
  std::vector<int> items;
};
struct log_monoid {
  using value_type = EventLog;
  static EventLog identity() { return {}; }
  static void reduce(EventLog& left, EventLog& right) {
    left.items.insert(left.items.end(), right.items.begin(),
                      right.items.end());
  }
};

void steal_dependent_racy() {
  reducer<log_monoid> log(SrcTag{"event log"});
  const auto append = [&](int i) {
    log.update([&](EventLog& view) {
      if (view.items.empty()) {
        shadow_write(&g_header, sizeof(g_header), SrcTag{"header init"});
      }
      view.items.push_back(i);
    });
  };
  append(-1);  // serial-schedule initialization, before any spawn
  spawn([&] {
    shadow_read(&g_header, sizeof(g_header), SrcTag{"header read"});
  });
  for (int i = 0; i < 5; ++i) {
    spawn([] {});
    append(i);
  }
  sync();
}

// Clean prefix, then several racy specs: under stop_after_first_race the
// deterministic answer is the prefix [0, 2] — index 2 is the FIRST racy
// family member even when a worker finishes index 3 or 4 earlier.
std::vector<std::unique_ptr<spec::StealSpec>> staggered_family() {
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());        // clean
  family.push_back(std::make_unique<spec::DepthSteal>(100));  // clean
  family.push_back(std::make_unique<spec::DepthSteal>(3));    // racy
  family.push_back(std::make_unique<spec::StealAll>());       // racy
  family.push_back(std::make_unique<spec::DepthSteal>(2));    // racy
  return family;
}

TEST(SweepDedup, CheckWithFamilyCollapsesPerSpecDuplicates) {
  // Two racing access pairs (writer/first read, writer/second read) on a
  // 4-byte word, tracked at byte granularity: 8 distinct (address, label)
  // identities per run.  Each is elicited by all three specs, so the merged
  // log stores exactly those 8 — each with occurrences == 3 and the full
  // eliciting-spec set — while the global counter still tallies every
  // dynamic observation (8 x 3 specs).
  const auto family = three_specs();
  const RaceLog log =
      Rader::check_with_family([] { racy_two_reads(); }, family);

  EXPECT_EQ(log.determinacy_count(), 24u);
  ASSERT_EQ(log.determinacy_races().size(), 8u);
  for (std::size_t j = 0; j < log.determinacy_races().size(); ++j) {
    const auto& race = log.determinacy_races()[j];
    EXPECT_EQ(race.occurrences, 3u) << race.current_label;
    EXPECT_EQ(race.found_under, family[0]->describe());
    ASSERT_EQ(race.eliciting_specs.size(), 3u) << race.current_label;
    for (std::size_t i = 0; i < family.size(); ++i) {
      EXPECT_EQ(race.eliciting_specs[i], family[i]->describe());
    }
    EXPECT_EQ(race.current_label, j < 4 ? "first read" : "second read");
    EXPECT_EQ(race.addr,
              reinterpret_cast<std::uintptr_t>(&g_x) + (j % 4));
  }
}

TEST(SweepDedup, ParallelSweepLogIdenticalToSerialAtEveryThreadCount) {
  const auto family = three_specs();
  const RaceLog serial =
      Rader::check_with_family([] { racy_two_reads(); }, family);
  const ProgramFactory factory = shared_program([] { racy_two_reads(); });

  for (const unsigned threads : {1u, 2u, 4u}) {
    SweepOptions options;
    options.threads = threads;
    const SweepResult result =
        Rader::check_with_family(factory, family, options);
    EXPECT_EQ(result.spec_runs, family.size()) << threads << " thread(s)";
    EXPECT_EQ(result.specs_skipped, 0u);
    EXPECT_EQ(result.log.to_json(), serial.to_json())
        << threads << " thread(s)";
  }
}

TEST(SweepDedup, BudgetCapsRunsAndCountsSkips) {
  const auto family = three_specs();
  SweepOptions options;
  options.budget = 2;
  const SweepResult result = Rader::check_with_family(
      shared_program([] { racy_two_reads(); }), family, options);
  EXPECT_EQ(result.spec_runs, 2u);
  EXPECT_EQ(result.specs_skipped, 1u);
  ASSERT_EQ(result.log.determinacy_races().size(), 8u);
  for (const auto& race : result.log.determinacy_races()) {
    EXPECT_EQ(race.occurrences, 2u);  // only the two budgeted specs ran
    EXPECT_EQ(race.eliciting_specs.size(), 2u);
  }
}

TEST(SweepDedup, StopAfterFirstRaceSkipsTheTail) {
  const auto family = three_specs();
  SweepOptions options;
  options.stop_after_first_race = true;
  const SweepResult result = Rader::check_with_family(
      shared_program([] { racy_two_reads(); }), family, options);
  EXPECT_TRUE(result.log.any());
  EXPECT_EQ(result.spec_runs, 1u);  // the very first spec already races
  EXPECT_EQ(result.specs_skipped, 2u);
}

TEST(SweepDedup, StopFirstMeansLowestFamilyIndexAtEveryThreadCount) {
  // Verify the precondition: the family is clean at 0-1 and racy at 2-4.
  {
    const auto family = staggered_family();
    for (std::size_t i = 0; i < family.size(); ++i) {
      const RaceLog log = Rader::check_determinacy(
          [] { steal_dependent_racy(); }, *family[i]);
      EXPECT_EQ(log.any(), i >= 2) << family[i]->describe();
    }
  }

  // Baseline: the serial stop-first sweep runs exactly the prefix [0, 2].
  const auto family = staggered_family();
  const ProgramFactory factory =
      shared_program([] { steal_dependent_racy(); });
  SweepOptions serial_options;
  serial_options.threads = 1;
  serial_options.stop_after_first_race = true;
  const SweepResult baseline =
      Rader::check_with_family(factory, family, serial_options);
  EXPECT_TRUE(baseline.log.any());
  EXPECT_EQ(baseline.spec_runs, 3u);
  EXPECT_EQ(baseline.specs_skipped, 2u);
  ASSERT_FALSE(baseline.log.determinacy_races().empty());
  EXPECT_EQ(baseline.log.determinacy_races()[0].found_under,
            family[2]->describe());

  // Parallel sweeps must be byte-identical: same reported race set (specs 3
  // and 4 also race, but any wall-clock-first result from them is
  // discarded), same spec_runs, same specs_skipped.  Repeat each thread
  // count a few times to give racy interleavings a chance to disagree.
  for (const unsigned threads : {2u, 4u, 8u}) {
    for (int repeat = 0; repeat < 5; ++repeat) {
      SweepOptions options;
      options.threads = threads;
      options.stop_after_first_race = true;
      const SweepResult result =
          Rader::check_with_family(factory, family, options);
      EXPECT_EQ(result.spec_runs, baseline.spec_runs)
          << threads << " thread(s), repeat " << repeat;
      EXPECT_EQ(result.specs_skipped, baseline.specs_skipped)
          << threads << " thread(s), repeat " << repeat;
      EXPECT_EQ(result.log.to_json(), baseline.log.to_json())
          << threads << " thread(s), repeat " << repeat;
    }
  }
}

TEST(SweepDedup, ReplayHandleReproducesTheStopFirstRaceSet) {
  // The stop-first result's races carry found_under handles; feeding one
  // back through spec::from_description and a single SP+ run must reproduce
  // the identical deduplicated race set (the paper's "easy to repeat the
  // run for regression tests" workflow).
  const auto family = staggered_family();
  SweepOptions options;
  options.threads = 4;
  options.stop_after_first_race = true;
  const SweepResult result = Rader::check_with_family(
      shared_program([] { steal_dependent_racy(); }), family, options);
  ASSERT_TRUE(result.log.any());
  const std::string handle =
      result.log.determinacy_races()[0].found_under;
  ASSERT_FALSE(handle.empty());

  const auto replay_spec = spec::from_description(handle);
  ASSERT_NE(replay_spec, nullptr) << handle;
  const RaceLog replayed = Rader::check_determinacy(
      [] { steal_dependent_racy(); }, *replay_spec);
  // The stop-first log is exactly the first racy spec's log (the clean
  // prefix contributes nothing), so the replay matches byte-for-byte.
  EXPECT_EQ(replayed.to_json(), result.log.to_json());
}

TEST(SweepDedup, CleanProgramSweepsWholeFamilyQuietly) {
  const auto family = three_specs();
  const SweepResult result = Rader::check_with_family(
      shared_program([] { clean_disjoint(); }), family, SweepOptions{});
  EXPECT_FALSE(result.log.any());
  EXPECT_EQ(result.spec_runs, family.size());
  EXPECT_EQ(result.specs_skipped, 0u);
}

TEST(SweepDedup, ParallelExhaustiveMatchesSerialExhaustive) {
  const auto serial = Rader::check_exhaustive([] { racy_two_reads(); });
  for (const unsigned threads : {1u, 4u}) {
    SweepOptions options;
    options.threads = threads;
    const auto parallel = Rader::check_exhaustive(
        shared_program([] { racy_two_reads(); }), options);
    EXPECT_EQ(parallel.k, serial.k);
    EXPECT_EQ(parallel.depth, serial.depth);
    EXPECT_EQ(parallel.spec_runs, serial.spec_runs);
    EXPECT_EQ(parallel.specs_skipped, 0u);
    EXPECT_EQ(parallel.log.to_json(), serial.log.to_json())
        << threads << " thread(s)";
  }
}

}  // namespace
}  // namespace rader
