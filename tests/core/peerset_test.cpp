#include "core/peerset.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"

namespace rader {
namespace {

using SumReducer = reducer<monoid::op_add<long>>;

TEST(PeerSet, CorrectUsagePattern) {
  // Figure 1's update_list discipline: set before any spawn, get after the
  // sync — "does not contain a view-read race".
  const RaceLog log = Rader::check_view_read([] {
    SumReducer sum;
    sum.set_value(1);
    spawn([&] { sum += 2; });
    parallel_for_flat<int>(0, 8, [&](int) { sum += 1; }, 4);
    sync();
    volatile long v = sum.get_value();
    (void)v;
  });
  EXPECT_FALSE(log.any());
}

TEST(PeerSet, GetBeforeSyncRaces) {
  const RaceLog log = Rader::check_view_read([] {
    SumReducer sum;
    spawn([&] { sum += 1; });
    volatile long v = sum.get_value(SrcTag{"premature get"});
    (void)v;
    sync();
  });
  EXPECT_TRUE(log.any());
  ASSERT_FALSE(log.view_read_races().empty());
  EXPECT_EQ(log.view_read_races()[0].current_label, "premature get");
}

TEST(PeerSet, SetAfterSpawnRaces) {
  // "suppose that the programmer moves the call to set_value to after
  // cilk_spawn ... thereby creating a view-read race" — even when benign.
  const RaceLog log = Rader::check_view_read([] {
    SumReducer sum;
    spawn([] { /* does not touch sum */ });
    sum.set_value(3);
    sync();
  });
  EXPECT_TRUE(log.any());
}

TEST(PeerSet, UpdatesAreNotReads) {
  // Updates from parallel strands are exactly what reducers are for.
  const RaceLog log = Rader::check_view_read([] {
    SumReducer sum;
    for (int i = 0; i < 5; ++i) {
      spawn([&sum] { sum += 1; });
    }
    sync();
    volatile long v = sum.get_value();
    (void)v;
  });
  EXPECT_FALSE(log.any());
}

TEST(PeerSet, ReadsInSameSyncBlockNoSpawnsBetween) {
  const RaceLog log = Rader::check_view_read([] {
    SumReducer sum;
    volatile long a = sum.get_value();
    volatile long b = sum.get_value();
    (void)a;
    (void)b;
  });
  EXPECT_FALSE(log.any());
}

TEST(PeerSet, ReadsAcrossSyncSharePeers) {
  // Sync strands of the same frame have the same (empty) peer set as the
  // first strand: reading before any spawn and after each sync is clean.
  const RaceLog log = Rader::check_view_read([] {
    SumReducer sum;
    volatile long a = sum.get_value();
    spawn([&] { sum += 1; });
    sync();
    volatile long b = sum.get_value();
    spawn([&] { sum += 1; });
    sync();
    volatile long c = sum.get_value();
    (void)a, (void)b, (void)c;
  });
  EXPECT_FALSE(log.any());
}

TEST(PeerSet, ReadInsideSpawnedChildRacesWithRootRead) {
  // Analog of "strands 1 and 9": reads in a spawned child vs the root have
  // different peer sets.
  const RaceLog log = Rader::check_view_read([] {
    SumReducer sum;
    volatile long a = sum.get_value();
    (void)a;
    spawn([&] {
      volatile long b = sum.get_value(SrcTag{"read in spawned child"});
      (void)b;
    });
    sync();
  });
  EXPECT_TRUE(log.any());
}

TEST(PeerSet, ReadInCalledChildSharesPeersWhenNoSpawnsOutstanding) {
  // A called child's first strand has the same peers as the caller's first
  // strand (Figure 3: G.SS merges into F.SS when F.ls == 0).
  const RaceLog log = Rader::check_view_read([] {
    SumReducer sum;
    volatile long a = sum.get_value();
    (void)a;
    call([&] {
      volatile long b = sum.get_value();
      (void)b;
    });
    volatile long c = sum.get_value();
    (void)c;
  });
  EXPECT_FALSE(log.any());
}

TEST(PeerSet, ReadInCalledChildWithOutstandingSpawnStillMatchesCaller) {
  // With an outstanding spawn, a called child's first strand shares peers
  // with the caller's LAST CONTINUATION strand (the SP-bag case): a read
  // there matches a read in the continuation itself.
  const RaceLog log = Rader::check_view_read([] {
    SumReducer sum;
    spawn([&] { sum += 1; });
    volatile long a = sum.get_value(SrcTag{"continuation read"});
    (void)a;
    call([&] {
      volatile long b = sum.get_value(SrcTag{"called child read"});
      (void)b;
    });
    sync();
  });
  // One race: the construction-time read vs the continuation read.  The
  // called-child read does NOT add a second racing reducer... but the log
  // dedups per reducer anyway; assert the pair continuation/called-child
  // alone is clean via a fresh reducer created after the spawn.
  EXPECT_TRUE(log.any());

  const RaceLog log2 = Rader::check_view_read([] {
    spawn([] {});
    {
      // Created, read (directly and via a called child), and destroyed all
      // within the same continuation: every reducer-read shares one peer
      // set, so this is clean even though a spawn is outstanding.
      SumReducer sum;
      volatile long a = sum.get_value();
      (void)a;
      call([&] {
        volatile long b = sum.get_value();
        (void)b;
      });
    }
    sync();
  });
  EXPECT_FALSE(log2.any());
}

TEST(PeerSet, DestroyAfterSyncRacesWithMidBlockCreate) {
  // A reducer created while a spawn is outstanding but destroyed after the
  // sync: the create-read and destroy-read have different peer sets — a
  // view-read race by the paper's strict definition.
  const RaceLog log = Rader::check_view_read([] {
    spawn([] {});
    SumReducer sum;  // create-read with the spawned child as a peer
    sync();
    // destructor runs at scope end, after the sync: empty peer set.
  });
  EXPECT_TRUE(log.any());
}

TEST(PeerSet, SecondSpawnChangesPeersWithinBlock) {
  // Reads in the same sync block but separated by another spawn differ in
  // peers (the spawn count check in Figure 3).
  const RaceLog log = Rader::check_view_read([] {
    SumReducer sum;
    spawn([&] { sum += 1; });
    volatile long a = sum.get_value();
    (void)a;
    spawn([&] { sum += 1; });
    volatile long b = sum.get_value();
    (void)b;
    sync();
  });
  EXPECT_TRUE(log.any());
}

TEST(PeerSet, TwoReducersReportedIndependently) {
  const RaceLog log = Rader::check_view_read([] {
    SumReducer clean, racy;
    spawn([&] { racy += 1; });
    volatile long v = racy.get_value();  // race on `racy` only
    (void)v;
    sync();
    volatile long c = clean.get_value();
    (void)c;
  });
  // Reports (one per racing access pair) may repeat the reducer, but only
  // `racy` — constructed second, so reducer #1 — may appear.
  ASSERT_FALSE(log.view_read_races().empty());
  for (const auto& r : log.view_read_races()) {
    EXPECT_EQ(r.reducer, 1u) << "only `racy` may be reported";
  }
}

TEST(PeerSet, DeepNestingCleanDiscipline) {
  const RaceLog log = Rader::check_view_read([] {
    SumReducer sum;
    spawn([&] {
      spawn([&] { sum += 1; });
      sum += 2;
      sync();
      volatile long inner = sum.get_value(SrcTag{"inner read"});
      (void)inner;
    });
    sync();
    volatile long outer = sum.get_value(SrcTag{"outer read"});
    (void)outer;
  });
  // The inner read happens inside a SPAWNED child: its peer set differs
  // from the construction read / outer read.
  EXPECT_TRUE(log.any());
}

}  // namespace
}  // namespace rader
