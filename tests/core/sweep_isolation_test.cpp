// The crash-isolated sweep (core/sweep.hpp --isolate=procs): injected
// crashes / hangs / OOMs at chosen family indices must be retried,
// attributed, and quarantined while every surviving spec's result stays
// byte-identical to the in-process sweep's — at every jobs count and under
// both sweep strategies.
#include <gtest/gtest.h>
#include <signal.h>
#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/driver.hpp"
#include "core/sweep.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "spec/steal_spec.hpp"
#include "support/faultpoint.hpp"
#include "support/metrics.hpp"

namespace rader {
namespace {

// Global racing addresses: stable across program instances AND across
// fork(), so child-reported races dedup byte-for-byte against in-process
// ones (the dedup key includes the address).
int g_x = 0;
int g_y = 0;

void racy_two_reads() {
  spawn([] { shadow_write(&g_x, 4, SrcTag{"writer"}); });
  shadow_read(&g_x, 4, SrcTag{"first read"});
  shadow_read(&g_x, 4, SrcTag{"second read"});
  sync();
}

void clean_disjoint() {
  spawn([] { shadow_write(&g_x, 4, SrcTag{"writer"}); });
  shadow_read(&g_y, 4, SrcTag{"reader"});
  sync();
}

/// NoSteal plus distinct depth specs — n unique members with unique handles.
std::vector<std::unique_ptr<spec::StealSpec>> depth_family(std::size_t n) {
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());
  for (std::size_t d = 1; d < n; ++d) {
    family.push_back(
        std::make_unique<spec::DepthSteal>(static_cast<std::uint32_t>(d)));
  }
  return family;
}

/// The same family with the given (sorted) indices removed — the reference
/// a faulty isolated sweep must match on its surviving members.
std::vector<std::unique_ptr<spec::StealSpec>> depth_family_without(
    std::size_t n, const std::vector<std::size_t>& skip) {
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  auto full = depth_family(n);
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (std::find(skip.begin(), skip.end(), i) == skip.end()) {
      family.push_back(std::move(full[i]));
    }
  }
  return family;
}

/// Arm faults for one scope and guarantee the process is clean afterwards —
/// a leaked fault would crash unrelated in-process sweeps "on purpose".
struct ScopedFaults {
  explicit ScopedFaults(const std::string& spec) {
    faultpoint::disarm_all();
    EXPECT_TRUE(faultpoint::arm(spec));
  }
  ~ScopedFaults() { faultpoint::disarm_all(); }
};

SweepResult run_in_process(
    const std::vector<std::unique_ptr<spec::StealSpec>>& family,
    std::function<void()> program) {
  SweepOptions options;
  options.threads = 1;
  return Rader::check_with_family(shared_program(std::move(program)), family,
                                  options);
}

TEST(SweepIsolation, CleanFamilyMatchesInProcessAtEveryJobsCount) {
  const auto family = depth_family(12);
  const SweepResult baseline =
      run_in_process(family, [] { clean_disjoint(); });
  ASSERT_FALSE(baseline.log.any());

  for (const unsigned jobs : {1u, 2u, 4u}) {
    SweepOptions options;
    options.isolation = SweepIsolation::kProcs;
    options.threads = jobs;
    const SweepResult result = Rader::check_with_family(
        shared_program([] { clean_disjoint(); }), family, options);
    EXPECT_EQ(result.spec_runs, family.size()) << jobs << " job(s)";
    EXPECT_EQ(result.specs_skipped, 0u);
    EXPECT_TRUE(result.failures.empty());
    EXPECT_EQ(result.log.to_json(), baseline.log.to_json())
        << jobs << " job(s)";
  }
}

TEST(SweepIsolation, RacyFamilyByteIdenticalAcrossJobsAndStrategies) {
  const auto family = depth_family(16);
  const SweepResult baseline =
      run_in_process(family, [] { racy_two_reads(); });
  ASSERT_TRUE(baseline.log.any());

  for (const auto strategy : {SweepStrategy::kRerun, SweepStrategy::kPrefix}) {
    for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
      SweepOptions options;
      options.isolation = SweepIsolation::kProcs;
      options.strategy = strategy;
      options.threads = jobs;
      const SweepResult result = Rader::check_with_family(
          shared_program([] { racy_two_reads(); }), family, options);
      EXPECT_EQ(result.spec_runs, family.size());
      EXPECT_TRUE(result.failures.empty());
      EXPECT_EQ(result.log.to_json(), baseline.log.to_json())
          << jobs << " job(s), strategy "
          << (strategy == SweepStrategy::kPrefix ? "prefix" : "rerun");
    }
  }
}

TEST(SweepIsolation, InjectedCrashIsQuarantinedAndSurvivorsMatch) {
  const std::size_t kCrashAt = 5;
  const auto family = depth_family(16);
  const auto survivors = depth_family_without(16, {kCrashAt});
  const SweepResult baseline =
      run_in_process(survivors, [] { racy_two_reads(); });

  ScopedFaults faults("sweep.spec:crash:" + std::to_string(kCrashAt));
  SweepOptions options;
  options.isolation = SweepIsolation::kProcs;
  options.threads = 2;
  options.max_retries = 1;
  const SweepResult result = Rader::check_with_family(
      shared_program([] { racy_two_reads(); }), family, options);

  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].index, kCrashAt);
  EXPECT_EQ(result.failures[0].spec, family[kCrashAt]->describe());
  EXPECT_EQ(result.failures[0].cause, "signal");
  EXPECT_EQ(result.failures[0].signal, SIGSEGV);
  EXPECT_EQ(result.failures[0].retries, 1u);
  EXPECT_EQ(result.spec_runs, family.size() - 1);
  EXPECT_EQ(result.specs_skipped, 0u);
  EXPECT_EQ(result.log.to_json(), baseline.log.to_json());
}

TEST(SweepIsolation, InjectedHangTimesOutAndIsQuarantined) {
  const std::size_t kHangAt = 3;
  const auto family = depth_family(10);
  const auto survivors = depth_family_without(10, {kHangAt});
  const SweepResult baseline =
      run_in_process(survivors, [] { racy_two_reads(); });

  ScopedFaults faults("sweep.spec:hang:" + std::to_string(kHangAt));
  SweepOptions options;
  options.isolation = SweepIsolation::kProcs;
  options.threads = 2;
  options.spec_timeout_ms = 300;
  options.max_retries = 1;
  const SweepResult result = Rader::check_with_family(
      shared_program([] { racy_two_reads(); }), family, options);

  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].index, kHangAt);
  EXPECT_EQ(result.failures[0].cause, "timeout");
  EXPECT_EQ(result.spec_runs, family.size() - 1);
  EXPECT_EQ(result.log.to_json(), baseline.log.to_json());
}

TEST(SweepIsolation, InjectedOomIsClassifiedAndQuarantined) {
  const std::size_t kOomAt = 4;
  const auto family = depth_family(8);
  const auto survivors = depth_family_without(8, {kOomAt});
  const SweepResult baseline =
      run_in_process(survivors, [] { racy_two_reads(); });

  ScopedFaults faults("sweep.spec:oom:" + std::to_string(kOomAt));
  SweepOptions options;
  options.isolation = SweepIsolation::kProcs;
  options.threads = 2;
  options.max_retries = 0;  // the fault is deterministic: no point retrying
  const SweepResult result = Rader::check_with_family(
      shared_program([] { racy_two_reads(); }), family, options);

  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].index, kOomAt);
  EXPECT_EQ(result.failures[0].cause, "oom");
  EXPECT_EQ(result.failures[0].retries, 0u);
  EXPECT_EQ(result.spec_runs, family.size() - 1);
  EXPECT_EQ(result.log.to_json(), baseline.log.to_json());
}

TEST(SweepIsolation, PreAttributionCrashBisectsToTheCulprit) {
  // sweep.child fires BEFORE the child's first `begin`: the supervisor sees
  // an unattributable failure and must narrow it by bisection.  The fault
  // matches shard-lo 0, so only ranges starting at 0 die — bisection pins
  // index 0 and every other member survives.
  const auto family = depth_family(8);
  const auto survivors = depth_family_without(8, {0});
  const SweepResult baseline =
      run_in_process(survivors, [] { racy_two_reads(); });

  ScopedFaults faults("sweep.child:crash:0");
  SweepOptions options;
  options.isolation = SweepIsolation::kProcs;
  options.threads = 1;
  options.max_retries = 1;
  const SweepResult result = Rader::check_with_family(
      shared_program([] { racy_two_reads(); }), family, options);

  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].index, 0u);
  EXPECT_EQ(result.failures[0].cause, "signal");
  EXPECT_EQ(result.spec_runs, family.size() - 1);
  EXPECT_EQ(result.log.to_json(), baseline.log.to_json());
}

TEST(SweepIsolation, WatchdogKillRecoversAStalledChild) {
  const std::size_t kHangAt = 2;
  const auto family = depth_family(8);
  const auto survivors = depth_family_without(8, {kHangAt});
  const SweepResult baseline =
      run_in_process(survivors, [] { racy_two_reads(); });

  ScopedFaults faults("sweep.spec:hang:" + std::to_string(kHangAt));
  SweepOptions options;
  options.isolation = SweepIsolation::kProcs;
  options.threads = 2;
  options.watchdog_ms = 200;  // no per-spec deadline: only the watchdog
  options.watchdog_kill = true;
  options.max_retries = 0;
  const SweepResult result = Rader::check_with_family(
      shared_program([] { racy_two_reads(); }), family, options);

  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_EQ(result.failures[0].index, kHangAt);
  EXPECT_EQ(result.failures[0].cause, "timeout");
  EXPECT_EQ(result.log.to_json(), baseline.log.to_json());
}

// --- stop-first determinism needs a family that is clean on a prefix and
// racy from a known index on (the schedule-dependent program of
// core/sweep_dedup_test.cpp, mutation-free and global-anchored).
long g_header = 0;

struct EventLog {
  std::vector<int> items;
};
struct log_monoid {
  using value_type = EventLog;
  static EventLog identity() { return {}; }
  static void reduce(EventLog& left, EventLog& right) {
    left.items.insert(left.items.end(), right.items.begin(),
                      right.items.end());
  }
};

void steal_dependent_racy() {
  reducer<log_monoid> log(SrcTag{"event log"});
  const auto append = [&](int i) {
    log.update([&](EventLog& view) {
      if (view.items.empty()) {
        shadow_write(&g_header, sizeof(g_header), SrcTag{"header init"});
      }
      view.items.push_back(i);
    });
  };
  append(-1);
  spawn([&] {
    shadow_read(&g_header, sizeof(g_header), SrcTag{"header read"});
  });
  for (int i = 0; i < 5; ++i) {
    spawn([] {});
    append(i);
  }
  sync();
}

std::vector<std::unique_ptr<spec::StealSpec>> staggered_family() {
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());        // clean
  family.push_back(std::make_unique<spec::DepthSteal>(100));  // clean
  family.push_back(std::make_unique<spec::DepthSteal>(3));    // racy
  family.push_back(std::make_unique<spec::StealAll>());       // racy
  family.push_back(std::make_unique<spec::DepthSteal>(2));    // racy
  return family;
}

TEST(SweepIsolation, StopFirstPrefixIsDeterministicUnderIsolation) {
  const auto family = staggered_family();
  SweepOptions serial_options;
  serial_options.threads = 1;
  serial_options.stop_after_first_race = true;
  const SweepResult baseline = Rader::check_with_family(
      shared_program([] { steal_dependent_racy(); }), family, serial_options);
  ASSERT_TRUE(baseline.log.any());
  ASSERT_EQ(baseline.spec_runs, 3u);

  for (const unsigned jobs : {1u, 2u, 4u}) {
    for (int repeat = 0; repeat < 3; ++repeat) {
      SweepOptions options;
      options.isolation = SweepIsolation::kProcs;
      options.threads = jobs;
      options.stop_after_first_race = true;
      const SweepResult result = Rader::check_with_family(
          shared_program([] { steal_dependent_racy(); }), family, options);
      EXPECT_EQ(result.spec_runs, baseline.spec_runs)
          << jobs << " job(s), repeat " << repeat;
      EXPECT_EQ(result.specs_skipped, baseline.specs_skipped)
          << jobs << " job(s), repeat " << repeat;
      EXPECT_TRUE(result.failures.empty());
      EXPECT_EQ(result.log.to_json(), baseline.log.to_json())
          << jobs << " job(s), repeat " << repeat;
    }
  }
}

TEST(SweepIsolation, IsolationCountersTrackCrashRetryQuarantine) {
  const std::size_t kCrashAt = 3;
  const auto family = depth_family(8);

  ScopedFaults faults("sweep.spec:crash:" + std::to_string(kCrashAt));
  metrics::Registry reg;
  metrics::Scope scope(&reg);
  SweepOptions options;
  options.isolation = SweepIsolation::kProcs;
  options.threads = 2;
  options.max_retries = 1;
  const SweepResult result = Rader::check_with_family(
      shared_program([] { racy_two_reads(); }), family, options);
  ASSERT_EQ(result.failures.size(), 1u);

  const metrics::Snapshot snap = reg.snapshot();
  // Initial attempt + one retry both crash.
  EXPECT_GE(snap.counter(metrics::Counter::kSweepChildCrashes), 2u);
  EXPECT_EQ(snap.counter(metrics::Counter::kSweepRetries), 1u);
  EXPECT_EQ(snap.counter(metrics::Counter::kSweepQuarantined), 1u);
  // Every salvaged spec was accounted by the supervisor, none double.
  EXPECT_EQ(snap.counter(metrics::Counter::kSpecRuns), family.size() - 1);
  // The retry relaunch landed in the restart-latency histogram.
  EXPECT_GE(snap.hist(metrics::Histogram::kChildRestartNanos).count, 1u);
}

TEST(SweepIsolation, PostmortemDirCollectsCrashDumps) {
  char tmpl[] = "/tmp/rader_pm_XXXXXX";
  char* dir = ::mkdtemp(tmpl);
  ASSERT_NE(dir, nullptr);

  const std::size_t kCrashAt = 2;
  const auto family = depth_family(6);
  ScopedFaults faults("sweep.spec:crash:" + std::to_string(kCrashAt));
  SweepOptions options;
  options.isolation = SweepIsolation::kProcs;
  options.threads = 1;
  options.max_retries = 0;
  options.postmortem_dir = dir;
  const SweepResult result = Rader::check_with_family(
      shared_program([] { racy_two_reads(); }), family, options);

  ASSERT_EQ(result.failures.size(), 1u);
  EXPECT_FALSE(result.failures[0].postmortem.empty());
  EXPECT_EQ(::access(result.failures[0].postmortem.c_str(), F_OK), 0);

  // Best-effort cleanup (the postmortem names are attempt-numbered).
  std::remove(result.failures[0].postmortem.c_str());
  ::rmdir(dir);
}

// The ISSUE's acceptance bar: a 1000-spec family with one crashing and one
// hanging member completes, quarantines exactly those two, and the other
// 998 merge byte-identical to the in-process sweep — at every jobs count
// and under both strategies.
TEST(SweepIsolation, ThousandSpecAcceptance) {
  const std::size_t kN = 1000;
  const std::size_t kCrashAt = 123;
  const std::size_t kHangAt = 777;
  const auto family = depth_family(kN);
  const auto survivors = depth_family_without(kN, {kCrashAt, kHangAt});
  const SweepResult baseline =
      run_in_process(survivors, [] { racy_two_reads(); });
  ASSERT_EQ(baseline.spec_runs, kN - 2);

  ScopedFaults faults("sweep.spec:crash:" + std::to_string(kCrashAt) +
                      ",sweep.spec:hang:" + std::to_string(kHangAt));
  for (const auto strategy : {SweepStrategy::kRerun, SweepStrategy::kPrefix}) {
    for (const unsigned jobs : {1u, 2u, 4u, 8u}) {
      SweepOptions options;
      options.isolation = SweepIsolation::kProcs;
      options.strategy = strategy;
      options.threads = jobs;
      options.spec_timeout_ms = 300;
      options.max_retries = 1;
      const SweepResult result = Rader::check_with_family(
          shared_program([] { racy_two_reads(); }), family, options);

      ASSERT_EQ(result.failures.size(), 2u);
      EXPECT_EQ(result.failures[0].index, kCrashAt);
      EXPECT_EQ(result.failures[0].cause, "signal");
      EXPECT_EQ(result.failures[0].signal, SIGSEGV);
      EXPECT_EQ(result.failures[1].index, kHangAt);
      EXPECT_EQ(result.failures[1].cause, "timeout");
      EXPECT_EQ(result.spec_runs, kN - 2);
      EXPECT_EQ(result.specs_skipped, 0u);
      EXPECT_EQ(result.log.to_json(), baseline.log.to_json())
          << jobs << " job(s), strategy "
          << (strategy == SweepStrategy::kPrefix ? "prefix" : "rerun");
    }
  }
}

}  // namespace
}  // namespace rader
