// view_arena floor promotion is scoped, not forever: outside-run allocations
// (program fixtures) raise the rewind floor only while the enclosing
// view_arena::Scope lives.  Before the Scope existed, every sweep's fixture
// permanently raised its worker thread's floor — a long-lived process
// sweeping repeatedly grew each worker's arena monotonically, one fixture
// per sweep.  The 1000-sweep regression below pins the fix.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/sweep.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/view_arena.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

TEST(ViewArenaScope, RestoresCursorAndFloorOnExit) {
  const std::size_t floor0 = view_arena::permanent_bytes();
  const std::size_t use0 = view_arena::bytes_in_use();
  {
    view_arena::Scope scope;
    // No engine installed: the allocation is promoted to the floor...
    void* p = view_arena::allocate(64, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_GE(view_arena::permanent_bytes(), floor0 + 64);
    EXPECT_GE(view_arena::bytes_in_use(), use0 + 64);
  }
  // ...but only until the scope exits.
  EXPECT_EQ(view_arena::permanent_bytes(), floor0);
  EXPECT_EQ(view_arena::bytes_in_use(), use0);
}

TEST(ViewArenaScope, NestsLikeStackFrames) {
  const std::size_t floor0 = view_arena::permanent_bytes();
  {
    view_arena::Scope outer;
    (void)view_arena::allocate(32, 8);
    const std::size_t floor_outer = view_arena::permanent_bytes();
    {
      view_arena::Scope inner;
      (void)view_arena::allocate(128, 8);
      EXPECT_GE(view_arena::permanent_bytes(), floor_outer + 128);
    }
    EXPECT_EQ(view_arena::permanent_bytes(), floor_outer);
  }
  EXPECT_EQ(view_arena::permanent_bytes(), floor0);
}

// A factory whose fixture allocates from the arena OUTSIDE any run — the
// shape that used to promote 64 bytes into the calling thread's floor on
// every single sweep.
ProgramFactory arena_hungry_factory() {
  return [] {
    long* fixture = static_cast<long*>(view_arena::allocate(64, 8));
    *fixture = 0;
    return std::function<void()>([fixture] {
      reducer<monoid::op_add<long>> sum;
      spawn([&sum] { sum += 1; });
      sum += 2;
      sync();
      *fixture += sum.get_value();
    });
  };
}

TEST(ViewArenaFloor, ThousandSweepsDoNotGrowTheFloor) {
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());
  const ProgramFactory factory = arena_hungry_factory();
  SweepOptions options;
  options.threads = 1;  // the worker runs inline on this thread, so its
                        // arena floor is observable here
  const SweepResult first = sweep_family(factory, family, options);
  EXPECT_EQ(first.spec_runs, 1u);
  const std::size_t floor_after_first = view_arena::permanent_bytes();
  for (int i = 0; i < 1000; ++i) {
    (void)sweep_family(factory, family, options);
  }
  EXPECT_EQ(view_arena::permanent_bytes(), floor_after_first)
      << "sweep fixtures are promoting the floor permanently again";
}

}  // namespace
}  // namespace rader
