#include "core/driver.hpp"

#include <gtest/gtest.h>

#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"

namespace rader {
namespace {

TEST(Driver, CleanProgramCleanEverywhere) {
  const auto clean = [] {
    reducer<monoid::op_add<long>> sum;
    for (int i = 0; i < 4; ++i) {
      spawn([&sum] { sum += 1; });
    }
    sync();
    volatile long v = sum.get_value();
    (void)v;
  };
  const auto result = Rader::check_exhaustive(clean);
  EXPECT_FALSE(result.log.any());
  EXPECT_GT(result.spec_runs, 1u);
  EXPECT_EQ(result.k, 4u);
}

TEST(Driver, ExhaustiveUsesProbeStatsForFamilySize) {
  const auto program = [] {
    for (int i = 0; i < 5; ++i) spawn([] {});
    sync();
  };
  const auto result = Rader::check_exhaustive(program, /*k_cap=*/3,
                                              /*depth_cap=*/2);
  EXPECT_EQ(result.probe_stats.max_sync_block, 5u);
  EXPECT_EQ(result.k, 3u);      // capped
  // Five unsynced spawns in one block reach depth 5; capped at 2.
  EXPECT_EQ(result.depth, 2u);
  // runs = 1 (no-steal) + (depth+1) + C(3,2)+C(3,3).
  EXPECT_EQ(result.spec_runs, 1u + 3u + 3u + 1u);
}

TEST(Driver, CheckWithFamilyMergesLogs) {
  int x = 0;
  const auto racy = [&] {
    spawn([&] { shadow_write(&x, 4); });
    shadow_read(&x, 4);
    sync();
  };
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());
  family.push_back(std::make_unique<spec::StealAll>());
  const RaceLog log = Rader::check_with_family(racy, family);
  // Found in both runs; occurrence counts accumulate, locations dedup.
  EXPECT_EQ(log.determinacy_count(), 8u);
  EXPECT_EQ(log.determinacy_races().size(), 4u);
}

TEST(Driver, ViewReadAndDeterminacyAreOrthogonal) {
  // A program with only a view-read race: Peer-Set flags it, SP+ does not.
  const auto vr_only = [] {
    reducer<monoid::op_add<long>> sum;
    spawn([&sum] { sum += 1; });
    volatile long v = sum.get_value();
    (void)v;
    sync();
  };
  EXPECT_TRUE(Rader::check_view_read(vr_only).any());
  spec::NoSteal none;
  const RaceLog sp = Rader::check_determinacy(vr_only, none);
  EXPECT_EQ(sp.determinacy_count(), 0u);
}

TEST(Driver, ReportsCarryReplaySpec) {
  // The paper's replay feature: reports name the specification that
  // elicited them, "making it easy to repeat the run for regression tests."
  int x = 0;
  const auto racy = [&] {
    spawn([&] { shadow_write(&x, 4); });
    shadow_read(&x, 4);
    sync();
  };
  spec::TripleSteal triple(0, 1, 2);
  const RaceLog log = Rader::check_determinacy(racy, triple);
  ASSERT_FALSE(log.determinacy_races().empty());
  EXPECT_EQ(log.determinacy_races()[0].found_under, "steal-triple(0,1,2)");
  EXPECT_NE(log.to_string().find("[replay: steal-triple(0,1,2)]"),
            std::string::npos);
  EXPECT_NE(log.to_json().find("\"found_under\":\"steal-triple(0,1,2)\""),
            std::string::npos);
}

TEST(Driver, RaceLogToStringMentionsEverything) {
  int x = 0;
  const auto racy = [&] {
    reducer<monoid::op_add<long>> sum;
    spawn([&] {
      shadow_write(&x, 4, SrcTag{"writer"});
      sum += 1;
    });
    shadow_read(&x, 4, SrcTag{"reader"});
    volatile long v = sum.get_value(SrcTag{"early get"});
    (void)v;
    sync();
  };
  const auto result = Rader::check_exhaustive(racy);
  const std::string text = result.log.to_string();
  EXPECT_NE(text.find("view-read race"), std::string::npos);
  EXPECT_NE(text.find("determinacy race"), std::string::npos);
  EXPECT_NE(text.find("early get"), std::string::npos);
  EXPECT_NE(text.find("reader"), std::string::npos);
}

}  // namespace
}  // namespace rader
