// The Chrome trace-event exporter and the text timeline
// (core/trace_export.hpp), driven by a real traced execution: a reducer
// program under a triple-steal spec, so the trace contains simulated-worker
// tracks, frame slices, and steal→reduce flow arrows.
#include "core/trace_export.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/spplus.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"
#include "support/trace.hpp"

namespace rader {
namespace {

// A reducer loop that steals and reduces under TripleSteal(0,1,2): each
// stolen continuation mints a view, each view dies in an epoch merge.
void reducer_program() {
  reducer<monoid::op_add<int>> sum(SrcTag{"sum"});
  parallel_for_flat<int>(
      0, 6,
      [&](int i) { sum.update([&](int& v) { v += i; }, SrcTag{"add"}); },
      /*chunks=*/6);
  sync();
  EXPECT_EQ(sum.take_value(SrcTag{"get"}), 0 + 1 + 2 + 3 + 4 + 5);
}

/// Run `reducer_program` under TripleSteal(0,1,2) with tracing on and a
/// detector attached; returns the populated session via out-params.
void traced_run(trace::Session* session) {
  trace::Scope scope(session, "main");
  RaceLog log;
  SpPlusDetector detector(&log);
  spec::TripleSteal triple(0, 1, 2);
  SerialEngine engine(&detector, &triple);
  engine.run([] { reducer_program(); });
  EXPECT_GE(engine.stats().steals, 3u);
  EXPECT_GE(engine.stats().reduces, 1u);
}

TEST(TraceExport, ChromeJsonHasTracksSlicesAndFlows) {
  trace::Session session;
  traced_run(&session);
  const std::string json = chrome_trace_json(session);

  // Envelope.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Process metadata for the buffer, thread metadata per simulated worker:
  // worker 0 runs the root, each of the three steals mints a fresh worker.
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"worker 3\""), std::string::npos);
  // Frame slices, instants, and the steal→reduce flow pair.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(TraceExport, TimestampsAreNonDecreasingInFileOrder) {
  trace::Session session;
  traced_run(&session);
  const std::string json = chrome_trace_json(session);
  // Events are globally sorted by ts, so the "ts" values appear in
  // non-decreasing order in the file (what scripts/check.sh asserts
  // per-track; global sorting implies it for every track).
  double last = -1.0;
  std::size_t pos = 0;
  std::size_t seen = 0;
  while ((pos = json.find("\"ts\":", pos)) != std::string::npos) {
    pos += 5;
    const double ts = std::stod(json.substr(pos));
    EXPECT_GE(ts, last);
    last = ts;
    ++seen;
  }
  EXPECT_GT(seen, 10u);
}

TEST(TraceExport, WorkerTracksFollowTheSteals) {
  trace::Session session;
  traced_run(&session);
  ASSERT_EQ(session.buffers().size(), 1u);
  // The raw events move to a fresh worker at each steal.
  std::uint32_t max_worker = 0;
  std::uint64_t steals = 0;
  for (const auto& e : session.buffers()[0]->ordered()) {
    max_worker = std::max(max_worker, e.worker);
    if (e.kind == trace::EventKind::kSteal) {
      ++steals;
      EXPECT_EQ(e.worker, steals) << "steal N lands on fresh worker N";
    }
  }
  EXPECT_GE(steals, 3u);
  EXPECT_EQ(max_worker, steals);
}

TEST(TraceExport, TextTimelineIsGreppable) {
  trace::Session session;
  traced_run(&session);
  const std::string text = text_timeline(session);
  EXPECT_NE(text.find("main"), std::string::npos);
  EXPECT_NE(text.find("steal"), std::string::npos);
  EXPECT_NE(text.find("reduce-begin"), std::string::npos);
  EXPECT_NE(text.find("view-create"), std::string::npos);
  EXPECT_NE(text.find("run-end"), std::string::npos);
}

TEST(TraceExport, SecondRunInOneBufferRestartsPairing) {
  // Frame ids restart at every kRunBegin; the exporter must pair each
  // run's enter/return events independently instead of mixing runs.
  trace::Session session;
  {
    trace::Scope scope(&session, "main");
    RaceLog log;
    SpPlusDetector detector(&log);
    spec::TripleSteal triple(0, 1, 2);
    SerialEngine engine(&detector, &triple);
    engine.run([] { reducer_program(); });
    engine.run([] { reducer_program(); });
  }
  const std::string json = chrome_trace_json(session);
  // Both runs produce root slices; the exporter emits at least twice the
  // single-run slice count without dropping frames as orphans.
  std::size_t slices = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos; pos += 8) {
    ++slices;
  }
  EXPECT_GE(slices, 2u);
  EXPECT_NE(json.find("run-begin"), std::string::npos);
}

TEST(TraceExport, ConflictInstantCarriesTheDetectorLabel) {
  // A racy program: the detector's emit_conflict surfaces as a kConflict
  // instant whose label is the reporting access's source tag.
  static int slot = 0;
  trace::Session session;
  {
    trace::Scope scope(&session, "main");
    RaceLog log;
    SpPlusDetector detector(&log);
    spec::NoSteal none;
    SerialEngine engine(&detector, &none);
    engine.run([] {
      spawn([] { shadow_write(&slot, 4, SrcTag{"writer"}); });
      shadow_read(&slot, 4, SrcTag{"reader"});
      sync();
    });
    EXPECT_TRUE(log.any());
  }
  bool found = false;
  for (const auto& e : session.buffers()[0]->ordered()) {
    if (e.kind != trace::EventKind::kConflict) continue;
    found = true;
    EXPECT_STREQ(e.label, "reader");
    // Byte-granular shadow cells: one conflict per racing byte of the slot.
    const auto base = reinterpret_cast<std::uintptr_t>(&slot);
    EXPECT_GE(e.a, base);
    EXPECT_LT(e.a, base + sizeof(slot));
  }
  EXPECT_TRUE(found);
  const std::string json = chrome_trace_json(session);
  EXPECT_NE(json.find("conflict"), std::string::npos);
}

}  // namespace
}  // namespace rader
