// A per-execution completeness corner of Figure 6's single-slot shadow,
// found by differential fuzzing against the brute-force oracle.
//
// The pattern needs one location written by strands in three view contexts:
//
//   root:  spawn S
//          │   S: spawn B; (steal here → fresh view v₁)
//          │      spawn C { oblivious write ℓ }     // runs with v₁
//          │      sync                              // C joins: C → S's S-bag
//          │      oblivious write ℓ                 // (w₂) base view v₀
//          └─ continuation (not stolen, view v₀):
//             Update { view-aware write ℓ }         // (w₃)
//
// Per the paper's race conditions, (C's write, w₃) IS a determinacy race:
// they are logically parallel and associated with parallel views (v₁ vs
// v₀).  But Figure 6's shadow keeps ONE writer per location: at w₂ the
// prior writer C is in an S bag (in series via S's sync), so w₂ replaces
// it; at w₃ the stored writer w₂ sits in a P bag with view v₀ — the SAME
// view as w₃ — so the view-aware exemption fires and nothing is reported.
// The replacement was sound for plain SP-bags (pseudotransitivity of ‖),
// but the VIEW-ID dimension does not commute with it: the evicted writer
// had a different view than its series successor.
//
// Two mitigating facts, both verified here:
//   1. The Section-7 exhaustive family still reports the location — under
//      a spec that steals the root continuation, w₃ runs on a fresh view
//      and races with the stored writer, so family-level coverage (the
//      guarantee the paper actually deploys, §7–§8) is intact.
//   2. The brute-force oracle (and hence the fuzzer, tools/fuzz_detectors)
//      flags the single-execution miss, so the boundary is monitored.
//
// This mirrors the paper's own §10 observation that constant-space shadow
// state is information-theoretically tight: one slot per location cannot
// represent two live writers with distinct views.
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "dag/oracle.hpp"
#include "dag/recorder.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"

namespace rader {
namespace {

long g_slot = 0;

struct V {
  long v = 0;
};
struct v_monoid {
  using value_type = V;
  static V identity() { return {}; }
  static void reduce(V& l, V& r) { l.v += r.v; }
};

void corner_program_at(long* slot) {
  reducer<v_monoid> red;
  spawn([&] {  // frame S
    spawn([] {});
    spawn([slot] {  // C: executes on the stolen view's segment
      shadow_write(slot, 8, SrcTag{"oblivious write on stolen view"});
    });
    sync();
    shadow_write(slot, 8, SrcTag{"oblivious write on base view"});
  });
  red.update([&](V& view) {  // root continuation, base view when not stolen
    shadow_write(slot, 8, SrcTag{"view-aware write"});
    *slot += view.v;
  });
  sync();
}

void corner_program() { corner_program_at(&g_slot); }

TEST(ShadowSlotCorner, OracleSeesTheRaceInTheFixedExecution) {
  spec::DepthSteal inner(2);  // steal only S's inner continuation
  dag::Recorder recorder;
  SerialEngine engine(&recorder, &inner);
  engine.run([] { corner_program(); });
  const dag::OracleResult oracle = dag::run_oracle(recorder.dag());
  EXPECT_TRUE(oracle.any_determinacy);
  EXPECT_TRUE(oracle.racing_addrs.count(
                  reinterpret_cast<std::uintptr_t>(&g_slot)) > 0);
}

TEST(ShadowSlotCorner, Figure6SpPlusMissesItInThisExecution) {
  // Documented faithful-to-the-paper behavior: the single shadow slot
  // cannot hold both live writers, and the view-aware exemption fires on
  // the surviving (same-view) one.
  spec::DepthSteal inner(2);
  const RaceLog log =
      Rader::check_determinacy([] { corner_program(); }, inner);
  EXPECT_FALSE(log.any())
      << "if this now reports, the detector has been refined beyond "
         "Figure 6 — update the documentation in DESIGN.md";
}

TEST(ShadowSlotCorner, ExhaustiveFamilyStillReportsTheLocation) {
  const auto result = Rader::check_exhaustive([] { corner_program(); });
  bool found = false;
  for (const auto& race : result.log.determinacy_races()) {
    found |= race.addr >= reinterpret_cast<std::uintptr_t>(&g_slot) &&
             race.addr < reinterpret_cast<std::uintptr_t>(&g_slot) + 8;
  }
  EXPECT_TRUE(found) << "Section-7 family coverage must close the corner";
}

TEST(ShadowSlotCorner, ReusedDetectorRepeatsTheVerdictAcrossEpochClears) {
  // The packed shadow's clear() is an O(1) epoch bump, not a page wipe —
  // this corner is exactly the pattern that would expose a stale slot
  // surviving it: one leaked writer flips the single-slot verdict.  Reusing
  // ONE detector across runs (on_run_begin epoch-clears the shadow) must
  // reproduce the miss verdict and an identical report log every time.
  spec::DepthSteal inner(2);
  RaceLog log;
  SpPlusDetector detector(&log);
  std::string first_json;
  for (int run = 0; run < 3; ++run) {
    SerialEngine engine(&detector, &inner);
    engine.run([] { corner_program(); });
    EXPECT_FALSE(log.any()) << "run " << run
                            << ": stale shadow state leaked across clear()";
    if (run == 0) {
      first_json = log.to_json();
    } else {
      EXPECT_EQ(log.to_json(), first_json) << "run " << run;
    }
  }
}

TEST(ShadowSlotCorner, ParallelSweepStillReportsTheLocation) {
  // The same Section-7 guarantee through the parallel sweep engine: each
  // worker checks its own instance (own slot), so the report is recognized
  // by its access labels — every annotated access in the program targets the
  // per-instance slot, so any determinacy report IS at that location.
  const ProgramFactory factory = [] {
    auto slot = std::make_shared<long>(0);
    return std::function<void()>([slot] { corner_program_at(slot.get()); });
  };
  for (const unsigned threads : {1u, 4u}) {
    SweepOptions options;
    options.threads = threads;
    const auto result = Rader::check_exhaustive(factory, options);
    EXPECT_GT(result.log.determinacy_count(), 0u) << threads << " thread(s)";
    bool view_aware_write_flagged = false;
    for (const auto& race : result.log.determinacy_races()) {
      view_aware_write_flagged |= race.current_label == "view-aware write" ||
                                  race.current_label ==
                                      "oblivious write on base view" ||
                                  race.current_label ==
                                      "oblivious write on stolen view";
    }
    EXPECT_TRUE(view_aware_write_flagged)
        << "the family must elicit the slot race at every thread count";
  }
}

}  // namespace
}  // namespace rader
