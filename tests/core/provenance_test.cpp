// Race provenance (core/provenance.hpp): replaying a report's found_under
// spec must yield a record naming the fork frame, the eliciting steal, and
// the involved Reduce strand, cross-checked against the DAG oracle — and the
// record must surface in both the text report and the schema-v2 JSON.
#include "core/provenance.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "apps/mylist.hpp"
#include "core/driver.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

using apps::list_monoid;
using apps::MyList;

// The Figure 1 program (tests/core/fig_examples_test.cpp): its determinacy
// race happens inside the Reduce of the list reducer, elicited only under a
// steal spec — the canonical target for a provenance explanation.
void update_list(int n, MyList& list) {
  call([&] {
    reducer<list_monoid> list_reducer(SrcTag{"list_reducer"});
    list_reducer.set_value(list, SrcTag{"set_value(list)"});
    parallel_for_flat<int>(
        0, n,
        [&](int i) {
          list_reducer.update([&](MyList& view) { view.insert(i); },
                              SrcTag{"list insert"});
        },
        /*chunks=*/6);
    sync();
    list = list_reducer.take_value(SrcTag{"get_value()"});
  });
}

void race_fig1(int n, MyList& list) {
  int length = 0;
  MyList copy(list);  // BUG: shallow copy
  spawn([&] { length = list.scan(SrcTag{"scan_list"}); });
  update_list(n, copy);
  sync();
  (void)length;
}

struct ProvenanceFig1 : ::testing::Test {
  MyList owned;
  void SetUp() override {
    for (int i = 0; i < 8; ++i) owned.insert(100 + i);
  }
  void TearDown() override { owned.destroy(); }

  std::function<void()> program() {
    return [this] {
      MyList working = owned;  // fresh shallow handle per run
      race_fig1(6, working);
    };
  }
};

TEST_F(ProvenanceFig1, NamesTheElicitingStealAndReduceStrand) {
  const auto prog = program();
  spec::TripleSteal triple(0, 1, 2);
  RaceLog log = Rader::check_determinacy(prog, triple);
  log.stamp_found_under(triple.describe());
  ASSERT_TRUE(log.any());

  const std::size_t annotated = annotate_provenance(log, prog);
  EXPECT_EQ(annotated, log.determinacy_races().size());
  ASSERT_GT(annotated, 0u);

  bool reduce_explained = false;
  for (const auto& r : log.determinacy_races()) {
    ASSERT_FALSE(r.provenance_json.empty());
    ASSERT_FALSE(r.provenance_text.empty());
    // The JSON object carries the replay spec and the structural fields.
    EXPECT_NE(r.provenance_json.find("\"spec\":\"steal-triple(0,1,2)\""),
              std::string::npos);
    EXPECT_NE(r.provenance_json.find("\"lca_frame\":"), std::string::npos);
    EXPECT_NE(r.provenance_json.find("\"eliciting_steal\":"),
              std::string::npos);
    // The replay is deterministic, so the oracle confirms every SP+ report.
    EXPECT_NE(r.provenance_json.find("\"oracle\":\"confirmed\""),
              std::string::npos)
        << r.provenance_json;
    // The Figure 1 race executes inside the Reduce: the record must name
    // the Reduce strand and the epoch merge that invoked it.
    if (r.provenance_json.find("\"reduce\":{") != std::string::npos) {
      reduce_explained = true;
      EXPECT_NE(r.provenance_text.find("Reduce strand"), std::string::npos);
      EXPECT_NE(r.provenance_text.find("eliciting steal"), std::string::npos);
    }
  }
  EXPECT_TRUE(reduce_explained);

  // Rendering: text report indents the record; JSON embeds it verbatim.
  EXPECT_NE(log.to_string().find("provenance (replay steal-triple(0,1,2))"),
            std::string::npos);
  EXPECT_NE(log.to_json().find("\"provenance\":{\"spec\":"),
            std::string::npos);
}

TEST_F(ProvenanceFig1, AlreadyAnnotatedRacesAreLeftUntouched) {
  const auto prog = program();
  spec::TripleSteal triple(0, 1, 2);
  RaceLog log = Rader::check_determinacy(prog, triple);
  log.stamp_found_under(triple.describe());
  ASSERT_GT(annotate_provenance(log, prog), 0u);
  const std::string first = log.determinacy_races()[0].provenance_json;
  EXPECT_EQ(annotate_provenance(log, prog), 0u);  // all carry records already
  EXPECT_EQ(log.determinacy_races()[0].provenance_json, first);
}

int g_slot = 0;

TEST(Provenance, SerialSpawnRaceHasNoStealOnTheForkPath) {
  const auto prog = [] {
    spawn([] { shadow_write(&g_slot, 4, SrcTag{"writer"}); });
    shadow_read(&g_slot, 4, SrcTag{"reader"});
    sync();
  };
  spec::NoSteal none;
  RaceLog log = Rader::check_determinacy(prog, none);
  log.stamp_found_under(none.describe());
  ASSERT_TRUE(log.any());
  ASSERT_GT(annotate_provenance(log, prog), 0u);
  const auto& r = log.determinacy_races()[0];
  EXPECT_NE(r.provenance_json.find("\"spec\":\"no-steals\""),
            std::string::npos);
  EXPECT_EQ(r.provenance_json.find("\"eliciting_steal\""), std::string::npos);
  EXPECT_NE(r.provenance_text.find("no steal on the fork path"),
            std::string::npos);
  EXPECT_NE(r.provenance_json.find("\"oracle\":\"confirmed\""),
            std::string::npos);
}

TEST(Provenance, UnrecognizedHandleAndEmptyLogAreSafe) {
  RaceLog log;
  EXPECT_EQ(annotate_provenance(log, [] {}), 0u);  // nothing to annotate

  // A race stamped with a bogus handle cannot replay; it is skipped.
  const auto prog = [] {
    spawn([] { shadow_write(&g_slot, 4, SrcTag{"writer"}); });
    shadow_read(&g_slot, 4, SrcTag{"reader"});
    sync();
  };
  RaceLog bogus;
  DeterminacyRace fake = make_determinacy_race(
      0x1234, AccessKind::kWrite, false, true, 1, 2, "w");
  fake.found_under = "not-a-spec-handle";
  bogus.report_determinacy(fake);
  EXPECT_EQ(annotate_provenance(bogus, prog), 0u);
  EXPECT_TRUE(bogus.determinacy_races()[0].provenance_json.empty());
}

TEST(Provenance, OracleCrossCheckCanBeCappedOrDisabled) {
  const auto prog = [] {
    spawn([] { shadow_write(&g_slot, 4, SrcTag{"writer"}); });
    shadow_read(&g_slot, 4, SrcTag{"reader"});
    sync();
  };
  spec::NoSteal none;

  ProvenanceOptions capped;
  capped.oracle_strand_cap = 0;  // everything exceeds the cap
  RaceLog log = Rader::check_determinacy(prog, none);
  log.stamp_found_under(none.describe());
  ASSERT_GT(annotate_provenance(log, prog, capped), 0u);
  EXPECT_NE(log.determinacy_races()[0].provenance_json.find(
                "\"oracle\":\"skipped\""),
            std::string::npos);

  ProvenanceOptions off;
  off.cross_check = false;
  RaceLog log2 = Rader::check_determinacy(prog, none);
  log2.stamp_found_under(none.describe());
  ASSERT_GT(annotate_provenance(log2, prog, off), 0u);
  EXPECT_EQ(log2.determinacy_races()[0].provenance_json.find("\"oracle\""),
            std::string::npos);
}

}  // namespace
}  // namespace rader
