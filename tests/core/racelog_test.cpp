// RaceLog bookkeeping: dedup, caps, merge, clear, serialization.
#include "core/race_report.hpp"

#include <gtest/gtest.h>

namespace rader {
namespace {

DeterminacyRace det(std::uintptr_t addr, FrameId cur = 2) {
  DeterminacyRace r;
  r.addr = addr;
  r.current_kind = AccessKind::kWrite;
  r.prior_frame = 1;
  r.current_frame = cur;
  r.current_label = "label";
  return r;
}

TEST(RaceLog, CountsOccurrencesButStoresDistinct) {
  RaceLog log;
  for (int i = 0; i < 10; ++i) log.report_determinacy(det(0x100));
  log.report_determinacy(det(0x200));
  EXPECT_EQ(log.determinacy_count(), 11u);
  EXPECT_EQ(log.determinacy_races().size(), 2u);
}

TEST(RaceLog, StorageCapLimitsReportsNotCounts) {
  RaceLog log(/*max_stored=*/3);
  for (std::uintptr_t a = 0; a < 10; ++a) log.report_determinacy(det(a));
  EXPECT_EQ(log.determinacy_count(), 10u);
  EXPECT_EQ(log.determinacy_races().size(), 3u);
}

TEST(RaceLog, ViewReadDedupPerReducer) {
  RaceLog log;
  ViewReadRace r;
  r.reducer = 5;
  log.report_view_read(r);
  log.report_view_read(r);
  r.reducer = 6;
  log.report_view_read(r);
  EXPECT_EQ(log.view_read_count(), 3u);
  EXPECT_EQ(log.view_read_races().size(), 2u);
}

TEST(RaceLog, MergeDedupsAcrossLogs) {
  RaceLog a, b;
  a.report_determinacy(det(0x1));
  b.report_determinacy(det(0x1));
  b.report_determinacy(det(0x2));
  a.merge(b);
  EXPECT_EQ(a.determinacy_count(), 3u);
  EXPECT_EQ(a.determinacy_races().size(), 2u);
}

TEST(RaceLog, ClearResetsEverything) {
  RaceLog log;
  log.report_determinacy(det(0x1));
  ViewReadRace r;
  r.reducer = 1;
  log.report_view_read(r);
  log.clear();
  EXPECT_FALSE(log.any());
  EXPECT_TRUE(log.determinacy_races().empty());
  EXPECT_TRUE(log.view_read_races().empty());
  // Dedup sets must be reset too: the same address reports again.
  log.report_determinacy(det(0x1));
  EXPECT_EQ(log.determinacy_races().size(), 1u);
}

TEST(RaceLog, StampOnlyFillsEmptyFields) {
  RaceLog log;
  auto r = det(0x1);
  r.found_under = "original";
  log.report_determinacy(r);
  log.report_determinacy(det(0x2));
  log.stamp_found_under("fresh");
  EXPECT_EQ(log.determinacy_races()[0].found_under, "original");
  EXPECT_EQ(log.determinacy_races()[1].found_under, "fresh");
}

TEST(RaceLog, JsonEscapesLabels) {
  RaceLog log;
  auto r = det(0x1);
  r.current_label = "quote\" backslash\\ newline\n";
  log.report_determinacy(r);
  const std::string json = log.to_json();
  EXPECT_NE(json.find("quote\\\" backslash\\\\ newline\\n"),
            std::string::npos);
}

TEST(RaceLog, EmptyLogSerializes) {
  RaceLog log;
  EXPECT_EQ(log.to_json(),
            "{\"view_read_occurrences\":0,\"determinacy_occurrences\":0,"
            "\"view_read_races\":[],\"determinacy_races\":[]}");
  EXPECT_NE(log.to_string().find("0 view-read"), std::string::npos);
}

}  // namespace
}  // namespace rader
