// Rerun-vs-prefix sweep equivalence battery.
//
// SweepStrategy::kPrefix (core/sweep.hpp) promises that organizing the
// specification family as a checkpoint/fork trie changes only how much
// detector work is performed, never the answer: for address-stable programs
// the merged report is BYTE-IDENTICAL to SweepStrategy::kRerun at every
// thread count — same race identity sets, same occurrence totals, same
// eliciting-spec (replay handle) sets, same spec_runs / specs_skipped —
// including under stop_after_first_race.
//
// The battery drives RADER_SWEEP_EQ_PROGRAMS seeded programs (default: the
// compile-time RADER_SWEEP_EQ_DEFAULT; the fast gate builds this file with
// 50, the stress target with 300) through both strategies at 1/2/4/8
// workers and literally compares RaceLog::to_json().
//
// What makes literal comparison valid — and what the corpus must respect:
//   * races live at GLOBAL pool addresses (stable across workers/instances);
//   * the programs only ANNOTATE accesses (no real stores), so one shared
//     instance is safe to run from many workers concurrently;
//   * control flow is a pure function of the seed — never of data read, and
//     never of the steal decisions — so every execution consumes the same
//     decision points;
//   * reducer traffic exercises view minting/merging, but nothing annotates
//     view MEMORY: views live in per-worker-thread arenas
//     (runtime/view_arena.hpp), so races at view addresses would break
//     cross-worker byte-identity.  (Programs that do race on views are
//     covered by the normalized-signature test below.)
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/driver.hpp"
#include "core/sweep.hpp"
#include "dag/random_program.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/spec_family.hpp"
#include "spec/steal_spec.hpp"
#include "support/metrics.hpp"

#ifndef RADER_SWEEP_EQ_DEFAULT
#define RADER_SWEEP_EQ_DEFAULT 300
#endif

namespace rader {
namespace {

int program_count() {
  if (const char* env = std::getenv("RADER_SWEEP_EQ_PROGRAMS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return RADER_SWEEP_EQ_DEFAULT;
}

// ---- The seeded corpus -----------------------------------------------------

struct Rng {
  std::uint64_t state;
  std::uint64_t next() {  // splitmix64
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ull;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
};

// Named racing locations.  Nothing is ever actually stored here — programs
// only annotate — which is what lets one instance run concurrently.
int g_pool[16];

void node(Rng& rng, reducer<monoid::op_add<long>>& sum, int depth) {
  const int actions = 2 + static_cast<int>(rng.next() % 3);
  for (int a = 0; a < actions; ++a) {
    const std::uint64_t roll = rng.next();
    const int slot = static_cast<int>((roll >> 8) % 16);
    switch (roll % 5) {
      case 0:
      case 1: {
        const bool deeper = depth < 3 && (roll & (1u << 20)) != 0;
        spawn([&rng, &sum, slot, deeper, depth] {
          shadow_write(&g_pool[slot], sizeof(int), SrcTag{"eq spawned write"});
          sum += 1;
          if (deeper) node(rng, sum, depth + 1);
        });
        break;
      }
      case 2:
        shadow_read(&g_pool[slot], sizeof(int), SrcTag{"eq continuation read"});
        break;
      case 3:
        shadow_write(&g_pool[slot], sizeof(int),
                     SrcTag{"eq continuation write"});
        break;
      case 4:
        sync();
        break;
    }
  }
  (void)sum.get_value(SrcTag{"eq tail read"});
  sync();
}

/// One corpus member: spawn/sync tree, annotated pool accesses, and reducer
/// updates, all derived from `seed` alone.  The leading spawn guarantees at
/// least one continuation point and one cross-strand race candidate.
struct SeededProgram {
  std::uint64_t seed;

  void operator()() const {
    Rng rng{(seed + 1) * 0x9E3779B97F4A7C15ull};
    reducer<monoid::op_add<long>> sum(SrcTag{"eq sum"});
    const int slot = static_cast<int>(rng.next() % 16);
    spawn([&sum, slot] {
      shadow_write(&g_pool[slot], sizeof(int), SrcTag{"eq spawned write"});
      sum += 1;
    });
    shadow_read(&g_pool[slot], sizeof(int), SrcTag{"eq continuation read"});
    node(rng, sum, 0);
    sync();
  }
};

/// The Section-7 family sized to the program (as fuzz/differ does), plus the
/// two fixed endpoints.
std::vector<std::unique_ptr<spec::StealSpec>> family_for(
    const SeededProgram& program) {
  SerialEngine::Stats probe;
  {
    spec::NoSteal none;
    SerialEngine engine(nullptr, &none);
    engine.run([&] { program(); });
    probe = engine.stats();
  }
  const auto k = std::max<std::uint32_t>(
      1, std::min<std::uint32_t>(probe.max_sync_block, 6));
  const auto d = std::max<std::uint64_t>(
      1, std::min<std::uint64_t>(probe.max_spawn_depth, 10));
  auto family = spec::full_coverage_family(k, d);
  family.push_back(std::make_unique<spec::NoSteal>());
  family.push_back(std::make_unique<spec::StealAll>());
  return family;
}

struct SweepDigest {
  std::string log_json;
  std::uint64_t spec_runs = 0;
  std::uint64_t specs_skipped = 0;
  bool any_race = false;
};

SweepDigest run_sweep(const SeededProgram& program,
                      const std::vector<std::unique_ptr<spec::StealSpec>>& fam,
                      SweepStrategy strategy, unsigned threads,
                      bool stop_first, metrics::Snapshot* metrics_out) {
  SweepOptions options;
  options.threads = threads;
  options.strategy = strategy;
  options.stop_after_first_race = stop_first;
  const SweepResult result =
      sweep_family(shared_program([program] { program(); }), fam, options);
  if (metrics_out != nullptr) metrics_out->add(result.metrics);
  return SweepDigest{result.log.to_json(), result.spec_runs,
                     result.specs_skipped, result.log.any()};
}

void expect_digest_equal(const SweepDigest& got, const SweepDigest& want,
                         std::uint64_t seed, const char* strategy,
                         unsigned threads, bool stop_first) {
  const auto ctx = [&] {
    return "seed " + std::to_string(seed) + ", " + strategy + ", " +
           std::to_string(threads) + " thread(s)" +
           (stop_first ? ", stop-first" : "");
  };
  ASSERT_EQ(got.log_json, want.log_json) << ctx();
  ASSERT_EQ(got.spec_runs, want.spec_runs) << ctx();
  ASSERT_EQ(got.specs_skipped, want.specs_skipped) << ctx();
}

// ---- Byte-identity battery -------------------------------------------------

TEST(SweepStrategyEquivalence, PrefixByteIdenticalToRerunAtEveryJobCount) {
  const int kPrograms = program_count();
  int racy = 0;
  metrics::Snapshot prefix_metrics;
  for (int seed = 1; seed <= kPrograms; ++seed) {
    const SeededProgram program{static_cast<std::uint64_t>(seed)};
    const auto family = family_for(program);
    const SweepDigest base = run_sweep(program, family, SweepStrategy::kRerun,
                                       1, false, nullptr);
    racy += base.any_race;

    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      const SweepDigest prefix =
          run_sweep(program, family, SweepStrategy::kPrefix, threads, false,
                    &prefix_metrics);
      expect_digest_equal(prefix, base, program.seed, "prefix", threads,
                          false);
      if (threads == 1) continue;  // threads=1 rerun IS the baseline
      const SweepDigest rerun = run_sweep(program, family,
                                          SweepStrategy::kRerun, threads,
                                          false, nullptr);
      expect_digest_equal(rerun, base, program.seed, "rerun", threads, false);
    }
    if (::testing::Test::HasFailure()) return;  // first seed is enough
  }
  // The corpus must elicit races (byte-comparing empty logs proves nothing),
  // and the prefix strategy must actually fast-forward on it: the programs
  // are address-stable by construction, so every fork must be usable and no
  // resume may fall back to a fresh run.
  EXPECT_GE(racy, kPrograms / 2);
  EXPECT_GT(prefix_metrics.counter(metrics::Counter::kSweepForks), 0u);
  EXPECT_GT(prefix_metrics.counter(metrics::Counter::kSweepCheckpoints), 0u);
  EXPECT_EQ(prefix_metrics.counter(metrics::Counter::kSweepResumeFallbacks),
            0u);
}

TEST(SweepStrategyEquivalence, StopFirstByteIdenticalAtEveryJobCount) {
  // Stop-first keeps its lowest-family-index contract under prefix sharing:
  // the merged prefix [0, first racy index] — and therefore the report, the
  // replay handles, and the skip accounting — is byte-identical to rerun's
  // at every thread count.
  const int kPrograms = program_count();
  int stopped_early = 0;
  for (int seed = 1; seed <= kPrograms; ++seed) {
    const SeededProgram program{static_cast<std::uint64_t>(seed)};
    const auto family = family_for(program);
    const SweepDigest base = run_sweep(program, family, SweepStrategy::kRerun,
                                       1, true, nullptr);
    stopped_early += base.specs_skipped > 0;

    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      const SweepDigest prefix = run_sweep(
          program, family, SweepStrategy::kPrefix, threads, true, nullptr);
      expect_digest_equal(prefix, base, program.seed, "prefix", threads, true);
      if (threads == 1) continue;
      const SweepDigest rerun = run_sweep(
          program, family, SweepStrategy::kRerun, threads, true, nullptr);
      expect_digest_equal(rerun, base, program.seed, "rerun", threads, true);
    }
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_GE(stopped_early, kPrograms / 2);
}

// ---- Normalized equivalence on heap/view-racing programs -------------------
//
// RandomProgram instances race on their own heap pools and (with raw-view
// pokes enabled) on reducer-view memory, so byte-identity across workers
// does not apply — the guarantee degrades to the one core/sweep.hpp states
// for per-instance addresses: identical race sets up to address renaming.
// Reuse the normalized-signature methodology of
// tests/property/sweep_equivalence_test.cpp to compare the two strategies.

struct Instances {
  std::mutex m;
  std::vector<std::shared_ptr<dag::RandomProgram>> programs;
};

ProgramFactory tracking_factory(const dag::RandomProgramParams& params,
                                std::shared_ptr<Instances> instances) {
  return [params, instances] {
    auto p = std::make_shared<dag::RandomProgram>(params);
    {
      std::lock_guard<std::mutex> lock(instances->m);
      instances->programs.push_back(p);
    }
    return std::function<void()>([p] { (*p)(); });
  };
}

// identity -> (total occurrences, total eliciting specs) over the log.
using SigMap = std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>;

SigMap signatures(const RaceLog& log, const Instances& instances) {
  // RandomProgram accesses to reducer-view memory carry these labels.  View
  // objects are created and destroyed per RUN, so their addresses have no
  // cross-run name — worse, a freed view's bytes can later host another
  // instance's pool, making address classification outright misleading for
  // them.  Classify view-side races by label, address-free.
  const auto is_view_label = [](const std::string& label) {
    return label == "raw view read" || label == "raw view write" ||
           label == "cnt update" || label == "cnt update (shared)";
  };
  const auto normalize = [&](std::uintptr_t addr,
                             const std::string& label) -> std::string {
    if (is_view_label(label)) return "view";
    for (const auto& p : instances.programs) {
      const auto [lo, hi] = p->pool_range();
      if (addr >= lo && addr < hi) {
        return "pool+" + std::to_string(addr - lo);
      }
    }
    return "non-pool";
  };
  SigMap sigs;
  const auto tally = [&](const std::string& key, std::uint64_t occurrences,
                         std::uint64_t specs) {
    auto& entry = sigs[key];
    entry.first += occurrences;
    entry.second += specs;
  };
  for (const auto& r : log.determinacy_races()) {
    tally("D|" + normalize(r.addr, r.current_label) + "|" +
              std::to_string(static_cast<int>(r.current_kind)) + "|" +
              std::to_string(r.current_view_aware) + "|" +
              std::to_string(r.prior_was_write) + "|" + r.current_label,
          r.occurrences, r.eliciting_specs.size());
  }
  for (const auto& r : log.view_read_races()) {
    tally("V|" + std::to_string(r.reducer) + "|" + r.prior_label + "|" +
              r.current_label,
          r.occurrences, r.eliciting_specs.size());
  }
  return sigs;
}

TEST(SweepStrategyEquivalence, PrefixMatchesRerunOnRandomHeapPrograms) {
  const int kPrograms = std::max(10, program_count() / 5);
  int racy = 0;
  for (int seed = 1; seed <= kPrograms; ++seed) {
    dag::RandomProgramParams params;
    params.seed = static_cast<std::uint64_t>(seed);
    params.max_depth = 3;
    params.max_actions = 6;
    params.num_reducers = 2;
    params.num_locations = 4;
    // Raw-view pokes ON: races at reducer-view addresses drive this corpus
    // through the path byte-identity cannot cover.
    params.p_raw_view = 0.10;
    params.p_update_shared = 0.10;

    auto base_instances = std::make_shared<Instances>();
    const auto base =
        Rader::check_exhaustive(tracking_factory(params, base_instances),
                                SweepOptions{}, /*k_cap=*/6, /*depth_cap=*/8);
    const auto base_sigs = signatures(base.log, *base_instances);
    racy += base.log.any();

    for (const unsigned threads : {1u, 4u}) {
      SweepOptions options;
      options.threads = threads;
      options.strategy = SweepStrategy::kPrefix;
      auto instances = std::make_shared<Instances>();
      const auto result =
          Rader::check_exhaustive(tracking_factory(params, instances), options,
                                  /*k_cap=*/6, /*depth_cap=*/8);
      ASSERT_EQ(result.spec_runs, base.spec_runs)
          << "seed " << seed << ", " << threads << " thread(s)";
      ASSERT_EQ(signatures(result.log, *instances), base_sigs)
          << "seed " << seed << ", " << threads << " thread(s)";
    }
  }
  EXPECT_GE(racy, kPrograms / 10);
}

}  // namespace
}  // namespace rader
