// End-to-end reproductions of the paper's worked examples:
//   * Figure 1: the shallow-copy linked-list program whose race hides inside
//     a Reduce — missed by SP-bags (Cilk Screen), caught by SP+.
//   * Section 6's Figure 5 walkthrough: same-view accesses after a P-bag
//     union are not reported; different-P-bag accesses are.
#include <gtest/gtest.h>

#include "apps/mylist.hpp"
#include "core/driver.hpp"
#include "dag/oracle.hpp"
#include "dag/recorder.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"

namespace rader {
namespace {

using apps::list_monoid;
using apps::MyList;

// Figure 1, update_list — a Cilk function, so it gets its own frame.
void update_list(int n, MyList& list) {
  call([&] {
    reducer<list_monoid> list_reducer(SrcTag{"list_reducer"});
    list_reducer.set_value(list, SrcTag{"set_value(list)"});
    parallel_for_flat<int>(
        0, n,
        [&](int i) {
          list_reducer.update([&](MyList& view) { view.insert(i); },
                              SrcTag{"list insert"});
        },
        /*chunks=*/6);
    sync();
    list = list_reducer.take_value(SrcTag{"get_value()"});
  });
}

// Figure 1, race.
void race_fig1(int n, MyList& list) {
  int length = 0;
  MyList copy(list);  // BUG: shallow copy
  spawn([&] { length = list.scan(SrcTag{"scan_list"}); });
  update_list(n, copy);
  sync();
  (void)length;
}

struct Fig1Fixture : ::testing::Test {
  MyList owned;
  void SetUp() override {
    for (int i = 0; i < 8; ++i) owned.insert(100 + i);
  }
  void TearDown() override { owned.destroy(); }

  std::function<void()> program() {
    return [this] {
      MyList working = owned;  // fresh shallow handle per run
      race_fig1(6, working);
    };
  }
};

TEST_F(Fig1Fixture, SpBagsMissesTheReduceRace) {
  // "A tool such as Cilk Screen will not catch this particular race,
  // because the determinacy race involves a view-aware instruction executed
  // in a Reduce operation."  The racing location is the shared last node's
  // next pointer, written only by the concatenation inside Reduce.
  const apps::ListNode* last = owned.head();
  while (last->next != nullptr) last = last->next;
  const auto racy_addr = reinterpret_cast<std::uintptr_t>(&last->next);

  const auto prog = program();
  // Reducer-aware serial checking (SP+ with no steals, Cilk Screen's view):
  // completely clean — the Reduce never executes serially.
  spec::NoSteal none;
  EXPECT_FALSE(Rader::check_determinacy(prog, none).any());
  // Plain SP-bags is reducer-OBLIVIOUS: it may flag parallel updates to the
  // shared view header (spurious — reducers make those safe), but it cannot
  // flag the real race: the Reduce instruction never ran.
  const RaceLog spbags = Rader::check_spbags(prog);
  for (const auto& race : spbags.determinacy_races()) {
    EXPECT_NE(race.addr, racy_addr)
        << "SP-bags cannot see a Reduce that never executed";
  }
  // SP+ under steals catches exactly that location.
  spec::TripleSteal triple(0, 1, 2);
  const RaceLog spplus = Rader::check_determinacy(prog, triple);
  bool found = false;
  for (const auto& race : spplus.determinacy_races()) {
    found |= (race.addr >= racy_addr &&
              race.addr < racy_addr + sizeof(apps::ListNode*));
  }
  EXPECT_TRUE(found) << "SP+ should flag the shared tail node's next pointer";
}

TEST_F(Fig1Fixture, SpPlusCatchesTheReduceRaceUnderSteals) {
  const auto prog = program();
  spec::TripleSteal triple(0, 1, 2);
  const RaceLog log = Rader::check_determinacy(prog, triple);
  EXPECT_TRUE(log.any());
}

TEST_F(Fig1Fixture, OracleConfirmsTheRaceOnTheSameExecution) {
  const auto prog = program();
  spec::TripleSteal triple(0, 1, 2);
  RaceLog log;
  SpPlusDetector detector(&log);
  dag::Recorder recorder;
  ToolChain chain;
  chain.add(&detector);
  chain.add(&recorder);
  SerialEngine engine(&chain, &triple);
  engine.run(prog);
  const dag::OracleResult oracle = dag::run_oracle(recorder.dag());
  EXPECT_TRUE(oracle.any_determinacy);
  EXPECT_TRUE(log.any());
  // Every address SP+ reported is a ground-truth racing address.
  for (const auto& r : log.determinacy_races()) {
    EXPECT_TRUE(oracle.racing_addrs.count(r.addr) > 0);
  }
}

TEST_F(Fig1Fixture, ExhaustiveDriverFindsItWithoutHandPickedSpec) {
  const auto prog = program();
  const auto result = Rader::check_exhaustive(prog, /*k_cap=*/8);
  EXPECT_TRUE(result.log.determinacy_count() > 0);
  EXPECT_GT(result.spec_runs, 1u);
}

TEST_F(Fig1Fixture, FixedProgramWithDeepCopyIsClean) {
  // The fix the paper implies: a DEEP copy shares no nodes.
  const auto fixed = [this] {
    MyList deep;
    for (const apps::ListNode* n = owned.head(); n != nullptr; n = n->next) {
      deep.insert(n->value);
    }
    int length = 0;
    MyList snapshot = owned;
    spawn([&] { length = snapshot.scan(); });
    update_list(6, deep);
    sync();
    deep.destroy();
    (void)length;
  };
  spec::TripleSteal triple(0, 1, 2);
  EXPECT_FALSE(Rader::check_determinacy(fixed, triple).any());
  EXPECT_FALSE(Rader::check_view_read(fixed).any());
}

TEST_F(Fig1Fixture, NoViewReadRaceInFig1) {
  // Figure 1's discipline around set_value/get_value is correct: the bug is
  // a determinacy race, not a view-read race.
  EXPECT_FALSE(Rader::check_view_read(program()).any());
}

}  // namespace
}  // namespace rader
