// Parallel-vs-serial Peer-Set equivalence: check_parallel must report the
// EXACT race log of a serial no-steal Peer-Set run — same reducer ids, same
// frame ids, same labels, same occurrence counts, same stored order — at
// every worker count, on the whole litmus suite, on random programs, and on
// the fuzzer's distilled reproducer corpus.  This is the tentpole contract
// of the shard replay design (tool/shard.hpp): the event stream worker 0
// replays is byte-identical to the serial projection's, so anything short of
// exact equality is a splice-order or renumbering bug.
//
// Built twice (tests/CMakeLists.txt): the fast gate runs a small random
// batch, the stress tier the full 200-program battery; the
// RADER_PAR_EQ_PROGRAMS environment variable overrides either.
//
// NOT part of the sched/TSan label on purpose: random programs and several
// litmus cases contain deliberate data races (torn pool writes, raw-view
// pokes) that are the detector's subject matter, not bugs in the engine.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "../litmus/litmus_cases.hpp"
#include "core/driver.hpp"
#include "dag/program_serial.hpp"
#include "dag/random_program.hpp"
#include "fuzz/differ.hpp"

#ifndef RADER_PAR_EQ_DEFAULT
#define RADER_PAR_EQ_DEFAULT 8
#endif
#ifndef RADER_FUZZ_CORPUS_DIR
#error "RADER_FUZZ_CORPUS_DIR must point at tests/fuzz/corpus"
#endif

namespace rader {
namespace {

constexpr unsigned kJobs[] = {1, 2, 4, 8};

// The one litmus case that is undefined behavior on a REAL parallel engine:
// it destroys the reducer while a spawned updater is still running, so the
// updater's `*sum += 1` is a use-after-free when the child executes on
// another worker.  The serial engines merely simulate the schedule and can
// report the misuse safely; the parallel engine actually executes it.
constexpr const char* kUnsafeUnderRealParallelism = "destroy-before-sync";

using RaceTuple = std::tuple<ReducerId, FrameId, FrameId, std::string,
                             std::string, std::uint64_t>;

std::vector<RaceTuple> race_tuples(const RaceLog& log) {
  std::vector<RaceTuple> out;
  for (const ViewReadRace& r : log.view_read_races()) {
    out.emplace_back(r.reducer, r.prior_frame, r.current_frame, r.prior_label,
                     r.current_label, r.occurrences);
  }
  return out;
}

std::size_t program_count() {
  if (const char* env = std::getenv("RADER_PAR_EQ_PROGRAMS")) {
    const unsigned long n = std::strtoul(env, nullptr, 10);
    if (n > 0) return n;
  }
  return RADER_PAR_EQ_DEFAULT;
}

TEST(ParallelEquivalence, LitmusSuiteIsExactAtEveryJobsValue) {
  std::size_t checked = 0;
  for (const litmus::Case& c : litmus::all_cases()) {
    if (c.name == kUnsafeUnderRealParallelism) continue;
    SCOPED_TRACE(c.name + " — " + c.why);
    const RaceLog serial = Rader::check_view_read([&] { c.program(); });
    EXPECT_EQ(serial.view_read_count() > 0, c.peerset);
    for (const unsigned jobs : kJobs) {
      const RaceLog par = Rader::check_parallel([&] { c.program(); }, jobs);
      EXPECT_EQ(par.view_read_count(), serial.view_read_count())
          << "jobs=" << jobs;
      EXPECT_EQ(race_tuples(par), race_tuples(serial)) << "jobs=" << jobs;
    }
    ++checked;
  }
  EXPECT_GE(checked, 20u) << "litmus corpus shrank unexpectedly";
}

TEST(ParallelEquivalence, RandomProgramsAreExactAtEveryJobsValue) {
  const std::size_t n = program_count();
  std::size_t racy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const dag::RandomProgramParams params =
        fuzz::fuzz_params(/*seed=*/0x9a7a11e1u + 17 * i);
    dag::RandomProgram program(params);
    SCOPED_TRACE("seed=" + std::to_string(params.seed) +
                 " actions=" + std::to_string(program.action_count()));
    const RaceLog serial = Rader::check_view_read([&] { program(); });
    if (serial.view_read_count() > 0) ++racy;
    for (const unsigned jobs : kJobs) {
      const RaceLog par = Rader::check_parallel([&] { program(); }, jobs);
      EXPECT_EQ(par.view_read_count(), serial.view_read_count())
          << "jobs=" << jobs;
      EXPECT_EQ(race_tuples(par), race_tuples(serial)) << "jobs=" << jobs;
    }
    // One-worker schedules are deterministic, so the reducer arithmetic must
    // be too (raw-view actions make cross-schedule totals uncomparable, but
    // a FIXED schedule replayed twice has exactly one meaning).
    long first_total = 0;
    {
      const RaceLog unused = Rader::check_parallel([&] { program(); }, 1);
      (void)unused;
      first_total = program.reducer_total();
    }
    const RaceLog unused = Rader::check_parallel([&] { program(); }, 1);
    (void)unused;
    EXPECT_EQ(program.reducer_total(), first_total);
  }
  // Non-vacuity: the batch must actually exercise the view-read reporting
  // path, not just compare empty logs.
  EXPECT_GT(racy, 0u) << "no random program produced a view-read race; "
                         "reseed the batch";
}

TEST(ParallelEquivalence, FuzzCorpusReplaysAreExactAtEveryJobsValue) {
  const char* kCorpusFiles[] = {
      "fig6_shadow_slot.rprog",
      "view_read_race.rprog",
      "reduce_vs_oblivious.rprog",
  };
  for (const char* name : kCorpusFiles) {
    std::string error;
    auto repro = dag::load_reproducer(
        std::string(RADER_FUZZ_CORPUS_DIR) + "/" + name, &error);
    ASSERT_TRUE(repro.has_value()) << name << ": " << error;
    dag::RandomProgram program(repro->tree, repro->params);
    SCOPED_TRACE(name);
    const RaceLog serial = Rader::check_view_read([&] { program(); });
    for (const unsigned jobs : kJobs) {
      const RaceLog par = Rader::check_parallel([&] { program(); }, jobs);
      EXPECT_EQ(par.view_read_count(), serial.view_read_count())
          << "jobs=" << jobs;
      EXPECT_EQ(race_tuples(par), race_tuples(serial)) << "jobs=" << jobs;
    }
  }
}

}  // namespace
}  // namespace rader
