// Engine hardening: misuse diagnostics, deep structures, reentrancy
// boundaries, and allocator-facing edge cases.
#include <gtest/gtest.h>

#include "core/spplus.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/run.hpp"
#include "runtime/serial_engine.hpp"
#include "sched/parallel_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

TEST(EngineEdge, SpawnOutsideRunDiesWithDiagnostic) {
  SerialEngine engine;
  Engine::Scope scope(&engine);
  EXPECT_DEATH(spawn([] {}), "spawn outside");
}

TEST(EngineEdge, NestedRunDies) {
  SerialEngine engine;
  EXPECT_DEATH(engine.run([&] { engine.run([] {}); }), "not reentrant");
}

TEST(EngineEdge, SyncWithNoEngineIsANoOp) {
  sync();  // must not crash
  SUCCEED();
}

TEST(EngineEdge, DeepSpawnNesting) {
  // 2000-deep spawn chain: one unsynced spawn per level.
  std::function<void(int)> deep = [&](int n) {
    if (n == 0) return;
    spawn([&deep, n] { deep(n - 1); });
    sync();
  };
  SerialEngine engine;
  engine.run([&] { deep(2000); });
  EXPECT_EQ(engine.stats().max_spawn_depth, 2000u);
}

TEST(EngineEdge, WideSyncBlock) {
  spec::StealAll all;
  SerialEngine stealing(nullptr, &all);
  long total = 0;
  stealing.run([&] {
    reducer<monoid::op_add<long>> sum;
    for (int i = 0; i < 5000; ++i) {
      spawn([&sum] { sum += 1; });
    }
    sync();
    total = sum.get_value();
  });
  EXPECT_EQ(total, 5000);
  EXPECT_EQ(stealing.stats().steals, 5000u);
  EXPECT_EQ(stealing.stats().max_sync_block, 5000u);
}

TEST(EngineEdge, NestedReducerUpdates) {
  // An update that itself updates ANOTHER reducer: the view-aware bracket
  // nests; both values must come out right.
  spec::StealAll all;
  SerialEngine stealing(nullptr, &all);
  long a_val = 0, b_val = 0;
  stealing.run([&] {
    reducer<monoid::op_add<long>> a, b;
    for (int i = 0; i < 10; ++i) {
      spawn([&] {
        a.update([&](long& av) {
          av += 1;
          b.update([&](long& bv) { bv += 2; });
        });
      });
    }
    sync();
    a_val = a.get_value();
    b_val = b.get_value();
  });
  EXPECT_EQ(a_val, 10);
  EXPECT_EQ(b_val, 20);
}

TEST(EngineEdge, ReducerCreatedInsideUpdateOfAnother) {
  // Degenerate but legal: Create a reducer inside a view-aware bracket.
  long inner_total = 0;
  run_serial([&] {
    reducer<monoid::op_add<long>> outer;
    outer.update([&](long& v) {
      reducer<monoid::op_add<long>> inner;
      inner += 5;
      inner_total = inner.get_value();
      v += inner_total;
    });
  });
  EXPECT_EQ(inner_total, 5);
}

TEST(EngineEdge, ManySequentialRunsDoNotLeakState) {
  SerialEngine engine;
  for (int rep = 0; rep < 50; ++rep) {
    long total = 0;
    engine.run([&] {
      reducer<monoid::op_add<long>> sum;
      parallel_for<int>(0, 64, [&](int) { sum += 1; }, 8);
      sync();
      total = sum.get_value();
    });
    ASSERT_EQ(total, 64);
    ASSERT_EQ(engine.stats().frames, engine.stats().frames);  // stats fresh
  }
}

TEST(EngineEdge, AlternatingEnginesShareNothing) {
  SerialEngine serial;
  ParallelEngine parallel(2);
  reducer<monoid::op_add<long>> sum;  // bound lazily per engine run
  serial.run([&] {
    spawn([&] { sum += 1; });
    sync();
  });
  parallel.run([&] {
    parallel_for<int>(0, 10, [&](int) { sum += 1; }, 2);
    sync();
  });
  serial.run([&] {
    spawn([&] { sum += 1; });
    sync();
  });
  EXPECT_EQ(sum.get_value(), 12);
}

TEST(EngineEdge, ParallelForGrainLargerThanRange) {
  int count = 0;
  run_serial([&] {
    parallel_for<int>(0, 5, [&](int) { ++count; }, 100);
  });
  EXPECT_EQ(count, 5);
}

TEST(EngineEdge, ParallelForNegativeAndReversedRanges) {
  int count = 0;
  run_serial([&] {
    parallel_for<int>(-10, -2, [&](int) { ++count; }, 2);
    parallel_for<int>(7, 3, [&](int) { ++count; });  // empty
  });
  EXPECT_EQ(count, 8);
}

TEST(EngineEdge, StealSpecConsultedInsideReduceFramesIsHarmless) {
  // A spec that steals EVERYTHING also fires inside frames entered for
  // Reduce operations; the engine must keep its epoch discipline.
  struct SpawningReduceMonoid {
    using value_type = long;
    static long identity() { return 0; }
    static void reduce(long& l, long& r) {
      // Reduce code that itself spawns (the paper assumes serial reduce
      // code; the engine still handles it).
      long extra = 0;
      spawn([&extra] { extra = 1; });
      sync();
      l += r + extra - 1;
    }
  };
  spec::StealAll all;
  SerialEngine engine(nullptr, &all);
  long total = 0;
  engine.run([&] {
    reducer<SpawningReduceMonoid> sum;
    for (int i = 0; i < 4; ++i) {
      spawn([&sum] {
        sum.update([](long& v) { v += 1; });
      });
      sum.update([](long& v) { v += 1; });
    }
    sync();
    total = sum.get_value();
  });
  EXPECT_EQ(total, 8);
}

TEST(EngineEdge, ZeroSizedAccessIsIgnoredByDetectors) {
  int x = 0;
  RaceLog log;
  SpPlusDetector detector(&log);
  spec::NoSteal none;
  run_serial(
      [&] {
        spawn([&] { shadow_write(&x, 0); });  // zero-sized
        shadow_read(&x, 0);
        sync();
      },
      &detector, &none);
  EXPECT_FALSE(log.any());
}

}  // namespace
}  // namespace rader
