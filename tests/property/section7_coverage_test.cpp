// End-to-end Section 7 coverage property, on random programs.
//
// For an ostensibly deterministic program, the O(KD + K³) specification
// family must elicit every determinacy race involving at least one
// view-oblivious instruction that ANY schedule can exhibit.  Since
// enumerating all schedules is exponential, ground truth is a large random
// SAMPLE of schedules, evaluated by the brute-force oracle on the recorded
// performance DAG; the property is
//
//   ∪_{sampled schedules} oracle races (with an oblivious side, on
//                          view-oblivious pool memory)
//     ⊆  ∪_{family specs} SP+ reports.
//
// The random programs are built so that schedule-dependent view-aware
// strands really do touch shared memory: updates can write a pool slot and
// arm their reducer's Reduce to re-write it (kUpdateShared), so some races
// exist only under specific steal/reduce patterns.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/spplus.hpp"
#include "dag/oracle.hpp"
#include "dag/random_program.hpp"
#include "dag/recorder.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/spec_family.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

class Section7Coverage : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Section7Coverage, FamilyCoversSampledSchedules) {
  const std::uint64_t seed = GetParam();
  dag::RandomProgramParams params;
  params.seed = seed;
  params.max_depth = 3;
  params.max_actions = 7;
  params.num_reducers = 2;
  params.num_locations = 5;
  params.p_spawn = 0.30;
  params.p_call = 0.05;
  params.p_sync = 0.10;
  params.p_access = 0.25;
  params.p_update = 0.05;
  params.p_reducer_read = 0.0;
  params.p_raw_view = 0.0;
  params.p_update_shared = 0.25;
  dag::RandomProgram program(params);
  const auto [pool_lo, pool_hi] = program.pool_range();
  const auto in_pool = [&](std::uintptr_t a) {
    return a >= pool_lo && a < pool_hi;
  };

  // Ground truth: oracle over a sample of schedules.
  std::unordered_set<std::uintptr_t> sampled;
  const auto sample_schedule = [&](const spec::StealSpec& steal_spec) {
    dag::Recorder recorder;
    SerialEngine engine(&recorder, &steal_spec);
    engine.run([&] { program(); });
    for (const std::uintptr_t a :
         dag::run_oracle(recorder.dag()).racing_addrs_oblivious) {
      if (in_pool(a)) sampled.insert(a);
    }
  };
  {
    const spec::NoSteal none;
    const spec::StealAll all;
    sample_schedule(none);
    sample_schedule(all);
    for (std::uint64_t s = 0; s < 24; ++s) {
      sample_schedule(spec::BernoulliSteal(seed * 131 + s,
                                           s % 2 == 0 ? 0.35 : 0.65));
    }
  }

  // The polynomial family's findings.
  std::unordered_set<std::uintptr_t> found;
  const auto run_family_spec = [&](const spec::StealSpec& steal_spec) {
    RaceLog log;
    SpPlusDetector detector(&log);
    SerialEngine engine(&detector, &steal_spec);
    engine.run([&] { program(); });
    for (const auto& race : log.determinacy_races()) {
      if (in_pool(race.addr)) found.insert(race.addr);
    }
  };
  SerialEngine::Stats probe;
  {
    spec::NoSteal none;
    SerialEngine engine(nullptr, &none);
    engine.run([&] { program(); });
    probe = engine.stats();
    run_family_spec(none);
  }
  const auto k = std::min<std::uint32_t>(probe.max_sync_block, 10);
  const auto d = std::min<std::uint64_t>(probe.max_spawn_depth, 24);
  for (const auto& steal_spec : spec::full_coverage_family(k, d)) {
    run_family_spec(*steal_spec);
  }

  for (const std::uintptr_t a : sampled) {
    EXPECT_TRUE(found.count(a) > 0)
        << "seed " << seed << ": race at pool offset " << (a - pool_lo)
        << " seen in a sampled schedule but missed by the family";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Section7Coverage,
                         ::testing::Range<std::uint64_t>(7000, 7030));

}  // namespace
}  // namespace rader
