// Parallel-vs-serial sweep equivalence property.
//
// The sweep engine (core/sweep.hpp) promises that sharding the Section-7
// specification family across a worker pool changes only wall-clock time,
// never the answer: per-spec logs are merged in family order, so the merged,
// DEDUPLICATED race set is identical at every thread count.
//
// Each worker materializes its own program instance, so raw addresses in the
// reports differ between thread counts (different heaps) — and because the
// dedup key includes the address, one logical race elicited through two
// instances is stored as two entries.  The comparison therefore aggregates
// per NORMALIZED identity: pool addresses become offsets into the owning
// instance's shared pool (RandomProgram::pool_range), and occurrences and
// eliciting-spec counts are summed per identity.  Every spec's log lands in
// exactly one stored entry, so the per-identity sums are exact and must be
// equal at every thread count.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/driver.hpp"
#include "dag/random_program.hpp"

namespace rader {
namespace {

// Every instance a factory created, kept alive so reported addresses can be
// mapped back to the pool of the instance that produced them.
struct Instances {
  std::mutex m;
  std::vector<std::shared_ptr<dag::RandomProgram>> programs;
};

ProgramFactory tracking_factory(const dag::RandomProgramParams& params,
                                std::shared_ptr<Instances> instances) {
  return [params, instances] {
    auto p = std::make_shared<dag::RandomProgram>(params);
    {
      std::lock_guard<std::mutex> lock(instances->m);
      instances->programs.push_back(p);
    }
    return std::function<void()>([p] { (*p)(); });
  };
}

// identity -> (total occurrences, total eliciting specs) over the log.
using SigMap = std::map<std::string, std::pair<std::uint64_t, std::uint64_t>>;

SigMap signatures(const RaceLog& log, const Instances& instances) {
  const auto normalize = [&](std::uintptr_t addr) -> std::string {
    for (const auto& p : instances.programs) {
      const auto [lo, hi] = p->pool_range();
      if (addr >= lo && addr < hi) {
        return "pool+" + std::to_string(addr - lo);
      }
    }
    return "non-pool";
  };
  SigMap sigs;
  const auto tally = [&](const std::string& key, std::uint64_t occurrences,
                         std::uint64_t specs) {
    auto& entry = sigs[key];
    entry.first += occurrences;
    entry.second += specs;
  };
  for (const auto& r : log.determinacy_races()) {
    tally("D|" + normalize(r.addr) + "|" +
              std::to_string(static_cast<int>(r.current_kind)) + "|" +
              std::to_string(r.current_view_aware) + "|" +
              std::to_string(r.prior_was_write) + "|" + r.current_label,
          r.occurrences, r.eliciting_specs.size());
  }
  for (const auto& r : log.view_read_races()) {
    tally("V|" + std::to_string(r.reducer) + "|" + r.prior_label + "|" +
              r.current_label,
          r.occurrences, r.eliciting_specs.size());
  }
  return sigs;
}

TEST(SweepEquivalence, DedupedRaceSetsIdenticalAcrossThreadCounts) {
  constexpr int kPrograms = 200;
  int racy_programs = 0;
  for (int seed = 1; seed <= kPrograms; ++seed) {
    dag::RandomProgramParams params;
    params.seed = static_cast<std::uint64_t>(seed);
    params.max_depth = 3;
    params.max_actions = 6;
    params.num_reducers = 2;
    params.num_locations = 4;
    // Raw-view pokes race at per-instance VIEW addresses, which have no
    // stable cross-instance name; keep the corpus to pool + reducer traffic
    // (update_shared arms the Reduce to write pool slots: the family-only
    // race class stays represented).
    params.p_raw_view = 0.0;
    params.p_update_shared = 0.10;

    auto base_instances = std::make_shared<Instances>();
    const auto base =
        Rader::check_exhaustive(tracking_factory(params, base_instances),
                                SweepOptions{}, /*k_cap=*/6, /*depth_cap=*/8);
    const auto base_sigs = signatures(base.log, *base_instances);
    racy_programs += base.log.any();

    for (const unsigned threads : {2u, 4u, 8u}) {
      SweepOptions options;
      options.threads = threads;
      auto instances = std::make_shared<Instances>();
      const auto result =
          Rader::check_exhaustive(tracking_factory(params, instances), options,
                                  /*k_cap=*/6, /*depth_cap=*/8);
      ASSERT_EQ(result.spec_runs, base.spec_runs)
          << "seed " << seed << ", " << threads << " thread(s)";
      ASSERT_EQ(signatures(result.log, *instances), base_sigs)
          << "seed " << seed << ", " << threads << " thread(s)";
    }
  }
  // The corpus must actually exercise the dedup/merge path, not just agree
  // on empty logs.
  EXPECT_GE(racy_programs, kPrograms / 10);
}

TEST(SweepEquivalence, StopFirstResultsIdenticalAcrossThreadCounts) {
  // Under stop_after_first_race, "first" means lowest FAMILY INDEX: the
  // sweep merges exactly the prefix up to the first racy spec, so the
  // reported race set, spec_runs, and specs_skipped are identical at every
  // thread count — even when a worker finishes a later racy spec first.
  constexpr int kPrograms = 100;
  int stopped_early = 0;
  for (int seed = 1; seed <= kPrograms; ++seed) {
    dag::RandomProgramParams params;
    params.seed = static_cast<std::uint64_t>(seed);
    params.max_depth = 3;
    params.max_actions = 6;
    params.num_reducers = 2;
    params.num_locations = 4;
    params.p_raw_view = 0.0;
    params.p_update_shared = 0.10;

    SweepOptions base_options;
    base_options.threads = 1;
    base_options.stop_after_first_race = true;
    auto base_instances = std::make_shared<Instances>();
    const auto base =
        Rader::check_exhaustive(tracking_factory(params, base_instances),
                                base_options, /*k_cap=*/6, /*depth_cap=*/8);
    const auto base_sigs = signatures(base.log, *base_instances);
    stopped_early += (base.log.any() && base.specs_skipped > 0);

    for (const unsigned threads : {2u, 4u, 8u}) {
      SweepOptions options;
      options.threads = threads;
      options.stop_after_first_race = true;
      auto instances = std::make_shared<Instances>();
      const auto result =
          Rader::check_exhaustive(tracking_factory(params, instances), options,
                                  /*k_cap=*/6, /*depth_cap=*/8);
      ASSERT_EQ(result.spec_runs, base.spec_runs)
          << "seed " << seed << ", " << threads << " thread(s)";
      ASSERT_EQ(result.specs_skipped, base.specs_skipped)
          << "seed " << seed << ", " << threads << " thread(s)";
      ASSERT_EQ(signatures(result.log, *instances), base_sigs)
          << "seed " << seed << ", " << threads << " thread(s)";
    }
  }
  // The corpus must actually exercise the early-stop path, not just sweep
  // clean programs to completion.
  EXPECT_GE(stopped_early, kPrograms / 10);
}

}  // namespace
}  // namespace rader
