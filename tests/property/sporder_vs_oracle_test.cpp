// Property test: the SP-order detector against the brute-force DAG oracle
// AND against SP-bags, on random no-steal (series-parallel) programs.
//
// SP-order and SP-bags maintain the same series-parallel relation with
// different machinery (order-maintenance labels vs disjoint-set bags); on
// reducer-free view-oblivious access streams their verdicts must be
// identical, and both must match the reachability ground truth.
#include <gtest/gtest.h>

#include "core/spbags.hpp"
#include "core/sporder.hpp"
#include "dag/oracle.hpp"
#include "dag/random_program.hpp"
#include "dag/recorder.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

class SpOrderVsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpOrderVsOracle, MatchesOracleAndSpBags) {
  dag::RandomProgramParams params;
  params.seed = GetParam();
  params.max_depth = 4;
  params.max_actions = 8;
  params.num_reducers = 1;
  params.num_locations = 5;
  // Plain accesses only — SP-order is reducer-oblivious by design.  The
  // probabilities sum to 1 so no leftover mass falls through to updates.
  params.p_spawn = 0.25;
  params.p_call = 0.10;
  params.p_sync = 0.15;
  params.p_access = 0.50;
  params.p_update = 0.0;
  params.p_raw_view = 0.0;
  params.p_reducer_read = 0.0;
  dag::RandomProgram program(params);

  spec::NoSteal none;
  RaceLog order_log, bags_log;
  dag::Recorder recorder;
  {
    SpOrderDetector detector(&order_log);
    ToolChain chain;
    chain.add(&detector);
    chain.add(&recorder);
    SerialEngine engine(&chain, &none);
    engine.run([&] { program(); });
  }
  {
    SpBagsDetector detector(&bags_log);
    SerialEngine engine(&detector, &none);
    engine.run([&] { program(); });
  }
  const dag::OracleResult oracle = dag::run_oracle(recorder.dag());

  // Soundness per address, against ground truth.
  for (const auto& race : order_log.determinacy_races()) {
    EXPECT_TRUE(oracle.racing_addrs.count(race.addr) > 0)
        << "seed " << GetParam() << ": SP-order false positive";
  }
  // Completeness per execution.
  EXPECT_EQ(order_log.determinacy_count() > 0, oracle.any_determinacy)
      << "seed " << GetParam();
  // Exact agreement with SP-bags (same relation, different machinery).
  EXPECT_EQ(order_log.determinacy_count(), bags_log.determinacy_count())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpOrderVsOracle,
                         ::testing::Range<std::uint64_t>(3000, 3120));

}  // namespace
}  // namespace rader
