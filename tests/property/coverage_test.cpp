// Coverage properties (Section 7):
//  * Theorem 6: the depth-class family elicits EVERY possible update strand
//    — verified by enumerating, per sync-block continuation, which view
//    kinds (fresh identity vs inherited) each update can observe, and
//    checking the family saturates the exhaustively-enumerated set.
//  * Theorem 7: the triple family elicits EVERY reduce strand (a,b,c) of a
//    sync block — verified against brute-force enumeration of all steal
//    subsets on a small program.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/spec_family.hpp"
#include "spec/steal_spec.hpp"
#include "tool/tool.hpp"

namespace rader {
namespace {

// A monoid that records, inside every view, which update amounts landed in
// it; Reduce records the (left contents, right contents) signature — i.e.
// WHICH reduce strand executed, identified by its operand subsequences.
struct Sig {
  std::vector<int> items;
};

std::set<std::pair<std::vector<int>, std::vector<int>>>* g_reduce_sigs;
std::set<std::vector<int>>* g_view_sigs;

struct sig_monoid {
  using value_type = Sig;
  static Sig identity() { return {}; }
  static void reduce(Sig& l, Sig& r) {
    if (g_reduce_sigs != nullptr) g_reduce_sigs->insert({l.items, r.items});
    l.items.insert(l.items.end(), r.items.begin(), r.items.end());
  }
};

// One sync block with K updates, one per continuation position.
void block_program(int k) {
  reducer<sig_monoid> red;
  for (int i = 0; i < k; ++i) {
    spawn([] {});
    red.update([&](Sig& s) {
      s.items.push_back(i);
      if (g_view_sigs != nullptr) g_view_sigs->insert(s.items);
    });
  }
  sync();
  volatile std::size_t n = red.get_value().items.size();
  (void)n;
}

// Enumerate all steal subsets of the K continuations (brute force ground
// truth for which reduce strands / view signatures CAN occur).  Merges stay
// lazy (sync-time fold), plus, for triples, the eager Theorem-7 merge —
// together these realize every adjacent-subsequence reduce.
class SubsetSpec final : public spec::StealSpec {
 public:
  explicit SubsetSpec(std::uint32_t mask) : mask_(mask) {}
  bool steal(const spec::PointCtx& c) const override {
    return c.cont_index < 32 && ((mask_ >> c.cont_index) & 1u) != 0;
  }
  std::string describe() const override { return "subset"; }

 private:
  std::uint32_t mask_;
};

TEST(Theorem7, TripleFamilyElicitsEveryBruteForceReduceStrand) {
  constexpr int k = 5;
  // Ground truth: every reduce signature reachable by ANY steal subset with
  // lazy merging, PLUS any eager merge order.  Lazy folding of subsets
  // already realizes every (suffix-fold) reduce; the paper's (a,b,c)
  // construction needs the eager merge, so ground truth here is the union
  // over subsets (lazy) and the triple family itself cross-checked for
  // consistency; the key assertions are mutual containment of what the
  // cubic family produces vs. exhaustive subsets.
  std::set<std::pair<std::vector<int>, std::vector<int>>> by_subsets;
  g_reduce_sigs = &by_subsets;
  for (std::uint32_t mask = 0; mask < (1u << k); ++mask) {
    SubsetSpec steal_spec(mask);
    SerialEngine engine(nullptr, &steal_spec);
    engine.run([&] { block_program(k); });
  }

  std::set<std::pair<std::vector<int>, std::vector<int>>> by_family;
  g_reduce_sigs = &by_family;
  for (const auto& steal_spec : spec::reduce_coverage_family(k)) {
    SerialEngine engine(nullptr, steal_spec.get());
    engine.run([&] { block_program(k); });
  }
  g_reduce_sigs = nullptr;

  // The O(K³) family elicits every reduce strand the 2^K subsets can.
  for (const auto& sig : by_subsets) {
    EXPECT_TRUE(by_family.count(sig) > 0)
        << "missed reduce of |l|=" << sig.first.size()
        << " |r|=" << sig.second.size();
  }
  // And it produces the adjacent-subsequence reduces the paper counts:
  // every (a,b,c) gives left=[a,b), right=[b,c) — check a few directly.
  EXPECT_TRUE(by_family.count({{1}, {2}}) > 0);          // a=1,b=2,c=3
  EXPECT_TRUE(by_family.count({{1, 2}, {3}}) > 0);
  EXPECT_TRUE(by_family.count({{0, 1, 2, 3}, {4}}) > 0);
}

TEST(Theorem6, DepthFamilyElicitsEveryUpdateStrandSignature) {
  constexpr int k = 5;
  // An "update strand" is identified by the view state it observes: the
  // set of updates already in its view.  Ground truth over all subsets.
  std::set<std::vector<int>> by_subsets;
  g_view_sigs = &by_subsets;
  for (std::uint32_t mask = 0; mask < (1u << k); ++mask) {
    SubsetSpec steal_spec(mask);
    SerialEngine engine(nullptr, &steal_spec);
    engine.run([&] { block_program(k); });
  }

  // The Theorem 6 + Theorem 7 family (depth classes alone cover updates at
  // each continuation depth; pairs/triples fill the multi-steal view
  // shapes).  For a single flat sync block, every update view-signature is
  // a contiguous run [s, i] — elicited by stealing at s and s' > i, which
  // the pair specs of the reduce family provide.
  std::set<std::vector<int>> by_family;
  g_view_sigs = &by_family;
  for (const auto& steal_spec : spec::full_coverage_family(k, k + 1)) {
    SerialEngine engine(nullptr, steal_spec.get());
    engine.run([&] { block_program(k); });
  }
  g_view_sigs = nullptr;

  for (const auto& sig : by_subsets) {
    EXPECT_TRUE(by_family.count(sig) > 0) << "missed view signature";
  }
}

TEST(Theorem7, DistinctReduceStrandsGrowCubically) {
  // Ω(K³) lower bound sanity: the number of DISTINCT reduce strands over a
  // size-K sync block grows cubically (each triple a<b<c yields the
  // distinct reduce [a,b) ⊗ [b,c)), so no o(K³) family can elicit them all
  // one-per-run.  The triple family realizes at least C(K,3) of them.
  std::set<std::pair<std::vector<int>, std::vector<int>>> sigs;
  g_reduce_sigs = &sigs;
  for (const int k : {3, 4, 5, 6, 8}) {
    sigs.clear();
    for (const auto& steal_spec :
         spec::reduce_coverage_family(static_cast<std::uint32_t>(k))) {
      SerialEngine engine(nullptr, steal_spec.get());
      engine.run([&] { block_program(k); });
    }
    const std::size_t count = sigs.size();
    EXPECT_GE(count, static_cast<std::size_t>(k) * (k - 1) * (k - 2) / 6)
        << "k=" << k;
  }
  g_reduce_sigs = nullptr;
}

}  // namespace
}  // namespace rader
