// View-read races are SCHEDULE-INDEPENDENT: the peer-set relation is a
// property of the computation DAG, not of how the runtime manages views.
// Peer-Set is defined (and normally run) on the serial schedule, but its
// verdict must be identical under any simulated steal specification — the
// reducer-reads and frame structure do not change.
#include <gtest/gtest.h>

#include <set>

#include "core/peerset.hpp"
#include "dag/random_program.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

std::set<ReducerId> racing_reducers(dag::RandomProgram& program,
                                    const spec::StealSpec& steal_spec) {
  RaceLog log;
  PeerSetDetector detector(&log);
  SerialEngine engine(&detector, &steal_spec);
  engine.run([&] { program(); });
  std::set<ReducerId> racing;
  for (const auto& r : log.view_read_races()) racing.insert(r.reducer);
  return racing;
}

class PeerSetInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeerSetInvariance, VerdictIdenticalUnderEverySpec) {
  dag::RandomProgramParams params;
  params.seed = GetParam();
  params.max_depth = 4;
  params.max_actions = 8;
  params.num_reducers = 3;
  params.p_reducer_read = 0.20;
  params.p_update = 0.15;
  params.p_access = 0.10;
  params.p_raw_view = 0.0;
  dag::RandomProgram program(params);

  spec::NoSteal none;
  const std::set<ReducerId> baseline = racing_reducers(program, none);

  spec::StealAll all;
  EXPECT_EQ(racing_reducers(program, all), baseline) << GetParam();
  for (std::uint64_t s = 0; s < 5; ++s) {
    spec::BernoulliSteal b(GetParam() * 17 + s, 0.5);
    EXPECT_EQ(racing_reducers(program, b), baseline)
        << GetParam() << " / " << b.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeerSetInvariance,
                         ::testing::Range<std::uint64_t>(8000, 8060));

}  // namespace
}  // namespace rader
