// Property test: SP+ against the brute-force performance-DAG oracle, on
// hundreds of random programs × random steal specifications.
//
// Section 6: with respect to the execution fixed by the specification, SP+
// "reports a determinacy race in the computation if and only if one exists,
// regardless of whether that determinacy race occurs due to an operation on
// a reducer."  Soundness is checked per address; completeness as the
// whole-execution verdict (the shadow-space pseudotransitivity argument
// guarantees at least one report when any race exists).
#include <gtest/gtest.h>

#include "core/spplus.hpp"
#include "dag/oracle.hpp"
#include "dag/random_program.hpp"
#include "dag/recorder.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

class SpPlusVsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SpPlusVsOracle, SoundAndCompletePerExecution) {
  const std::uint64_t seed = GetParam();
  dag::RandomProgramParams params;
  params.seed = seed;
  params.max_depth = 3;
  params.max_actions = 7;
  params.num_reducers = 2;
  params.num_locations = 5;   // few locations -> conflicts are common
  params.p_access = 0.30;
  params.p_update = 0.20;
  params.p_raw_view = 0.08;
  params.p_reducer_read = 0.02;
  dag::RandomProgram program(params);

  // Three schedules per program: no steals, steal-everything, random.
  const spec::NoSteal none;
  const spec::StealAll all;
  const spec::BernoulliSteal random(seed * 7 + 1, 0.45);
  const spec::StealSpec* specs[] = {&none, &all, &random};
  for (const spec::StealSpec* steal_spec : specs) {
    RaceLog log;
    SpPlusDetector detector(&log);
    dag::Recorder recorder;
    ToolChain chain;
    chain.add(&detector);
    chain.add(&recorder);
    SerialEngine engine(&chain, steal_spec);
    engine.run([&] { program(); });
    const dag::OracleResult oracle = dag::run_oracle(recorder.dag());

    // Soundness: every reported address is ground-truth racing.
    for (const auto& race : log.determinacy_races()) {
      EXPECT_TRUE(oracle.racing_addrs.count(race.addr) > 0)
          << "seed " << seed << " spec " << steal_spec->describe()
          << ": false positive at 0x" << std::hex << race.addr;
    }
    // Completeness: a race exists iff SP+ reports one.
    EXPECT_EQ(log.determinacy_count() > 0, oracle.any_determinacy)
        << "seed " << seed << " spec " << steal_spec->describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpPlusVsOracle,
                         ::testing::Range<std::uint64_t>(1, 151));

}  // namespace
}  // namespace rader
