// Property test: the Peer-Set algorithm against the brute-force peer-set
// oracle, on hundreds of randomly generated programs.
//
// Theorem 4: "The Peer-Set algorithm detects a view-read race in a Cilk
// computation if and only if a view-read race exists."  We check both
// directions, per reducer, on the SAME execution (detector and recorder
// attached via ToolChain).
#include <gtest/gtest.h>

#include "core/peerset.hpp"
#include "dag/oracle.hpp"
#include "dag/random_program.hpp"
#include "dag/recorder.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

struct Verdicts {
  RaceLog log;
  dag::OracleResult oracle;
};

Verdicts run_both(dag::RandomProgram& program) {
  Verdicts v;
  PeerSetDetector detector(&v.log);
  dag::Recorder recorder;
  ToolChain chain;
  chain.add(&detector);
  chain.add(&recorder);
  spec::NoSteal none;
  SerialEngine engine(&chain, &none);
  engine.run([&] { program(); });
  v.oracle = dag::run_view_read_oracle(recorder.dag());
  return v;
}

class PeerSetVsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PeerSetVsOracle, ExactPerReducer) {
  dag::RandomProgramParams params;
  params.seed = GetParam();
  params.max_depth = 4;
  params.max_actions = 8;
  params.num_reducers = 2;
  // Reducer-read heavy mix so view-read races actually occur.
  params.p_reducer_read = 0.25;
  params.p_update = 0.10;
  params.p_access = 0.10;
  params.p_raw_view = 0.0;
  dag::RandomProgram program(params);

  const Verdicts v = run_both(program);

  // Soundness: every reducer the detector flags is oracle-confirmed.
  for (const auto& race : v.log.view_read_races()) {
    EXPECT_TRUE(v.oracle.racing_reducers.count(race.reducer) > 0)
        << "seed " << GetParam() << ": false positive on reducer "
        << race.reducer;
  }
  // Completeness: every oracle-racing reducer is flagged.
  for (const ReducerId h : v.oracle.racing_reducers) {
    bool found = false;
    for (const auto& race : v.log.view_read_races()) {
      found |= (race.reducer == h);
    }
    EXPECT_TRUE(found) << "seed " << GetParam() << ": missed reducer " << h;
  }
  EXPECT_EQ(v.log.any(), v.oracle.any_view_read) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeerSetVsOracle,
                         ::testing::Range<std::uint64_t>(1, 201));

}  // namespace
}  // namespace rader
