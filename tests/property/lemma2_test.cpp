// Property test for Lemma 2 and Feng–Leiserson's Lemma 4, on random
// no-steal computations:
//   * u ‖ v            ⟺  LCA(u, v) in the canonical SP parse tree is a P
//                          node;
//   * peers(u)=peers(v) ⟺  the u–v parse-tree path is all S nodes;
// with ground truth computed by bitset reachability over the recorded DAG.
// Also checks that the engine's spawn-depth (as + ls) equals the number of
// P ancestors in the parse tree — the Theorem 6 depth classes.
#include <gtest/gtest.h>

#include "dag/oracle.hpp"
#include "dag/parse_tree.hpp"
#include "dag/random_program.hpp"
#include "dag/recorder.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

class Lemma2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma2Property, ParseTreeMatchesReachability) {
  dag::RandomProgramParams params;
  params.seed = GetParam();
  params.max_depth = 4;
  params.max_actions = 6;
  params.num_reducers = 1;
  params.p_access = 0.25;
  params.p_update = 0.05;
  params.p_raw_view = 0.0;
  params.p_reducer_read = 0.05;
  dag::RandomProgram program(params);

  dag::Recorder recorder;
  spec::NoSteal none;
  SerialEngine engine(&recorder, &none);
  engine.run([&] { program(); });
  const dag::PerfDag dag = recorder.take();
  ASSERT_EQ(dag.steal_count, 0u);

  const dag::ParseTree tree = dag::ParseTree::build(dag);
  const dag::Reachability reach(dag);
  const std::size_t n = dag.size();
  ASSERT_LE(n, 2000u) << "random program unexpectedly large";
  for (StrandId u = 0; u < n; ++u) {
    for (StrandId v = u + 1; v < n; ++v) {
      EXPECT_EQ(tree.parallel(u, v), reach.parallel(u, v))
          << "seed " << GetParam() << " strands " << u << "," << v;
      EXPECT_EQ(tree.all_s_path(u, v), reach.same_peers(u, v))
          << "seed " << GetParam() << " strands " << u << "," << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma2Property,
                         ::testing::Range<std::uint64_t>(500, 560));

}  // namespace
}  // namespace rader
