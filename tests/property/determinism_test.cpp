// Determinism properties:
//  * a race-free reducer program computes its serial-projection value under
//    EVERY steal specification (serial engine) — associativity is enough;
//  * the parallel work-stealing engine computes the same value for every
//    worker count;
//  * the detection algorithms themselves are deterministic (same program +
//    same spec -> identical reports).
#include <gtest/gtest.h>

#include <string>

#include "core/spplus.hpp"
#include "dag/random_program.hpp"
#include "reducers/monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "runtime/serial_engine.hpp"
#include "sched/parallel_engine.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

class ReducerDeterminism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReducerDeterminism, RandomProgramValueInvariantUnderSpecs) {
  dag::RandomProgramParams params;
  params.seed = GetParam();
  params.max_depth = 4;
  params.max_actions = 8;
  params.num_reducers = 3;
  params.p_update = 0.35;
  params.p_access = 0.10;
  params.p_raw_view = 0.0;      // raw pokes would legitimately perturb values
  params.p_reducer_read = 0.0;  // set_value mid-flight is schedule-dependent
  dag::RandomProgram program(params);

  long expected = 0;
  {
    spec::NoSteal none;
    SerialEngine engine(nullptr, &none);
    engine.run([&] { program(); });
    expected = program.reducer_total();
  }
  const spec::StealAll all;
  SerialEngine engine_all(nullptr, &all);
  engine_all.run([&] { program(); });
  EXPECT_EQ(program.reducer_total(), expected) << "steal-all";

  for (std::uint64_t s = 0; s < 6; ++s) {
    spec::BernoulliSteal b(GetParam() * 31 + s, 0.5);
    SerialEngine engine(nullptr, &b);
    engine.run([&] { program(); });
    EXPECT_EQ(program.reducer_total(), expected) << b.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReducerDeterminism,
                         ::testing::Range<std::uint64_t>(900, 950));

TEST(ParallelDeterminism, NonCommutativeStringAcrossWorkerCounts) {
  const auto compute = [] {
    reducer<monoid::string_append> s;
    parallel_for<int>(0, 26, [&](int i) {
      s.update([&](std::string& v) { v += static_cast<char>('a' + i); });
    }, /*grain=*/1);
    sync();
    return s.get_value();
  };
  const std::string expected = compute();  // serial projection
  EXPECT_EQ(expected, "abcdefghijklmnopqrstuvwxyz");
  for (const unsigned workers : {1u, 2u, 3u, 4u, 8u}) {
    ParallelEngine engine(workers);
    for (int rep = 0; rep < 5; ++rep) {
      std::string got;
      engine.run([&] { got = compute(); });
      EXPECT_EQ(got, expected) << workers << " workers, rep " << rep;
    }
  }
}

TEST(ParallelDeterminism, RandomProgramsOnParallelEngine) {
  for (std::uint64_t seed = 2000; seed < 2010; ++seed) {
    dag::RandomProgramParams params;
    params.seed = seed;
    params.max_depth = 4;
    params.max_actions = 8;
    params.num_reducers = 2;
    params.p_update = 0.40;
    params.p_access = 0.0;  // pool writes race by design; values differ
    params.p_raw_view = 0.0;
    params.p_reducer_read = 0.0;
    dag::RandomProgram program(params);

    SerialEngine serial;
    serial.run([&] { program(); });
    const long expected = program.reducer_total();

    ParallelEngine engine(4);
    for (int rep = 0; rep < 3; ++rep) {
      engine.run([&] { program(); });
      EXPECT_EQ(program.reducer_total(), expected)
          << "seed " << seed << " rep " << rep;
    }
  }
}

TEST(DetectorDeterminism, IdenticalReportsAcrossRepeatedRuns) {
  dag::RandomProgramParams params;
  params.seed = 4242;
  params.p_access = 0.35;
  params.p_raw_view = 0.1;
  dag::RandomProgram program(params);
  spec::BernoulliSteal b(17, 0.5);

  std::string first;
  for (int rep = 0; rep < 3; ++rep) {
    RaceLog log;
    SpPlusDetector detector(&log);
    SerialEngine engine(&detector, &b);
    engine.run([&] { program(); });
    // Address values vary across runs (heap views), so compare the shape:
    // counts of occurrences and distinct locations.
    const std::string summary =
        std::to_string(log.determinacy_count()) + "/" +
        std::to_string(log.determinacy_races().size());
    if (rep == 0) {
      first = summary;
    } else {
      EXPECT_EQ(summary, first) << "rep " << rep;
    }
  }
}

}  // namespace
}  // namespace rader
