// support/common.hpp helpers: the access-extent clamp that keeps detector
// range loops from wrapping at the top of the address space.
#include "support/common.hpp"

#include <gtest/gtest.h>

namespace rader {
namespace {

constexpr std::uintptr_t kMax = ~std::uintptr_t{0};

TEST(AccessLastByte, OrdinaryRangesAreExact) {
  EXPECT_EQ(access_last_byte(0x1000, 1), 0x1000u);
  EXPECT_EQ(access_last_byte(0x1000, 8), 0x1007u);
  EXPECT_EQ(access_last_byte(0, 1), 0u);
}

TEST(AccessLastByte, TopOfAddressSpaceIsReachable) {
  EXPECT_EQ(access_last_byte(kMax, 1), kMax);
  EXPECT_EQ(access_last_byte(kMax - 7, 8), kMax);
}

TEST(AccessLastByte, OverflowClampsToMax) {
  // An 8-byte access starting 3 bytes below the top would wrap; the clamp
  // pins the extent at the last addressable byte instead.
  EXPECT_EQ(access_last_byte(kMax - 2, 8), kMax);
  EXPECT_EQ(access_last_byte(kMax, 2), kMax);
  EXPECT_EQ(access_last_byte(kMax, ~std::size_t{0}), kMax);
}

}  // namespace
}  // namespace rader
