#include "support/order_maintenance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <vector>

#include "support/rng.hpp"

namespace rader {
namespace {

TEST(OrderMaintenance, SingleNode) {
  OrderMaintenance om;
  const auto a = om.make_first();
  EXPECT_FALSE(om.precedes(a, a));
  EXPECT_TRUE(om.check_invariants());
}

TEST(OrderMaintenance, InsertAfterOrders) {
  OrderMaintenance om;
  const auto a = om.make_first();
  const auto b = om.insert_after(a);
  const auto c = om.insert_after(b);
  EXPECT_TRUE(om.precedes(a, b));
  EXPECT_TRUE(om.precedes(b, c));
  EXPECT_TRUE(om.precedes(a, c));
  EXPECT_FALSE(om.precedes(c, a));
  EXPECT_TRUE(om.check_invariants());
}

TEST(OrderMaintenance, InsertBetween) {
  OrderMaintenance om;
  const auto a = om.make_first();
  const auto c = om.insert_after(a);
  const auto b = om.insert_after(a);  // now a < b < c
  EXPECT_TRUE(om.precedes(a, b));
  EXPECT_TRUE(om.precedes(b, c));
  EXPECT_TRUE(om.check_invariants());
}

TEST(OrderMaintenance, MaxPicksLater) {
  OrderMaintenance om;
  const auto a = om.make_first();
  const auto b = om.insert_after(a);
  EXPECT_EQ(om.max(a, b), b);
  EXPECT_EQ(om.max(b, a), b);
}

TEST(OrderMaintenance, AdversarialSameSpotInsertions) {
  // Repeatedly inserting at the same spot exhausts local gaps and forces
  // relabeling — the structure must stay consistent.
  OrderMaintenance om;
  const auto first = om.make_first();
  std::vector<OrderMaintenance::Node> chain{first};
  for (int i = 0; i < 20000; ++i) {
    chain.push_back(om.insert_after(first));
  }
  EXPECT_TRUE(om.check_invariants());
  EXPECT_GT(om.relabel_count(), 0u);
  // Every later insertion lands between `first` and the previous one:
  // chain[k] > first, and chain[k] < chain[k-1] for k >= 2.
  for (std::size_t k = 1; k < chain.size(); ++k) {
    EXPECT_TRUE(om.precedes(first, chain[k]));
    if (k >= 2) EXPECT_TRUE(om.precedes(chain[k], chain[k - 1]));
  }
}

TEST(OrderMaintenance, AppendHeavyWorkload) {
  OrderMaintenance om;
  auto tail = om.make_first();
  std::vector<OrderMaintenance::Node> order{tail};
  for (int i = 0; i < 50000; ++i) {
    tail = om.insert_after(tail);
    order.push_back(tail);
  }
  EXPECT_TRUE(om.check_invariants());
  for (std::size_t i = 1; i < order.size(); i += 97) {
    EXPECT_TRUE(om.precedes(order[i - 1], order[i]));
  }
}

TEST(OrderMaintenance, MatchesReferenceListUnderRandomOps) {
  Rng rng(321);
  OrderMaintenance om;
  std::list<OrderMaintenance::Node> ref;  // reference total order
  std::vector<std::list<OrderMaintenance::Node>::iterator> where;
  const auto first = om.make_first();
  ref.push_back(first);
  where.push_back(ref.begin());

  for (int i = 0; i < 5000; ++i) {
    const auto at = static_cast<std::size_t>(rng.below(where.size()));
    const auto fresh = om.insert_after(static_cast<OrderMaintenance::Node>(at));
    auto it = where[at];
    auto inserted = ref.insert(std::next(it), fresh);
    where.push_back(inserted);
  }
  ASSERT_TRUE(om.check_invariants());

  // Spot-check precedes() against positions in the reference list.
  std::vector<OrderMaintenance::Node> linear(ref.begin(), ref.end());
  std::vector<std::size_t> pos(linear.size());
  for (std::size_t i = 0; i < linear.size(); ++i) pos[linear[i]] = i;
  for (int trial = 0; trial < 20000; ++trial) {
    const auto a =
        static_cast<OrderMaintenance::Node>(rng.below(linear.size()));
    const auto b =
        static_cast<OrderMaintenance::Node>(rng.below(linear.size()));
    EXPECT_EQ(om.precedes(a, b), pos[a] < pos[b]);
  }
}

TEST(OrderMaintenance, TopBlockOverflowRegression) {
  // Appends drive tags toward the top of the 64-bit space; windows around
  // such tags end exactly at 2^64, which must not wrap (this aborted the
  // SP-order detector on pbfs-sized strand counts before the fix).
  OrderMaintenance om;
  auto tail = om.make_first();
  for (int i = 0; i < 400000; ++i) tail = om.insert_after(tail);
  EXPECT_TRUE(om.check_invariants());
  // Now hammer one spot near the very top.
  auto prev = tail;
  for (int i = 0; i < 5000; ++i) {
    const auto fresh = om.insert_after(prev);
    ASSERT_TRUE(om.precedes(prev, fresh));
  }
  EXPECT_TRUE(om.check_invariants());
}

TEST(OrderMaintenance, ClearResets) {
  OrderMaintenance om;
  om.make_first();
  om.clear();
  EXPECT_EQ(om.size(), 0u);
  const auto again = om.make_first();
  EXPECT_EQ(again, 0u);
}

}  // namespace
}  // namespace rader
