// The hierarchical phase profiler (support/profile.hpp): tree building,
// self-time attribution, worker-tree absorption, the collapsed-stack and
// table renderings, and the dormant no-op guarantee.
#include "support/profile.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>

namespace rader {
namespace {

void spin_for_nanos(std::uint64_t nanos) {
  const std::uint64_t start = metrics::now_nanos();
  while (metrics::now_nanos() - start < nanos) {
  }
}

TEST(Profile, PhaseWithoutScopeIsANoOp) {
  ASSERT_EQ(prof::current(), nullptr);
  EXPECT_FALSE(prof::enabled());
  { prof::Phase p("orphan"); }  // must not crash, must record nowhere
  prof::Profiler profiler;
  {
    prof::Scope scope(&profiler);
    EXPECT_TRUE(prof::enabled());
  }
  EXPECT_TRUE(profiler.empty());
}

TEST(Profile, ScopesNestAndRestore) {
  prof::Profiler outer;
  prof::Profiler inner;
  {
    prof::Scope s1(&outer);
    EXPECT_EQ(prof::current(), &outer);
    {
      prof::Scope s2(&inner);
      EXPECT_EQ(prof::current(), &inner);
    }
    EXPECT_EQ(prof::current(), &outer);
  }
  EXPECT_EQ(prof::current(), nullptr);
}

TEST(Profile, TreeBuildsByNamePathWithCounts) {
  prof::Profiler profiler;
  {
    prof::Scope scope(&profiler);
    for (int i = 0; i < 3; ++i) {
      prof::Phase sweep("sweep");
      {
        prof::Phase spec("spec");
        prof::Phase detect("detect");
      }
      { prof::Phase merge("merge"); }
    }
  }
  const prof::Node& root = profiler.root();
  ASSERT_EQ(root.children.size(), 1u);
  const prof::Node& sweep = *root.children[0];
  EXPECT_STREQ(sweep.name, "sweep");
  EXPECT_EQ(sweep.count, 3u);
  ASSERT_EQ(sweep.children.size(), 2u);  // spec + merge, folded by name
  EXPECT_STREQ(sweep.children[0]->name, "spec");
  EXPECT_EQ(sweep.children[0]->count, 3u);
  ASSERT_EQ(sweep.children[0]->children.size(), 1u);
  EXPECT_STREQ(sweep.children[0]->children[0]->name, "detect");
  EXPECT_STREQ(sweep.children[1]->name, "merge");
}

TEST(Profile, SelfTimeIsInclusiveMinusChildrenAndSumsToWallTime) {
  prof::Profiler profiler;
  const std::uint64_t wall_start = metrics::now_nanos();
  {
    prof::Scope scope(&profiler);
    prof::Phase outer("outer");
    spin_for_nanos(2'000'000);  // 2 ms of self time
    {
      prof::Phase inner("inner");
      spin_for_nanos(2'000'000);
    }
  }
  const std::uint64_t wall = metrics::now_nanos() - wall_start;

  const prof::Node& outer = *profiler.root().children[0];
  const prof::Node& inner = *outer.children[0];
  // Inclusive time contains the child; self time subtracts it back out.
  EXPECT_GE(outer.total_nanos, inner.total_nanos);
  EXPECT_EQ(outer.self_nanos(), outer.total_nanos - inner.total_nanos);
  EXPECT_GE(outer.self_nanos(), 1'000'000u);
  // The phases cover (almost) the whole wall time of the region, and the
  // self times partition the inclusive root time: sum(self) == inclusive.
  EXPECT_LE(outer.total_nanos, wall);
  EXPECT_EQ(outer.self_nanos() + inner.self_nanos(), outer.total_nanos);
}

TEST(Profile, AbsorbMergesTreesByNamePath) {
  // Two "workers" build disjoint-count trees with a shared path; absorbing
  // both into a fresh profiler folds same-path nodes together.
  prof::Profiler w0;
  prof::Profiler w1;
  {
    prof::Scope scope(&w0);
    prof::Phase spec("spec");
    prof::Phase detect("detect");
  }
  {
    prof::Scope scope(&w1);
    {
      prof::Phase spec("spec");
      prof::Phase detect("detect");
    }
    prof::Phase replay("replay");
  }
  prof::Profiler total;
  {
    prof::Scope scope(&total);
    prof::Phase sweep("sweep");
    prof::current()->absorb(w0.root());
    prof::current()->absorb(w1.root());
  }
  const prof::Node& sweep = *total.root().children[0];
  ASSERT_EQ(sweep.children.size(), 2u);  // spec (folded) + replay
  const prof::Node& spec = *sweep.children[0];
  EXPECT_STREQ(spec.name, "spec");
  EXPECT_EQ(spec.count, 2u);  // one visit from each worker
  ASSERT_EQ(spec.children.size(), 1u);
  EXPECT_EQ(spec.children[0]->count, 2u);
  EXPECT_STREQ(sweep.children[1]->name, "replay");
  // Folded inclusive time sums the workers'.
  EXPECT_EQ(spec.total_nanos,
            w0.root().children[0]->total_nanos +
                w1.root().children[0]->total_nanos);
}

TEST(Profile, CollapsedEmitsEveryPrefixExactlyOnce) {
  prof::Profiler profiler;
  {
    prof::Scope scope(&profiler);
    prof::Phase sweep("sweep");
    {
      prof::Phase spec("spec");
      prof::Phase detect("detect");
    }
    prof::Phase merge("merge");
  }
  const std::string out = prof::collapsed(profiler.root());
  std::set<std::string> paths;
  std::istringstream in(out);
  std::string line;
  while (std::getline(in, line)) {
    const auto pos = line.rfind(' ');
    ASSERT_NE(pos, std::string::npos) << line;
    const std::string path = line.substr(0, pos);
    const std::string value = line.substr(pos + 1);
    EXPECT_FALSE(value.empty());
    for (char c : value) EXPECT_TRUE(c >= '0' && c <= '9') << line;
    EXPECT_TRUE(paths.insert(path).second) << "duplicate path " << path;
  }
  EXPECT_EQ(paths.count("sweep"), 1u);
  EXPECT_EQ(paths.count("sweep;spec"), 1u);
  EXPECT_EQ(paths.count("sweep;spec;detect"), 1u);
  EXPECT_EQ(paths.count("sweep;merge"), 1u);
  // Flamegraph tools need complete stack prefixes.
  for (const std::string& p : paths) {
    const auto semi = p.rfind(';');
    if (semi != std::string::npos) {
      EXPECT_EQ(paths.count(p.substr(0, semi)), 1u) << "missing prefix of "
                                                    << p;
    }
  }
}

TEST(Profile, TableNamesEveryPhase) {
  prof::Profiler profiler;
  {
    prof::Scope scope(&profiler);
    prof::Phase sweep("sweep");
    prof::Phase spec("spec");
  }
  const std::string t = prof::table(profiler.root());
  EXPECT_NE(t.find("sweep"), std::string::npos);
  EXPECT_NE(t.find("spec"), std::string::npos);
}

TEST(Profile, ProfilerIsPerThread) {
  prof::Profiler main_prof;
  prof::Scope scope(&main_prof);
  std::thread worker([] {
    // The worker thread starts with no profiler installed even while the
    // spawning thread holds one.
    EXPECT_EQ(prof::current(), nullptr);
    prof::Phase p("worker-noop");  // dormant, records nowhere
  });
  worker.join();
  EXPECT_TRUE(main_prof.empty());
}

}  // namespace
}  // namespace rader
