#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace rader {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> buckets(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.below(10)];
  for (const int count : buckets) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 100);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  // The child stream should not replicate the parent's next outputs.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, WorksWithStdDistributions) {
  Rng rng(13);
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ull);
  std::uniform_int_distribution<int> dist(1, 6);
  for (int i = 0; i < 100; ++i) {
    const int roll = dist(rng);
    EXPECT_GE(roll, 1);
    EXPECT_LE(roll, 6);
  }
}

}  // namespace
}  // namespace rader
