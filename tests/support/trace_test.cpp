// The execution-trace subsystem (support/trace.hpp): ring-buffer semantics,
// scope activation/restoration, the first-conflict-per-granule filter, and
// the dormant fast path.
#include "support/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace rader::trace {
namespace {

TEST(TraceBuffer, RecordsInOrderUpToCapacity) {
  Buffer buf("t", /*capacity=*/8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    Event e;
    e.a = i;
    e.kind = EventKind::kSync;
    buf.record(e);
  }
  EXPECT_EQ(buf.recorded(), 5u);
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.dropped(), 0u);
  const auto events = buf.ordered();
  ASSERT_EQ(events.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(events[i].a, i);
}

TEST(TraceBuffer, DropsOldestWhenFull) {
  Buffer buf("t", /*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    Event e;
    e.a = i;
    buf.record(e);
  }
  EXPECT_EQ(buf.recorded(), 10u);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 6u);
  // The tail of the run survives: events 6..9.
  const auto events = buf.ordered();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(events[i].a, 6 + i);
}

TEST(TraceBuffer, ConflictFilterIsFirstPerGranule) {
  Buffer buf("t");
  EXPECT_TRUE(buf.note_conflict(100));
  EXPECT_FALSE(buf.note_conflict(100));
  EXPECT_TRUE(buf.note_conflict(101));
  // The view-read namespace (top bit) does not collide with granule 0.
  EXPECT_TRUE(buf.note_conflict(std::uint64_t{1} << 63));
  EXPECT_TRUE(buf.note_conflict(0));
}

TEST(TraceSession, OwnsBuffersAndTotals) {
  Session session(/*buffer_capacity=*/16);
  Buffer* a = session.make_buffer("a");
  Buffer* b = session.make_buffer("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  a->record(Event{});
  a->record(Event{});
  b->record(Event{});
  EXPECT_EQ(session.buffers().size(), 2u);
  EXPECT_EQ(session.buffers()[0]->name(), "a");
  EXPECT_EQ(session.total_recorded(), 3u);
  EXPECT_EQ(session.total_dropped(), 0u);
}

TEST(TraceScope, EmitIsNoOpWhenInactive) {
  ASSERT_FALSE(enabled());
  // Must not crash and must not record anywhere.
  emit(EventKind::kSync, 0);
  emit_conflict(0, 1, 2, 3, kConflictWrite, "x");
  EXPECT_FALSE(enabled());
}

TEST(TraceScope, ActivatesAndRestores) {
  EXPECT_EQ(session(), nullptr);
  Session s;
  {
    Scope scope(&s, "main");
    EXPECT_EQ(session(), &s);
    ASSERT_TRUE(enabled());
    EXPECT_EQ(buffer()->name(), "main");
    set_worker(3);
    emit(EventKind::kSteal, 7, /*a=*/1, /*b=*/2);
    set_worker(0);
  }
  EXPECT_EQ(session(), nullptr);
  EXPECT_FALSE(enabled());
  // The recorded event survives the scope with its stamps.
  ASSERT_EQ(s.buffers().size(), 1u);
  const auto events = s.buffers()[0]->ordered();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kSteal);
  EXPECT_EQ(events[0].frame, 7u);
  EXPECT_EQ(events[0].worker, 3u);
  EXPECT_GT(events[0].nanos, 0u);
}

TEST(TraceScope, NestedScopesRestoreThePreviousSession) {
  Session outer_s;
  Session inner_s;
  Scope outer(&outer_s, "outer");
  {
    Scope inner(&inner_s, "inner");
    EXPECT_EQ(session(), &inner_s);
    emit(EventKind::kSync, 1);
  }
  EXPECT_EQ(session(), &outer_s);
  EXPECT_EQ(buffer()->name(), "outer");
  emit(EventKind::kSync, 2);
  EXPECT_EQ(inner_s.total_recorded(), 1u);
  EXPECT_EQ(outer_s.total_recorded(), 1u);
}

TEST(TraceThreadScope, AttachesAWorkerThreadToTheSession) {
  Session s;
  Scope scope(&s, "main");
  std::thread worker([&] {
    EXPECT_FALSE(enabled());  // tl_buffer is thread-local
    ThreadScope attach(s.make_buffer("worker"));
    ASSERT_TRUE(enabled());
    set_worker(1);
    emit(EventKind::kRunBegin, kInvalidFrame);
  });
  worker.join();
  ASSERT_EQ(s.buffers().size(), 2u);
  EXPECT_EQ(s.buffers()[1]->name(), "worker");
  EXPECT_EQ(s.buffers()[1]->recorded(), 1u);
}

TEST(TraceEvent, KindNamesAreStable) {
  EXPECT_STREQ(event_kind_name(EventKind::kRunBegin), "run-begin");
  EXPECT_STREQ(event_kind_name(EventKind::kSteal), "steal");
  EXPECT_STREQ(event_kind_name(EventKind::kConflict), "conflict");
}

}  // namespace
}  // namespace rader::trace
