#include "support/hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace rader {
namespace {

TEST(Fnv1a, KnownVector) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(fnv1a(nullptr, 0), 0xcbf29ce484222325ull);
  // Standard test vector: "a" -> 0xaf63dc4c8601ec8c.
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cull);
}

TEST(Fnv1a, SensitiveToEveryByte) {
  const std::string base = "hello world";
  const std::uint64_t h = fnv1a(base);
  for (std::size_t i = 0; i < base.size(); ++i) {
    std::string tweaked = base;
    tweaked[i] ^= 1;
    EXPECT_NE(fnv1a(tweaked), h) << "byte " << i;
  }
}

TEST(Mix64, BijectiveOnSamples) {
  std::set<std::uint64_t> out;
  for (std::uint64_t i = 0; i < 10000; ++i) out.insert(mix64(i));
  EXPECT_EQ(out.size(), 10000u);  // no collisions on consecutive inputs
}

TEST(Mix64, AvalanchesLowBits) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (std::uint64_t i = 1; i <= 64; ++i) {
    total_flips += __builtin_popcountll(mix64(i) ^ mix64(i ^ 1));
  }
  EXPECT_GT(total_flips / 64, 20);
  EXPECT_LT(total_flips / 64, 44);
}

TEST(HashCombine, OrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

}  // namespace
}  // namespace rader
