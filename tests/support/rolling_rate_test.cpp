// The rolling-window throughput estimator behind the sweep heartbeat's
// rate/ETA display (support/rolling_rate.hpp).  The contract under test:
// every degenerate input clamps to 0.0 — never NaN or inf — so the
// heartbeat can guard ETA display with a single `rate > 0` check.
#include "support/rolling_rate.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rader {
namespace {

using support::RollingRate;

constexpr std::uint64_t kSec = 1'000'000'000ull;

TEST(RollingRate, DegenerateInputsClampToZeroNeverNanOrInf) {
  RollingRate r;
  // No samples.
  EXPECT_EQ(r.rate_per_sec(), 0.0);
  EXPECT_EQ(r.eta_seconds(100), 0.0);
  // One sample.
  r.sample(kSec, 0);
  EXPECT_EQ(r.rate_per_sec(), 0.0);
  // Zero-width window: two samples at the same instant.
  r.sample(kSec, 5);
  EXPECT_EQ(r.rate_per_sec(), 0.0);
  EXPECT_EQ(r.eta_seconds(10), 0.0);
  // Non-monotone clock.
  RollingRate back;
  back.sample(2 * kSec, 0);
  back.sample(kSec, 10);
  EXPECT_EQ(back.rate_per_sec(), 0.0);
  // Regressing completion count (should not happen, must still be safe).
  RollingRate regress;
  regress.sample(kSec, 10);
  regress.sample(2 * kSec, 5);
  EXPECT_EQ(regress.rate_per_sec(), 0.0);
  // The blanket property the heartbeat relies on.
  for (const RollingRate* p : {&r, &back, &regress}) {
    EXPECT_TRUE(std::isfinite(p->rate_per_sec()));
    EXPECT_TRUE(std::isfinite(p->eta_seconds(~0ull)));
  }
}

TEST(RollingRate, BasicRateAndEta) {
  RollingRate r;
  r.sample(0, 0);
  r.sample(kSec, 10);  // 10 completions in 1 s
  EXPECT_DOUBLE_EQ(r.rate_per_sec(), 10.0);
  EXPECT_DOUBLE_EQ(r.eta_seconds(50), 5.0);
  r.sample(2 * kSec, 30);  // window now spans 30 completions in 2 s
  EXPECT_DOUBLE_EQ(r.rate_per_sec(), 15.0);
}

TEST(RollingRate, WindowTracksTheCurrentRegimeNotTheAverage) {
  // Front-loaded work: a fast first phase, then a slow tail.  The
  // since-start average would say 50/s; the window must report the tail's
  // 1/s so the ETA stops collapsing toward zero.
  RollingRate r(4);
  r.sample(0, 0);
  r.sample(kSec, 100);  // 100/s burst
  for (int i = 0; i < 8; ++i) {
    r.sample((2 + i) * kSec, 100 + i);  // 1/s tail
  }
  EXPECT_EQ(r.samples(), 4u);  // clamped to the window
  EXPECT_NEAR(r.rate_per_sec(), 1.0, 0.01);
  EXPECT_NEAR(r.eta_seconds(10), 10.0, 0.1);
}

TEST(RollingRate, WindowSizeIsClampedSanely) {
  // window < 2 clamps up to 2 (a rate needs two points)...
  RollingRate tiny(0);
  tiny.sample(0, 0);
  tiny.sample(kSec, 7);
  EXPECT_DOUBLE_EQ(tiny.rate_per_sec(), 7.0);
  tiny.sample(2 * kSec, 21);  // only the last two samples are retained
  EXPECT_DOUBLE_EQ(tiny.rate_per_sec(), 14.0);
  // ...and an absurd window clamps down without allocating.
  RollingRate huge(1 << 20);
  for (std::uint64_t i = 0; i < 200; ++i) huge.sample(i * kSec, i * 3);
  EXPECT_LE(huge.samples(), 64u);
  EXPECT_DOUBLE_EQ(huge.rate_per_sec(), 3.0);
}

}  // namespace
}  // namespace rader
