// Crash/hang diagnostics (support/crash.hpp): the in-flight spec table,
// the post-mortem report writer, and — via fork() — the fatal-signal
// handler end to end: a child segfaults and the parent reads its dump.
#include "support/crash.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <string>

#include "support/metrics.hpp"

namespace rader {
namespace {

std::string read_all(int fd) {
  std::string out;
  char buf[4096];
  ::lseek(fd, 0, SEEK_SET);
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof buf)) > 0) out.append(buf, n);
  return out;
}

TEST(InflightTable, SetReadClearAndTruncation) {
  crash::InflightTable table;
  char out[crash::InflightTable::kChars];

  // Idle slots read as empty.
  EXPECT_FALSE(table.read(0, out));
  EXPECT_STREQ(out, "");

  table.set(0, "spec[3] steal-triple(0,1,2)");
  EXPECT_TRUE(table.read(0, out));
  EXPECT_STREQ(out, "spec[3] steal-triple(0,1,2)");

  // Slots are independent.
  table.set(1, "spec[4] no-steals");
  EXPECT_TRUE(table.read(0, out));
  EXPECT_STREQ(out, "spec[3] steal-triple(0,1,2)");

  // Overlong text truncates to kChars-1 and stays NUL-terminated.
  std::string longtext(3 * crash::InflightTable::kChars, 'x');
  table.set(2, longtext.c_str());
  EXPECT_TRUE(table.read(2, out));
  EXPECT_EQ(std::strlen(out), crash::InflightTable::kChars - 1);

  // clear() returns the slot to idle.
  table.clear(0);
  EXPECT_FALSE(table.read(0, out));
  EXPECT_STREQ(out, "");

  // Out-of-range slots are rejected, not UB.
  EXPECT_FALSE(table.read(crash::InflightTable::kSlots, out));
  table.set(crash::InflightTable::kSlots, "ignored");  // must not crash
}

TEST(Crash, WritePostmortemWithNoSourcesHasZeroSections) {
  crash::clear_sources();
  char path[] = "/tmp/rader_pm_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(crash::write_postmortem(fd, "unit-test"), 0u);
  ::close(fd);
  ::unlink(path);
}

TEST(Crash, WritePostmortemDumpsRegisteredSources) {
  metrics::SharedSnapshot shared(2);
  metrics::Snapshot snap;
  snap.counters[static_cast<unsigned>(metrics::Counter::kSpecRuns)] = 41;
  shared.publish(0, snap);
  snap.counters[static_cast<unsigned>(metrics::Counter::kSpecRuns)] = 1;
  shared.publish(1, snap);

  crash::InflightTable inflight;
  inflight.set(0, "spec[7] steal-depth(2)");

  crash::PostmortemSources sources;
  sources.metrics = &shared;
  sources.inflight = &inflight;
  sources.activity = "unit-sweep";
  crash::set_sources(sources);

  char path[] = "/tmp/rader_pm_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  const unsigned sections = crash::write_postmortem(fd, "watchdog");
  EXPECT_GE(sections, 2u);
  const std::string report = read_all(fd);
  ::close(fd);
  ::unlink(path);
  crash::clear_sources();

  EXPECT_NE(report.find("watchdog"), std::string::npos);
  EXPECT_NE(report.find("unit-sweep"), std::string::npos);
  // The summed live snapshot: 41 + 1 spec runs, named by its dotted name.
  EXPECT_NE(report.find("sweep.spec_runs"), std::string::npos);
  EXPECT_NE(report.find("42"), std::string::npos);
  // The in-flight table names the executing spec.
  EXPECT_NE(report.find("spec[7] steal-depth(2)"), std::string::npos);
}

TEST(Crash, ForkedChildSegfaultLeavesAPostmortemFile) {
  char path[] = "/tmp/rader_pm_sig_XXXXXX";
  const int fd = ::mkstemp(path);
  ASSERT_GE(fd, 0);
  ::close(fd);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: install the handler, register sources, then die.  _exit
    // codes signal setup failures; the expected exit is the signal.
    static metrics::SharedSnapshot shared(1);
    metrics::Snapshot snap;
    snap.counters[static_cast<unsigned>(metrics::Counter::kSpecRuns)] = 9;
    shared.publish(0, snap);
    static crash::InflightTable inflight;
    inflight.set(0, "spec[0] steal-all");
    crash::PostmortemSources sources;
    sources.metrics = &shared;
    sources.inflight = &inflight;
    sources.activity = "crash-test";
    crash::set_sources(sources);
    crash::install_signal_handler(path);
    ::raise(SIGSEGV);
    ::_exit(97);  // unreachable when the handler re-raises
  }

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  // The handler re-raises with the default disposition: honest exit.
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const int rfd = ::open(path, O_RDONLY);
  ASSERT_GE(rfd, 0);
  const std::string report = read_all(rfd);
  ::close(rfd);
  ::unlink(path);

  EXPECT_FALSE(report.empty());
  EXPECT_NE(report.find("SIGSEGV"), std::string::npos);
  EXPECT_NE(report.find("crash-test"), std::string::npos);
  EXPECT_NE(report.find("sweep.spec_runs"), std::string::npos);
  EXPECT_NE(report.find("spec[0] steal-all"), std::string::npos);
}

}  // namespace
}  // namespace rader
