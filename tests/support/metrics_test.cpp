// The run-metrics registry (support/metrics.hpp): off-by-default semantics,
// scope nesting, snapshot arithmetic, and the end-to-end feeds from the
// detectors and the sweep engine.
#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "core/sweep.hpp"
#include "runtime/api.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

int g_loc = 0;

void racy_program() {
  spawn([] { shadow_write(&g_loc, 4, SrcTag{"writer"}); });
  shadow_read(&g_loc, 4, SrcTag{"reader"});
  sync();
}

TEST(Metrics, BumpWithoutScopeIsANoOp) {
  ASSERT_EQ(metrics::current(), nullptr);
  EXPECT_FALSE(metrics::enabled());
  metrics::bump(metrics::Counter::kDsuFinds);  // must not crash
  metrics::Registry reg;
  {
    metrics::Scope scope(&reg);
    EXPECT_TRUE(metrics::enabled());
  }
  // The earlier bump landed nowhere, not in the later registry.
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Metrics, ScopesNestAndRestore) {
  metrics::Registry outer;
  metrics::Registry inner;
  {
    metrics::Scope s1(&outer);
    metrics::bump(metrics::Counter::kSpecRuns);
    {
      metrics::Scope s2(&inner);
      EXPECT_EQ(metrics::current(), &inner);
      metrics::bump(metrics::Counter::kSpecRuns, 5);
    }
    EXPECT_EQ(metrics::current(), &outer);
    metrics::bump(metrics::Counter::kSpecRuns);
  }
  EXPECT_EQ(metrics::current(), nullptr);
  EXPECT_EQ(outer.snapshot().counter(metrics::Counter::kSpecRuns), 2u);
  EXPECT_EQ(inner.snapshot().counter(metrics::Counter::kSpecRuns), 5u);
}

TEST(Metrics, SnapshotAddAccumulatesElementwise) {
  metrics::Snapshot a;
  metrics::Snapshot b;
  a.counters[0] = 3;
  a.phase_nanos[1] = 10;
  b.counters[0] = 4;
  b.counters[2] = 1;
  b.phase_nanos[1] = 5;
  a.add(b);
  EXPECT_EQ(a.counters[0], 7u);
  EXPECT_EQ(a.counters[2], 1u);
  EXPECT_EQ(a.phase_nanos[1], 15u);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(metrics::Snapshot{}.empty());
}

TEST(Metrics, SnapshotJsonNamesEveryCounterAndPhase) {
  metrics::Snapshot s;
  for (unsigned i = 0; i < metrics::kCounterCount; ++i) s.counters[i] = i + 1;
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"accesses_instrumented\":1"), std::string::npos);
  EXPECT_NE(json.find("\"spec_runs\":8"), std::string::npos);
  EXPECT_NE(json.find("\"execute\""), std::string::npos);
}

TEST(Metrics, DetectorRunFeedsTheCurrentRegistry) {
  metrics::Registry reg;
  {
    metrics::Scope scope(&reg);
    spec::NoSteal none;
    const RaceLog log =
        Rader::check_determinacy([] { racy_program(); }, none);
    ASSERT_TRUE(log.any());
  }
  const metrics::Snapshot& s = reg.snapshot();
  EXPECT_GE(s.counter(metrics::Counter::kAccessesInstrumented), 2u);
  EXPECT_GE(s.counter(metrics::Counter::kFramesEntered), 2u);
  EXPECT_GE(s.counter(metrics::Counter::kShadowPagesTouched), 1u);
  EXPECT_GE(s.counter(metrics::Counter::kDsuFinds), 1u);
  EXPECT_GE(s.counter(metrics::Counter::kRacesReported), 1u);
  EXPECT_EQ(s.counter(metrics::Counter::kSpecRuns), 1u);
  EXPECT_GT(s.phase_nanos[static_cast<unsigned>(metrics::Phase::kExecute)],
            0u);
}

TEST(Metrics, SweepAggregatesWorkersAndForwardsToOuterScope) {
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());
  family.push_back(std::make_unique<spec::DepthSteal>(1));
  family.push_back(std::make_unique<spec::StealAll>());

  metrics::Registry outer;
  SweepResult result;
  {
    metrics::Scope scope(&outer);
    SweepOptions options;
    options.threads = 2;
    result = Rader::check_with_family(
        shared_program([] { racy_program(); }), family, options);
  }
  // Without stop-first every budgeted spec runs exactly once, so the counter
  // is deterministic and equals the accounted spec_runs.
  EXPECT_EQ(result.metrics.counter(metrics::Counter::kSpecRuns),
            result.spec_runs);
  EXPECT_GE(result.metrics.counter(metrics::Counter::kAccessesInstrumented),
            2u * family.size());
  // The aggregate was forwarded into the caller's registry.
  EXPECT_EQ(outer.snapshot().counter(metrics::Counter::kSpecRuns),
            result.metrics.counter(metrics::Counter::kSpecRuns));
}

}  // namespace
}  // namespace rader
