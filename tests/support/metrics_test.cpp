// The run-metrics registry (support/metrics.hpp): off-by-default semantics,
// scope nesting, snapshot arithmetic, and the end-to-end feeds from the
// detectors and the sweep engine.
#include "support/metrics.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/driver.hpp"
#include "core/sweep.hpp"
#include "runtime/api.hpp"
#include "spec/steal_spec.hpp"

namespace rader {
namespace {

int g_loc = 0;

void racy_program() {
  spawn([] { shadow_write(&g_loc, 4, SrcTag{"writer"}); });
  shadow_read(&g_loc, 4, SrcTag{"reader"});
  sync();
}

TEST(Metrics, BumpWithoutScopeIsANoOp) {
  ASSERT_EQ(metrics::current(), nullptr);
  EXPECT_FALSE(metrics::enabled());
  metrics::bump(metrics::Counter::kDsuFinds);  // must not crash
  metrics::Registry reg;
  {
    metrics::Scope scope(&reg);
    EXPECT_TRUE(metrics::enabled());
  }
  // The earlier bump landed nowhere, not in the later registry.
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(Metrics, ScopesNestAndRestore) {
  metrics::Registry outer;
  metrics::Registry inner;
  {
    metrics::Scope s1(&outer);
    metrics::bump(metrics::Counter::kSpecRuns);
    {
      metrics::Scope s2(&inner);
      EXPECT_EQ(metrics::current(), &inner);
      metrics::bump(metrics::Counter::kSpecRuns, 5);
    }
    EXPECT_EQ(metrics::current(), &outer);
    metrics::bump(metrics::Counter::kSpecRuns);
  }
  EXPECT_EQ(metrics::current(), nullptr);
  EXPECT_EQ(outer.snapshot().counter(metrics::Counter::kSpecRuns), 2u);
  EXPECT_EQ(inner.snapshot().counter(metrics::Counter::kSpecRuns), 5u);
}

TEST(Metrics, SnapshotAddAccumulatesElementwise) {
  metrics::Snapshot a;
  metrics::Snapshot b;
  a.counters[0] = 3;
  a.phase_nanos[1] = 10;
  b.counters[0] = 4;
  b.counters[2] = 1;
  b.phase_nanos[1] = 5;
  a.add(b);
  EXPECT_EQ(a.counters[0], 7u);
  EXPECT_EQ(a.counters[2], 1u);
  EXPECT_EQ(a.phase_nanos[1], 15u);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(metrics::Snapshot{}.empty());
}

TEST(Metrics, SnapshotJsonNamesEveryCounterAndPhase) {
  metrics::Snapshot s;
  for (unsigned i = 0; i < metrics::kCounterCount; ++i) s.counters[i] = i + 1;
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"phase_seconds\""), std::string::npos);
  // Schema v4: namespaced counter names, plus gauges/histograms blocks.
  EXPECT_NE(json.find("\"detector.accesses_instrumented\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"sweep.spec_runs\":8"), std::string::npos);
  EXPECT_NE(json.find("\"execute\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Metrics, ListMetricsCoversEveryEnumInOrder) {
  const auto infos = metrics::list_metrics();
  ASSERT_EQ(infos.size(), metrics::kCounterCount + metrics::kGaugeCount +
                              metrics::kHistogramCount + metrics::kPhaseCount);
  // Exposition order: counters, gauges, histograms, phases — and each name
  // agrees with the enum-indexed name function.
  std::size_t i = 0;
  for (unsigned c = 0; c < metrics::kCounterCount; ++c, ++i) {
    EXPECT_STREQ(infos[i].type, "counter");
    EXPECT_STREQ(infos[i].name,
                 metrics::counter_name(static_cast<metrics::Counter>(c)));
    EXPECT_NE(infos[i].help[0], '\0');
  }
  for (unsigned g = 0; g < metrics::kGaugeCount; ++g, ++i) {
    EXPECT_STREQ(infos[i].type, "gauge");
    EXPECT_STREQ(infos[i].name,
                 metrics::gauge_name(static_cast<metrics::Gauge>(g)));
  }
  for (unsigned h = 0; h < metrics::kHistogramCount; ++h, ++i) {
    EXPECT_STREQ(infos[i].type, "histogram");
    EXPECT_STREQ(infos[i].name,
                 metrics::histogram_name(static_cast<metrics::Histogram>(h)));
  }
  for (unsigned p = 0; p < metrics::kPhaseCount; ++p, ++i) {
    EXPECT_STREQ(infos[i].type, "phase");
  }
  // Names are namespaced (subsystem.metric) and unique.
  std::set<std::string> seen;
  for (const auto& m : infos) {
    if (std::string(m.type) != "phase") {
      EXPECT_NE(std::string(m.name).find('.'), std::string::npos) << m.name;
    }
    EXPECT_TRUE(seen.insert(m.name).second) << "duplicate name " << m.name;
  }
}

TEST(Metrics, HistogramBucketingAndQuantiles) {
  EXPECT_EQ(metrics::histogram_bucket(0), 0u);
  EXPECT_EQ(metrics::histogram_bucket(1), 1u);
  EXPECT_EQ(metrics::histogram_bucket(2), 2u);
  EXPECT_EQ(metrics::histogram_bucket(3), 2u);
  EXPECT_EQ(metrics::histogram_bucket(4), 3u);
  EXPECT_EQ(metrics::histogram_bucket(~0ull), metrics::kHistogramBuckets - 1);
  // Bucket upper bounds are 2^b - 1: bucket b covers [2^(b-1), 2^b - 1].
  EXPECT_EQ(metrics::histogram_bucket_bound(1), 1u);
  EXPECT_EQ(metrics::histogram_bucket_bound(3), 7u);

  metrics::Registry reg;
  metrics::Scope scope(&reg);
  for (std::uint64_t v = 1; v <= 100; ++v) {
    metrics::record(metrics::Histogram::kAccessBytes, v);
  }
  const auto& h = reg.snapshot().hist(metrics::Histogram::kAccessBytes);
  EXPECT_EQ(h.count, 100u);
  EXPECT_EQ(h.sum, 5050u);
  // Quantiles are interpolated within the log2 bucket: exact values are not
  // promised, but they must land within the true value's bucket.
  const double p50 = h.quantile(0.5);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 63.0);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p99, 64.0);
  EXPECT_LE(p99, 127.0);
}

TEST(Metrics, GaugesTrackValueAndHighWaterAndFold) {
  metrics::Registry a;
  metrics::Registry b;
  {
    metrics::Scope scope(&a);
    metrics::gauge_add(metrics::Gauge::kDequeSize, 5);
    metrics::gauge_add(metrics::Gauge::kDequeSize, -2);
  }
  {
    metrics::Scope scope(&b);
    metrics::gauge_add(metrics::Gauge::kDequeSize, -3);
  }
  metrics::Snapshot s = a.snapshot();
  s.add(b.snapshot());
  // Values sum across threads (a thief's -1 cancels a victim's +1); maxes
  // take the max of the per-thread high-water marks.
  EXPECT_EQ(s.gauge(metrics::Gauge::kDequeSize).value, 0);
  EXPECT_EQ(s.gauge(metrics::Gauge::kDequeSize).max, 5);
}

TEST(Metrics, SharedSnapshotSumsSlotsWaitFree) {
  metrics::SharedSnapshot shared(3);
  metrics::Snapshot s0;
  s0.counters[0] = 7;
  s0.gauges[0].value = -2;
  s0.gauges[0].max = 4;
  s0.hists[0].count = 2;
  s0.hists[0].sum = 10;
  s0.hists[0].buckets[3] = 2;
  metrics::Snapshot s1;
  s1.counters[0] = 5;
  s1.gauges[0].value = 3;
  s1.gauges[0].max = 3;
  shared.publish(0, s0);
  shared.publish(2, s1);
  const metrics::Snapshot sum = shared.read();
  EXPECT_EQ(sum.counters[0], 12u);
  EXPECT_EQ(sum.gauges[0].value, 1);
  EXPECT_EQ(sum.gauges[0].max, 4);
  EXPECT_EQ(sum.hists[0].count, 2u);
  EXPECT_EQ(sum.hists[0].sum, 10u);
  EXPECT_EQ(sum.hists[0].buckets[3], 2u);
  // Publishing again overwrites (totals, not deltas).
  s1.counters[0] = 6;
  shared.publish(2, s1);
  EXPECT_EQ(shared.read().counters[0], 13u);
}

TEST(Metrics, DetectorRunFeedsTheCurrentRegistry) {
  metrics::Registry reg;
  {
    metrics::Scope scope(&reg);
    spec::NoSteal none;
    const RaceLog log =
        Rader::check_determinacy([] { racy_program(); }, none);
    ASSERT_TRUE(log.any());
  }
  const metrics::Snapshot& s = reg.snapshot();
  EXPECT_GE(s.counter(metrics::Counter::kAccessesInstrumented), 2u);
  EXPECT_GE(s.counter(metrics::Counter::kFramesEntered), 2u);
  EXPECT_GE(s.counter(metrics::Counter::kShadowPagesTouched), 1u);
  EXPECT_GE(s.counter(metrics::Counter::kDsuFinds), 1u);
  EXPECT_GE(s.counter(metrics::Counter::kRacesReported), 1u);
  EXPECT_EQ(s.counter(metrics::Counter::kSpecRuns), 1u);
  EXPECT_GT(s.phase_nanos[static_cast<unsigned>(metrics::Phase::kExecute)],
            0u);
}

TEST(Metrics, SweepAggregatesWorkersAndForwardsToOuterScope) {
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());
  family.push_back(std::make_unique<spec::DepthSteal>(1));
  family.push_back(std::make_unique<spec::StealAll>());

  metrics::Registry outer;
  SweepResult result;
  {
    metrics::Scope scope(&outer);
    SweepOptions options;
    options.threads = 2;
    result = Rader::check_with_family(
        shared_program([] { racy_program(); }), family, options);
  }
  // Without stop-first every budgeted spec runs exactly once, so the counter
  // is deterministic and equals the accounted spec_runs.
  EXPECT_EQ(result.metrics.counter(metrics::Counter::kSpecRuns),
            result.spec_runs);
  EXPECT_GE(result.metrics.counter(metrics::Counter::kAccessesInstrumented),
            2u * family.size());
  // The aggregate was forwarded into the caller's registry.
  EXPECT_EQ(outer.snapshot().counter(metrics::Counter::kSpecRuns),
            result.metrics.counter(metrics::Counter::kSpecRuns));
}

}  // namespace
}  // namespace rader
