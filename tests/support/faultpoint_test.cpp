// The fault-injection registry (support/faultpoint.hpp): spec parsing,
// match semantics, and — through the subprocess sandbox — the crash/hang
// kinds that can never be fired in-process, plus fork inheritance.
#include "support/faultpoint.hpp"

#include <gtest/gtest.h>
#include <signal.h>

#include <new>

#include "support/subprocess.hpp"

namespace rader {
namespace {

// Every test leaves the process disarmed: a leaked fault would make later
// sweep tests misbehave "on purpose".
struct DisarmGuard {
  DisarmGuard() { faultpoint::disarm_all(); }
  ~DisarmGuard() { faultpoint::disarm_all(); }
};

TEST(Faultpoint, MalformedSpecsArmNothing) {
  DisarmGuard guard;
  std::string error;
  EXPECT_FALSE(faultpoint::arm("sweep.spec", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(faultpoint::arm("sweep.spec:frobnicate:3", &error));
  EXPECT_FALSE(faultpoint::arm("sweep.spec:crash:", &error));
  EXPECT_FALSE(faultpoint::arm(":crash:3", &error));
  EXPECT_FALSE(faultpoint::arm("sweep.spec:crash:xyz", &error));
  // All-or-nothing: one bad entry poisons the whole list.
  EXPECT_FALSE(faultpoint::arm("sweep.spec:crash:1,bogus", &error));
  EXPECT_EQ(faultpoint::armed_count(), 0u);
  EXPECT_FALSE(faultpoint::any_armed());
}

TEST(Faultpoint, ArmIsAdditiveAndDisarmClears) {
  DisarmGuard guard;
  EXPECT_TRUE(faultpoint::arm("sweep.spec:oom:3"));
  EXPECT_TRUE(faultpoint::arm("sweep.child:oom:*,sweep.spec:oom:9"));
  EXPECT_EQ(faultpoint::armed_count(), 3u);
  EXPECT_TRUE(faultpoint::any_armed());
  faultpoint::disarm_all();
  EXPECT_EQ(faultpoint::armed_count(), 0u);
}

TEST(Faultpoint, UnmatchedFireIsANoop) {
  DisarmGuard guard;
  ASSERT_TRUE(faultpoint::arm("sweep.spec:oom:3"));
  faultpoint::fire(faultpoint::kSiteSweepSpec, 2);   // wrong detail
  faultpoint::fire(faultpoint::kSiteSweepChild, 3);  // wrong site
}

TEST(Faultpoint, OomKindThrowsBadAllocAtTheMatchedDetail) {
  DisarmGuard guard;
  ASSERT_TRUE(faultpoint::arm("sweep.spec:oom:3"));
  EXPECT_THROW(faultpoint::fire(faultpoint::kSiteSweepSpec, 3),
               std::bad_alloc);
}

TEST(Faultpoint, WildcardMatchesEveryDetail) {
  DisarmGuard guard;
  ASSERT_TRUE(faultpoint::arm("sweep.spec:oom:*"));
  EXPECT_THROW(faultpoint::fire(faultpoint::kSiteSweepSpec, 0),
               std::bad_alloc);
  EXPECT_THROW(faultpoint::fire(faultpoint::kSiteSweepSpec, 12345),
               std::bad_alloc);
}

TEST(Faultpoint, CrashKindRaisesRealSigsegvInASandboxChild) {
  DisarmGuard guard;
  ASSERT_TRUE(faultpoint::arm("sweep.spec:crash:7"));
  // Armed faults are inherited across fork(): the child fires the fault the
  // parent armed — the exact mechanism the isolated sweep's retries rely on.
  const auto r = subprocess::run(
      [](int) {
        faultpoint::fire(faultpoint::kSiteSweepSpec, 7);
        return 0;
      },
      subprocess::Limits{}, 5000);
  EXPECT_EQ(r.status.kind, subprocess::ExitKind::kSignaled);
  EXPECT_EQ(r.status.term_signal, SIGSEGV);
}

TEST(Faultpoint, HangKindSleepsUntilTheDeadlineKill) {
  DisarmGuard guard;
  ASSERT_TRUE(faultpoint::arm("sweep.spec:hang:7"));
  const auto r = subprocess::run(
      [](int) {
        faultpoint::fire(faultpoint::kSiteSweepSpec, 7);
        return 0;
      },
      subprocess::Limits{}, 200);
  EXPECT_EQ(r.status.kind, subprocess::ExitKind::kTimedOut);
}

}  // namespace
}  // namespace rader
