// The fork-without-exec sandbox substrate (support/subprocess.hpp): exit
// classification (exit / signal / timeout / oom), pipe plumbing, resource
// walls, and the poll helper the isolated-sweep supervisor drives children
// with.
#include "support/subprocess.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <new>
#include <stdexcept>
#include <string>
#include <vector>

namespace rader::subprocess {
namespace {

void write_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
}

TEST(Subprocess, CleanExitDeliversOutputAndCode) {
  const RunResult r = run(
      [](int fd) {
        write_all(fd, "hello from the child\n");
        return 0;
      },
      Limits{}, 5000);
  EXPECT_EQ(r.status.kind, ExitKind::kExited);
  EXPECT_EQ(r.status.exit_code, 0);
  EXPECT_EQ(r.output, "hello from the child\n");
}

TEST(Subprocess, NonzeroExitCodeSurvivesClassification) {
  const RunResult r = run([](int) { return 42; }, Limits{}, 5000);
  EXPECT_EQ(r.status.kind, ExitKind::kExited);
  EXPECT_EQ(r.status.exit_code, 42);
}

TEST(Subprocess, ChildInheritsParentAddressSpace) {
  // The whole point of fork-without-exec: parent-side state (here a local,
  // in the sweep a ProgramFactory closure) is directly visible in the child.
  const std::string token = "inherited-token-1234";
  const RunResult r = run(
      [&token](int fd) {
        write_all(fd, token);
        return 0;
      },
      Limits{}, 5000);
  EXPECT_EQ(r.status.kind, ExitKind::kExited);
  EXPECT_EQ(r.output, token);
}

TEST(Subprocess, FatalSignalClassifiesAsSignaled) {
  const RunResult r = run(
      [](int) {
        ::raise(SIGSEGV);
        return 0;
      },
      Limits{}, 5000);
  EXPECT_EQ(r.status.kind, ExitKind::kSignaled);
  EXPECT_EQ(r.status.term_signal, SIGSEGV);
}

TEST(Subprocess, SleepingHangHitsTheParentDeadline) {
  // RLIMIT_CPU cannot catch a sleeper; only the parent's wall clock can.
  const RunResult r = run(
      [](int) {
        for (;;) {
          timespec ts{1, 0};
          nanosleep(&ts, nullptr);
        }
        return 0;
      },
      Limits{}, 200);
  EXPECT_EQ(r.status.kind, ExitKind::kTimedOut);
}

TEST(Subprocess, PartialOutputSurvivesATimeout) {
  // Whatever the child shipped before wedging must still reach the parent —
  // that is what lets the supervisor salvage completed specs from a shard
  // that later hangs.
  const RunResult r = run(
      [](int fd) {
        write_all(fd, "salvage me\n");
        for (;;) {
          timespec ts{1, 0};
          nanosleep(&ts, nullptr);
        }
        return 0;
      },
      Limits{}, 200);
  EXPECT_EQ(r.status.kind, ExitKind::kTimedOut);
  EXPECT_EQ(r.output, "salvage me\n");
}

TEST(Subprocess, MemoryWallTurnsRunawayAllocIntoOomExit) {
  Limits limits;
  limits.memory_bytes = 512ull << 20;  // far above current use, far below 8G
  const RunResult r = run(
      [](int) {
        std::vector<char*> keep;
        for (int i = 0; i < 8192; ++i) {  // up to 8 GiB, 1 MiB at a time
          char* chunk = new char[1u << 20];
          for (std::size_t b = 0; b < (1u << 20); b += 4096) chunk[b] = 1;
          keep.push_back(chunk);
        }
        return 0;
      },
      limits, 30000);
  EXPECT_EQ(r.status.kind, ExitKind::kExited);
  EXPECT_EQ(r.status.exit_code, kOomExitCode);
}

TEST(Subprocess, UncaughtExceptionExitsWithSentinelCode) {
  const RunResult r = run(
      [](int) -> int { throw std::runtime_error("boom"); }, Limits{}, 5000);
  EXPECT_EQ(r.status.kind, ExitKind::kExited);
  EXPECT_EQ(r.status.exit_code, kUncaughtExitCode);
}

TEST(Subprocess, KillHardThenTryWaitClassifiesSigkill) {
  Child child = Child::spawn(
      [](int) {
        for (;;) {
          timespec ts{1, 0};
          nanosleep(&ts, nullptr);
        }
        return 0;
      },
      Limits{});
  ASSERT_TRUE(child.valid());
  child.kill_hard();
  while (!child.try_wait()) {
    timespec ts{0, 1'000'000};
    nanosleep(&ts, nullptr);
  }
  EXPECT_EQ(child.status().kind, ExitKind::kSignaled);
  EXPECT_EQ(child.status().term_signal, SIGKILL);
  EXPECT_TRUE(child.try_wait());  // idempotent after the reap
}

TEST(Subprocess, PollReadableSeesChildOutput) {
  Child child = Child::spawn(
      [](int fd) {
        write_all(fd, "ping\n");
        return 0;
      },
      Limits{});
  ASSERT_TRUE(child.valid());
  ASSERT_GE(child.out_fd(), 0);
  const int idx = poll_readable({child.out_fd()}, 5000);
  EXPECT_EQ(idx, 0);
  std::string buf;
  while (child.read_available(&buf)) {
  }
  EXPECT_EQ(buf, "ping\n");
  child.wait(5000, &buf);
  EXPECT_EQ(child.status().kind, ExitKind::kExited);
}

TEST(Subprocess, PollReadableTimesOutOnSilence) {
  Child child = Child::spawn(
      [](int) {
        timespec ts{0, 300'000'000};
        nanosleep(&ts, nullptr);
        return 0;
      },
      Limits{});
  ASSERT_TRUE(child.valid());
  EXPECT_EQ(poll_readable({child.out_fd()}, 0), -1);
  std::string buf;
  child.wait(5000, &buf);
  EXPECT_EQ(child.status().kind, ExitKind::kExited);
}

}  // namespace
}  // namespace rader::subprocess
