// Litmus corpus: small programs with hand-derived race verdicts.
//
// Each case fixes three expectations:
//   * peerset     — does Peer-Set report a view-read race?
//   * sp_serial   — does SP+ report a determinacy race on the SERIAL
//                   schedule (no steals)?  This is what a Cilk-Screen-style
//                   serial checker can see.
//   * sp_family   — does SP+ report a determinacy race under the Section-7
//                   exhaustive family?  (⊇ sp_serial.)
//
// The gap between sp_serial and sp_family is precisely the class of bugs
// the paper exists for: racing instructions that execute only on stolen
// schedules.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/mylist.hpp"
#include "reducers/holder.hpp"
#include "reducers/ostream_monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "tool/tracked.hpp"

namespace rader::litmus {

struct Case {
  std::string name;
  std::string why;               // one-line rationale for the verdicts
  std::function<void()> program; // re-runnable
  bool peerset = false;          // view-read race expected?
  bool sp_serial = false;        // determinacy race on the serial schedule?
  bool sp_family = false;        // determinacy race under the O(KD+K³) family?
};

inline std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const auto add = [&](Case c) { cases.push_back(std::move(c)); };

  // ---- Plain determinacy-race litmus (no reducers) -----------------------

  add({"clean-spawn-sync",
       "write, spawn an untouching child, sync, read: fully serialized",
       [] {
         static int x;
         shadow_write(&x, 4);
         spawn([] {});
         sync();
         shadow_read(&x, 4);
       },
       false, false, false});

  add({"write-read-race",
       "spawned writer parallel with the continuation's read",
       [] {
         static int x;
         spawn([] { shadow_write(&x, 4); });
         shadow_read(&x, 4);
         sync();
       },
       false, true, true});

  add({"write-write-race", "two sibling spawns write the same word",
       [] {
         static int x;
         spawn([] { shadow_write(&x, 4); });
         spawn([] { shadow_write(&x, 4); });
         sync();
       },
       false, true, true});

  add({"parallel-reads-clean", "readers never race with readers",
       [] {
         static int x;
         spawn([] { shadow_read(&x, 4); });
         spawn([] { shadow_read(&x, 4); });
         shadow_read(&x, 4);
         sync();
       },
       false, false, false});

  add({"sync-serializes", "a sync between conflicting accesses removes the race",
       [] {
         static int x;
         spawn([] { shadow_write(&x, 4); });
         sync();
         spawn([] { shadow_write(&x, 4); });
         sync();
       },
       false, false, false});

  add({"called-children-serial", "called (not spawned) children are in series",
       [] {
         static int x;
         call([] { shadow_write(&x, 4); });
         call([] { shadow_write(&x, 4); });
       },
       false, false, false});

  add({"grandchild-escapes-inner-sync",
       "inner sync joins the grandchild to its parent, not to the root",
       [] {
         static int x;
         spawn([] {
           spawn([] { shadow_write(&x, 4); });
           sync();
         });
         shadow_read(&x, 4);
         sync();
       },
       false, true, true});

  add({"disjoint-locations-clean", "parallel writes to different words",
       [] {
         static int x, y;
         spawn([] { shadow_write(&x, 4); });
         shadow_write(&y, 4);
         sync();
       },
       false, false, false});

  add({"tracked-wrapper-race", "the annotation wrapper reports like raw hooks",
       [] {
         static tracked<int> x;
         spawn([] { x = 1; });
         volatile int v = x;
         (void)v;
         sync();
       },
       false, true, true});

  add({"freed-memory-reuse-clean",
       "shadow_clear between generations: address reuse is not a race",
       [] {
         auto* p = new int(0);
         spawn([p] { shadow_write(p, 4); });
         sync();
         shadow_clear(p, 4);
         delete p;
         auto* q = new int(0);
         shadow_write(q, 4);
         spawn([] {});
         sync();
         shadow_clear(q, 4);
         delete q;
       },
       false, false, false});

  // ---- View-read-race litmus (Peer-Set) ----------------------------------

  add({"reducer-correct-discipline",
       "set before spawns, get after the sync: Figure 1's update_list shape",
       [] {
         reducer<monoid::op_add<long>> sum;
         sum.set_value(1);
         spawn([&] { sum += 2; });
         sum += 3;
         sync();
         volatile long v = sum.get_value();
         (void)v;
       },
       false, false, false});

  add({"get-before-sync",
       "reading with a spawned updater outstanding: nondeterministic view",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([&] { sum += 1; });
         volatile long v = sum.get_value();
         (void)v;
         sync();
       },
       true, false, false});

  add({"set-after-spawn",
       "§3: moving set_value after a spawn is a view-read race even if benign",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([] {});
         sum.set_value(7);
         sync();
       },
       true, false, false});

  add({"destroy-after-sync-created-mid-block",
       "create-read and destroy-read see different peer sets",
       [] {
         spawn([] {});
         auto sum = std::make_unique<reducer<monoid::op_add<long>>>();
         sync();
         sum.reset();  // destroy-read after the sync: peers changed
       },
       true, false, false});

  add({"read-in-spawned-child",
       "the paper's strands-1-and-9 example: child read vs root read",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([&] {
           volatile long v = sum.get_value();
           (void)v;
         });
         sync();
       },
       true, false, false});

  add({"ostream-flush-after-sync-clean",
       "buffered reducer output drained at a peer-stable point",
       [] {
         static std::ostringstream sink;
         sink.str("");
         ostream_reducer out(sink);
         for (int i = 0; i < 4; ++i) {
           spawn([&out, i] { out << i; });
         }
         sync();
         out.flush();
       },
       false, false, false});

  add({"ostream-flush-before-sync",
       "draining the stream while writers are outstanding",
       [] {
         static std::ostringstream sink;
         sink.str("");
         ostream_reducer out(sink);
         spawn([&out] { out << 1; });
         out.flush();  // reducer-read with an outstanding updater
         sync();
       },
       true, false, false});

  // ---- Reducer determinacy litmus (SP+) ----------------------------------

  add({"parallel-updates-same-view-clean",
       "updates through the reducer are what reducers are FOR",
       [] {
         reducer<monoid::op_add<long>> sum;
         for (int i = 0; i < 4; ++i) {
           spawn([&sum] { sum += 1; });
           sum += 1;
         }
         sync();
         volatile long v = sum.get_value();
         (void)v;
       },
       false, false, false});

  add({"raw-view-read-vs-update",
       "a stale pointer into the leftmost view races with a parallel update",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([&sum] { sum += 1; });
         shadow_read(sum.hyper_leftmost(), sizeof(long));
         sync();
       },
       false, true, true});

  add({"fig1-list-reduce-race",
       "the Reduce's splice races with a scan; the Reduce exists only on "
       "stolen schedules",
       [] {
         static apps::MyList owned;
         if (owned.empty()) {
           for (int i = 0; i < 6; ++i) owned.insert(100 + i);
         }
         apps::MyList working = owned;
         apps::MyList copy(working);
         int len = 0;
         spawn([&] { len = working.scan(); });
         call([&] {
           reducer<apps::list_monoid> red;
           red.set_value(copy);
           parallel_for_flat<int>(
               0, 6,
               [&](int i) {
                 red.update([&](apps::MyList& v) { v.insert(i); });
               },
               6);
           sync();
           copy = red.take_value();
         });
         sync();
         (void)len;
       },
       false, false, true});

  add({"lazy-init-update-race",
       "per-view initialization touches shared state: exists only on stolen "
       "schedules (the Theorem-6 target)",
       [] {
         static long header;
         reducer<monoid::vector_append<int>> log_red;
         const auto append = [&](int i) {
           log_red.update([&](std::vector<int>& v) {
             if (v.empty()) {
               shadow_write(&header, sizeof(header));
               header += 1;
             }
             v.push_back(i);
           });
         };
         append(-1);
         spawn([&] { shadow_read(&header, sizeof(header)); });
         for (int i = 0; i < 4; ++i) {
           spawn([] {});
           append(i);
         }
         sync();
       },
       false, false, true});

  add({"holder-scratch-clean", "holder views are strand-local scratch",
       [] {
         holder<std::vector<int>> scratch;
         for (int i = 0; i < 4; ++i) {
           spawn([&scratch, i] {
             scratch.update([&](std::vector<int>& buf) { buf.assign(2, i); });
           });
         }
         sync();
       },
       false, false, false});

  add({"map-merge-reducer-clean", "user-defined monoid, update-only usage",
       [] {
         struct merge_monoid {
           using value_type = std::vector<int>;
           static value_type identity() { return {}; }
           static void reduce(value_type& l, value_type& r) {
             l.insert(l.end(), r.begin(), r.end());
           }
         };
         reducer<merge_monoid> acc;
         parallel_for_flat<int>(
             0, 8, [&](int i) {
               acc.update([&](std::vector<int>& v) { v.push_back(i); });
             },
             4);
         sync();
         volatile std::size_t n = acc.get_value().size();
         (void)n;
       },
       false, false, false});

  return cases;
}

}  // namespace rader::litmus
