// Litmus corpus: small programs with hand-derived race verdicts.
//
// Each case fixes three expectations:
//   * peerset     — does Peer-Set report a view-read race?
//   * sp_serial   — does SP+ report a determinacy race on the SERIAL
//                   schedule (no steals)?  This is what a Cilk-Screen-style
//                   serial checker can see.
//   * sp_family   — does SP+ report a determinacy race under the Section-7
//                   exhaustive family?  (⊇ sp_serial.)
//
// The gap between sp_serial and sp_family is precisely the class of bugs
// the paper exists for: racing instructions that execute only on stolen
// schedules.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "apps/mylist.hpp"
#include "reducers/holder.hpp"
#include "reducers/ostream_monoid.hpp"
#include "reducers/reducer.hpp"
#include "runtime/api.hpp"
#include "tool/tracked.hpp"

namespace rader::litmus {

namespace detail {

/// Shared word written by noisy_monoid::reduce — the Reduce-strand footprint
/// for the reduce-touches-shared-state case.
inline long reduce_footprint = 0;

/// A sum monoid whose reduce also writes shared memory: the misuse class
/// where the REDUCE operation itself races, which no serial schedule can
/// exhibit (Reduce strands exist only on stolen schedules).
struct noisy_monoid {
  using value_type = long;
  static long identity() { return 0; }
  static void reduce(long& l, long& r) {
    shadow_write(&reduce_footprint, sizeof(reduce_footprint),
                 SrcTag{"reduce writes shared word"});
    reduce_footprint += 1;
    l += r;
  }
};

}  // namespace detail

struct Case {
  std::string name;
  std::string why;               // one-line rationale for the verdicts
  std::function<void()> program; // re-runnable
  bool peerset = false;          // view-read race expected?
  bool sp_serial = false;        // determinacy race on the serial schedule?
  bool sp_family = false;        // determinacy race under the O(KD+K³) family?
};

inline std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const auto add = [&](Case c) { cases.push_back(std::move(c)); };

  // ---- Plain determinacy-race litmus (no reducers) -----------------------

  add({"clean-spawn-sync",
       "write, spawn an untouching child, sync, read: fully serialized",
       [] {
         static int x;
         shadow_write(&x, 4);
         spawn([] {});
         sync();
         shadow_read(&x, 4);
       },
       false, false, false});

  add({"write-read-race",
       "spawned writer parallel with the continuation's read",
       [] {
         static int x;
         spawn([] { shadow_write(&x, 4); });
         shadow_read(&x, 4);
         sync();
       },
       false, true, true});

  add({"write-write-race", "two sibling spawns write the same word",
       [] {
         static int x;
         spawn([] { shadow_write(&x, 4); });
         spawn([] { shadow_write(&x, 4); });
         sync();
       },
       false, true, true});

  add({"parallel-reads-clean", "readers never race with readers",
       [] {
         static int x;
         spawn([] { shadow_read(&x, 4); });
         spawn([] { shadow_read(&x, 4); });
         shadow_read(&x, 4);
         sync();
       },
       false, false, false});

  add({"sync-serializes", "a sync between conflicting accesses removes the race",
       [] {
         static int x;
         spawn([] { shadow_write(&x, 4); });
         sync();
         spawn([] { shadow_write(&x, 4); });
         sync();
       },
       false, false, false});

  add({"called-children-serial", "called (not spawned) children are in series",
       [] {
         static int x;
         call([] { shadow_write(&x, 4); });
         call([] { shadow_write(&x, 4); });
       },
       false, false, false});

  add({"grandchild-escapes-inner-sync",
       "inner sync joins the grandchild to its parent, not to the root",
       [] {
         static int x;
         spawn([] {
           spawn([] { shadow_write(&x, 4); });
           sync();
         });
         shadow_read(&x, 4);
         sync();
       },
       false, true, true});

  add({"disjoint-locations-clean", "parallel writes to different words",
       [] {
         static int x, y;
         spawn([] { shadow_write(&x, 4); });
         shadow_write(&y, 4);
         sync();
       },
       false, false, false});

  add({"tracked-wrapper-race", "the annotation wrapper reports like raw hooks",
       [] {
         static tracked<int> x;
         spawn([] { x = 1; });
         volatile int v = x;
         (void)v;
         sync();
       },
       false, true, true});

  add({"freed-memory-reuse-clean",
       "shadow_clear between generations: address reuse is not a race",
       [] {
         auto* p = new int(0);
         spawn([p] { shadow_write(p, 4); });
         sync();
         shadow_clear(p, 4);
         delete p;
         auto* q = new int(0);
         shadow_write(q, 4);
         spawn([] {});
         sync();
         shadow_clear(q, 4);
         delete q;
       },
       false, false, false});

  // ---- View-read-race litmus (Peer-Set) ----------------------------------

  add({"reducer-correct-discipline",
       "set before spawns, get after the sync: Figure 1's update_list shape",
       [] {
         reducer<monoid::op_add<long>> sum;
         sum.set_value(1);
         spawn([&] { sum += 2; });
         sum += 3;
         sync();
         volatile long v = sum.get_value();
         (void)v;
       },
       false, false, false});

  add({"get-before-sync",
       "reading with a spawned updater outstanding: nondeterministic view",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([&] { sum += 1; });
         volatile long v = sum.get_value();
         (void)v;
         sync();
       },
       true, false, false});

  add({"set-after-spawn",
       "§3: moving set_value after a spawn is a view-read race even if benign",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([] {});
         sum.set_value(7);
         sync();
       },
       true, false, false});

  add({"destroy-after-sync-created-mid-block",
       "create-read and destroy-read see different peer sets",
       [] {
         spawn([] {});
         auto sum = std::make_unique<reducer<monoid::op_add<long>>>();
         sync();
         sum.reset();  // destroy-read after the sync: peers changed
       },
       true, false, false});

  add({"read-in-spawned-child",
       "the paper's strands-1-and-9 example: child read vs root read",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([&] {
           volatile long v = sum.get_value();
           (void)v;
         });
         sync();
       },
       true, false, false});

  add({"ostream-flush-after-sync-clean",
       "buffered reducer output drained at a peer-stable point",
       [] {
         static std::ostringstream sink;
         sink.str("");
         ostream_reducer out(sink);
         for (int i = 0; i < 4; ++i) {
           spawn([&out, i] { out << i; });
         }
         sync();
         out.flush();
       },
       false, false, false});

  add({"ostream-flush-before-sync",
       "draining the stream while writers are outstanding",
       [] {
         static std::ostringstream sink;
         sink.str("");
         ostream_reducer out(sink);
         spawn([&out] { out << 1; });
         out.flush();  // reducer-read with an outstanding updater
         sync();
       },
       true, false, false});

  // ---- Reducer determinacy litmus (SP+) ----------------------------------

  add({"parallel-updates-same-view-clean",
       "updates through the reducer are what reducers are FOR",
       [] {
         reducer<monoid::op_add<long>> sum;
         for (int i = 0; i < 4; ++i) {
           spawn([&sum] { sum += 1; });
           sum += 1;
         }
         sync();
         volatile long v = sum.get_value();
         (void)v;
       },
       false, false, false});

  add({"raw-view-read-vs-update",
       "a stale pointer into the leftmost view races with a parallel update",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([&sum] { sum += 1; });
         shadow_read(sum.hyper_leftmost(), sizeof(long));
         sync();
       },
       false, true, true});

  add({"fig1-list-reduce-race",
       "the Reduce's splice races with a scan; the Reduce exists only on "
       "stolen schedules",
       [] {
         // Built fresh each run: MyList nodes live in the deterministic view
         // arena, which reclaims in-run allocations at the next run's start —
         // a `static` list populated inside a run would dangle into storage
         // the next run reuses (src/apps/mylist.hpp).
         apps::MyList owned;
         for (int i = 0; i < 6; ++i) owned.insert(100 + i);
         apps::MyList working = owned;
         apps::MyList copy(working);
         int len = 0;
         spawn([&] { len = working.scan(); });
         call([&] {
           reducer<apps::list_monoid> red;
           red.set_value(copy);
           parallel_for_flat<int>(
               0, 6,
               [&](int i) {
                 red.update([&](apps::MyList& v) { v.insert(i); });
               },
               6);
           sync();
           copy = red.take_value();
         });
         sync();
         (void)len;
       },
       false, false, true});

  add({"lazy-init-update-race",
       "per-view initialization touches shared state: exists only on stolen "
       "schedules (the Theorem-6 target)",
       [] {
         static long header;
         reducer<monoid::vector_append<int>> log_red;
         const auto append = [&](int i) {
           log_red.update([&](std::vector<int>& v) {
             if (v.empty()) {
               shadow_write(&header, sizeof(header));
               header += 1;
             }
             v.push_back(i);
           });
         };
         append(-1);
         spawn([&] { shadow_read(&header, sizeof(header)); });
         for (int i = 0; i < 4; ++i) {
           spawn([] {});
           append(i);
         }
         sync();
       },
       false, false, true});

  add({"holder-scratch-clean", "holder views are strand-local scratch",
       [] {
         holder<std::vector<int>> scratch;
         for (int i = 0; i < 4; ++i) {
           spawn([&scratch, i] {
             scratch.update([&](std::vector<int>& buf) { buf.assign(2, i); });
           });
         }
         sync();
       },
       false, false, false});

  add({"map-merge-reducer-clean", "user-defined monoid, update-only usage",
       [] {
         struct merge_monoid {
           using value_type = std::vector<int>;
           static value_type identity() { return {}; }
           static void reduce(value_type& l, value_type& r) {
             l.insert(l.end(), r.begin(), r.end());
           }
         };
         reducer<merge_monoid> acc;
         parallel_for_flat<int>(
             0, 8, [&](int i) {
               acc.update([&](std::vector<int>& v) { v.push_back(i); });
             },
             4);
         sync();
         volatile std::size_t n = acc.get_value().size();
         (void)n;
       },
       false, false, false});

  // ---- Section-2 reducer-misuse litmus -----------------------------------
  // The misuse catalogue of the paper's motivating section: view-reads
  // (set_value / get_value / take_value / construction / destruction) placed
  // against outstanding parallel updaters, plus the precision cases showing
  // the detectors stay quiet on the disciplined variants.

  add({"get-parallel-with-updates",
       "§2's canonical misuse: get_value while spawned updates are in "
       "flight — the observed value depends on the schedule",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([&] { sum += 1; });
         spawn([&] { sum += 2; });
         volatile long v = sum.get_value(SrcTag{"get amid updates"});
         (void)v;
         sync();
       },
       true, false, false});

  add({"reducer-constructed-in-spawned-child",
       "a reducer created, updated, read, and destroyed inside ONE spawned "
       "child: every view-read shares that strand's peer set (precision)",
       [] {
         spawn([] {
           reducer<monoid::op_add<long>> local;
           local += 1;
           volatile long v = local.get_value();
           (void)v;
         });
         spawn([] {});
         sync();
       },
       false, false, false});

  add({"holder-get-after-sync-clean",
       "disciplined holder use: strand-local scratch, value read only at "
       "the peer-stable point after the sync",
       [] {
         holder<long> scratch;
         parallel_for_flat<int>(
             0, 4, [&](int i) { scratch.update([&](long& v) { v = i; }); },
             4);
         sync();
         volatile long v = scratch.get_value();
         (void)v;
       },
       false, false, false});

  add({"set-value-after-sync-clean",
       "set_value once the sync has drained every updater: peers unchanged "
       "since the first strand",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([&] { sum += 1; });
         sync();
         sum.set_value(42);
         volatile long v = sum.get_value();
         (void)v;
       },
       false, false, false});

  add({"set-value-before-sync",
       "§2: set_value while a spawned updater is outstanding clobbers a "
       "nondeterministically-chosen view",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([&] { sum += 1; });
         sum.set_value(5, SrcTag{"set with updater outstanding"});
         sync();
       },
       true, false, false});

  add({"take-value-mid-block",
       "take_value is a view-read too: draining the reducer before the sync "
       "races with the outstanding updates",
       [] {
         reducer<monoid::op_add<long>> sum;
         spawn([&] { sum += 3; });
         volatile long v = sum.take_value(SrcTag{"take before sync"});
         (void)v;
         sync();
       },
       true, false, false});

  add({"destroy-before-sync",
       "destruction is the last view-read: destroying the reducer while a "
       "spawned updater is outstanding has schedule-dependent meaning",
       [] {
         auto sum = std::make_unique<reducer<monoid::op_add<long>>>();
         spawn([&] { *sum += 1; });
         sum.reset();  // destroy-read with the updater still outstanding
         sync();
       },
       true, false, false});

  add({"reduce-touches-shared-state",
       "the monoid's reduce writes a word a parallel strand reads; Reduce "
       "strands exist only on stolen schedules (family-only, like Figure 1)",
       [] {
         spawn([] {
           shadow_read(&detail::reduce_footprint,
                       sizeof(detail::reduce_footprint),
                       SrcTag{"parallel footprint read"});
         });
         call([] {
           reducer<detail::noisy_monoid> acc;
           for (int i = 0; i < 4; ++i) {
             spawn([] {});
             acc.update([](long& v) { v += 1; });
           }
           sync();
         });
         sync();
       },
       false, false, true});

  return cases;
}

}  // namespace rader::litmus
