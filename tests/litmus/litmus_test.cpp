// Litmus runner: every corpus case is checked against its hand-derived
// verdicts under Peer-Set, SP+ on the serial schedule, and SP+ under the
// exhaustive Section-7 family — and the detectors' mutual containments are
// asserted (family findings ⊇ serial findings; verdicts deterministic on
// repetition).
#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "litmus_cases.hpp"

namespace rader::litmus {
namespace {

class Litmus : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Litmus, VerdictsMatchHandDerivation) {
  const Case c = all_cases()[GetParam()];
  SCOPED_TRACE(c.name + " — " + c.why);

  const RaceLog peerset = Rader::check_view_read([&] { c.program(); });
  EXPECT_EQ(peerset.view_read_count() > 0, c.peerset) << "Peer-Set verdict";

  spec::NoSteal none;
  const RaceLog serial = Rader::check_determinacy([&] { c.program(); }, none);
  EXPECT_EQ(serial.determinacy_count() > 0, c.sp_serial)
      << "SP+ serial-schedule verdict";

  const auto family =
      Rader::check_exhaustive([&] { c.program(); }, /*k_cap=*/8,
                              /*depth_cap=*/16);
  EXPECT_EQ(family.log.determinacy_count() > 0, c.sp_family)
      << "SP+ exhaustive-family verdict";

  // Structural sanity: whatever the serial schedule exposes, the family
  // (which includes the no-steal spec) must also expose.
  if (c.sp_serial) EXPECT_TRUE(family.log.determinacy_count() > 0);
  // And the family's Peer-Set probe agrees with the direct Peer-Set run.
  EXPECT_EQ(family.log.view_read_count() > 0, c.peerset);
}

TEST_P(Litmus, VerdictsAreStableAcrossRepetition) {
  const Case c = all_cases()[GetParam()];
  SCOPED_TRACE(c.name);
  spec::RandomTripleSteal steal_spec(11, 8);
  const auto first =
      Rader::check_determinacy([&] { c.program(); }, steal_spec)
          .determinacy_count() > 0;
  for (int rep = 0; rep < 2; ++rep) {
    EXPECT_EQ(Rader::check_determinacy([&] { c.program(); }, steal_spec)
                      .determinacy_count() > 0,
              first)
        << "rep " << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, Litmus, ::testing::Range<std::size_t>(0, all_cases().size()),
    [](const ::testing::TestParamInfo<std::size_t>& info) {
      std::string name = all_cases()[info.param].name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(LitmusCorpus, CoversBothRaceKindsAndBothGapDirections) {
  int viewread = 0, serial_races = 0, family_only = 0, clean = 0;
  for (const Case& c : all_cases()) {
    viewread += c.peerset;
    serial_races += c.sp_serial;
    family_only += (!c.sp_serial && c.sp_family);
    clean += (!c.peerset && !c.sp_serial && !c.sp_family);
  }
  EXPECT_GE(viewread, 8);      // view-read races represented
  EXPECT_GE(serial_races, 4);  // serial-visible determinacy races
  EXPECT_GE(family_only, 3);   // the paper's raison d'être: steal-only bugs
  EXPECT_GE(clean, 10);        // and clean programs to guard precision
}

}  // namespace
}  // namespace rader::litmus
