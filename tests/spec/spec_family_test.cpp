#include "spec/spec_family.hpp"

#include <gtest/gtest.h>

namespace rader::spec {
namespace {

TEST(SpecFamily, UpdateFamilyHasOneSpecPerDepth) {
  const auto family = update_coverage_family(5);
  ASSERT_EQ(family.size(), 6u);  // depths 0..5
  PointCtx ctx;
  for (std::uint64_t d = 0; d <= 5; ++d) {
    ctx.spawn_depth = d;
    int stealers = 0;
    for (const auto& s : family) stealers += s->steal(ctx);
    EXPECT_EQ(stealers, 1) << "depth " << d;  // classes partition depths
  }
}

TEST(SpecFamily, ReduceFamilySizeMatchesFormula) {
  for (const std::uint32_t k : {0u, 1u, 2u, 3u, 4u, 8u, 16u}) {
    EXPECT_EQ(reduce_coverage_family(k).size(),
              reduce_coverage_family_size(k))
        << "k=" << k;
  }
}

TEST(SpecFamily, ReduceFamilyIsCubic) {
  // C(k,2) + C(k,3) = Θ(k³): check the exact closed form at a few points.
  EXPECT_EQ(reduce_coverage_family_size(3), 3u + 1u);
  EXPECT_EQ(reduce_coverage_family_size(4), 6u + 4u);
  EXPECT_EQ(reduce_coverage_family_size(10), 45u + 120u);
  // Growth ratio approaches 8 when k doubles.
  const double r = static_cast<double>(reduce_coverage_family_size(64)) /
                   static_cast<double>(reduce_coverage_family_size(32));
  EXPECT_GT(r, 6.5);
  EXPECT_LT(r, 8.5);
}

TEST(SpecFamily, ReduceFamilyCoversEveryTriple) {
  constexpr std::uint32_t k = 6;
  const auto family = reduce_coverage_family(k);
  // Every a<b<c triple appears as some spec's sorted values.
  for (std::uint32_t a = 0; a < k; ++a) {
    for (std::uint32_t b = a + 1; b < k; ++b) {
      for (std::uint32_t c = b + 1; c < k; ++c) {
        bool found = false;
        for (const auto& s : family) {
          const auto* t = dynamic_cast<const TripleSteal*>(s.get());
          ASSERT_NE(t, nullptr);
          if (t->a() == a && t->b() == b && t->c() == c) found = true;
        }
        EXPECT_TRUE(found) << a << "," << b << "," << c;
      }
    }
  }
}

TEST(SpecFamily, FullFamilyIsUnionOfBoth) {
  const auto full = full_coverage_family(5, 7);
  EXPECT_EQ(full.size(),
            update_coverage_family(7).size() + reduce_coverage_family_size(5));
}

TEST(SpecFamily, EmptyParameters) {
  EXPECT_EQ(reduce_coverage_family(0).size(), 0u);
  EXPECT_EQ(reduce_coverage_family(1).size(), 0u);
  EXPECT_EQ(update_coverage_family(0).size(), 1u);  // depth 0 only
}

}  // namespace
}  // namespace rader::spec
