#include "spec/steal_spec.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rader::spec {
namespace {

PointCtx ctx(FrameId frame, std::uint32_t block, std::uint32_t cont,
             std::uint64_t depth = 0, std::uint32_t live = 0) {
  PointCtx c;
  c.frame = frame;
  c.sync_block = block;
  c.cont_index = cont;
  c.spawn_depth = depth;
  c.live_epochs = live;
  return c;
}

TEST(NoSteal, NeverSteals) {
  NoSteal s;
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_FALSE(s.steal(ctx(0, 0, i)));
    EXPECT_EQ(s.merges_now(ctx(0, 0, i, 0, 5)), 0u);
  }
}

TEST(StealAll, AlwaysSteals) {
  StealAll s;
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_TRUE(s.steal(ctx(1, 2, i)));
}

TEST(TripleSteal, StealsExactlyTheTriple) {
  TripleSteal s(1, 4, 9);
  std::set<std::uint32_t> stolen;
  for (std::uint32_t i = 0; i < 20; ++i) {
    if (s.steal(ctx(0, 0, i))) stolen.insert(i);
  }
  EXPECT_EQ(stolen, (std::set<std::uint32_t>{1, 4, 9}));
}

TEST(TripleSteal, NormalizesOrder) {
  TripleSteal s(9, 1, 4);
  EXPECT_EQ(s.a(), 1u);
  EXPECT_EQ(s.b(), 4u);
  EXPECT_EQ(s.c(), 9u);
}

TEST(TripleSteal, MergesOnlyAtThirdPointWithTwoLiveEpochs) {
  TripleSteal s(1, 4, 9);
  EXPECT_EQ(s.merges_now(ctx(0, 0, 9, 0, 2)), 1u);
  EXPECT_EQ(s.merges_now(ctx(0, 0, 9, 0, 1)), 0u);  // not enough epochs
  EXPECT_EQ(s.merges_now(ctx(0, 0, 4, 0, 2)), 0u);  // wrong point
  EXPECT_EQ(s.merges_now(ctx(0, 0, 8, 0, 2)), 0u);
}

TEST(TripleSteal, DegenerateTripleNeverMerges) {
  TripleSteal s(3, 3, 3);
  EXPECT_TRUE(s.steal(ctx(0, 0, 3)));
  EXPECT_EQ(s.merges_now(ctx(0, 0, 3, 0, 5)), 0u);
}

TEST(DepthSteal, StealsExactlyItsDepthClass) {
  DepthSteal s(3);
  EXPECT_FALSE(s.steal(ctx(0, 0, 0, 2)));
  EXPECT_TRUE(s.steal(ctx(0, 0, 0, 3)));
  EXPECT_FALSE(s.steal(ctx(0, 0, 0, 4)));
}

TEST(RandomTripleSteal, DeterministicPerPoint) {
  RandomTripleSteal a(42, 16), b(42, 16);
  for (std::uint32_t f = 0; f < 5; ++f) {
    for (std::uint32_t i = 0; i < 16; ++i) {
      EXPECT_EQ(a.steal(ctx(f, 0, i)), b.steal(ctx(f, 0, i)));
    }
  }
}

TEST(RandomTripleSteal, StealsAtMostThreePointsPerBlock) {
  RandomTripleSteal s(7, 32);
  for (std::uint32_t f = 0; f < 10; ++f) {
    int stolen = 0;
    for (std::uint32_t i = 0; i < 32; ++i) stolen += s.steal(ctx(f, 0, i));
    EXPECT_GE(stolen, 1);
    EXPECT_LE(stolen, 3);
  }
}

TEST(RandomTripleSteal, DifferentSeedsDiffer) {
  RandomTripleSteal a(1, 64), b(2, 64);
  int diff = 0;
  for (std::uint32_t f = 0; f < 20; ++f) {
    for (std::uint32_t i = 0; i < 64; ++i) {
      diff += a.steal(ctx(f, 0, i)) != b.steal(ctx(f, 0, i));
    }
  }
  EXPECT_GT(diff, 0);
}

TEST(BernoulliSteal, ProbabilityExtremes) {
  BernoulliSteal never(3, 0.0), always(3, 1.0);
  for (std::uint32_t i = 0; i < 50; ++i) {
    EXPECT_FALSE(never.steal(ctx(0, 0, i)));
    EXPECT_TRUE(always.steal(ctx(0, 0, i)));
  }
}

TEST(BernoulliSteal, RoughlyMatchesProbability) {
  BernoulliSteal s(5, 0.3);
  int stolen = 0;
  for (std::uint32_t f = 0; f < 100; ++f) {
    for (std::uint32_t i = 0; i < 100; ++i) stolen += s.steal(ctx(f, 0, i));
  }
  EXPECT_NEAR(stolen, 3000, 300);
}

TEST(BernoulliSteal, MergesBoundedByLiveEpochs) {
  BernoulliSteal s(9, 0.5);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_LE(s.merges_now(ctx(0, 0, i, 0, 3)), 3u);
    EXPECT_EQ(s.merges_now(ctx(0, 0, i, 0, 0)), 0u);
  }
}

TEST(Describe, AllSpecsAreSelfDescribing) {
  EXPECT_EQ(NoSteal().describe(), "no-steals");
  EXPECT_EQ(StealAll().describe(), "steal-all");
  EXPECT_EQ(TripleSteal(1, 2, 3).describe(), "steal-triple(1,2,3)");
  EXPECT_EQ(DepthSteal(4).describe(), "steal-depth(4)");
  EXPECT_NE(RandomTripleSteal(1, 8).describe().find("steal-random"),
            std::string::npos);
  EXPECT_NE(BernoulliSteal(1, 0.5).describe().find("steal-bernoulli"),
            std::string::npos);
}

}  // namespace
}  // namespace rader::spec
