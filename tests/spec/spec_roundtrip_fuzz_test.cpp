// Fuzz the spec-handle round trip: for 500 randomly drawn specifications of
// every kind, describe() → from_description() → describe() must be
// byte-identical — the contract `rader --replay` and the report
// replay_handles depend on.  Includes the degenerate corners: the zero-steal
// spec, zero triples, and maximum-K randomized specs.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>

#include "spec/steal_spec.hpp"

namespace rader::spec {
namespace {

std::unique_ptr<StealSpec> random_spec(std::mt19937_64& rng) {
  switch (rng() % 6) {
    case 0:
      return std::make_unique<NoSteal>();
    case 1:
      return std::make_unique<StealAll>();
    case 2: {
      // Unordered, duplicated, zero and huge indices all occur.
      const auto a = static_cast<std::uint32_t>(rng() % 1000);
      const auto b = static_cast<std::uint32_t>(rng() % 1000);
      const auto c = static_cast<std::uint32_t>(rng() % 1000);
      return std::make_unique<TripleSteal>(a, b, c);
    }
    case 3:
      return std::make_unique<DepthSteal>(rng() % 100000);
    case 4:
      return std::make_unique<RandomTripleSteal>(
          rng(), static_cast<std::uint32_t>(rng() % 4096 + 1));
    default: {
      // p drawn across the whole unit interval, including the endpoints.
      const double p = static_cast<double>(rng() % 1000001) * 1e-6;
      return std::make_unique<BernoulliSteal>(rng(), p);
    }
  }
}

TEST(SpecRoundTripFuzz, FiveHundredSpecsSurviveTheHandleRoundTrip) {
  std::mt19937_64 rng(20260805);
  for (int i = 0; i < 500; ++i) {
    const auto original = random_spec(rng);
    const std::string handle = original->describe();
    const auto parsed = from_description(handle);
    ASSERT_NE(parsed, nullptr) << "iteration " << i << ": " << handle;
    EXPECT_EQ(parsed->describe(), handle) << "iteration " << i;
    // One more hop: the reparsed handle must be a fixed point.
    const auto reparsed = from_description(parsed->describe());
    ASSERT_NE(reparsed, nullptr) << handle;
    EXPECT_EQ(reparsed->describe(), handle);
  }
}

TEST(SpecRoundTripFuzz, CornerSpecsRoundTrip) {
  // The corners the fuzz distribution might under-sample: the zero-steal
  // spec, the all-zero triple, single-point triples, maximum-K randomized
  // specs, and Bernoulli at both endpoints.
  const std::unique_ptr<StealSpec> corners[] = {
      std::make_unique<NoSteal>(),
      std::make_unique<TripleSteal>(0, 0, 0),
      std::make_unique<TripleSteal>(7, 7, 7),
      std::make_unique<DepthSteal>(0),
      std::make_unique<RandomTripleSteal>(0, 1),
      std::make_unique<RandomTripleSteal>(~std::uint64_t{0},
                                          ~std::uint32_t{0}),
      std::make_unique<BernoulliSteal>(0, 0.0),
      std::make_unique<BernoulliSteal>(1, 1.0),
  };
  for (const auto& s : corners) {
    const std::string handle = s->describe();
    const auto parsed = from_description(handle);
    ASSERT_NE(parsed, nullptr) << handle;
    EXPECT_EQ(parsed->describe(), handle);
  }
}

TEST(SpecRoundTripFuzz, ParsedRandomSpecKeepsItsDecisions) {
  // Behavioral spot check on 50 randomized specs: the parsed spec makes the
  // same steal/merge decisions at a grid of points (textual identity alone
  // could hide a mis-parsed seed).
  std::mt19937_64 rng(424242);
  for (int i = 0; i < 50; ++i) {
    const auto k = static_cast<std::uint32_t>(rng() % 64 + 1);
    RandomTripleSteal original(rng(), k);
    const auto parsed = from_description(original.describe());
    ASSERT_NE(parsed, nullptr);
    for (std::uint32_t frame = 0; frame < 4; ++frame) {
      for (std::uint32_t cont = 0; cont < 16; ++cont) {
        PointCtx ctx;
        ctx.frame = frame;
        ctx.sync_block = frame % 3;
        ctx.cont_index = cont;
        ctx.live_epochs = cont % 4;
        EXPECT_EQ(parsed->steal(ctx), original.steal(ctx));
        EXPECT_EQ(parsed->merges_now(ctx), original.merges_now(ctx));
      }
    }
  }
}

}  // namespace
}  // namespace rader::spec
