#include "dsu/disjoint_set.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "support/rng.hpp"

namespace rader::dsu {
namespace {

TEST(DisjointSets, SingletonsAreTheirOwnRoots) {
  DisjointSets ds;
  const Node a = ds.make_node();
  const Node b = ds.make_node();
  EXPECT_EQ(ds.find(a), a);
  EXPECT_EQ(ds.find(b), b);
  EXPECT_NE(ds.find(a), ds.find(b));
}

TEST(DisjointSets, LinkUnionsTwoSets) {
  DisjointSets ds;
  const Node a = ds.make_node();
  const Node b = ds.make_node();
  const Node root = ds.link(a, b);
  EXPECT_EQ(ds.find(a), root);
  EXPECT_EQ(ds.find(b), root);
}

TEST(DisjointSets, LinkSameRootIsIdempotent) {
  DisjointSets ds;
  const Node a = ds.make_node();
  EXPECT_EQ(ds.link(a, a), a);
}

TEST(DisjointSets, MetadataLivesOnRoots) {
  DisjointSets ds;
  const Node a = ds.make_node();
  ds.meta(a).kind = BagKind::kS;
  ds.meta(a).vid = 42;
  EXPECT_EQ(ds.meta_of(a).kind, BagKind::kS);
  EXPECT_EQ(ds.meta_of(a).vid, 42u);
}

TEST(DisjointSets, ChainUnionFindsSingleRoot) {
  DisjointSets ds;
  std::vector<Node> nodes;
  for (int i = 0; i < 100; ++i) nodes.push_back(ds.make_node());
  Node root = nodes[0];
  for (int i = 1; i < 100; ++i) root = ds.link(root, ds.find(nodes[i]));
  for (const Node n : nodes) EXPECT_EQ(ds.find(n), root);
}

TEST(DisjointSets, ClearInvalidatesEverything) {
  DisjointSets ds;
  ds.make_node();
  ds.make_node();
  ds.clear();
  EXPECT_EQ(ds.node_count(), 0u);
  const Node fresh = ds.make_node();
  EXPECT_EQ(fresh, 0u);
}

TEST(Bag, EmptyBagHasMetadataButNoRoot) {
  DisjointSets ds;
  Bag p(&ds, BagKind::kP, 7);
  EXPECT_TRUE(p.valid());
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.kind(), BagKind::kP);
  EXPECT_EQ(p.vid(), 7u);
}

TEST(Bag, SingletonBagStampsRootMetadata) {
  DisjointSets ds;
  const Node n = ds.make_node();
  Bag s(&ds, n, BagKind::kS, 3);
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(ds.meta_of(n).kind, BagKind::kS);
  EXPECT_EQ(ds.meta_of(n).vid, 3u);
}

TEST(Bag, AddPutsNodeInBag) {
  DisjointSets ds;
  Bag p(&ds, BagKind::kP, 9);
  const Node a = ds.make_node();
  const Node b = ds.make_node();
  p.add(a);
  p.add(b);
  EXPECT_EQ(ds.find(a), ds.find(b));
  EXPECT_EQ(ds.meta_of(a).kind, BagKind::kP);
  EXPECT_EQ(ds.meta_of(b).vid, 9u);
}

TEST(Bag, MergePreservesDestinationMetadata) {
  // "when a P bag is unioned into another P bag, the bags are unioned, and
  // the view ID of the destination P bag is preserved."
  DisjointSets ds;
  const Node a = ds.make_node();
  const Node b = ds.make_node();
  Bag dst(&ds, a, BagKind::kP, 1);
  Bag src(&ds, b, BagKind::kP, 2);
  dst.merge_from(src);
  EXPECT_TRUE(src.empty());
  EXPECT_EQ(ds.find(a), ds.find(b));
  EXPECT_EQ(ds.meta_of(b).kind, BagKind::kP);
  EXPECT_EQ(ds.meta_of(b).vid, 1u);  // destination vid survives
}

TEST(Bag, MergeSBagAbsorbsPBagKeepingSKind) {
  // SP+ sync: F.S ∪= Top(F.P) — members become "in series".
  DisjointSets ds;
  const Node f = ds.make_node();
  const Node child = ds.make_node();
  Bag s(&ds, f, BagKind::kS, 0);
  Bag p(&ds, child, BagKind::kP, 5);
  s.merge_from(p);
  EXPECT_EQ(ds.meta_of(child).kind, BagKind::kS);
  EXPECT_EQ(ds.meta_of(child).vid, 0u);
}

TEST(Bag, MergeIntoEmptyBagRetagsSource) {
  DisjointSets ds;
  const Node n = ds.make_node();
  Bag src(&ds, n, BagKind::kSS, kNoView);
  Bag dst(&ds, BagKind::kP, 11);
  dst.merge_from(src);
  EXPECT_FALSE(dst.empty());
  EXPECT_EQ(ds.meta_of(n).kind, BagKind::kP);
  EXPECT_EQ(ds.meta_of(n).vid, 11u);
}

TEST(Bag, MergeEmptyIntoBagIsNoOp) {
  DisjointSets ds;
  const Node n = ds.make_node();
  Bag dst(&ds, n, BagKind::kS, 0);
  Bag src(&ds, BagKind::kP, 4);
  dst.merge_from(src);
  EXPECT_EQ(ds.meta_of(n).kind, BagKind::kS);
}

TEST(Bag, SetVidRestampsRoot) {
  DisjointSets ds;
  const Node n = ds.make_node();
  Bag p(&ds, n, BagKind::kP, 1);
  p.set_vid(99);
  EXPECT_EQ(ds.meta_of(n).vid, 99u);
}

// Randomized: metadata queries always reflect the last bag a node was
// merged into, across thousands of operations.
TEST(Bag, RandomizedMergeStress) {
  Rng rng(123);
  DisjointSets ds;
  std::vector<Bag> bags;
  std::vector<int> owner;  // node -> index of bag currently holding it
  std::vector<Node> nodes;
  std::vector<bool> live;
  for (int i = 0; i < 50; ++i) {
    const Node n = ds.make_node();
    nodes.push_back(n);
    bags.emplace_back(&ds, n,
                      rng.chance(0.5) ? BagKind::kS : BagKind::kP,
                      static_cast<ViewId>(i));
    owner.push_back(i);
    live.push_back(true);
  }
  for (int step = 0; step < 500; ++step) {
    const int a = static_cast<int>(rng.below(bags.size()));
    const int b = static_cast<int>(rng.below(bags.size()));
    if (a == b || !live[a] || !live[b]) continue;
    bags[a].merge_from(bags[b]);
    live[b] = false;
    for (auto& o : owner) {
      if (o == b) o = a;
    }
    for (std::size_t n = 0; n < nodes.size(); ++n) {
      const Bag& holder = bags[static_cast<std::size_t>(owner[n])];
      EXPECT_EQ(ds.meta_of(nodes[n]).kind, holder.kind());
      EXPECT_EQ(ds.meta_of(nodes[n]).vid, holder.vid());
    }
  }
}

}  // namespace
}  // namespace rader::dsu
