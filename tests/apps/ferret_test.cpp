#include "apps/ferret.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "runtime/run.hpp"
#include "sched/parallel_engine.hpp"

namespace rader::apps {
namespace {

TEST(TopK, OfferKeepsKBest) {
  TopK top{3, {}};
  for (std::uint32_t id = 0; id < 10; ++id) {
    top.offer(Hit{static_cast<float>(10 - id), id});
  }
  ASSERT_EQ(top.hits.size(), 3u);
  EXPECT_EQ(top.hits[0].id, 9u);  // dist 1
  EXPECT_EQ(top.hits[1].id, 8u);
  EXPECT_EQ(top.hits[2].id, 7u);
}

TEST(TopK, TieBreaksById) {
  TopK top{2, {}};
  top.offer(Hit{1.0f, 5});
  top.offer(Hit{1.0f, 2});
  top.offer(Hit{1.0f, 9});
  ASSERT_EQ(top.hits.size(), 2u);
  EXPECT_EQ(top.hits[0].id, 2u);
  EXPECT_EQ(top.hits[1].id, 5u);
}

TEST(TopK, IdentityViewLearnsKOnMerge) {
  TopK identity = topk_monoid::identity();
  EXPECT_EQ(identity.k, 0u);
  identity.offer(Hit{3.0f, 1});  // unbounded until merged
  identity.offer(Hit{1.0f, 2});
  TopK real{1, {}};
  real.offer(Hit{2.0f, 3});
  topk_monoid::reduce(real, identity);
  ASSERT_EQ(real.hits.size(), 1u);
  EXPECT_EQ(real.hits[0].id, 2u);
}

TEST(TopK, MergeEqualsOfferingAll) {
  TopK a{4, {}}, b{4, {}}, all{4, {}};
  for (std::uint32_t id = 0; id < 16; ++id) {
    const Hit h{static_cast<float>((id * 7) % 13), id};
    ((id % 2 == 0) ? a : b).offer(h);
    all.offer(h);
  }
  topk_monoid::reduce(a, b);
  EXPECT_EQ(a.hits, all.hits);
}

TEST(Ferret, DatabaseIsReproducible) {
  const auto a = make_ferret_db(100, 5, 9);
  const auto b = make_ferret_db(100, 5, 9);
  EXPECT_EQ(a.images.size(), 100u);
  EXPECT_EQ(a.queries.size(), 5u);
  EXPECT_EQ(a.images[17], b.images[17]);
}

TEST(Ferret, ParallelSearchMatchesSerial) {
  const auto db = make_ferret_db(400, 8, 10);
  std::string report;
  std::vector<std::vector<std::uint32_t>> results;
  run_serial([&] { results = ferret_search(db, 5, report); });
  EXPECT_EQ(results, ferret_search_serial(db, 5));
  EXPECT_FALSE(report.empty());
}

TEST(Ferret, ReportLinesAreInQueryOrder) {
  const auto db = make_ferret_db(200, 6, 11);
  std::string report;
  run_serial([&] { ferret_search(db, 3, report); });
  std::size_t pos = 0;
  for (int q = 0; q < 6; ++q) {
    const std::string prefix = "query " + std::to_string(q) + ":";
    const std::size_t found = report.find(prefix, pos);
    ASSERT_NE(found, std::string::npos) << prefix;
    pos = found + 1;
  }
}

TEST(Ferret, ParallelEngineSameResultsAndReport) {
  const auto db = make_ferret_db(300, 6, 12);
  std::string serial_report;
  std::vector<std::vector<std::uint32_t>> expected;
  run_serial([&] { expected = ferret_search(db, 4, serial_report); });

  ParallelEngine engine(4);
  std::string report;
  std::vector<std::vector<std::uint32_t>> results;
  engine.run([&] { results = ferret_search(db, 4, report); });
  EXPECT_EQ(results, expected);
  EXPECT_EQ(report, serial_report);
}

TEST(Ferret, CleanUnderDetectors) {
  const auto db = make_ferret_db(80, 3, 13);
  const auto program = [&] {
    std::string report;
    volatile std::size_t n = ferret_search(db, 4, report).size();
    (void)n;
  };
  EXPECT_FALSE(Rader::check_view_read(program).any());
  spec::RandomTripleSteal spec(21, 16);
  EXPECT_FALSE(Rader::check_determinacy(program, spec).any());
}

TEST(Ferret, KLargerThanDatabase) {
  const auto db = make_ferret_db(5, 2, 14);
  std::string report;
  std::vector<std::vector<std::uint32_t>> results;
  run_serial([&] { results = ferret_search(db, 50, report); });
  for (const auto& r : results) EXPECT_EQ(r.size(), 5u);
}

}  // namespace
}  // namespace rader::apps
