#include "apps/mylist.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "reducers/reducer.hpp"
#include "runtime/run.hpp"
#include "spec/steal_spec.hpp"

namespace rader::apps {
namespace {

TEST(MyList, InsertPrepends) {
  MyList list;
  list.insert(1);
  list.insert(2);
  list.insert(3);
  EXPECT_EQ(list.scan(), 3);
  EXPECT_EQ(list.head()->value, 3);  // prepend order
  list.destroy();
}

TEST(MyList, ScanCountsNodes) {
  MyList list;
  EXPECT_EQ(list.scan(), 0);
  for (int i = 0; i < 10; ++i) list.insert(i);
  EXPECT_EQ(list.scan(), 10);
  list.destroy();
}

TEST(MyList, ConcatSplicesInO1) {
  MyList a, b;
  a.insert(1);
  b.insert(2);
  b.insert(3);
  a.concat(b);
  EXPECT_EQ(a.scan(), 3);
  EXPECT_TRUE(b.empty());
  a.destroy();
}

TEST(MyList, ConcatIntoEmptyAdopts) {
  MyList a, b;
  b.insert(7);
  a.concat(b);
  EXPECT_EQ(a.scan(), 1);
  EXPECT_EQ(a.head()->value, 7);
  a.destroy();
}

TEST(MyList, ShallowCopySharesNodes) {
  MyList a;
  a.insert(5);
  MyList copy(a);  // the Figure 1 bug
  EXPECT_EQ(copy.head(), a.head());
  a.destroy();
}

TEST(ListMonoid, ReducerPreservesContentUnderSteals) {
  // Figure 1's list reducer: insert PREPENDS into the view (touching only
  // fresh nodes) and Reduce concatenates.  The element multiset is
  // schedule-invariant; element ORDER is not (prepends are not expressible
  // as right-multiplications of the concat monoid), which is fine for the
  // example — and one more reason reads mid-flight are view-read races.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    spec::BernoulliSteal b(seed, 0.5);
    SerialEngine engine(nullptr, &b);
    std::multiset<int> values;
    engine.run([&] {
      reducer<list_monoid> red;
      MyList init;
      init.insert(-1);
      red.set_value(init);
      for (int i = 0; i < 8; ++i) {
        spawn([&red, i] {
          red.update([&](MyList& view) { view.insert(i); });
        });
      }
      sync();
      MyList result = red.take_value();
      for (const ListNode* n = result.head(); n != nullptr; n = n->next) {
        values.insert(n->value);
      }
      result.destroy();
    });
    const std::multiset<int> expected{-1, 0, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_EQ(values, expected) << "seed " << seed;
  }
}

TEST(ListMonoid, NoStealProjectionIsPlainPrependOrder) {
  spec::NoSteal none;
  SerialEngine engine(nullptr, &none);
  std::vector<int> values;
  engine.run([&] {
    reducer<list_monoid> red;
    for (int i = 0; i < 4; ++i) {
      spawn([&red, i] {
        red.update([&](MyList& view) { view.insert(i); });
      });
    }
    sync();
    MyList result = red.take_value();
    for (const ListNode* n = result.head(); n != nullptr; n = n->next) {
      values.push_back(n->value);
    }
    result.destroy();
  });
  EXPECT_EQ(values, (std::vector<int>{3, 2, 1, 0}));
}

}  // namespace
}  // namespace rader::apps
