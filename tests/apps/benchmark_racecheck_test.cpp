// End-to-end: every paper benchmark is ostensibly deterministic and
// race-free — under Peer-Set, under SP+ on the serial schedule, and under
// the exhaustive Section-7 specification family (at reduced scale and caps
// so the whole matrix fits in a test).
#include <gtest/gtest.h>

#include "apps/workloads.hpp"
#include "core/driver.hpp"

namespace rader::apps {
namespace {

class BenchmarkRaceCheck
    : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkRaceCheck, ExhaustivelyRaceFreeAtSmallScale) {
  Workload w = make_benchmark(GetParam(), /*scale=*/0.002);
  const auto result =
      Rader::check_exhaustive([&] { w.run(); }, /*k_cap=*/4, /*depth_cap=*/6);
  EXPECT_FALSE(result.log.any())
      << w.name << " under " << result.spec_runs
      << " specs:\n" << result.log.to_string();
  EXPECT_TRUE(w.verify()) << w.name;
  EXPECT_GE(result.spec_runs, 2u);  // tiny scales can have K<2
}

INSTANTIATE_TEST_SUITE_P(Paper, BenchmarkRaceCheck,
                         ::testing::Values("collision", "dedup", "ferret",
                                           "fib", "knapsack", "pbfs"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace rader::apps
