#include "apps/knapsack.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "runtime/run.hpp"
#include "sched/parallel_engine.hpp"

namespace rader::apps {
namespace {

TEST(Knapsack, DpReferenceOnTinyInstance) {
  const std::vector<KnapsackItem> items = {{60, 10}, {100, 20}, {120, 30}};
  EXPECT_EQ(knapsack_dp(items, 50), 220);
  EXPECT_EQ(knapsack_dp(items, 10), 60);
  EXPECT_EQ(knapsack_dp(items, 0), 0);
}

TEST(Knapsack, ParallelMatchesDpAcrossInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const auto items = knapsack_instance(14, seed);
    long weight = 0;
    for (const auto& item : items) weight += item.weight;
    const long cap = weight / 3;
    BestSolution best;
    run_serial([&] { best = knapsack_parallel(items, cap); });
    EXPECT_EQ(best.value, knapsack_dp(items, cap)) << "seed " << seed;
    EXPECT_GE(best.count, 1);
  }
}

TEST(Knapsack, ParallelEngineMatchesToo) {
  const auto items = knapsack_instance(18, 42);
  long weight = 0;
  for (const auto& item : items) weight += item.weight;
  const long cap = weight / 3;
  const long expected = knapsack_dp(items, cap);
  ParallelEngine engine(4);
  BestSolution best;
  engine.run([&] { best = knapsack_parallel(items, cap); });
  EXPECT_EQ(best.value, expected);
}

TEST(Knapsack, SolutionCountDeterministicUnderSpecs) {
  const auto items = knapsack_instance(12, 5);
  const long cap = 200;
  BestSolution expected;
  run_serial([&] { expected = knapsack_parallel(items, cap); });
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    spec::BernoulliSteal b(seed, 0.5);
    SerialEngine engine(nullptr, &b);
    BestSolution got;
    engine.run([&] { got = knapsack_parallel(items, cap); });
    EXPECT_EQ(got.value, expected.value) << seed;
    EXPECT_EQ(got.count, expected.count) << seed;
  }
}

TEST(Knapsack, InstanceIsDensitySorted) {
  const auto items = knapsack_instance(30, 9);
  for (std::size_t i = 1; i < items.size(); ++i) {
    EXPECT_GE(items[i - 1].value * items[i].weight,
              items[i].value * items[i - 1].weight);
  }
}

TEST(Knapsack, NoRacesReported) {
  const auto items = knapsack_instance(10, 3);
  const auto program = [&] {
    volatile long v = knapsack_parallel(items, 150).value;
    (void)v;
  };
  EXPECT_FALSE(Rader::check_view_read(program).any());
  spec::TripleSteal triple(0, 1, 2);
  EXPECT_FALSE(Rader::check_determinacy(program, triple).any());
}

TEST(Knapsack, ZeroCapacity) {
  const auto items = knapsack_instance(8, 1);
  BestSolution best;
  run_serial([&] { best = knapsack_parallel(items, 0); });
  EXPECT_EQ(best.value, 0);  // only the empty solution fits
}

}  // namespace
}  // namespace rader::apps
