#include "apps/graph.hpp"

#include <gtest/gtest.h>

#include <set>

namespace rader::apps {
namespace {

TEST(Graph, FromEdgesBuildsSymmetricCsr) {
  auto g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 6u);  // both directions
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  const auto n1 = g.neighbors(1);
  const std::set<std::uint32_t> got(n1.begin(), n1.end());
  EXPECT_EQ(got, (std::set<std::uint32_t>{0, 2}));
}

TEST(Graph, DeduplicatesAndDropsSelfLoops) {
  auto g = Graph::from_edges(3, {{0, 1}, {1, 0}, {0, 1}, {2, 2}});
  EXPECT_EQ(g.num_edges(), 2u);  // single undirected edge 0-1
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, RandomGraphIsReproducible) {
  const auto a = Graph::random(100, 300, 7);
  const auto b = Graph::random(100, 300, 7);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::uint32_t v = 0; v < 100; ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_EQ(na.size(), nb.size());
    for (std::size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
  }
  const auto c = Graph::random(100, 300, 8);
  EXPECT_NE(c.num_edges(), 0u);
}

TEST(Graph, RmatHasSkewedDegrees) {
  const auto g = Graph::rmat(1024, 8192, 3);
  std::uint32_t max_deg = 0;
  std::uint64_t total = 0;
  for (std::uint32_t v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
    total += g.degree(v);
  }
  EXPECT_EQ(total, g.num_edges());
  // Power-law-ish: the max degree far exceeds the average.
  EXPECT_GT(max_deg, 4 * total / g.num_vertices());
}

TEST(Graph, Grid2dStructure) {
  const auto g = Graph::grid2d(3, 3);
  EXPECT_EQ(g.num_vertices(), 9u);
  EXPECT_EQ(g.num_edges(), 24u);  // 12 undirected edges
  EXPECT_EQ(g.degree(4), 4u);     // center
  EXPECT_EQ(g.degree(0), 2u);     // corner
}

TEST(Graph, EmptyGraph) {
  const auto g = Graph::from_edges(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

}  // namespace
}  // namespace rader::apps
