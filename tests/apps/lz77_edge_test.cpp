// LZ77 codec boundary conditions: token-format limits, window edges, and
// adversarial inputs.  (The dedup benchmark's correctness rests on these.)
#include <gtest/gtest.h>

#include <string>

#include "apps/dedup.hpp"
#include "runtime/run.hpp"
#include "support/rng.hpp"

namespace rader::apps {
namespace {

std::string roundtrip(const std::string& s) {
  return lz77_decompress(lz77_compress(s.data(), s.size()));
}

TEST(Lz77Edge, MatchLengthAtU16Boundary) {
  // A run longer than the 65535 max match length must split into several
  // match tokens and still round-trip.
  const std::string s(70000, 'z');
  const std::string packed = lz77_compress(s.data(), s.size());
  EXPECT_EQ(lz77_decompress(packed), s);
  EXPECT_LT(packed.size(), 64u);  // a handful of tokens
}

TEST(Lz77Edge, LiteralRunAtU16Boundary) {
  // >65535 bytes with no 4-byte match anywhere: literals must chunk.
  Rng rng(99);
  std::string s;
  s.reserve(70000);
  // 3-byte unique blocks prevent 4-byte matches... build from a counter.
  for (int i = 0; s.size() < 70000; ++i) {
    s.push_back(static_cast<char>(i & 0xff));
    s.push_back(static_cast<char>((i >> 8) & 0xff));
    s.push_back(static_cast<char>((i >> 16) | 0x80));
  }
  EXPECT_EQ(roundtrip(s), s);
}

TEST(Lz77Edge, MatchJustInsideAndOutsideWindow) {
  // A repeat at distance exactly 2^15 is representable; beyond it the
  // match must be dropped (re-emitted), but round-trip must hold.
  const std::string pattern = "ABCDEFGHIJKLMNOP";
  for (const std::size_t gap : {std::size_t{32751}, std::size_t{32768},
                                std::size_t{40000}}) {
    std::string s = pattern;
    s.append(gap, 'x');
    s += pattern;
    EXPECT_EQ(roundtrip(s), s) << "gap " << gap;
  }
}

TEST(Lz77Edge, OverlappingSelfCopyAllDistances) {
  for (int dist = 1; dist <= 8; ++dist) {
    std::string s;
    for (int i = 0; i < dist; ++i) s.push_back(static_cast<char>('A' + i));
    std::string big;
    for (int rep = 0; rep < 1000; ++rep) big += s;
    EXPECT_EQ(roundtrip(big), big) << "period " << dist;
  }
}

TEST(Lz77Edge, BinaryDataWithEmbeddedTokenBytes) {
  // Payload bytes that collide with token tags (0x00 / 0x01) must survive.
  std::string s;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    s.push_back(static_cast<char>(rng.below(3)));  // 0x00,0x01,0x02 heavy
  }
  EXPECT_EQ(roundtrip(s), s);
}

TEST(Lz77Edge, DecompressRejectsTruncatedStreams) {
  const std::string s = "hello hello hello hello";
  const std::string packed = lz77_compress(s.data(), s.size());
  ASSERT_GT(packed.size(), 4u);
  const std::string truncated = packed.substr(0, packed.size() - 3);
  EXPECT_DEATH((void)lz77_decompress(truncated), "truncated|bad");
}

TEST(Lz77Edge, DecompressRejectsBadDistance) {
  // Hand-craft a match token pointing before the start of output.
  std::string bogus;
  bogus.push_back(0x01);  // match tag
  bogus.push_back(0x10);  // dist = 16 (but no output yet)
  bogus.push_back(0x00);
  bogus.push_back(0x04);  // len = 4
  bogus.push_back(0x00);
  EXPECT_DEATH((void)lz77_decompress(bogus), "distance");
}

TEST(ContentChunksEdge, MinEqualsMaxForcesFixedChunks) {
  DedupParams params;
  params.min_chunk = 100;
  params.max_chunk = 100;
  const std::string input = make_dedup_input(5000, 0.3, 8);
  const auto ends = content_chunks(input, params);
  std::uint32_t prev = 0;
  for (std::size_t i = 0; i + 1 < ends.size(); ++i) {
    EXPECT_EQ(ends[i] - prev, 100u);
    prev = ends[i];
  }
  EXPECT_EQ(ends.back(), input.size());
}

TEST(ContentChunksEdge, TinyInputsAreOneChunk) {
  DedupParams params;
  for (const std::size_t n : {std::size_t{0}, std::size_t{1},
                              std::size_t{100}}) {
    const std::string input(n, 'q');
    const auto ends = content_chunks(input, params);
    ASSERT_EQ(ends.size(), 1u);
    EXPECT_EQ(ends[0], n);
  }
}

TEST(DedupEdge, EmptyInputRoundTrips) {
  std::string archive;
  run_serial([&] {
    const std::string empty;
    dedup_compress(empty, archive);
  });
  EXPECT_EQ(dedup_restore(archive), "");
}

TEST(DedupEdge, SingleByteInput) {
  std::string archive;
  const std::string input = "x";
  run_serial([&] { dedup_compress(input, archive); });
  EXPECT_EQ(dedup_restore(archive), input);
}

}  // namespace
}  // namespace rader::apps
