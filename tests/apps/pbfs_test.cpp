#include "apps/pbfs.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "runtime/run.hpp"
#include "sched/parallel_engine.hpp"

namespace rader::apps {
namespace {

TEST(SerialBfs, PathGraphDistances) {
  const auto g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  const auto d = serial_bfs(g, 0);
  EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(SerialBfs, UnreachableVerticesStayMarked) {
  const auto g = Graph::from_edges(4, {{0, 1}});
  const auto d = serial_bfs(g, 0);
  EXPECT_EQ(d[2], kUnreached);
  EXPECT_EQ(d[3], kUnreached);
}

TEST(Pbfs, MatchesSerialOnGrid) {
  const auto g = Graph::grid2d(20, 20);
  std::vector<std::uint32_t> par;
  run_serial([&] { par = pbfs(g, 0, /*grain=*/8); });
  EXPECT_EQ(par, serial_bfs(g, 0));
}

TEST(Pbfs, MatchesSerialOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = Graph::random(500, 1500, seed);
    std::vector<std::uint32_t> par;
    run_serial([&] { par = pbfs(g, 0); });
    EXPECT_EQ(par, serial_bfs(g, 0)) << "seed " << seed;
  }
}

TEST(Pbfs, MatchesSerialOnRmatUnderParallelEngine) {
  const auto g = Graph::rmat(2048, 10000, 11);
  const auto expected = serial_bfs(g, 0);
  ParallelEngine engine(4);
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<std::uint32_t> par;
    engine.run([&] { par = pbfs(g, 0); });
    EXPECT_EQ(par, expected) << "rep " << rep;
  }
}

TEST(Pbfs, SingleVertexAndEmptyNeighborhoods) {
  const auto g = Graph::from_edges(1, {});
  std::vector<std::uint32_t> par;
  run_serial([&] { par = pbfs(g, 0); });
  EXPECT_EQ(par, std::vector<std::uint32_t>{0});
}

TEST(Pbfs, DistancesInvariantUnderStealSpecs) {
  const auto g = Graph::random(200, 600, 3);
  const auto expected = serial_bfs(g, 0);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    spec::BernoulliSteal b(seed, 0.4);
    SerialEngine engine(nullptr, &b);
    std::vector<std::uint32_t> par;
    engine.run([&] { par = pbfs(g, 0); });
    EXPECT_EQ(par, expected) << seed;
  }
}

TEST(Pbfs, NoViewReadRaces) {
  const auto g = Graph::random(100, 250, 9);
  const RaceLog log = Rader::check_view_read([&] {
    volatile std::uint32_t v = pbfs(g, 0)[0];
    (void)v;
  });
  EXPECT_FALSE(log.any());
}

}  // namespace
}  // namespace rader::apps
