#include "apps/fib.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "runtime/run.hpp"
#include "sched/parallel_engine.hpp"

namespace rader::apps {
namespace {

TEST(Fib, SerialReferenceValues) {
  EXPECT_EQ(fib_serial(0), 0u);
  EXPECT_EQ(fib_serial(1), 1u);
  EXPECT_EQ(fib_serial(10), 55u);
  EXPECT_EQ(fib_serial(28), 317811u);
}

TEST(Fib, CallCountRecurrence) {
  EXPECT_EQ(fib_call_count(0), 1u);
  EXPECT_EQ(fib_call_count(1), 1u);
  EXPECT_EQ(fib_call_count(2), 3u);
  EXPECT_EQ(fib_call_count(5), 1u + fib_call_count(4) + fib_call_count(3));
}

TEST(Fib, ReducerCountsCallsUnderSerialEngine) {
  FibResult result;
  run_serial([&] { result = run_fib(15); });
  EXPECT_EQ(result.value, fib_serial(15));
  EXPECT_EQ(static_cast<std::uint64_t>(result.calls), fib_call_count(15));
}

TEST(Fib, ReducerCountsCallsUnderParallelEngine) {
  ParallelEngine engine(4);
  FibResult result;
  engine.run([&] { result = run_fib(18); });
  EXPECT_EQ(result.value, fib_serial(18));
  EXPECT_EQ(static_cast<std::uint64_t>(result.calls), fib_call_count(18));
}

TEST(Fib, CleanUnderDetectors) {
  const auto program = [] {
    volatile std::uint64_t v = run_fib(10).value;
    (void)v;
  };
  EXPECT_FALSE(Rader::check_view_read(program).any());
  spec::RandomTripleSteal spec(3, 8);
  EXPECT_FALSE(Rader::check_determinacy(program, spec).any());
}

TEST(Fib, CutoffDoesNotChangeCounts) {
  FibResult a, b;
  run_serial([&] { a = run_fib(14, 2); });
  run_serial([&] { b = run_fib(14, 6); });
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.calls, b.calls);
}

}  // namespace
}  // namespace rader::apps
