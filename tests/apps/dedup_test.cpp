#include "apps/dedup.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "runtime/run.hpp"
#include "sched/parallel_engine.hpp"
#include "support/rng.hpp"

namespace rader::apps {
namespace {

TEST(Lz77, RoundTripsEmptyAndTiny) {
  for (const std::string s : {"", "a", "ab", "aaaa", "abcabcabc"}) {
    const std::string packed = lz77_compress(s.data(), s.size());
    EXPECT_EQ(lz77_decompress(packed), s);
  }
}

TEST(Lz77, RoundTripsRandomData) {
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    std::string s;
    const std::size_t n = 100 + rng.below(5000);
    for (std::size_t i = 0; i < n; ++i) {
      s.push_back(static_cast<char>(rng.below(8) + 'a'));  // compressible
    }
    const std::string packed = lz77_compress(s.data(), s.size());
    EXPECT_EQ(lz77_decompress(packed), s) << "trial " << trial;
  }
}

TEST(Lz77, RoundTripsIncompressibleData) {
  Rng rng(13);
  std::string s;
  for (int i = 0; i < 4096; ++i) {
    s.push_back(static_cast<char>(rng.below(256)));
  }
  const std::string packed = lz77_compress(s.data(), s.size());
  EXPECT_EQ(lz77_decompress(packed), s);
}

TEST(Lz77, CompressesRepetitiveInput) {
  std::string s;
  for (int i = 0; i < 200; ++i) s += "the quick brown fox ";
  const std::string packed = lz77_compress(s.data(), s.size());
  EXPECT_LT(packed.size(), s.size() / 4);
}

TEST(Lz77, HandlesOverlappingMatches) {
  const std::string s(10000, 'x');
  const std::string packed = lz77_compress(s.data(), s.size());
  EXPECT_EQ(lz77_decompress(packed), s);
  EXPECT_LT(packed.size(), 200u);
}

TEST(ContentChunks, BoundariesAreContentDefined) {
  const std::string input = make_dedup_input(200000, 0.0, 1);
  DedupParams params;
  const auto ends = content_chunks(input, params);
  ASSERT_FALSE(ends.empty());
  EXPECT_EQ(ends.back(), input.size());
  std::uint32_t prev = 0;
  for (const std::uint32_t e : ends) {
    EXPECT_GT(e, prev);
    const bool is_last = (e == input.size());
    if (!is_last) {
      EXPECT_GE(e - prev, params.min_chunk);
      EXPECT_LE(e - prev, params.max_chunk);
    }
    prev = e;
  }
}

TEST(ContentChunks, IdenticalContentGivesIdenticalBoundaries) {
  // Shift-invariance is the point of content-defined chunking: the same
  // block yields the same chunks wherever it appears after alignment.
  const std::string input = make_dedup_input(100000, 0.8, 2);
  DedupParams params;
  const auto a = content_chunks(input, params);
  const auto b = content_chunks(input, params);
  EXPECT_EQ(a, b);
}

TEST(Dedup, RoundTripSerial) {
  const std::string input = make_dedup_input(300000, 0.6, 3);
  std::string archive;
  DedupStats stats;
  run_serial([&] { stats = dedup_compress(input, archive); });
  EXPECT_EQ(dedup_restore(archive), input);
  EXPECT_EQ(stats.input_bytes, input.size());
  EXPECT_GT(stats.total_chunks, 10u);
  EXPECT_LT(stats.unique_chunks, stats.total_chunks);  // dup_ratio worked
  EXPECT_LT(stats.output_bytes, stats.input_bytes);    // actually compresses
}

TEST(Dedup, RoundTripParallelEngineMatchesSerialArchive) {
  const std::string input = make_dedup_input(200000, 0.5, 4);
  std::string serial_archive;
  run_serial([&] { dedup_compress(input, serial_archive); });

  ParallelEngine engine(4);
  std::string parallel_archive;
  engine.run([&] { dedup_compress(input, parallel_archive); });
  // The ostream reducer makes the archive bit-identical, not just valid.
  EXPECT_EQ(parallel_archive, serial_archive);
  EXPECT_EQ(dedup_restore(parallel_archive), input);
}

TEST(Dedup, ArchiveInvariantUnderStealSpecs) {
  const std::string input = make_dedup_input(120000, 0.5, 5);
  std::string expected;
  run_serial([&] { dedup_compress(input, expected); });
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    spec::BernoulliSteal b(seed, 0.4);
    SerialEngine engine(nullptr, &b);
    std::string archive;
    engine.run([&] { dedup_compress(input, archive); });
    EXPECT_EQ(archive, expected) << seed;
  }
}

TEST(Dedup, NoDuplicatesInput) {
  const std::string input = make_dedup_input(100000, 0.0, 6);
  std::string archive;
  DedupStats stats;
  run_serial([&] { stats = dedup_compress(input, archive); });
  EXPECT_EQ(dedup_restore(archive), input);
}

TEST(Dedup, CleanUnderDetectors) {
  const std::string input = make_dedup_input(60000, 0.5, 7);
  const auto program = [&] {
    std::string archive;
    dedup_compress(input, archive);
  };
  EXPECT_FALSE(Rader::check_view_read(program).any());
  spec::TripleSteal triple(0, 1, 2);
  EXPECT_FALSE(Rader::check_determinacy(program, triple).any());
}

}  // namespace
}  // namespace rader::apps
