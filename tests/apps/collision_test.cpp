#include "apps/collision.hpp"

#include <gtest/gtest.h>

#include "core/driver.hpp"
#include "runtime/run.hpp"
#include "sched/parallel_engine.hpp"

namespace rader::apps {
namespace {

TEST(Collision, BruteForceOnHandmadeScene) {
  CollisionScene scene;
  scene.world = 1.0f;
  scene.cell = 0.25f;
  scene.spheres = {
      {0.10f, 0.10f, 0.10f, 0.05f},
      {0.16f, 0.10f, 0.10f, 0.05f},  // overlaps sphere 0
      {0.90f, 0.90f, 0.90f, 0.05f},  // isolated
  };
  const auto brute = find_collisions_brute(scene);
  ASSERT_EQ(brute.size(), 1u);
  EXPECT_EQ(brute[0], (std::pair<std::uint32_t, std::uint32_t>{0, 1}));
}

TEST(Collision, GridMatchesBruteForceOnHandmadeScene) {
  CollisionScene scene;
  scene.world = 1.0f;
  scene.cell = 0.2f;
  scene.spheres = {
      {0.10f, 0.10f, 0.10f, 0.06f},
      {0.19f, 0.10f, 0.10f, 0.06f},
      {0.21f, 0.10f, 0.10f, 0.06f},  // crosses a cell boundary
      {0.55f, 0.55f, 0.55f, 0.02f},
  };
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  run_serial([&] { pairs = find_collisions(scene); });
  EXPECT_EQ(pairs, find_collisions_brute(scene));
}

TEST(Collision, GridMatchesBruteForceOnRandomScenes) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto scene = make_scene(300, seed);
    std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
    run_serial([&] { pairs = find_collisions(scene); });
    EXPECT_EQ(pairs, find_collisions_brute(scene)) << "seed " << seed;
  }
}

TEST(Collision, SceneActuallyHasCollisions) {
  const auto scene = make_scene(500, 2);
  EXPECT_FALSE(find_collisions_brute(scene).empty())
      << "scene density too low to exercise the hypervector reducer";
}

TEST(Collision, ParallelEngineProducesSameSet) {
  const auto scene = make_scene(400, 6);
  const auto expected = find_collisions_brute(scene);
  ParallelEngine engine(4);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  engine.run([&] { pairs = find_collisions(scene); });
  EXPECT_EQ(pairs, expected);
}

TEST(Collision, EmptySceneYieldsNothing) {
  CollisionScene scene;
  scene.spheres.clear();
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  run_serial([&] { pairs = find_collisions(scene); });
  EXPECT_TRUE(pairs.empty());
}

TEST(Collision, CleanUnderDetectors) {
  const auto scene = make_scene(120, 8);
  const auto program = [&] {
    volatile std::size_t n = find_collisions(scene).size();
    (void)n;
  };
  EXPECT_FALSE(Rader::check_view_read(program).any());
  spec::RandomTripleSteal spec(5, 16);
  EXPECT_FALSE(Rader::check_determinacy(program, spec).any());
}

}  // namespace
}  // namespace rader::apps
