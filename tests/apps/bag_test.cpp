#include "apps/bag.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "runtime/run.hpp"
#include "support/rng.hpp"

namespace rader::apps {
namespace {

std::vector<std::uint32_t> drain(const Bag<std::uint32_t>& bag) {
  std::vector<std::uint32_t> out;
  bag.for_each([&](std::uint32_t v) { out.push_back(v); });
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Bag, StartsEmpty) {
  Bag<std::uint32_t> bag;
  EXPECT_TRUE(bag.empty());
  EXPECT_EQ(bag.size(), 0u);
}

TEST(Bag, InsertAndVisit) {
  Bag<std::uint32_t> bag;
  for (std::uint32_t i = 0; i < 100; ++i) bag.insert(i);
  EXPECT_EQ(bag.size(), 100u);
  std::vector<std::uint32_t> expected(100);
  for (std::uint32_t i = 0; i < 100; ++i) expected[i] = i;
  EXPECT_EQ(drain(bag), expected);
}

TEST(Bag, PennantStructureIsBinaryCounter) {
  // Sizes that are powers of two occupy exactly one pennant; this is
  // observable through insert cost being amortized O(1) — we check the
  // element count across carry cascades.
  Bag<std::uint32_t> bag;
  for (std::uint32_t i = 0; i < 1023; ++i) bag.insert(i);
  EXPECT_EQ(bag.size(), 1023u);
  bag.insert(1023);  // full carry cascade into one pennant of 1024
  EXPECT_EQ(bag.size(), 1024u);
  EXPECT_EQ(drain(bag).size(), 1024u);
}

TEST(Bag, MergeCombinesAndDrainsSource) {
  Bag<std::uint32_t> a, b;
  for (std::uint32_t i = 0; i < 37; ++i) a.insert(i);
  for (std::uint32_t i = 100; i < 177; ++i) b.insert(i);
  a.merge(std::move(b));
  EXPECT_EQ(a.size(), 37u + 77u);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): checked drain
  const auto all = drain(a);
  EXPECT_EQ(all.size(), 114u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));
  EXPECT_EQ(all.front(), 0u);
  EXPECT_EQ(all.back(), 176u);
}

TEST(Bag, MergeWithEmptyEitherWay) {
  Bag<std::uint32_t> a, b;
  a.insert(1);
  a.merge(std::move(b));
  EXPECT_EQ(a.size(), 1u);
  Bag<std::uint32_t> c;
  c.merge(std::move(a));
  EXPECT_EQ(c.size(), 1u);
}

TEST(Bag, RandomizedMergesPreserveMultiset) {
  Rng rng(55);
  std::vector<Bag<std::uint32_t>> bags(8);
  std::multiset<std::uint32_t> expected;
  std::uint32_t next = 0;
  for (int round = 0; round < 200; ++round) {
    const std::size_t which = rng.below(bags.size());
    if (rng.chance(0.7)) {
      bags[which].insert(next);
      expected.insert(next);
      ++next;
    } else {
      const std::size_t other = rng.below(bags.size());
      if (other != which) bags[which].merge(std::move(bags[other]));
    }
  }
  Bag<std::uint32_t> all;
  for (auto& b : bags) all.merge(std::move(b));
  EXPECT_EQ(all.size(), expected.size());
  const auto got = drain(all);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()));
}

TEST(Bag, MoveConstructorTransfers) {
  Bag<std::uint32_t> a;
  a.insert(5);
  Bag<std::uint32_t> b(std::move(a));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_TRUE(a.empty());  // NOLINT(bugprone-use-after-move)
}

TEST(Bag, ProcessParallelVisitsEveryElementOnce) {
  Bag<std::uint32_t> bag;
  constexpr std::uint32_t kN = 777;
  for (std::uint32_t i = 0; i < kN; ++i) bag.insert(i);
  std::vector<std::atomic<int>> hits(kN);
  run_serial([&] {
    bag.process_parallel([&](std::uint32_t v) { hits[v].fetch_add(1); },
                         /*grain=*/16);
  });
  for (std::uint32_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "element " << i;
  }
}

TEST(Bag, ClearReleasesAndResets) {
  Bag<std::uint32_t> bag;
  for (std::uint32_t i = 0; i < 50; ++i) bag.insert(i);
  bag.clear();
  EXPECT_TRUE(bag.empty());
  bag.insert(9);
  EXPECT_EQ(drain(bag), std::vector<std::uint32_t>{9});
}

TEST(BagMonoid, SatisfiesIdentityAndMergeLaws) {
  using M = bag_monoid<std::uint32_t>;
  Bag<std::uint32_t> x;
  x.insert(1);
  x.insert(2);
  Bag<std::uint32_t> e = M::identity();
  M::reduce(x, e);
  EXPECT_EQ(x.size(), 2u);
  Bag<std::uint32_t> y;
  y.insert(3);
  M::reduce(x, y);
  EXPECT_EQ(x.size(), 3u);
}

}  // namespace
}  // namespace rader::apps
