#include "apps/workloads.hpp"

#include <gtest/gtest.h>

#include "runtime/run.hpp"
#include "sched/parallel_engine.hpp"

namespace rader::apps {
namespace {

TEST(Workloads, PaperSuiteHasTheSixBenchmarks) {
  const auto all = make_paper_benchmarks(0.01);
  ASSERT_EQ(all.size(), 6u);
  EXPECT_EQ(all[0].name, "collision");
  EXPECT_EQ(all[1].name, "dedup");
  EXPECT_EQ(all[2].name, "ferret");
  EXPECT_EQ(all[3].name, "fib");
  EXPECT_EQ(all[4].name, "knapsack");
  EXPECT_EQ(all[5].name, "pbfs");
}

TEST(Workloads, EveryBenchmarkRunsAndVerifiesSerially) {
  for (auto& w : make_paper_benchmarks(0.01)) {
    run_serial([&] { w.run(); });
    EXPECT_TRUE(w.verify()) << w.name;
  }
}

TEST(Workloads, EveryBenchmarkRunsAndVerifiesInParallel) {
  ParallelEngine engine(4);
  for (auto& w : make_paper_benchmarks(0.01)) {
    engine.run([&] { w.run(); });
    EXPECT_TRUE(w.verify()) << w.name;
  }
}

TEST(Workloads, RunsAreRepeatable) {
  auto w = make_benchmark("pbfs", 0.005);
  for (int rep = 0; rep < 3; ++rep) {
    run_serial([&] { w.run(); });
    EXPECT_TRUE(w.verify()) << "rep " << rep;
  }
}

TEST(Workloads, ByNameLookup) {
  EXPECT_EQ(make_benchmark("fib", 0.01).name, "fib");
  EXPECT_EQ(make_benchmark("dedup", 0.01).name, "dedup");
}

TEST(Workloads, InputDescriptionsAreFilled) {
  for (const auto& w : make_paper_benchmarks(0.01)) {
    EXPECT_FALSE(w.input_desc.empty()) << w.name;
    EXPECT_FALSE(w.description.empty()) << w.name;
  }
}

}  // namespace
}  // namespace rader::apps
