#!/usr/bin/env bash
# Nightly benchmark job (the CI `nightly-bench` workflow, also runnable by
# hand): build, run the six tracked benchmarks with --json, then compare
# against — and append to — the checked-in trajectory BENCH_nightly.json
# via scripts/bench_trajectory.py.  Exits 1 when any tracked metric
# regresses by more than 1.15x against the previous entry.
#
# Environment knobs (defaults chosen for a CI-class machine):
#   BENCH_SCALE   workload scale for fig7/trace benches   (default 0.02)
#   BENCH_REPS    best-of reps                             (default 2)
#   PD_SCALE      parallel_detect scale                    (default 0.25)
#   BENCH_LABEL   trajectory entry label                   (default date)
#   BENCH_APPEND  1 = append the entry (default), 0 = compare only
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_SCALE="${BENCH_SCALE:-0.02}"
BENCH_REPS="${BENCH_REPS:-2}"
PD_SCALE="${PD_SCALE:-0.25}"
BENCH_LABEL="${BENCH_LABEL:-$(date -u +%Y-%m-%d)}"
BENCH_APPEND="${BENCH_APPEND:-1}"

cmake -B build -S .
cmake --build build -j"$(nproc)"

OUT=build/nightly
mkdir -p "$OUT"

echo "== sweep_scaling (with the 3x prefix floor and the 1.05x enabled-"
echo "   sampling budget) =="
./build/bench/sweep_scaling --check-ratio=3 --check-metrics-overhead=1.05 \
  --json="$OUT/sweep_scaling.json"

echo "== fig7_overhead (dormant-hook budgets: trace + observability) =="
./build/bench/fig7_overhead --scale="$BENCH_SCALE" --reps="$BENCH_REPS" \
  --json="$OUT/fig7_overhead.json"

echo "== trace_overhead =="
./build/bench/trace_overhead --scale="$BENCH_SCALE" --reps="$BENCH_REPS" \
  --json="$OUT/trace_overhead.json"

echo "== parallel_detect =="
./build/bench/parallel_detect --scale="$PD_SCALE" --reps="$BENCH_REPS" \
  --json="$OUT/parallel_detect.json"

echo "== large_footprint (packed-shadow 3x floor, 1.10x sampling budget) =="
./build/bench/large_footprint --check-ratio=3 \
  --check-sampling-overhead=1.10 --reps="$BENCH_REPS" \
  --json="$OUT/large_footprint.json"

echo "== isolation_overhead (--isolate=procs tax, 1.25x budget) =="
./build/bench/isolation_overhead --check-ratio=1.25 --reps="$BENCH_REPS" \
  --json="$OUT/isolation_overhead.json"

APPEND_FLAG=""
if [[ "$BENCH_APPEND" == 1 ]]; then
  APPEND_FLAG="--append"
fi
python3 scripts/bench_trajectory.py --new-dir "$OUT" \
  --trajectory BENCH_nightly.json --threshold 1.15 \
  --label "$BENCH_LABEL" $APPEND_FLAG

echo "NIGHTLY BENCH OK"
