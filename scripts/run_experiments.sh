#!/usr/bin/env bash
# Regenerate every table/figure the paper reports (EXPERIMENTS.md data).
# Usage: scripts/run_experiments.sh [scale] [reps]   (defaults 0.25 / 3)
set -euo pipefail
cd "$(dirname "$0")/.."
SCALE="${1:-0.25}"
REPS="${2:-3}"
mkdir -p results

run() {
  local name="$1"; shift
  echo "== $name =="
  "$@" | tee "results/$name.txt"
}

run fig7 ./build/bench/fig7_overhead  --scale="$SCALE" --reps="$REPS"
run fig8 ./build/bench/fig8_empty_tool --scale="$SCALE" --reps="$REPS"
run thm6 ./build/bench/thm6_update_coverage
run thm7 ./build/bench/thm7_reduce_coverage
run scaling ./build/bench/detector_scaling
run baselines ./build/bench/baseline_compare --scale="$SCALE" --reps="$REPS"
run granularity ./build/bench/ablation_granularity --scale="$SCALE" --reps="$REPS"
run speedup ./build/bench/parallel_speedup --scale="$SCALE" --reps="$REPS"

echo "results written to results/"
