#!/usr/bin/env python3
"""Nightly benchmark trajectory: compare a fresh run against the checked-in
history and append it.

scripts/nightly_bench.sh runs the six tracked benchmarks with --json and
then calls

    bench_trajectory.py --new-dir DIR --trajectory BENCH_nightly.json \
        [--threshold 1.15] [--append] [--label LABEL]

The script flattens DIR/{sweep_scaling,fig7_overhead,trace_overhead,
parallel_detect,isolation_overhead,large_footprint}.json into one
{metric-name: value} dict,
compares it
against the most recent trajectory entry, and exits 1 when any metric
regresses by more than --threshold (default 1.15x).  "Regression" respects
each metric's direction: throughput/speedup metrics must not fall below
previous/threshold, overhead/ratio metrics must not rise above
previous*threshold.  With --append the new entry is written to the
trajectory file (done even when the check fails, so the history shows the
regression).

stdlib only; no third-party imports.
"""

import argparse
import json
import os
import sys

# metric name -> True when higher is better (throughput, speedup);
# False when lower is better (overhead ratios, geomeans).
DIRECTIONS = {}


def _metric(metrics, name, value, higher_is_better):
    metrics[name] = value
    DIRECTIONS[name] = higher_is_better


def collect(new_dir):
    """Flatten the four --json outputs into one metrics dict.  Missing
    files are skipped (a bench can be disabled without breaking the
    trajectory); present files must parse."""
    metrics = {}

    path = os.path.join(new_dir, "sweep_scaling.json")
    if os.path.exists(path):
        data = json.load(open(path))
        for fam in data["families"]:
            name = fam["name"]
            _metric(metrics, f"sweep.{name}.prefix_speedup_jobs1",
                    fam["prefix_speedup_jobs1"], True)
            for row in fam["rows"]:
                if row["jobs"] in (1, 4):
                    _metric(
                        metrics,
                        f"sweep.{name}.{row['strategy']}.jobs{row['jobs']}"
                        ".runs_per_s",
                        row["runs_per_s"], True)

    path = os.path.join(new_dir, "fig7_overhead.json")
    if os.path.exists(path):
        data = json.load(open(path))
        _metric(metrics, "fig7.metrics_geomean",
                data["metrics_geomean"], False)
        _metric(metrics, "fig7.trace_dormant_geomean",
                data["trace_dormant_geomean"], False)
        _metric(metrics, "fig7.observability_dormant_geomean",
                data["observability_dormant_geomean"], False)
        for row in data["rows"]:
            _metric(metrics, f"fig7.{row['name']}.overhead_nosteal",
                    row["overhead_nosteal"], False)

    path = os.path.join(new_dir, "trace_overhead.json")
    if os.path.exists(path):
        data = json.load(open(path))
        _metric(metrics, "trace.enabled_geomean", data["geomean"], False)

    path = os.path.join(new_dir, "parallel_detect.json")
    if os.path.exists(path):
        data = json.load(open(path))
        if data.get("speedup4", 0) > 0:
            _metric(metrics, "parallel_detect.speedup4",
                    data["speedup4"], True)

    path = os.path.join(new_dir, "isolation_overhead.json")
    if os.path.exists(path):
        data = json.load(open(path))
        _metric(metrics, "isolation.overhead_geomean",
                data["overhead_geomean"], False)
        for row in data["rows"]:
            _metric(metrics, f"isolation.jobs{row['jobs']}.ratio",
                    row["ratio"], False)

    path = os.path.join(new_dir, "large_footprint.json")
    if os.path.exists(path):
        data = json.load(open(path))
        _metric(metrics, "large_footprint.checkpoint.packed_speedup",
                data["checkpoint"]["packed_speedup"], True)
        _metric(metrics, "large_footprint.shadow.packed_speedup",
                data["shadow"]["packed_speedup"], True)
        _metric(metrics, "large_footprint.sampling_overhead_geomean",
                data["sampling_overhead_geomean"], False)
        for row in data["apps"]:
            _metric(metrics,
                    f"large_footprint.{row['name']}.overhead_sampled",
                    row["overhead_sampled"], False)

    return metrics


def compare(prev, cur, threshold):
    """Return a list of regression strings (empty = clean)."""
    regressions = []
    for name, value in sorted(cur.items()):
        if name not in prev:
            continue
        ref = prev[name]
        if ref <= 0 or value <= 0:
            continue
        if DIRECTIONS.get(name, False):
            ratio = ref / value  # throughput fell by `ratio`
        else:
            ratio = value / ref  # overhead rose by `ratio`
        if ratio > threshold:
            regressions.append(
                "%-48s %.4f -> %.4f  (%.2fx %s, threshold %.2fx)"
                % (name, ref, value, ratio,
                   "slower" if DIRECTIONS.get(name, False) else "higher",
                   threshold))
    return regressions


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--new-dir", required=True,
                    help="directory holding the fresh --json outputs")
    ap.add_argument("--trajectory", required=True,
                    help="checked-in trajectory file (BENCH_nightly.json)")
    ap.add_argument("--threshold", type=float, default=1.15)
    ap.add_argument("--append", action="store_true",
                    help="append the new entry to the trajectory file")
    ap.add_argument("--label", default="nightly",
                    help="entry label (e.g. a date or commit sha)")
    args = ap.parse_args()

    cur = collect(args.new_dir)
    if not cur:
        print("bench_trajectory: no --json outputs found in", args.new_dir,
              file=sys.stderr)
        return 2

    trajectory = {"bench_set": "nightly", "entries": []}
    if os.path.exists(args.trajectory):
        trajectory = json.load(open(args.trajectory))

    regressions = []
    if trajectory["entries"]:
        prev_entry = trajectory["entries"][-1]
        regressions = compare(prev_entry["metrics"], cur, args.threshold)
        print("bench_trajectory: compared %d metric(s) against entry '%s'"
              % (len(cur), prev_entry["label"]))
    else:
        print("bench_trajectory: empty trajectory, seeding with %d metric(s)"
              % len(cur))

    if args.append:
        trajectory["entries"].append({"label": args.label, "metrics": cur})
        with open(args.trajectory, "w") as f:
            json.dump(trajectory, f, indent=2, sort_keys=True)
            f.write("\n")
        print("bench_trajectory: appended entry '%s' to %s"
              % (args.label, args.trajectory))

    if regressions:
        print("bench_trajectory: REGRESSIONS over %.2fx:" % args.threshold,
              file=sys.stderr)
        for r in regressions:
            print("  " + r, file=sys.stderr)
        return 1
    print("bench_trajectory: no regression beyond %.2fx" % args.threshold)
    return 0


if __name__ == "__main__":
    sys.exit(main())
