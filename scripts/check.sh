#!/usr/bin/env bash
# One-command gate.
#
#   scripts/check.sh          fast gate: build, fast-label tests, 60 s fuzz
#   scripts/check.sh --full   everything: all test labels (fast + slow +
#                             stress), examples, bench smoke
#   scripts/check.sh --trace  build + the trace smoke only (exports a
#                             Chrome trace and validates it with python3)
#   scripts/check.sh --fuzz   build + the fuzz smoke only (60 s differential
#                             fuzz with shrinking artifacts on divergence)
#
# Test labels (set in tests/CMakeLists.txt): `ctest -L fast|slow|stress`.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
TRACE_ONLY=0
FUZZ_ONLY=0
case "${1:-}" in
  --full) FULL=1 ;;
  --trace) TRACE_ONLY=1 ;;
  --fuzz) FUZZ_ONLY=1 ;;
esac

cmake -B build -S .
cmake --build build -j

# The --trace smoke: export a Chrome trace from the collision litmus and
# validate it with a real JSON parser — the file must load, carry at least
# two simulated-worker tracks, keep timestamps non-decreasing within every
# track, and contain the steal->reduce flow pair ("s"/"f" events).
trace_smoke() {
  echo "== trace smoke =="
  local TJ=build/trace_collision.json
  ./build/tools/rader --program=collision --check=sp+ \
    --trace="$TJ" >/dev/null
  python3 - "$TJ" <<'PY'
import json, sys
t = json.load(open(sys.argv[1]))
ev = t["traceEvents"]
tracks = {}
for e in ev:
    if e["ph"] == "M":
        continue
    tracks.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
assert len(tracks) >= 2, f"expected >= 2 worker tracks, got {len(tracks)}"
for key, ts in tracks.items():
    assert ts == sorted(ts), f"timestamps regress on track {key}"
phases = {e["ph"] for e in ev}
assert "s" in phases and "f" in phases, "missing steal->reduce flow events"
print("trace smoke ok: %d events, %d worker tracks, flows present"
      % (len(ev), len(tracks)))
PY
}

# The fuzz smoke: 60 s of fresh-seed differential fuzzing.  Divergences
# fail the gate and leave shrunk `.rprog` + litmus artifacts under
# build/fuzz-artifacts for triage (docs/FUZZING.md).
fuzz_smoke() {
  echo "== fuzz smoke =="
  ./build/tools/fuzz_detectors --seconds=60 \
    --out-dir=build/fuzz-artifacts --shrink
}

if [[ "$TRACE_ONLY" == 1 ]]; then
  trace_smoke
  echo "ALL CHECKS PASSED"
  exit 0
fi

if [[ "$FUZZ_ONLY" == 1 ]]; then
  fuzz_smoke
  echo "ALL CHECKS PASSED"
  exit 0
fi

if [[ "$FULL" == 1 ]]; then
  ctest --test-dir build --output-on-failure
else
  ctest --test-dir build -L fast --output-on-failure
fi

echo "== json report smoke =="
# One known-racy litmus run through --format=json: validate the rader.report
# schema with a real JSON parser, then round-trip a replay handle and check
# the replay reproduces the same deduplicated race set (labels + kinds; raw
# heap addresses differ between process invocations).
RJ1=build/report_sp.json
RJ2=build/report_replay.json
./build/tools/rader --program=fig1 --check=sp+ --spec=triple:0,1,2 \
  --format=json >"$RJ1" 2>/dev/null || true
HANDLE=$(python3 - "$RJ1" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
for key in ("schema", "schema_version", "program", "check", "spec",
            "races", "replay_handles", "metrics"):
    assert key in r, f"missing key: {key}"
assert r["schema"] == "rader.report" and r["schema_version"] == 3
races = r["races"]
for key in ("view_read_occurrences", "determinacy_occurrences",
            "view_read_races", "determinacy_races"):
    assert key in races, f"missing races key: {key}"
assert races["determinacy_races"], "expected fig1 to race"
assert r["replay_handles"], "expected a replay handle"
assert "counters" in r["metrics"] and "phase_seconds" in r["metrics"]
print(r["replay_handles"][0])
PY
)
./build/tools/rader --program=fig1 "--replay=$HANDLE" \
  --format=json >"$RJ2" 2>/dev/null || true
python3 - "$RJ1" "$RJ2" <<'PY'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert b["check"] == "replay", b["check"]
def identities(r):
    return sorted((d["kind"], d["label"], d["prior_was_write"],
                   d["view_aware"]) for d in r["races"]["determinacy_races"])
assert identities(a) == identities(b), \
    "replay did not reproduce the deduplicated race set"
assert b["metrics"]["counters"]["spec_runs"] >= 1
print("json + replay round-trip ok: %d deduplicated race(s) reproduced "
      "under %s" % (len(b["races"]["determinacy_races"]), b["spec"]))
PY

trace_smoke
fuzz_smoke

if [[ "$FULL" == 1 ]]; then
  echo "== examples =="
  ./build/examples/quickstart
  ./build/examples/view_read_race
  ./build/examples/fig1_list_race
  ./build/examples/schedule_dependent_bug
  ./build/examples/wordcount >/dev/null && echo "wordcount ok"
  ./build/examples/pbfs_demo 5000 30000

  echo "== bench smoke =="
  ./build/bench/thm6_update_coverage
  ./build/bench/thm7_reduce_coverage
  # The sweep bench is also a perf regression gate: the prefix strategy
  # must beat rerun by >= 3x on the tracked front-loaded families
  # (BENCH_sweep.json holds a reference run's numbers).
  ./build/bench/sweep_scaling --check-ratio=3 --json=build/BENCH_sweep.json
  ./build/bench/fig7_overhead --scale=0.02 --reps=1
fi

echo "ALL CHECKS PASSED"
