#!/usr/bin/env bash
# One-command gate.
#
#   scripts/check.sh          fast gate: build, fast-label tests, 60 s fuzz
#   scripts/check.sh --full   everything: all test labels (fast + slow +
#                             stress), examples, bench smoke
#   scripts/check.sh --trace  build + the trace smoke only (exports a
#                             Chrome trace and validates it with python3)
#   scripts/check.sh --fuzz   build + the fuzz smoke only (60 s differential
#                             fuzz with shrinking artifacts on divergence)
#
# Test labels (set in tests/CMakeLists.txt): `ctest -L fast|slow|stress`.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
TRACE_ONLY=0
FUZZ_ONLY=0
case "${1:-}" in
  --full) FULL=1 ;;
  --trace) TRACE_ONLY=1 ;;
  --fuzz) FUZZ_ONLY=1 ;;
esac

cmake -B build -S .
cmake --build build -j

# The --trace smoke: export a Chrome trace from the collision litmus and
# validate it with a real JSON parser — the file must load, carry at least
# two simulated-worker tracks, keep timestamps non-decreasing within every
# track, and contain the steal->reduce flow pair ("s"/"f" events).
trace_smoke() {
  echo "== trace smoke =="
  local TJ=build/trace_collision.json
  ./build/tools/rader --program=collision --check=sp+ \
    --trace="$TJ" >/dev/null
  python3 - "$TJ" <<'PY'
import json, sys
t = json.load(open(sys.argv[1]))
ev = t["traceEvents"]
tracks = {}
for e in ev:
    if e["ph"] == "M":
        continue
    tracks.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
assert len(tracks) >= 2, f"expected >= 2 worker tracks, got {len(tracks)}"
for key, ts in tracks.items():
    assert ts == sorted(ts), f"timestamps regress on track {key}"
phases = {e["ph"] for e in ev}
assert "s" in phases and "f" in phases, "missing steal->reduce flow events"
print("trace smoke ok: %d events, %d worker tracks, flows present"
      % (len(ev), len(tracks)))
PY
}

# The fuzz smoke: 60 s of fresh-seed differential fuzzing.  Divergences
# fail the gate and leave shrunk `.rprog` + litmus artifacts under
# build/fuzz-artifacts for triage (docs/FUZZING.md).
fuzz_smoke() {
  echo "== fuzz smoke =="
  ./build/tools/fuzz_detectors --seconds=60 \
    --out-dir=build/fuzz-artifacts --shrink
}

if [[ "$TRACE_ONLY" == 1 ]]; then
  trace_smoke
  echo "ALL CHECKS PASSED"
  exit 0
fi

if [[ "$FUZZ_ONLY" == 1 ]]; then
  fuzz_smoke
  echo "ALL CHECKS PASSED"
  exit 0
fi

if [[ "$FULL" == 1 ]]; then
  ctest --test-dir build --output-on-failure
else
  ctest --test-dir build -L fast --output-on-failure
fi

echo "== json report smoke =="
# One known-racy litmus run through --format=json: validate the rader.report
# schema with a real JSON parser, then round-trip a replay handle and check
# the replay reproduces the same deduplicated race set (labels + kinds; raw
# heap addresses differ between process invocations).
RJ1=build/report_sp.json
RJ2=build/report_replay.json
./build/tools/rader --program=fig1 --check=sp+ --spec=triple:0,1,2 \
  --format=json >"$RJ1" 2>/dev/null || true
HANDLE=$(python3 - "$RJ1" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
for key in ("schema", "schema_version", "program", "check", "spec",
            "races", "replay_handles", "metrics"):
    assert key in r, f"missing key: {key}"
assert r["schema"] == "rader.report" and r["schema_version"] == 5
races = r["races"]
for key in ("view_read_occurrences", "determinacy_occurrences",
            "view_read_races", "determinacy_races"):
    assert key in races, f"missing races key: {key}"
assert races["determinacy_races"], "expected fig1 to race"
assert r["replay_handles"], "expected a replay handle"
m = r["metrics"]
for key in ("counters", "phase_seconds", "gauges", "histograms"):
    assert key in m, f"missing metrics key: {key}"
# Metric names are namespaced; gauges carry value+max; histograms quantiles.
assert "sweep.spec_runs" in m["counters"], sorted(m["counters"])
for g in m["gauges"].values():
    assert set(g) == {"value", "max"}, g
for h in m["histograms"].values():
    for key in ("count", "sum", "p50", "p90", "p99", "buckets"):
        assert key in h, f"missing histogram key: {key}"
print(r["replay_handles"][0])
PY
)
./build/tools/rader --program=fig1 "--replay=$HANDLE" \
  --format=json >"$RJ2" 2>/dev/null || true
python3 - "$RJ1" "$RJ2" <<'PY'
import json, sys
a = json.load(open(sys.argv[1]))
b = json.load(open(sys.argv[2]))
assert b["check"] == "replay", b["check"]
def identities(r):
    return sorted((d["kind"], d["label"], d["prior_was_write"],
                   d["view_aware"]) for d in r["races"]["determinacy_races"])
assert identities(a) == identities(b), \
    "replay did not reproduce the deduplicated race set"
assert b["metrics"]["counters"]["sweep.spec_runs"] >= 1
print("json + replay round-trip ok: %d deduplicated race(s) reproduced "
      "under %s" % (len(b["races"]["determinacy_races"]), b["spec"]))
PY

echo "== observability smoke =="
# The metric catalog must be non-empty and well-formed (name type help).
./build/tools/rader --list-metrics | awk '
  NF < 3 { print "bad --list-metrics row: " $0; exit 1 }
  $2 !~ /^(counter|gauge|histogram|phase)$/ {
    print "bad metric type: " $0; exit 1 }
  END { if (NR < 10) { print "catalog suspiciously small"; exit 1 }
        print "list-metrics ok: " NR " metrics" }'

# One exhaustive sweep emitting every exposition format at once: Prometheus
# snapshot, JSONL time series, and the collapsed-stack profile.  Each is
# validated with a real parser (python3), not a grep.
OBS_PROM=build/obs_metrics.prom
OBS_JSONL=build/obs_metrics.jsonl
OBS_PROF=build/obs_profile.txt
./build/tools/rader --program=fig1 --check=exhaustive --jobs=2 \
  --metrics-prom="$OBS_PROM" --metrics-out="$OBS_JSONL" \
  --metrics-interval-ms=20 --profile="$OBS_PROF" >/dev/null 2>&1 || true
python3 - "$OBS_PROM" "$OBS_JSONL" "$OBS_PROF" <<'PY'
import json, sys

# Prometheus text format: HELP/TYPE pairs, cumulative le-buckets per
# histogram ending in +Inf == _count, phases as labeled seconds.
families = {}
samples = {}
for line in open(sys.argv[1]):
    line = line.rstrip("\n")
    if not line:
        continue
    if line.startswith("# HELP ") or line.startswith("# TYPE "):
        _, kind, name, rest = line.split(" ", 3)
        families.setdefault(name, {})[kind] = rest
        continue
    name_and_labels, value = line.rsplit(" ", 1)
    float(value)  # must parse
    samples.setdefault(name_and_labels, value)
assert all("TYPE" in v and "HELP" in v for v in families.values())
assert any(k.startswith("rader_sweep_spec_runs_total") for k in samples)
assert "rader_phase_seconds" in families
bucket_names = [k for k in samples if '_bucket{le="' in k]
assert bucket_names, "no histogram buckets emitted"
for hist in {b.split("_bucket{")[0] for b in bucket_names}:
    series = [b for b in bucket_names if b.startswith(hist + "_bucket{")]
    counts = [int(samples[b]) for b in series]
    assert counts == sorted(counts), f"{hist} buckets not cumulative"
    inf = [b for b in series if 'le="+Inf"' in b]
    assert inf, f"{hist} missing +Inf bucket"
    assert int(samples[inf[0]]) == int(samples[hist + "_count"])
print("prometheus ok: %d families, %d histogram bucket series"
      % (len(families), len(bucket_names)))

# JSONL time series: every line parses, done is monotone nondecreasing,
# the final (quiesced) sample reports a complete metrics block.
lines = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
assert lines, "empty JSONL time series"
dones = [l["done"] for l in lines]
assert dones == sorted(dones), "done counts regress across samples"
last = lines[-1]
assert last["done"] == last["total"] > 0, "final sample not quiesced"
for key in ("counters", "phase_seconds", "gauges", "histograms"):
    assert key in last["metrics"], f"missing metrics key: {key}"
assert last["metrics"]["counters"]["sweep.spec_runs"] == last["total"]
print("jsonl ok: %d sample(s), final done=%d" % (len(lines), last["done"]))

# Collapsed-stack profile: every line is "path<space>integer", every
# multi-segment path's prefix also appears (flamegraph tools need complete
# stack prefixes), and the sweep/spec hierarchy is present.
paths = []
for line in open(sys.argv[3]):
    path, _, value = line.rstrip("\n").rpartition(" ")
    assert path and value.isdigit(), f"bad collapsed line: {line!r}"
    paths.append(path)
seen = set(paths)
assert len(seen) == len(paths), "duplicate collapsed-stack paths"
for p in paths:
    if ";" in p:
        prefix = p.rsplit(";", 1)[0]
        assert prefix in seen, f"missing stack prefix: {prefix}"
assert "sweep" in seen and "sweep;spec" in seen, sorted(seen)
print("collapsed profile ok: %d stack path(s)" % len(paths))
PY

echo "== isolation smoke =="
# Crash-isolated sweep end to end: inject a SIGSEGV into one spec of the
# Figure-1 exhaustive family via the fault-point registry, run under
# --isolate=procs, and assert with a real JSON parser that the sweep
# completed, quarantined exactly that spec into the schema-v5 failures[]
# block, and counted the event in the isolation metrics.
ISO_J=build/report_isolated.json
RADER_FAULTS="sweep.spec:crash:2" ./build/tools/rader --program=fig1 \
  --check=exhaustive --isolate=procs --jobs=2 --spec-timeout-ms=5000 \
  --max-retries=1 --format=json >"$ISO_J" 2>/dev/null || true
python3 - "$ISO_J" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
assert r["schema_version"] == 5
sweep = r["sweep"]
fails = sweep["failures"]
assert len(fails) == 1, fails
f = fails[0]
assert f["index"] == 2 and f["cause"] == "signal", f
assert f["signal"] != 0 and f["retries"] >= 1, f
c = r["metrics"]["counters"]
assert c["sweep.quarantined"] == 1, c
assert c["sweep.child_crashes"] >= 2, c  # first hit + the retry
assert c["sweep.retries"] == 1, c
# The injected crash must not have cost any OTHER spec: every surviving
# family member ran (or was dedup-reused), so nothing counts as skipped.
assert sweep["specs_skipped"] == 0 and sweep["spec_runs"] >= 1, sweep
assert r["races"]["determinacy_races"], "fig1 must still race"
print("isolation smoke ok: spec[2] quarantined (%s, signal %d), "
      "%d survivor(s) merged"
      % (f["cause"], f["signal"], sweep["spec_runs"]))
PY

trace_smoke
fuzz_smoke

if [[ "$FULL" == 1 ]]; then
  echo "== examples =="
  ./build/examples/quickstart
  ./build/examples/view_read_race
  ./build/examples/fig1_list_race
  ./build/examples/schedule_dependent_bug
  ./build/examples/wordcount >/dev/null && echo "wordcount ok"
  ./build/examples/pbfs_demo 5000 30000

  echo "== bench smoke =="
  ./build/bench/thm6_update_coverage
  ./build/bench/thm7_reduce_coverage
  # The sweep bench is also a perf regression gate: the prefix strategy
  # must beat rerun by >= 3x on the tracked front-loaded families
  # (BENCH_sweep.json holds a reference run's numbers), and the enabled
  # JSONL metrics sampling must stay within 1.05x geomean.
  ./build/bench/sweep_scaling --check-ratio=3 --check-metrics-overhead=1.05 \
    --json=build/BENCH_sweep.json
  ./build/bench/fig7_overhead --scale=0.02 --reps=1
  # Production-footprint shadow gates: the packed encoding must win the
  # checkpointed sweep by >= 3x over the legacy per-page map, and sampling
  # at the default P=0.01 must stay within 1.10x geomean of uninstrumented
  # on the compute-dominated app benches.
  ./build/bench/large_footprint --check-ratio=3 \
    --check-sampling-overhead=1.10 --reps=5 \
    --json=build/BENCH_large_footprint.json
  # Crash-isolation tax: a clean --isolate=procs sweep must stay within
  # 1.25x geomean of the in-process sweep (docs/ROBUSTNESS.md).
  ./build/bench/isolation_overhead --check-ratio=1.25 \
    --json=build/BENCH_isolation.json
fi

echo "ALL CHECKS PASSED"
