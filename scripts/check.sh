#!/usr/bin/env bash
# One-command gate.
#
#   scripts/check.sh          fast gate: build, fast-label tests, 30 s fuzz
#   scripts/check.sh --full   everything: all test labels (fast + slow +
#                             stress), examples, bench smoke
#
# Test labels (set in tests/CMakeLists.txt): `ctest -L fast|slow|stress`.
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

cmake -B build -S .
cmake --build build -j

if [[ "$FULL" == 1 ]]; then
  ctest --test-dir build --output-on-failure
else
  ctest --test-dir build -L fast --output-on-failure
fi

echo "== fuzz smoke =="
./build/tools/fuzz_detectors --seconds=30

if [[ "$FULL" == 1 ]]; then
  echo "== examples =="
  ./build/examples/quickstart
  ./build/examples/view_read_race
  ./build/examples/fig1_list_race
  ./build/examples/schedule_dependent_bug
  ./build/examples/wordcount >/dev/null && echo "wordcount ok"
  ./build/examples/pbfs_demo 5000 30000

  echo "== bench smoke =="
  ./build/bench/thm6_update_coverage
  ./build/bench/thm7_reduce_coverage
  ./build/bench/sweep_scaling
  ./build/bench/fig7_overhead --scale=0.02 --reps=1
fi

echo "ALL CHECKS PASSED"
