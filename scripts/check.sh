#!/usr/bin/env bash
# One-command gate: configure, build, test, smoke-run examples and benches.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

echo "== examples =="
./build/examples/quickstart
./build/examples/view_read_race
./build/examples/fig1_list_race
./build/examples/schedule_dependent_bug
./build/examples/wordcount >/dev/null && echo "wordcount ok"
./build/examples/pbfs_demo 5000 30000

echo "== fuzz smoke =="
./build/tools/fuzz_detectors --seconds=3

echo "== bench smoke =="
./build/bench/thm6_update_coverage
./build/bench/thm7_reduce_coverage
./build/bench/fig7_overhead --scale=0.02 --reps=1

echo "ALL CHECKS PASSED"
