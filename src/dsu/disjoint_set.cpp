#include "dsu/disjoint_set.hpp"

#include "support/metrics.hpp"

namespace rader::dsu {

Node DisjointSets::make_node() {
  const Node n = static_cast<Node>(parent_.size());
  RADER_CHECK_MSG(n != kInvalidNode, "disjoint-set node space exhausted");
  parent_.push_back(n);
  rank_.push_back(0);
  meta_.emplace_back();
  return n;
}

Node DisjointSets::find(Node n) {
  RADER_DCHECK(n < parent_.size());
  metrics::bump(metrics::Counter::kDsuFinds);
  // Iterative two-pass path compression.
  Node root = n;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[n] != root) {
    const Node next = parent_[n];
    parent_[n] = root;
    n = next;
  }
  return root;
}

Node DisjointSets::link(Node ra, Node rb) {
  RADER_DCHECK(parent_[ra] == ra && parent_[rb] == rb);
  if (ra == rb) return ra;
  metrics::bump(metrics::Counter::kDsuUnions);
  if (rank_[ra] < rank_[rb]) {
    parent_[ra] = rb;
    return rb;
  }
  if (rank_[ra] > rank_[rb]) {
    parent_[rb] = ra;
    return ra;
  }
  parent_[rb] = ra;
  ++rank_[ra];
  return ra;
}

void DisjointSets::clear() {
  parent_.clear();
  rank_.clear();
  meta_.clear();
}

void Bag::add(Node n) {
  RADER_DCHECK(valid());
  if (root_ == kInvalidNode) {
    root_ = ds_->find(n);
  } else {
    root_ = ds_->link(ds_->find(root_), ds_->find(n));
  }
  stamp();
}

void Bag::merge_from(Bag& other) {
  RADER_DCHECK(valid());
  if (other.root_ == kInvalidNode) return;
  if (root_ == kInvalidNode) {
    root_ = other.root_;
  } else {
    root_ = ds_->link(ds_->find(root_), ds_->find(other.root_));
  }
  other.root_ = kInvalidNode;
  stamp();
}

}  // namespace rader::dsu
