// Disjoint-set (union–find) substrate for the SP-bags family of algorithms.
//
// Both the Peer-Set algorithm (Figure 3 of the paper) and the SP+ algorithm
// (Figure 6) maintain "bags": sets of IDs of completed Cilk-function
// instantiations, stored in a fast disjoint-set data structure
// [CLRS Ch. 21].  A bag carries metadata on its set root:
//
//   * its *kind* — which of the algorithm's bag roles the set currently
//     plays (S/P for SP-bags and SP+; SS/SP/P for Peer-Set), and
//   * its *view ID* — SP+ tags each P bag with the reducer view associated
//     with it ("Each P bag is a disjoint set with an additional vid field").
//
// When one bag is unioned into another, the *destination* bag's metadata is
// preserved ("when a P bag is unioned into another P bag, the bags are
// unioned, and the view ID of the destination P bag is preserved").
//
// DisjointSets provides the raw union–find forest with per-root metadata;
// Bag is the linear-use wrapper the detectors manipulate.  FindBag(id) is
// `ds.find(id)` followed by a metadata lookup at the root.
//
// Complexity: union by rank + path compression, so any sequence of m
// operations on n nodes costs O(m α(m, n)) — the α factor in the paper's
// Theorem 1 and Theorem 5 bounds.
#pragma once

#include <cstdint>
#include <vector>

#include "support/common.hpp"

namespace rader::dsu {

using Node = std::uint32_t;
inline constexpr Node kInvalidNode = static_cast<Node>(-1);

using ViewId = std::uint64_t;
inline constexpr ViewId kNoView = static_cast<ViewId>(-1);

/// Role a bag currently plays in a detection algorithm.
enum class BagKind : std::uint8_t {
  kNone,  // not yet assigned to any bag
  kS,     // SP-bags / SP+ "S" bag: in series with the current strand
  kP,     // "P" bag: logically parallel with the current strand
  kSS,    // Peer-Set: same peer set as the first strand of the function
  kSP,    // Peer-Set: same peer set as the last executed continuation strand
};

/// Returns true for the kinds that the detectors treat as "a P bag".
constexpr bool is_p_kind(BagKind k) { return k == BagKind::kP; }

/// Union–find forest over dense node handles with per-root bag metadata.
class DisjointSets {
 public:
  struct Meta {
    BagKind kind = BagKind::kNone;
    ViewId vid = kNoView;
  };

  DisjointSets() = default;

  /// Create a fresh singleton set and return its node handle.
  Node make_node();

  /// Find the set root of `n`, compressing the path.
  Node find(Node n);

  /// Union the sets rooted at `ra` and `rb` (both must be roots) and return
  /// the new root.  Metadata is NOT adjusted — Bag handles that.
  Node link(Node ra, Node rb);

  /// Metadata of a set; `root` must be a root (use find() first).
  Meta& meta(Node root) {
    RADER_DCHECK(parent_[root] == root);
    return meta_[root];
  }
  const Meta& meta(Node root) const {
    RADER_DCHECK(parent_[root] == root);
    return meta_[root];
  }

  /// Convenience: metadata of the set containing `n`.
  const Meta& meta_of(Node n) { return meta_[find(n)]; }

  std::size_t node_count() const { return parent_.size(); }

  /// Drop all nodes (invalidates every handle).
  void clear();

 private:
  std::vector<Node> parent_;
  std::vector<std::uint8_t> rank_;
  std::vector<Meta> meta_;
};

/// A bag: a possibly-empty disjoint set with sticky (kind, vid) metadata.
///
/// Bags are used linearly: `merge_from` drains the source bag.  An empty bag
/// remembers its metadata so that the first node added to it (or the first
/// merge into it) stamps the correct metadata onto the set root.
class Bag {
 public:
  Bag() = default;

  /// An empty bag with the given role and view ID (MakeBag(∅) in the paper).
  Bag(DisjointSets* ds, BagKind kind, ViewId vid = kNoView)
      : ds_(ds), meta_{kind, vid} {}

  /// A bag containing exactly `n` (MakeBag(G) in the paper).  `n` must be a
  /// singleton (freshly created) node.
  Bag(DisjointSets* ds, Node n, BagKind kind, ViewId vid = kNoView)
      : ds_(ds), root_(n), meta_{kind, vid} {
    stamp();
  }

  bool valid() const { return ds_ != nullptr; }
  bool empty() const { return root_ == kInvalidNode; }

  BagKind kind() const { return meta_.kind; }
  ViewId vid() const { return meta_.vid; }

  /// Retag the bag's role/view (e.g. an SS bag absorbed as a P bag keeps its
  /// elements but the *destination* decides the metadata).
  void set_kind(BagKind kind) {
    meta_.kind = kind;
    stamp();
  }
  void set_vid(ViewId vid) {
    meta_.vid = vid;
    stamp();
  }

  /// Add a freshly created singleton node to this bag.
  void add(Node n);

  /// Union `other`'s set into this bag, preserving THIS bag's metadata.
  /// `other` is left empty (its metadata is untouched).
  void merge_from(Bag& other);

  /// Point the bag at a different forest.  Node handles, roots, and
  /// metadata are position-dependent only on the forest's vectors, so a
  /// forked detector (Tool::fork) copies its DisjointSets wholesale and
  /// rebinds every bag it holds to the copy; the bag's root and sticky
  /// metadata remain valid verbatim.
  void rebind(DisjointSets* ds) { ds_ = ds; }

  /// Root handle of the underlying set (kInvalidNode when empty).
  Node root() const { return root_; }

 private:
  // Re-stamp the sticky metadata onto the current set root.
  void stamp() {
    if (root_ != kInvalidNode) ds_->meta(ds_->find(root_)) = meta_;
  }

  DisjointSets* ds_ = nullptr;
  Node root_ = kInvalidNode;
  DisjointSets::Meta meta_{};
};

}  // namespace rader::dsu
