#include "support/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "support/common.hpp"

namespace rader::metrics {

std::uint64_t now_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kAccessesInstrumented: return "accesses_instrumented";
    case Counter::kShadowPagesTouched: return "shadow_pages_touched";
    case Counter::kDsuFinds: return "dsu_finds";
    case Counter::kDsuUnions: return "dsu_unions";
    case Counter::kFramesEntered: return "frames_entered";
    case Counter::kRacesReported: return "races_reported";
    case Counter::kRacesDeduped: return "races_deduped";
    case Counter::kSpecRuns: return "spec_runs";
    case Counter::kSweepCheckpoints: return "sweep_checkpoints";
    case Counter::kSweepForks: return "sweep_forks";
    case Counter::kSweepResumeFallbacks: return "sweep_resume_fallbacks";
    case Counter::kShadowPagesCoW: return "shadow_pages_cow";
    case Counter::kEngineTasks: return "engine_tasks";
    case Counter::kEngineSteals: return "engine_steals";
    case Counter::kShardEvents: return "shard_events";
    case Counter::kShardDrains: return "shard_drains";
  }
  return "unknown";
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kProbe: return "probe";
    case Phase::kExecute: return "execute";
    case Phase::kReduce: return "reduce";
    case Phase::kMerge: return "merge";
  }
  return "unknown";
}

void Snapshot::add(const Snapshot& other) {
  for (unsigned i = 0; i < kCounterCount; ++i) {
    counters[i] += other.counters[i];
  }
  for (unsigned i = 0; i < kPhaseCount; ++i) {
    phase_nanos[i] += other.phase_nanos[i];
  }
}

bool Snapshot::empty() const {
  for (unsigned i = 0; i < kCounterCount; ++i) {
    if (counters[i] != 0) return false;
  }
  for (unsigned i = 0; i < kPhaseCount; ++i) {
    if (phase_nanos[i] != 0) return false;
  }
  return true;
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (unsigned i = 0; i < kCounterCount; ++i) {
    if (i != 0) os << ',';
    os << '"' << counter_name(static_cast<Counter>(i)) << "\":"
       << counters[i];
  }
  os << "},\"phase_seconds\":{";
  os.precision(9);
  os << std::fixed;
  for (unsigned i = 0; i < kPhaseCount; ++i) {
    if (i != 0) os << ',';
    os << '"' << phase_name(static_cast<Phase>(i)) << "\":"
       << phase_seconds(static_cast<Phase>(i));
  }
  os << "}}";
  return os.str();
}

PhaseTimer::PhaseTimer(Phase p) : reg_(current()), phase_(p) {
  if (reg_ != nullptr) start_nanos_ = now_nanos();
}

PhaseTimer::~PhaseTimer() {
  if (reg_ != nullptr) {
    reg_->add_phase_nanos(phase_, now_nanos() - start_nanos_);
  }
}

double time_best_of(int reps, const std::function<void()>& fn) {
  RADER_CHECK(reps > 0);
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    Stopwatch t;
    fn();
    const double s = t.seconds();
    best = (i == 0) ? s : std::min(best, s);
  }
  return best;
}

}  // namespace rader::metrics
