#include "support/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>

#include "support/common.hpp"

namespace rader::metrics {

std::uint64_t now_nanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kAccessesInstrumented:
      return "detector.accesses_instrumented";
    case Counter::kShadowPagesTouched: return "shadow.pages_touched";
    case Counter::kDsuFinds: return "detector.dsu_finds";
    case Counter::kDsuUnions: return "detector.dsu_unions";
    case Counter::kFramesEntered: return "detector.frames_entered";
    case Counter::kRacesReported: return "detector.races_reported";
    case Counter::kRacesDeduped: return "detector.races_deduped";
    case Counter::kSpecRuns: return "sweep.spec_runs";
    case Counter::kSweepCheckpoints: return "sweep.checkpoints";
    case Counter::kSweepForks: return "sweep.forks";
    case Counter::kSweepResumeFallbacks: return "sweep.resume_fallbacks";
    case Counter::kShadowPagesCoW: return "shadow.pages_cow";
    case Counter::kEngineTasks: return "engine.tasks";
    case Counter::kEngineSteals: return "engine.steals";
    case Counter::kShardEvents: return "engine.shard_events";
    case Counter::kShardDrains: return "engine.shard_drains";
    case Counter::kPostmortemDumps: return "sweep.postmortem_dumps";
    case Counter::kSweepDedupReuses: return "sweep.dedup_reuses";
    case Counter::kShadowEpochClears: return "shadow.epoch_clears";
    case Counter::kShadowPageResets: return "shadow.page_resets";
    case Counter::kSampledAccesses: return "detector.sampled_accesses";
    case Counter::kSampledDropped: return "detector.sampled_dropped";
    case Counter::kSweepChildCrashes: return "sweep.child_crashes";
    case Counter::kSweepRetries: return "sweep.retries";
    case Counter::kSweepQuarantined: return "sweep.quarantined";
  }
  return "unknown";
}

namespace {

const char* counter_help(Counter c) {
  switch (c) {
    case Counter::kAccessesInstrumented:
      return "on_access events a detector processed";
    case Counter::kShadowPagesTouched:
      return "shadow pages lazily allocated";
    case Counter::kDsuFinds: return "disjoint-set find() calls";
    case Counter::kDsuUnions: return "disjoint-set link() calls";
    case Counter::kFramesEntered: return "frames a detector tracked";
    case Counter::kRacesReported: return "distinct race identities stored";
    case Counter::kRacesDeduped:
      return "duplicate reports folded into a stored identity";
    case Counter::kSpecRuns: return "SP+ executions performed by sweeps";
    case Counter::kSweepCheckpoints:
      return "engine+detector checkpoints captured (prefix strategy)";
    case Counter::kSweepForks: return "runs resumed from a checkpointed fork";
    case Counter::kSweepResumeFallbacks:
      return "resumes abandoned (ResumeDiverged) and redone fresh";
    case Counter::kShadowPagesCoW:
      return "shared shadow pages copied on first write";
    case Counter::kEngineTasks:
      return "spawned tasks executed by the parallel engine";
    case Counter::kEngineSteals:
      return "successful steals in the parallel engine";
    case Counter::kShardEvents:
      return "instrumentation events recorded into shards";
    case Counter::kShardDrains:
      return "root-shard replays into the attached tool";
    case Counter::kPostmortemDumps:
      return "post-mortem reports written (fatal signal or watchdog)";
    case Counter::kSweepDedupReuses:
      return "members whose log was reused from an identical-trail run";
    case Counter::kShadowEpochClears:
      return "O(1) epoch-bump bulk clears of packed shadow spaces";
    case Counter::kShadowPageResets:
      return "stale-epoch shadow pages lazily reset on first write";
    case Counter::kSampledAccesses:
      return "access granule runs forwarded by sampling wrappers";
    case Counter::kSampledDropped:
      return "granules dropped unsampled by sampling wrappers";
    case Counter::kSweepChildCrashes:
      return "sandbox children that died abnormally in isolated sweeps";
    case Counter::kSweepRetries:
      return "failed shards relaunched by the isolated-sweep supervisor";
    case Counter::kSweepQuarantined:
      return "specs quarantined into sweep.failures[] after retries";
  }
  return "";
}

const char* gauge_help(Gauge g) {
  switch (g) {
    case Gauge::kSweepQueueDepth:
      return "family members not yet completed by the sweep";
    case Gauge::kSweepCheckpointsLive:
      return "prefix-sweep checkpoints currently held";
    case Gauge::kArenaBytes:
      return "view-arena bytes handed out since the last rewind";
    case Gauge::kShadowPagesLive:
      return "shadow pages currently mapped across live spaces";
    case Gauge::kDequeSize:
      return "parallel-engine deque entries (pushes minus takes)";
  }
  return "";
}

const char* histogram_help(Histogram h) {
  switch (h) {
    case Histogram::kSpecRunNanos:
      return "wall nanoseconds of one sweep spec execution";
    case Histogram::kAccessBytes:
      return "byte size of instrumented accesses";
    case Histogram::kReduceNanos:
      return "wall nanoseconds of one simulated reduce delivery";
    case Histogram::kDivergenceDepth:
      return "prefix-sweep divergence depth (decision-trail index)";
    case Histogram::kSampledRunBytes:
      return "byte length of each forwarded sampled granule run";
    case Histogram::kChildRestartNanos:
      return "failure-detection to replacement-spawn latency (isolated "
             "sweep)";
  }
  return "";
}

const char* phase_help(Phase p) {
  switch (p) {
    case Phase::kProbe: return "serial Peer-Set probe of check_exhaustive";
    case Phase::kExecute: return "detector executions";
    case Phase::kReduce: return "simulated reduce delivery inside runs";
    case Phase::kMerge: return "folding per-spec RaceLogs into the result";
  }
  return "";
}

}  // namespace

const char* gauge_name(Gauge g) {
  switch (g) {
    case Gauge::kSweepQueueDepth: return "sweep.queue_depth";
    case Gauge::kSweepCheckpointsLive: return "sweep.checkpoints_live";
    case Gauge::kArenaBytes: return "engine.arena_bytes";
    case Gauge::kShadowPagesLive: return "shadow.pages_live";
    case Gauge::kDequeSize: return "engine.deque_size";
  }
  return "unknown";
}

const char* histogram_name(Histogram h) {
  switch (h) {
    case Histogram::kSpecRunNanos: return "sweep.spec_run_nanos";
    case Histogram::kAccessBytes: return "detector.access_bytes";
    case Histogram::kReduceNanos: return "engine.reduce_nanos";
    case Histogram::kDivergenceDepth: return "sweep.divergence_depth";
    case Histogram::kSampledRunBytes: return "detector.sampled_run_bytes";
    case Histogram::kChildRestartNanos: return "sweep.child_restart_nanos";
  }
  return "unknown";
}

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kProbe: return "probe";
    case Phase::kExecute: return "execute";
    case Phase::kReduce: return "reduce";
    case Phase::kMerge: return "merge";
  }
  return "unknown";
}

std::vector<MetricInfo> list_metrics() {
  std::vector<MetricInfo> out;
  out.reserve(kCounterCount + kGaugeCount + kHistogramCount + kPhaseCount);
  for (unsigned i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    out.push_back({counter_name(c), "counter", counter_help(c)});
  }
  for (unsigned i = 0; i < kGaugeCount; ++i) {
    const auto g = static_cast<Gauge>(i);
    out.push_back({gauge_name(g), "gauge", gauge_help(g)});
  }
  for (unsigned i = 0; i < kHistogramCount; ++i) {
    const auto h = static_cast<Histogram>(i);
    out.push_back({histogram_name(h), "histogram", histogram_help(h)});
  }
  for (unsigned i = 0; i < kPhaseCount; ++i) {
    const auto p = static_cast<Phase>(i);
    out.push_back({phase_name(p), "phase", phase_help(p)});
  }
  return out;
}

double HistogramCell::quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double rank = q * static_cast<double>(count);
  double cum = 0.0;
  for (unsigned b = 0; b < kHistogramBuckets; ++b) {
    if (buckets[b] == 0) continue;
    const double next = cum + static_cast<double>(buckets[b]);
    if (next >= rank || b == kHistogramBuckets - 1) {
      if (b == 0) return 0.0;
      const double lo = static_cast<double>(std::uint64_t{1} << (b - 1));
      const double hi =
          static_cast<double>(histogram_bucket_bound(b)) + 1.0;
      const double frac =
          (rank - cum) / static_cast<double>(buckets[b]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cum = next;
  }
  return 0.0;
}

void Snapshot::add(const Snapshot& other) {
  for (unsigned i = 0; i < kCounterCount; ++i) {
    counters[i] += other.counters[i];
  }
  for (unsigned i = 0; i < kPhaseCount; ++i) {
    phase_nanos[i] += other.phase_nanos[i];
  }
  for (unsigned i = 0; i < kGaugeCount; ++i) {
    gauges[i].value += other.gauges[i].value;
    gauges[i].max = std::max(gauges[i].max, other.gauges[i].max);
  }
  for (unsigned i = 0; i < kHistogramCount; ++i) {
    hists[i].count += other.hists[i].count;
    hists[i].sum += other.hists[i].sum;
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      hists[i].buckets[b] += other.hists[i].buckets[b];
    }
  }
}

bool Snapshot::empty() const {
  for (unsigned i = 0; i < kCounterCount; ++i) {
    if (counters[i] != 0) return false;
  }
  for (unsigned i = 0; i < kPhaseCount; ++i) {
    if (phase_nanos[i] != 0) return false;
  }
  for (unsigned i = 0; i < kGaugeCount; ++i) {
    if (gauges[i].value != 0 || gauges[i].max != 0) return false;
  }
  for (unsigned i = 0; i < kHistogramCount; ++i) {
    if (hists[i].count != 0) return false;
  }
  return true;
}

std::string Snapshot::to_json() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (unsigned i = 0; i < kCounterCount; ++i) {
    if (i != 0) os << ',';
    os << '"' << counter_name(static_cast<Counter>(i)) << "\":"
       << counters[i];
  }
  os << "},\"phase_seconds\":{";
  os.precision(9);
  os << std::fixed;
  for (unsigned i = 0; i < kPhaseCount; ++i) {
    if (i != 0) os << ',';
    os << '"' << phase_name(static_cast<Phase>(i)) << "\":"
       << phase_seconds(static_cast<Phase>(i));
  }
  os << "},\"gauges\":{";
  for (unsigned i = 0; i < kGaugeCount; ++i) {
    if (i != 0) os << ',';
    os << '"' << gauge_name(static_cast<Gauge>(i)) << "\":{\"value\":"
       << gauges[i].value << ",\"max\":" << gauges[i].max << '}';
  }
  os << "},\"histograms\":{";
  os.precision(1);
  for (unsigned i = 0; i < kHistogramCount; ++i) {
    const HistogramCell& h = hists[i];
    if (i != 0) os << ',';
    os << '"' << histogram_name(static_cast<Histogram>(i))
       << "\":{\"count\":" << h.count << ",\"sum\":" << h.sum
       << ",\"p50\":" << h.quantile(0.50) << ",\"p90\":" << h.quantile(0.90)
       << ",\"p99\":" << h.quantile(0.99) << ",\"buckets\":[";
    bool first = true;
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first) os << ',';
      first = false;
      os << '[' << histogram_bucket_bound(b) << ',' << h.buckets[b] << ']';
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

PhaseTimer::PhaseTimer(Phase p) : reg_(current()), phase_(p) {
  if (reg_ != nullptr) start_nanos_ = now_nanos();
}

PhaseTimer::~PhaseTimer() {
  if (reg_ != nullptr) {
    reg_->add_phase_nanos(phase_, now_nanos() - start_nanos_);
  }
}

SharedSnapshot::SharedSnapshot(unsigned slots)
    : slots_(slots),
      words_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(slots) *
                                            kWordsPerSlot]) {
  const std::size_t n = static_cast<std::size_t>(slots) * kWordsPerSlot;
  for (std::size_t i = 0; i < n; ++i) {
    words_[i].store(0, std::memory_order_relaxed);
  }
}

void SharedSnapshot::publish(unsigned slot, const Snapshot& s) {
  RADER_DCHECK(slot < slots_);
  std::atomic<std::uint64_t>* w =
      words_.get() + static_cast<std::size_t>(slot) * kWordsPerSlot;
  std::size_t i = 0;
  const auto put = [&](std::uint64_t v) {
    w[i++].store(v, std::memory_order_relaxed);
  };
  for (unsigned c = 0; c < kCounterCount; ++c) put(s.counters[c]);
  for (unsigned p = 0; p < kPhaseCount; ++p) put(s.phase_nanos[p]);
  for (unsigned g = 0; g < kGaugeCount; ++g) {
    put(static_cast<std::uint64_t>(s.gauges[g].value));
    put(static_cast<std::uint64_t>(s.gauges[g].max));
  }
  for (unsigned h = 0; h < kHistogramCount; ++h) {
    put(s.hists[h].count);
    put(s.hists[h].sum);
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      put(s.hists[h].buckets[b]);
    }
  }
  RADER_DCHECK(i == kWordsPerSlot);
}

void SharedSnapshot::read_into(Snapshot* out) const {
  for (unsigned slot = 0; slot < slots_; ++slot) {
    const std::atomic<std::uint64_t>* w =
        words_.get() + static_cast<std::size_t>(slot) * kWordsPerSlot;
    std::size_t i = 0;
    const auto get = [&] { return w[i++].load(std::memory_order_relaxed); };
    for (unsigned c = 0; c < kCounterCount; ++c) out->counters[c] += get();
    for (unsigned p = 0; p < kPhaseCount; ++p) out->phase_nanos[p] += get();
    for (unsigned g = 0; g < kGaugeCount; ++g) {
      out->gauges[g].value += static_cast<std::int64_t>(get());
      out->gauges[g].max =
          std::max(out->gauges[g].max, static_cast<std::int64_t>(get()));
    }
    for (unsigned h = 0; h < kHistogramCount; ++h) {
      out->hists[h].count += get();
      out->hists[h].sum += get();
      for (unsigned b = 0; b < kHistogramBuckets; ++b) {
        out->hists[h].buckets[b] += get();
      }
    }
  }
}

double time_best_of(int reps, const std::function<void()>& fn) {
  RADER_CHECK(reps > 0);
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    Stopwatch t;
    fn();
    const double s = t.seconds();
    best = (i == 0) ? s : std::min(best, s);
  }
  return best;
}

}  // namespace rader::metrics
