#include "support/timer.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace rader {

double time_best_of(int reps, const std::function<void()>& fn) {
  RADER_CHECK(reps > 0);
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    const double s = t.seconds();
    best = (i == 0) ? s : std::min(best, s);
  }
  return best;
}

}  // namespace rader
