// Fault-injection registry: named sites compiled into the sweep path so the
// crash-isolation supervisor's recovery machinery (core/sweep.hpp,
// docs/ROBUSTNESS.md) is itself testable.
//
// A *fault point* is a named call site — `faultpoint::fire(site, detail)` —
// that normally does nothing.  Arming a fault (programmatically or via the
// `RADER_FAULTS` environment variable) makes matching sites misbehave on
// purpose:
//
//   RADER_FAULTS=site:kind:match[,site:kind:match...]
//
//   site   one of the kSite* names below (e.g. "sweep.spec")
//   kind   crash  — raise a genuine SIGSEGV (null-pointer store), so the
//                   fatal-signal handler and exit-status classification are
//                   exercised end to end
//          hang   — sleep forever (no CPU burned; only a wall-clock
//                   watchdog or per-spec deadline can recover)
//          oom    — allocate-and-touch up to a bounded cap and then throw
//                   std::bad_alloc; under a child RLIMIT_AS the allocation
//                   loop hits the limit for real, without one the synthetic
//                   throw keeps the host safe
//   match  "*" (every firing) or a decimal detail value — for the sweep
//          sites the detail is a family index ("sweep.spec") or a shard's
//          first family index ("sweep.child")
//
// Arming is process-wide and INHERITED ACROSS fork(): a retried sandbox
// child re-fires the same fault deterministically, which is exactly what
// drives the supervisor's retry → bisect → quarantine path in tests.
// The environment variable is parsed once, on the first fire()/any_armed()
// call; programmatic arm()/disarm_all() are for tests.
#pragma once

#include <cstdint>
#include <string>

namespace rader::faultpoint {

/// Sites compiled into the sweep path (single source of truth; documented
/// in docs/ROBUSTNESS.md).
/// Fired once per spec execution, detail = family index.  Fires in
/// UNPROTECTED in-process sweeps too — an armed crash then takes the whole
/// process down, which is the scenario --isolate=procs exists for.
inline constexpr const char* kSiteSweepSpec = "sweep.spec";
/// Fired once at sandbox-child startup, detail = the shard's first family
/// index.  Crashing here produces a child with no per-spec attribution,
/// which exercises the supervisor's bisection path.
inline constexpr const char* kSiteSweepChild = "sweep.child";

enum class Kind { kCrash, kHang, kOom };

/// Arm every fault in `spec` ("site:kind:match[,...]"); additive with
/// previously armed faults.  Returns false (and sets *error, if given)
/// on a malformed spec — nothing is armed then.
bool arm(const std::string& spec, std::string* error = nullptr);

/// Disarm every fault (programmatic and environment-armed alike; the
/// environment is not re-read afterwards).
void disarm_all();

/// True when at least one fault is armed (forces the RADER_FAULTS parse).
bool any_armed();

/// Number of armed faults (tests).
std::size_t armed_count();

/// Fire the site: misbehave per the first armed fault whose site and match
/// cover (site, detail); no-op otherwise.  kCrash and kHang never return.
void fire(const char* site, std::uint64_t detail);

}  // namespace rader::faultpoint
