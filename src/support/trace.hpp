// Structured execution tracing: a per-thread ring-buffered event trace of
// the simulated Cilk execution (spawn/call frames, syncs, steals, reduce
// begin/end, view create/destroy, reducer operations, and the first
// conflicting access per granule as flagged by the detectors).
//
// Design mirrors support/metrics: a process-wide `Session` owns one fixed
// capacity `Buffer` per participating thread; a thread-local pointer is the
// only hot-path state, so every `emit()` is a TL load plus a predictable
// branch when tracing is off (off by default; the dormant cost is budgeted
// by bench/fig7_overhead).  `Scope` (aka rader::TraceScope) activates a
// session process-wide and attaches a buffer for the calling thread; worker
// threads started inside the scope attach their own buffers via `session()`
// + `ThreadScope`.
//
// Events carry the frame/strand identifiers the engines already maintain
// (FrameId, ViewId, ReducerId) plus a *worker* id: the serial engine stamps
// the simulated worker that would own the strand under the steal spec
// (worker 0 runs the root; each simulated steal moves the continuation to a
// fresh worker), the parallel engine stamps the real worker index.  The
// exporters in core/trace_export.hpp turn this into one Chrome-trace track
// per worker.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "runtime/types.hpp"
#include "support/metrics.hpp"

namespace rader::trace {

enum class EventKind : std::uint8_t {
  kRunBegin,     // engine run started (one per SerialEngine::run)
  kRunEnd,       // engine run finished
  kFrameEnter,   // a=parent frame, b=view id at entry, aux=FrameKind
  kFrameReturn,  // a=parent frame, aux=FrameKind
  kSync,         // cilk_sync retired (all reduces delivered)
  kSteal,        // a=continuation index, b=new view id (thief = event worker)
  kReduceBegin,  // a=left (surviving) view id, b=right (dying) view id
  kReduceEnd,    // a=left view id, b=right view id
  kViewCreate,   // a=view id, b=reducer, aux: 0=leftmost, 1=identity
  kViewDestroy,  // a=view id (0 if unknown), b=reducer
  kReducerOp,    // a=reducer, aux=ReducerOp, label=source tag
  kConflict,     // a=address/reducer, b=prior frame, aux=conflict flag bits
};
inline constexpr unsigned kEventKindCount = 12;
const char* event_kind_name(EventKind k);

/// kConflict aux bits.
enum : std::uint8_t {
  kConflictWrite = 1,       // the current (reporting) access is a write
  kConflictViewAware = 2,   // the current access is view-aware
  kConflictPriorWrite = 4,  // the prior access was a write
  kConflictViewRead = 8,    // Peer-Set view-read race (a = reducer id)
};

struct Event {
  std::uint64_t nanos = 0;  // metrics::now_nanos() at emission
  std::uint64_t a = 0;      // kind-specific operand (see EventKind)
  std::uint64_t b = 0;      // second operand
  const char* label = "";   // static string (SrcTag label), never null
  FrameId frame = kInvalidFrame;
  std::uint32_t worker = 0;  // simulated or real worker id
  EventKind kind = EventKind::kRunBegin;
  std::uint8_t aux = 0;  // FrameKind / ReducerOp / conflict flag bits
};

/// Fixed-capacity ring of events for one thread.  When full, the *oldest*
/// event is dropped (the tail of a long run matters more than the head for
/// explaining a race found late); `dropped()` counts the casualties.  Also
/// hosts the first-conflict-per-granule filter: `note_conflict()` returns
/// true only the first time a granule key is seen by this buffer.
class Buffer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit Buffer(std::string name = "main",
                  std::size_t capacity = kDefaultCapacity);

  void record(const Event& e);

  /// First sighting of `granule_key` in this buffer?  (Not reset between
  /// runs: a sweep worker reports each conflicting granule once across its
  /// whole spec batch, which bounds both memory and trace noise.)
  bool note_conflict(std::uint64_t granule_key);

  /// Events oldest → newest.
  std::vector<Event> ordered() const;

  /// Copy the newest `max` events into `out` (oldest → newest), returning
  /// the count written.  Allocation-free and bounds-clamped so the crash
  /// handler can call it on a buffer whose owner thread died mid-record —
  /// a torn tail is acceptable in a post-mortem, an unbounded read is not.
  std::size_t copy_tail(Event* out, std::size_t max) const;

  const std::string& name() const { return name_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const {
    return recorded_ > size_ ? recorded_ - size_ : 0;
  }
  std::size_t size() const { return size_; }

 private:
  std::string name_;
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // index of the oldest event
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::unordered_set<std::uint64_t> conflict_granules_;
};

/// Owns the per-thread buffers of one tracing session.  Buffer registration
/// is mutex-protected (threads join at unpredictable times); event recording
/// itself is lock-free because each thread writes only its own buffer.
class Session {
 public:
  explicit Session(std::size_t buffer_capacity = Buffer::kDefaultCapacity);

  /// Create and own a new buffer; the returned pointer stays valid for the
  /// session's lifetime.  Thread-safe.
  Buffer* make_buffer(std::string name);

  /// All buffers registered so far, in registration order.
  std::vector<const Buffer*> buffers() const;

  /// Lock-free best-effort view for the crash handler: fills `out` with up
  /// to `max` buffer pointers (the first kCrashSlots registrations,
  /// published through atomics as a side channel of make_buffer).  Safe to
  /// call from a signal handler — never takes `mu_`.
  static constexpr unsigned kCrashSlots = 64;
  unsigned crash_buffers(const Buffer** out, unsigned max) const;

  std::size_t buffer_capacity() const { return buffer_capacity_; }
  std::uint64_t total_recorded() const;
  std::uint64_t total_dropped() const;

 private:
  mutable std::mutex mu_;
  std::size_t buffer_capacity_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::atomic<Buffer*> crash_slots_[kCrashSlots] = {};
  std::atomic<unsigned> crash_count_{0};
};

namespace detail {
inline thread_local Buffer* tl_buffer = nullptr;
inline thread_local std::uint32_t tl_worker = 0;
/// The process-wide active session (set by Scope, read by worker threads).
Session* active_session();
void set_active_session(Session* s);
}  // namespace detail

/// The process-wide active session, or nullptr when tracing is off.
inline Session* session() { return detail::active_session(); }

/// The calling thread's buffer (nullptr = this thread is not tracing).
inline Buffer* buffer() { return detail::tl_buffer; }
inline bool enabled() { return detail::tl_buffer != nullptr; }

/// Non-RAII attach for long-lived pool threads that outlive any one scope
/// (they re-check `session()` each loop and re-attach when it changes).
inline void set_thread_buffer(Buffer* b) { detail::tl_buffer = b; }

/// Set the worker id stamped on subsequent events from this thread.  The
/// serial engine calls this at run start (worker 0) and at each simulated
/// steal; parallel-engine threads call it once with their worker index.
inline void set_worker(std::uint32_t w) { detail::tl_worker = w; }
inline std::uint32_t worker() { return detail::tl_worker; }

/// Record an event on the calling thread's buffer.  A TL load and branch
/// when tracing is off.
inline void emit(EventKind kind, FrameId frame, std::uint64_t a = 0,
                 std::uint64_t b = 0, std::uint8_t aux = 0,
                 const char* label = "") {
  Buffer* buf = detail::tl_buffer;
  if (buf == nullptr) return;
  Event e;
  e.nanos = metrics::now_nanos();
  e.a = a;
  e.b = b;
  e.label = label;
  e.frame = frame;
  e.worker = detail::tl_worker;
  e.kind = kind;
  e.aux = aux;
  buf->record(e);
}

/// Record a kConflict event, deduplicated to the first conflict per granule
/// key (detectors pass their own granule index; Peer-Set passes the reducer
/// id with kConflictViewRead set).
inline void emit_conflict(FrameId frame, std::uint64_t granule_key,
                          std::uint64_t addr, std::uint64_t prior,
                          std::uint8_t flags, const char* label) {
  Buffer* buf = detail::tl_buffer;
  if (buf == nullptr) return;
  if (!buf->note_conflict(granule_key)) return;
  Event e;
  e.nanos = metrics::now_nanos();
  e.a = addr;
  e.b = prior;
  e.label = label;
  e.frame = frame;
  e.worker = detail::tl_worker;
  e.kind = EventKind::kConflict;
  e.aux = flags;
  buf->record(e);
}

/// RAII: activate `session` process-wide and attach a buffer named
/// `thread_name` for the calling thread.  Nestable; the previous session and
/// buffer are restored on destruction.  The session itself outlives the
/// scope (the caller owns it and exports it afterwards).
class Scope {
 public:
  explicit Scope(Session* session, std::string thread_name = "main");
  ~Scope();

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Session* prev_session_;
  Buffer* prev_buffer_;
};

/// RAII: attach `buffer` (may be nullptr = tracing off) for the calling
/// thread only.  Used by pool workers that join an already-active session.
class ThreadScope {
 public:
  explicit ThreadScope(Buffer* buffer) : prev_(detail::tl_buffer) {
    detail::tl_buffer = buffer;
  }
  ~ThreadScope() { detail::tl_buffer = prev_; }

  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

 private:
  Buffer* prev_;
};

}  // namespace rader::trace

namespace rader {
using TraceScope = trace::Scope;
}  // namespace rader
