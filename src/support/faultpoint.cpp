#include "support/faultpoint.hpp"

#include <time.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

namespace rader::faultpoint {

namespace {

struct Fault {
  std::string site;
  Kind kind = Kind::kCrash;
  bool match_all = false;
  std::uint64_t match = 0;
};

std::mutex g_mu;
std::vector<Fault> g_faults;
// Fast path: fire() is on the sweep's per-spec path, so the disarmed case
// must stay one relaxed load.
std::atomic<std::size_t> g_armed_count{0};
std::once_flag g_env_once;

bool parse_one(const std::string& text, Fault* out, std::string* error) {
  const auto c1 = text.find(':');
  const auto c2 = c1 == std::string::npos ? c1 : text.find(':', c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    if (error != nullptr) *error = "expected site:kind:match in '" + text + "'";
    return false;
  }
  out->site = text.substr(0, c1);
  const std::string kind = text.substr(c1 + 1, c2 - c1 - 1);
  const std::string match = text.substr(c2 + 1);
  if (kind == "crash") {
    out->kind = Kind::kCrash;
  } else if (kind == "hang") {
    out->kind = Kind::kHang;
  } else if (kind == "oom") {
    out->kind = Kind::kOom;
  } else {
    if (error != nullptr) *error = "unknown fault kind '" + kind + "'";
    return false;
  }
  if (out->site.empty() || match.empty()) {
    if (error != nullptr) *error = "empty site or match in '" + text + "'";
    return false;
  }
  if (match == "*") {
    out->match_all = true;
    return true;
  }
  char* end = nullptr;
  out->match = std::strtoull(match.c_str(), &end, 10);
  if (end == match.c_str() || *end != '\0') {
    if (error != nullptr) *error = "bad match value '" + match + "'";
    return false;
  }
  return true;
}

void ensure_env_parsed() {
  std::call_once(g_env_once, [] {
    const char* env = std::getenv("RADER_FAULTS");
    if (env == nullptr || env[0] == '\0') return;
    // A malformed environment spec is ignored wholesale rather than armed
    // partially — misbehaving on purpose must be all-or-nothing.
    arm(env, nullptr);
  });
}

[[noreturn]] void do_crash() {
  volatile int* p = nullptr;
  *p = 42;  // genuine SIGSEGV: exercises the fatal-signal handler path
  std::abort();
}

[[noreturn]] void do_hang() {
  for (;;) {
    timespec ts{0, 10'000'000};  // 10ms: hang without burning CPU
    nanosleep(&ts, nullptr);
  }
}

[[noreturn]] void do_oom() {
  // Allocate-and-touch in 1 MiB chunks up to a bounded cap.  Under a child
  // RLIMIT_AS the loop hits the limit for real (operator new throws);
  // without one, the synthetic throw below keeps the host machine safe.
  constexpr std::size_t kChunk = 1u << 20;
  constexpr std::size_t kCapChunks = 256;  // 256 MiB ceiling
  std::vector<std::unique_ptr<volatile char[]>> keep;
  for (std::size_t i = 0; i < kCapChunks; ++i) {
    keep.emplace_back(new volatile char[kChunk]);
    for (std::size_t b = 0; b < kChunk; b += 4096) keep.back()[b] = 1;
  }
  throw std::bad_alloc();
}

}  // namespace

bool arm(const std::string& spec, std::string* error) {
  std::vector<Fault> parsed;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::string one =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    if (!one.empty()) {
      Fault f;
      if (!parse_one(one, &f, error)) return false;
      parsed.push_back(std::move(f));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  std::lock_guard<std::mutex> lock(g_mu);
  for (auto& f : parsed) g_faults.push_back(std::move(f));
  g_armed_count.store(g_faults.size(), std::memory_order_release);
  return true;
}

void disarm_all() {
  // Mark the environment consumed so a later fire() cannot re-arm it.
  std::call_once(g_env_once, [] {});
  std::lock_guard<std::mutex> lock(g_mu);
  g_faults.clear();
  g_armed_count.store(0, std::memory_order_release);
}

bool any_armed() {
  ensure_env_parsed();
  return g_armed_count.load(std::memory_order_acquire) != 0;
}

std::size_t armed_count() {
  ensure_env_parsed();
  std::lock_guard<std::mutex> lock(g_mu);
  return g_faults.size();
}

void fire(const char* site, std::uint64_t detail) {
  ensure_env_parsed();
  if (g_armed_count.load(std::memory_order_acquire) == 0) return;
  Kind kind;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    const Fault* hit = nullptr;
    for (const auto& f : g_faults) {
      if (f.site == site && (f.match_all || f.match == detail)) {
        hit = &f;
        break;
      }
    }
    if (hit == nullptr) return;
    kind = hit->kind;
  }
  switch (kind) {
    case Kind::kCrash: do_crash();
    case Kind::kHang: do_hang();
    case Kind::kOom: do_oom();
  }
}

}  // namespace rader::faultpoint
