#include "support/common.hpp"

#include <cstdio>
#include <cstdlib>

namespace rader {

void panic(const char* file, int line, std::string_view msg) {
  std::fprintf(stderr, "rader: %s:%d: %.*s\n", file, line,
               static_cast<int>(msg.size()), msg.data());
  std::fflush(stderr);
  std::abort();
}

}  // namespace rader
