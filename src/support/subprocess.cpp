#include "support/subprocess.hpp"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <new>

#include "support/metrics.hpp"

namespace rader::subprocess {

namespace {

void apply_limits(const Limits& limits) {
  if (limits.memory_bytes != 0) {
    rlimit rl;
    rl.rlim_cur = limits.memory_bytes;
    rl.rlim_max = limits.memory_bytes;
    setrlimit(RLIMIT_AS, &rl);
  }
  if (limits.cpu_seconds != 0) {
    rlimit rl;
    rl.rlim_cur = limits.cpu_seconds;
    rl.rlim_max = limits.cpu_seconds;
    setrlimit(RLIMIT_CPU, &rl);
  }
}

void classify_wait_status(int wstatus, Status* out) {
  if (WIFEXITED(wstatus)) {
    out->kind = ExitKind::kExited;
    out->exit_code = WEXITSTATUS(wstatus);
  } else if (WIFSIGNALED(wstatus)) {
    out->kind = ExitKind::kSignaled;
    out->term_signal = WTERMSIG(wstatus);
  } else {
    out->kind = ExitKind::kSignaled;
    out->term_signal = 0;
  }
}

}  // namespace

Child::~Child() {
  if (valid() && status_.kind == ExitKind::kRunning) {
    kill_hard();
    int wstatus = 0;
    while (waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
    }
    status_.kind = ExitKind::kTimedOut;  // killed by the owner, not reaped
  }
  close_fd();
  pid_ = -1;
}

Child::Child(Child&& other) noexcept
    : pid_(other.pid_), out_fd_(other.out_fd_), status_(other.status_) {
  other.pid_ = -1;
  other.out_fd_ = -1;
  other.status_ = Status{};
}

Child& Child::operator=(Child&& other) noexcept {
  if (this != &other) {
    this->~Child();
    new (this) Child(std::move(other));
  }
  return *this;
}

void Child::close_fd() {
  if (out_fd_ >= 0) {
    close(out_fd_);
    out_fd_ = -1;
  }
}

Child Child::spawn(const ChildFn& fn, const Limits& limits) {
  Child c;
  int fds[2];
  if (pipe(fds) != 0) {
    c.status_.kind = ExitKind::kSpawnFailed;
    c.status_.exit_code = errno;
    return c;
  }
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    c.status_.kind = ExitKind::kSpawnFailed;
    c.status_.exit_code = errno;
    return c;
  }
  if (pid == 0) {
    // Child: inherit the whole address space; only the pipe talks back.
    close(fds[0]);
    // Writing into a pipe the parent closed must not kill the child with
    // SIGPIPE mid-protocol — a short write is classified by the parent.
    signal(SIGPIPE, SIG_IGN);
    apply_limits(limits);
    int code = 1;
    try {
      code = fn(fds[1]);
    } catch (const std::bad_alloc&) {
      code = kOomExitCode;
    } catch (...) {
      code = kUncaughtExitCode;
    }
    close(fds[1]);
    // _exit: a forked copy must not run atexit hooks / static destructors
    // that belong to the parent (flushing its stdio, tearing down its
    // arenas).
    _exit(code);
  }
  // Parent.
  close(fds[1]);
  fcntl(fds[0], F_SETFL, O_NONBLOCK);
  c.pid_ = pid;
  c.out_fd_ = fds[0];
  return c;
}

bool Child::read_available(std::string* buf) {
  if (out_fd_ < 0) return false;
  char chunk[4096];
  for (;;) {
    const ssize_t n = read(out_fd_, chunk, sizeof chunk);
    if (n > 0) {
      if (buf != nullptr) buf->append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      close_fd();
      return false;  // EOF: the child closed its end (exit or death)
    }
    if (errno == EINTR) continue;
    return errno == EAGAIN || errno == EWOULDBLOCK;
  }
}

bool Child::try_wait() {
  if (!valid()) return false;
  if (status_.kind != ExitKind::kRunning) return true;
  int wstatus = 0;
  const pid_t r = waitpid(pid_, &wstatus, WNOHANG);
  if (r == 0) return false;
  if (r < 0) {
    // Already reaped elsewhere (shouldn't happen single-threaded); treat as
    // an anonymous signal death.
    status_.kind = ExitKind::kSignaled;
    return true;
  }
  classify_wait_status(wstatus, &status_);
  return true;
}

void Child::kill_hard() {
  if (valid() && status_.kind == ExitKind::kRunning) kill(pid_, SIGKILL);
}

void Child::kill_timeout() {
  if (!valid() || status_.kind != ExitKind::kRunning) return;
  kill(pid_, SIGKILL);
  int wstatus = 0;
  while (waitpid(pid_, &wstatus, 0) < 0 && errno == EINTR) {
  }
  status_ = Status{};
  status_.kind = ExitKind::kTimedOut;
}

const Status& Child::wait(unsigned deadline_ms, std::string* buf) {
  if (!valid()) return status_;
  const std::uint64_t deadline =
      deadline_ms == 0
          ? 0
          : metrics::now_nanos() + std::uint64_t{deadline_ms} * 1'000'000;
  bool pipe_open = out_fd_ >= 0;
  while (status_.kind == ExitKind::kRunning) {
    if (pipe_open) {
      pollfd pfd{out_fd_, POLLIN, 0};
      poll(&pfd, 1, 20);
      pipe_open = read_available(buf);
    } else {
      // Pipe is done but the child may still be running (it closed stdout
      // early, or is being torn down): just pace the waitpid polls.
      struct timespec ts {
        0, 5'000'000
      };
      nanosleep(&ts, nullptr);
    }
    if (try_wait()) break;
    if (deadline != 0 && metrics::now_nanos() >= deadline) {
      kill_timeout();
      break;
    }
  }
  // Final drain: bytes written before death are still readable after it.
  while (out_fd_ >= 0 && read_available(buf)) {
    pollfd pfd{out_fd_, POLLIN, 0};
    if (poll(&pfd, 1, 0) <= 0) break;
  }
  return status_;
}

RunResult run(const ChildFn& fn, const Limits& limits, unsigned deadline_ms) {
  RunResult result;
  Child c = Child::spawn(fn, limits);
  if (!c.valid()) {
    result.status = c.status();
    return result;
  }
  result.status = c.wait(deadline_ms, &result.output);
  return result;
}

int poll_readable(const std::vector<int>& fds, int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(fds.size());
  for (const int fd : fds) pfds.push_back({fd, POLLIN, 0});
  const int r = poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                     timeout_ms);
  if (r <= 0) return -1;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace rader::subprocess
