// Fork-based sandbox children: the process-isolation substrate of the
// crash-isolated sweep (core/sweep.hpp --isolate=procs, docs/ROBUSTNESS.md).
//
// A Child is a fork()-WITHOUT-exec worker: it inherits the parent's whole
// address space, so an arbitrary C++ callable (the sweep's ProgramFactory
// closures included) runs sandboxed with no serialization of the program
// itself — only results cross the process boundary, over a pipe the child
// writes and the parent drains.  The sandbox walls are
//   * an optional RLIMIT_AS cap (address-space bytes; a runaway allocation
//     gets std::bad_alloc instead of OOM-killing the host),
//   * an optional RLIMIT_CPU cap (a spinning child dies of SIGXCPU even if
//     the parent is gone),
//   * a parent-side wall-clock deadline (wait(): poll-drain until exit or
//     deadline, then SIGKILL) — the only wall that catches a sleeping hang.
//
// Exit classification (Status::kind):
//   kExited    child returned / _exit()ed; exit_code holds the code.  A
//              callable that throws std::bad_alloc exits kOomExitCode, any
//              other uncaught exception kUncaughtExitCode.
//   kSignaled  killed by a signal (SIGSEGV, SIGKILL, SIGXCPU…); term_signal.
//   kTimedOut  the parent's deadline expired and the child was SIGKILLed.
//
// Forking a multithreaded process is a minefield (only async-signal-safe
// calls are allowed in the child of such a fork), so the isolated-sweep
// supervisor is single-threaded by design; spawn() is safe from any
// process whose other threads are quiescent at fork time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rader::subprocess {

/// Exit code a child reports when its callable throws std::bad_alloc —
/// the userspace face of an RLIMIT_AS hit ("oom" in sweep.failures[]).
inline constexpr int kOomExitCode = 117;
/// Exit code for any other exception escaping the child callable.
inline constexpr int kUncaughtExitCode = 118;

/// Resource walls applied in the child between fork() and the callable.
struct Limits {
  std::uint64_t memory_bytes = 0;  // RLIMIT_AS (0 = inherit unlimited)
  unsigned cpu_seconds = 0;        // RLIMIT_CPU (0 = inherit)
};

enum class ExitKind {
  kRunning,      // not reaped yet
  kExited,       // normal exit; see exit_code
  kSignaled,     // killed by term_signal
  kTimedOut,     // parent deadline expired; child was SIGKILLed
  kSpawnFailed,  // fork()/pipe() failed; errno in exit_code
};

struct Status {
  ExitKind kind = ExitKind::kRunning;
  int exit_code = -1;
  int term_signal = 0;
};

/// The child entry point.  Runs in the forked child with `out_fd` = the
/// write end of the result pipe; the return value becomes the exit code
/// (the child terminates with _exit, skipping static destructors — a
/// forked copy must not run cleanup owned by the parent).
using ChildFn = std::function<int(int out_fd)>;

class Child {
 public:
  Child() = default;
  ~Child();  // kills + reaps a still-running child

  Child(Child&& other) noexcept;
  Child& operator=(Child&& other) noexcept;
  Child(const Child&) = delete;
  Child& operator=(const Child&) = delete;

  /// Fork a sandboxed child running `fn`.  On spawn failure the returned
  /// Child has status().kind == kSpawnFailed and is not valid().
  static Child spawn(const ChildFn& fn, const Limits& limits);

  /// True while there is a live (or unreaped) child attached.
  bool valid() const { return pid_ > 0; }
  int pid() const { return pid_; }

  /// Nonblocking read end of the child's result pipe (poll()-able), or -1.
  int out_fd() const { return out_fd_; }

  /// Drain whatever the pipe currently holds into *buf (appended).
  /// Returns false once the pipe has reached EOF (child closed / died).
  bool read_available(std::string* buf);

  /// Nonblocking reap: returns true when the child has been reaped (status()
  /// then holds the classification) — idempotent afterwards.
  bool try_wait();

  /// SIGKILL the child (classification happens at the next try_wait()).
  void kill_hard();

  /// Mark a parent-deadline expiry: SIGKILL, blocking reap, and classify
  /// as kTimedOut regardless of how the kill lands.
  void kill_timeout();

  /// Deadline-bounded collect: drain the pipe and wait for exit for up to
  /// `deadline_ms` (0 = forever); on expiry, kill_timeout().  Output is
  /// appended to *buf (may be nullptr to discard).
  const Status& wait(unsigned deadline_ms, std::string* buf);

  const Status& status() const { return status_; }

 private:
  void close_fd();

  int pid_ = -1;
  int out_fd_ = -1;
  Status status_;
};

/// One-shot convenience: spawn, collect all output, deadline-wait.
struct RunResult {
  Status status;
  std::string output;
};
RunResult run(const ChildFn& fn, const Limits& limits, unsigned deadline_ms);

/// poll(2) the given fds for readability; returns the index of one readable
/// fd, or -1 on timeout (timeout_ms, 0 = return immediately).
int poll_readable(const std::vector<int>& fds, int timeout_ms);

}  // namespace rader::subprocess
