// Run-metrics registry: counters and phase timers for the observability
// layer.
//
// Sampling-based and vector-clock race detectors expose per-run accounting
// (accesses seen, shadow cells touched, per-phase costs) so that partial
// monitoring is trustworthy and overhead is localizable; this registry gives
// Rader the same footing.  Every detector (SP-bags, Peer-Set, SP+,
// SP-order), the shadow spaces, the disjoint-set substrate, the RaceLog
// dedup layer, and the sweep engine feed it.
//
// Design: a plain per-thread sink.  A `Registry` is a flat array of uint64
// counters plus per-phase nanosecond accumulators; `Scope` installs one as
// the calling thread's current sink (RAII, nestable — the previous sink is
// restored).  The hot-path helper `bump()` is a thread-local load and a
// predictable branch when no registry is installed, so instrumented code
// pays ~nothing unless someone is listening (the ≤5% emission-overhead
// budget is checked by bench/fig7_overhead).
//
// Threading: a Registry is single-thread; parallel consumers (the sweep
// engine) give each worker its own Registry and fold the snapshots together
// with `Snapshot::add` after joining.  A sweep also forwards its aggregate
// into the *calling* thread's current registry, so an outer Scope (e.g. the
// CLI's) observes the whole run: probe + workers + merge.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace rader::metrics {

/// Monotonic (steady-clock) nanoseconds since an arbitrary epoch.  The one
/// time source shared by PhaseTimer, Stopwatch, and the trace subsystem.
std::uint64_t now_nanos();

/// Counter identities.  Names (for JSON emission) in counter_name().
enum class Counter : unsigned {
  kAccessesInstrumented,  // on_access events a detector processed
  kShadowPagesTouched,    // shadow pages lazily allocated
  kDsuFinds,              // disjoint-set find() calls
  kDsuUnions,             // disjoint-set link() calls
  kFramesEntered,         // frames a detector tracked
  kRacesReported,         // distinct race identities stored
  kRacesDeduped,          // duplicate reports folded into a stored identity
  kSpecRuns,              // SP+ executions performed by sweeps
  kSweepCheckpoints,      // engine+detector checkpoints captured (prefix
                          // sweep strategy, core/sweep.hpp)
  kSweepForks,             // runs resumed from a checkpointed fork
  kSweepResumeFallbacks,   // resumes abandoned (ResumeDiverged) and redone
                           // as fresh runs — nonzero means the program is
                           // not address-stable across executions
  kShadowPagesCoW,         // shared shadow pages copied on first write
  kEngineTasks,            // spawned tasks executed by the parallel engine
  kEngineSteals,           // successful steals in the parallel engine
  kShardEvents,            // instrumentation events recorded into shards
  kShardDrains,            // root-shard replays into the attached tool
};
inline constexpr unsigned kCounterCount = 16;
const char* counter_name(Counter c);

/// Wall-clock phases.  kExecute brackets whole detector runs, so it
/// *includes* the kReduce time spent delivering simulated reduce
/// operations inside those runs; kMerge is RaceLog merging, outside runs.
enum class Phase : unsigned {
  kProbe,    // the serial Peer-Set probe of check_exhaustive
  kExecute,  // detector executions (sweep workers / family loops)
  kReduce,   // simulated reduce delivery inside the serial engine
  kMerge,    // folding per-spec RaceLogs into the result
};
inline constexpr unsigned kPhaseCount = 4;
const char* phase_name(Phase p);

/// A value snapshot: plain data, addable, serializable.
struct Snapshot {
  std::uint64_t counters[kCounterCount] = {};
  std::uint64_t phase_nanos[kPhaseCount] = {};

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<unsigned>(c)];
  }
  double phase_seconds(Phase p) const {
    return static_cast<double>(phase_nanos[static_cast<unsigned>(p)]) * 1e-9;
  }

  /// Elementwise accumulate `other` into this snapshot.
  void add(const Snapshot& other);

  /// True when every counter and timer is zero.
  bool empty() const;

  /// {"counters":{...},"phase_seconds":{...}} — the metrics block of the
  /// report schema (docs/API.md).
  std::string to_json() const;
};

/// A mutable per-thread sink.
class Registry {
 public:
  void bump(Counter c, std::uint64_t n = 1) {
    snap_.counters[static_cast<unsigned>(c)] += n;
  }
  void add_phase_nanos(Phase p, std::uint64_t nanos) {
    snap_.phase_nanos[static_cast<unsigned>(p)] += nanos;
  }
  void absorb(const Snapshot& s) { snap_.add(s); }
  const Snapshot& snapshot() const { return snap_; }
  void reset() { snap_ = Snapshot{}; }

 private:
  Snapshot snap_;
};

namespace detail {
inline thread_local Registry* tl_current = nullptr;
}  // namespace detail

/// The calling thread's current sink (nullptr = metrics off).
inline Registry* current() { return detail::tl_current; }
inline bool enabled() { return detail::tl_current != nullptr; }

/// Hot-path increment: no-op unless a Registry is installed.
inline void bump(Counter c, std::uint64_t n = 1) {
  if (Registry* r = detail::tl_current) r->bump(c, n);
}

/// RAII: install `r` as the calling thread's sink for the scope's lifetime.
class Scope {
 public:
  explicit Scope(Registry* r) : prev_(detail::tl_current) {
    detail::tl_current = r;
  }
  ~Scope() { detail::tl_current = prev_; }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Registry* prev_;
};

/// RAII: accumulate the scope's wall time into phase `p` of the registry
/// current at construction.  Free (no clock reads) when metrics are off.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase p);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Registry* reg_;
  Phase phase_;
  std::uint64_t start_nanos_ = 0;
};

/// Free-running monotonic stopwatch (the benchmark harnesses' `Timer`).
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() { start_ = now_nanos(); }

  /// Nanoseconds elapsed since construction or the last reset().
  std::uint64_t nanos() const { return now_nanos() - start_; }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const { return static_cast<double>(nanos()) * 1e-9; }

 private:
  std::uint64_t start_ = 0;
};

/// Run `fn` `reps` times and return the *minimum* wall-clock seconds of a
/// single run.  Minimum-of-N is the standard noise-robust estimator for
/// deterministic CPU-bound workloads.
double time_best_of(int reps, const std::function<void()>& fn);

}  // namespace rader::metrics
