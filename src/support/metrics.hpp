// Run-metrics registry: counters, gauges, histograms, and phase timers for
// the observability layer.
//
// Sampling-based and vector-clock race detectors expose per-run accounting
// (accesses seen, shadow cells touched, per-phase costs) so that partial
// monitoring is trustworthy and overhead is localizable; this registry gives
// Rader the same footing.  Every detector (SP-bags, Peer-Set, SP+,
// SP-order), the shadow spaces, the disjoint-set substrate, the RaceLog
// dedup layer, the view arena, both engines, and the sweep feed it.
//
// Design: a plain per-thread sink.  A `Registry` is a flat `Snapshot` —
// uint64 counters, signed gauges with per-thread high-water marks,
// log2-bucketed histograms, and per-phase nanosecond accumulators; `Scope`
// installs one as the calling thread's current sink (RAII, nestable — the
// previous sink is restored).  The hot-path helpers `bump()`, `gauge_add()`,
// and `record()` are a thread-local load and a predictable branch when no
// registry is installed, so instrumented code pays ~nothing unless someone
// is listening (the dormant-hook budget is enforced by bench/fig7_overhead
// at <= 1.02x geomean).
//
// Naming: every metric has a canonical dotted name in one of four stable
// namespaces — `sweep.*` (the spec-family sweep), `engine.*` (serial +
// parallel execution engines), `detector.*` (the four detectors and their
// substrates), `shadow.*` (shadow memory).  These names are the public
// exposition surface: the JSON report's "metrics" block, the Prometheus
// text format (core/metrics_export.hpp, dots become underscores there), and
// `rader --list-metrics` all derive from the descriptor tables here.
//
// Threading: a Registry is single-thread; parallel consumers (the sweep
// engine) give each worker its own Registry and fold the snapshots together
// with `Snapshot::add` after joining.  A sweep also forwards its aggregate
// into the *calling* thread's current registry, so an outer Scope (e.g. the
// CLI's) observes the whole run: probe + workers + merge.  For LIVE
// consumers (the sweep's JSONL sampler, the crash handler) there is
// `SharedSnapshot`: a fixed array of per-writer slots of relaxed atomics
// that workers overwrite with their current totals and readers sum
// wait-free — approximate by design, exact once the writers quiesce.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace rader::metrics {

/// Monotonic (steady-clock) nanoseconds since an arbitrary epoch.  The one
/// time source shared by PhaseTimer, Stopwatch, and the trace subsystem.
std::uint64_t now_nanos();

/// Counter identities.  Canonical dotted names in counter_name().
enum class Counter : unsigned {
  kAccessesInstrumented,  // on_access events a detector processed
  kShadowPagesTouched,    // shadow pages lazily allocated
  kDsuFinds,              // disjoint-set find() calls
  kDsuUnions,             // disjoint-set link() calls
  kFramesEntered,         // frames a detector tracked
  kRacesReported,         // distinct race identities stored
  kRacesDeduped,          // duplicate reports folded into a stored identity
  kSpecRuns,              // SP+ executions performed by sweeps
  kSweepCheckpoints,      // engine+detector checkpoints captured (prefix
                          // sweep strategy, core/sweep.hpp)
  kSweepForks,             // runs resumed from a checkpointed fork
  kSweepResumeFallbacks,   // resumes abandoned (ResumeDiverged) and redone
                           // as fresh runs — nonzero means the program is
                           // not address-stable across executions
  kShadowPagesCoW,         // shared shadow pages copied on first write
  kEngineTasks,            // spawned tasks executed by the parallel engine
  kEngineSteals,           // successful steals in the parallel engine
  kShardEvents,            // instrumentation events recorded into shards
  kShardDrains,            // root-shard replays into the attached tool
  kPostmortemDumps,        // post-mortem reports written (signal/watchdog)
  kSweepDedupReuses,       // prefix-sweep members whose log was reused
                           // verbatim (identical decision trail, no
                           // execution); spec_runs == kSpecRuns + this
  kShadowEpochClears,      // O(1) epoch-bump bulk clears of a packed
                           // shadow space (shadow/packed_shadow.hpp)
  kShadowPageResets,       // stale-epoch pages lazily re-initialized on
                           // their first write after a bulk clear
  kSampledAccesses,        // access events (granule runs) a SamplingTool
                           // forwarded to its wrapped detector
  kSampledDropped,         // granules a SamplingTool dropped unsampled
  kSweepChildCrashes,      // sandbox children that died abnormally (signal,
                           // timeout kill, OOM exit, protocol truncation)
                           // during an isolated sweep (core/sweep.hpp)
  kSweepRetries,           // failed shards relaunched (same range, backoff)
                           // by the isolated-sweep supervisor
  kSweepQuarantined,       // specs quarantined into sweep.failures[] after
                           // retries were exhausted
};
inline constexpr unsigned kCounterCount = 25;
const char* counter_name(Counter c);

/// Gauge identities: instantaneous levels with a per-thread high-water
/// mark.  Folding sums the levels and takes the largest per-thread peak.
/// Canonical dotted names in gauge_name().
enum class Gauge : unsigned {
  kSweepQueueDepth,       // family members not yet completed (monitor-set)
  kSweepCheckpointsLive,  // prefix-sweep checkpoints currently held
  kArenaBytes,            // view-arena bytes handed out since last rewind
  kShadowPagesLive,       // shadow pages currently mapped across spaces
  kDequeSize,             // parallel-engine deque entries (pushes - takes)
};
inline constexpr unsigned kGaugeCount = 5;
const char* gauge_name(Gauge g);

/// Histogram identities: log2-bucketed distributions (value v lands in
/// bucket bit_width(v); bucket b>=1 covers [2^(b-1), 2^b - 1], bucket 0 is
/// exactly zero).  Canonical dotted names in histogram_name().
enum class Histogram : unsigned {
  kSpecRunNanos,     // wall nanoseconds of one sweep spec execution
  kAccessBytes,      // byte size of instrumented accesses
  kReduceNanos,      // wall nanoseconds of one simulated reduce delivery
  kDivergenceDepth,  // prefix-sweep divergence depth (trail index)
  kSampledRunBytes,  // byte length of each granule run a SamplingTool
                     // forwarded (coverage shape of the sampled stream)
  kChildRestartNanos,  // isolated sweep: latency from detecting a child
                       // failure to spawning its replacement
};
inline constexpr unsigned kHistogramCount = 6;
inline constexpr unsigned kHistogramBuckets = 64;
const char* histogram_name(Histogram h);

/// Bucket index of a value: 0 for 0, otherwise bit_width (1..64 clamped to
/// the last bucket).
inline unsigned histogram_bucket(std::uint64_t v) {
  const unsigned b = static_cast<unsigned>(std::bit_width(v));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

/// Inclusive upper bound of a bucket (the Prometheus `le` label).
inline std::uint64_t histogram_bucket_bound(unsigned b) {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

/// Wall-clock phases.  kExecute brackets whole detector runs, so it
/// *includes* the kReduce time spent delivering simulated reduce
/// operations inside those runs; kMerge is RaceLog merging, outside runs.
enum class Phase : unsigned {
  kProbe,    // the serial Peer-Set probe of check_exhaustive
  kExecute,  // detector executions (sweep workers / family loops)
  kReduce,   // simulated reduce delivery inside the serial engine
  kMerge,    // folding per-spec RaceLogs into the result
};
inline constexpr unsigned kPhaseCount = 4;
const char* phase_name(Phase p);

/// One gauge's fold cell: the current level plus the high-water mark the
/// level reached on this sink.
struct GaugeCell {
  std::int64_t value = 0;
  std::int64_t max = 0;
};

/// One histogram's fold cell.
struct HistogramCell {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t buckets[kHistogramBuckets] = {};

  /// Quantile estimate (q in [0,1]) by linear interpolation inside the
  /// target log2 bucket.  0 when the histogram is empty.
  double quantile(double q) const;
};

/// A value snapshot: plain data, addable, serializable.
struct Snapshot {
  std::uint64_t counters[kCounterCount] = {};
  std::uint64_t phase_nanos[kPhaseCount] = {};
  GaugeCell gauges[kGaugeCount] = {};
  HistogramCell hists[kHistogramCount] = {};

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<unsigned>(c)];
  }
  const GaugeCell& gauge(Gauge g) const {
    return gauges[static_cast<unsigned>(g)];
  }
  const HistogramCell& hist(Histogram h) const {
    return hists[static_cast<unsigned>(h)];
  }
  double phase_seconds(Phase p) const {
    return static_cast<double>(phase_nanos[static_cast<unsigned>(p)]) * 1e-9;
  }

  /// Elementwise accumulate `other` into this snapshot.  Counters, phase
  /// times, histograms, and gauge levels add; gauge high-water marks take
  /// the larger per-sink peak (the folded max is the largest single-thread
  /// peak, not the global simultaneous maximum).
  void add(const Snapshot& other);

  /// True when every counter, gauge, histogram, and timer is zero.
  bool empty() const;

  /// {"counters":{...},"phase_seconds":{...},"gauges":{...},
  ///  "histograms":{...}} — the metrics block of report schema v4
  /// (docs/API.md).  Histograms carry count/sum/p50/p90/p99 plus the
  /// nonzero [le, n] bucket pairs.
  std::string to_json() const;
};

/// A mutable per-thread sink.
class Registry {
 public:
  void bump(Counter c, std::uint64_t n = 1) {
    snap_.counters[static_cast<unsigned>(c)] += n;
  }
  void gauge_add(Gauge g, std::int64_t delta) {
    GaugeCell& cell = snap_.gauges[static_cast<unsigned>(g)];
    cell.value += delta;
    if (cell.value > cell.max) cell.max = cell.value;
  }
  void gauge_set(Gauge g, std::int64_t value) {
    GaugeCell& cell = snap_.gauges[static_cast<unsigned>(g)];
    cell.value = value;
    if (value > cell.max) cell.max = value;
  }
  void record(Histogram h, std::uint64_t value) {
    HistogramCell& cell = snap_.hists[static_cast<unsigned>(h)];
    ++cell.count;
    cell.sum += value;
    ++cell.buckets[histogram_bucket(value)];
  }
  void add_phase_nanos(Phase p, std::uint64_t nanos) {
    snap_.phase_nanos[static_cast<unsigned>(p)] += nanos;
  }
  void absorb(const Snapshot& s) { snap_.add(s); }
  const Snapshot& snapshot() const { return snap_; }
  void reset() { snap_ = Snapshot{}; }

 private:
  Snapshot snap_;
};

namespace detail {
inline thread_local Registry* tl_current = nullptr;
}  // namespace detail

/// The calling thread's current sink (nullptr = metrics off).
inline Registry* current() { return detail::tl_current; }
inline bool enabled() { return detail::tl_current != nullptr; }

/// Hot-path increment: no-op unless a Registry is installed.
inline void bump(Counter c, std::uint64_t n = 1) {
  if (Registry* r = detail::tl_current) r->bump(c, n);
}

/// Hot-path gauge level change (+/-): no-op unless a Registry is installed.
inline void gauge_add(Gauge g, std::int64_t delta) {
  if (Registry* r = detail::tl_current) r->gauge_add(g, delta);
}

/// Hot-path gauge level overwrite: no-op unless a Registry is installed.
inline void gauge_set(Gauge g, std::int64_t value) {
  if (Registry* r = detail::tl_current) r->gauge_set(g, value);
}

/// Hot-path histogram observation: no-op unless a Registry is installed.
inline void record(Histogram h, std::uint64_t value) {
  if (Registry* r = detail::tl_current) r->record(h, value);
}

/// RAII: install `r` as the calling thread's sink for the scope's lifetime.
class Scope {
 public:
  explicit Scope(Registry* r) : prev_(detail::tl_current) {
    detail::tl_current = r;
  }
  ~Scope() { detail::tl_current = prev_; }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Registry* prev_;
};

/// RAII: accumulate the scope's wall time into phase `p` of the registry
/// current at construction.  Free (no clock reads) when metrics are off.
class PhaseTimer {
 public:
  explicit PhaseTimer(Phase p);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  Registry* reg_;
  Phase phase_;
  std::uint64_t start_nanos_ = 0;
};

/// One row of the registry-backed metric catalog (`rader --list-metrics`,
/// the Prometheus HELP lines).  `type` is "counter", "gauge", "histogram",
/// or "phase"; names are the canonical dotted identifiers.
struct MetricInfo {
  const char* name;
  const char* type;
  const char* help;
};

/// Every metric this build can emit, in exposition order: counters, gauges,
/// histograms, then phases.  The single source of truth for name stability
/// — exposition formats and tests iterate this, never ad-hoc lists.
std::vector<MetricInfo> list_metrics();

/// A wait-free live view over per-writer snapshots: `slots` writers each
/// overwrite their own slot with their current totals (relaxed atomic
/// stores, monotone per writer); any thread can `read()` the summed view at
/// any time (relaxed loads).  Values observed mid-run are approximate —
/// different cells may be from slightly different instants — but each cell
/// is a real value some writer published, and once writers quiesce (sweep
/// join) the read is exact.  This is what the sweep's JSONL sampler, the
/// watchdog, and the crash handler read; reading allocates nothing beyond
/// the returned Snapshot, and `read_into` allocates nothing at all
/// (async-signal usable).
class SharedSnapshot {
 public:
  explicit SharedSnapshot(unsigned slots);

  unsigned slots() const { return slots_; }

  /// Overwrite `slot`'s cells with `s`.  One writer per slot.
  void publish(unsigned slot, const Snapshot& s);

  /// Sum every slot into `out` (gauge maxes fold like Snapshot::add).
  void read_into(Snapshot* out) const;

  Snapshot read() const {
    Snapshot s;
    read_into(&s);
    return s;
  }

 private:
  // Cells per slot: the Snapshot flattened to uint64 words (gauge int64s
  // are bit-cast).
  static constexpr unsigned kWordsPerSlot =
      kCounterCount + kPhaseCount + 2 * kGaugeCount +
      kHistogramCount * (2 + kHistogramBuckets);

  unsigned slots_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> words_;
};

/// Free-running monotonic stopwatch (the benchmark harnesses' `Timer`).
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() { start_ = now_nanos(); }

  /// Nanoseconds elapsed since construction or the last reset().
  std::uint64_t nanos() const { return now_nanos() - start_; }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const { return static_cast<double>(nanos()) * 1e-9; }

 private:
  std::uint64_t start_ = 0;
};

/// Run `fn` `reps` times and return the *minimum* wall-clock seconds of a
/// single run.  Minimum-of-N is the standard noise-robust estimator for
/// deterministic CPU-bound workloads.
double time_best_of(int reps, const std::function<void()>& fn);

}  // namespace rader::metrics
