#include "support/trace.hpp"

#include <atomic>

namespace rader::trace {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kRunBegin: return "run-begin";
    case EventKind::kRunEnd: return "run-end";
    case EventKind::kFrameEnter: return "frame-enter";
    case EventKind::kFrameReturn: return "frame-return";
    case EventKind::kSync: return "sync";
    case EventKind::kSteal: return "steal";
    case EventKind::kReduceBegin: return "reduce-begin";
    case EventKind::kReduceEnd: return "reduce-end";
    case EventKind::kViewCreate: return "view-create";
    case EventKind::kViewDestroy: return "view-destroy";
    case EventKind::kReducerOp: return "reducer-op";
    case EventKind::kConflict: return "conflict";
  }
  return "unknown";
}

Buffer::Buffer(std::string name, std::size_t capacity)
    : name_(std::move(name)), capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
}

void Buffer::record(const Event& e) {
  ++recorded_;
  if (size_ < capacity_) {
    if (ring_.size() < capacity_ && size_ == ring_.size()) {
      ring_.push_back(e);
    } else {
      ring_[(head_ + size_) % capacity_] = e;
    }
    ++size_;
    return;
  }
  // Full: overwrite the oldest slot and advance the head.
  ring_[head_] = e;
  head_ = (head_ + 1) % capacity_;
}

bool Buffer::note_conflict(std::uint64_t granule_key) {
  return conflict_granules_.insert(granule_key).second;
}

std::vector<Event> Buffer::ordered() const {
  std::vector<Event> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

std::size_t Buffer::copy_tail(Event* out, std::size_t max) const {
  // Clamp every index against what the ring actually holds: the owner
  // thread may have died between bumping size_ and growing ring_.
  std::size_t sz = size_ < ring_.size() ? size_ : ring_.size();
  if (sz > capacity_) sz = capacity_;
  const std::size_t n = sz < max ? sz : max;
  const std::size_t skip = sz - n;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = (head_ + skip + i) % capacity_;
    if (idx < ring_.size()) out[i] = ring_[idx];
  }
  return n;
}

Session::Session(std::size_t buffer_capacity)
    : buffer_capacity_(buffer_capacity) {}

Buffer* Session::make_buffer(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(
      std::make_unique<Buffer>(std::move(name), buffer_capacity_));
  Buffer* b = buffers_.back().get();
  // Side-channel publication for the crash handler (mu_ serializes the
  // index; the handler only ever loads).
  const unsigned idx = crash_count_.load(std::memory_order_relaxed);
  if (idx < kCrashSlots) {
    crash_slots_[idx].store(b, std::memory_order_release);
    crash_count_.store(idx + 1, std::memory_order_release);
  }
  return b;
}

unsigned Session::crash_buffers(const Buffer** out, unsigned max) const {
  unsigned n = crash_count_.load(std::memory_order_acquire);
  if (n > kCrashSlots) n = kCrashSlots;
  if (n > max) n = max;
  for (unsigned i = 0; i < n; ++i) {
    out[i] = crash_slots_[i].load(std::memory_order_acquire);
  }
  return n;
}

std::vector<const Buffer*> Session::buffers() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Buffer*> out;
  out.reserve(buffers_.size());
  for (const auto& b : buffers_) out.push_back(b.get());
  return out;
}

std::uint64_t Session::total_recorded() const {
  std::uint64_t n = 0;
  for (const Buffer* b : buffers()) n += b->recorded();
  return n;
}

std::uint64_t Session::total_dropped() const {
  std::uint64_t n = 0;
  for (const Buffer* b : buffers()) n += b->dropped();
  return n;
}

namespace detail {

namespace {
std::atomic<Session*> g_session{nullptr};
}  // namespace

Session* active_session() {
  return g_session.load(std::memory_order_acquire);
}

void set_active_session(Session* s) {
  g_session.store(s, std::memory_order_release);
}

}  // namespace detail

Scope::Scope(Session* session, std::string thread_name)
    : prev_session_(detail::active_session()),
      prev_buffer_(detail::tl_buffer) {
  detail::set_active_session(session);
  detail::tl_buffer =
      session != nullptr ? session->make_buffer(std::move(thread_name))
                         : nullptr;
}

Scope::~Scope() {
  detail::set_active_session(prev_session_);
  detail::tl_buffer = prev_buffer_;
}

}  // namespace rader::trace
