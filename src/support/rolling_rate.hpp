// Rolling-window throughput estimator for the progress heartbeat.
//
// The since-start average rate the heartbeat used to print is badly wrong
// for front-loaded work: a prefix-sharing sweep retires the cheap
// checkpoint-fork members first and the expensive divergent tails last, so
// the since-start average overstates the remaining throughput and the ETA
// collapses toward zero while the sweep is nowhere near done.  A rolling
// window over the last few heartbeat ticks tracks the *current* regime
// instead.
//
// Usage: feed `sample(nanos, done)` a monotone timestamp and the cumulative
// completion count at every tick (the monitor loop does this once per
// interval); `rate_per_sec()` is the completion rate across the window.
// Degenerate inputs — no samples, one sample, a zero-width window, or a
// non-monotone clock — all clamp to 0.0, never NaN/inf, so callers can
// guard ETA display with a single `rate > 0` check (tested in
// tests/support/rolling_rate_test.cpp alongside the heartbeat's existing
// zero-denominator guards).
#pragma once

#include <cstddef>
#include <cstdint>

namespace rader::support {

class RollingRate {
 public:
  static constexpr std::size_t kDefaultWindow = 8;

  explicit RollingRate(std::size_t window = kDefaultWindow)
      : window_(window < 2 ? 2 : (window > kMax ? kMax : window)) {}

  /// Record the cumulative completion count at a point in time.  Call with
  /// (start_nanos, 0) before the first interval so the first real tick has
  /// a baseline to difference against.
  void sample(std::uint64_t nanos, std::uint64_t done) {
    Sample& s = ring_[next_ % window_];
    s.nanos = nanos;
    s.done = done;
    ++next_;
    if (size_ < window_) ++size_;
  }

  std::size_t samples() const { return size_; }

  /// Completions per second across the retained window; 0.0 until two
  /// samples with a positive time delta exist.
  double rate_per_sec() const {
    if (size_ < 2) return 0.0;
    const Sample& newest = ring_[(next_ - 1) % window_];
    const Sample& oldest = ring_[(next_ - size_) % window_];
    if (newest.nanos <= oldest.nanos) return 0.0;
    if (newest.done < oldest.done) return 0.0;
    return static_cast<double>(newest.done - oldest.done) /
           (static_cast<double>(newest.nanos - oldest.nanos) * 1e-9);
  }

  /// Seconds until `remaining` more completions at the window rate; 0.0
  /// when the rate is unusable (caller prints no ETA in that case).
  double eta_seconds(std::uint64_t remaining) const {
    const double r = rate_per_sec();
    if (r <= 0.0) return 0.0;
    return static_cast<double>(remaining) / r;
  }

 private:
  struct Sample {
    std::uint64_t nanos = 0;
    std::uint64_t done = 0;
  };

  // Fixed upper bound keeps the class allocation-free; window_ <= kMax.
  static constexpr std::size_t kMax = 64;
  std::size_t window_;
  Sample ring_[kMax] = {};
  std::size_t next_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rader::support
