#include "support/rng.hpp"

#include "support/common.hpp"

namespace rader {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  for (auto& s : s_) s = splitmix64(seed);
  // A state of all zeros is the one invalid state; splitmix64 of any seed
  // cannot produce four zero outputs in a row, but be defensive anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  RADER_DCHECK(bound > 0);
  // Lemire's unbiased bounded generation with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  RADER_DCHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range [INT64_MIN, INT64_MAX].
  const std::uint64_t draw = (span == 0) ? next() : below(span);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + draw);
}

double Rng::uniform() {
  // 53 high-quality bits into the mantissa.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

Rng Rng::split() {
  Rng child;
  child.reseed(next() ^ 0xd1342543de82ef95ull);
  return child;
}

}  // namespace rader
