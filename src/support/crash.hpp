// Crash and hang diagnostics: the post-mortem report writer, the fatal
// signal handler, and the in-flight spec table the sweep publishes so a
// wedged or crashed run leaves behind *which specs were executing*.
//
// Everything on the dump path is built for the worst moment of the
// process's life: `write_postmortem()` uses only pre-registered pointers,
// stack buffers, hand-rolled integer formatting, and write(2) — no
// allocation, no locks, no stdio — so it is best-effort async-signal-safe
// (the same compromise absl's failure signal handler makes).  The sweep
// watchdog calls the identical writer from a perfectly ordinary thread
// when no spec completes within its deadline, so hang reports and crash
// reports read the same.
//
// Data sources are published ahead of time via `set_sources()`:
//   - a metrics::SharedSnapshot (the sweep workers' live totals; read
//     wait-free with read_into, which allocates nothing),
//   - an InflightTable of fixed-width spec-handle strings (relaxed-atomic
//     word-packed, so worker writes and handler reads are TSan-clean and
//     at worst produce a torn string, never UB),
//   - the active trace::Session, whose per-buffer ring tails are copied
//     out with the allocation-free Buffer::copy_tail.
// All three are optional; the report prints whatever is registered.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rader::crash {

/// Fixed table of fixed-width strings naming the work each slot's owner is
/// currently executing ("" = idle).  Strings are packed into relaxed
/// atomic u64 words: single-writer-per-slot, any-reader, allocation-free
/// on both sides.  A reader racing a writer sees a torn-but-NUL-terminated
/// string — acceptable in a post-mortem.
class InflightTable {
 public:
  static constexpr unsigned kSlots = 64;
  static constexpr unsigned kChars = 128;  // per slot, incl. trailing NUL

  /// Publish `text` (truncated to kChars-1) as slot `slot`'s current work.
  void set(unsigned slot, const char* text);

  void clear(unsigned slot) { set(slot, ""); }

  /// Copy slot `slot`'s string into out[kChars]; returns false (and writes
  /// "") when the slot is idle or out of range.
  bool read(unsigned slot, char* out) const;

 private:
  static constexpr unsigned kWords = kChars / 8;
  std::atomic<std::uint64_t> words_[kSlots][kWords] = {};
};

/// Pointers the dump path may read.  All optional; all must outlive their
/// registration (clear_sources() before destroying any of them).
struct PostmortemSources {
  const metrics::SharedSnapshot* metrics = nullptr;
  const InflightTable* inflight = nullptr;
  trace::Session* trace_session = nullptr;
  const char* activity = "";  // one static word, e.g. "sweep"
};

/// Publish / retract the dump sources (atomic pointer swap of an internal
/// static copy; the last set wins).
void set_sources(const PostmortemSources& s);
void clear_sources();

/// Write a post-mortem report to `fd`: the reason line, the registered
/// activity, the summed live metrics snapshot, the in-flight table, and
/// the newest events of every trace ring.  Allocation- and lock-free;
/// callable from a signal handler or a watchdog thread alike.  Returns the
/// number of report sections written (0 = no sources registered).
unsigned write_postmortem(int fd, const char* reason);

/// Install handlers for the fatal signals (SIGSEGV, SIGBUS, SIGILL,
/// SIGFPE, SIGABRT) that write a post-mortem — to `path` if non-null
/// (opened O_CREAT|O_TRUNC at crash time), else to stderr — and then
/// re-raise with the default disposition so the exit status is honest.
/// `path` is copied into a static buffer; pass nullptr for stderr-only.
void install_signal_handler(const char* path);

/// The path registered with install_signal_handler ("" = stderr).
const char* postmortem_path();

}  // namespace rader::crash
