// Small hashing utilities shared by the shadow spaces and the dedup app.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rader {

/// 64-bit FNV-1a over a byte range.
constexpr std::uint64_t fnv1a(const void* data, std::size_t n,
                              std::uint64_t seed = 0xcbf29ce484222325ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

inline std::uint64_t fnv1a(std::string_view s) {
  return fnv1a(s.data(), s.size());
}

/// Strong 64-bit integer mix (final avalanche of splitmix64).
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Combine two hashes (boost-style, 64-bit).
constexpr std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

}  // namespace rader
