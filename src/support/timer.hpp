// Compatibility aliases for the old standalone timing facility, which is now
// part of support/metrics (one monotonic-clock implementation for phase
// timers, benchmarks, and the trace subsystem).  New code should use
// metrics::Stopwatch / metrics::time_best_of directly.
#pragma once

#include "support/metrics.hpp"

namespace rader {

using Timer = metrics::Stopwatch;
using metrics::time_best_of;

}  // namespace rader
