// Wall-clock timing helpers used by the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

namespace rader {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() { reset(); }

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last reset().
  std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Run `fn` `reps` times and return the *minimum* wall-clock seconds of a
/// single run.  Minimum-of-N is the standard noise-robust estimator for
/// deterministic CPU-bound workloads.
double time_best_of(int reps, const std::function<void()>& fn);

}  // namespace rader
