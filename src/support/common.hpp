// Common support utilities: checked assertions and failure reporting.
//
// RADER_CHECK is an always-on invariant check (detection algorithms must not
// silently corrupt their bookkeeping); RADER_DCHECK compiles out in NDEBUG
// builds and is used on hot paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace rader {

/// Print a diagnostic (file:line, message) to stderr and abort.
[[noreturn]] void panic(const char* file, int line, std::string_view msg);

#define RADER_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) ::rader::panic(__FILE__, __LINE__, "check failed: " #cond); \
  } while (0)

#define RADER_CHECK_MSG(cond, msg)                                   \
  do {                                                               \
    if (!(cond)) ::rader::panic(__FILE__, __LINE__, (msg));          \
  } while (0)

#ifdef NDEBUG
#define RADER_DCHECK(cond) ((void)0)
#else
#define RADER_DCHECK(cond) RADER_CHECK(cond)
#endif

#define RADER_UNREACHABLE(msg) ::rader::panic(__FILE__, __LINE__, (msg))

/// Last byte of the access [addr, addr+size), clamped to UINTPTR_MAX so an
/// access extending past the top of the address space cannot wrap around.
/// Without the clamp, `addr + size - 1` overflows to a tiny value, the
/// detectors' granule range loops see last < first, and the access is
/// silently untracked.  `size` must be nonzero (callers return early on 0).
inline std::uintptr_t access_last_byte(std::uintptr_t addr, std::size_t size) {
  const std::uintptr_t last = addr + (size - 1);
  return last < addr ? ~std::uintptr_t{0} : last;
}

}  // namespace rader
