// Common support utilities: checked assertions and failure reporting.
//
// RADER_CHECK is an always-on invariant check (detection algorithms must not
// silently corrupt their bookkeeping); RADER_DCHECK compiles out in NDEBUG
// builds and is used on hot paths.
#pragma once

#include <cstdint>
#include <string_view>

namespace rader {

/// Print a diagnostic (file:line, message) to stderr and abort.
[[noreturn]] void panic(const char* file, int line, std::string_view msg);

#define RADER_CHECK(cond)                                                    \
  do {                                                                       \
    if (!(cond)) ::rader::panic(__FILE__, __LINE__, "check failed: " #cond); \
  } while (0)

#define RADER_CHECK_MSG(cond, msg)                                   \
  do {                                                               \
    if (!(cond)) ::rader::panic(__FILE__, __LINE__, (msg));          \
  } while (0)

#ifdef NDEBUG
#define RADER_DCHECK(cond) ((void)0)
#else
#define RADER_DCHECK(cond) RADER_CHECK(cond)
#endif

#define RADER_UNREACHABLE(msg) ::rader::panic(__FILE__, __LINE__, (msg))

}  // namespace rader
