#include "support/profile.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "support/metrics.hpp"

namespace rader::prof {

Node* Node::child(const char* child_name) {
  for (const auto& c : children) {
    if (c->name == child_name || std::strcmp(c->name, child_name) == 0) {
      return c.get();
    }
  }
  children.push_back(std::make_unique<Node>());
  children.back()->name = child_name;
  return children.back().get();
}

std::uint64_t Node::self_nanos() const {
  std::uint64_t kids = 0;
  for (const auto& c : children) kids += c->total_nanos;
  return kids < total_nanos ? total_nanos - kids : 0;
}

namespace {

void merge_into(Node* dst, const Node& src) {
  dst->total_nanos += src.total_nanos;
  dst->count += src.count;
  for (const auto& c : src.children) {
    merge_into(dst->child(c->name), *c);
  }
}

}  // namespace

void Profiler::absorb(const Node& other_root) {
  for (const auto& c : other_root.children) {
    merge_into(cur_->child(c->name), *c);
  }
}

namespace {

double to_ms(std::uint64_t nanos) {
  return static_cast<double>(nanos) * 1e-6;
}

void table_walk(std::ostringstream& os, const Node& n, unsigned depth,
                std::uint64_t root_total) {
  std::string label(static_cast<std::size_t>(depth) * 2, ' ');
  label += n.name;
  if (label.size() < 28) label.resize(28, ' ');
  char line[160];
  const double share =
      root_total == 0
          ? 0.0
          : 100.0 * static_cast<double>(n.self_nanos()) /
                static_cast<double>(root_total);
  std::snprintf(line, sizeof line, "%s %10llu %12.3f %12.3f %6.1f%%\n",
                label.c_str(),
                static_cast<unsigned long long>(n.count),
                to_ms(n.total_nanos), to_ms(n.self_nanos()), share);
  os << line;
  for (const auto& c : n.children) {
    table_walk(os, *c, depth + 1, root_total);
  }
}

void collapsed_walk(std::ostringstream& os, const Node& n,
                    const std::string& prefix) {
  const std::string path =
      prefix.empty() ? std::string(n.name) : prefix + ';' + n.name;
  os << path << ' ' << n.self_nanos() / 1000 << '\n';
  for (const auto& c : n.children) collapsed_walk(os, *c, path);
}

}  // namespace

std::string table(const Node& root) {
  std::ostringstream os;
  std::uint64_t root_total = 0;
  for (const auto& c : root.children) root_total += c->total_nanos;
  std::string head("phase");
  head.resize(28, ' ');
  char line[160];
  std::snprintf(line, sizeof line, "%s %10s %12s %12s %7s\n", head.c_str(),
                "count", "total_ms", "self_ms", "self%");
  os << line;
  for (const auto& c : root.children) {
    table_walk(os, *c, 0, root_total);
  }
  return os.str();
}

std::string collapsed(const Node& root) {
  std::ostringstream os;
  for (const auto& c : root.children) collapsed_walk(os, *c, "");
  return os.str();
}

}  // namespace rader::prof
