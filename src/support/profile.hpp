// Hierarchical phase profiler: RAII phase scopes that build a per-thread
// tree of named phases (sweep → spec → {resume, replay, detect, merge}),
// with wall-time totals, visit counts, and *self-time* attribution
// (total minus children — where the time actually went, not just which
// subtree it passed through).
//
// Design mirrors support/metrics: a `Profiler` is a plain per-thread sink
// installed via `Scope` (RAII, nestable); the hot-path `Phase` constructor
// is a thread-local load and a predictable branch when no profiler is
// installed, so instrumented code pays ~nothing unless someone asked for
// `--profile` (dormant budget enforced by bench/fig7_overhead).  Parallel
// consumers (sweep workers) each get their own Profiler and are folded
// with `absorb()` after joining — trees merge by phase-name path, so five
// workers' "sweep;spec;detect" paths collapse into one aggregated node.
// A sweep also forwards its aggregate into the *calling* thread's current
// profiler, so an outer Scope (the CLI's) observes the whole run.
//
// Output: `table()` renders an indented human-readable summary; and
// `collapsed()` renders the standard collapsed-stack format — one
// `path;to;phase <self-microseconds>` line per node — which flamegraph
// tools (flamegraph.pl, speedscope, inferno) consume directly.  The CLI
// wires this to `rader --profile=FILE`.
//
// Phase names must be string literals (or otherwise outlive the profiler):
// nodes store the pointer and match by strcmp, so the same name from
// different translation units still folds into one node.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/metrics.hpp"  // now_nanos (Phase's inline fast path)

namespace rader::prof {

/// One phase in the tree.  `total_nanos` is inclusive wall time (it
/// contains the children); `self_nanos()` subtracts them back out.
struct Node {
  const char* name = "";
  std::uint64_t total_nanos = 0;
  std::uint64_t count = 0;
  std::vector<std::unique_ptr<Node>> children;

  /// Find-or-create the child named `name` (strcmp match).
  Node* child(const char* name);

  /// Inclusive time minus the children's inclusive time (clamped at 0 —
  /// a child on another worker can outlive its logical parent scope).
  std::uint64_t self_nanos() const;
};

/// A per-thread phase tree under construction.  The root node is unnamed
/// and untimed; top-level phases hang off it.
class Profiler {
 public:
  Profiler() { cur_ = &root_; }

  const Node& root() const { return root_; }
  Node* current_node() { return cur_; }

  /// Fold `other`'s tree into this profiler *under the current node*, by
  /// name path.  Used at worker join and for outer-scope forwarding.
  void absorb(const Node& other_root);

  /// True when no phase has been recorded.
  bool empty() const { return root_.children.empty(); }

  // Used by Phase (enter returns the node; leave restores the parent).
  Node* enter(const char* name) {
    Node* n = cur_->child(name);
    cur_ = n;
    return n;
  }
  void leave(Node* node, Node* parent, std::uint64_t nanos) {
    node->total_nanos += nanos;
    ++node->count;
    cur_ = parent;
  }

 private:
  Node root_;
  Node* cur_;
};

namespace detail {
inline thread_local Profiler* tl_current = nullptr;
}  // namespace detail

/// The calling thread's current profiler (nullptr = profiling off).
inline Profiler* current() { return detail::tl_current; }
inline bool enabled() { return detail::tl_current != nullptr; }

/// RAII: install `p` as the calling thread's profiler for the scope's
/// lifetime.
class Scope {
 public:
  explicit Scope(Profiler* p) : prev_(detail::tl_current) {
    detail::tl_current = p;
  }
  ~Scope() { detail::tl_current = prev_; }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Profiler* prev_;
};

/// RAII: one timed phase nested under whatever phase is currently open on
/// this thread.  Free (no clock reads, no tree walk) when profiling is off —
/// the constructor and destructor are defined inline so the dormant path is
/// exactly a thread-local load and a not-taken branch, the cost the
/// fig7_overhead observability-dormant gate budgets.
class Phase {
 public:
  explicit Phase(const char* name) : prof_(detail::tl_current) {
    if (prof_ == nullptr) return;
    parent_ = prof_->current_node();
    node_ = prof_->enter(name);
    start_nanos_ = metrics::now_nanos();
  }
  ~Phase() {
    if (prof_ == nullptr) return;
    prof_->leave(node_, parent_, metrics::now_nanos() - start_nanos_);
  }

  Phase(const Phase&) = delete;
  Phase& operator=(const Phase&) = delete;

 private:
  Profiler* prof_;
  Node* node_ = nullptr;
  Node* parent_ = nullptr;
  std::uint64_t start_nanos_ = 0;
};

/// Indented human-readable table: phase, count, inclusive ms, self ms,
/// self share of the root's inclusive time.
std::string table(const Node& root);

/// Collapsed-stack (flamegraph) rendering: one line per node,
/// `name;path;leaf <self-microseconds>`, children depth-first.  Every
/// visited node is emitted (including zero-self ones) so stack prefixes
/// are always present for downstream tools.
std::string collapsed(const Node& root);

}  // namespace rader::prof
