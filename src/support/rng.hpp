// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every randomized component in this repository — workload generators, random
// steal specifications, the random-program generator used by the property
// tests — takes an explicit seed and derives all randomness from this
// generator, so every experiment and test is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <limits>

namespace rader {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialize the state from a single seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <random> distributions).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child generator (for per-task determinism).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace rader
