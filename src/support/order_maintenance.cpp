#include "support/order_maintenance.hpp"

namespace rader {
namespace {

constexpr std::uint64_t kMaxTag = ~std::uint64_t{0};

}  // namespace

OrderMaintenance::Node OrderMaintenance::make_first() {
  RADER_CHECK_MSG(nodes_.empty(), "make_first on a non-empty order");
  nodes_.push_back(Entry{kMaxTag / 2, kInvalid, kInvalid});
  head_ = 0;
  return 0;
}

OrderMaintenance::Node OrderMaintenance::insert_after(Node n) {
  RADER_DCHECK(n < nodes_.size());
  const Node fresh = static_cast<Node>(nodes_.size());
  nodes_.push_back(Entry{});

  Entry& prev = nodes_[n];
  const Node next = prev.next;
  const std::uint64_t lo = prev.tag;
  const std::uint64_t hi = (next == kInvalid) ? kMaxTag : nodes_[next].tag;
  if (hi - lo < 2) {
    // No gap: open one by relabeling a region around n, then retry the
    // arithmetic (links have not changed).
    rebalance_around(n);
    const std::uint64_t lo2 = nodes_[n].tag;
    const std::uint64_t hi2 =
        (nodes_[n].next == kInvalid) ? kMaxTag : nodes_[nodes_[n].next].tag;
    RADER_CHECK_MSG(hi2 - lo2 >= 2, "order-maintenance rebalance failed");
    nodes_[fresh].tag = lo2 + (hi2 - lo2) / 2;
  } else {
    nodes_[fresh].tag = lo + (hi - lo) / 2;
  }

  // Splice into the linked list.
  nodes_[fresh].prev = n;
  nodes_[fresh].next = next;
  nodes_[n].next = fresh;
  if (next != kInvalid) nodes_[next].prev = fresh;
  return fresh;
}

void OrderMaintenance::rebalance_around(Node n) {
  // Classic list-labeling: grow a window around n until its density drops
  // below a geometrically decreasing threshold, then spread its nodes
  // evenly over the enclosing tag range.  Window bounds use 128-bit
  // arithmetic: for tags in the topmost aligned block, base + range is
  // exactly 2^64 and must not wrap.
  ++relabels_;
  Node left = n;
  Node right = n;
  std::size_t count = 1;
  double threshold = 1.0;
  constexpr double kDensityBase = 1.3;

  for (std::size_t level = 1; level < 64; ++level) {
    const std::uint64_t range = std::uint64_t{1} << level;
    // Window = nodes whose tags share the top (64 - level) bits with n.
    const std::uint64_t base = nodes_[n].tag & ~(range - 1);
    const auto end = static_cast<unsigned __int128>(base) + range;
    while (nodes_[left].prev != kInvalid &&
           nodes_[nodes_[left].prev].tag >= base) {
      left = nodes_[left].prev;
      ++count;
    }
    while (nodes_[right].next != kInvalid &&
           static_cast<unsigned __int128>(nodes_[nodes_[right].next].tag) <
               end &&
           nodes_[nodes_[right].next].tag >= base) {
      right = nodes_[right].next;
      ++count;
    }
    threshold /= kDensityBase;
    if (static_cast<double>(count) / static_cast<double>(range) < threshold &&
        range >= 2 * (count + 2)) {
      // Spread the window's nodes evenly across [base, base + range).
      const std::uint64_t step =
          range / (static_cast<std::uint64_t>(count) + 1);
      std::uint64_t tag = base + step;
      for (Node it = left;; it = nodes_[it].next) {
        nodes_[it].tag = tag;
        tag += step;
        if (it == right) break;
      }
      return;
    }
  }

  // Fallback: relabel the ENTIRE list evenly across the full tag space.
  // Reached only when the list is dense in every aligned window around n
  // (possible after adversarially skewed insertions drive tags into one
  // region); O(n), amortized away by the doubling structure above.
  Node head = n;
  while (nodes_[head].prev != kInvalid) head = nodes_[head].prev;
  std::size_t total = 0;
  for (Node it = head; it != kInvalid; it = nodes_[it].next) ++total;
  RADER_CHECK_MSG(total < (std::uint64_t{1} << 62),
                  "order-maintenance list too large to relabel");
  const std::uint64_t step = kMaxTag / (static_cast<std::uint64_t>(total) + 1);
  RADER_CHECK_MSG(step >= 2, "order-maintenance tag space exhausted");
  std::uint64_t tag = step;
  for (Node it = head; it != kInvalid; it = nodes_[it].next) {
    nodes_[it].tag = tag;
    tag += step;
  }
}

void OrderMaintenance::clear() {
  nodes_.clear();
  head_ = kInvalid;
  relabels_ = 0;
}

bool OrderMaintenance::check_invariants() const {
  if (nodes_.empty()) return true;
  Node it = head_;
  std::size_t seen = 0;
  std::uint64_t last = 0;
  bool first = true;
  while (it != kInvalid) {
    if (!first && nodes_[it].tag <= last) return false;
    last = nodes_[it].tag;
    first = false;
    ++seen;
    if (nodes_[it].next != kInvalid && nodes_[nodes_[it].next].prev != it) {
      return false;
    }
    it = nodes_[it].next;
  }
  return seen == nodes_.size();
}

}  // namespace rader
