// Order-maintenance data structure.
//
// Maintains a total order under "insert x after y" with O(1) order queries,
// via the classic list-labeling scheme [Dietz & Sleator; Bender et al.]:
// nodes carry 64-bit tags; an insertion with no tag gap between neighbors
// relabels the smallest enclosing tag range whose density is below a
// geometrically decreasing threshold, giving O(log n) amortized relabels.
//
// This is the substrate of the SP-order determinacy-race detector [3]
// (Bender, Fineman, Gilbert, Leiserson, SPAA'04), which the paper cites as
// maintaining series-parallel relationships "in a concurrent
// order-maintenance data structure" — and notes that, to the authors'
// knowledge, no implementation existed.  src/core/sporder.hpp implements
// the serial variant on top of this structure.
#pragma once

#include <cstdint>
#include <vector>

#include "support/common.hpp"

namespace rader {

class OrderMaintenance {
 public:
  using Node = std::uint32_t;
  static constexpr Node kInvalid = static_cast<Node>(-1);

  OrderMaintenance() = default;

  /// Create the first node of the order (list must be empty).
  Node make_first();

  /// Insert a fresh node immediately after `n` in the order.
  Node insert_after(Node n);

  /// True iff `a` precedes `b` in the maintained order.
  bool precedes(Node a, Node b) const {
    RADER_DCHECK(a < nodes_.size() && b < nodes_.size());
    return nodes_[a].tag < nodes_[b].tag;
  }

  /// The later of two nodes in the maintained order.
  Node max(Node a, Node b) const { return precedes(a, b) ? b : a; }

  std::size_t size() const { return nodes_.size(); }
  std::uint64_t relabel_count() const { return relabels_; }

  void clear();

  /// Internal invariant check (for tests): tags strictly increase along the
  /// linked list.
  bool check_invariants() const;

 private:
  struct Entry {
    std::uint64_t tag = 0;
    Node next = kInvalid;
    Node prev = kInvalid;
  };

  // Rebalance so that a gap opens after `n`; returns nothing (tags change).
  void rebalance_around(Node n);

  std::vector<Entry> nodes_;
  Node head_ = kInvalid;
  std::uint64_t relabels_ = 0;
};

}  // namespace rader
