#include "support/crash.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstring>

namespace rader::crash {

void InflightTable::set(unsigned slot, const char* text) {
  if (slot >= kSlots) return;
  std::uint64_t packed[kWords] = {};
  char* bytes = reinterpret_cast<char*>(packed);
  std::size_t i = 0;
  for (; i < kChars - 1 && text[i] != '\0'; ++i) bytes[i] = text[i];
  for (unsigned w = 0; w < kWords; ++w) {
    words_[slot][w].store(packed[w], std::memory_order_relaxed);
  }
}

bool InflightTable::read(unsigned slot, char* out) const {
  out[0] = '\0';
  if (slot >= kSlots) return false;
  std::uint64_t packed[kWords];
  for (unsigned w = 0; w < kWords; ++w) {
    packed[w] = words_[slot][w].load(std::memory_order_relaxed);
  }
  std::memcpy(out, packed, kChars);
  out[kChars - 1] = '\0';
  return out[0] != '\0';
}

namespace {

// The registered sources, each published as its own atomic so the handler
// never dereferences a half-written struct.
std::atomic<const metrics::SharedSnapshot*> g_metrics{nullptr};
std::atomic<const InflightTable*> g_inflight{nullptr};
std::atomic<trace::Session*> g_trace{nullptr};
std::atomic<const char*> g_activity{""};

char g_path[512] = "";
std::atomic<bool> g_handler_installed{false};

// --- allocation-free formatting into an fd ------------------------------
//
// A small append buffer flushed with write(2).  Every helper is
// signal-safe: no locks, no allocation, no errno-dependent behavior we
// care about (a failed write on the way down is not actionable).

struct Out {
  int fd;
  char buf[1024];
  std::size_t len = 0;

  void flush() {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t n = ::write(fd, buf + off, len - off);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
    len = 0;
  }
  void ch(char c) {
    if (len == sizeof buf) flush();
    buf[len++] = c;
  }
  void str(const char* s) {
    if (s == nullptr) return;
    for (; *s != '\0'; ++s) ch(*s);
  }
  void u64(std::uint64_t v) {
    char digits[20];
    unsigned n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) ch(digits[--n]);
  }
  void i64(std::int64_t v) {
    if (v < 0) {
      ch('-');
      u64(static_cast<std::uint64_t>(-(v + 1)) + 1);
    } else {
      u64(static_cast<std::uint64_t>(v));
    }
  }
};

void dump_metrics(Out& out, const metrics::SharedSnapshot& shared) {
  // Snapshot is ~2.5 KiB of PODs: fine on the stack, and read_into
  // allocates nothing.
  metrics::Snapshot snap;
  shared.read_into(&snap);
  out.str("== metrics (live, approximate) ==\n");
  for (unsigned i = 0; i < metrics::kCounterCount; ++i) {
    if (snap.counters[i] == 0) continue;
    out.str(metrics::counter_name(static_cast<metrics::Counter>(i)));
    out.ch(' ');
    out.u64(snap.counters[i]);
    out.ch('\n');
  }
  for (unsigned i = 0; i < metrics::kGaugeCount; ++i) {
    const metrics::GaugeCell& g = snap.gauges[i];
    if (g.value == 0 && g.max == 0) continue;
    out.str(metrics::gauge_name(static_cast<metrics::Gauge>(i)));
    out.ch(' ');
    out.i64(g.value);
    out.str(" (max ");
    out.i64(g.max);
    out.str(")\n");
  }
  for (unsigned i = 0; i < metrics::kHistogramCount; ++i) {
    const metrics::HistogramCell& h = snap.hists[i];
    if (h.count == 0) continue;
    out.str(metrics::histogram_name(static_cast<metrics::Histogram>(i)));
    out.str(" count ");
    out.u64(h.count);
    out.str(" sum ");
    out.u64(h.sum);
    out.ch('\n');
  }
}

void dump_inflight(Out& out, const InflightTable& table) {
  out.str("== in-flight specs ==\n");
  char text[InflightTable::kChars];
  unsigned busy = 0;
  for (unsigned s = 0; s < InflightTable::kSlots; ++s) {
    if (!table.read(s, text)) continue;
    ++busy;
    out.str("slot ");
    out.u64(s);
    out.str(": ");
    out.str(text);
    out.ch('\n');
  }
  if (busy == 0) out.str("(all slots idle)\n");
}

void dump_trace_tails(Out& out, trace::Session& session) {
  out.str("== trace ring tails ==\n");
  const trace::Buffer* bufs[trace::Session::kCrashSlots];
  const unsigned n =
      session.crash_buffers(bufs, trace::Session::kCrashSlots);
  trace::Event tail[16];
  for (unsigned i = 0; i < n; ++i) {
    const trace::Buffer* b = bufs[i];
    if (b == nullptr) continue;
    out.str("-- ");
    // Buffer names are std::strings set before any worker runs; reading
    // c_str() here is the same best-effort bet as the ring itself.
    out.str(b->name().c_str());
    out.str(" (recorded ");
    out.u64(b->recorded());
    out.str(", dropped ");
    out.u64(b->dropped());
    out.str(")\n");
    const std::size_t got = b->copy_tail(tail, 16);
    for (std::size_t e = 0; e < got; ++e) {
      out.str("  ");
      out.u64(tail[e].nanos);
      out.ch(' ');
      out.str(trace::event_kind_name(tail[e].kind));
      out.str(" w");
      out.u64(tail[e].worker);
      out.str(" a=");
      out.u64(tail[e].a);
      out.str(" b=");
      out.u64(tail[e].b);
      if (tail[e].label != nullptr && tail[e].label[0] != '\0') {
        out.ch(' ');
        out.str(tail[e].label);
      }
      out.ch('\n');
    }
  }
  if (n == 0) out.str("(no buffers registered)\n");
}

void handler(int sig) {
  int fd = STDERR_FILENO;
  int opened = -1;
  if (g_path[0] != '\0') {
    opened = ::open(g_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (opened >= 0) fd = opened;
  }
  const char* name = "fatal signal";
  switch (sig) {
    case SIGSEGV: name = "SIGSEGV"; break;
    case SIGBUS: name = "SIGBUS"; break;
    case SIGILL: name = "SIGILL"; break;
    case SIGFPE: name = "SIGFPE"; break;
    case SIGABRT: name = "SIGABRT"; break;
  }
  write_postmortem(fd, name);
  if (opened >= 0) ::close(opened);
  // Re-raise with the default disposition so the process dies with the
  // honest wait status (and a core, if the system wants one).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void set_sources(const PostmortemSources& s) {
  g_metrics.store(s.metrics, std::memory_order_release);
  g_inflight.store(s.inflight, std::memory_order_release);
  g_trace.store(s.trace_session, std::memory_order_release);
  g_activity.store(s.activity != nullptr ? s.activity : "",
                   std::memory_order_release);
}

void clear_sources() { set_sources(PostmortemSources{}); }

unsigned write_postmortem(int fd, const char* reason) {
  Out out{fd};
  out.str("=== rader post-mortem: ");
  out.str(reason);
  out.str(" ===\n");
  const char* activity = g_activity.load(std::memory_order_acquire);
  if (activity != nullptr && activity[0] != '\0') {
    out.str("activity: ");
    out.str(activity);
    out.ch('\n');
  }
  unsigned sections = 0;
  if (const metrics::SharedSnapshot* m =
          g_metrics.load(std::memory_order_acquire)) {
    dump_metrics(out, *m);
    ++sections;
  }
  if (const InflightTable* t = g_inflight.load(std::memory_order_acquire)) {
    dump_inflight(out, *t);
    ++sections;
  }
  if (trace::Session* s = g_trace.load(std::memory_order_acquire)) {
    dump_trace_tails(out, *s);
    ++sections;
  }
  out.str("=== end post-mortem ===\n");
  out.flush();
  return sections;
}

void install_signal_handler(const char* path) {
  if (path != nullptr) {
    std::size_t i = 0;
    for (; i < sizeof g_path - 1 && path[i] != '\0'; ++i) g_path[i] = path[i];
    g_path[i] = '\0';
  } else {
    g_path[0] = '\0';
  }
  if (g_handler_installed.exchange(true)) return;
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = &handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT}) {
    ::sigaction(sig, &sa, nullptr);
  }
}

const char* postmortem_path() { return g_path; }

}  // namespace rader::crash
