// Internals shared by the sweep's execution backends (core/sweep.cpp and
// core/sweep_isolated.cpp) — not part of the public sweep API.
//
// The heart is SpecExecutor: the per-spec execution engine extracted from
// the worker loops so the SAME code path runs a family member whether the
// caller is an in-process worker thread or a sandboxed child process
// (--isolate=procs).  That sharing is what makes the isolated sweep's
// surviving-spec results byte-identical to the in-process sweep's — there
// is only one way a spec gets executed.
//
// Metric accounting contract: SpecExecutor itself bumps only the metrics
// that describe work INTERNAL to a run (checkpoints, forks, resume
// fallbacks, divergence depth, the checkpoint gauge, detector-level
// counters via the run itself).  The three per-spec accounting metrics —
// kSpecRuns, kSweepDedupReuses, kSpecRunNanos — are the CALLER's job:
// thread workers bump them directly (exactly as before the extraction),
// while a sandbox child does NOT — its supervisor bumps them from the
// per-spec wire lines it actually received, so specs lost in a child crash
// are never counted and conservation (spec_runs == kSpecRuns +
// kSweepDedupReuses over the merged prefix) holds even across failures.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/race_report.hpp"
#include "core/spplus.hpp"
#include "core/sweep.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"
#include "tool/sampling.hpp"

namespace rader::sweep_internal {

/// One node of a run's checkpoint stack: the engine snapshot at a
/// continuation point, a frozen detector fork (never fed events — only
/// re-forked when a run resumes here), and the unstamped race log at capture
/// time.  The stack holds checkpoints of the latest run in increasing point
/// order; the entries at or above a divergence point stay valid for the next
/// run, which is exactly the trie structure of the family.
struct PrefixCheckpoint {
  EngineCheckpoint engine;
  std::unique_ptr<Tool> tool;
  RaceLog log;
};

/// First trail index where `spec` decides differently from the recorded
/// execution — computed offline, with no program execution, because
/// specifications are pure functions of the recorded contexts.  Returns
/// trail.size() when every decision matches — identical decisions mean an
/// identical execution.
std::size_t divergence_depth(const spec::StealSpec& spec,
                             const DecisionTrail& trail);

/// Executes family members one at a time, carrying the cross-spec state the
/// prefix strategy needs (decision trail, checkpoint stack, last run's log)
/// between calls.  One instance per worker thread / per sandbox child; the
/// family, factory, and options must outlive it.  run() calls with
/// ascending indices realize the prefix strategy's trie walk; any order is
/// correct (each run is self-contained), just slower.
///
/// Sampling (options.sampling.enabled) forces rerun semantics internally —
/// prefix checkpoints carry detector state across specs, and each spec
/// samples a different granule set, so a resumed checkpoint would mix two
/// sample sets.
class SpecExecutor {
 public:
  SpecExecutor(const ProgramFactory& make_program,
               const std::vector<std::unique_ptr<spec::StealSpec>>& family,
               const SweepOptions& options);
  ~SpecExecutor();

  SpecExecutor(const SpecExecutor&) = delete;
  SpecExecutor& operator=(const SpecExecutor&) = delete;

  struct RunOutcome {
    bool executed = false;     // false = prefix dedup reused the last log
    std::uint64_t nanos = 0;   // execution wall time (0 when !executed)
  };

  /// Execute (or dedup-reuse) family[i] into `*out`, which is overwritten
  /// and left UNSTAMPED (no found_under/eliciting_specs) — callers stamp
  /// with family[i]->describe() themselves.  Fires the "sweep.spec"
  /// faultpoint (detail = i) before doing anything, so injected crashes
  /// land attributably at spec granularity.
  RunOutcome run(std::size_t i, RaceLog* out);

 private:
  RunOutcome run_rerun(std::size_t i, RaceLog* out);
  RunOutcome run_prefix(std::size_t i, RaceLog* out);
  void on_point(std::size_t idx);
  void drop_checkpoints(std::size_t keep);

  const ProgramFactory& make_program_;
  const std::vector<std::unique_ptr<spec::StealSpec>>& family_;
  const SweepOptions& options_;
  const bool prefix_;
  const unsigned stride_;

  std::function<void()> program_;        // this executor's program instance
  DecisionTrail trail_;                  // decisions of the latest run
  std::vector<PrefixCheckpoint> ckpts_;  // checkpoints along it, ascending
  RaceLog last_log_;                     // latest run's UNSTAMPED log
  bool has_last_ = false;

  // Live-run plumbing for the point hook.
  SerialEngine* eng_ = nullptr;
  Tool* cur_tool_ = nullptr;
  RaceLog* cur_out_ = nullptr;
};

/// The --isolate=procs backend (core/sweep_isolated.cpp): shard the family
/// across sandboxed child processes and supervise retries/quarantine.
/// Called by sweep_family() — use that entry point, not this one.
SweepResult sweep_family_isolated(
    const ProgramFactory& make_program,
    const std::vector<std::unique_ptr<spec::StealSpec>>& family,
    const SweepOptions& options);

}  // namespace rader::sweep_internal
