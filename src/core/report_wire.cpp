#include "core/report_wire.hpp"

#include <charconv>
#include <cstdlib>
#include <vector>

namespace rader {

namespace {

/// Minimal recursive-descent parser for the JSON subset RaceLog::to_json()
/// emits (objects, arrays, strings with \" \\ \n \t \uXXXX escapes,
/// unsigned integers, booleans, null).  Unknown members are skipped, so a
/// newer producer's additive fields do not break an older supervisor.
struct Parser {
  const char* p;
  const char* end;
  std::string* error;

  bool fail(const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool expect(char c) {
    skip_ws();
    if (p >= end || *p != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++p;
    return true;
  }

  bool peek_is(char c) {
    skip_ws();
    return p < end && *p == c;
  }

  bool parse_string(std::string* out) {
    if (!expect('"')) return false;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) return fail("truncated escape");
      const char e = *p++;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u': {
          if (end - p < 4) return fail("truncated \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = *p++;
            v <<= 4;
            if (h >= '0' && h <= '9') {
              v |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              v |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              v |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // The writer only escapes control characters this way; anything
          // wider is stored as UTF-8 already.
          out->push_back(static_cast<char>(v & 0xff));
          break;
        }
        default: return fail("unknown escape");
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_u64(std::uint64_t* out) {
    skip_ws();
    const char* start = p;
    char buf[32];
    std::size_t n = 0;
    while (p < end && *p >= '0' && *p <= '9' && n < sizeof buf - 1) {
      buf[n++] = *p++;
    }
    if (n == 0) return fail("expected integer");
    if (p < end && *p >= '0' && *p <= '9') return fail("integer too long");
    buf[n] = '\0';
    char* endp = nullptr;
    *out = std::strtoull(buf, &endp, 10);
    (void)start;
    return true;
  }

  bool parse_bool(bool* out) {
    skip_ws();
    if (end - p >= 4 && std::string_view(p, 4) == "true") {
      p += 4;
      *out = true;
      return true;
    }
    if (end - p >= 5 && std::string_view(p, 5) == "false") {
      p += 5;
      *out = false;
      return true;
    }
    return fail("expected boolean");
  }

  /// Skip any value; when `raw` is non-null, capture its exact text (used
  /// to carry provenance objects verbatim).  Depth-capped so adversarial
  /// nesting cannot blow the stack.
  bool skip_value(std::string* raw, int depth = 0) {
    if (depth > 64) return fail("nesting too deep");
    skip_ws();
    const char* start = p;
    if (p >= end) return fail("truncated value");
    bool ok = true;
    if (*p == '"') {
      std::string s;
      ok = parse_string(&s);
    } else if (*p == '{') {
      ++p;
      if (!peek_is('}')) {
        do {
          std::string key;
          if (!parse_string(&key) || !expect(':') ||
              !skip_value(nullptr, depth + 1)) {
            return false;
          }
        } while (peek_is(',') && expect(','));
      }
      ok = expect('}');
    } else if (*p == '[') {
      ++p;
      if (!peek_is(']')) {
        do {
          if (!skip_value(nullptr, depth + 1)) return false;
        } while (peek_is(',') && expect(','));
      }
      ok = expect(']');
    } else if (*p == 't' || *p == 'f') {
      bool b;
      ok = parse_bool(&b);
    } else if (end - p >= 4 && std::string_view(p, 4) == "null") {
      p += 4;
    } else {
      while (p < end && (*p == '-' || *p == '+' || *p == '.' || *p == 'e' ||
                         *p == 'E' || (*p >= '0' && *p <= '9'))) {
        ++p;
      }
      if (p == start) return fail("unparseable value");
    }
    if (ok && raw != nullptr) raw->assign(start, p);
    return ok;
  }

  bool parse_string_array(std::vector<std::string>* out) {
    if (!expect('[')) return false;
    out->clear();
    if (peek_is(']')) return expect(']');
    do {
      std::string s;
      if (!parse_string(&s)) return false;
      out->push_back(std::move(s));
    } while (peek_is(',') && expect(','));
    return expect(']');
  }
};

bool parse_view_read(Parser& ps, ViewReadRace* r) {
  if (!ps.expect('{')) return false;
  if (ps.peek_is('}')) return ps.expect('}');
  do {
    std::string key;
    if (!ps.parse_string(&key) || !ps.expect(':')) return false;
    std::uint64_t u = 0;
    if (key == "reducer") {
      if (!ps.parse_u64(&u)) return false;
      r->reducer = static_cast<ReducerId>(u);
    } else if (key == "prior_frame") {
      if (!ps.parse_u64(&u)) return false;
      r->prior_frame = static_cast<FrameId>(u);
    } else if (key == "current_frame") {
      if (!ps.parse_u64(&u)) return false;
      r->current_frame = static_cast<FrameId>(u);
    } else if (key == "occurrences") {
      if (!ps.parse_u64(&r->occurrences)) return false;
    } else if (key == "prior_label") {
      if (!ps.parse_string(&r->prior_label)) return false;
    } else if (key == "current_label") {
      if (!ps.parse_string(&r->current_label)) return false;
    } else if (key == "found_under") {
      if (!ps.parse_string(&r->found_under)) return false;
    } else if (key == "eliciting_specs") {
      if (!ps.parse_string_array(&r->eliciting_specs)) return false;
    } else if (key == "provenance") {
      if (!ps.skip_value(&r->provenance_json)) return false;
    } else if (key == "repro_file") {
      if (!ps.parse_string(&r->repro_file)) return false;
    } else {
      if (!ps.skip_value(nullptr)) return false;
    }
  } while (ps.peek_is(',') && ps.expect(','));
  return ps.expect('}');
}

bool parse_determinacy(Parser& ps, DeterminacyRace* r) {
  if (!ps.expect('{')) return false;
  if (ps.peek_is('}')) return ps.expect('}');
  do {
    std::string key;
    if (!ps.parse_string(&key) || !ps.expect(':')) return false;
    std::uint64_t u = 0;
    if (key == "addr") {
      if (!ps.parse_u64(&u)) return false;
      r->addr = static_cast<std::uintptr_t>(u);
    } else if (key == "kind") {
      std::string kind;
      if (!ps.parse_string(&kind)) return false;
      r->current_kind =
          kind == "write" ? AccessKind::kWrite : AccessKind::kRead;
    } else if (key == "view_aware") {
      if (!ps.parse_bool(&r->current_view_aware)) return false;
    } else if (key == "prior_was_write") {
      if (!ps.parse_bool(&r->prior_was_write)) return false;
    } else if (key == "prior_frame") {
      if (!ps.parse_u64(&u)) return false;
      r->prior_frame = static_cast<FrameId>(u);
    } else if (key == "current_frame") {
      if (!ps.parse_u64(&u)) return false;
      r->current_frame = static_cast<FrameId>(u);
    } else if (key == "occurrences") {
      if (!ps.parse_u64(&r->occurrences)) return false;
    } else if (key == "label") {
      if (!ps.parse_string(&r->current_label)) return false;
    } else if (key == "found_under") {
      if (!ps.parse_string(&r->found_under)) return false;
    } else if (key == "eliciting_specs") {
      if (!ps.parse_string_array(&r->eliciting_specs)) return false;
    } else if (key == "provenance") {
      if (!ps.skip_value(&r->provenance_json)) return false;
    } else if (key == "repro_file") {
      if (!ps.parse_string(&r->repro_file)) return false;
    } else {
      if (!ps.skip_value(nullptr)) return false;
    }
  } while (ps.peek_is(',') && ps.expect(','));
  return ps.expect('}');
}

}  // namespace

bool race_log_from_json(const std::string& json, RaceLog* out,
                        std::string* error) {
  Parser ps{json.data(), json.data() + json.size(), error};
  std::uint64_t vr_total = 0;
  std::uint64_t det_total = 0;
  std::vector<ViewReadRace> view_reads;
  std::vector<DeterminacyRace> determinacies;

  if (!ps.expect('{')) return false;
  if (!ps.peek_is('}')) {
    do {
      std::string key;
      if (!ps.parse_string(&key) || !ps.expect(':')) return false;
      if (key == "view_read_occurrences") {
        if (!ps.parse_u64(&vr_total)) return false;
      } else if (key == "determinacy_occurrences") {
        if (!ps.parse_u64(&det_total)) return false;
      } else if (key == "view_read_races") {
        if (!ps.expect('[')) return false;
        if (!ps.peek_is(']')) {
          do {
            ViewReadRace r;
            if (!parse_view_read(ps, &r)) return false;
            view_reads.push_back(std::move(r));
          } while (ps.peek_is(',') && ps.expect(','));
        }
        if (!ps.expect(']')) return false;
      } else if (key == "determinacy_races") {
        if (!ps.expect('[')) return false;
        if (!ps.peek_is(']')) {
          do {
            DeterminacyRace r;
            if (!parse_determinacy(ps, &r)) return false;
            determinacies.push_back(std::move(r));
          } while (ps.peek_is(',') && ps.expect(','));
        }
        if (!ps.expect(']')) return false;
      } else {
        if (!ps.skip_value(nullptr)) return false;
      }
    } while (ps.peek_is(',') && ps.expect(','));
  }
  if (!ps.expect('}')) return false;
  ps.skip_ws();
  if (ps.p != ps.end) return ps.fail("trailing bytes after race log");

  // The totals are occurrence *sums*; the stored reports can only account
  // for at most that many (cap-dropped identities tally but do not store).
  std::uint64_t vr_stored = 0;
  for (const auto& r : view_reads) vr_stored += r.occurrences;
  std::uint64_t det_stored = 0;
  for (const auto& r : determinacies) det_stored += r.occurrences;
  if (vr_stored > vr_total || det_stored > det_total) {
    return ps.fail("stored occurrences exceed declared totals");
  }

  // Rebuild through the public report path so dedup maps, identity keys,
  // and eliciting-spec order come out exactly as the producer had them.
  // Metrics stay silent: the producer's detector/dedup bumps already
  // happened in its process and travel in its metrics snapshot.
  out->clear();
  {
    metrics::Scope metrics_off(nullptr);
    for (const auto& r : view_reads) out->report_view_read(r);
    for (const auto& r : determinacies) out->report_determinacy(r);
    out->add_unstored_occurrences(vr_total - vr_stored,
                                  det_total - det_stored);
  }
  return true;
}

std::string snapshot_to_wire(const metrics::Snapshot& snap) {
  using namespace metrics;
  constexpr unsigned kWords = kCounterCount + kPhaseCount + 2 * kGaugeCount +
                              kHistogramCount * (2 + kHistogramBuckets);
  // std::to_chars into one preallocated buffer: this runs once per swept
  // spec inside the sandbox child, so it must not dominate the per-spec
  // supervisor tax the isolation_overhead bench gates.
  std::string out;
  out.resize((kWords + 1) * 21);  // u64 max is 20 digits, plus a separator
  char* p = out.data();
  char* const end = out.data() + out.size();
  p = std::to_chars(p, end, kWords).ptr;
  const auto put = [&p, end](std::uint64_t v) {
    *p++ = ' ';
    p = std::to_chars(p, end, v).ptr;
  };
  for (unsigned c = 0; c < kCounterCount; ++c) put(snap.counters[c]);
  for (unsigned ph = 0; ph < kPhaseCount; ++ph) put(snap.phase_nanos[ph]);
  for (unsigned g = 0; g < kGaugeCount; ++g) {
    put(static_cast<std::uint64_t>(snap.gauges[g].value));
    put(static_cast<std::uint64_t>(snap.gauges[g].max));
  }
  for (unsigned h = 0; h < kHistogramCount; ++h) {
    put(snap.hists[h].count);
    put(snap.hists[h].sum);
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      put(snap.hists[h].buckets[b]);
    }
  }
  out.resize(static_cast<std::size_t>(p - out.data()));
  return out;
}

bool snapshot_from_wire(const std::string& text, metrics::Snapshot* out) {
  using namespace metrics;
  constexpr unsigned kWords = kCounterCount + kPhaseCount + 2 * kGaugeCount +
                              kHistogramCount * (2 + kHistogramBuckets);
  const char* p = text.c_str();
  const auto next = [&p](std::uint64_t* v) {
    char* end = nullptr;
    *v = std::strtoull(p, &end, 10);
    if (end == p) return false;
    p = end;
    return true;
  };
  std::uint64_t count = 0;
  if (!next(&count) || count != kWords) return false;
  *out = Snapshot{};
  std::uint64_t v = 0;
  for (unsigned c = 0; c < kCounterCount; ++c) {
    if (!next(&v)) return false;
    out->counters[c] = v;
  }
  for (unsigned ph = 0; ph < kPhaseCount; ++ph) {
    if (!next(&v)) return false;
    out->phase_nanos[ph] = v;
  }
  for (unsigned g = 0; g < kGaugeCount; ++g) {
    if (!next(&v)) return false;
    out->gauges[g].value = static_cast<std::int64_t>(v);
    if (!next(&v)) return false;
    out->gauges[g].max = static_cast<std::int64_t>(v);
  }
  for (unsigned h = 0; h < kHistogramCount; ++h) {
    if (!next(&v)) return false;
    out->hists[h].count = v;
    if (!next(&v)) return false;
    out->hists[h].sum = v;
    for (unsigned b = 0; b < kHistogramBuckets; ++b) {
      if (!next(&v)) return false;
      out->hists[h].buckets[b] = v;
    }
  }
  while (*p == ' ') ++p;
  return *p == '\0';
}

}  // namespace rader
