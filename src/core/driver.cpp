#include "core/driver.hpp"

#include <algorithm>

namespace rader {

RaceLog Rader::check_view_read(FnView program) {
  RaceLog log;
  PeerSetDetector detector(&log);
  spec::NoSteal no_steal;
  run_serial(program, &detector, &no_steal);
  return log;
}

RaceLog Rader::check_determinacy(FnView program,
                                 const spec::StealSpec& steal_spec) {
  RaceLog log;
  SpPlusDetector detector(&log);
  run_serial(program, &detector, &steal_spec);
  log.stamp_found_under(steal_spec.describe());
  return log;
}

RaceLog Rader::check_spbags(FnView program) {
  RaceLog log;
  SpBagsDetector detector(&log);
  spec::NoSteal no_steal;
  run_serial(program, &detector, &no_steal);
  return log;
}

RaceLog Rader::check_with_family(
    FnView program,
    const std::vector<std::unique_ptr<spec::StealSpec>>& family) {
  RaceLog merged;
  for (const auto& steal_spec : family) {
    merged.merge(check_determinacy(program, *steal_spec));
  }
  return merged;
}

Rader::ExhaustiveResult Rader::check_exhaustive(FnView program,
                                                std::uint32_t k_cap,
                                                std::uint64_t depth_cap) {
  ExhaustiveResult result;

  // Probe run: learn K and D (and find view-read races with Peer-Set).
  {
    PeerSetDetector peerset(&result.log);
    spec::NoSteal no_steal;
    result.probe_stats = run_serial(program, &peerset, &no_steal);
  }
  result.k = std::min<std::uint32_t>(result.probe_stats.max_sync_block, k_cap);
  result.depth =
      std::min<std::uint64_t>(result.probe_stats.max_spawn_depth, depth_cap);

  // SP+ under no steals (== SP-bags coverage of the serial schedule).
  {
    spec::NoSteal no_steal;
    result.log.merge(check_determinacy(program, no_steal));
    ++result.spec_runs;
  }

  // The O(KD + K³) family of Section 7.
  const auto family = spec::full_coverage_family(result.k, result.depth);
  for (const auto& steal_spec : family) {
    result.log.merge(check_determinacy(program, *steal_spec));
    ++result.spec_runs;
  }
  return result;
}

}  // namespace rader
