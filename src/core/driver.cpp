#include "core/driver.hpp"

#include <algorithm>

#include "sched/parallel_engine.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"

namespace rader {

namespace {

/// Wrap `detector` when sampling is on, seeding from the spec description
/// so every entry point derives sample sets the same way the sweep does.
std::unique_ptr<SamplingTool> maybe_sampler(Tool* detector,
                                            const SamplingConfig& sampling,
                                            const std::string& spec_describe) {
  if (!sampling.enabled) return nullptr;
  SamplingConfig cfg = sampling;
  cfg.seed = sampling_seed_for_spec(cfg.seed, spec_describe);
  return std::make_unique<SamplingTool>(detector, cfg);
}

}  // namespace

RaceLog Rader::check_view_read(FnView program,
                               const SamplingConfig& sampling) {
  RaceLog log;
  PeerSetDetector detector(&log);
  spec::NoSteal no_steal;
  auto sampler = maybe_sampler(&detector, sampling, no_steal.describe());
  run_serial(program, sampler ? (Tool*)sampler.get() : &detector, &no_steal);
  return log;
}

RaceLog Rader::check_parallel(FnView program, unsigned workers) {
  RaceLog log;
  ParallelPeerSet tool(&log);
  ParallelEngine engine(workers);
  engine.set_tool(&tool);
  {
    metrics::PhaseTimer timer(metrics::Phase::kExecute);
    engine.run(program);
  }
  return log;
}

RaceLog Rader::check_determinacy(FnView program,
                                 const spec::StealSpec& steal_spec,
                                 const SamplingConfig& sampling) {
  RaceLog log;
  SpPlusDetector detector(&log);
  auto sampler = maybe_sampler(&detector, sampling, steal_spec.describe());
  {
    metrics::PhaseTimer timer(metrics::Phase::kExecute);
    run_serial(program, sampler ? (Tool*)sampler.get() : &detector,
               &steal_spec);
  }
  metrics::bump(metrics::Counter::kSpecRuns);
  log.stamp_found_under(steal_spec.describe());
  return log;
}

RaceLog Rader::check_spbags(FnView program, const SamplingConfig& sampling) {
  RaceLog log;
  SpBagsDetector detector(&log);
  spec::NoSteal no_steal;
  auto sampler = maybe_sampler(&detector, sampling, no_steal.describe());
  run_serial(program, sampler ? (Tool*)sampler.get() : &detector, &no_steal);
  return log;
}

RaceLog Rader::check_with_family(
    FnView program,
    const std::vector<std::unique_ptr<spec::StealSpec>>& family,
    const SamplingConfig& sampling) {
  RaceLog merged;
  for (const auto& steal_spec : family) {
    merged.merge(check_determinacy(program, *steal_spec, sampling));
  }
  return merged;
}

SweepResult Rader::check_with_family(
    const ProgramFactory& make_program,
    const std::vector<std::unique_ptr<spec::StealSpec>>& family,
    const SweepOptions& options) {
  return sweep_family(make_program, family, options);
}

namespace {

/// The Section-7 coverage family with the no-steal spec prepended (SP-bags
/// coverage of the serial schedule), sized by the probe run's K and D.
std::vector<std::unique_ptr<spec::StealSpec>> exhaustive_family(
    std::uint32_t k, std::uint64_t depth) {
  std::vector<std::unique_ptr<spec::StealSpec>> family;
  family.push_back(std::make_unique<spec::NoSteal>());
  auto coverage = spec::full_coverage_family(k, depth);
  family.reserve(1 + coverage.size());
  for (auto& steal_spec : coverage) family.push_back(std::move(steal_spec));
  return family;
}

}  // namespace

Rader::ExhaustiveResult Rader::check_exhaustive(FnView program,
                                                std::uint32_t k_cap,
                                                std::uint64_t depth_cap,
                                                const SamplingConfig& sampling) {
  ExhaustiveResult result;

  // Probe run: learn K and D (and find view-read races with Peer-Set).
  {
    metrics::PhaseTimer timer(metrics::Phase::kProbe);
    prof::Phase probe_phase("probe");
    PeerSetDetector peerset(&result.log);
    spec::NoSteal no_steal;
    auto sampler = maybe_sampler(&peerset, sampling, no_steal.describe());
    result.probe_stats = run_serial(
        program, sampler ? (Tool*)sampler.get() : &peerset, &no_steal);
  }
  result.k = std::min<std::uint32_t>(result.probe_stats.max_sync_block, k_cap);
  result.depth =
      std::min<std::uint64_t>(result.probe_stats.max_spawn_depth, depth_cap);

  // No-steal spec + the O(KD + K³) family of Section 7.
  const auto family = exhaustive_family(result.k, result.depth);
  for (const auto& steal_spec : family) {
    result.log.merge(check_determinacy(program, *steal_spec, sampling));
    ++result.spec_runs;
  }
  return result;
}

Rader::ExhaustiveResult Rader::check_exhaustive(
    const ProgramFactory& make_program, const SweepOptions& options,
    std::uint32_t k_cap, std::uint64_t depth_cap) {
  ExhaustiveResult result;

  // Serial probe on the calling thread: learn K and D, catch view-read
  // races with Peer-Set.
  auto probe_program = make_program();
  {
    metrics::PhaseTimer timer(metrics::Phase::kProbe);
    prof::Phase probe_phase("probe");
    PeerSetDetector peerset(&result.log);
    spec::NoSteal no_steal;
    auto sampler =
        maybe_sampler(&peerset, options.sampling, no_steal.describe());
    result.probe_stats = run_serial(
        probe_program, sampler ? (Tool*)sampler.get() : &peerset, &no_steal);
  }
  result.k = std::min<std::uint32_t>(result.probe_stats.max_sync_block, k_cap);
  result.depth =
      std::min<std::uint64_t>(result.probe_stats.max_spawn_depth, depth_cap);

  const auto family = exhaustive_family(result.k, result.depth);
  if (options.stop_after_first_race && result.log.any()) {
    result.specs_skipped = family.size();
    return result;
  }
  SweepResult sweep = sweep_family(make_program, family, options);
  result.log.merge(sweep.log);
  result.spec_runs = sweep.spec_runs;
  result.specs_skipped = sweep.specs_skipped;
  result.failures = std::move(sweep.failures);
  return result;
}

}  // namespace rader
