#include "core/race_report.hpp"

#include <sstream>

namespace rader {

void RaceLog::report_view_read(const ViewReadRace& r) {
  ++view_read_count_;
  if (!seen_reducers_.insert(r.reducer).second) return;  // dedup per reducer
  if (view_read_races_.size() < max_stored_) view_read_races_.push_back(r);
}

void RaceLog::report_determinacy(const DeterminacyRace& r) {
  ++determinacy_count_;
  if (!seen_addrs_.insert(r.addr).second) return;  // dedup per location
  if (determinacy_races_.size() < max_stored_) determinacy_races_.push_back(r);
}

void RaceLog::merge(const RaceLog& other) {
  for (const auto& r : other.view_read_races_) {
    if (seen_reducers_.insert(r.reducer).second &&
        view_read_races_.size() < max_stored_) {
      view_read_races_.push_back(r);
    }
  }
  for (const auto& r : other.determinacy_races_) {
    if (seen_addrs_.insert(r.addr).second &&
        determinacy_races_.size() < max_stored_) {
      determinacy_races_.push_back(r);
    }
  }
  view_read_count_ += other.view_read_count_;
  determinacy_count_ += other.determinacy_count_;
}

void RaceLog::stamp_found_under(const std::string& spec_description) {
  for (auto& r : view_read_races_) {
    if (r.found_under.empty()) r.found_under = spec_description;
  }
  for (auto& r : determinacy_races_) {
    if (r.found_under.empty()) r.found_under = spec_description;
  }
}

std::string RaceLog::to_string() const {
  std::ostringstream os;
  os << "RaceLog: " << view_read_count_ << " view-read race occurrence(s) ("
     << view_read_races_.size() << " distinct reducer(s)), "
     << determinacy_count_ << " determinacy race occurrence(s) ("
     << determinacy_races_.size() << " distinct location(s))\n";
  for (const auto& r : view_read_races_) {
    os << "  view-read race on reducer #" << r.reducer << ": read at '"
       << r.prior_label << "' (frame " << r.prior_frame
       << ") has different peers than read at '" << r.current_label
       << "' (frame " << r.current_frame << ")";
    if (!r.found_under.empty()) os << " [replay: " << r.found_under << "]";
    os << "\n";
  }
  for (const auto& r : determinacy_races_) {
    os << "  determinacy race at 0x" << std::hex << r.addr << std::dec << ": "
       << (r.current_kind == AccessKind::kWrite ? "write" : "read") << " ('"
       << r.current_label << "', frame " << r.current_frame << ", "
       << (r.current_view_aware ? "view-aware" : "view-oblivious")
       << ") races with earlier "
       << (r.prior_was_write ? "write" : "read") << " by frame "
       << r.prior_frame;
    if (!r.found_under.empty()) os << " [replay: " << r.found_under << "]";
    os << "\n";
  }
  return os.str();
}

namespace {

void append_json_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string RaceLog::to_json() const {
  std::ostringstream os;
  os << "{\"view_read_occurrences\":" << view_read_count_
     << ",\"determinacy_occurrences\":" << determinacy_count_
     << ",\"view_read_races\":[";
  for (std::size_t i = 0; i < view_read_races_.size(); ++i) {
    const auto& r = view_read_races_[i];
    if (i != 0) os << ',';
    os << "{\"reducer\":" << r.reducer << ",\"prior_frame\":" << r.prior_frame
       << ",\"current_frame\":" << r.current_frame << ",\"prior_label\":";
    append_json_escaped(os, r.prior_label);
    os << ",\"current_label\":";
    append_json_escaped(os, r.current_label);
    os << ",\"found_under\":";
    append_json_escaped(os, r.found_under);
    os << '}';
  }
  os << "],\"determinacy_races\":[";
  for (std::size_t i = 0; i < determinacy_races_.size(); ++i) {
    const auto& r = determinacy_races_[i];
    if (i != 0) os << ',';
    os << "{\"addr\":" << r.addr << ",\"kind\":\""
       << (r.current_kind == AccessKind::kWrite ? "write" : "read")
       << "\",\"view_aware\":" << (r.current_view_aware ? "true" : "false")
       << ",\"prior_was_write\":" << (r.prior_was_write ? "true" : "false")
       << ",\"prior_frame\":" << r.prior_frame
       << ",\"current_frame\":" << r.current_frame << ",\"label\":";
    append_json_escaped(os, r.current_label);
    os << ",\"found_under\":";
    append_json_escaped(os, r.found_under);
    os << '}';
  }
  os << "]}";
  return os.str();
}

void RaceLog::clear() {
  view_read_count_ = 0;
  determinacy_count_ = 0;
  view_read_races_.clear();
  determinacy_races_.clear();
  seen_reducers_.clear();
  seen_addrs_.clear();
}

}  // namespace rader
