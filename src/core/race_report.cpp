#include "core/race_report.hpp"

#include <algorithm>
#include <sstream>

#include "support/common.hpp"
#include "support/metrics.hpp"

namespace rader {

namespace {

/// Append `spec` to `specs` unless already present (specs stay in first-seen
/// order, so specs[0] == found_under for stamped reports).
void add_spec(std::vector<std::string>& specs, const std::string& spec) {
  if (spec.empty()) return;
  if (std::find(specs.begin(), specs.end(), spec) != specs.end()) return;
  specs.push_back(spec);
}

std::size_t combine(std::size_t seed, std::size_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::size_t RaceLog::KeyHash::operator()(const ViewReadKey& k) const {
  std::size_t h = std::hash<ReducerId>{}(k.reducer);
  h = combine(h, std::hash<std::string>{}(k.prior_label));
  h = combine(h, std::hash<std::string>{}(k.current_label));
  return h;
}

std::size_t RaceLog::KeyHash::operator()(const DeterminacyKey& k) const {
  std::size_t h = std::hash<std::uintptr_t>{}(k.addr);
  h = combine(h, static_cast<std::size_t>(k.current_kind));
  h = combine(h, (k.current_view_aware ? 2u : 0u) |
                     (k.prior_was_write ? 1u : 0u));
  h = combine(h, std::hash<std::string>{}(k.current_label));
  return h;
}

void RaceLog::absorb_view_read(const ViewReadRace& r) {
  ViewReadKey key{r.reducer, r.prior_label, r.current_label};
  const auto it = seen_view_reads_.find(key);
  if (it == seen_view_reads_.end()) {
    metrics::bump(metrics::Counter::kRacesReported);
    std::size_t idx = kDropped;
    if (view_read_races_.size() < max_stored_) {
      idx = view_read_races_.size();
      view_read_races_.push_back(r);
      add_spec(view_read_races_.back().eliciting_specs, r.found_under);
    }
    seen_view_reads_.emplace(std::move(key), idx);
    return;
  }
  metrics::bump(metrics::Counter::kRacesDeduped);
  if (it->second == kDropped) return;
  ViewReadRace& stored = view_read_races_[it->second];
  stored.occurrences += r.occurrences;
  add_spec(stored.eliciting_specs, r.found_under);
  for (const auto& s : r.eliciting_specs) add_spec(stored.eliciting_specs, s);
  if (stored.provenance_json.empty() && !r.provenance_json.empty()) {
    stored.provenance_json = r.provenance_json;
    stored.provenance_text = r.provenance_text;
  }
}

void RaceLog::absorb_determinacy(const DeterminacyRace& r) {
  DeterminacyKey key{r.addr, r.current_kind, r.current_view_aware,
                     r.prior_was_write, r.current_label};
  const auto it = seen_determinacy_.find(key);
  if (it == seen_determinacy_.end()) {
    metrics::bump(metrics::Counter::kRacesReported);
    std::size_t idx = kDropped;
    if (determinacy_races_.size() < max_stored_) {
      idx = determinacy_races_.size();
      determinacy_races_.push_back(r);
      add_spec(determinacy_races_.back().eliciting_specs, r.found_under);
    }
    seen_determinacy_.emplace(std::move(key), idx);
    return;
  }
  metrics::bump(metrics::Counter::kRacesDeduped);
  if (it->second == kDropped) return;
  DeterminacyRace& stored = determinacy_races_[it->second];
  stored.occurrences += r.occurrences;
  add_spec(stored.eliciting_specs, r.found_under);
  for (const auto& s : r.eliciting_specs) add_spec(stored.eliciting_specs, s);
  if (stored.provenance_json.empty() && !r.provenance_json.empty()) {
    stored.provenance_json = r.provenance_json;
    stored.provenance_text = r.provenance_text;
  }
}

void RaceLog::report_view_read(const ViewReadRace& r) {
  view_read_count_ += r.occurrences;
  absorb_view_read(r);
}

void RaceLog::report_determinacy(const DeterminacyRace& r) {
  determinacy_count_ += r.occurrences;
  absorb_determinacy(r);
}

void RaceLog::merge(const RaceLog& other) {
  view_read_count_ += other.view_read_count_;
  determinacy_count_ += other.determinacy_count_;
  for (const auto& r : other.view_read_races_) absorb_view_read(r);
  for (const auto& r : other.determinacy_races_) absorb_determinacy(r);
}

void RaceLog::set_view_read_provenance(std::size_t index, std::string json,
                                       std::string text) {
  RADER_CHECK(index < view_read_races_.size());
  view_read_races_[index].provenance_json = std::move(json);
  view_read_races_[index].provenance_text = std::move(text);
}

void RaceLog::set_determinacy_provenance(std::size_t index, std::string json,
                                         std::string text) {
  RADER_CHECK(index < determinacy_races_.size());
  determinacy_races_[index].provenance_json = std::move(json);
  determinacy_races_[index].provenance_text = std::move(text);
}

void RaceLog::stamp_found_under(const std::string& spec_description) {
  for (auto& r : view_read_races_) {
    if (r.found_under.empty()) r.found_under = spec_description;
    if (r.eliciting_specs.empty()) r.eliciting_specs.push_back(spec_description);
  }
  for (auto& r : determinacy_races_) {
    if (r.found_under.empty()) r.found_under = spec_description;
    if (r.eliciting_specs.empty()) r.eliciting_specs.push_back(spec_description);
  }
}

void RaceLog::stamp_repro_file(const std::string& path) {
  for (auto& r : view_read_races_) {
    if (r.repro_file.empty()) r.repro_file = path;
  }
  for (auto& r : determinacy_races_) {
    if (r.repro_file.empty()) r.repro_file = path;
  }
}

namespace {

/// " [replay: SPEC]" plus, when the race was elicited under several specs,
/// " (+N more specs)" — the dedup layer's footprint in the text report.
void append_replay(std::ostringstream& os,
                   const std::string& found_under,
                   const std::vector<std::string>& specs) {
  if (found_under.empty()) return;
  os << " [replay: " << found_under << "]";
  if (specs.size() > 1) os << " (+" << specs.size() - 1 << " more specs)";
}

/// Indent and append a multi-line provenance rendering under a race line.
void append_provenance_text(std::ostringstream& os, const std::string& text) {
  if (text.empty()) return;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) os << "    " << line << "\n";
}

}  // namespace

std::string RaceLog::to_string() const {
  std::ostringstream os;
  os << "RaceLog: " << view_read_count_ << " view-read race occurrence(s) ("
     << view_read_races_.size() << " distinct report(s)), "
     << determinacy_count_ << " determinacy race occurrence(s) ("
     << determinacy_races_.size() << " distinct report(s))\n";
  for (const auto& r : view_read_races_) {
    os << "  view-read race on reducer #" << r.reducer << ": read at '"
       << r.prior_label << "' (frame " << r.prior_frame
       << ") has different peers than read at '" << r.current_label
       << "' (frame " << r.current_frame << ")";
    append_replay(os, r.found_under, r.eliciting_specs);
    os << "\n";
    append_provenance_text(os, r.provenance_text);
  }
  for (const auto& r : determinacy_races_) {
    os << "  determinacy race at 0x" << std::hex << r.addr << std::dec << ": "
       << (r.current_kind == AccessKind::kWrite ? "write" : "read") << " ('"
       << r.current_label << "', frame " << r.current_frame << ", "
       << (r.current_view_aware ? "view-aware" : "view-oblivious")
       << ") races with earlier "
       << (r.prior_was_write ? "write" : "read") << " by frame "
       << r.prior_frame;
    append_replay(os, r.found_under, r.eliciting_specs);
    os << "\n";
    append_provenance_text(os, r.provenance_text);
  }
  return os.str();
}

namespace {

void append_json_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_json_specs(std::ostringstream& os,
                       const std::vector<std::string>& specs) {
  os << ",\"eliciting_specs\":[";
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (i != 0) os << ',';
    append_json_escaped(os, specs[i]);
  }
  os << ']';
}

}  // namespace

std::string RaceLog::to_json() const {
  std::ostringstream os;
  os << "{\"view_read_occurrences\":" << view_read_count_
     << ",\"determinacy_occurrences\":" << determinacy_count_
     << ",\"view_read_races\":[";
  for (std::size_t i = 0; i < view_read_races_.size(); ++i) {
    const auto& r = view_read_races_[i];
    if (i != 0) os << ',';
    os << "{\"reducer\":" << r.reducer << ",\"prior_frame\":" << r.prior_frame
       << ",\"current_frame\":" << r.current_frame
       << ",\"occurrences\":" << r.occurrences << ",\"prior_label\":";
    append_json_escaped(os, r.prior_label);
    os << ",\"current_label\":";
    append_json_escaped(os, r.current_label);
    os << ",\"found_under\":";
    append_json_escaped(os, r.found_under);
    append_json_specs(os, r.eliciting_specs);
    if (!r.provenance_json.empty()) {
      os << ",\"provenance\":" << r.provenance_json;
    }
    if (!r.repro_file.empty()) {
      os << ",\"repro_file\":";
      append_json_escaped(os, r.repro_file);
    }
    os << '}';
  }
  os << "],\"determinacy_races\":[";
  for (std::size_t i = 0; i < determinacy_races_.size(); ++i) {
    const auto& r = determinacy_races_[i];
    if (i != 0) os << ',';
    os << "{\"addr\":" << r.addr << ",\"kind\":\""
       << (r.current_kind == AccessKind::kWrite ? "write" : "read")
       << "\",\"view_aware\":" << (r.current_view_aware ? "true" : "false")
       << ",\"prior_was_write\":" << (r.prior_was_write ? "true" : "false")
       << ",\"prior_frame\":" << r.prior_frame
       << ",\"current_frame\":" << r.current_frame
       << ",\"occurrences\":" << r.occurrences << ",\"label\":";
    append_json_escaped(os, r.current_label);
    os << ",\"found_under\":";
    append_json_escaped(os, r.found_under);
    append_json_specs(os, r.eliciting_specs);
    if (!r.provenance_json.empty()) {
      os << ",\"provenance\":" << r.provenance_json;
    }
    if (!r.repro_file.empty()) {
      os << ",\"repro_file\":";
      append_json_escaped(os, r.repro_file);
    }
    os << '}';
  }
  os << "]}";
  return os.str();
}

void RaceLog::clear() {
  view_read_count_ = 0;
  determinacy_count_ = 0;
  view_read_races_.clear();
  determinacy_races_.clear();
  seen_view_reads_.clear();
  seen_determinacy_.clear();
}

}  // namespace rader
