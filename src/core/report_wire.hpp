// Cross-process wire codecs for the crash-isolated sweep.
//
// A sandboxed sweep child (core/sweep.hpp --isolate=procs) ships each
// completed spec's RaceLog to the supervisor as the one-line JSON that
// RaceLog::to_json() already emits, plus its metrics::Snapshot as a flat
// word list.  This header is the parsing half: reconstruct a RaceLog (or a
// Snapshot) from those lines so the supervisor's family-order merge runs on
// objects indistinguishable from the ones an in-process worker would have
// produced — that is what makes the isolated sweep's surviving-spec report
// byte-identical to the in-process sweep's.
//
// Fidelity contract (tests/core/report_wire_test.cpp): for any log built
// from report_*/merge/stamp_found_under calls,
//     RaceLog restored; race_log_from_json(log.to_json(), &restored, ...)
// yields a `restored` whose to_json() equals the input AND whose merge
// behavior matches the original's — stored reports carry every
// dedup-relevant field (identity keys, frames, occurrences, found_under,
// eliciting_specs, provenance JSON, repro_file), and cap-dropped occurrence
// totals are preserved via RaceLog::add_unstored_occurrences.  The one
// lossy field is provenance_text (the human rendering is not serialized by
// to_json; sweeps never populate it — provenance annotation happens after
// the merge).
#pragma once

#include <string>

#include "core/race_report.hpp"
#include "support/metrics.hpp"

namespace rader {

/// Parse the output of RaceLog::to_json() back into `*out` (which is
/// clear()ed first).  Returns false (and sets *error, if given) on
/// malformed input; `*out` is then unspecified.  Metrics are suppressed
/// during reconstruction — the original detector/merge bumps already
/// happened in the producing process and travel in its Snapshot.
bool race_log_from_json(const std::string& json, RaceLog* out,
                        std::string* error = nullptr);

/// Flatten a Snapshot to one space-separated decimal line (leading word
/// count, then counters, phase nanos, gauges as value/max pairs, histograms
/// as count/sum/buckets) — the same word order metrics::SharedSnapshot
/// uses.  No trailing newline.
std::string snapshot_to_wire(const metrics::Snapshot& snap);

/// Parse snapshot_to_wire output back into `*out` (overwritten).  Returns
/// false on malformed input or a word-count mismatch (e.g. a snapshot from
/// a build with a different metric catalog).
bool snapshot_from_wire(const std::string& text, metrics::Snapshot* out);

}  // namespace rader
