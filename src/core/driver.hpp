// Rader: the top-level race-detection driver.
//
// Mirrors the paper's prototype workflow:
//   * check_view_read      — one Peer-Set run (serial, no steals) detects
//                            every view-read race (Theorem 4).
//   * check_determinacy    — one SP+ run under a given steal specification
//                            detects every determinacy race of that fixed
//                            execution (Section 6).
//   * check_with_family    — run SP+ under a family of specifications,
//                            merging reports.
//   * check_exhaustive     — the Section 7 recipe for ostensibly
//                            deterministic programs: probe the program once
//                            to learn K (max sync-block size) and D (max
//                            spawn depth), build the O(KD + K³) family, and
//                            run SP+ under each member, guaranteeing that
//                            every possible view-aware strand is elicited
//                            and every determinacy race involving a
//                            view-oblivious strand is found.
//
// The program under test is a callable run (possibly) many times; it must
// reset any state it mutates (the workload wrappers in src/apps do).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/peerset.hpp"
#include "core/race_report.hpp"
#include "core/spbags.hpp"
#include "core/spplus.hpp"
#include "core/sweep.hpp"
#include "runtime/run.hpp"
#include "spec/spec_family.hpp"
#include "spec/steal_spec.hpp"

namespace rader {

class Rader {
 public:
  /// Peer-Set over the serial execution: exact view-read race detection.
  /// `sampling` (off by default) wraps the detector in a SamplingTool
  /// (tool/sampling.hpp) — same for every check_* entry point below.
  static RaceLog check_view_read(FnView program,
                                 const SamplingConfig& sampling = {});

  /// Peer-Set over a REAL work-stealing execution on `workers` threads
  /// (0 = hardware concurrency): the parallel engine records per-segment
  /// event shards and replays them in depth-first order through the same
  /// detector, so the returned log is identical to check_view_read's for
  /// any worker count — detection is exact (Theorem 4) while the program
  /// runs at full parallel speed.  The program must be safe to execute in
  /// parallel (join its spawns before reading results).
  static RaceLog check_parallel(FnView program, unsigned workers = 0);

  /// SP+ over the execution fixed by `steal_spec`.
  static RaceLog check_determinacy(FnView program,
                                   const spec::StealSpec& steal_spec,
                                   const SamplingConfig& sampling = {});

  /// Baseline: classic SP-bags (reducer-oblivious, no steals) — what Cilk
  /// Screen / the Nondeterminator would report.
  static RaceLog check_spbags(FnView program,
                              const SamplingConfig& sampling = {});

  /// SP+ under every spec in `family`, merging the reports through the
  /// dedup layer (one report per race, carrying its eliciting specs).
  static RaceLog check_with_family(
      FnView program,
      const std::vector<std::unique_ptr<spec::StealSpec>>& family,
      const SamplingConfig& sampling = {});

  /// Parallel sweep variant: shards `family` across `options.threads`
  /// workers (core/sweep.hpp).  Each worker materializes its own program
  /// instance from `make_program`; the merged log is identical to the
  /// serial overload's for every thread count.
  static SweepResult check_with_family(
      const ProgramFactory& make_program,
      const std::vector<std::unique_ptr<spec::StealSpec>>& family,
      const SweepOptions& options);

  struct ExhaustiveResult {
    RaceLog log;
    SerialEngine::Stats probe_stats;  // from the no-steal probe run
    std::uint64_t spec_runs = 0;      // SP+ executions performed
    std::uint64_t specs_skipped = 0;  // family members skipped (budget/stop)
    std::uint32_t k = 0;              // sync-block size used for the family
    std::uint64_t depth = 0;          // spawn depth used for the family
    // Isolated sweeps (SweepOptions::isolation == kProcs): quarantined
    // family members (SweepResult::failures; report schema v5).
    std::vector<SweepFailure> failures;
  };

  /// Full Section-7 coverage: Peer-Set once + SP+ across the O(KD + K³)
  /// family.  `k_cap` / `depth_cap` bound the family for large programs
  /// (the guarantee then holds for sync blocks / depths within the caps).
  static ExhaustiveResult check_exhaustive(FnView program,
                                           std::uint32_t k_cap = 16,
                                           std::uint64_t depth_cap = 64,
                                           const SamplingConfig& sampling = {});

  /// Parallel Section-7 coverage: the Peer-Set probe runs serially on one
  /// instance from `make_program`, then the O(KD + K³) family is swept in
  /// parallel per `options`.  With options.stop_after_first_race, a racy
  /// probe skips the family sweep entirely.
  static ExhaustiveResult check_exhaustive(const ProgramFactory& make_program,
                                           const SweepOptions& options,
                                           std::uint32_t k_cap = 16,
                                           std::uint64_t depth_cap = 64);
};

}  // namespace rader
