// Race reports produced by the detection algorithms.
//
// Reports are deduplicated (one per raced-on reducer / memory location) so a
// hot loop cannot flood the log, and capped in stored count while total
// occurrences keep being tallied — mirroring how practical tools such as
// Cilk Screen and the Nondeterminator report races.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "runtime/types.hpp"

namespace rader {

/// A view-read race: two reducer-reads at strands with different peer sets.
struct ViewReadRace {
  ReducerId reducer = kInvalidReducer;
  FrameId prior_frame = kInvalidFrame;    // frame of the earlier reducer-read
  FrameId current_frame = kInvalidFrame;  // frame of the later reducer-read
  std::string prior_label;                // source tag of the earlier read
  std::string current_label;              // source tag of the later read
  std::string found_under;                // steal spec that elicited it
};

/// A determinacy race: two conflicting accesses on logically parallel
/// strands (with the parallel-views condition when the later strand is
/// view-aware).
struct DeterminacyRace {
  std::uintptr_t addr = 0;
  AccessKind current_kind = AccessKind::kRead;
  bool current_view_aware = false;
  bool prior_was_write = false;           // which shadow space hit
  FrameId prior_frame = kInvalidFrame;
  FrameId current_frame = kInvalidFrame;
  std::string current_label;
  std::string found_under;                // steal spec that elicited it
};

class RaceLog {
 public:
  explicit RaceLog(std::size_t max_stored = 1024) : max_stored_(max_stored) {}

  void report_view_read(const ViewReadRace& r);
  void report_determinacy(const DeterminacyRace& r);

  /// Merge another log into this one (used when checking a program under
  /// many steal specifications).
  void merge(const RaceLog& other);

  /// Stamp every stored report that lacks one with the steal specification
  /// it was found under — the paper's replay feature: "Rader reports the
  /// labels corresponding to the stolen continuations that triggered the
  /// race, making it easy to repeat the run for regression tests."
  void stamp_found_under(const std::string& spec_description);

  bool any() const {
    return view_read_count_ != 0 || determinacy_count_ != 0;
  }
  std::uint64_t view_read_count() const { return view_read_count_; }
  std::uint64_t determinacy_count() const { return determinacy_count_; }

  const std::vector<ViewReadRace>& view_read_races() const {
    return view_read_races_;
  }
  const std::vector<DeterminacyRace>& determinacy_races() const {
    return determinacy_races_;
  }

  /// Human-readable multi-line summary.
  std::string to_string() const;

  /// Machine-readable JSON (counts plus the stored reports).
  std::string to_json() const;

  void clear();

 private:
  std::size_t max_stored_;
  std::uint64_t view_read_count_ = 0;
  std::uint64_t determinacy_count_ = 0;
  std::vector<ViewReadRace> view_read_races_;
  std::vector<DeterminacyRace> determinacy_races_;
  std::unordered_set<std::uint64_t> seen_reducers_;
  std::unordered_set<std::uintptr_t> seen_addrs_;
};

}  // namespace rader
