// Race reports produced by the detection algorithms.
//
// Reports are deduplicated so a hot loop cannot flood the log, and capped in
// stored count while total occurrences keep being tallied — mirroring how
// practical tools such as Cilk Screen and the Nondeterminator report races.
//
// Deduplication key (the *race identity*): the raced-on location, the labels
// and kinds of the two accesses — NOT the frame ids, which are execution
// artifacts that shift between steal specifications (simulated steals insert
// kReduce frames and renumber everything after them).  Merging the per-spec
// logs of a specification-family sweep therefore collapses the same race
// elicited under many specs into ONE stored report that carries the full set
// of eliciting specifications (`eliciting_specs`) and the total number of
// dynamic observations (`occurrences`); `found_under` stays the first
// eliciting spec, the paper's replay handle.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/types.hpp"

namespace rader {

/// A view-read race: two reducer-reads at strands with different peer sets.
struct ViewReadRace {
  ReducerId reducer = kInvalidReducer;
  FrameId prior_frame = kInvalidFrame;    // frame of the earlier reducer-read
  FrameId current_frame = kInvalidFrame;  // frame of the later reducer-read
  std::string prior_label;                // source tag of the earlier read
  std::string current_label;              // source tag of the later read
  std::string found_under;                // first steal spec that elicited it
  std::vector<std::string> eliciting_specs;  // every spec that elicited it
  std::uint64_t occurrences = 1;          // dynamic observations collapsed in
  std::string provenance_json;  // raw JSON object from core/provenance ("" =
                                // not annotated); schema v2 races[].provenance
  std::string provenance_text;  // human rendering of the same record
  std::string repro_file;       // `.rprog` reproducer this race replays from
                                // ("" = none); schema v3 races[].repro_file
};

/// A determinacy race: two conflicting accesses on logically parallel
/// strands (with the parallel-views condition when the later strand is
/// view-aware).
struct DeterminacyRace {
  std::uintptr_t addr = 0;
  AccessKind current_kind = AccessKind::kRead;
  bool current_view_aware = false;
  bool prior_was_write = false;           // which shadow space hit
  FrameId prior_frame = kInvalidFrame;
  FrameId current_frame = kInvalidFrame;
  std::string current_label;
  std::string found_under;                // first steal spec that elicited it
  std::vector<std::string> eliciting_specs;  // every spec that elicited it
  std::uint64_t occurrences = 1;          // dynamic observations collapsed in
  std::string provenance_json;  // raw JSON object from core/provenance ("" =
                                // not annotated); schema v2 races[].provenance
  std::string provenance_text;  // human rendering of the same record
  std::string repro_file;       // `.rprog` reproducer this race replays from
                                // ("" = none); schema v3 races[].repro_file
};

/// Detector-side constructors (the remaining fields — found_under,
/// eliciting_specs, occurrences — are filled by stamping and merging).
inline ViewReadRace make_view_read_race(ReducerId reducer,
                                        FrameId prior_frame,
                                        FrameId current_frame,
                                        std::string prior_label,
                                        std::string current_label) {
  ViewReadRace r;
  r.reducer = reducer;
  r.prior_frame = prior_frame;
  r.current_frame = current_frame;
  r.prior_label = std::move(prior_label);
  r.current_label = std::move(current_label);
  return r;
}

inline DeterminacyRace make_determinacy_race(std::uintptr_t addr,
                                             AccessKind current_kind,
                                             bool current_view_aware,
                                             bool prior_was_write,
                                             FrameId prior_frame,
                                             FrameId current_frame,
                                             std::string current_label) {
  DeterminacyRace r;
  r.addr = addr;
  r.current_kind = current_kind;
  r.current_view_aware = current_view_aware;
  r.prior_was_write = prior_was_write;
  r.prior_frame = prior_frame;
  r.current_frame = current_frame;
  r.current_label = std::move(current_label);
  return r;
}

class RaceLog {
 public:
  explicit RaceLog(std::size_t max_stored = 1024) : max_stored_(max_stored) {}

  void report_view_read(const ViewReadRace& r);
  void report_determinacy(const DeterminacyRace& r);

  /// Merge another log into this one (used when checking a program under
  /// many steal specifications).  Stored reports deduplicate by race
  /// identity; a duplicate's eliciting specs are unioned into the stored
  /// report and its occurrences added, so a family sweep yields one report
  /// per race no matter how many specifications elicit it.
  void merge(const RaceLog& other);

  /// Wire-restore support (core/report_wire.hpp): add occurrences that were
  /// tallied but never stored — a serialized log whose identity count hit
  /// the storage cap carries larger totals than its stored reports sum to,
  /// and a faithful reconstruction must preserve those totals so merge()
  /// arithmetic stays exact across a process boundary.
  void add_unstored_occurrences(std::uint64_t view_read,
                                std::uint64_t determinacy) {
    view_read_count_ += view_read;
    determinacy_count_ += determinacy;
  }

  /// Stamp every stored report with the steal specification it was found
  /// under — the paper's replay feature: "Rader reports the labels
  /// corresponding to the stolen continuations that triggered the race,
  /// making it easy to repeat the run for regression tests."  Fills
  /// `found_under` (if empty) and seeds `eliciting_specs` (if empty).
  void stamp_found_under(const std::string& spec_description);

  /// Stamp every stored report with the `.rprog` reproducer file it came
  /// from (`rader --repro=FILE` does this so schema-v3 reports carry
  /// races[].repro_file).  Fills only empty repro_file fields.
  void stamp_repro_file(const std::string& path);

  bool any() const {
    return view_read_count_ != 0 || determinacy_count_ != 0;
  }
  std::uint64_t view_read_count() const { return view_read_count_; }
  std::uint64_t determinacy_count() const { return determinacy_count_; }

  const std::vector<ViewReadRace>& view_read_races() const {
    return view_read_races_;
  }
  const std::vector<DeterminacyRace>& determinacy_races() const {
    return determinacy_races_;
  }

  /// Attach a provenance record (core/provenance) to a stored report.
  /// `json` is a raw JSON object embedded verbatim under the race's
  /// "provenance" key (report schema v2); `text` is its human rendering.
  void set_view_read_provenance(std::size_t index, std::string json,
                                std::string text);
  void set_determinacy_provenance(std::size_t index, std::string json,
                                  std::string text);

  /// Human-readable multi-line summary.
  std::string to_string() const;

  /// Machine-readable JSON (counts plus the stored reports).
  std::string to_json() const;

  void clear();

 private:
  // Race-identity keys: location + access labels + kinds, frame-free (see
  // the file comment).  Real equality, not raw hashes, so the dedup cannot
  // be fooled by a 64-bit collision.
  struct ViewReadKey {
    ReducerId reducer;
    std::string prior_label;
    std::string current_label;
    bool operator==(const ViewReadKey&) const = default;
  };
  struct DeterminacyKey {
    std::uintptr_t addr;
    AccessKind current_kind;
    bool current_view_aware;
    bool prior_was_write;
    std::string current_label;
    bool operator==(const DeterminacyKey&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const ViewReadKey& k) const;
    std::size_t operator()(const DeterminacyKey& k) const;
  };

  // Sentinel index: race identity seen but its report was dropped by the
  // storage cap (occurrences for it still tally in the global counters).
  static constexpr std::size_t kDropped = static_cast<std::size_t>(-1);

  /// Store `r` or fold it into the stored report with the same identity.
  /// Does NOT touch the occurrence counters (callers differ: a detector
  /// report adds `r.occurrences`; a merge adds the whole other log's total).
  void absorb_view_read(const ViewReadRace& r);
  void absorb_determinacy(const DeterminacyRace& r);

  std::size_t max_stored_;
  std::uint64_t view_read_count_ = 0;
  std::uint64_t determinacy_count_ = 0;
  std::vector<ViewReadRace> view_read_races_;
  std::vector<DeterminacyRace> determinacy_races_;
  std::unordered_map<ViewReadKey, std::size_t, KeyHash> seen_view_reads_;
  std::unordered_map<DeterminacyKey, std::size_t, KeyHash> seen_determinacy_;
};

}  // namespace rader
