// Exporters for trace::Session recordings.
//
// `chrome_trace_json` emits the Chrome trace-event JSON format (the
// `{"traceEvents":[...]}` object form), loadable in chrome://tracing and
// Perfetto.  Mapping:
//   * each trace buffer becomes one process (pid = registration order),
//     named after the buffer (e.g. "main", "sweep-w2", "pe-worker-1");
//   * each (simulated or real) worker becomes one thread track (tid),
//     named "worker N" — under a steal spec the serial engine mints one
//     simulated worker per steal, so the steal structure is visible as
//     tracks;
//   * frames become complete ("X") slices on the track of the worker that
//     *entered* them (serial timestamps nest correctly per track);
//   * steals, syncs, reducer ops, view births/deaths, and detector
//     conflicts become instant ("i") events;
//   * a reduce consuming a stolen view becomes a flow arrow ("s"/"f" pair)
//     from the steal that minted the view to the kReduceBegin that retires
//     it — the paper's reduce tree, drawn over the timeline.
// Events are sorted by timestamp, so every track's `ts` sequence is
// non-decreasing in file order (asserted by scripts/check.sh --trace).
//
// `text_timeline` is the compact greppable rendering: one line per event,
// per buffer, time-ordered, with timestamps relative to the buffer's first
// event.
#pragma once

#include <string>

#include "support/trace.hpp"

namespace rader {

std::string chrome_trace_json(const trace::Session& session);

std::string text_timeline(const trace::Session& session);

/// Write `chrome_trace_json(session)` to `path`.  Returns false (and leaves
/// no file guarantee) on I/O failure.
bool write_chrome_trace(const trace::Session& session, const std::string& path);

}  // namespace rader
