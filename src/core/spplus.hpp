// The SP+ algorithm (Sections 5–6 of the paper, pseudocode in Figure 6).
//
// SP+ detects DETERMINACY RACES in computations that use reducers, for the
// fixed execution selected by a steal specification.  It extends SP-bags:
//
//  * Each function F keeps an S bag and a *stack* of P bags, F.P.  Each P
//    bag carries a view ID.  Together the P bags hold F's completed
//    descendants logically parallel with the current strand, partitioned by
//    which view their initial strands share.
//  * Executing a stolen continuation pushes a fresh P bag with a brand-new
//    view ID — imitating the runtime creating a new view after a steal.
//  * Executing a Reduce pops the newest P bag and unions it into the one
//    below (the destination's view ID survives) — imitating how Reduce
//    combines views and destroys the dominated one.  The user Reduce code
//    then runs as a view-aware frame whose IDs return into the merged top P
//    bag, making the reduce strand in-series with the descendants whose
//    views it merged but parallel with everything in other P bags.
//  * Race conditions (Figure 6): a view-OBLIVIOUS access races with a prior
//    access recorded in any P bag; a view-AWARE access races only if the
//    prior access is in a P bag with a DIFFERENT view ID — two strands on
//    the same view are executed serially by one worker between steals and
//    cannot race in any schedule consistent with this specification.
//  * Shadow update rule: the last reader/writer is replaced when the prior
//    access is in series (an S bag), and additionally, inside a Reduce
//    invocation, when the prior access shares the current view ID (the
//    reduce strand serializes after those accesses).
//
// Runs in O((T + Mτ) α(v, v)) for M simulated steals with reduce cost τ
// (Theorem 5), and is exact for the given execution.
#pragma once

#include <vector>

#include "core/race_report.hpp"
#include "dsu/disjoint_set.hpp"
#include "shadow/access_shadow.hpp"
#include "tool/tool.hpp"

namespace rader {

class SpPlusDetector final : public Tool {
 public:
  /// `granule_bits`: shadow cells cover 2^granule_bits bytes (0 = exact;
  /// see SpBagsDetector for the tradeoff).
  explicit SpPlusDetector(RaceLog* log, unsigned granule_bits = 0)
      : granule_bits_(granule_bits), log_(log) {}

  void on_run_begin() override;
  void on_frame_enter(FrameId frame, FrameId parent, FrameKind kind,
                      ViewId vid) override;
  void on_frame_return(FrameId frame, FrameId parent, FrameKind kind) override;
  void on_sync(FrameId frame) override;
  void on_steal(FrameId frame, std::uint32_t cont_index,
                ViewId new_vid) override;
  void on_reduce(FrameId frame, ViewId left_vid, ViewId right_vid) override;
  void on_access(AccessKind kind, std::uintptr_t addr, std::size_t size,
                 bool view_aware, ViewId vid, SrcTag tag) override;
  void on_clear(std::uintptr_t addr, std::size_t size) override;

  /// Deep clone of the detection state (bags, DSU forest, shadow spaces —
  /// the latter shared copy-on-write), reporting into `log`.
  std::unique_ptr<Tool> fork(RaceLog* log) const override;

 private:
  struct FrameState {
    dsu::Node node = dsu::kInvalidNode;
    bool is_reduce = false;  // F is an invocation of Reduce
    dsu::Bag s;
    std::vector<dsu::Bag> p_stack;
  };

  // Race checks shared by the four access cases.
  bool prior_races_oblivious(shadow::AccessShadow::Payload prior);
  bool prior_races_view_aware(shadow::AccessShadow::Payload prior,
                              dsu::ViewId cur_vid);

  unsigned granule_bits_;
  dsu::DisjointSets ds_;
  std::vector<FrameState> stack_;
  shadow::AccessShadow shadow_;
  RaceLog* log_;
};

}  // namespace rader
