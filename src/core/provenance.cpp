#include "core/provenance.hpp"

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/peerset.hpp"
#include "core/spplus.hpp"
#include "dag/oracle.hpp"
#include "dag/recorder.hpp"
#include "runtime/serial_engine.hpp"
#include "spec/steal_spec.hpp"
#include "tool/tool.hpp"

namespace rader {

namespace {

/// Tool that records the structural decisions a provenance record is built
/// from: the frame tree (with spawn indices), every simulated steal, every
/// epoch merge with the kReduce frames it invoked, and every lazy identity
/// view creation.
class ProvenanceRecorder final : public Tool {
 public:
  struct FrameNode {
    FrameId parent = kInvalidFrame;
    FrameKind kind = FrameKind::kRoot;
    std::uint32_t depth = 0;
    std::uint32_t spawn_index = 0;  // index among parent's spawned children
    std::uint32_t spawned_children = 0;
    ViewId entry_vid = kInvalidView;
    bool seen = false;
  };
  struct StealRec {
    FrameId frame;
    std::uint32_t cont_index;
    ViewId vid;  // the minted view
  };
  struct ReduceRec {
    FrameId frame;  // frame performing the epoch merge
    ViewId left;
    ViewId right;
    std::vector<FrameId> reduce_frames;  // kReduce frames this merge invoked
  };
  struct IdentityRec {
    FrameId frame;
    ReducerId reducer;
    const char* label;
  };

  void on_run_begin() override {
    frames_.clear();
    steals_.clear();
    reduces_.clear();
    identities_.clear();
    stack_.clear();
  }

  void on_frame_enter(FrameId frame, FrameId parent, FrameKind kind,
                      ViewId vid) override {
    if (frames_.size() <= frame) frames_.resize(frame + 1);
    FrameNode& n = frames_[frame];
    n.parent = parent;
    n.kind = kind;
    n.entry_vid = vid;
    n.seen = true;
    if (parent != kInvalidFrame && parent < frames_.size() &&
        frames_[parent].seen) {
      n.depth = frames_[parent].depth + 1;
      if (kind == FrameKind::kSpawned) {
        n.spawn_index = frames_[parent].spawned_children++;
      }
    }
    // kReduce frames only ever run inside the epoch merge that invoked them,
    // immediately after its on_reduce event, so the owning merge is the
    // newest ReduceRec.
    if (kind == FrameKind::kReduce && !reduces_.empty()) {
      reduces_.back().reduce_frames.push_back(frame);
    }
    stack_.push_back(frame);
  }

  void on_frame_return(FrameId, FrameId, FrameKind) override {
    if (!stack_.empty()) stack_.pop_back();
  }

  void on_steal(FrameId frame, std::uint32_t cont_index,
                ViewId new_vid) override {
    steals_.push_back({frame, cont_index, new_vid});
  }

  void on_reduce(FrameId frame, ViewId left_vid, ViewId right_vid) override {
    reduces_.push_back({frame, left_vid, right_vid, {}});
  }

  void on_reducer_op(ReducerOp op, ReducerId h, SrcTag tag) override {
    if (op != ReducerOp::kCreateIdentity) return;
    identities_.push_back(
        {stack_.empty() ? kInvalidFrame : stack_.back(), h, tag.label});
  }

  bool known(FrameId f) const { return f < frames_.size() && frames_[f].seen; }
  const FrameNode& node(FrameId f) const { return frames_[f]; }
  const std::vector<StealRec>& steals() const { return steals_; }
  const std::vector<ReduceRec>& reduces() const { return reduces_; }
  const std::vector<IdentityRec>& identities() const { return identities_; }

  /// Root-exclusive parent chain: `f`, parent(f), ..., root.  Bounded by the
  /// frame count so a malformed parent link cannot loop.
  std::vector<FrameId> chain(FrameId f) const {
    std::vector<FrameId> out;
    while (known(f) && out.size() <= frames_.size()) {
      out.push_back(f);
      f = frames_[f].parent;
    }
    return out;
  }

 private:
  std::vector<FrameNode> frames_;
  std::vector<StealRec> steals_;
  std::vector<ReduceRec> reduces_;
  std::vector<IdentityRec> identities_;
  std::vector<FrameId> stack_;
};

const char* frame_kind_name(FrameKind k) {
  switch (k) {
    case FrameKind::kRoot: return "root";
    case FrameKind::kSpawned: return "spawned";
    case FrameKind::kCalled: return "called";
    case FrameKind::kReduce: return "reduce";
  }
  return "?";
}

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u" << std::hex << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Everything a provenance record is rendered from.
struct Record {
  std::string spec;
  FrameId lca = kInvalidFrame;
  FrameKind lca_kind = FrameKind::kRoot;
  // Paths from the racing frames up to and including the LCA.
  std::vector<FrameId> current_path;
  std::vector<FrameId> prior_path;
  std::vector<ProvenanceRecorder::StealRec> steals_on_path;
  bool has_eliciting_steal = false;
  ProvenanceRecorder::StealRec eliciting_steal{};
  bool has_reduce = false;
  FrameId reduce_frame = kInvalidFrame;  // the kReduce frame on the path
  ProvenanceRecorder::ReduceRec reduce{};
  bool has_identity = false;
  ProvenanceRecorder::IdentityRec identity{};
  std::string oracle;  // "confirmed" / "unconfirmed" / "skipped" / ""
};

/// Walk the recorded structure for the racing frame pair.  Returns false
/// when either frame is unknown to the replay (no record can be built).
bool build_record(const ProvenanceRecorder& rec, FrameId prior,
                  FrameId current, Record* out) {
  if (!rec.known(prior) || !rec.known(current)) return false;
  std::vector<FrameId> cur_chain = rec.chain(current);
  std::vector<FrameId> pri_chain = rec.chain(prior);
  if (cur_chain.empty() || pri_chain.empty()) return false;
  // Trim the common root-side suffix; the last element trimmed is the LCA.
  FrameId lca = kInvalidFrame;
  while (!cur_chain.empty() && !pri_chain.empty() &&
         cur_chain.back() == pri_chain.back()) {
    lca = cur_chain.back();
    cur_chain.pop_back();
    pri_chain.pop_back();
  }
  if (lca == kInvalidFrame) return false;  // disjoint trees: malformed
  out->lca = lca;
  out->lca_kind = rec.node(lca).kind;
  out->current_path = cur_chain;
  out->current_path.push_back(lca);
  out->prior_path = pri_chain;
  out->prior_path.push_back(lca);

  // Steal decisions in any frame on either path (the fork region).  The
  // eliciting steal is the first steal in the LCA frame itself — the steal
  // whose minted view separates the two sides — falling back to the first
  // steal anywhere on the fork path.
  auto on_path = [&](FrameId f) {
    for (FrameId g : out->current_path)
      if (g == f) return true;
    for (FrameId g : out->prior_path)
      if (g == f) return true;
    return false;
  };
  for (const auto& s : rec.steals()) {
    if (!on_path(s.frame)) continue;
    out->steals_on_path.push_back(s);
    if (!out->has_eliciting_steal ||
        (s.frame == lca && out->eliciting_steal.frame != lca)) {
      out->eliciting_steal = s;
      out->has_eliciting_steal = true;
    }
  }

  // Reduce involvement: the first kReduce frame on the current-side path
  // (preferring the racing strand's own side), matched to the epoch merge
  // that invoked it.
  auto find_reduce = [&](const std::vector<FrameId>& path) -> bool {
    for (FrameId f : path) {
      if (rec.node(f).kind != FrameKind::kReduce) continue;
      for (const auto& r : rec.reduces()) {
        for (FrameId rf : r.reduce_frames) {
          if (rf != f) continue;
          out->has_reduce = true;
          out->reduce_frame = f;
          out->reduce = r;
          return true;
        }
      }
    }
    return false;
  };
  if (!find_reduce(out->current_path)) find_reduce(out->prior_path);

  // CreateIdentity involvement: a lazy identity view created in a frame on
  // either path (closest to the current racing frame wins).
  for (const auto& path : {out->current_path, out->prior_path}) {
    if (out->has_identity) break;
    for (FrameId f : path) {
      for (const auto& id : rec.identities()) {
        if (id.frame != f) continue;
        out->has_identity = true;
        out->identity = id;
        break;
      }
      if (out->has_identity) break;
    }
  }
  return true;
}

std::string record_json(const Record& r) {
  std::ostringstream os;
  os << "{\"spec\":";
  append_escaped(os, r.spec);
  os << ",\"lca_frame\":" << r.lca << ",\"lca_kind\":\""
     << frame_kind_name(r.lca_kind) << '"';
  auto path = [&os](const char* key, const std::vector<FrameId>& p) {
    os << ",\"" << key << "\":[";
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (i != 0) os << ',';
      os << p[i];
    }
    os << ']';
  };
  path("current_path", r.current_path);
  path("prior_path", r.prior_path);
  os << ",\"steals_on_path\":[";
  for (std::size_t i = 0; i < r.steals_on_path.size(); ++i) {
    const auto& s = r.steals_on_path[i];
    if (i != 0) os << ',';
    os << "{\"frame\":" << s.frame << ",\"cont_index\":" << s.cont_index
       << ",\"view\":" << s.vid << '}';
  }
  os << ']';
  if (r.has_eliciting_steal) {
    const auto& s = r.eliciting_steal;
    os << ",\"eliciting_steal\":{\"frame\":" << s.frame
       << ",\"cont_index\":" << s.cont_index << ",\"view\":" << s.vid << '}';
  }
  if (r.has_reduce) {
    os << ",\"reduce\":{\"reduce_frame\":" << r.reduce_frame
       << ",\"merge_frame\":" << r.reduce.frame
       << ",\"left_view\":" << r.reduce.left
       << ",\"right_view\":" << r.reduce.right << '}';
  }
  if (r.has_identity) {
    os << ",\"create_identity\":{\"frame\":" << r.identity.frame
       << ",\"reducer\":" << r.identity.reducer << ",\"label\":";
    append_escaped(os, r.identity.label);
    os << '}';
  }
  if (!r.oracle.empty()) os << ",\"oracle\":\"" << r.oracle << '"';
  os << '}';
  return os.str();
}

std::string record_text(const Record& r) {
  std::ostringstream os;
  os << "provenance (replay " << r.spec << "):\n";
  os << "  strands fork at frame #" << r.lca << " ("
     << frame_kind_name(r.lca_kind) << ")\n";
  auto side = [&os](const char* name, const std::vector<FrameId>& p) {
    os << "  " << name << " side: ";
    if (p.size() <= 1) {
      os << "the fork frame's own strand";
    } else {
      for (std::size_t i = 0; i + 1 < p.size(); ++i) {
        if (i != 0) os << " <- ";
        os << "#" << p[i];
      }
    }
    os << "\n";
  };
  side("current", r.current_path);
  side("prior", r.prior_path);
  if (r.has_eliciting_steal) {
    os << "  eliciting steal: continuation " << r.eliciting_steal.cont_index
       << " of frame #" << r.eliciting_steal.frame << " minted view "
       << r.eliciting_steal.vid;
    if (r.steals_on_path.size() > 1) {
      os << " (+" << r.steals_on_path.size() - 1
         << " more steal(s) on the fork path)";
    }
    os << "\n";
  } else {
    os << "  no steal on the fork path (parallelism from the spawn alone)\n";
  }
  if (r.has_reduce) {
    os << "  Reduce strand: frame #" << r.reduce_frame
       << " runs the user Reduce of views " << r.reduce.left << " <- "
       << r.reduce.right << " (epoch merge in frame #" << r.reduce.frame
       << ")\n";
  }
  if (r.has_identity) {
    os << "  CreateIdentity strand: frame #" << r.identity.frame
       << " lazily created a view of reducer #" << r.identity.reducer;
    if (r.identity.label != nullptr && r.identity.label[0] != '\0') {
      os << " ('" << r.identity.label << "')";
    }
    os << "\n";
  }
  if (!r.oracle.empty()) os << "  oracle: " << r.oracle << "\n";
  return os.str();
}

}  // namespace

std::size_t annotate_provenance(RaceLog& log,
                                const std::function<void()>& program,
                                const ProvenanceOptions& options) {
  // Group stored races by replay handle so the program runs once per
  // distinct handle.  An empty handle means the race came from a plain
  // serial check; it replays under "no-steals".
  struct Ref {
    bool view_read;
    std::size_t index;
  };
  std::map<std::string, std::vector<Ref>> groups;
  const auto& vr = log.view_read_races();
  const auto& dr = log.determinacy_races();
  for (std::size_t i = 0; i < vr.size(); ++i) {
    if (!vr[i].provenance_json.empty()) continue;
    groups[vr[i].found_under.empty() ? "no-steals" : vr[i].found_under]
        .push_back({true, i});
  }
  for (std::size_t i = 0; i < dr.size(); ++i) {
    if (!dr[i].provenance_json.empty()) continue;
    groups[dr[i].found_under.empty() ? "no-steals" : dr[i].found_under]
        .push_back({false, i});
  }

  std::size_t annotated = 0;
  for (const auto& [handle, refs] : groups) {
    const auto sp = spec::from_description(handle);
    if (sp == nullptr) continue;  // unrecognized handle: cannot replay

    // Replay with both detectors (to reproduce the races with their fresh
    // frame ids), the structural recorder, and the DAG recorder.
    RaceLog fresh;
    PeerSetDetector peerset(&fresh);
    SpPlusDetector spplus(&fresh);
    ProvenanceRecorder rec;
    dag::Recorder dag_rec;
    ToolChain chain;
    chain.add(&peerset);
    chain.add(&spplus);
    chain.add(&rec);
    chain.add(&dag_rec);
    SerialEngine engine(&chain, sp.get());
    engine.run(program);

    const dag::PerfDag& dag = dag_rec.dag();
    dag::OracleResult oracle;
    bool have_oracle = false;
    bool oracle_capped = false;
    if (options.cross_check) {
      if (dag.size() <= options.oracle_strand_cap) {
        oracle = dag::run_oracle(dag);
        have_oracle = true;
      } else {
        oracle_capped = true;
      }
    }
    auto oracle_verdict = [&](bool confirmed) -> std::string {
      if (!options.cross_check) return "";
      if (oracle_capped) return "skipped";
      return confirmed ? "confirmed" : "unconfirmed";
    };

    for (const Ref& ref : refs) {
      Record record;
      record.spec = handle;
      bool built = false;
      if (ref.view_read) {
        const ViewReadRace& stored = vr[ref.index];
        // Match by dedup identity; reducer ids are dense per run, so they
        // reproduce exactly under the same program and spec.
        const ViewReadRace* match = nullptr;
        for (const auto& f : fresh.view_read_races()) {
          if (f.reducer == stored.reducer &&
              f.prior_label == stored.prior_label &&
              f.current_label == stored.current_label) {
            match = &f;
            break;
          }
        }
        if (match == nullptr) continue;
        built = build_record(rec, match->prior_frame, match->current_frame,
                             &record);
        record.oracle = oracle_verdict(
            have_oracle && oracle.racing_reducers.count(stored.reducer) != 0);
      } else {
        const DeterminacyRace& stored = dr[ref.index];
        // Exact identity first; heap addresses can shift between the
        // original process and the replay, so fall back to the
        // address-insensitive identity.
        const DeterminacyRace* match = nullptr;
        for (const auto& f : fresh.determinacy_races()) {
          if (f.addr == stored.addr && f.current_kind == stored.current_kind &&
              f.current_view_aware == stored.current_view_aware &&
              f.prior_was_write == stored.prior_was_write &&
              f.current_label == stored.current_label) {
            match = &f;
            break;
          }
        }
        if (match == nullptr) {
          for (const auto& f : fresh.determinacy_races()) {
            if (f.current_kind == stored.current_kind &&
                f.current_view_aware == stored.current_view_aware &&
                f.prior_was_write == stored.prior_was_write &&
                f.current_label == stored.current_label) {
              match = &f;
              break;
            }
          }
        }
        if (match == nullptr) continue;
        built = build_record(rec, match->prior_frame, match->current_frame,
                             &record);
        record.oracle = oracle_verdict(
            have_oracle && oracle.racing_addrs.count(match->addr) != 0);
      }
      if (!built) continue;
      if (ref.view_read) {
        log.set_view_read_provenance(ref.index, record_json(record),
                                     record_text(record));
      } else {
        log.set_determinacy_provenance(ref.index, record_json(record),
                                       record_text(record));
      }
      ++annotated;
    }
  }
  return annotated;
}

}  // namespace rader
