#include "core/report_json.hpp"

#include <algorithm>
#include <sstream>

namespace rader {

namespace {

void append_escaped(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << "\\u00" << std::hex << static_cast<int>(c) << std::dec;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void add_handle(std::vector<std::string>& handles, const std::string& h) {
  if (h.empty()) return;
  if (std::find(handles.begin(), handles.end(), h) != handles.end()) return;
  handles.push_back(h);
}

}  // namespace

std::vector<std::string> replay_handles(const RaceLog& log) {
  std::vector<std::string> handles;
  for (const auto& r : log.view_read_races()) add_handle(handles, r.found_under);
  for (const auto& r : log.determinacy_races()) {
    add_handle(handles, r.found_under);
  }
  return handles;
}

std::string report_json(const ReportMeta& meta, const RaceLog& log,
                        const metrics::Snapshot* metrics_snapshot) {
  std::ostringstream os;
  os << "{\"schema\":\"" << kReportSchemaName
     << "\",\"schema_version\":" << kReportSchemaVersion << ",\"program\":";
  append_escaped(os, meta.program);
  os << ",\"check\":";
  append_escaped(os, meta.check);
  if (!meta.spec.empty()) {
    os << ",\"spec\":";
    append_escaped(os, meta.spec);
  }
  if (meta.has_sweep) {
    os << ",\"sweep\":{\"jobs\":" << meta.jobs << ",\"budget\":" << meta.budget
       << ",\"stop_first\":" << (meta.stop_first ? "true" : "false")
       << ",\"k\":" << meta.k << ",\"depth\":" << meta.depth
       << ",\"spec_runs\":" << meta.spec_runs
       << ",\"specs_skipped\":" << meta.specs_skipped << ",\"failures\":[";
    for (std::size_t i = 0; i < meta.failures.size(); ++i) {
      const SweepFailure& f = meta.failures[i];
      if (i != 0) os << ',';
      os << "{\"spec\":";
      append_escaped(os, f.spec);
      os << ",\"index\":" << f.index << ",\"cause\":";
      append_escaped(os, f.cause);
      os << ",\"signal\":" << f.signal << ",\"retries\":" << f.retries
         << ",\"postmortem\":";
      append_escaped(os, f.postmortem);
      os << '}';
    }
    os << "]}";
  }
  os << ",\"races\":" << log.to_json();
  os << ",\"replay_handles\":[";
  const auto handles = replay_handles(log);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (i != 0) os << ',';
    append_escaped(os, handles[i]);
  }
  os << ']';
  if (metrics_snapshot != nullptr) {
    os << ",\"metrics\":" << metrics_snapshot->to_json();
  }
  os << '}';
  return os.str();
}

}  // namespace rader
