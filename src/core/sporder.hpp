// The SP-order algorithm (Bender, Fineman, Gilbert & Leiserson, SPAA'04) —
// serial variant.
//
// SP-order maintains series-parallel relationships with TWO total orders
// over strands, kept in order-maintenance structures:
//   * the ENGLISH order: a left-to-right walk — spawned children before
//     their continuations;
//   * the HEBREW order: a right-to-left walk — continuations before the
//     children.
// For strands u executed before v in the serial order, u ≺ v iff u precedes
// v in BOTH orders; they are logically parallel iff the orders disagree —
// an O(1) check per query, with O(log n) amortized relabeling on insertion
// (compared to SP-bags' α(v,v) disjoint-set bound).
//
// The paper under reproduction notes that "to the best of our knowledge, no
// implementation of the SP-order ... algorithms exists"; this one serves as
// an additional reducer-OBLIVIOUS baseline: it detects plain determinacy
// races exactly (validated against the brute-force oracle and against
// SP-bags), but — like SP-bags and unlike SP+ — it has no notion of views,
// so races inside Reduce operations are invisible to it under the serial
// schedule.
#pragma once

#include <utility>
#include <vector>

#include "core/race_report.hpp"
#include "shadow/access_shadow.hpp"
#include "support/order_maintenance.hpp"
#include "tool/tool.hpp"

namespace rader {

class SpOrderDetector final : public Tool {
 public:
  /// `granule_bits`: shadow cells cover 2^granule_bits bytes (0 = exact).
  explicit SpOrderDetector(RaceLog* log, unsigned granule_bits = 0)
      : granule_bits_(granule_bits), log_(log) {}

  void on_run_begin() override;
  void on_frame_enter(FrameId frame, FrameId parent, FrameKind kind,
                      ViewId vid) override;
  void on_frame_return(FrameId frame, FrameId parent, FrameKind kind) override;
  void on_sync(FrameId frame) override;
  void on_access(AccessKind kind, std::uintptr_t addr, std::size_t size,
                 bool view_aware, ViewId vid, SrcTag tag) override;
  void on_clear(std::uintptr_t addr, std::size_t size) override;

  /// Deep clone of the detection state (both order-maintenance structures,
  /// the strand registry, shadow spaces — the latter shared copy-on-write),
  /// reporting into `log`.
  std::unique_ptr<Tool> fork(RaceLog* log) const override;

  /// Total order-maintenance relabels performed (telemetry for the bench).
  std::uint64_t relabel_count() const {
    return eng_.relabel_count() + heb_.relabel_count();
  }

 private:
  using OmNode = OrderMaintenance::Node;

  struct FrameState {
    FrameId id = kInvalidFrame;               // engine frame ID (for reports)
    OmNode eng = OrderMaintenance::kInvalid;  // current strand, English
    OmNode heb = OrderMaintenance::kInvalid;  // current strand, Hebrew
    OmNode heb_frontier = OrderMaintenance::kInvalid;  // Heb-max of subtree
    std::uint32_t strand_ref = 0;  // registry slot of the current strand
  };

  /// Register the top frame's current strand (after its OM nodes changed).
  void new_strand_ref();

  /// u precedes-or-equals the CURRENT strand v iff u precedes v in both
  /// orders; since u was recorded earlier, English order always agrees, so
  /// the test reduces to the Hebrew order (equal Hebrew nodes = the same
  /// strand, trivially in series).
  bool in_series_with_current(std::uint32_t ref) const {
    const OmNode h = strands_[ref].second;
    const OmNode cur = strands_[top_ref_].second;
    return h == cur || heb_.precedes(h, cur);
  }

  unsigned granule_bits_;
  OrderMaintenance eng_;
  OrderMaintenance heb_;
  std::vector<FrameState> stack_;
  // Strand registry: per strand, its (english, hebrew) OM nodes plus the
  // owning frame ID (so reports name real frames, as the other detectors do).
  std::vector<std::pair<OmNode, OmNode>> strands_;
  std::vector<FrameId> strand_frame_;
  std::uint32_t top_ref_ = 0;  // current strand's registry slot
  shadow::AccessShadow shadow_;
  RaceLog* log_;
};

}  // namespace rader
