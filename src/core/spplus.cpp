#include "core/spplus.hpp"

#include <algorithm>

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rader {

std::unique_ptr<Tool> SpPlusDetector::fork(RaceLog* log) const {
  auto copy = std::make_unique<SpPlusDetector>(log, granule_bits_);
  copy->ds_ = ds_;
  copy->stack_ = stack_;
  for (auto& f : copy->stack_) {
    f.s.rebind(&copy->ds_);
    for (auto& b : f.p_stack) b.rebind(&copy->ds_);
  }
  copy->shadow_ = shadow_.fork();
  return copy;
}

void SpPlusDetector::on_run_begin() {
  RADER_CHECK_MSG(granule_bits_ < 12, "granule_bits must be < 12");
  ds_.clear();
  stack_.clear();
  shadow_.clear();
}

void SpPlusDetector::on_frame_enter(FrameId frame, FrameId, FrameKind kind,
                                    ViewId vid) {
  metrics::bump(metrics::Counter::kFramesEntered);
  // Figure 6, "F spawns or calls G": G.S = MakeBag(G, Top(F.P).vid);
  // G.P = ⟨MakeBag(∅, Top(F.P).vid)⟩.  The engine hands us the view ID
  // current at entry, which equals our Top(F.P).vid invariantly.
  FrameState g;
  g.node = ds_.make_node();
  RADER_DCHECK(g.node == frame);
  (void)frame;
  g.is_reduce = (kind == FrameKind::kReduce);
  RADER_DCHECK(stack_.empty() || stack_.back().p_stack.back().vid() == vid);
  g.s = dsu::Bag(&ds_, g.node, dsu::BagKind::kS, vid);
  g.p_stack.emplace_back(&ds_, dsu::BagKind::kP, vid);
  stack_.push_back(std::move(g));
}

void SpPlusDetector::on_frame_return(FrameId, FrameId, FrameKind kind) {
  FrameState child = std::move(stack_.back());
  stack_.pop_back();
  // The implicit sync before return leaves exactly one (empty) P bag.
  RADER_DCHECK(child.p_stack.size() == 1);
  RADER_DCHECK(child.p_stack.back().empty());
  if (stack_.empty()) return;  // root returned
  FrameState& parent = stack_.back();
  if (kind == FrameKind::kCalled) {
    // "Called G returns to F: F.S ∪= G.S."
    parent.s.merge_from(child.s);
  } else {
    // "Spawned G returns to F: Top(F.P) ∪= G.S."  Reduce invocations return
    // the same way: the reduce strand's IDs join the merged top P bag, so
    // the reduce strand stays parallel with other views' descendants but
    // serializes (same vid) with the views it merged.
    parent.p_stack.back().merge_from(child.s);
  }
}

void SpPlusDetector::on_sync(FrameId) {
  // "F syncs: F.S ∪= Top(F.P); Top(F.P) = MakeBag(∅, F.S.vid)."  All
  // reduces for the sync block have been delivered, so one P bag remains.
  FrameState& f = stack_.back();
  RADER_DCHECK(f.p_stack.size() == 1);
  f.s.merge_from(f.p_stack.back());
  f.p_stack.back() = dsu::Bag(&ds_, dsu::BagKind::kP, f.s.vid());
}

void SpPlusDetector::on_steal(FrameId, std::uint32_t, ViewId new_vid) {
  // "F executes a stolen continuation: Push(F.P, MakeBag(∅, new view ID))."
  stack_.back().p_stack.emplace_back(&ds_, dsu::BagKind::kP, new_vid);
}

void SpPlusDetector::on_reduce(FrameId, ViewId left_vid, ViewId right_vid) {
  // "F executes Reduce: p = Pop(F.P); Top(F.P) ∪= p."  The destination (the
  // dominating view's bag) keeps its view ID.
  FrameState& f = stack_.back();
  RADER_DCHECK(f.p_stack.size() >= 2);
  dsu::Bag popped = std::move(f.p_stack.back());
  f.p_stack.pop_back();
  RADER_DCHECK(popped.vid() == right_vid);
  (void)right_vid;
  RADER_DCHECK(f.p_stack.back().vid() == left_vid);
  (void)left_vid;
  f.p_stack.back().merge_from(popped);
}

bool SpPlusDetector::prior_races_oblivious(
    shadow::AccessShadow::Payload prior) {
  if (prior == shadow::AccessShadow::kEmpty) return false;
  return ds_.meta_of(prior).kind == dsu::BagKind::kP;
}

bool SpPlusDetector::prior_races_view_aware(
    shadow::AccessShadow::Payload prior, dsu::ViewId cur_vid) {
  if (prior == shadow::AccessShadow::kEmpty) return false;
  const auto& meta = ds_.meta_of(prior);
  return meta.kind == dsu::BagKind::kP && meta.vid != cur_vid;
}

void SpPlusDetector::on_clear(std::uintptr_t addr, std::size_t size) {
  if (size == 0) return;
  const std::uintptr_t first = addr >> granule_bits_;
  const std::uintptr_t last = access_last_byte(addr, size) >> granule_bits_;
  // `last` may be the top granule index; a `g <= last` condition would wrap
  // g past it and never terminate, so break after processing `last`.
  for (std::uintptr_t g = first;; ++g) {
    shadow_.clear_granule(g);
    if (g == last) break;
  }
}

void SpPlusDetector::on_access(AccessKind kind, std::uintptr_t addr,
                               std::size_t size, bool view_aware, ViewId,
                               SrcTag tag) {
  FrameState& f = stack_.back();
  const dsu::ViewId cur_vid = f.p_stack.back().vid();
  const bool in_reduce = f.is_reduce;
  const auto fid = static_cast<FrameId>(f.node);

  // Shadow replacement predicate: prior in series (S bag), or — inside a
  // Reduce invocation — prior on the view being merged (same vid).
  const auto should_replace = [&](shadow::AccessShadow::Payload prior) {
    if (prior == shadow::AccessShadow::kEmpty) return true;
    const auto& meta = ds_.meta_of(prior);
    if (meta.kind == dsu::BagKind::kS) return true;
    return in_reduce && meta.vid == cur_vid;
  };

  if (size == 0) return;
  metrics::bump(metrics::Counter::kAccessesInstrumented);
  metrics::record(metrics::Histogram::kAccessBytes, size);
  const std::uintptr_t first = addr >> granule_bits_;
  const std::uintptr_t last = access_last_byte(addr, size) >> granule_bits_;
  // `last` may be the top granule index; a `g <= last` condition would wrap
  // g past it and never terminate, so break after processing `last`.
  for (std::uintptr_t g = first;; ++g) {
    // Reported address: the first byte of THIS access within granule g (==
    // the byte itself when granule_bits=0), so distinct races inside one
    // granule keep distinct dedup identities.
    const std::uintptr_t b = std::max(addr, g << granule_bits_);
    // Extent recorded alongside the id (diagnostic; reports use `b`).
    const unsigned off = static_cast<unsigned>(b - (g << granule_bits_));
    const auto w = shadow_.writer(g);
    if (kind == AccessKind::kRead) {
      const bool races = view_aware ? prior_races_view_aware(w, cur_vid)
                                    : prior_races_oblivious(w);
      if (races) {
        trace::emit_conflict(
            fid, g, b, w,
            trace::kConflictPriorWrite |
                (view_aware ? trace::kConflictViewAware : 0),
            tag.label);
        log_->report_determinacy(make_determinacy_race(
            b, kind, view_aware, true, w, fid, tag.label));
      }
      const auto r = shadow_.reader(g);
      if (view_aware ? should_replace(r)
                     : (r == shadow::AccessShadow::kEmpty ||
                        ds_.meta_of(r).kind == dsu::BagKind::kS)) {
        shadow_.set_reader(g, f.node, off);
      }
    } else {
      const auto r = shadow_.reader(g);
      const bool reader_races = view_aware
                                    ? prior_races_view_aware(r, cur_vid)
                                    : prior_races_oblivious(r);
      if (reader_races) {
        trace::emit_conflict(
            fid, g, b, r,
            trace::kConflictWrite |
                (view_aware ? trace::kConflictViewAware : 0),
            tag.label);
        log_->report_determinacy(make_determinacy_race(
            b, kind, view_aware, false, r, fid, tag.label));
      }
      const bool writer_races = view_aware
                                    ? prior_races_view_aware(w, cur_vid)
                                    : prior_races_oblivious(w);
      if (writer_races) {
        trace::emit_conflict(
            fid, g, b, w,
            trace::kConflictWrite | trace::kConflictPriorWrite |
                (view_aware ? trace::kConflictViewAware : 0),
            tag.label);
        log_->report_determinacy(make_determinacy_race(
            b, kind, view_aware, true, w, fid, tag.label));
      }
      if (view_aware ? should_replace(w)
                     : (w == shadow::AccessShadow::kEmpty ||
                        ds_.meta_of(w).kind == dsu::BagKind::kS)) {
        shadow_.set_writer(g, f.node, off);
      }
    }
    if (g == last) break;
  }
}

}  // namespace rader
