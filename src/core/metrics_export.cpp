#include "core/metrics_export.hpp"

#include <ostream>
#include <sstream>

namespace rader {

using metrics::Counter;
using metrics::Gauge;
using metrics::Histogram;
using metrics::Phase;
using metrics::Snapshot;

std::string prometheus_family(const std::string& dotted) {
  std::string out = "rader_";
  for (const char c : dotted) out += (c == '.' ? '_' : c);
  return out;
}

namespace {

void help_and_type(std::ostringstream& os, const std::string& family,
                   const char* type, const char* help) {
  os << "# HELP " << family << ' ' << help << '\n';
  os << "# TYPE " << family << ' ' << type << '\n';
}

}  // namespace

std::string prometheus_text(const Snapshot& snap) {
  std::ostringstream os;
  // HELP text comes from the same catalog --list-metrics prints, in the
  // same order: counters, gauges, histograms, phases.
  const auto infos = metrics::list_metrics();
  for (unsigned i = 0; i < metrics::kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    const std::string family =
        prometheus_family(metrics::counter_name(c)) + "_total";
    help_and_type(os, family, "counter", infos[i].help);
    os << family << ' ' << snap.counter(c) << '\n';
  }
  for (unsigned i = 0; i < metrics::kGaugeCount; ++i) {
    const auto g = static_cast<Gauge>(i);
    const std::string family = prometheus_family(metrics::gauge_name(g));
    const char* help = infos[metrics::kCounterCount + i].help;
    help_and_type(os, family, "gauge", help);
    os << family << ' ' << snap.gauge(g).value << '\n';
    help_and_type(os, family + "_max", "gauge", help);
    os << family << "_max " << snap.gauge(g).max << '\n';
  }
  for (unsigned i = 0; i < metrics::kHistogramCount; ++i) {
    const auto h = static_cast<Histogram>(i);
    const std::string family = prometheus_family(metrics::histogram_name(h));
    const char* help =
        infos[metrics::kCounterCount + metrics::kGaugeCount + i].help;
    help_and_type(os, family, "histogram", help);
    const metrics::HistogramCell& cell = snap.hist(h);
    std::uint64_t cum = 0;
    for (unsigned b = 0; b < metrics::kHistogramBuckets; ++b) {
      cum += cell.buckets[b];
      // Emit only the buckets that change the cumulative count (plus
      // bucket 0 when occupied): the full 64-bucket series is noise.
      if (cell.buckets[b] == 0) continue;
      os << family << "_bucket{le=\"" << metrics::histogram_bucket_bound(b)
         << "\"} " << cum << '\n';
    }
    os << family << "_bucket{le=\"+Inf\"} " << cell.count << '\n';
    os << family << "_sum " << cell.sum << '\n';
    os << family << "_count " << cell.count << '\n';
  }
  {
    const std::string family = "rader_phase_seconds";
    help_and_type(os, family, "counter",
                  "wall seconds accumulated per coarse phase");
    os.precision(9);
    os << std::fixed;
    for (unsigned i = 0; i < metrics::kPhaseCount; ++i) {
      const auto p = static_cast<Phase>(i);
      os << family << "{phase=\"" << metrics::phase_name(p) << "\"} "
         << snap.phase_seconds(p) << '\n';
    }
  }
  return os.str();
}

std::string jsonl_sample(std::uint64_t t_ms, std::uint64_t done,
                         std::uint64_t total, const Snapshot& snap) {
  std::ostringstream os;
  os << "{\"t_ms\":" << t_ms << ",\"done\":" << done << ",\"total\":"
     << total << ",\"metrics\":" << snap.to_json() << '}';
  return os.str();
}

MetricsSampler::MetricsSampler(std::ostream* out, std::uint64_t interval_ms)
    : out_(out),
      interval_nanos_(interval_ms * 1'000'000),
      epoch_nanos_(metrics::now_nanos()) {}

void MetricsSampler::write_line(std::uint64_t done, std::uint64_t total,
                                const Snapshot& snap) {
  const std::uint64_t now = metrics::now_nanos();
  last_nanos_ = now;
  ++samples_;
  *out_ << jsonl_sample((now - epoch_nanos_) / 1'000'000, done, total, snap)
        << '\n';
  out_->flush();
}

void MetricsSampler::maybe_sample(std::uint64_t done, std::uint64_t total,
                                  const Snapshot& snap) {
  if (out_ == nullptr) return;
  const std::uint64_t now = metrics::now_nanos();
  if (last_nanos_ != 0 && now - last_nanos_ < interval_nanos_) return;
  write_line(done, total, snap);
}

void MetricsSampler::final_sample(std::uint64_t done, std::uint64_t total,
                                  const Snapshot& snap) {
  if (out_ == nullptr) return;
  write_line(done, total, snap);
}

}  // namespace rader
