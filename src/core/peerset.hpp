// The Peer-Set algorithm (Section 3 of the paper, pseudocode in Figure 3).
//
// Peer-Set detects VIEW-READ RACES: two reducer-reads (create / set_value /
// get_value / destroy) executed at strands u, v with peers(u) != peers(v),
// where peers(u) = { w : w ‖ u }.  By the paper's "peer-set semantics", the
// view visible at v is guaranteed to reflect the updates since u only when
// u and v have the same peers — so a read at a strand with a different peer
// set may observe a nondeterministic, schedule-dependent value.
//
// Per active function F the algorithm maintains:
//   F.ls — local-spawn count: spawns since F last synced;
//   F.as — ancestor-spawn count: spawns each ancestor performed since it
//          last synced, inherited at frame creation;
//   F.SS — completed descendants with the same peer set as F's 1st strand;
//   F.SP — completed descendants with the same peer set as the last
//          continuation strand F executed;
//   F.P  — all other completed descendants;
// plus the reducer shadow space reader(h) = (last reading frame, its spawn
// count).  A read races iff the last reader sits in a P bag or the spawn
// counts differ (Lemmas 2–3: same peer set iff the parse-tree path between
// the reads is all S nodes).
//
// Runs in O(T α(x, x)) for a T-time serial execution with x reducers
// (Theorem 1); it is exact — reports a view-read race iff one exists
// (Theorem 4).
#pragma once

#include <vector>

#include "core/race_report.hpp"
#include "dsu/disjoint_set.hpp"
#include "shadow/reducer_shadow.hpp"
#include "tool/tool.hpp"

namespace rader {

class PeerSetDetector final : public Tool {
 public:
  explicit PeerSetDetector(RaceLog* log) : log_(log) {}

  void on_run_begin() override;
  void on_frame_enter(FrameId frame, FrameId parent, FrameKind kind,
                      ViewId vid) override;
  void on_frame_return(FrameId frame, FrameId parent, FrameKind kind) override;
  void on_sync(FrameId frame) override;
  void on_reducer_op(ReducerOp op, ReducerId h, SrcTag tag) override;

  /// Deep clone of the detection state (bags, DSU forest, reducer shadow),
  /// reporting into `log`.
  std::unique_ptr<Tool> fork(RaceLog* log) const override;

 private:
  struct FrameState {
    dsu::Node node = dsu::kInvalidNode;
    std::uint64_t as = 0;  // ancestor-spawn count
    std::uint64_t ls = 0;  // local-spawn count
    dsu::Bag ss;
    dsu::Bag sp;
    dsu::Bag p;
  };

  dsu::DisjointSets ds_;
  std::vector<FrameState> stack_;
  shadow::ReducerShadow reader_;
  RaceLog* log_;
};

/// Peer-Set behind the parallel engine's capability surface
/// (ParallelEngine::set_tool).  The engine replays the spliced event shards
/// on worker 0 in depth-first order, byte-identical to a serial no-steal
/// stream, so the serial detector runs unchanged — same bags, same shadow,
/// same reports — while the program itself executes on all cores.  Peer-Set
/// consumes no memory accesses, so wants_accesses() stays false and the
/// engine's access hooks remain near-free.
class ParallelPeerSet final : public ParallelTool {
 public:
  explicit ParallelPeerSet(RaceLog* log) : detector_(log) {}

  void on_run_begin() override { detector_.on_run_begin(); }
  void on_frame_enter(FrameId frame, FrameId parent, FrameKind kind,
                      ViewId vid) override {
    detector_.on_frame_enter(frame, parent, kind, vid);
  }
  void on_frame_return(FrameId frame, FrameId parent,
                       FrameKind kind) override {
    detector_.on_frame_return(frame, parent, kind);
  }
  void on_sync(FrameId frame) override { detector_.on_sync(frame); }
  void on_reducer_op(ReducerOp op, ReducerId h, SrcTag tag) override {
    detector_.on_reducer_op(op, h, tag);
  }

 private:
  PeerSetDetector detector_;
};

}  // namespace rader
