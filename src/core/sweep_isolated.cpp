// The --isolate=procs sweep backend: shard the family across sandboxed
// child processes (support/subprocess.hpp) under a single-threaded
// retry/quarantine supervisor.
//
// Topology.  The supervisor splits the budgeted family into contiguous
// shards and keeps up to `threads` children alive, each executing one
// shard's specs in ascending order through the SAME SpecExecutor the
// in-process workers use (core/sweep_internal.hpp) — that sharing, plus the
// family-order merge at the end, is what makes the surviving-spec result
// byte-identical to the in-process sweep.  Children are fork()s without
// exec, so the ProgramFactory closure runs directly in the sandbox; results
// come back over a pipe as a line protocol:
//
//   begin <i>                        about to execute family index i
//   metrics <snapshot wire>          cumulative child metrics (report_wire)
//   spec <i> <ran> <nanos> <json>    family[i]'s stamped RaceLog::to_json()
//   done                             shard complete
//
// Each completed spec ships `metrics` THEN `spec`, so the last metrics line
// received always covers exactly the specs whose results were salvaged —
// detector work of a spec that died mid-run is never counted.  For the same
// reason the child never bumps the per-spec accounting metrics (kSpecRuns /
// kSweepDedupReuses / kSpecRunNanos); the supervisor bumps them per `spec`
// line it actually parses.
//
// Failure handling (docs/ROBUSTNESS.md has the full state machine).  A
// child that exits nonzero, dies on a signal, breaks protocol, or blows a
// deadline is classified (signal / timeout / oom / error) and its
// UNFINISHED range [next_expect, hi) re-enters the queue:
//   retry       while the shard has relaunches left (exponential backoff);
//   quarantine  once retries are exhausted and the culprit is attributable
//               (a `begin` with no matching `spec` names it) or the range
//               is a single spec — the spec lands in SweepResult::failures
//               and the REST of the range continues as a fresh shard;
//   bisect      retries exhausted but no attribution (the child died before
//               its first `begin`, e.g. in a constructor): split the range
//               and recurse — guaranteed to terminate at size 1.
// Salvaged results are never re-run and never double-counted.  The sweep
// therefore always completes: every index of the merged prefix either ran
// or is quarantined.
//
// Monitor duties (--progress / --metrics-out / --watchdog-ms) run inline in
// the supervisor loop — forking a multithreaded process is a minefield, so
// the supervisor owns no threads at all.  --watchdog-kill escalates a
// stalled child from diagnosis to recovery through the same quarantine
// path.
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <ctime>
#include <deque>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics_export.hpp"
#include "core/report_wire.hpp"
#include "core/sweep.hpp"
#include "core/sweep_internal.hpp"
#include "runtime/view_arena.hpp"
#include "support/common.hpp"
#include "support/crash.hpp"
#include "support/faultpoint.hpp"
#include "support/metrics.hpp"
#include "support/profile.hpp"
#include "support/rolling_rate.hpp"
#include "support/subprocess.hpp"
#include "support/trace.hpp"

namespace rader::sweep_internal {

namespace {

/// A contiguous range of family indices awaiting execution.
struct Shard {
  std::size_t lo = 0;
  std::size_t hi = 0;            // exclusive
  unsigned retries = 0;          // relaunches already spent on this range
  bool exhausted = false;        // bisection half of a retries-spent shard
  std::uint64_t not_before = 0;  // backoff: don't launch before this nanos
  std::uint64_t failed_at = 0;   // when the previous attempt failed (0 = ∅)
};

/// One live child slot.
struct Slot {
  subprocess::Child child;
  Shard shard;
  std::string buf;              // partial-line pipe buffer
  std::size_t next_expect = 0;  // next family index owed a `spec` line
  bool begun = false;           // `begin next_expect` seen, no `spec` yet
  bool done_seen = false;
  bool protocol_error = false;
  bool eof = false;
  bool discard = false;  // stop-first: remaining results not needed
  std::uint64_t spec_start = 0;     // when `begin` of the in-flight spec hit
  std::uint64_t last_activity = 0;  // last pipe line (watchdog-kill clock)
  metrics::Snapshot child_metrics;  // newest `metrics` line
  bool has_metrics = false;
  std::string postmortem;  // where this attempt's crash handler dumps
};

std::uint64_t ms_to_nanos(std::uint64_t ms) { return ms * 1'000'000ull; }

/// Exponential backoff before relaunching a failed shard: 25ms doubling,
/// capped at 400ms — enough to ride out transient resource exhaustion
/// without stretching deterministic-failure quarantines.
std::uint64_t backoff_nanos(unsigned retries) {
  return ms_to_nanos(25ull << std::min(retries, 4u));
}

/// Flush `text` to the pipe, raw write(2) (the child must not stdio-buffer:
/// the supervisor attributes failures by which lines ARRIVED).
void write_raw(int fd, const std::string& text) {
  const char* p = text.data();
  std::size_t left = text.size();
  while (left > 0) {
    const ssize_t w = ::write(fd, p, left);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;  // supervisor gone; the child will die of SIGKILL shortly
    }
    p += static_cast<std::size_t>(w);
    left -= static_cast<std::size_t>(w);
  }
}

void write_line(int fd, const std::string& text) {
  write_raw(fd, text + "\n");
}

std::string classify(const subprocess::Status& st) {
  switch (st.kind) {
    case subprocess::ExitKind::kTimedOut:
      return "timeout";
    case subprocess::ExitKind::kSignaled:
      return "signal";
    case subprocess::ExitKind::kExited:
      return st.exit_code == subprocess::kOomExitCode ? "oom" : "error";
    default:
      return "error";
  }
}

/// The sandboxed shard runner (executes in the forked child).
int child_main(int fd, const ProgramFactory& make_program,
               const std::vector<std::unique_ptr<spec::StealSpec>>& family,
               const SweepOptions& options, const Shard& shard,
               const std::string& postmortem) {
  // Crash diagnostics: this child's fatal-signal dumps go to its own file
  // (or inherit the parent's destination when no --postmortem-dir).
  if (!postmortem.empty()) {
    crash::install_signal_handler(postmortem.c_str());
  }
  faultpoint::fire(faultpoint::kSiteSweepChild, shard.lo);
  view_arena::Scope arena_scope;
  metrics::Registry reg;
  metrics::Scope scope(&reg);
  metrics::SharedSnapshot shared(1);
  crash::InflightTable inflight;
  {
    crash::PostmortemSources sources;
    sources.metrics = &shared;
    sources.inflight = &inflight;
    sources.activity = "sweep-child";
    crash::set_sources(sources);
  }
  {
    SpecExecutor exec(make_program, family, options);
    // One write(2) per spec: the previous spec's `metrics` + `spec` lines
    // ride in the same flush as the next `begin`, so the attribution
    // invariant holds (a spec's `begin` always reaches the supervisor
    // before the spec runs) at a third of the syscall/wakeup traffic.
    std::string pending;
    for (std::size_t i = shard.lo; i < shard.hi; ++i) {
      {
        char text[crash::InflightTable::kChars];
        std::snprintf(text, sizeof text, "spec[%zu] %s", i,
                      family[i]->describe().c_str());
        inflight.set(0, text);
      }
      pending += "begin " + std::to_string(i) + "\n";
      write_raw(fd, pending);
      pending.clear();
      RaceLog log;
      const SpecExecutor::RunOutcome outcome = exec.run(i, &log);
      log.stamp_found_under(family[i]->describe());
      const metrics::Snapshot snap = reg.snapshot();
      shared.publish(0, snap);
      inflight.clear(0);
      // metrics BEFORE spec: the newest metrics line the supervisor holds
      // then always covers exactly the salvaged specs.
      pending += "metrics " + snapshot_to_wire(snap) + "\n";
      std::ostringstream line;
      line << "spec " << i << ' ' << (outcome.executed ? 1 : 0) << ' '
           << outcome.nanos << ' ' << log.to_json() << '\n';
      pending += line.str();
    }
    write_raw(fd, pending);
  }
  // Final totals AFTER the executor is destroyed, so live-level gauges
  // (checkpoints) read zero, exactly like a joined in-process worker.
  write_line(fd, "metrics " + snapshot_to_wire(reg.snapshot()));
  write_line(fd, "done");
  crash::clear_sources();
  return 0;
}

}  // namespace

SweepResult sweep_family_isolated(
    const ProgramFactory& make_program,
    const std::vector<std::unique_ptr<spec::StealSpec>>& family,
    const SweepOptions& options) {
  SweepResult result;
  const std::size_t total = family.size();
  const std::size_t n = (options.budget != 0 && options.budget < total)
                            ? static_cast<std::size_t>(options.budget)
                            : total;
  if (n == 0) {
    result.specs_skipped = total;
    return result;
  }

  unsigned threads = options.threads != 0
                         ? options.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, n));

  // Same determinism backbone as the in-process sweep: one log per family
  // member, merged in family order at the end.
  std::vector<RaceLog> per_spec(n);
  std::vector<char> ran(n, 0);
  std::map<std::size_t, SweepFailure> quarantined;
  std::size_t first_racy = n;  // lowest racy index (stop-first prefix bound)
  std::uint64_t done_specs = 0;   // salvaged + quarantined
  std::uint64_t racy_specs = 0;
  std::vector<std::uint64_t> slot_done(threads, 0);

  // The supervisor's own registry: per-spec accounting replayed from wire
  // lines, plus the isolation counters.  Child registries arrive as wire
  // snapshots and fold into `child_totals`.
  metrics::Registry sup_reg;
  metrics::Snapshot child_totals;
  metrics::Registry merge_reg;
  metrics::SharedSnapshot shared(1);
  crash::InflightTable inflight;
  {
    crash::PostmortemSources sources;
    sources.metrics = &shared;
    sources.inflight = &inflight;
    sources.trace_session = trace::session();
    sources.activity = "sweep";
    crash::set_sources(sources);
  }

  prof::Profiler* const outer_prof = prof::current();
  prof::Profiler sweep_prof;
  {
    prof::Scope pscope(&sweep_prof);
    prof::Phase sweep_phase("sweep");

    // Shard geometry: ~4 shards per concurrent child bounds the work lost
    // to one crash, capped at 64 specs so a single shard can't serialize
    // the tail; at least 1.
    const std::size_t shard_size = std::clamp<std::size_t>(
        n / (static_cast<std::size_t>(threads) * 4), 1, 64);
    std::deque<Shard> queue;
    for (std::size_t lo = 0; lo < n; lo += shard_size) {
      Shard s;
      s.lo = lo;
      s.hi = std::min(lo + shard_size, n);
      queue.push_back(s);
    }

    subprocess::Limits limits;
    limits.memory_bytes =
        std::uint64_t{options.child_mem_mb} * 1024 * 1024;
    if (options.spec_timeout_ms > 0) {
      // CPU-time backstop in case the supervisor itself dies: generous
      // multiple of the shard's total wall budget, so it never fires first.
      limits.cpu_seconds = std::max<unsigned>(
          5, static_cast<unsigned>(std::uint64_t{options.spec_timeout_ms} *
                                   (shard_size + 1) * 4 / 1000));
    }

    std::vector<std::unique_ptr<Slot>> slots(threads);
    unsigned attempt_counter = 0;

    // ----- inline monitor state (heartbeat / JSONL sampler / watchdog) ----
    std::ostream& progress_out =
        options.progress_out != nullptr ? *options.progress_out : std::cerr;
    MetricsSampler sampler(options.metrics_out,
                           std::max(1u, options.metrics_interval_ms));
    const unsigned heartbeat_ms = std::max(1u, options.progress_interval_ms);
    support::RollingRate rate;
    metrics::Stopwatch clock;
    rate.sample(metrics::now_nanos(), 0);
    std::uint64_t last_heartbeat = 0;
    std::uint64_t last_change = metrics::now_nanos();
    std::uint64_t watchdog_last_done = 0;
    bool watchdog_armed = true;

    const auto live_totals = [&] {
      metrics::Snapshot live = sup_reg.snapshot();
      live.add(child_totals);
      for (const auto& s : slots) {
        if (s && s->has_metrics) live.add(s->child_metrics);
      }
      return live;
    };

    const auto heartbeat_line = [&](bool final) {
      std::ostringstream workers;
      for (std::size_t w = 0; w < slot_done.size(); ++w) {
        workers << (w == 0 ? "" : " ") << 'w' << w << ':' << slot_done[w];
      }
      const std::uint64_t remaining = n > done_specs ? n - done_specs : 0;
      char perf[96];
      if (final) {
        const double secs = std::max(clock.seconds(), 1e-9);
        std::snprintf(perf, sizeof(perf), "%.1f specs/s, %.2fs elapsed",
                      static_cast<double>(done_specs) / secs, secs);
      } else {
        const double r = rate.rate_per_sec();
        if (r > 0.0) {
          std::snprintf(perf, sizeof(perf), "%.1f specs/s, eta %.1fs", r,
                        rate.eta_seconds(remaining));
        } else {
          std::snprintf(perf, sizeof(perf), "%.1f specs/s, eta --", r);
        }
      }
      std::ostringstream os;
      os << (final ? "sweep done: " : "sweep: ") << done_specs << '/' << n
         << " specs (" << perf << ", racy " << racy_specs << ") ["
         << workers.str() << ']';
      return os.str();
    };

    // ----- supervisor actions ---------------------------------------------

    const auto quarantine = [&](std::size_t index, const std::string& cause,
                                int sig, unsigned retries,
                                const std::string& postmortem) {
      SweepFailure f;
      f.index = index;
      f.spec = family[index]->describe();
      f.cause = cause;
      f.signal = sig;
      f.retries = retries;
      if (!postmortem.empty() && ::access(postmortem.c_str(), F_OK) == 0) {
        f.postmortem = postmortem;
      }
      quarantined.emplace(index, std::move(f));
      sup_reg.bump(metrics::Counter::kSweepQuarantined);
      ++done_specs;
    };

    // A failed attempt over [lo, hi): decide retry / quarantine / bisect.
    // `culprit_known` means `lo` itself is attributable (its `begin`
    // arrived, its `spec` line did not).
    const auto on_shard_failure = [&](const Shard& shard, std::size_t lo,
                                      bool culprit_known,
                                      const std::string& cause, int sig,
                                      const std::string& postmortem) {
      const std::size_t hi = shard.hi;
      if (lo >= hi) return;  // died after its last result: nothing lost
      const std::uint64_t now = metrics::now_nanos();
      if (!shard.exhausted && shard.retries < options.max_retries) {
        Shard retry;
        retry.lo = lo;
        retry.hi = hi;
        retry.retries = shard.retries + 1;
        retry.not_before = now + backoff_nanos(retry.retries);
        retry.failed_at = now;
        sup_reg.bump(metrics::Counter::kSweepRetries);
        queue.push_back(retry);
        return;
      }
      if (culprit_known || hi - lo == 1) {
        quarantine(lo, cause, sig, shard.retries, postmortem);
        if (lo + 1 < hi) {
          // The rest of the range is presumed innocent: fresh shard with a
          // fresh retry allowance.
          Shard rest;
          rest.lo = lo + 1;
          rest.hi = hi;
          rest.failed_at = now;
          queue.push_back(rest);
        }
        return;
      }
      // Retries spent, no attribution: bisect.  Halves keep `exhausted` so
      // a further unattributed failure keeps narrowing; an attributed one
      // quarantines immediately.  Terminates: every split strictly shrinks
      // the range, and size-1 ranges take the quarantine branch above.
      const std::size_t mid = lo + (hi - lo) / 2;
      for (const auto& half :
           {std::pair<std::size_t, std::size_t>{lo, mid},
            std::pair<std::size_t, std::size_t>{mid, hi}}) {
        Shard s;
        s.lo = half.first;
        s.hi = half.second;
        s.retries = shard.retries;
        s.exhausted = true;
        s.not_before = now + backoff_nanos(0);
        s.failed_at = now;
        queue.push_back(s);
      }
    };

    const auto record_spec = [&](unsigned widx, std::size_t i, bool executed,
                                 std::uint64_t nanos, RaceLog&& log) {
      if (i >= n || ran[i] != 0 || quarantined.count(i) != 0) return;
      per_spec[i] = std::move(log);
      ran[i] = 1;
      ++done_specs;
      ++slot_done[widx];
      if (executed) {
        sup_reg.bump(metrics::Counter::kSpecRuns);
        sup_reg.record(metrics::Histogram::kSpecRunNanos, nanos);
      } else {
        sup_reg.bump(metrics::Counter::kSweepDedupReuses);
      }
      if (per_spec[i].any()) {
        ++racy_specs;
        if (options.stop_after_first_race && i < first_racy) first_racy = i;
      }
    };

    const auto process_line = [&](unsigned widx, Slot& s,
                                  const std::string& line) {
      s.last_activity = metrics::now_nanos();
      std::istringstream in(line);
      std::string verb;
      in >> verb;
      if (verb == "begin") {
        std::size_t i = 0;
        in >> i;
        if (!in || i != s.next_expect) {
          s.protocol_error = true;
          return;
        }
        s.begun = true;
        s.spec_start = s.last_activity;
        char text[crash::InflightTable::kChars];
        std::snprintf(text, sizeof text, "child[%d] spec[%zu] %s",
                      s.child.pid(), i, family[i]->describe().c_str());
        inflight.set(widx, text);
      } else if (verb == "metrics") {
        const std::size_t at = line.find(' ');
        metrics::Snapshot snap;
        if (at == std::string::npos ||
            !snapshot_from_wire(line.substr(at + 1), &snap)) {
          s.protocol_error = true;
          return;
        }
        s.child_metrics = snap;
        s.has_metrics = true;
      } else if (verb == "spec") {
        std::size_t i = 0;
        int executed = 0;
        std::uint64_t nanos = 0;
        in >> i >> executed >> nanos;
        std::string json;
        std::getline(in, json);
        if (!in || i != s.next_expect || json.size() < 2) {
          s.protocol_error = true;
          return;
        }
        json.erase(0, 1);  // the separating space
        RaceLog log;
        std::string error;
        if (!race_log_from_json(json, &log, &error)) {
          s.protocol_error = true;
          return;
        }
        record_spec(widx, i, executed != 0, nanos, std::move(log));
        s.next_expect = i + 1;
        s.begun = false;
        inflight.clear(widx);
      } else if (verb == "done") {
        s.done_seen = true;
      } else {
        s.protocol_error = true;
      }
    };

    const auto spawn_shard = [&](unsigned widx, Shard shard) {
      const std::uint64_t now = metrics::now_nanos();
      if (shard.failed_at != 0) {
        // Failure-detection → replacement-spawn latency (includes backoff).
        sup_reg.record(metrics::Histogram::kChildRestartNanos,
                       now - shard.failed_at);
      }
      std::string postmortem;
      if (!options.postmortem_dir.empty()) {
        postmortem = options.postmortem_dir + "/child-" +
                     std::to_string(shard.lo) + "-" +
                     std::to_string(attempt_counter++) + ".postmortem";
      }
      auto slot = std::make_unique<Slot>();
      slot->shard = shard;
      slot->next_expect = shard.lo;
      slot->postmortem = postmortem;
      slot->last_activity = now;
      slot->child = subprocess::Child::spawn(
          [&make_program, &family, &options, shard, postmortem](int fd) {
            return child_main(fd, make_program, family, options, shard,
                              postmortem);
          },
          limits);
      if (!slot->child.valid()) {
        // fork()/pipe() failure — possibly transient resource exhaustion;
        // send the whole range through the ordinary failure path.
        on_shard_failure(shard, shard.lo, /*culprit_known=*/false, "error",
                         0, postmortem);
        return;
      }
      slots[widx] = std::move(slot);
    };

    // Reap + account a slot whose pipe closed.  Returns true when the slot
    // was fully processed and freed.
    const auto finalize_slot = [&](unsigned widx) {
      Slot& s = *slots[widx];
      if (!s.child.try_wait()) return false;
      inflight.clear(widx);
      if (s.has_metrics) {
        const bool clean_exit =
            s.child.status().kind == subprocess::ExitKind::kExited &&
            s.child.status().exit_code == 0;
        if (!clean_exit) {
          // A dead child's live-level gauges (checkpoints) vanished with
          // its address space: fold the high-water marks, not the levels.
          for (auto& g : s.child_metrics.gauges) g.value = 0;
        }
        child_totals.add(s.child_metrics);
      }
      const bool success =
          s.child.status().kind == subprocess::ExitKind::kExited &&
          s.child.status().exit_code == 0 && s.done_seen &&
          s.next_expect >= s.shard.hi && !s.protocol_error;
      if (!s.discard && !success) {
        sup_reg.bump(metrics::Counter::kSweepChildCrashes);
        const bool culprit_known = s.begun && !s.protocol_error;
        on_shard_failure(s.shard, s.next_expect, culprit_known,
                         classify(s.child.status()),
                         s.child.status().term_signal, s.postmortem);
      }
      slots[widx].reset();
      return true;
    };

    const auto running_count = [&] {
      std::size_t c = 0;
      for (const auto& s : slots) c += (s != nullptr);
      return c;
    };

    // ----- main loop ------------------------------------------------------
    for (;;) {
      std::uint64_t now = metrics::now_nanos();

      // Launch: fill free slots with eligible shards (backoff honored;
      // stop-first trims ranges past the racy prefix).
      for (unsigned w = 0; w < threads && !queue.empty(); ++w) {
        if (slots[w]) continue;
        auto it = std::find_if(queue.begin(), queue.end(), [&](Shard& q) {
          return q.not_before <= now;
        });
        if (it == queue.end()) break;
        Shard shard = *it;
        queue.erase(it);
        if (options.stop_after_first_race) {
          shard.hi = std::min(shard.hi, first_racy + 1);
          if (shard.lo >= shard.hi) continue;
        }
        spawn_shard(w, shard);
        now = metrics::now_nanos();
      }

      if (queue.empty() && running_count() == 0) break;

      // Drain pipes (bounded poll so deadlines and heartbeats stay live).
      {
        std::vector<int> fds;
        for (const auto& s : slots) {
          if (s && !s->eof && s->child.out_fd() >= 0) {
            fds.push_back(s->child.out_fd());
          }
        }
        if (fds.empty()) {
          struct timespec ts = {0, 5'000'000};  // 5ms: backoff/reap wait
          nanosleep(&ts, nullptr);
        } else {
          subprocess::poll_readable(fds, 20);
        }
      }
      for (unsigned w = 0; w < threads; ++w) {
        if (!slots[w]) continue;
        Slot& s = *slots[w];
        if (!s.eof && !s.child.read_available(&s.buf)) s.eof = true;
        std::size_t nl;
        while ((nl = s.buf.find('\n')) != std::string::npos) {
          const std::string line = s.buf.substr(0, nl);
          s.buf.erase(0, nl + 1);
          if (!line.empty()) process_line(w, s, line);
        }
      }

      // Deadlines: per-spec timeout, watchdog-kill, stop-first discard.
      now = metrics::now_nanos();
      for (unsigned w = 0; w < threads; ++w) {
        if (!slots[w] || slots[w]->eof) continue;
        Slot& s = *slots[w];
        const bool spec_overdue =
            options.spec_timeout_ms > 0 && s.begun &&
            now - s.spec_start > ms_to_nanos(options.spec_timeout_ms);
        const bool stalled =
            options.watchdog_kill && options.watchdog_ms > 0 &&
            now - s.last_activity > ms_to_nanos(options.watchdog_ms);
        const bool irrelevant = options.stop_after_first_race &&
                                s.next_expect > first_racy;
        if (spec_overdue || stalled) {
          s.child.kill_timeout();
        } else if (irrelevant) {
          // Results already salvaged stay; the rest can never join the
          // deterministic prefix [0, first_racy].
          s.discard = true;
          s.child.kill_hard();
        } else {
          continue;
        }
        // Drain what the pipe still holds, then let finalize classify.
        while (s.child.read_available(&s.buf)) {
        }
        s.eof = true;
        std::size_t nl;
        while ((nl = s.buf.find('\n')) != std::string::npos) {
          const std::string line = s.buf.substr(0, nl);
          s.buf.erase(0, nl + 1);
          if (!line.empty() && !s.discard) process_line(w, s, line);
        }
      }

      // Reap.
      for (unsigned w = 0; w < threads; ++w) {
        if (slots[w] && slots[w]->eof) finalize_slot(w);
      }

      // Inline monitor duties.
      now = metrics::now_nanos();
      sup_reg.gauge_set(metrics::Gauge::kSweepQueueDepth,
                        static_cast<std::int64_t>(n - done_specs));
      shared.publish(0, live_totals());
      if (options.progress &&
          now - last_heartbeat >= ms_to_nanos(heartbeat_ms)) {
        last_heartbeat = now;
        rate.sample(now, done_specs);
        progress_out << heartbeat_line(/*final=*/false) << std::endl;
      }
      if (options.metrics_out != nullptr) {
        sampler.maybe_sample(done_specs, n, live_totals());
      }
      if (options.watchdog_ms > 0) {
        if (done_specs != watchdog_last_done) {
          watchdog_last_done = done_specs;
          last_change = now;
          watchdog_armed = true;
        } else if (watchdog_armed && done_specs < n &&
                   now - last_change >= ms_to_nanos(options.watchdog_ms)) {
          // Diagnosis always; recovery (the kill path above) only with
          // --watchdog-kill.  One report per stall episode.
          crash::write_postmortem(options.watchdog_fd,
                                  "watchdog: sweep stalled");
          sup_reg.bump(metrics::Counter::kPostmortemDumps);
          watchdog_armed = false;
        }
      }
    }

    // Final monitor output (exact totals: everything has been reaped).
    sup_reg.gauge_set(metrics::Gauge::kSweepQueueDepth,
                      static_cast<std::int64_t>(n - done_specs));
    if (options.progress) {
      progress_out << heartbeat_line(/*final=*/true) << std::endl;
    }
    if (options.metrics_out != nullptr) {
      sampler.final_sample(done_specs, n, live_totals());
    }

    // Merge exactly the deterministic prefix, skipping quarantined holes —
    // identical to the in-process merge on the surviving members.
    const std::size_t limit = first_racy < n ? first_racy + 1 : n;
    {
      metrics::Scope scope(&merge_reg);
      metrics::PhaseTimer timer(metrics::Phase::kMerge);
      prof::Phase merge_phase("merge");
      for (std::size_t i = 0; i < limit; ++i) {
        if (ran[i] != 0) {
          result.log.merge(per_spec[i]);
          ++result.spec_runs;
          continue;
        }
        const auto it = quarantined.find(i);
        RADER_CHECK_MSG(it != quarantined.end(),
                        "isolated sweep left a hole in the merged prefix");
        result.failures.push_back(it->second);
      }
    }
  }
  crash::clear_sources();
  result.specs_skipped = total - result.spec_runs - result.failures.size();
  result.metrics.add(child_totals);
  result.metrics.add(sup_reg.snapshot());
  result.metrics.add(merge_reg.snapshot());
  if (metrics::Registry* outer = metrics::current()) {
    outer->absorb(result.metrics);
  }
  if (outer_prof != nullptr) {
    outer_prof->absorb(sweep_prof.root());
  }
  return result;
}

}  // namespace rader::sweep_internal
