// The SP-bags algorithm of Feng and Leiserson — the baseline detector.
//
// SP-bags detects determinacy races in Cilk computations WITHOUT reducers:
// it maintains, per active function F, an S bag (completed descendants in
// series with the currently executing strand, plus F itself) and a P bag
// (completed descendants logically in parallel with it), plus reader/writer
// shadow spaces, and checks every access against them.
//
// This is the algorithm embodied by the Nondeterminator and Cilk Screen.
// As Section 2 of the paper demonstrates (Figure 1), it "will not catch
// [the] race [in Figure 1], because the determinacy race involves a
// view-aware instruction executed in a Reduce operation" — it has no notion
// of views.  We implement it (a) as the correctness baseline for ordinary
// programs and (b) to reproduce exactly that miss in the tests.
//
// Under a no-steal specification SP+ degenerates to SP-bags; this standalone
// implementation keeps the baseline honest and independently testable.
#pragma once

#include <vector>

#include "core/race_report.hpp"
#include "dsu/disjoint_set.hpp"
#include "shadow/access_shadow.hpp"
#include "tool/tool.hpp"

namespace rader {

class SpBagsDetector final : public Tool {
 public:
  /// `granule_bits` sets the shadow granularity: one shadow cell per
  /// 2^granule_bits bytes.  0 = byte-exact (the default, preserving the
  /// exact iff guarantee); 3 = word granularity, trading possible false
  /// sharing of a cell by adjacent objects for ~8x fewer shadow operations
  /// (the ThreadSanitizer-style tradeoff; see bench/ablation_granularity).
  explicit SpBagsDetector(RaceLog* log, unsigned granule_bits = 0)
      : granule_bits_(granule_bits), log_(log) {}

  void on_run_begin() override;
  void on_frame_enter(FrameId frame, FrameId parent, FrameKind kind,
                      ViewId vid) override;
  void on_frame_return(FrameId frame, FrameId parent, FrameKind kind) override;
  void on_sync(FrameId frame) override;
  void on_access(AccessKind kind, std::uintptr_t addr, std::size_t size,
                 bool view_aware, ViewId vid, SrcTag tag) override;
  void on_clear(std::uintptr_t addr, std::size_t size) override;

  /// Deep clone of the detection state (bags, DSU forest, shadow spaces —
  /// the latter shared copy-on-write), reporting into `log`.
  std::unique_ptr<Tool> fork(RaceLog* log) const override;

 private:
  struct FrameState {
    dsu::Node node = dsu::kInvalidNode;
    dsu::Bag s;
    dsu::Bag p;
  };

  unsigned granule_bits_;
  dsu::DisjointSets ds_;
  std::vector<FrameState> stack_;
  shadow::AccessShadow shadow_;
  RaceLog* log_;
};

}  // namespace rader
