// Metrics exposition: the two wire formats the observability hub speaks.
//
// 1. Prometheus text format (`prometheus_text`): one point-in-time
//    rendering of a metrics::Snapshot in the exposition format every
//    scrape-based collector parses.  Dotted metric names become
//    underscore-joined and `rader_`-prefixed (`sweep.spec_runs` →
//    `rader_sweep_spec_runs`), counters gain the conventional `_total`
//    suffix, gauges emit both the level and a `_max` companion, phases
//    become `rader_phase_seconds{phase="..."}`, and histograms emit the
//    full cumulative-`le` bucket series plus `_sum`/`_count` — so p50/p90
//    /p99 can be recomputed server-side with histogram_quantile().  HELP
//    and TYPE lines come from metrics::list_metrics(), the same catalog
//    `rader --list-metrics` prints.  The CLI writes one snapshot per run
//    via `--metrics-prom=FILE`.
//
// 2. JSONL time series (`jsonl_sample` + `MetricsSampler`): one JSON
//    object per line, each a timestamped live snapshot
//    (`{"t_ms":...,"done":...,"total":...,"metrics":{...}}`), appended at
//    a fixed cadence while a sweep runs.  The sweep's monitor thread
//    drives the sampler (`--metrics-out=FILE --metrics-interval-ms=N`)
//    off the workers' SharedSnapshot slots, so sampling never touches the
//    hot path — the enabled cost is budgeted by bench/sweep_scaling
//    --check-metrics-overhead at <= 1.05x geomean.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "support/metrics.hpp"

namespace rader {

/// Render `snap` in the Prometheus text exposition format (HELP/TYPE/sample
/// lines, trailing newline).  Pure function of the snapshot.
std::string prometheus_text(const metrics::Snapshot& snap);

/// Canonical Prometheus family name for a dotted rader metric name:
/// "sweep.spec_runs" → "rader_sweep_spec_runs".  No type suffix.
std::string prometheus_family(const std::string& dotted);

/// Render one JSONL time-series sample: a single line (no trailing
/// newline) with wall-clock milliseconds since the sampler's epoch,
/// sweep progress, and the full metrics block of report schema v4.
std::string jsonl_sample(std::uint64_t t_ms, std::uint64_t done,
                         std::uint64_t total,
                         const metrics::Snapshot& snap);

/// Periodic JSONL sampler: `maybe_sample` is called from the sweep's
/// monitor loop (single thread) and appends one line whenever at least
/// `interval_ms` has elapsed since the previous line; `final_sample`
/// writes the quiesced end-of-run totals unconditionally.  The stream is
/// borrowed, not owned.
class MetricsSampler {
 public:
  MetricsSampler(std::ostream* out, std::uint64_t interval_ms);

  void maybe_sample(std::uint64_t done, std::uint64_t total,
                    const metrics::Snapshot& snap);
  void final_sample(std::uint64_t done, std::uint64_t total,
                    const metrics::Snapshot& snap);

  std::uint64_t samples_written() const { return samples_; }

 private:
  void write_line(std::uint64_t done, std::uint64_t total,
                  const metrics::Snapshot& snap);

  std::ostream* out_;
  std::uint64_t interval_nanos_;
  std::uint64_t epoch_nanos_;
  std::uint64_t last_nanos_ = 0;
  std::uint64_t samples_ = 0;
};

}  // namespace rader
