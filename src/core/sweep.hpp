// Parallel steal-specification sweep engine.
//
// The Section-7 coverage recipe runs SP+ under O(KD + K³) steal
// specifications.  Each run is an independent serial-engine execution of the
// same program under a different fixed schedule, so the sweep is
// embarrassingly parallel: this engine shards the family across a worker
// pool, giving each worker its own SerialEngine + SP+ detector instance and
// a thread-local RaceLog per specification — either re-running every member
// from scratch (SweepStrategy::kRerun) or fast-forwarding each member from a
// checkpoint of its longest shared decision prefix with the previous one
// (SweepStrategy::kPrefix; see the enum) — then merges the per-spec logs —
// in family order, so the result is bit-for-bit what the serial sweep
// produces — through RaceLog's deduplication layer (core/race_report.hpp),
// which collapses the same race elicited under many specs into one report
// carrying the set of eliciting specifications.
//
// Thread-safety model: the detector stack (SerialEngine, SpPlusDetector,
// ShadowSpace, the DSU) has no global state, and the engine installation is
// thread-local (Engine::Scope), so concurrent serial-engine runs never
// interact.  The program under test, however, usually mutates captured state
// when it runs, so workers must not share one instance: the sweep takes a
// *program factory* and each worker materializes its own instance (programs
// must be re-runnable, as for the serial driver — not thread-safe).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/race_report.hpp"
#include "spec/steal_spec.hpp"
#include "support/metrics.hpp"
#include "tool/sampling.hpp"

namespace rader {

/// How the sweep turns family members into executions.
enum class SweepStrategy {
  /// Baseline: every member is a complete fresh SerialEngine + detector run.
  kRerun,

  /// Prefix sharing: the family is treated as a trie keyed on the per-point
  /// steal decisions.  Each worker records the decision trail of its latest
  /// run and takes checkpoints (engine snapshot + Tool::fork of the detector
  /// + race-log copy) along it; for the next member it computes — offline,
  /// without executing anything — the first trail index where the new
  /// specification decides differently, then fast-forwards from the deepest
  /// checkpoint at or above that index (SerialEngine::resume_from), paying
  /// detector cost only for the divergent suffix.  A member whose decisions
  /// fully match the previous run reuses its log outright.  Lexicographic
  /// families (spec::full_coverage_family and friends) are emitted in trie
  /// DFS order, so ascending index order IS the trie schedule; workers claim
  /// ascending chunks to keep neighbouring members on one worker.  The
  /// merged result is byte-identical to kRerun at every thread count
  /// (tests/core/sweep_equivalence_test); only SweepResult::metrics — which
  /// measure work actually performed — differ.
  kPrefix,
};

/// How sweep executions are sandboxed against crashing / hanging / runaway
/// specs (docs/ROBUSTNESS.md).
enum class SweepIsolation {
  /// Everything runs in-process (fastest; a misbehaving spec takes the
  /// whole process down).
  kNone,

  /// Shard the family across sandboxed worker *processes*
  /// (support/subprocess.hpp: fork without exec, so the program factory
  /// runs directly in the child).  A single-threaded supervisor drains
  /// per-spec results over pipes, enforces per-spec deadlines and memory
  /// caps, retries failed shards with backoff, bisects unattributable
  /// failures, and quarantines the offending spec after retries — the
  /// sweep always completes, surviving specs merge byte-identical to the
  /// in-process sweep, and quarantined specs land in
  /// SweepResult::failures.
  kProcs,
};

/// One quarantined family member of an isolated sweep: the spec the
/// supervisor gave up on after retries, with the failure classification.
/// Serialized as report schema v5's sweep.failures[] (core/report_json.hpp).
struct SweepFailure {
  std::size_t index = 0;   // family index of the quarantined spec
  std::string spec;        // its describe() handle
  std::string cause;       // "signal" | "timeout" | "oom" | "error"
  int signal = 0;          // terminating signal when cause == "signal"
  unsigned retries = 0;    // shard relaunches spent before quarantining
  std::string postmortem;  // child post-mortem file ("" = none captured)
};

/// Options controlling a specification-family sweep.
struct SweepOptions {
  /// Worker threads.  0 = std::thread::hardware_concurrency(); 1 = run the
  /// sweep on the calling thread (no pool).
  unsigned threads = 1;

  /// Execution strategy (`rader --sweep-strategy=rerun|prefix`).
  SweepStrategy strategy = SweepStrategy::kRerun;

  /// kPrefix only: minimum gap (in continuation points) between successive
  /// checkpoints along a run, clamped to >= 1.  On top of this the gap
  /// grows geometrically — at least 1/8 of the previous checkpoint's depth —
  /// so a run of n points takes O(log n) checkpoints (bounded snapshot
  /// memory and amortized O(n) fork work) while a divergence at depth d
  /// still resumes within about d/8 of it.
  unsigned checkpoint_stride = 1;

  /// Maximum number of SP+ executions (0 = the whole family).  Members past
  /// the budget are skipped, counted in SweepResult::specs_skipped — the
  /// coverage guarantee then holds only for the members that ran.
  std::uint64_t budget = 0;

  /// Stop the sweep at the first racy family member, where "first" means
  /// LOWEST FAMILY INDEX — not first in wall-clock order.  The result is
  /// the deterministic prefix [0, r] of the (budgeted) family, r being the
  /// lowest index whose run reports a race: every member below r still
  /// runs and merges, members above r are skipped, and in-flight runs on
  /// higher indices are discarded.  Race identity, spec_runs, and
  /// specs_skipped are therefore byte-identical at every thread count and
  /// equal to the serial sweep's (tests/core/sweep_dedup_test,
  /// tests/property/sweep_equivalence_test).
  bool stop_after_first_race = false;

  /// Live telemetry (`rader --progress`): a monitor thread samples the
  /// per-worker completion counters every `progress_interval_ms` and prints
  /// one heartbeat line — total and per-worker specs done, specs/s, ETA,
  /// racy specs so far — to `progress_out`, plus a final summary line when
  /// the sweep completes.  The live rate/ETA use a rolling window over the
  /// last few heartbeats (support/rolling_rate.hpp) so front-loaded prefix
  /// sweeps report the current regime, not the since-start average (the
  /// final summary line keeps the whole-run average).  The counters are
  /// the same ones aggregated into SweepResult::metrics; sampling them is
  /// wait-free and never perturbs the sweep result.
  bool progress = false;
  unsigned progress_interval_ms = 500;
  std::ostream* progress_out = nullptr;  // nullptr = std::cerr

  /// JSONL metrics time series (`rader --metrics-out=FILE
  /// --metrics-interval-ms=N`): the monitor thread appends one
  /// core/metrics_export.hpp sample line per interval — read wait-free
  /// from the workers' live SharedSnapshot slots — plus one final quiesced
  /// sample after the workers join.  nullptr = off.  The enabled sampling
  /// overhead is budgeted by bench/sweep_scaling --check-metrics-overhead
  /// at <= 1.05x geomean.
  std::ostream* metrics_out = nullptr;
  unsigned metrics_interval_ms = 500;

  /// Hang watchdog (`rader --watchdog-ms=N`): when > 0 and no spec
  /// completes for this many milliseconds while the sweep is unfinished,
  /// the monitor thread writes a post-mortem report (support/crash.hpp:
  /// live metrics, in-flight spec handles, trace-ring tails) to
  /// `watchdog_fd` and bumps sweep.postmortem_dumps, then re-arms on the
  /// next completion.  Diagnosis only — the sweep itself is never
  /// interrupted.
  unsigned watchdog_ms = 0;
  int watchdog_fd = 2;  // stderr

  /// Access sampling (`rader --sample-rate=P [--sample-seed=S]`): when
  /// enabled, each per-spec SP+ detector is wrapped in a SamplingTool
  /// whose seed is derived from the SPEC's describe() string
  /// (sampling_seed_for_spec) — worker- and jobs-independent, so sampled
  /// sweep results stay deterministic at every thread count.  Sampling
  /// forces SweepStrategy::kRerun: prefix checkpoints share detector
  /// state ACROSS specs, which per-spec sample sets would corrupt.
  SamplingConfig sampling;

  /// Crash isolation (`rader --isolate=procs`): see SweepIsolation.  With
  /// kProcs, `threads` is the number of concurrent sandbox processes, the
  /// monitor duties (--progress/--metrics-out/--watchdog-ms) run inline in
  /// the single-threaded supervisor loop, and the fields below apply.
  SweepIsolation isolation = SweepIsolation::kNone;

  /// kProcs: wall-clock deadline per spec inside a child
  /// (`--spec-timeout-ms`); on expiry the child is SIGKILLed and the spec
  /// goes through retry/quarantine with cause "timeout".  0 = no deadline
  /// (only --watchdog-kill can then recover a hang).
  unsigned spec_timeout_ms = 0;

  /// kProcs: failed-shard relaunches (same range, exponential backoff)
  /// before the culprit spec is quarantined (`--max-retries`).
  unsigned max_retries = 1;

  /// kProcs: RLIMIT_AS per child in MiB (`--child-mem-mb`); a runaway
  /// allocation then dies as cause "oom" instead of OOM-killing the host.
  /// 0 = inherit.  Note the cap covers the child's whole address space —
  /// which starts as a fork of the parent's — so it must comfortably
  /// exceed the parent's footprint.
  unsigned child_mem_mb = 0;

  /// kProcs + watchdog_ms > 0: escalate a watchdog stall from
  /// diagnosis-only to recovery (`--watchdog-kill`) — a child with no pipe
  /// activity for watchdog_ms is killed and its shard re-enters the same
  /// retry/quarantine path (counted in sweep.quarantined), so even a
  /// sleeping hang with no --spec-timeout-ms cannot wedge the sweep.
  bool watchdog_kill = false;

  /// kProcs: directory for per-child crash post-mortems
  /// (`--postmortem-dir`).  Each child installs the fatal-signal handler
  /// (support/crash.hpp) targeting "<dir>/child-<first-index>-<attempt>.
  /// postmortem"; when a quarantined spec's child left one, its path is
  /// recorded in SweepFailure::postmortem.  "" = children dump to stderr.
  std::string postmortem_dir;
};

/// Factory producing a fresh instance of the program under test.  Called at
/// most once per sweep worker; the returned callable is only ever run by
/// that worker, one execution at a time.
using ProgramFactory = std::function<std::function<void()>()>;

/// Wrap a program that is safe to share across workers (stateless, or run
/// concurrently without interference) as a factory.
ProgramFactory shared_program(std::function<void()> program);

struct SweepResult {
  RaceLog log;                      // deduplicated union over executed specs
  std::uint64_t spec_runs = 0;      // SP+ executions merged into the result
  std::uint64_t specs_skipped = 0;  // members skipped (budget / early stop)

  /// Isolated sweeps only: quarantined family members inside the merged
  /// prefix, ascending by index (report schema v5 sweep.failures[]).  The
  /// merged log covers every prefix member EXCEPT these; empty for
  /// in-process sweeps, which die with their first misbehaving spec
  /// instead.  spec_runs + failures.size() + specs_skipped == family size.
  std::vector<SweepFailure> failures;

  /// Aggregate run metrics: worker counters/timers summed, plus the merge
  /// phase.  Unlike the fields above, metrics measure the work actually
  /// performed (including stop-first runs discarded from the result), so
  /// they legitimately vary with thread count.  Also forwarded to the
  /// calling thread's metrics::Registry when one is installed.
  metrics::Snapshot metrics;
};

/// Run SP+ under every member of `family` (subject to `options`), sharding
/// the members across `options.threads` workers, and merge the per-spec race
/// logs in family order.  With the same family and factory, the merged log
/// is identical for every thread count whenever the racing addresses are
/// stable across program instances (shared_program, globals/statics).  When
/// instances race on their own heap addresses, entries split by instance —
/// the dedup key includes the address — but the race set is still identical
/// up to that renaming: per normalized identity, the occurrence totals and
/// eliciting-spec sets are the same at every thread count (each family
/// member's log lands in exactly one stored entry).
SweepResult sweep_family(
    const ProgramFactory& make_program,
    const std::vector<std::unique_ptr<spec::StealSpec>>& family,
    const SweepOptions& options = {});

}  // namespace rader
