#include "core/spbags.hpp"

#include <algorithm>

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rader {

std::unique_ptr<Tool> SpBagsDetector::fork(RaceLog* log) const {
  auto copy = std::make_unique<SpBagsDetector>(log, granule_bits_);
  copy->ds_ = ds_;
  copy->stack_ = stack_;
  for (auto& f : copy->stack_) {
    f.s.rebind(&copy->ds_);
    f.p.rebind(&copy->ds_);
  }
  copy->shadow_ = shadow_.fork();
  return copy;
}

void SpBagsDetector::on_run_begin() {
  RADER_CHECK_MSG(granule_bits_ < 12, "granule_bits must be < 12");
  ds_.clear();
  stack_.clear();
  shadow_.clear();
}

void SpBagsDetector::on_frame_enter(FrameId frame, FrameId, FrameKind, ViewId) {
  metrics::bump(metrics::Counter::kFramesEntered);
  FrameState f;
  f.node = ds_.make_node();
  RADER_DCHECK(f.node == frame);  // frame IDs and DSU nodes advance together
  (void)frame;
  f.s = dsu::Bag(&ds_, f.node, dsu::BagKind::kS);
  f.p = dsu::Bag(&ds_, dsu::BagKind::kP);
  stack_.push_back(std::move(f));
}

void SpBagsDetector::on_frame_return(FrameId, FrameId, FrameKind kind) {
  FrameState child = std::move(stack_.back());
  stack_.pop_back();
  if (stack_.empty()) return;  // root returned
  FrameState& parent = stack_.back();
  // SP-bags: "If F spawned G: F.P = F.P ∪ G.S ∪ G.P.
  //           If F called G:  F.S = F.S ∪ G.S, F.P = F.P ∪ G.P."
  // Reduce frames (which SP-bags does not know about) are treated like
  // spawned children; under a no-steal spec none exist.
  parent.p.merge_from(child.p);
  if (kind == FrameKind::kCalled) {
    parent.s.merge_from(child.s);
  } else {
    parent.p.merge_from(child.s);
  }
}

void SpBagsDetector::on_sync(FrameId) {
  FrameState& f = stack_.back();
  // "F syncs: F.S = F.S ∪ F.P, F.P = ∅."
  f.s.merge_from(f.p);
}

void SpBagsDetector::on_clear(std::uintptr_t addr, std::size_t size) {
  if (size == 0) return;
  const std::uintptr_t first = addr >> granule_bits_;
  const std::uintptr_t last = access_last_byte(addr, size) >> granule_bits_;
  // `last` may be the top granule index; a `g <= last` condition would wrap
  // g past it and never terminate, so break after processing `last`.
  for (std::uintptr_t g = first;; ++g) {
    shadow_.clear_granule(g);
    if (g == last) break;
  }
}

void SpBagsDetector::on_access(AccessKind kind, std::uintptr_t addr,
                               std::size_t size, bool, ViewId, SrcTag tag) {
  FrameState& f = stack_.back();
  if (size == 0) return;
  metrics::bump(metrics::Counter::kAccessesInstrumented);
  metrics::record(metrics::Histogram::kAccessBytes, size);
  const std::uintptr_t first = addr >> granule_bits_;
  const std::uintptr_t last = access_last_byte(addr, size) >> granule_bits_;
  // `last` may be the top granule index; a `g <= last` condition would wrap
  // g past it and never terminate, so break after processing `last`.
  for (std::uintptr_t g = first;; ++g) {
    // Reported address: the first byte of THIS access within granule g (==
    // the byte itself when granule_bits=0).  Reporting the granule base
    // would collapse distinct races within one granule to one frame-free
    // dedup identity in core/race_report.
    const std::uintptr_t b = std::max(addr, g << granule_bits_);
    // Extent recorded alongside the id (diagnostic; reports use `b`).
    const unsigned off = static_cast<unsigned>(b - (g << granule_bits_));
    const auto w = shadow_.writer(g);
    const bool writer_parallel =
        w != shadow::AccessShadow::kEmpty &&
        ds_.meta_of(w).kind == dsu::BagKind::kP;
    if (kind == AccessKind::kRead) {
      if (writer_parallel) {
        trace::emit_conflict(static_cast<FrameId>(f.node), g, b, w,
                             trace::kConflictPriorWrite, tag.label);
        log_->report_determinacy(make_determinacy_race(
            b, kind, false, true, w, static_cast<FrameId>(f.node), tag.label));
      }
      const auto r = shadow_.reader(g);
      if (r == shadow::AccessShadow::kEmpty ||
          ds_.meta_of(r).kind == dsu::BagKind::kS) {
        shadow_.set_reader(g, f.node, off);
      }
    } else {
      const auto r = shadow_.reader(g);
      if (r != shadow::AccessShadow::kEmpty &&
          ds_.meta_of(r).kind == dsu::BagKind::kP) {
        trace::emit_conflict(static_cast<FrameId>(f.node), g, b, r,
                             trace::kConflictWrite, tag.label);
        log_->report_determinacy(make_determinacy_race(
            b, kind, false, false, r, static_cast<FrameId>(f.node), tag.label));
      }
      if (writer_parallel) {
        trace::emit_conflict(static_cast<FrameId>(f.node), g, b, w,
                             trace::kConflictWrite | trace::kConflictPriorWrite,
                             tag.label);
        log_->report_determinacy(make_determinacy_race(
            b, kind, false, true, w, static_cast<FrameId>(f.node), tag.label));
      }
      if (w == shadow::AccessShadow::kEmpty ||
          ds_.meta_of(w).kind == dsu::BagKind::kS) {
        shadow_.set_writer(g, f.node, off);
      }
    }
    if (g == last) break;
  }
}

}  // namespace rader
