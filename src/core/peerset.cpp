#include "core/peerset.hpp"

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rader {

std::unique_ptr<Tool> PeerSetDetector::fork(RaceLog* log) const {
  auto copy = std::make_unique<PeerSetDetector>(log);
  copy->ds_ = ds_;
  copy->stack_ = stack_;
  for (auto& f : copy->stack_) {
    f.ss.rebind(&copy->ds_);
    f.sp.rebind(&copy->ds_);
    f.p.rebind(&copy->ds_);
  }
  copy->reader_ = reader_;  // flat vector of (node, count, label) records
  return copy;
}

void PeerSetDetector::on_run_begin() {
  ds_.clear();
  stack_.clear();
  reader_.clear();
}

void PeerSetDetector::on_frame_enter(FrameId frame, FrameId, FrameKind kind,
                                     ViewId) {
  metrics::bump(metrics::Counter::kFramesEntered);
  // Figure 3, "F calls or spawns G", lines 1–4 (spawn bookkeeping in F):
  if (!stack_.empty() && kind == FrameKind::kSpawned) {
    FrameState& parent = stack_.back();
    parent.ls += 1;
    parent.p.merge_from(parent.sp);
    parent.sp = dsu::Bag(&ds_, dsu::BagKind::kSP);
  }
  // Lines 5–9 (child initialization):
  FrameState g;
  g.node = ds_.make_node();
  RADER_DCHECK(g.node == frame);
  (void)frame;
  if (!stack_.empty()) {
    const FrameState& parent = stack_.back();
    g.as = parent.as + parent.ls;
  }
  g.ss = dsu::Bag(&ds_, g.node, dsu::BagKind::kSS);
  g.sp = dsu::Bag(&ds_, dsu::BagKind::kSP);
  g.p = dsu::Bag(&ds_, dsu::BagKind::kP);
  stack_.push_back(std::move(g));
}

void PeerSetDetector::on_frame_return(FrameId, FrameId, FrameKind kind) {
  FrameState child = std::move(stack_.back());
  stack_.pop_back();
  if (stack_.empty()) return;  // root returned
  // Cilk functions implicitly sync before returning, so child.sp is empty.
  RADER_DCHECK(child.sp.empty());
  FrameState& parent = stack_.back();
  // Figure 3, "G returns to F":
  parent.p.merge_from(child.p);
  if (kind == FrameKind::kSpawned || kind == FrameKind::kReduce) {
    // Every descendant of a spawned child is in parallel with the
    // continuation in F, hence has a different peer set than any F strand.
    parent.p.merge_from(child.ss);
  } else if (parent.ls == 0) {
    // Called with no outstanding spawns: G's first strand shares the peer
    // set of F's first strand.
    parent.ss.merge_from(child.ss);
  } else {
    // Called with outstanding spawns: G's first strand shares the peer set
    // of F's last executed continuation strand.
    parent.sp.merge_from(child.ss);
  }
}

void PeerSetDetector::on_sync(FrameId) {
  // Figure 3, "F syncs":
  FrameState& f = stack_.back();
  f.ls = 0;
  f.p.merge_from(f.sp);
  f.sp = dsu::Bag(&ds_, dsu::BagKind::kSP);
}

void PeerSetDetector::on_reducer_op(ReducerOp op, ReducerId h, SrcTag tag) {
  if (!is_reducer_read(op)) return;  // Update/CreateIdentity/Reduce: not reads
  FrameState& f = stack_.back();
  const std::uint64_t spawn_count = f.as + f.ls;
  // Figure 3, "F reads reducer h":
  if (reader_.has(h)) {
    auto& entry = reader_[h];
    const bool prior_in_p_bag =
        ds_.meta_of(entry.reader).kind == dsu::BagKind::kP;
    if (prior_in_p_bag || entry.spawn_count != spawn_count) {
      // Granule key: reducer id in the view-read namespace (top bit set) so
      // it cannot collide with detectors keying on memory granules.
      trace::emit_conflict(static_cast<FrameId>(f.node),
                           (std::uint64_t{1} << 63) | h, h,
                           static_cast<FrameId>(entry.reader),
                           trace::kConflictViewRead, tag.label);
      log_->report_view_read(make_view_read_race(
          h, static_cast<FrameId>(entry.reader),
          static_cast<FrameId>(f.node), entry.label, tag.label));
    }
  }
  auto& entry = reader_[h];
  entry.reader = f.node;
  entry.spawn_count = spawn_count;
  entry.label = tag.label;
}

}  // namespace rader
