#include "core/trace_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "runtime/types.hpp"

namespace rader {

namespace {

using trace::Event;
using trace::EventKind;

const char* frame_kind_name(std::uint8_t aux) {
  switch (static_cast<FrameKind>(aux)) {
    case FrameKind::kRoot: return "root";
    case FrameKind::kSpawned: return "spawned";
    case FrameKind::kCalled: return "called";
    case FrameKind::kReduce: return "reduce";
  }
  return "frame";
}

const char* reducer_op_name(std::uint8_t aux) {
  switch (static_cast<ReducerOp>(aux)) {
    case ReducerOp::kCreate: return "Create";
    case ReducerOp::kSetValue: return "SetValue";
    case ReducerOp::kGetValue: return "GetValue";
    case ReducerOp::kDestroy: return "Destroy";
    case ReducerOp::kUpdate: return "Update";
    case ReducerOp::kCreateIdentity: return "CreateIdentity";
    case ReducerOp::kReduce: return "Reduce";
  }
  return "op";
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string escaped(const char* s) {
  std::string out;
  append_escaped(out, s);
  return out;
}

/// One emitted trace-event JSON object, sortable by timestamp.  `seq`
/// breaks ties with insertion order so equal-timestamp events keep their
/// buffer order (which is causal order within a thread).
struct Entry {
  double ts_us = 0;
  std::uint64_t seq = 0;
  std::string json;
};

std::string format_ts(double ts_us) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", ts_us);
  return buf;
}

class ChromeWriter {
 public:
  void add_meta(std::string json) { meta_.push_back(std::move(json)); }

  void add(double ts_us, std::string json) {
    entries_.push_back(Entry{ts_us, seq_++, std::move(json)});
  }

  std::string finish(std::uint64_t recorded, std::uint64_t dropped) {
    std::stable_sort(entries_.begin(), entries_.end(),
                     [](const Entry& a, const Entry& b) {
                       return a.ts_us != b.ts_us ? a.ts_us < b.ts_us
                                                 : a.seq < b.seq;
                     });
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const auto& m : meta_) {
      if (!first) out += ',';
      first = false;
      out += m;
    }
    for (const auto& e : entries_) {
      if (!first) out += ',';
      first = false;
      out += e.json;
    }
    out += "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"recorded\":";
    out += std::to_string(recorded);
    out += ",\"dropped\":";
    out += std::to_string(dropped);
    out += "}}";
    return out;
  }

 private:
  std::vector<std::string> meta_;
  std::vector<Entry> entries_;
  std::uint64_t seq_ = 0;
};

std::string event_args(const Event& e) {
  std::ostringstream os;
  switch (e.kind) {
    case EventKind::kRunBegin:
      os << "{}";
      break;
    case EventKind::kRunEnd:
      os << "{\"steals\":" << e.a << ",\"reduces\":" << e.b << '}';
      break;
    case EventKind::kFrameEnter:
    case EventKind::kFrameReturn:
      os << "{\"frame\":" << e.frame << ",\"parent\":"
         << static_cast<std::int64_t>(static_cast<std::int32_t>(e.a))
         << ",\"vid\":" << e.b << '}';
      break;
    case EventKind::kSync:
      os << "{\"frame\":" << e.frame << '}';
      break;
    case EventKind::kSteal:
      os << "{\"frame\":" << e.frame << ",\"cont_index\":" << e.a
         << ",\"view\":" << e.b << '}';
      break;
    case EventKind::kReduceBegin:
    case EventKind::kReduceEnd:
      os << "{\"frame\":" << e.frame << ",\"left_view\":" << e.a
         << ",\"right_view\":" << e.b << '}';
      break;
    case EventKind::kViewCreate:
      os << "{\"view\":" << e.a << ",\"reducer\":" << e.b
         << ",\"identity\":" << (e.aux != 0 ? "true" : "false")
         << ",\"label\":\"" << escaped(e.label) << "\"}";
      break;
    case EventKind::kViewDestroy:
      os << "{\"view\":" << e.a << ",\"reducer\":" << e.b << '}';
      break;
    case EventKind::kReducerOp:
      os << "{\"reducer\":" << e.a << ",\"op\":\"" << reducer_op_name(e.aux)
         << "\",\"label\":\"" << escaped(e.label) << "\"}";
      break;
    case EventKind::kConflict:
      os << "{\"addr\":" << e.a << ",\"prior_frame\":" << e.b
         << ",\"frame\":" << e.frame << ",\"write\":"
         << ((e.aux & trace::kConflictWrite) ? "true" : "false")
         << ",\"prior_write\":"
         << ((e.aux & trace::kConflictPriorWrite) ? "true" : "false")
         << ",\"view_aware\":"
         << ((e.aux & trace::kConflictViewAware) ? "true" : "false")
         << ",\"view_read\":"
         << ((e.aux & trace::kConflictViewRead) ? "true" : "false")
         << ",\"label\":\"" << escaped(e.label) << "\"}";
      break;
  }
  return os.str();
}

std::string instant_name(const Event& e) {
  std::ostringstream os;
  os << event_kind_name(e.kind);
  switch (e.kind) {
    case EventKind::kSteal:
      os << " cont " << e.a << " -> view " << e.b;
      break;
    case EventKind::kReduceBegin:
    case EventKind::kReduceEnd:
      os << " view " << e.b << " -> " << e.a;
      break;
    case EventKind::kViewCreate:
    case EventKind::kViewDestroy:
      os << " reducer " << e.b;
      break;
    case EventKind::kReducerOp:
      os << ' ' << reducer_op_name(e.aux);
      break;
    case EventKind::kConflict:
      os << ((e.aux & trace::kConflictViewRead) ? " view-read" : "")
         << " [" << escaped(e.label) << ']';
      break;
    default:
      break;
  }
  return os.str();
}

}  // namespace

std::string chrome_trace_json(const trace::Session& session) {
  ChromeWriter w;
  const auto buffers = session.buffers();

  // Rebase timestamps at the session's earliest event.
  std::uint64_t base = UINT64_MAX;
  for (const trace::Buffer* buf : buffers) {
    for (const Event& e : buf->ordered()) base = std::min(base, e.nanos);
  }
  if (base == UINT64_MAX) base = 0;
  const auto us = [base](std::uint64_t nanos) {
    return static_cast<double>(nanos - base) / 1000.0;
  };

  // Globally unique flow ids across buffers and runs.
  std::uint64_t next_flow = 1;

  int pid = 0;
  for (const trace::Buffer* buf : buffers) {
    w.add_meta("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
               ",\"name\":\"process_name\",\"args\":{\"name\":\"" +
               escaped(buf->name().c_str()) + "\"}}");

    struct OpenFrame {
      std::uint64_t start_nanos = 0;
      std::uint32_t worker = 0;
      std::uint8_t aux = 0;
      std::uint64_t parent = 0;
      std::uint64_t vid = 0;
    };
    std::unordered_map<std::uint32_t, OpenFrame> open;
    std::unordered_map<std::uint64_t, std::uint64_t> view_flows;  // vid->id
    std::unordered_map<std::uint32_t, bool> workers_seen;

    for (const Event& e : buf->ordered()) {
      workers_seen.emplace(e.worker, true);
      const std::string common = ",\"pid\":" + std::to_string(pid) +
                                 ",\"tid\":" + std::to_string(e.worker) +
                                 ",\"ts\":" + format_ts(us(e.nanos));
      switch (e.kind) {
        case EventKind::kRunBegin:
          // A fresh engine run reuses frame ids and view ids: reset the
          // per-run pairing state.
          open.clear();
          view_flows.clear();
          break;
        case EventKind::kFrameEnter: {
          OpenFrame f;
          f.start_nanos = e.nanos;
          f.worker = e.worker;
          f.aux = e.aux;
          f.parent = e.a;
          f.vid = e.b;
          open[e.frame] = f;
          continue;  // the slice is emitted at return
        }
        case EventKind::kFrameReturn: {
          auto it = open.find(e.frame);
          if (it == open.end()) continue;  // enter dropped by the ring
          const OpenFrame f = it->second;
          open.erase(it);
          std::ostringstream os;
          os << "{\"ph\":\"X\",\"name\":\"" << frame_kind_name(f.aux) << " #"
             << e.frame << "\",\"cat\":\"frame\",\"pid\":" << pid
             << ",\"tid\":" << f.worker << ",\"ts\":"
             << format_ts(us(f.start_nanos)) << ",\"dur\":"
             << format_ts(static_cast<double>(e.nanos - f.start_nanos) /
                          1000.0)
             << ",\"args\":{\"frame\":" << e.frame << ",\"parent\":"
             << static_cast<std::int64_t>(static_cast<std::int32_t>(f.parent))
             << ",\"vid\":" << f.vid << "}}";
          w.add(us(f.start_nanos), os.str());
          continue;
        }
        case EventKind::kSteal: {
          // Flow start: the stolen continuation's fresh view, consumed by
          // the reduce that later merges it away.
          const std::uint64_t id = next_flow++;
          view_flows[e.b] = id;
          w.add(us(e.nanos),
                "{\"ph\":\"s\",\"name\":\"reduce view " +
                    std::to_string(e.b) + "\",\"cat\":\"reduce\",\"id\":" +
                    std::to_string(id) + common + "}");
          break;
        }
        case EventKind::kReduceBegin: {
          auto it = view_flows.find(e.b);
          if (it != view_flows.end()) {
            w.add(us(e.nanos),
                  "{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"reduce view " +
                      std::to_string(e.b) + "\",\"cat\":\"reduce\",\"id\":" +
                      std::to_string(it->second) + common + "}");
            view_flows.erase(it);
          }
          break;
        }
        default:
          break;
      }
      // Everything that falls through is an instant event.
      std::ostringstream os;
      os << "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"" << instant_name(e)
         << "\",\"cat\":\"" << event_kind_name(e.kind) << '"' << common
         << ",\"args\":" << event_args(e) << '}';
      w.add(us(e.nanos), os.str());
    }

    for (const auto& [worker, seen] : workers_seen) {
      (void)seen;
      w.add_meta("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
                 ",\"tid\":" + std::to_string(worker) +
                 ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " +
                 std::to_string(worker) + "\"}}");
    }
    ++pid;
  }
  return w.finish(session.total_recorded(), session.total_dropped());
}

std::string text_timeline(const trace::Session& session) {
  std::ostringstream os;
  int idx = 0;
  for (const trace::Buffer* buf : session.buffers()) {
    const auto events = buf->ordered();
    os << "== buffer " << idx++ << " \"" << buf->name() << "\" ("
       << events.size() << " events, " << buf->dropped() << " dropped) ==\n";
    const std::uint64_t base = events.empty() ? 0 : events.front().nanos;
    for (const Event& e : events) {
      char head[64];
      std::snprintf(head, sizeof(head), "  +%10.3fus w%-2u %-13s",
                    static_cast<double>(e.nanos - base) / 1000.0, e.worker,
                    event_kind_name(e.kind));
      os << head;
      switch (e.kind) {
        case EventKind::kRunBegin:
          break;
        case EventKind::kRunEnd:
          os << "steals=" << e.a << " reduces=" << e.b;
          break;
        case EventKind::kFrameEnter:
        case EventKind::kFrameReturn:
          os << '#' << e.frame << " (" << frame_kind_name(e.aux)
             << ", parent #"
             << static_cast<std::int64_t>(static_cast<std::int32_t>(e.a));
          if (e.kind == EventKind::kFrameEnter) os << ", view " << e.b;
          os << ')';
          break;
        case EventKind::kSync:
          os << '#' << e.frame;
          break;
        case EventKind::kSteal:
          os << '#' << e.frame << " cont " << e.a << " -> view " << e.b;
          break;
        case EventKind::kReduceBegin:
        case EventKind::kReduceEnd:
          os << '#' << e.frame << " view " << e.b << " -> " << e.a;
          break;
        case EventKind::kViewCreate:
          os << "reducer " << e.b << " view " << e.a
             << (e.aux != 0 ? " (identity)" : " (leftmost)");
          if (e.label[0] != '\0') os << " [" << e.label << ']';
          break;
        case EventKind::kViewDestroy:
          os << "reducer " << e.b << " view " << e.a;
          break;
        case EventKind::kReducerOp:
          os << reducer_op_name(e.aux) << " reducer " << e.a;
          if (e.label[0] != '\0') os << " [" << e.label << ']';
          break;
        case EventKind::kConflict:
          os << ((e.aux & trace::kConflictViewRead) ? "view-read reducer "
                                                    : "addr ")
             << e.a << " vs frame #" << e.b << " in #" << e.frame;
          if (e.label[0] != '\0') os << " [" << e.label << ']';
          break;
      }
      os << '\n';
    }
  }
  return os.str();
}

bool write_chrome_trace(const trace::Session& session,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << chrome_trace_json(session);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace rader
