// Race provenance: per-race DAG explanations reconstructed by replay.
//
// A deduplicated race report carries its replay handle (`found_under`) — the
// steal specification that elicited it.  This module re-executes the program
// under that specification with a recording tool chain attached and walks the
// recorded structure to explain *why* the two strands are logically parallel:
//
//  * the fork point — the least common ancestor frame of the two racing
//    frames, and which child of it each side descends through;
//  * the steal decisions on the path from the fork point (in particular the
//    eliciting steal, whose minted view separates the two strands);
//  * the involved Reduce strand (when a racing access executes inside a
//    runtime-invoked Reduce: which epoch merge invoked it, and which views
//    it combined) or CreateIdentity strand (when the racing side runs on a
//    lazily created identity view);
//  * an optional cross-check against the brute-force DAG oracle
//    (dag/oracle.hpp): "confirmed" when the oracle independently finds a
//    race on the same address / reducer in the replayed execution.
//
// Because the serial engine is deterministic under a fixed specification,
// the replay reproduces the original execution exactly (up to heap
// addresses); races are matched back to the stored reports by their
// deduplication identity, with an address-insensitive fallback.
//
// The result is attached to the RaceLog as a raw JSON object (embedded
// verbatim under `races[].provenance`, report schema v2) plus a
// human-readable rendering printed by `rader --explain`.
#pragma once

#include <cstddef>
#include <functional>

#include "core/race_report.hpp"

namespace rader {

struct ProvenanceOptions {
  /// Skip the DAG-oracle cross-check when the replayed execution has more
  /// strands than this (the oracle is O(V·E + A²); see dag/oracle.hpp).
  std::size_t oracle_strand_cap = 4096;

  /// Run the brute-force oracle on the replayed execution and record whether
  /// it independently confirms each race ("oracle" field of the record).
  bool cross_check = true;
};

/// Replay `program` once per distinct replay handle appearing in `log`'s
/// stored races (races with an empty handle replay under "no-steals"), build
/// a provenance record for every stored race the replay reproduces, and
/// attach the records to `log`.  Races that already carry a provenance
/// record are left untouched.  Returns the number of races annotated.
///
/// `program` must be the same deterministic program that produced `log`; it
/// is invoked once per distinct handle.
std::size_t annotate_provenance(RaceLog& log,
                                const std::function<void()>& program,
                                const ProvenanceOptions& options = {});

}  // namespace rader
