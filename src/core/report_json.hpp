// Machine-readable run reports with a versioned schema.
//
// Serializes a whole detection run — the deduplicated RaceLog, the sweep
// accounting (SweepResult / ExhaustiveResult fields), and a run-metrics
// snapshot — to one JSON object, so CI and external tooling can consume
// verdicts without scraping text.  Each stored race carries its
// `found_under` spec handle; feeding that handle back through
// `rader --replay <handle>` (spec::from_description) re-runs exactly that
// one specification and must reproduce the identical deduplicated race set.
//
// Schema (documented in docs/API.md; validated by scripts/check.sh --json):
//   {
//     "schema": "rader.report", "schema_version": 4,
//     "program": "...", "check": "...",
//     "spec": "...",                   // single-spec runs and replays only
//     "sweep": {"jobs":J,"budget":B,"stop_first":bool,"k":K,"depth":D,
//               "spec_runs":N,"specs_skipped":M,    // sweep runs only
//               "failures":[{"spec":"...","index":I,  // v5: quarantined
//                            "cause":"signal|timeout|oom|error",
//                            "signal":S,"retries":R,
//                            "postmortem":"..."}, ...]},
//     "races": { ...RaceLog::to_json()... }, // v2: races may carry a
//                                            // "provenance" object
//                                            // (core/provenance.hpp);
//                                            // v3: and a "repro_file"
//                                            // (`.rprog` reproducer path)
//     "replay_handles": ["<spec handle>", ...],
//     "metrics": { ...metrics::Snapshot::to_json()... }  // when captured
//   }                                     // v4: "metrics" gained "gauges"
//                                         // and "histograms" blocks and
//                                         // namespaced counter names
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/race_report.hpp"
#include "core/sweep.hpp"
#include "support/metrics.hpp"

namespace rader {

inline constexpr const char* kReportSchemaName = "rader.report";
// v1 -> v2: stored races gained an optional "provenance" member (the replay
// explanation built by core/provenance.hpp).  Consumers of v1 that ignore
// unknown members parse v2 unchanged.
// v2 -> v3: races gained an optional "repro_file" member — the `.rprog`
// reproducer the race replays from (`rader --repro=FILE`, docs/FUZZING.md).
// Additive again: v2 consumers parse v3 unchanged.
// v3 -> v4: the "metrics" block gained "gauges" and "histograms" objects
// alongside "counters"/"phase_seconds", and counter keys moved to the
// canonical dotted namespaces ("spec_runs" -> "sweep.spec_runs", …; the
// full catalog is `rader --list-metrics`).  The rename is the one breaking
// change in the report's history — hence the major-version bump rather
// than another additive rev.
// v4 -> v5: the "sweep" block gained "failures" — the crash-isolated
// sweep's quarantined specs (core/sweep.hpp SweepFailure; always present
// when "sweep" is, empty for clean or in-process sweeps).  Additive: v4
// consumers that ignore unknown members parse v5 unchanged.
inline constexpr int kReportSchemaVersion = 5;

/// Context describing the run that produced a report.
struct ReportMeta {
  std::string program;            // program under test
  std::string check;              // algorithm / mode (peerset, sp+, replay…)
  std::string spec;               // spec handle for single-spec runs
  bool has_sweep = false;         // emit the "sweep" block
  unsigned jobs = 0;
  std::uint64_t budget = 0;
  bool stop_first = false;
  std::uint32_t k = 0;
  std::uint64_t depth = 0;
  std::uint64_t spec_runs = 0;
  std::uint64_t specs_skipped = 0;
  std::vector<SweepFailure> failures;  // isolated sweeps: quarantined specs
};

/// The `found_under` spec handle of every stored race, in report order,
/// deduplicated — each is a valid `--replay` argument.
std::vector<std::string> replay_handles(const RaceLog& log);

/// Serialize one complete run to the versioned JSON schema above.
/// `metrics_snapshot` may be nullptr (the "metrics" key is then omitted).
std::string report_json(const ReportMeta& meta, const RaceLog& log,
                        const metrics::Snapshot* metrics_snapshot = nullptr);

}  // namespace rader
