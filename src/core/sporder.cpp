#include "core/sporder.hpp"

#include <algorithm>

#include "support/metrics.hpp"
#include "support/trace.hpp"

namespace rader {

std::unique_ptr<Tool> SpOrderDetector::fork(RaceLog* log) const {
  auto copy = std::make_unique<SpOrderDetector>(log, granule_bits_);
  // OrderMaintenance and the strand registry are flat vectors of
  // position-independent handles: plain copies stay valid.
  copy->eng_ = eng_;
  copy->heb_ = heb_;
  copy->stack_ = stack_;
  copy->strands_ = strands_;
  copy->strand_frame_ = strand_frame_;
  copy->top_ref_ = top_ref_;
  copy->shadow_ = shadow_.fork();
  return copy;
}

void SpOrderDetector::on_run_begin() {
  RADER_CHECK_MSG(granule_bits_ < 12, "granule_bits must be < 12");
  eng_.clear();
  heb_.clear();
  stack_.clear();
  strands_.clear();
  strand_frame_.clear();
  shadow_.clear();
}

void SpOrderDetector::new_strand_ref() {
  FrameState& f = stack_.back();
  top_ref_ = static_cast<std::uint32_t>(strands_.size());
  strands_.emplace_back(f.eng, f.heb);
  strand_frame_.push_back(f.id);
  f.strand_ref = top_ref_;
}

void SpOrderDetector::on_frame_enter(FrameId frame, FrameId, FrameKind kind,
                                     ViewId) {
  metrics::bump(metrics::Counter::kFramesEntered);
  if (stack_.empty()) {
    // Root frame: first nodes of both orders.
    FrameState root;
    root.id = frame;
    root.eng = eng_.make_first();
    root.heb = heb_.make_first();
    root.heb_frontier = root.heb;
    stack_.push_back(root);
    new_strand_ref();
    return;
  }

  FrameState& parent = stack_.back();
  FrameState child;
  child.id = frame;
  if (kind == FrameKind::kCalled) {
    // Series composition: the child's first strand directly follows the
    // caller's current strand in BOTH orders.
    child.eng = eng_.insert_after(parent.eng);
    child.heb = heb_.insert_after(parent.heb);
  } else {
    // Spawn (and runtime Reduce frames, which SP-order — being
    // reducer-oblivious — treats like spawns, as SP-bags does):
    //   English: spawn-strand < child < continuation;
    //   Hebrew:  spawn-strand < continuation < child.
    const OmNode cf_eng = eng_.insert_after(parent.eng);
    const OmNode ct_eng = eng_.insert_after(cf_eng);
    const OmNode ct_heb = heb_.insert_after(parent.heb);
    const OmNode cf_heb = heb_.insert_after(ct_heb);
    child.eng = cf_eng;
    child.heb = cf_heb;
    parent.eng = ct_eng;
    parent.heb = ct_heb;
    parent.heb_frontier = heb_.max(parent.heb_frontier, cf_heb);
    new_strand_ref();  // the parent's continuation strand
  }
  child.heb_frontier = child.heb;
  stack_.push_back(child);
  new_strand_ref();  // the child's first strand
}

void SpOrderDetector::on_frame_return(FrameId, FrameId, FrameKind kind) {
  const FrameState child = stack_.back();
  stack_.pop_back();
  if (stack_.empty()) return;  // root finished
  FrameState& parent = stack_.back();
  parent.heb_frontier = heb_.max(parent.heb_frontier, child.heb_frontier);
  if (kind == FrameKind::kCalled) {
    // Series: the caller resumes after the child's last strand.
    parent.eng = eng_.insert_after(child.eng);
    parent.heb = heb_.insert_after(child.heb);
    parent.heb_frontier = heb_.max(parent.heb_frontier, parent.heb);
  }
  // Spawned children: the continuation strand was created at the spawn and
  // is already the parent's current strand.
  new_strand_ref();
}

void SpOrderDetector::on_sync(FrameId) {
  FrameState& f = stack_.back();
  // The sync strand follows every strand of the block in both orders: the
  // last continuation is the English maximum, the frontier is the Hebrew
  // maximum.
  f.eng = eng_.insert_after(f.eng);
  f.heb = heb_.insert_after(f.heb_frontier);
  f.heb_frontier = f.heb;
  new_strand_ref();
}

void SpOrderDetector::on_access(AccessKind kind, std::uintptr_t addr,
                                std::size_t size, bool, ViewId, SrcTag tag) {
  const FrameId fid = stack_.back().id;
  if (size == 0) return;
  metrics::bump(metrics::Counter::kAccessesInstrumented);
  metrics::record(metrics::Histogram::kAccessBytes, size);
  const std::uintptr_t first = addr >> granule_bits_;
  const std::uintptr_t last = access_last_byte(addr, size) >> granule_bits_;
  // `last` may be the top granule index; a `g <= last` condition would wrap
  // g past it and never terminate, so break after processing `last`.
  for (std::uintptr_t g = first;; ++g) {
    // Reported address: the first byte of THIS access within granule g (==
    // the byte itself when granule_bits=0), so distinct races inside one
    // granule keep distinct dedup identities.
    const std::uintptr_t b = std::max(addr, g << granule_bits_);
    // Extent recorded alongside the id (diagnostic; reports use `b`).
    const unsigned off = static_cast<unsigned>(b - (g << granule_bits_));
    const auto w = shadow_.writer(g);
    const bool writer_parallel =
        w != shadow::AccessShadow::kEmpty && !in_series_with_current(w);
    if (kind == AccessKind::kRead) {
      if (writer_parallel) {
        trace::emit_conflict(fid, g, b, strand_frame_[w],
                             trace::kConflictPriorWrite, tag.label);
        log_->report_determinacy(make_determinacy_race(
            b, kind, false, true, strand_frame_[w], fid, tag.label));
      }
      const auto r = shadow_.reader(g);
      if (r == shadow::AccessShadow::kEmpty || in_series_with_current(r)) {
        shadow_.set_reader(g, top_ref_, off);
      }
    } else {
      const auto r = shadow_.reader(g);
      if (r != shadow::AccessShadow::kEmpty && !in_series_with_current(r)) {
        trace::emit_conflict(fid, g, b, strand_frame_[r],
                             trace::kConflictWrite, tag.label);
        log_->report_determinacy(make_determinacy_race(
            b, kind, false, false, strand_frame_[r], fid, tag.label));
      }
      if (writer_parallel) {
        trace::emit_conflict(fid, g, b, strand_frame_[w],
                             trace::kConflictWrite | trace::kConflictPriorWrite,
                             tag.label);
        log_->report_determinacy(make_determinacy_race(
            b, kind, false, true, strand_frame_[w], fid, tag.label));
      }
      if (w == shadow::AccessShadow::kEmpty || in_series_with_current(w)) {
        shadow_.set_writer(g, top_ref_, off);
      }
    }
    if (g == last) break;
  }
}

void SpOrderDetector::on_clear(std::uintptr_t addr, std::size_t size) {
  if (size == 0) return;
  const std::uintptr_t first = addr >> granule_bits_;
  const std::uintptr_t last = access_last_byte(addr, size) >> granule_bits_;
  // `last` may be the top granule index; a `g <= last` condition would wrap
  // g past it and never terminate, so break after processing `last`.
  for (std::uintptr_t g = first;; ++g) {
    shadow_.clear_granule(g);
    if (g == last) break;
  }
}

}  // namespace rader
