#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>

#include "core/spplus.hpp"
#include "runtime/run.hpp"
#include "runtime/serial_engine.hpp"
#include "runtime/view_arena.hpp"
#include "support/common.hpp"
#include "support/trace.hpp"

namespace rader {

namespace {

/// Heartbeat monitor for `SweepOptions::progress`: samples the per-worker
/// completion counters on an interval and prints one telemetry line per
/// sample plus a final summary.  Counters are plain relaxed atomics, so a
/// sample is wait-free for the sweep workers.
class ProgressMonitor {
 public:
  ProgressMonitor(const SweepOptions& options, std::size_t total,
                  std::vector<std::atomic<std::uint64_t>>* per_worker,
                  std::atomic<std::uint64_t>* racy)
      : total_(total),
        per_worker_(per_worker),
        racy_(racy),
        out_(options.progress_out != nullptr ? *options.progress_out
                                             : std::cerr),
        interval_ms_(std::max(1u, options.progress_interval_ms)) {
    thread_ = std::thread([this] { loop(); });
  }

  ~ProgressMonitor() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
    out_ << line(/*final=*/true) << std::endl;
  }

  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                         [this] { return stop_; })) {
      out_ << line(/*final=*/false) << std::endl;
    }
  }

  std::string line(bool final) const {
    std::uint64_t done = 0;
    std::ostringstream workers;
    for (std::size_t w = 0; w < per_worker_->size(); ++w) {
      const std::uint64_t d = (*per_worker_)[w].load(std::memory_order_relaxed);
      done += d;
      workers << (w == 0 ? "" : " ") << 'w' << w << ':' << d;
    }
    // Clamped denominators: a size-0/size-1 family (or a sub-interval
    // completion) can sample with ~zero elapsed time and with done == total,
    // and the raw divisions would print nan/inf telemetry.
    const double secs = std::max(clock_.seconds(), 1e-9);
    const double rate = static_cast<double>(done) / secs;
    const std::uint64_t remaining = total_ > done ? total_ - done : 0;
    char perf[96];
    if (final) {
      std::snprintf(perf, sizeof(perf), "%.1f specs/s, %.2fs elapsed", rate,
                    secs);
    } else {
      const double eta =
          rate > 0.0 ? static_cast<double>(remaining) / rate : 0.0;
      std::snprintf(perf, sizeof(perf), "%.1f specs/s, eta %.1fs", rate, eta);
    }
    std::ostringstream os;
    os << (final ? "sweep done: " : "sweep: ") << done << '/' << total_
       << " specs (" << perf << ", racy "
       << racy_->load(std::memory_order_relaxed) << ") [" << workers.str()
       << ']';
    return os.str();
  }

  const std::size_t total_;
  std::vector<std::atomic<std::uint64_t>>* per_worker_;
  std::atomic<std::uint64_t>* racy_;
  std::ostream& out_;
  const unsigned interval_ms_;
  metrics::Stopwatch clock_;
  std::thread thread_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// One node of a worker's checkpoint stack: the engine snapshot at a
/// continuation point, a frozen detector fork (never fed events — only
/// re-forked when a run resumes here), and the unstamped race log at capture
/// time.  The stack holds checkpoints of the worker's latest run in
/// increasing point order; the entries at or above a divergence point stay
/// valid for the next run, which is exactly the trie structure of the family.
struct PrefixCheckpoint {
  EngineCheckpoint engine;
  std::unique_ptr<Tool> tool;
  RaceLog log;
};

/// First trail index where `spec` decides differently from the recorded
/// execution — computed offline, with no program execution, because
/// specifications are pure functions of the recorded contexts.  The steal
/// query context is the recorded pre-merge context with the merges applied:
/// post-merge live_epochs is exactly `pre - merges` (the engine's frame sync
/// discipline guarantees nested Reduce frames restore the epoch stack).
/// Returns trail.size() when every decision matches — identical decisions
/// mean an identical execution.
std::size_t divergence_depth(const spec::StealSpec& spec,
                             const DecisionTrail& trail) {
  for (std::size_t i = 0; i < trail.size(); ++i) {
    const PointDecision& e = trail[i];
    const std::uint32_t m = std::min(spec.merges_now(e.ctx), e.ctx.live_epochs);
    if (m != e.merges) return i;
    spec::PointCtx after = e.ctx;
    after.live_epochs = e.ctx.live_epochs - m;
    if (spec.steal(after) != e.stole) return i;
  }
  return trail.size();
}

}  // namespace

ProgramFactory shared_program(std::function<void()> program) {
  return [program = std::move(program)] { return program; };
}

SweepResult sweep_family(
    const ProgramFactory& make_program,
    const std::vector<std::unique_ptr<spec::StealSpec>>& family,
    const SweepOptions& options) {
  SweepResult result;
  const std::size_t total = family.size();
  const std::size_t n =
      (options.budget != 0 && options.budget < total)
          ? static_cast<std::size_t>(options.budget)
          : total;
  if (n == 0) {
    result.specs_skipped = total;
    return result;
  }

  unsigned threads = options.threads != 0
                         ? options.threads
                         : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, n));

  // One log per family member, merged in family order afterwards: the sweep
  // result is deterministic and identical to the serial sweep's regardless
  // of thread count or scheduling.
  std::vector<RaceLog> per_spec(n);
  std::vector<char> ran(n, 0);
  std::vector<metrics::Snapshot> worker_metrics(threads);
  // Telemetry counters sampled by the progress monitor (and mirrored by the
  // per-worker metrics snapshots merged into SweepResult::metrics).
  std::vector<std::atomic<std::uint64_t>> worker_done(threads);
  std::atomic<std::uint64_t> racy_specs{0};
  std::atomic<std::size_t> next{0};
  // Lowest family index whose run reported a race (n = none yet).  Under
  // stop_after_first_race, "first" means lowest FAMILY INDEX, not first in
  // wall-clock order: the result is the prefix [0, first_racy], so it is
  // invariant across thread counts.  The value only decreases; a skipped
  // index never runs, so it can never become first_racy itself.
  std::atomic<std::size_t> first_racy{n};

  // Post-run bookkeeping shared by both strategies: stamp the eliciting
  // spec, publish completion, and (stop-first) lower the racy-index minimum.
  const auto finish_spec = [&](unsigned widx, std::size_t i) {
    per_spec[i].stamp_found_under(family[i]->describe());
    ran[i] = 1;
    worker_done[widx].fetch_add(1, std::memory_order_relaxed);
    if (per_spec[i].any()) {
      racy_specs.fetch_add(1, std::memory_order_relaxed);
    }
    if (options.stop_after_first_race && per_spec[i].any()) {
      std::size_t cur = first_racy.load(std::memory_order_relaxed);
      while (i < cur && !first_racy.compare_exchange_weak(
                            cur, i, std::memory_order_relaxed)) {
      }
    }
  };

  const auto rerun_worker = [&](unsigned widx) {
    std::function<void()> program;  // this worker's own program instance
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      // Indices above the current minimum racy index can never join the
      // result prefix (first_racy is monotonically decreasing), so abandon
      // them; indices at or below it always run, which guarantees the whole
      // prefix [0, final first_racy] executes at every thread count.
      if (i > first_racy.load(std::memory_order_relaxed)) break;
      if (!program) program = make_program();
      SpPlusDetector detector(&per_spec[i]);
      {
        metrics::PhaseTimer timer(metrics::Phase::kExecute);
        run_serial(program, &detector, family[i].get());
      }
      metrics::bump(metrics::Counter::kSpecRuns);
      finish_spec(widx, i);
    }
  };

  const auto prefix_worker = [&](unsigned widx) {
    const unsigned stride = std::max(1u, options.checkpoint_stride);
    // Claim ascending chunks instead of single indices: lexicographic
    // families are emitted in trie DFS order, so neighbouring indices share
    // the deepest prefixes, and those only pay off when the SAME worker
    // (whose trail and checkpoints describe the previous member) runs them.
    constexpr std::size_t kChunk = 8;
    std::function<void()> program;      // this worker's own program instance
    DecisionTrail trail;                // decisions of the latest run
    std::vector<PrefixCheckpoint> ckpts;  // checkpoints along it, ascending
    RaceLog last_log;                   // latest run's UNSTAMPED log
    bool has_last = false;

    // Capture hook shared by fresh and resumed runs: snapshot the engine and
    // fork the detector at (stride-thinned) continuation points.  Re-runs
    // over a shared prefix skip points already covered by a live checkpoint.
    SerialEngine* eng = nullptr;
    Tool* cur_tool = nullptr;
    std::size_t cur_idx = 0;
    const auto hook = [&](std::size_t idx) {
      if (idx < 1) return;
      // Geometric spacing: the gap to the next checkpoint is at least
      // `stride` and at least 1/8 of the current depth, so a run of n
      // points takes O(log n) checkpoints and O(n) amortized fork work
      // (a fork at point p costs O(p) detector state), while a divergence
      // at depth d still resumes within ~d/8 of it.
      const std::size_t base = ckpts.empty() ? 0 : ckpts.back().engine.point;
      if (!ckpts.empty() && idx < base + std::max<std::size_t>(stride, base / 8))
        return;
      PrefixCheckpoint ck;
      eng->capture(&ck.engine);
      ck.tool = cur_tool->fork(nullptr);
      RADER_CHECK_MSG(ck.tool != nullptr,
                      "prefix sweep requires a forkable detector");
      ck.log = per_spec[cur_idx];
      ckpts.push_back(std::move(ck));
      metrics::bump(metrics::Counter::kSweepCheckpoints);
    };

    for (;;) {
      const std::size_t start =
          next.fetch_add(kChunk, std::memory_order_relaxed);
      if (start >= n) break;
      const std::size_t end = std::min(start + kChunk, n);
      bool abandoned = false;
      for (std::size_t i = start; i < end; ++i) {
        // Same stop-first contract as the rerun worker.  Later indices in
        // this chunk — and any chunk claimed afterwards — are higher still,
        // so abandoning the whole worker is safe.
        if (i > first_racy.load(std::memory_order_relaxed)) {
          abandoned = true;
          break;
        }
        if (!program) program = make_program();
        const std::size_t d =
            has_last ? divergence_depth(*family[i], trail) : 0;
        if (has_last && d == trail.size()) {
          // Every decision matches the previous run: the execution would be
          // identical, so its (unstamped) log is reused verbatim.  This is
          // common in coverage families, whose members often differ only on
          // contexts the program never reaches.
          per_spec[i] = last_log;
          finish_spec(widx, i);
          continue;
        }
        // Checkpoints past the divergence belong to the abandoned suffix.
        while (!ckpts.empty() && ckpts.back().engine.point > d) {
          ckpts.pop_back();
        }
        cur_idx = i;
        {
          metrics::PhaseTimer timer(metrics::Phase::kExecute);
          bool fresh = ckpts.empty();
          if (!fresh) {
            PrefixCheckpoint& ck = ckpts.back();
            trail.resize(d);
            per_spec[i] = ck.log;
            std::unique_ptr<Tool> detector = ck.tool->fork(&per_spec[i]);
            metrics::bump(metrics::Counter::kSweepForks);
            SerialEngine engine(detector.get(), family[i].get());
            eng = &engine;
            cur_tool = detector.get();
            engine.set_decision_trail(&trail);
            engine.set_point_hook(hook);
            SerialEngine::ResumePlan plan;
            plan.replay = &trail;
            plan.replay_count = d;
            plan.live_from = ck.engine.point;
            // Verified (then dropped) before the hook can grow `ckpts` and
            // invalidate this pointer.
            plan.expect = &ck.engine;
            try {
              engine.resume_from(program, plan);
            } catch (const ResumeDiverged&) {
              // The re-executed prefix did not regenerate the checkpointed
              // state (go_live verification, serial_engine.hpp): the program
              // is not an address-stable pure function of the decisions, so
              // its runs cannot share prefixes.  Degrade to rerun semantics
              // for this member: drop every checkpoint (their forks describe
              // executions this program cannot reproduce) and the possibly
              // dirtied instance, and run the member fresh.  Correctness is
              // preserved — only the speedup is lost — and the fallback is
              // visible as kSweepResumeFallbacks in rader.report.
              metrics::bump(metrics::Counter::kSweepResumeFallbacks);
              ckpts.clear();
              per_spec[i] = RaceLog();
              program = make_program();
              fresh = true;
            }
          }
          if (fresh) {
            // No shared prefix survives (first member, divergence at the
            // root, stride left no checkpoint this shallow, or a resume
            // fallback): fresh run.
            trail.clear();
            SpPlusDetector detector(&per_spec[i]);
            SerialEngine engine(&detector, family[i].get());
            eng = &engine;
            cur_tool = &detector;
            engine.set_decision_trail(&trail);
            engine.set_point_hook(hook);
            engine.run(program);
          }
        }
        metrics::bump(metrics::Counter::kSpecRuns);
        // The dedup shortcut needs the log as the run produced it, BEFORE
        // stamp_found_under seeds found_under/eliciting_specs.
        last_log = per_spec[i];
        has_last = true;
        finish_spec(widx, i);
      }
      if (abandoned) break;
    }
  };

  const bool prefix = options.strategy == SweepStrategy::kPrefix;
  const auto worker = [&](unsigned widx) {
    // Bound the thread's view-arena floor: the worker's program fixtures
    // allocate outside runs (promoting the floor), and without this a
    // long-lived process sweeping repeatedly would grow every worker
    // thread's arena monotonically.  Declared first so it is destroyed
    // last — after the program instances (and their views) are gone.
    view_arena::Scope arena_scope;
    metrics::Registry reg;
    metrics::Scope scope(&reg);
    // When a tracing session is active, each sweep worker records into its
    // own buffer ("sweep-wN") — one Chrome-trace process per worker.
    trace::Session* const tsession = trace::session();
    trace::ThreadScope tscope(
        tsession != nullptr
            ? tsession->make_buffer("sweep-w" + std::to_string(widx))
            : trace::buffer());
    if (prefix) {
      prefix_worker(widx);
    } else {
      rerun_worker(widx);
    }
    worker_metrics[widx] = reg.snapshot();
  };

  {
    // Scoped so the monitor's destructor (which prints the final summary
    // line) runs as soon as the workers have joined.
    std::unique_ptr<ProgressMonitor> monitor;
    if (options.progress) {
      monitor = std::make_unique<ProgressMonitor>(options, n, &worker_done,
                                                  &racy_specs);
    }
    if (threads <= 1) {
      worker(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(threads);
      for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
      for (auto& th : pool) th.join();
    }
  }

  // Merge exactly the deterministic prefix: everything up to and including
  // the lowest racy index (or the whole budgeted family when no run raced).
  // Runs beyond the prefix — workers that were mid-flight on a higher index
  // when the race landed — are discarded, so race identity, spec_runs, and
  // specs_skipped are byte-identical at every thread count.
  const std::size_t lowest = first_racy.load(std::memory_order_relaxed);
  const std::size_t limit = lowest < n ? lowest + 1 : n;
  metrics::Registry merge_reg;
  {
    metrics::Scope scope(&merge_reg);
    metrics::PhaseTimer timer(metrics::Phase::kMerge);
    for (std::size_t i = 0; i < limit; ++i) {
      RADER_CHECK_MSG(ran[i] != 0, "sweep prefix member did not run");
      result.log.merge(per_spec[i]);
      ++result.spec_runs;
    }
  }
  result.specs_skipped = total - result.spec_runs;
  for (const auto& wm : worker_metrics) result.metrics.add(wm);
  result.metrics.add(merge_reg.snapshot());
  // Forward the aggregate to the caller's registry (if one is installed) so
  // an outer Scope sees probe + sweep + merge in one snapshot.
  if (metrics::Registry* outer = metrics::current()) {
    outer->absorb(result.metrics);
  }
  return result;
}

}  // namespace rader
